// Package trajforge is a research library reproducing "Are You Moving as
// You Claim: GPS Trajectory Forgery and Detection in Location-Based
// Services" (Yang et al., ICDCS 2022).
//
// The library has two sides, mirroring the paper:
//
//   - The attack: a C&W-style optimizer (Forger) that fabricates GPS
//     trajectories whose motion characteristics fool an LSTM trajectory
//     classifier while staying close — in Dynamic Time Warping distance —
//     to a plausible route (a navigation plan or a historical trajectory
//     kept at least MinD away so replay checks pass).
//
//   - The defense: a server-side detector (WiFiDetector) that verifies the
//     WiFi RSSI scans uploaded with each trajectory point against a
//     crowdsourced historical store, using the paper's RSSI probability
//     distributions and confidence weighting (Eq. 4–7), and an XGBoost
//     classifier over the resulting features (Eq. 8).
//
// Everything the paper's evaluation needs is included and implemented from
// scratch in pure Go: a road-network generator and router (the navigation
// substrate), a human-mobility and GPS-error simulator (the real-trajectory
// corpus), a WiFi propagation simulator with spatially correlated shadowing
// (the scan corpus), LSTM and gradient-boosted-tree learners, DTW with
// subgradients, and a small HTTP verification service.
//
// Most users start from one of three entry points:
//
//   - NewCity builds a simulated world (roads + radio) to generate data.
//   - NewForger builds the attacker given a target classifier.
//   - TrainWiFiDetector builds the defender given crowdsourced history.
//
// The runnable examples under examples/ walk through complete scenarios,
// and the experiments package regenerates every table and figure of the
// paper (see EXPERIMENTS.md).
package trajforge

import (
	"fmt"
	"math/rand"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/dtw"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/nav"
	"trajforge/internal/nn"
	"trajforge/internal/roadnet"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/shardstore"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// Core data types, re-exported for downstream use.
type (
	// Trajectory is a time-ordered sequence of GPS fixes.
	Trajectory = trajectory.T
	// TrajectoryPoint is one GPS fix.
	TrajectoryPoint = trajectory.Point
	// Mode is a transportation mode (walking, cycling, driving).
	Mode = trajectory.Mode
	// FeatureKind selects the per-step encoding for sequence classifiers.
	FeatureKind = trajectory.FeatureKind

	// LatLon is a WGS-84 coordinate; PlanePoint a local metric position.
	LatLon = geo.LatLon
	// PlanePoint is a position on the local tangent plane, metres.
	PlanePoint = geo.Point
	// Projection converts between the two.
	Projection = geo.Projection

	// Scan is one WiFi scan (APs heard at a position, strongest first).
	Scan = wifi.Scan
	// Observation is one AP in a scan.
	Observation = wifi.Observation
	// Upload pairs a trajectory with the scan collected at each point.
	Upload = wifi.Upload

	// Classifier is the LSTM sequence classifier (the paper's model C).
	Classifier = nn.Classifier
	// Forger runs the C&W trajectory forgery attack.
	Forger = attack.Forger
	// ForgeryConfig configures an attack run.
	ForgeryConfig = attack.CWConfig
	// ForgeryResult is an attack outcome.
	ForgeryResult = attack.Result
	// Scenario selects replay vs navigation forgery.
	Scenario = attack.Scenario

	// RSSIStore is the provider's crowdsourced historical RSSI database.
	RSSIStore = rssimap.Store
	// RSSIBackend abstracts over the global and geo-sharded RSSI stores.
	RSSIBackend = rssimap.Backend
	// ShardedRSSIStore is the geo-sharded store for city-scale coverage.
	ShardedRSSIStore = shardstore.Store
	// RSSIRecord is one crowdsourced (position, scan) record.
	RSSIRecord = rssimap.Record
	// WiFiDetector is the paper's RSSI-based countermeasure.
	WiFiDetector = detect.WiFiDetector
	// MotionDetector labels trajectories from motion features alone.
	MotionDetector = detect.MotionDetector
	// ReplayChecker flags near-duplicates of historical trajectories.
	ReplayChecker = detect.ReplayChecker
	// RouteChecker enforces the paper's route-rationality requirement.
	RouteChecker = detect.RouteChecker
	// RuleChecker is the related-work physical-sanity baseline.
	RuleChecker = detect.RuleChecker

	// VerificationServer is the cloud-side HTTP service.
	VerificationServer = server.Service
	// VerificationClient talks to it.
	VerificationClient = server.Client
	// Verdict is the provider's decision for one upload.
	Verdict = server.Verdict
)

// Transportation modes.
const (
	ModeWalking = trajectory.ModeWalking
	ModeCycling = trajectory.ModeCycling
	ModeDriving = trajectory.ModeDriving
)

// Attack scenarios.
const (
	ScenarioReplay     = attack.ScenarioReplay
	ScenarioNavigation = attack.ScenarioNavigation
)

// Feature encodings.
const (
	FeatureDistAngle = trajectory.FeatureDistAngle
	FeatureDxDy      = trajectory.FeatureDxDy
)

// City is a simulated urban world: a road network with a navigation
// service, a WiFi radio environment, and the mobility simulator that
// produces realistic GPS trajectories over it.
type City struct {
	Nav   *nav.Service
	Radio *wifi.World

	rng *rand.Rand
}

// CityConfig sizes a simulated city.
type CityConfig struct {
	// Width, Height of the area in metres.
	Width, Height float64
	// BlockSize of the street grid in metres.
	BlockSize float64
	// NumAPs deployed across the area.
	NumAPs int
	// Seed makes the city reproducible.
	Seed int64
}

// DefaultCityConfig returns a dense commercial district.
func DefaultCityConfig() CityConfig {
	return CityConfig{Width: 400, Height: 320, BlockSize: 60, NumAPs: 500, Seed: 1}
}

// NewCity builds a simulated world.
func NewCity(cfg CityConfig) (*City, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("trajforge: city area %gx%g must be positive", cfg.Width, cfg.Height)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	roadCfg := roadnet.DefaultConfig()
	roadCfg.Width = cfg.Width
	roadCfg.Height = cfg.Height
	if cfg.BlockSize > 0 {
		roadCfg.BlockSize = cfg.BlockSize
	}
	g, err := roadnet.Generate(rng, roadCfg)
	if err != nil {
		return nil, fmt.Errorf("trajforge: road network: %w", err)
	}
	numAPs := cfg.NumAPs
	if numAPs <= 0 {
		numAPs = int(cfg.Width * cfg.Height / 250)
	}
	world, err := wifi.NewWorld(rng, wifi.DefaultConfig(cfg.Width, cfg.Height, numAPs))
	if err != nil {
		return nil, fmt.Errorf("trajforge: radio world: %w", err)
	}
	return &City{Nav: nav.NewService(g), Radio: world, rng: rng}, nil
}

// Trip is a simulated journey: the realistic GPS trajectory of a traveller
// plus the WiFi scans their phone collected along the way.
type Trip struct {
	Upload *wifi.Upload
	// Truth holds the ground-truth positions the scans were measured at.
	Truth []PlanePoint
	// Route is the planned route polyline the traveller followed.
	Route []PlanePoint
}

// TripConfig describes one journey.
type TripConfig struct {
	From, To PlanePoint
	Mode     Mode
	// Points is the number of fixes to record.
	Points int
	// Interval between fixes (default 1 s).
	Interval time.Duration
	// Start timestamp of the first fix.
	Start time.Time
	// CollectScans records a WiFi scan at every point.
	CollectScans bool
}

// Travel simulates one journey through the city. The same City value must
// not be used from multiple goroutines concurrently (it owns one RNG).
func (c *City) Travel(cfg TripConfig) (*Trip, error) {
	if cfg.Points < 2 {
		return nil, fmt.Errorf("trajforge: trip needs >= 2 points, got %d", cfg.Points)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	plan, err := c.Nav.Route(cfg.From, cfg.To, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("trajforge: plan trip: %w", err)
	}
	tk, err := mobility.Simulate(c.rng, mobility.Options{
		Route: plan.Polyline, Mode: cfg.Mode,
		Start: cfg.Start, Interval: cfg.Interval, MaxPoints: cfg.Points,
	})
	if err != nil {
		return nil, fmt.Errorf("trajforge: simulate trip: %w", err)
	}
	truth := tk.TruePositions()
	scans := make([]wifi.Scan, len(truth))
	if cfg.CollectScans {
		for i, p := range truth {
			scans[i] = c.Radio.Scan(c.rng, p)
		}
	} else {
		for i := range scans {
			scans[i] = wifi.Scan{}
		}
	}
	return &Trip{
		Upload: &wifi.Upload{Traj: tk.Trajectory(), Scans: scans},
		Truth:  truth,
		Route:  plan.Polyline,
	}, nil
}

// NewRouteChecker returns the route-rationality check over this city's
// road network.
func (c *City) NewRouteChecker() (*RouteChecker, error) {
	return detect.NewRouteChecker(c.Nav.Graph())
}

// PlanRoute exposes the navigation substrate: it returns the recommended
// route polyline and cruise speed between two positions, as a commercial
// navigation service would.
func (c *City) PlanRoute(from, to PlanePoint, mode Mode) ([]PlanePoint, float64, error) {
	plan, err := c.Nav.Route(from, to, mode)
	if err != nil {
		return nil, 0, err
	}
	return plan.Polyline, plan.RecommendedSpeed, nil
}

// NavigationFake samples the route between two points at constant speed —
// the raw material of the paper's navigation attack (its AN dataset).
func (c *City) NavigationFake(from, to PlanePoint, mode Mode, points int, start time.Time, interval time.Duration) (*Trajectory, error) {
	plan, err := c.Nav.Route(from, to, mode)
	if err != nil {
		return nil, fmt.Errorf("trajforge: plan navigation fake: %w", err)
	}
	if interval <= 0 {
		interval = time.Second
	}
	return plan.Sample(start, interval, points), nil
}

// NewForger returns the attack against a target classifier consuming the
// given feature encoding.
func NewForger(target *Classifier, kind FeatureKind) *Forger {
	return attack.NewForger(target, kind)
}

// DefaultForgeryConfig mirrors the paper's attack settings.
func DefaultForgeryConfig(s Scenario) ForgeryConfig { return attack.DefaultCWConfig(s) }

// EstimateMinD calibrates the replay threshold from repeated traversals of
// the same route (Sec. IV-A3).
func EstimateMinD(trajs []*Trajectory) (float64, error) { return attack.MinDEstimate(trajs) }

// DTWDistance returns the Dynamic Time Warping distance between the
// position sequences of two trajectories.
func DTWDistance(a, b *Trajectory) float64 {
	return dtw.Dist(a.Positions(), b.Positions())
}

// TrainTargetClassifier trains an LSTM classifier (the paper's model C) on
// real and fake trajectory sets. hidden is the LSTM width; epochs the
// training budget.
func TrainTargetClassifier(real, fake []*Trajectory, hidden, epochs int, seed int64) (*Classifier, error) {
	det, err := detect.TrainLSTM(detect.LSTMSpec{
		Name: "C", Kind: trajectory.FeatureDistAngle,
		Hidden: []int{hidden}, Seed: seed, MeanPool: true, Restarts: 2,
	}, real, fake, nn.TrainConfig{
		Epochs: epochs, BatchSize: 8, LearningRate: 0.02,
		LRDecay: 0.97, KeepBest: true, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return det.Model, nil
}

// TrainGRUDetector trains the extension GRU transfer model (an architecture
// outside the paper's LSTM family; see DESIGN.md §4b).
func TrainGRUDetector(real, fake []*Trajectory, hidden, epochs int, seed int64) (MotionDetector, error) {
	return detect.TrainGRU(hidden, real, fake, nn.TrainConfig{
		Epochs: epochs, BatchSize: 8, LearningRate: 0.02,
		LRDecay: 0.97, Seed: seed,
	})
}

// NewRSSIStore builds the provider's crowdsourced store from historical
// uploads, with the paper's calibrated counting radius R = 3 m.
func NewRSSIStore(historical []*Upload) (*RSSIStore, error) {
	return rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(historical))
}

// NewShardedRSSIStore builds the geo-sharded store from historical uploads.
// It answers every query bit-identically to NewRSSIStore but partitions the
// records by coarse grid tile, so concurrent ingestion and feature
// extraction contend per shard instead of on one global lock.
func NewShardedRSSIStore(historical []*Upload) (*ShardedRSSIStore, error) {
	return shardstore.New(shardstore.DefaultConfig(), dataset.Records(historical))
}

// TrainWiFiDetector fits the paper's RSSI countermeasure: r = 2.5 m
// reference radius, top-5 strongest APs per point, XGBoost classifier.
// store is either backend — NewRSSIStore or NewShardedRSSIStore.
func TrainWiFiDetector(store RSSIBackend, real, fake []*Upload) (*WiFiDetector, error) {
	return detect.TrainWiFiDetector(store, real, fake,
		rssimap.DefaultFeatureConfig(), xgb.DefaultConfig())
}

// ForgeUploadRSSI builds the paper's Sec. IV-B attacker artifact: claimed
// positions perturbed at least MinD away from a historical trajectory, with
// the historical RSSIs replayed under a {-1, 0, 1} disturbance.
func ForgeUploadRSSI(rng *rand.Rand, historical *Upload, minDPerMeter float64) (*Upload, error) {
	return dataset.ForgeUpload(rng, historical, minDPerMeter)
}

// NewRuleChecker returns the physical-sanity rule baseline.
func NewRuleChecker() *RuleChecker { return detect.NewRuleChecker() }

// NewReplayChecker returns the DTW replay check with the given MinD
// threshold (DTW per metre of route).
func NewReplayChecker(minDPerMeter float64) (*ReplayChecker, error) {
	return detect.NewReplayChecker(minDPerMeter)
}

// NewVerificationServer assembles the cloud-side service.
func NewVerificationServer(cfg server.Config) (*VerificationServer, error) { return server.New(cfg) }

// NewVerificationClient returns a client for a verification server.
func NewVerificationClient(baseURL string, pr *Projection) *VerificationClient {
	return server.NewClient(baseURL, pr)
}

// NewProjection anchors a local plane at the given WGS-84 origin.
func NewProjection(origin LatLon) *Projection { return geo.NewProjection(origin) }

// SequenceFeatures encodes a trajectory as the per-step feature sequence a
// Classifier consumes.
func SequenceFeatures(t *Trajectory, kind FeatureKind) [][]float64 {
	return trajectory.SequenceFeatures(t, kind)
}

// NewTrajectory builds a trajectory from plane positions sampled at a
// constant interval.
func NewTrajectory(positions []PlanePoint, start time.Time, interval time.Duration) *Trajectory {
	return trajectory.New(positions, start, interval)
}
