package trajforge

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`):
//
//	BenchmarkTable1  — classifier performance against naive attacks
//	BenchmarkFig3    — C&W iteration/time/DTW curves
//	BenchmarkMinD    — replay-threshold calibration
//	BenchmarkTable2  — detection rates against adversarial attacks
//	BenchmarkRCal    — GPS-error calibration (R = 6σ)
//	BenchmarkTable3  — per-area AP statistics
//	BenchmarkFig4/5/6 — accuracy vs radius / reference density / AP density
//	BenchmarkTable4  — final WiFi-detector performance
//
// plus the DESIGN.md §5 ablations (soft-DTW attack, θ2 weight, Num_mac
// feature, Sakoe-Chiba band) and micro-benchmarks of the hot kernels. The
// experiment benches use reduced scales; cmd/experiments -scale paper is
// the full harness whose output EXPERIMENTS.md records.

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/dtw"
	"trajforge/internal/experiments"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/trajectory"
	"trajforge/internal/wal"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// benchScale keeps each experiment bench in the seconds range.
func benchScale() experiments.Scale {
	s := experiments.TestScale()
	s.MotionTrips = 40
	s.MotionPoints = 45
	s.Epochs = 15
	s.Restarts = 1
	s.AttackIterations = 300
	s.AttackEvalCount = 4
	s.MinDRepeats = 8
	s.AreaScale = 0.05
	s.TrainUploads = 20
	s.TestUploads = 12
	s.SweepDetRound = 20
	return s
}

var (
	_benchMotionOnce sync.Once
	_benchMotionLab  *experiments.MotionLab
	_benchWiFiOnce   sync.Once
	_benchWiFiLab    *experiments.WiFiLab
	_benchMinDOnce   sync.Once
	_benchMinD       *experiments.MinDResult
)

func benchMotionLab(b *testing.B) *experiments.MotionLab {
	b.Helper()
	_benchMotionOnce.Do(func() {
		lab, err := experiments.NewMotionLab(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		_benchMotionLab = lab
	})
	if _benchMotionLab == nil {
		b.Skip("motion lab failed to build in an earlier benchmark")
	}
	return _benchMotionLab
}

func benchMinD(b *testing.B) *experiments.MinDResult {
	b.Helper()
	_benchMinDOnce.Do(func() {
		res, err := experiments.MinD(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		_benchMinD = res
	})
	if _benchMinD == nil {
		b.Skip("MinD calibration failed earlier")
	}
	return _benchMinD
}

func benchWiFiLab(b *testing.B) *experiments.WiFiLab {
	b.Helper()
	_benchWiFiOnce.Do(func() {
		lab, err := experiments.NewWiFiLab(benchScale(), benchMinD(b))
		if err != nil {
			b.Fatal(err)
		}
		_benchWiFiLab = lab
	})
	if _benchWiFiLab == nil {
		b.Skip("WiFi lab failed to build in an earlier benchmark")
	}
	return _benchWiFiLab
}

// BenchmarkTable1 regenerates Table I (classifiers vs naive attacks).
func BenchmarkTable1(b *testing.B) {
	lab := benchMotionLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(lab)
		if len(res.Rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig3 regenerates the Fig. 3 iteration sweep.
func BenchmarkFig3(b *testing.B) {
	lab := benchMotionLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinD regenerates the MinD calibration.
func BenchmarkMinD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MinD(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II (C&W attacks vs all detectors).
func BenchmarkTable2(b *testing.B) {
	lab := benchMotionLab(b)
	mind := benchMinD(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(lab, mind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRCal regenerates the R = 6σ calibration.
func BenchmarkRCal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RCal(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the Table III AP statistics.
func BenchmarkTable3(b *testing.B) {
	lab := benchWiFiLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := experiments.Table3(lab); len(res.Rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig4 regenerates a two-point Fig. 4 radius sweep.
func BenchmarkFig4(b *testing.B) {
	lab := benchWiFiLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(lab, []float64{1.0, 2.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates a two-point Fig. 5 density sweep.
func BenchmarkFig5(b *testing.B) {
	lab := benchWiFiLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(lab, []float64{0.3, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates a two-point Fig. 6 AP-density sweep.
func BenchmarkFig6(b *testing.B) {
	lab := benchWiFiLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(lab, []float64{0.3, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table IV (final detector performance).
func BenchmarkTable4(b *testing.B) {
	lab := benchWiFiLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// attackAblation runs one navigation attack with the given config tweak.
func attackAblation(b *testing.B, tweak func(*attack.CWConfig)) {
	lab := benchMotionLab(b)
	forger := attack.NewForger(lab.C.Model, lab.C.Kind)
	cfg := attack.DefaultCWConfig(attack.ScenarioNavigation)
	cfg.Iterations = 200
	cfg.Seed = 99
	tweak(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forger.Forge(lab.TrainNav[0], cfg, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAttackHardDTW is the default hard-DTW attack loss.
func BenchmarkAblationAttackHardDTW(b *testing.B) {
	attackAblation(b, func(cfg *attack.CWConfig) {})
}

// BenchmarkAblationAttackSoftDTW swaps in the exact soft-DTW gradient.
func BenchmarkAblationAttackSoftDTW(b *testing.B) {
	attackAblation(b, func(cfg *attack.CWConfig) {
		cfg.UseSoftDTW = true
		cfg.SoftGamma = 1.0
	})
}

// BenchmarkAblationAttackPerPoint disables the smooth control basis.
func BenchmarkAblationAttackPerPoint(b *testing.B) {
	attackAblation(b, func(cfg *attack.CWConfig) { cfg.ControlEvery = -1 })
}

// featureAblation measures WiFi-detector accuracy with a feature-config
// tweak; reported as accuracy in a custom metric.
func featureAblation(b *testing.B, tweak func(*rssimap.FeatureConfig)) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0] // walking area
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		b.Fatal(err)
	}
	fcfg := rssimap.DefaultFeatureConfig()
	tweak(&fcfg)
	b.ResetTimer()
	var lastAcc float64
	for i := 0; i < b.N; i++ {
		det, err := trainWiFiWith(store, al, fcfg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		conf, err := det.EvaluateWiFi(al.TestReal, al.TestFake)
		if err != nil {
			b.Fatal(err)
		}
		lastAcc = conf.Accuracy()
	}
	b.ReportMetric(lastAcc, "accuracy")
}

func trainWiFiWith(store *rssimap.Store, al *experiments.AreaLab,
	fcfg rssimap.FeatureConfig, seed int64) (*WiFiDetector, error) {
	return detect.TrainWiFiDetector(store, al.TrainReal, al.TrainFake, fcfg,
		xgb.Config{Rounds: 40, MaxDepth: 4, LearningRate: 0.2, Seed: seed})
}

// BenchmarkAblationFullFeatures is the paper's full feature vector.
func BenchmarkAblationFullFeatures(b *testing.B) {
	featureAblation(b, func(cfg *rssimap.FeatureConfig) {})
}

// BenchmarkAblationNoTheta2 drops the density-reliability weight θ2.
func BenchmarkAblationNoTheta2(b *testing.B) {
	featureAblation(b, func(cfg *rssimap.FeatureConfig) { cfg.DisableTheta2 = true })
}

// BenchmarkAblationNoNum drops the Num_mac reference-count features.
func BenchmarkAblationNoNum(b *testing.B) {
	featureAblation(b, func(cfg *rssimap.FeatureConfig) { cfg.IncludeNum = false })
}

// BenchmarkAblationNoSummary drops the trajectory-level aggregates.
func BenchmarkAblationNoSummary(b *testing.B) {
	featureAblation(b, func(cfg *rssimap.FeatureConfig) { cfg.IncludeSummary = false })
}

// --- Micro-benchmarks of the hot kernels ---

func benchTrajectories(n, points int) []*Trajectory {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	out := make([]*Trajectory, n)
	for i := range out {
		pos := make([]geo.Point, points)
		for j := 1; j < points; j++ {
			pos[j] = geo.Point{
				X: pos[j-1].X + 1.2 + rng.NormFloat64()*0.3,
				Y: pos[j-1].Y + rng.NormFloat64()*0.5,
			}
		}
		out[i] = trajectory.New(pos, start, time.Second)
	}
	return out
}

// BenchmarkDTWDistance measures the core DTW kernel on 60-point tracks.
func BenchmarkDTWDistance(b *testing.B) {
	ts := benchTrajectories(2, 60)
	a, c := ts[0].Positions(), ts[1].Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtw.Dist(a, c)
	}
}

// BenchmarkDTWBanded measures the Sakoe-Chiba banded variant.
func BenchmarkDTWBanded(b *testing.B) {
	ts := benchTrajectories(2, 60)
	a, c := ts[0].Positions(), ts[1].Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtw.DistBanded(a, c, 8)
	}
}

// BenchmarkDTWGradient measures the attack's DTW subgradient.
func BenchmarkDTWGradient(b *testing.B) {
	ts := benchTrajectories(2, 60)
	a, c := ts[0].Positions(), ts[1].Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dtw.GradB(a, c, dtw.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMotionSummary measures the XGBoost feature extraction.
func BenchmarkMotionSummary(b *testing.B) {
	tr := benchTrajectories(1, 60)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trajectory.Summarize(tr)
	}
}

// BenchmarkStoreConfidence measures one Eq. 7 confidence query against a
// populated store.
func BenchmarkStoreConfidence(b *testing.B) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0]
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		b.Fatal(err)
	}
	u := al.TestReal[0]
	pt := u.Traj.Points[10]
	scan := u.Scans[10]
	if len(scan) == 0 {
		b.Skip("no scan data at probe point")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Confidence(pt.Pos, scan[0].MAC, scan[0].RSSI, 2.5)
	}
}

// BenchmarkStoreFeatures measures the full Eq. 8 feature extraction for one
// 30-point upload.
func BenchmarkStoreFeatures(b *testing.B) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0]
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		b.Fatal(err)
	}
	fcfg := rssimap.DefaultFeatureConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Features(al.TestReal[i%len(al.TestReal)], fcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreFeaturesSerial extracts Eq. 8 vectors for the whole test set
// one upload at a time — the baseline BenchmarkStoreFeaturesBatch is measured
// against (same workload, same store).
func BenchmarkStoreFeaturesSerial(b *testing.B) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0]
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		b.Fatal(err)
	}
	fcfg := rssimap.DefaultFeatureConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range al.TestReal {
			if _, err := store.Features(u, fcfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStoreFeaturesBatch runs the identical workload through the
// worker-fanned FeaturesBatch path; compare ns/op against
// BenchmarkStoreFeaturesSerial on a multi-core machine.
func BenchmarkStoreFeaturesBatch(b *testing.B) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0]
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		b.Fatal(err)
	}
	fcfg := rssimap.DefaultFeatureConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.FeaturesBatch(al.TestReal, fcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateWiFi measures a full detector evaluation pass (batch
// feature extraction + parallel scoring) over the area's test set.
func BenchmarkEvaluateWiFi(b *testing.B) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0]
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		b.Fatal(err)
	}
	det, err := trainWiFiWith(store, al, rssimap.DefaultFeatureConfig(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.EvaluateWiFi(al.TestReal, al.TestFake); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForgeUpload measures the bulk RSSI-replay forgery.
func BenchmarkForgeUpload(b *testing.B) {
	lab := benchWiFiLab(b)
	al := lab.Areas[0]
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ForgeUpload(rng, al.Hist[i%len(al.Hist)], 1.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoResiduals drops the residual-magnitude features.
func BenchmarkAblationNoResiduals(b *testing.B) {
	featureAblation(b, func(cfg *rssimap.FeatureConfig) { cfg.IncludeResiduals = false })
}

// --- Storage backends (make bench-store) ---

// benchStoreRecords builds a deterministic crowdsourced corpus spread over
// a width×height area.
func benchStoreRecords(rng *rand.Rand, n int, width, height float64) []rssimap.Record {
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := make(map[string]int)
		for j := 0; j < 3+rng.Intn(4); j++ {
			m[fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(48))] = -40 - rng.Intn(50)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height},
			RSSI: m,
		}
	}
	return recs
}

// benchStoreUpload builds a scan-carrying upload wandering across tiles.
func benchStoreUpload(rng *rand.Rand, n int, width, height float64) *wifi.Upload {
	pos := make([]geo.Point, n)
	p := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
	for i := range pos {
		p.X = math.Abs(math.Mod(p.X+rng.NormFloat64()*4, width))
		p.Y = math.Abs(math.Mod(p.Y+rng.NormFloat64()*4, height))
		pos[i] = p
	}
	traj := trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second)
	scans := make([]wifi.Scan, n)
	for i := range scans {
		for j := 0; j < 4; j++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(48)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

// BenchmarkShardedVsGlobalAdd measures concurrent ingestion contention:
// every goroutine hammers Add on one shared store. The global store funnels
// through a single write lock; the sharded store spreads the batches across
// per-tile locks.
func BenchmarkShardedVsGlobalAdd(b *testing.B) {
	const width, height = 400, 400
	rng := rand.New(rand.NewSource(41))
	batches := make([][]rssimap.Record, 256)
	for i := range batches {
		batches[i] = benchStoreRecords(rng, 50, width, height)
	}
	run := func(b *testing.B, store rssimap.Backend) {
		b.ReportAllocs()
		b.ResetTimer()
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				store.Add(batches[int(i)%len(batches)])
			}
		})
	}
	b.Run("global", func(b *testing.B) {
		store, err := rssimap.NewStore(rssimap.DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
	b.Run("sharded", func(b *testing.B) {
		store, err := shardstore.New(shardstore.DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
}

// BenchmarkShardedVsGlobalFeaturesBatch runs the identical Eq. 8 batch
// workload against both backends; the answers are bit-identical, only the
// locking and cell lookup differ.
func BenchmarkShardedVsGlobalFeaturesBatch(b *testing.B) {
	const width, height = 250, 250
	rng := rand.New(rand.NewSource(43))
	recs := benchStoreRecords(rng, 4000, width, height)
	uploads := make([]*wifi.Upload, 16)
	for i := range uploads {
		uploads[i] = benchStoreUpload(rng, 30, width, height)
	}
	fcfg := rssimap.DefaultFeatureConfig()
	run := func(b *testing.B, store rssimap.Backend) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := store.FeaturesBatch(uploads, fcfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("global", func(b *testing.B) {
		store, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
	b.Run("sharded", func(b *testing.B) {
		store, err := shardstore.New(shardstore.DefaultConfig(), recs)
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
}

// BenchmarkWALAppend measures one group-committed frame append (1 KiB
// payload, fsync batched on the default-style 2ms interval).
func BenchmarkWALAppend(b *testing.B) {
	log, err := wal.Open(filepath.Join(b.TempDir(), "bench.wal"),
		wal.Options{SyncInterval: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	rng := rand.New(rand.NewSource(47))
	payload := make([]byte, 1024)
	rng.Read(payload)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures a full recovery scan of a 4096-frame log
// (512 B payloads), CRC checks included.
func BenchmarkWALReplay(b *testing.B) {
	log, err := wal.Open(filepath.Join(b.TempDir(), "bench.wal"), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	rng := rand.New(rand.NewSource(53))
	payload := make([]byte, 512)
	rng.Read(payload)
	const frames = 4096
	for i := 0; i < frames; i++ {
		if err := log.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(frames * int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		err := log.Replay(func(typ byte, p []byte) error {
			n++
			return nil
		})
		if err != nil || n != frames {
			b.Fatalf("replayed %d frames, err %v", n, err)
		}
	}
}
