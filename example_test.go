package trajforge_test

import (
	"fmt"
	"time"

	"trajforge"
)

// ExampleNewCity shows the minimal simulation loop: build a world, travel
// through it, and inspect the collected upload.
func ExampleNewCity() {
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 300, Height: 240, BlockSize: 60, NumAPs: 200, Seed: 7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	trip, err := city.Travel(trajforge.TripConfig{
		From:         trajforge.PlanePoint{X: 20, Y: 20},
		To:           trajforge.PlanePoint{X: 260, Y: 200},
		Mode:         trajforge.ModeWalking,
		Points:       20,
		Start:        time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC),
		CollectScans: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("points:", trip.Upload.Traj.Len())
	fmt.Println("mode:", trip.Upload.Traj.Mode)
	fmt.Println("heard APs at every point:", trip.Upload.AverageK() > 0)
	// Output:
	// points: 20
	// mode: walking
	// heard APs at every point: true
}

// ExampleNewTrajectory demonstrates the trajectory data model and DTW.
func ExampleNewTrajectory() {
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	a := trajforge.NewTrajectory([]trajforge.PlanePoint{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
	}, start, time.Second)
	b := trajforge.NewTrajectory([]trajforge.PlanePoint{
		{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1},
	}, start, time.Second)
	fmt.Printf("length: %.0f m\n", a.Length())
	fmt.Printf("DTW(a, b): %.0f\n", trajforge.DTWDistance(a, b))
	// Output:
	// length: 2 m
	// DTW(a, b): 3
}

// ExampleNewReplayChecker shows the server's first line of defense.
func ExampleNewReplayChecker() {
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	historical := trajforge.NewTrajectory([]trajforge.PlanePoint{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}, {X: 6, Y: 0},
	}, start, time.Second)

	checker, err := trajforge.NewReplayChecker(1.2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	checker.AddHistory(historical)

	// An exact re-upload is a replay; a genuinely different route is not.
	fmt.Println("same trajectory again:", checker.IsReplay(historical))
	other := trajforge.NewTrajectory([]trajforge.PlanePoint{
		{X: 0, Y: 50}, {X: 2, Y: 52}, {X: 4, Y: 55}, {X: 6, Y: 59},
	}, start, time.Second)
	fmt.Println("different route:", checker.IsReplay(other))
	// Output:
	// same trajectory again: true
	// different route: false
}
