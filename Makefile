GO ?= go

.PHONY: build test race vet bench bench-hot bench-store check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package replays every figure/table pipeline; under the
# race detector that exceeds go test's default 10m per-package budget.
race:
	$(GO) test -race -timeout 60m ./...

vet:
	$(GO) vet ./...

# Full benchmark harness: every table/figure of the paper plus the hot-kernel
# micro-benchmarks. Slow — see bench-hot for the quick perf loop.
bench:
	$(GO) test . -run NONE -bench . -benchmem

# Just the verification hot path: confidence queries, serial vs. batch
# feature extraction, and a full detector evaluation pass.
bench-hot:
	$(GO) test . -run NONE -benchmem \
		-bench 'StoreConfidence|StoreFeatures|EvaluateWiFi$$'

# Storage backends: sharded vs global store under concurrent ingestion and
# batch feature extraction, plus WAL append/replay throughput.
bench-store:
	$(GO) test . -run NONE -benchmem \
		-bench 'ShardedVsGlobal|WAL'

check: build vet test
