GO ?= go

.PHONY: build test race vet lint bench bench-hot bench-store bench-kernel \
	check fuzz-short chaos loadgen bench-loadgen loadgen-stream \
	bench-openloop bench-openloop-short loadgen-openloop-race bench-poison

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package replays every figure/table pipeline; under the
# race detector that exceeds go test's default 10m per-package budget.
race:
	$(GO) test -race -timeout 60m ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally (CI installs
# it); the target degrades to a notice when the binary is absent.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Full benchmark harness: every table/figure of the paper plus the hot-kernel
# micro-benchmarks. Slow — see bench-hot for the quick perf loop.
bench:
	$(GO) test . -run NONE -bench . -benchmem

# Just the verification hot path: confidence queries, serial vs. batch
# feature extraction, and a full detector evaluation pass.
bench-hot:
	$(GO) test . -run NONE -benchmem \
		-bench 'StoreConfidence|StoreFeatures|EvaluateWiFi$$'

# Storage backends: sharded vs global store under concurrent ingestion and
# batch feature extraction, plus WAL append/replay throughput.
bench-store:
	$(GO) test . -run NONE -benchmem \
		-bench 'ShardedVsGlobal|WAL'

# Verify-kernel microbenchmarks: pointer-tree baseline vs the flattened
# compiled forest (single-row and batched), in go-bench form. The loadgen
# "kernel" section reports the same comparison in points/sec.
bench-kernel:
	$(GO) test ./internal/xgb/ -run NONE -benchmem -bench 'BenchmarkKernel'

# Short coverage-guided fuzzing of the WAL frame decoder, the trajectory
# codecs, and the binary upload/session wire codec (native go fuzzing;
# corpora live in testdata/fuzz/).
fuzz-short:
	$(GO) test ./internal/wal/ -run NONE -fuzz FuzzFrameDecode -fuzztime 20s
	$(GO) test ./internal/trajectory/ -run NONE -fuzz FuzzTrajectoryCodec -fuzztime 20s
	$(GO) test ./internal/server/ -run NONE -fuzz FuzzBinaryCodec -fuzztime 20s
	$(GO) test ./internal/cluster/ -run NONE -fuzz FuzzClusterCodec -fuzztime 20s

# Crash-point exploration plus the wedge-mid-workload breaker cycle:
# replay the upload workload (batch and streaming sessions), crash at
# every filesystem mutation site (or wedge the disk and watch the breaker
# trip, degrade, and heal), recover, and check the durability invariants.
chaos:
	$(GO) test ./internal/chaos/ -race -short -v -run 'TestCrashPointExploration|TestSessionCrashPointExploration|TestWedgeMidWorkload|TestClusterCrashPointExploration|TestReplicatedCrashPointExploration|TestCoordinatorCrashPointExploration|TestTrustCrashPointExploration'

# Sybil store-poisoning experiment: the same seeded campaign against an
# undefended server and the trust-weighted pipeline; writes
# BENCH_poison.json with rounds-to-breach and the attack cost ratio.
bench-poison:
	$(GO) run ./cmd/experiments -run poison

# Seeded load generator against a self-hosted provider; writes
# BENCH_loadgen.json with throughput and latency percentiles (batch,
# overload, and streaming-session scenarios).
loadgen:
	$(GO) run ./cmd/loadgen

bench-loadgen: loadgen

# Streaming-session soak under the race detector: concurrent sessions with
# interleaved chunk appends against a self-hosted streaming provider, plus
# the deterministic-workload check.
loadgen-stream:
	$(GO) test ./internal/loadgen/ -race -count=1 -v -run 'TestStreamWorkloadDeterministic|TestStreamSoak'

# City-scale open-loop sweep: Poisson/diurnal arrivals of mixed
# honest/attack traffic at 0.25x-4x of measured closed-loop capacity,
# against the single-process and 3-node cluster backends; writes
# latency-vs-offered-load curves to BENCH_openloop.json.
bench-openloop:
	$(GO) run ./cmd/loadgen -openloop

# CI-sized variant: two load points, a smaller city, same output schema.
bench-openloop-short:
	$(GO) run ./cmd/loadgen -openloop -openloop-short

# Open-loop engine soak under the race detector: a tiny two-point sweep
# (both backends) plus the deterministic-workload digest check.
loadgen-openloop-race:
	$(GO) test ./internal/loadgen/ -race -count=1 -v -run 'TestOpenLoopWorkloadDeterministic|TestOpenLoopSoak'

check: build vet test
