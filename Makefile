GO ?= go

.PHONY: build test race vet bench bench-hot bench-store check \
	fuzz-short chaos loadgen bench-loadgen

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package replays every figure/table pipeline; under the
# race detector that exceeds go test's default 10m per-package budget.
race:
	$(GO) test -race -timeout 60m ./...

vet:
	$(GO) vet ./...

# Full benchmark harness: every table/figure of the paper plus the hot-kernel
# micro-benchmarks. Slow — see bench-hot for the quick perf loop.
bench:
	$(GO) test . -run NONE -bench . -benchmem

# Just the verification hot path: confidence queries, serial vs. batch
# feature extraction, and a full detector evaluation pass.
bench-hot:
	$(GO) test . -run NONE -benchmem \
		-bench 'StoreConfidence|StoreFeatures|EvaluateWiFi$$'

# Storage backends: sharded vs global store under concurrent ingestion and
# batch feature extraction, plus WAL append/replay throughput.
bench-store:
	$(GO) test . -run NONE -benchmem \
		-bench 'ShardedVsGlobal|WAL'

# Short coverage-guided fuzzing of the WAL frame decoder and the
# trajectory codecs (native go fuzzing; corpora live in testdata/fuzz/).
fuzz-short:
	$(GO) test ./internal/wal/ -run NONE -fuzz FuzzFrameDecode -fuzztime 20s
	$(GO) test ./internal/trajectory/ -run NONE -fuzz FuzzTrajectoryCodec -fuzztime 20s

# Crash-point exploration: replay the upload workload, crash at every
# filesystem mutation site, recover, and check the durability invariants.
chaos:
	$(GO) test ./internal/chaos/ -race -short -v -run TestCrashPointExploration

# Seeded load generator against a self-hosted provider; writes
# BENCH_loadgen.json with throughput and latency percentiles.
loadgen:
	$(GO) run ./cmd/loadgen

bench-loadgen: loadgen

check: build vet test
