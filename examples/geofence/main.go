// Geofencing — spoofing a kid tracker, end to end over HTTP.
//
// A guardian app tracks a child's walk to school and alerts when the
// trajectory leaves a safe corridor. The child's phone (rooted, hooked GPS
// APIs — the paper's client-side attacker) uploads a forged trajectory that
// stays inside the corridor while the child actually wanders off.
//
// This example runs the full cloud stack: a verification server with the
// replay check, the motion classifier, and the WiFi RSSI detector, serving
// its HTTP API; the spoofed upload is sent by the real client over a local
// connection and rejected by the RSSI stage.
//
// Run with:
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"time"

	"trajforge"
	"trajforge/internal/attack"
	"trajforge/internal/detect"
	"trajforge/internal/server"
	"trajforge/internal/wifi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geofence:", err)
		os.Exit(1)
	}
}

func run() error {
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 320, Height: 260, BlockSize: 55, NumAPs: 360, Seed: 31,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(32))
	start := time.Date(2022, 7, 4, 7, 40, 0, 0, time.UTC)
	const points = 35

	fmt.Println("== provider bootstrap ==")
	var uploads []*trajforge.Upload
	var reals, fakes []*trajforge.Trajectory
	for tries := 0; len(uploads) < 200 && tries < 9000; tries++ {
		from := trajforge.PlanePoint{X: 10 + rng.Float64()*300, Y: 10 + rng.Float64()*240}
		to := trajforge.PlanePoint{X: 10 + rng.Float64()*300, Y: 10 + rng.Float64()*240}
		if tries%2 == 0 {
			// Half the crowd walks the popular school corridor, so the
			// provider's coverage is dense exactly where the kid walks.
			from = trajforge.PlanePoint{X: 20 + rng.Float64()*30, Y: 20 + rng.Float64()*30}
			to = trajforge.PlanePoint{X: 260 + rng.Float64()*40, Y: 200 + rng.Float64()*40}
		}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking,
			Points: points, Start: start, CollectScans: true,
		})
		if err != nil || trip.Upload.Traj.Len() != points {
			continue
		}
		clean, err := city.NavigationFake(from, to, trajforge.ModeWalking, points, start, time.Second)
		if err != nil || clean.Len() != points {
			continue
		}
		uploads = append(uploads, trip.Upload)
		reals = append(reals, trip.Upload.Traj)
		fakes = append(fakes, attack.NaiveNavigation(rng, clean))
	}
	fmt.Printf("   %d crowdsourced walks collected\n", len(uploads))

	target, err := trajforge.TrainTargetClassifier(reals, fakes, 16, 25, 33)
	if err != nil {
		return err
	}
	motion := &detect.LSTMDetector{DetectorName: "C", Model: target, Kind: trajforge.FeatureDistAngle}

	nHist := len(uploads) * 3 / 4
	store, err := trajforge.NewRSSIStore(uploads[:nHist])
	if err != nil {
		return err
	}
	var forgedTrain []*trajforge.Upload
	for _, u := range uploads[:nHist] {
		f, err := trajforge.ForgeUploadRSSI(rng, u, 1.2)
		if err != nil {
			return err
		}
		forgedTrain = append(forgedTrain, f)
	}
	wifiDet, err := trajforge.TrainWiFiDetector(store, uploads[nHist:], forgedTrain[:nHist/2])
	if err != nil {
		return err
	}
	replayCheck, err := trajforge.NewReplayChecker(1.2)
	if err != nil {
		return err
	}
	routeCheck, err := city.NewRouteChecker()
	if err != nil {
		return err
	}

	pr := trajforge.NewProjection(trajforge.LatLon{Lat: 32.06, Lon: 118.79})
	svc, err := trajforge.NewVerificationServer(server.Config{
		Projection:     pr,
		Route:          routeCheck,
		Replay:         replayCheck,
		Motion:         motion,
		WiFi:           wifiDet,
		IngestAccepted: true, // accepted scans become reference data for later days
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := trajforge.NewVerificationClient(ts.URL, pr)
	fmt.Printf("   verification server listening at %s\n", ts.URL)

	fmt.Println("\n== week 1: real walks to school are uploaded daily ==")
	// Fresh walks, not part of the provider's bootstrap data. The RSSI
	// detector operates at ~90% accuracy, so an honest walk occasionally
	// fails verification (the guardian just re-checks); we follow the walks
	// until one is accepted and becomes the attacker's replay material.
	var schoolRun *trajforge.Upload
	var v *trajforge.Verdict
	for day := 1; day <= 7; day++ {
		var trip *trajforge.Trip
		for tries := 0; tries < 200; tries++ {
			cand, err := city.Travel(trajforge.TripConfig{
				From: trajforge.PlanePoint{X: 30, Y: 30}, To: trajforge.PlanePoint{X: 280, Y: 220},
				Mode: trajforge.ModeWalking, Points: points,
				Start:        start.Add(time.Duration(day) * 24 * time.Hour),
				CollectScans: true,
			})
			if err == nil && cand.Upload.Traj.Len() == points {
				trip = cand
				break
			}
		}
		if trip == nil {
			return fmt.Errorf("could not simulate the school walk")
		}
		var err error
		v, err = client.Upload(trip.Upload)
		if err != nil {
			return err
		}
		fmt.Printf("   day %d: accepted=%v checks=%v\n", day, v.Accepted, v.Checks)
		if v.Accepted {
			schoolRun = trip.Upload
			break
		}
	}
	if schoolRun == nil {
		return fmt.Errorf("no honest walk was accepted this week (false-positive streak)")
	}

	fmt.Println("\n== the spoof: phone forges the accepted walk while the kid roams ==")
	forger := trajforge.NewForger(target, trajforge.FeatureDistAngle)
	cfg := trajforge.DefaultForgeryConfig(trajforge.ScenarioReplay)
	cfg.Iterations = 600
	cfg.MinDPerMeter = 1.2
	cfg.Seed = 34
	res, err := forger.Forge(schoolRun.Traj, cfg, false)
	if err != nil {
		return err
	}
	if !res.Success {
		return fmt.Errorf("attack did not converge")
	}
	// Next-day timestamps, replayed scans with +/-1 dB disturbance.
	for i := range res.Forged.Points {
		res.Forged.Points[i].Time = res.Forged.Points[i].Time.Add(24 * time.Hour)
	}
	scans := make([]wifi.Scan, len(schoolRun.Scans))
	for i, s := range schoolRun.Scans {
		cp := s.Clone()
		for j := range cp {
			cp[j].RSSI += rng.Intn(3) - 1
		}
		scans[i] = cp
	}
	v, err = client.Upload(&trajforge.Upload{Traj: res.Forged, Scans: scans})
	if err != nil {
		return err
	}
	fmt.Printf("   verdict: accepted=%v checks=%v\n", v.Accepted, v.Checks)
	if v.WiFiProbFake != nil {
		fmt.Printf("   wifi P(fake) = %.3f\n", *v.WiFiProbFake)
	}
	if !v.Accepted {
		fmt.Printf("   reason: %s\n", v.Reason)
		fmt.Println("   guardian alerted: the reported walk could not be verified.")
	}

	stats, err := client.FetchStats()
	if err != nil {
		return err
	}
	fmt.Printf("\nprovider stats: %+v\n", *stats)
	return nil
}
