// Quickstart: the paper in ~100 lines.
//
// Builds a simulated city, collects real trajectories, trains the target
// classifier C, forges an adversarial trajectory that C accepts as real,
// and then catches the same forgery with the WiFi RSSI defense.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"trajforge"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("1. building a simulated city (roads + WiFi radio environment)")
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 300, Height: 240, BlockSize: 60, NumAPs: 320, Seed: 42,
	})
	if err != nil {
		return err
	}

	fmt.Println("2. collecting trajectories: real walks and naive navigation fakes")
	rng := rand.New(rand.NewSource(1))
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	var reals, fakes []*trajforge.Trajectory
	var uploads []*trajforge.Upload
	for tries := 0; len(reals) < 60 && tries < 2000; tries++ {
		from := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		to := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking,
			Points: 30, Start: start, CollectScans: true,
		})
		if err != nil || trip.Upload.Traj.Len() != 30 {
			continue
		}
		fake, err := city.NavigationFake(from, to, trajforge.ModeWalking, 30, start, time.Second)
		if err != nil || fake.Len() != 30 {
			continue
		}
		reals = append(reals, trip.Upload.Traj)
		uploads = append(uploads, trip.Upload)
		fakes = append(fakes, fake)
	}
	fmt.Printf("   %d real trajectories, %d naive fakes\n", len(reals), len(fakes))

	fmt.Println("3. training the provider's LSTM classifier C")
	target, err := trajforge.TrainTargetClassifier(reals, fakes, 16, 25, 2)
	if err != nil {
		return err
	}

	fmt.Println("4. the attack: forging a replay trajectory that C accepts")
	forger := trajforge.NewForger(target, trajforge.FeatureDistAngle)
	cfg := trajforge.DefaultForgeryConfig(trajforge.ScenarioReplay)
	cfg.Iterations = 500
	cfg.MinDPerMeter = 1.2 // calibrated replay threshold (Sec. IV-A3)
	cfg.Seed = 3
	res, err := forger.Forge(reals[0], cfg, false)
	if err != nil {
		return err
	}
	if !res.Success {
		return fmt.Errorf("attack failed to converge")
	}
	fmt.Printf("   forged: P(real) = %.3f, DTW to historical = %.2f per metre\n",
		res.ProbReal, res.DTW/reals[0].Length())

	fmt.Println("5. the defense: verifying WiFi RSSIs against crowdsourced history")
	nHist := len(uploads) * 3 / 4
	store, err := trajforge.NewRSSIStore(uploads[:nHist])
	if err != nil {
		return err
	}
	var forgedUploads []*trajforge.Upload
	frng := rand.New(rand.NewSource(4))
	for _, u := range uploads[:nHist] {
		f, err := trajforge.ForgeUploadRSSI(frng, u, 1.2)
		if err != nil {
			return err
		}
		forgedUploads = append(forgedUploads, f)
	}
	det, err := trajforge.TrainWiFiDetector(store, uploads[nHist:], forgedUploads[:nHist/2])
	if err != nil {
		return err
	}

	var caught, total int
	for _, f := range forgedUploads[nHist/2:] {
		isFake, err := det.IsFake(f)
		if err != nil {
			return err
		}
		total++
		if isFake {
			caught++
		}
	}
	fmt.Printf("   WiFi detector caught %d/%d forged uploads\n", caught, total)
	fmt.Println("done: the motion classifier is fooled, the RSSI defense is not.")
	return nil
}
