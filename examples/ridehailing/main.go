// Ride-hailing mileage fraud — the paper's motivating scenario.
//
// A malicious driver forges a driving trajectory that inflates the billed
// route: the forged track follows a longer navigation route than the trip
// actually driven, with motion characteristics tuned (via the C&W attack)
// to pass the platform's trajectory classifier. The example then shows the
// two server-side outcomes: the motion check alone accepts the inflated
// trip, while the WiFi RSSI countermeasure rejects it because the driver
// cannot produce consistent scans for roads never travelled.
//
// Run with:
//
//	go run ./examples/ridehailing
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"trajforge"
	"trajforge/internal/wifi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ridehailing:", err)
		os.Exit(1)
	}
}

func run() error {
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 800, Height: 600, BlockSize: 80, NumAPs: 900, Seed: 7,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(8))
	start := time.Date(2022, 7, 4, 18, 30, 0, 0, time.UTC)

	fmt.Println("== platform bootstrap: historical trips along the main corridor ==")
	// Like the paper's driving dataset (a main commercial road), the
	// platform's history concentrates on one west-east corridor, so the
	// crowdsourced RSSI store is dense where drivers actually drive.
	const points = 30
	var uploads []*trajforge.Upload
	var reals, navFakes []*trajforge.Trajectory
	for tries := 0; len(uploads) < 120 && tries < 8000; tries++ {
		from := trajforge.PlanePoint{X: rng.Float64() * 90, Y: 240 + rng.Float64()*120}
		to := trajforge.PlanePoint{X: 710 + rng.Float64()*90, Y: 240 + rng.Float64()*120}
		if rng.Intn(2) == 0 {
			from, to = to, from
		}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeDriving,
			Points: points, Start: start, Interval: 2 * time.Second, CollectScans: true,
		})
		if err != nil || trip.Upload.Traj.Len() != points {
			continue
		}
		fake, err := city.NavigationFake(from, to, trajforge.ModeDriving, points, start, 2*time.Second)
		if err != nil || fake.Len() != points {
			continue
		}
		uploads = append(uploads, trip.Upload)
		reals = append(reals, trip.Upload.Traj)
		navFakes = append(navFakes, fake)
	}
	fmt.Printf("   %d historical driving trips collected\n", len(uploads))

	target, err := trajforge.TrainTargetClassifier(reals, navFakes, 16, 25, 9)
	if err != nil {
		return err
	}

	nHist := len(uploads) * 3 / 4
	store, err := trajforge.NewRSSIStore(uploads[:nHist])
	if err != nil {
		return err
	}
	var forged []*trajforge.Upload
	for _, u := range uploads[:nHist] {
		f, err := trajforge.ForgeUploadRSSI(rng, u, 1.4) // driving MinD
		if err != nil {
			return err
		}
		forged = append(forged, f)
	}
	wifiDet, err := trajforge.TrainWiFiDetector(store, uploads[nHist:], forged[:nHist/2])
	if err != nil {
		return err
	}

	fmt.Println("\n== the fraud: inflate a short trip into a long billed route ==")
	honest := uploads[0]
	honestKM := honest.Traj.Length() / 1000

	// The driver claims a much longer trip: a navigation route from the real
	// pickup to a far-away drop-off, with forged motion along it.
	// The claimed drop-off is off the corridor (north side streets), where
	// the driver has never collected WiFi data.
	var detour *trajforge.Trajectory
	for tries := 0; tries < 200; tries++ {
		dest := trajforge.PlanePoint{X: 200 + rng.Float64()*400, Y: 520 + rng.Float64()*70}
		if dist2(honest.Traj.Start().Pos, dest) < 400*400 {
			continue
		}
		cand, err := city.NavigationFake(honest.Traj.Start().Pos, dest,
			trajforge.ModeDriving, points, start, 2*time.Second)
		if err != nil || cand.Len() != points || cand.Length() <= honest.Traj.Length() {
			continue
		}
		detour = cand
		break
	}
	if detour == nil {
		return fmt.Errorf("could not plan an inflated route")
	}
	forger := trajforge.NewForger(target, trajforge.FeatureDistAngle)
	cfg := trajforge.DefaultForgeryConfig(trajforge.ScenarioNavigation)
	cfg.Iterations = 600
	cfg.Seed = 10
	res, err := forger.Forge(detour, cfg, false)
	if err != nil {
		return err
	}
	if !res.Success {
		return fmt.Errorf("the attack failed to converge")
	}
	fraudKM := res.Forged.Length() / 1000
	fmt.Printf("   honest trip:  %.2f km driven\n", honestKM)
	fmt.Printf("   forged claim: %.2f km billed (P(real) by classifier C: %.3f)\n",
		fraudKM, res.ProbReal)

	fmt.Println("\n== platform verification ==")
	probC := target.Forward(trajforge.SequenceFeatures(res.Forged, trajforge.FeatureDistAngle))
	fmt.Printf("   motion check:  P(real) = %.3f -> %s\n", probC, passFail(probC >= 0.5))

	// The driver can only replay old scans; the claimed detour positions
	// have no consistent RSSI story.
	claim := &trajforge.Upload{Traj: res.Forged, Scans: replayScans(rng, honest.Scans)}
	pFake, err := wifiDet.ProbFake(claim)
	if err != nil {
		return err
	}
	fmt.Printf("   WiFi check:    P(fake) = %.3f -> %s\n", pFake, passFail(pFake < 0.5))
	if pFake >= 0.5 && probC >= 0.5 {
		fmt.Println("   verdict: mileage fraud caught by the RSSI countermeasure")
	}
	return nil
}

func dist2(a, b trajforge.PlanePoint) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return dx*dx + dy*dy
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// replayScans perturbs historical scans by {-1, 0, 1} dB, as the paper's
// replay attacker does.
func replayScans(rng *rand.Rand, scans []wifi.Scan) []wifi.Scan {
	out := make([]wifi.Scan, len(scans))
	for i, s := range scans {
		cp := s.Clone()
		for j := range cp {
			cp[j].RSSI += rng.Intn(3) - 1
		}
		out[i] = cp
	}
	return out
}
