// Fitness-app cheating — replaying yesterday's run.
//
// A fitness app awards a badge for completing today's 5-minute jog. A
// cheater who stayed home replays yesterday's genuine run. The example
// walks the escalation from the paper:
//
//  1. A byte-level replay (tiny noise) is caught by the server's DTW
//     replay check against the user's history.
//  2. The C&W replay attack forges a run at least MinD away from the
//     historical one — the replay check and the motion classifier both
//     pass it.
//  3. The WiFi RSSI countermeasure still catches it, because the replayed
//     scans are inconsistent with the crowdsourced history at the claimed
//     (shifted) positions.
//
// Run with:
//
//	go run ./examples/fitness
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"trajforge"
	"trajforge/internal/attack"
	"trajforge/internal/detect"
	"trajforge/internal/wifi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fitness:", err)
		os.Exit(1)
	}
}

func run() error {
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 300, Height: 240, BlockSize: 55, NumAPs: 340, Seed: 21,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(22))
	yesterday := time.Date(2022, 7, 3, 7, 0, 0, 0, time.UTC)
	today := yesterday.Add(24 * time.Hour)
	const points = 40

	fmt.Println("== app bootstrap: runs collected around the park ==")
	var uploads []*trajforge.Upload
	var reals, fakes []*trajforge.Trajectory
	for tries := 0; len(uploads) < 90 && tries < 5000; tries++ {
		from := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		to := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking,
			Points: points, Start: yesterday, CollectScans: true,
		})
		if err != nil || trip.Upload.Traj.Len() != points {
			continue
		}
		clean, err := city.NavigationFake(from, to, trajforge.ModeWalking, points, yesterday, time.Second)
		if err != nil || clean.Len() != points {
			continue
		}
		uploads = append(uploads, trip.Upload)
		reals = append(reals, trip.Upload.Traj)
		fakes = append(fakes, attack.NaiveNavigation(rng, clean))
	}
	fmt.Printf("   %d historical runs\n", len(uploads))

	target, err := trajforge.TrainTargetClassifier(reals, fakes, 16, 25, 23)
	if err != nil {
		return err
	}
	motion := &detect.LSTMDetector{DetectorName: "C", Model: target, Kind: trajforge.FeatureDistAngle}

	// The user's own run history feeds the replay checker.
	const minD = 1.2
	replayCheck, err := trajforge.NewReplayChecker(minD)
	if err != nil {
		return err
	}
	yesterdayRun := uploads[0]
	replayCheck.AddHistory(yesterdayRun.Traj)

	// WiFi detector over the crowdsourced store.
	nHist := len(uploads) * 3 / 4
	store, err := trajforge.NewRSSIStore(uploads[:nHist])
	if err != nil {
		return err
	}
	var forgedTrain []*trajforge.Upload
	for _, u := range uploads[:nHist] {
		f, err := trajforge.ForgeUploadRSSI(rng, u, minD)
		if err != nil {
			return err
		}
		forgedTrain = append(forgedTrain, f)
	}
	wifiDet, err := trajforge.TrainWiFiDetector(store, uploads[nHist:], forgedTrain[:nHist/2])
	if err != nil {
		return err
	}

	report := func(name string, tr *trajforge.Trajectory, scans []wifi.Scan) {
		replayed := replayCheck.IsReplay(tr)
		probReal := motion.ProbReal(tr)
		fmt.Printf("   %-28s replay-check=%-5v P(real)=%.3f", name, replayed, probReal)
		if scans != nil {
			pFake, err := wifiDet.ProbFake(&trajforge.Upload{Traj: tr, Scans: scans})
			if err == nil {
				fmt.Printf(" wifi-P(fake)=%.3f", pFake)
			}
		}
		switch {
		case replayed:
			fmt.Println("  -> REJECTED (replay)")
		case probReal < 0.5:
			fmt.Println("  -> REJECTED (motion)")
		default:
			fmt.Println("  -> motion checks pass")
		}
	}

	fmt.Println("\n== attempt 1: naive replay of yesterday's run ==")
	naive := attack.NaiveReplay(rng, yesterdayRun.Traj)
	shiftTimes(naive, 24*time.Hour)
	report("naive replay", naive, nil)

	fmt.Println("\n== attempt 2: C&W replay forgery (>= MinD away) ==")
	forger := trajforge.NewForger(target, trajforge.FeatureDistAngle)
	cfg := trajforge.DefaultForgeryConfig(trajforge.ScenarioReplay)
	cfg.Iterations = 600
	cfg.MinDPerMeter = minD
	cfg.Seed = 24
	res, err := forger.Forge(yesterdayRun.Traj, cfg, false)
	if err != nil {
		return err
	}
	if !res.Success {
		return fmt.Errorf("attack failed to converge")
	}
	shiftTimes(res.Forged, 24*time.Hour)
	replayedScans := replayScans(rng, yesterdayRun.Scans)
	report("C&W forged run", res.Forged, replayedScans)

	pFake, err := wifiDet.ProbFake(&trajforge.Upload{Traj: res.Forged, Scans: replayedScans})
	if err != nil {
		return err
	}
	fmt.Println("\n== verdict ==")
	if pFake >= 0.5 {
		fmt.Println("   the forged run defeats the replay check and the classifier,")
		fmt.Println("   but the WiFi RSSI countermeasure rejects it — no badge today.")
	} else {
		fmt.Println("   the forged run escaped every check at this simulation scale.")
	}
	_ = today
	return nil
}

func shiftTimes(t *trajforge.Trajectory, d time.Duration) {
	for i := range t.Points {
		t.Points[i].Time = t.Points[i].Time.Add(d)
	}
}

func replayScans(rng *rand.Rand, scans []wifi.Scan) []wifi.Scan {
	out := make([]wifi.Scan, len(scans))
	for i, s := range scans {
		cp := s.Clone()
		for j := range cp {
			cp[j].RSSI += rng.Intn(3) - 1
		}
		out[i] = cp
	}
	return out
}
