module trajforge

go 1.22
