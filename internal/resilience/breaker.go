package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// StateClosed lets traffic through; failures are counted.
	StateClosed BreakerState = iota
	// StateOpen fails fast; after Cooldown a single probe is allowed.
	StateOpen
	// StateHalfOpen has one probe in flight deciding the next state.
	StateHalfOpen
)

var stateNames = [...]string{"closed", "open", "half-open"}

func (s BreakerState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker. Default 1: the persistence path it guards has no
	// transient failure mode worth riding out — a failed append is a
	// dropped frame either way.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe. Default 250ms.
	Cooldown time.Duration
	// Clock overrides the time source for tests; nil means time.Now.
	// Elapsed-time comparisons go through time.Time's monotonic reading,
	// so wall-clock steps cannot re-arm or starve the cooldown.
	Clock func() time.Time
}

func (c *BreakerConfig) setDefaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// BreakerStats is the observable breaker state for /v1/stats.
type BreakerStats struct {
	// State is "closed", "open", or "half-open".
	State string `json:"state"`
	// Opens counts closed/half-open → open transitions.
	Opens int64 `json:"opens"`
	// Closes counts half-open → closed transitions (successful heals).
	Closes int64 `json:"closes"`
	// Probes counts half-open probes attempted.
	Probes int64 `json:"probes"`
	// ConsecutiveFailures is the current failure streak while closed.
	ConsecutiveFailures int `json:"consecutive_failures"`
}

// Breaker is a closed/open/half-open circuit breaker. It does not wrap
// calls itself: the guarded component reports outcomes through Fail and
// Success, gates work on State, and asks ProbeDue when it is willing to
// risk a probe. This inversion lets the persistence layer use a full
// snapshot+log-reset compaction as its probe — the only operation that
// proves the disk is healthy again AND repairs the frames lost while the
// breaker was open.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // monotonic anchor of the current open period

	opens  int64
	closes int64
	probes int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.setDefaults()
	return &Breaker{cfg: cfg}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether guarded work may proceed (breaker closed).
func (b *Breaker) Allow() bool { return b.State() == StateClosed }

// Fail records a failure. While closed it advances the streak and opens
// the breaker at the threshold; in half-open it re-opens immediately and
// re-arms the cooldown.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case StateHalfOpen:
		b.open()
	case StateOpen:
		// Already failing fast; keep the original cooldown anchor.
	}
}

// open transitions to StateOpen; callers hold b.mu.
func (b *Breaker) open() {
	b.state = StateOpen
	b.openedAt = b.cfg.Clock()
	b.failures = 0
	b.opens++
}

// Success records a success. In half-open it closes the breaker (the
// probe proved recovery); while closed it resets the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.state = StateClosed
		b.failures = 0
		b.closes++
	case StateClosed:
		b.failures = 0
	case StateOpen:
		// A success while open can only come from work admitted before
		// the trip; it proves nothing about the fault, so ignore it.
	}
}

// Ok records a success from regular (non-probe) work: it resets the
// failure streak while closed and is ignored in every other state. Only
// the half-open probe may close the breaker (via Success) — a stray
// success from work admitted before the trip proves nothing about whether
// the fault has cleared.
func (b *Breaker) Ok() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateClosed {
		b.failures = 0
	}
}

// ProbeDue reports whether the cooldown has elapsed; if so it moves the
// breaker to half-open and the caller MUST attempt exactly one probe and
// report it through Success or Fail. At most one caller wins per open
// period.
func (b *Breaker) ProbeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen || b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
		return false
	}
	b.state = StateHalfOpen
	b.probes++
	return true
}

// ProbeIn returns how long until the next probe is due (0 when due now or
// when the breaker is not open) — the appender's wake-up interval and the
// basis of the server's Retry-After on degraded 503s.
func (b *Breaker) ProbeIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Clock().Sub(b.openedAt)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state.String(),
		Opens:               b.opens,
		Closes:              b.closes,
		Probes:              b.probes,
		ConsecutiveFailures: b.failures,
	}
}
