package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionAdmitsUpToCapacity(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 3, QueueDepth: 0})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := a.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := a.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th acquire = %v, want ErrQueueFull", err)
	}
	st := a.Stats()
	if st.InFlight != 3 || st.Admitted != 3 || st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v", st)
	}
	a.Release(time.Millisecond)
	if err := a.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestAdmissionQueueIsFIFO(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 4})
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger arrivals so queue order is deterministic.
			ready <- struct{}{}
			if err := a.Acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.Release(0)
		}(i)
		<-ready
		// Wait until the waiter is actually queued before starting the next.
		for a.Stats().Queued != i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	a.Release(0)
	wg.Wait()
	for i, g := range order {
		if g != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
}

func TestAdmissionShedsOnExpiredContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("acquire with dead context = %v, want ErrDeadline", err)
	}
	if st := a.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 2})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.Acquire(ctx)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued acquire = %v, want ErrDeadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline wait did not fire promptly")
	}
	st := a.Stats()
	if st.DeadlineExceeded != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want the expired waiter dequeued", st)
	}
}

func TestAdmissionDeadlineShedUpFront(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 8})
	// Teach the EWMA a 100ms service time.
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Release(100 * time.Millisecond)
	// Occupy the slot and one queue position.
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := a.Acquire(context.Background()); err == nil {
			a.Release(0)
		}
	}()
	for a.Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	// A 1ms deadline cannot cover the ~200ms estimated wait: shed up front.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("hopeless acquire = %v, want ErrDeadline", err)
	}
	if st := a.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1 (up-front shed, not queued timeout)", st.ShedDeadline)
	}
	a.Release(0)
	<-done
	a.Release(0)
}

func TestAdmissionConcurrentStress(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4, QueueDepth: 4})
	var peak, cur, served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := a.Acquire(context.Background()); err != nil {
					continue // shed
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				served.Add(1)
				cur.Add(-1)
				a.Release(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent holders, cap is 4", p)
	}
	st := a.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
	if st.Admitted != served.Load() {
		t.Fatalf("admitted %d, served %d", st.Admitted, served.Load())
	}
	if st.Admitted+st.ShedQueueFull+st.ShedDeadline+st.DeadlineExceeded != 64*20 {
		t.Fatalf("accounting leak: %+v does not sum to %d", st, 64*20)
	}
}

// testClock is a settable monotonic-ish clock for breaker tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &testClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second, Clock: clk.Now})

	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("new breaker must be closed")
	}
	b.Fail()
	if b.State() != StateClosed {
		t.Fatal("one failure below threshold must not open")
	}
	b.Success()
	b.Fail() // streak reset by the success: still below threshold
	if b.State() != StateClosed {
		t.Fatal("success must reset the failure streak")
	}
	b.Fail()
	if b.State() != StateOpen {
		t.Fatal("threshold consecutive failures must open")
	}
	if b.ProbeDue() {
		t.Fatal("probe must not be due before cooldown")
	}
	clk.Advance(time.Second)
	if !b.ProbeDue() {
		t.Fatal("probe must be due after cooldown")
	}
	if b.State() != StateHalfOpen {
		t.Fatal("winning ProbeDue must move to half-open")
	}
	if b.ProbeDue() {
		t.Fatal("only one probe per open period")
	}
	b.Fail()
	if b.State() != StateOpen {
		t.Fatal("failed probe must re-open")
	}
	clk.Advance(time.Second)
	if !b.ProbeDue() {
		t.Fatal("probe must be due again after re-armed cooldown")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatal("successful probe must close")
	}
	st := b.Stats()
	if st.Opens != 2 || st.Closes != 1 || st.Probes != 2 || st.State != "closed" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerProbeIn(t *testing.T) {
	clk := &testClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Cooldown: time.Second, Clock: clk.Now})
	if b.ProbeIn() != 0 {
		t.Fatal("closed breaker has no probe countdown")
	}
	b.Fail() // threshold defaults to 1
	if got := b.ProbeIn(); got != time.Second {
		t.Fatalf("ProbeIn = %v, want 1s", got)
	}
	clk.Advance(700 * time.Millisecond)
	if got := b.ProbeIn(); got != 300*time.Millisecond {
		t.Fatalf("ProbeIn = %v, want 300ms", got)
	}
	clk.Advance(time.Hour)
	if got := b.ProbeIn(); got != 0 {
		t.Fatalf("ProbeIn = %v, want 0 when overdue", got)
	}
}

func TestBreakerConcurrentProbeRace(t *testing.T) {
	b := NewBreaker(BreakerConfig{Cooldown: time.Nanosecond})
	b.Fail()
	time.Sleep(time.Millisecond)
	var won atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.ProbeDue() {
				won.Add(1)
			}
		}()
	}
	wg.Wait()
	if won.Load() != 1 {
		t.Fatalf("%d goroutines won the probe, want exactly 1", won.Load())
	}
}

func TestRetrierBoundsAndJitterRange(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 5,
		Base:        10 * time.Millisecond,
		Max:         80 * time.Millisecond,
		Source:      rand.NewSource(42),
	}
	r := NewRetrier(p)
	prev := p.Base
	var n int
	for {
		d, ok := r.Next(0)
		if !ok {
			break
		}
		n++
		if d < p.Base || d > p.Max {
			t.Fatalf("delay %v outside [%v, %v]", d, p.Base, p.Max)
		}
		if lim := 3 * prev; d > lim && d != p.Max {
			t.Fatalf("delay %v exceeds decorrelated bound 3*%v", d, prev)
		}
		prev = d
	}
	if n != p.MaxAttempts-1 {
		t.Fatalf("got %d delays, want %d", n, p.MaxAttempts-1)
	}
}

func TestRetrierBudgetCap(t *testing.T) {
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 100,
		Base:        40 * time.Millisecond,
		Max:         40 * time.Millisecond, // deterministic 40ms delays
		Budget:      100 * time.Millisecond,
	})
	var total time.Duration
	var n int
	for {
		d, ok := r.Next(0)
		if !ok {
			break
		}
		n++
		total += d
	}
	if n != 2 || total != 80*time.Millisecond {
		t.Fatalf("budget allowed %d sleeps totalling %v, want 2 totalling 80ms", n, total)
	}
}

func TestRetrierHonorsServerFloor(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Max: 10 * time.Second})
	d, ok := r.Next(3 * time.Second)
	if !ok || d < 3*time.Second {
		t.Fatalf("delay %v must honor the 3s Retry-After floor", d)
	}
}

func TestRetrierZeroPolicyNeverRetries(t *testing.T) {
	r := NewRetrier(RetryPolicy{})
	if _, ok := r.Next(0); ok {
		t.Fatal("zero policy must not grant retries")
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err == nil {
		t.Fatal("Sleep must return the context error")
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
}
