package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy is an exponential backoff with decorrelated jitter and a
// hard sleep budget. The zero value retries nothing (MaxAttempts 0 means
// one attempt, no retries); Defaults() returns the client's standard
// policy.
//
// Delays follow the "decorrelated jitter" scheme: each delay is drawn
// uniformly from [Base, 3*prev], capped at Max — successive retries
// decorrelate across a fleet of clients instead of synchronising into
// retry storms, while still backing off exponentially in expectation.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// <= 1 disables retries.
	MaxAttempts int
	// Base is the minimum delay between attempts.
	Base time.Duration
	// Max caps any single delay.
	Max time.Duration
	// Budget caps the cumulative sleep across all retries of one call;
	// once spent, the call fails with the last error even if attempts
	// remain. 0 means no cap.
	Budget time.Duration
	// Source seeds the jitter; nil uses a locked private source.
	Source rand.Source
}

// DefaultRetryPolicy is the client's standard policy: up to 4 tries,
// 50ms–2s decorrelated jitter, at most 5s of total sleeping.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Base: 50 * time.Millisecond, Max: 2 * time.Second, Budget: 5 * time.Second}
}

// Retrier tracks one call's retry state: attempt count, previous delay
// (the decorrelation input), and remaining budget.
type Retrier struct {
	policy  RetryPolicy
	rng     *rand.Rand
	rngMu   sync.Mutex
	attempt int
	prev    time.Duration
	slept   time.Duration
}

// NewRetrier starts a retry sequence under the policy.
func NewRetrier(p RetryPolicy) *Retrier {
	r := &Retrier{policy: p, prev: p.Base}
	if p.Source != nil {
		r.rng = rand.New(p.Source)
	}
	return r
}

// jitter draws a uniform int64 in [0, n).
func (r *Retrier) jitter(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if r.rng != nil {
		r.rngMu.Lock()
		defer r.rngMu.Unlock()
		return r.rng.Int63n(n)
	}
	return rand.Int63n(n)
}

// Next returns the delay before the next attempt and whether one is
// allowed. min is a server-supplied floor (a Retry-After hint); pass 0
// when there is none. The returned delay is already charged against the
// budget.
func (r *Retrier) Next(min time.Duration) (time.Duration, bool) {
	r.attempt++
	if r.attempt >= r.policy.MaxAttempts {
		return 0, false
	}
	d := r.policy.Base
	if span := int64(3*r.prev - r.policy.Base); span > 0 {
		d += time.Duration(r.jitter(span))
	}
	if r.policy.Max > 0 && d > r.policy.Max {
		d = r.policy.Max
	}
	if d < min {
		d = min
	}
	if r.policy.Budget > 0 && r.slept+d > r.policy.Budget {
		return 0, false
	}
	r.prev = d
	r.slept += d
	return d, true
}

// Sleep waits d or until the context is done, returning the context error
// in the latter case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
