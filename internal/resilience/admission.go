// Package resilience provides the request-level overload and
// partial-failure machinery the verification server composes around its
// pipeline: an admission controller (bounded concurrency plus a bounded
// FIFO wait queue with deadline-aware shedding), a circuit breaker
// (closed/open/half-open with monotonic-clock probes) for the persistence
// path, and a budget-capped retry/backoff policy for clients.
//
// The pieces are deliberately independent of net/http: the admission
// controller speaks context.Context, the breaker speaks Fail/Success, and
// the retry policy is pure arithmetic — the server and client translate
// them into 429/503 status codes, Retry-After headers, and sleep loops.
package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Acquire when both the in-flight slots and
// the wait queue are saturated; HTTP handlers translate it to 429.
var ErrQueueFull = errors.New("resilience: admission queue full")

// ErrDeadline is returned by Acquire when the caller's deadline cannot be
// met: either the estimated queue wait already exceeds the remaining
// budget, or the deadline expired while queued.
var ErrDeadline = errors.New("resilience: deadline cannot be met")

// AdmissionConfig bounds the admission controller.
type AdmissionConfig struct {
	// MaxInFlight is the number of requests served concurrently. Must be
	// at least 1 (NewAdmission clamps).
	MaxInFlight int
	// QueueDepth is the number of requests allowed to wait for a slot
	// beyond MaxInFlight; 0 means shed as soon as every slot is busy.
	QueueDepth int
}

// AdmissionStats is the observable state of the controller, surfaced by
// the server under /v1/stats.
type AdmissionStats struct {
	// MaxInFlight and QueueDepth echo the configuration.
	MaxInFlight int `json:"max_inflight"`
	QueueDepth  int `json:"queue_depth"`
	// InFlight and Queued are instantaneous gauges.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Admitted counts requests that acquired a slot.
	Admitted int64 `json:"admitted"`
	// ShedQueueFull counts requests rejected because the wait queue was
	// saturated.
	ShedQueueFull int64 `json:"shed_queue_full"`
	// ShedDeadline counts requests rejected up front because their
	// deadline could not cover the estimated queue wait.
	ShedDeadline int64 `json:"shed_deadline"`
	// DeadlineExceeded counts requests whose deadline (or cancellation)
	// fired while they were queued.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// AvgServiceMicros is the EWMA of slot hold time, the basis of the
	// deadline estimate and the Retry-After hint.
	AvgServiceMicros float64 `json:"avg_service_micros"`
}

// waiter is one queued acquisition; grant carries the slot handoff.
type waiter struct {
	grant chan struct{}
}

// Admission is a bounded-concurrency semaphore with a bounded FIFO wait
// queue. Release hands the freed slot directly to the oldest waiter, so
// admission order is arrival order — no barging under load.
type Admission struct {
	mu       sync.Mutex
	max      int
	depth    int
	inflight int
	queue    []*waiter

	admitted         int64
	shedQueueFull    int64
	shedDeadline     int64
	deadlineExceeded int64

	// avgServiceNanos is an EWMA (alpha 1/8) of how long admitted
	// requests hold their slot; 0 until the first Release.
	avgServiceNanos float64
}

// NewAdmission returns a controller admitting at most cfg.MaxInFlight
// concurrent requests with cfg.QueueDepth waiters behind them.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &Admission{max: cfg.MaxInFlight, depth: cfg.QueueDepth}
}

// Acquire blocks until a slot is granted, the queue overflows, or the
// context's deadline fires (or provably cannot be met). A nil error means
// the caller holds a slot and must Release it exactly once.
func (a *Admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if err := ctx.Err(); err != nil {
		a.shedDeadline++
		a.mu.Unlock()
		return ErrDeadline
	}
	if a.inflight < a.max {
		a.inflight++
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.depth {
		a.shedQueueFull++
		a.mu.Unlock()
		return ErrQueueFull
	}
	// Deadline-aware shedding: if the estimated time to reach the front
	// of the queue already exceeds the caller's remaining budget, fail
	// now instead of burning a queue slot on a request that will time
	// out anyway. The estimate is the EWMA service time times the number
	// of departures that must happen first, spread over max slots.
	if dl, ok := ctx.Deadline(); ok && a.avgServiceNanos > 0 {
		waitNanos := a.avgServiceNanos * float64(len(a.queue)+1) / float64(a.max)
		if time.Until(dl) < time.Duration(waitNanos) {
			a.shedDeadline++
			a.mu.Unlock()
			return ErrDeadline
		}
	}
	w := &waiter{grant: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.deadlineExceeded++
				a.mu.Unlock()
				return ErrDeadline
			}
		}
		a.mu.Unlock()
		// The grant raced the deadline: the slot is already ours, so the
		// late cancellation loses and the request proceeds.
		<-w.grant
		return nil
	}
}

// Release frees the caller's slot, handing it to the oldest waiter if any.
// held is how long the slot was occupied; it feeds the service-time EWMA.
func (a *Admission) Release(held time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if h := float64(held.Nanoseconds()); h > 0 {
		if a.avgServiceNanos == 0 {
			a.avgServiceNanos = h
		} else {
			a.avgServiceNanos += (h - a.avgServiceNanos) / 8
		}
	}
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.admitted++
		close(w.grant) // slot passes directly; inflight is unchanged
		return
	}
	a.inflight--
}

// RetryAfter estimates how long a shed caller should wait before trying
// again: the time for the current backlog to drain, floored at a second.
func (a *Admission) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	est := time.Duration(a.avgServiceNanos * float64(len(a.queue)+1) / float64(a.max))
	if est < time.Second {
		est = time.Second
	}
	return est.Round(time.Second)
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxInFlight:      a.max,
		QueueDepth:       a.depth,
		InFlight:         a.inflight,
		Queued:           len(a.queue),
		Admitted:         a.admitted,
		ShedQueueFull:    a.shedQueueFull,
		ShedDeadline:     a.shedDeadline,
		DeadlineExceeded: a.deadlineExceeded,
		AvgServiceMicros: a.avgServiceNanos / 1e3,
	}
}
