package attack

import (
	"fmt"
	"math"
	"math/rand"

	"trajforge/internal/dtw"
	"trajforge/internal/geo"
	"trajforge/internal/nn"
	"trajforge/internal/trajectory"
)

// Scenario selects which loss the optimizer minimises.
type Scenario int

// Attack scenarios from the paper.
const (
	// ScenarioNavigation forges a trajectory around a navigation-planned
	// route the attacker never travelled (Eq. 1).
	ScenarioNavigation Scenario = iota + 1
	// ScenarioReplay forges a trajectory from the attacker's own historical
	// trajectory, keeping DTW >= MinD so the server's replay check fails
	// (Eq. 2–3).
	ScenarioReplay
)

// smoothNoise draws an autocorrelated offset series (one-step correlation
// 0.9) with stationary standard deviation sd.
func smoothNoise(rng *rand.Rand, n int, sd float64) []float64 {
	const rho = 0.9
	out := make([]float64, n)
	out[0] = rng.NormFloat64() * sd
	innov := sd * math.Sqrt(1-rho*rho)
	for i := 1; i < n; i++ {
		out[i] = rho*out[i-1] + rng.NormFloat64()*innov
	}
	return out
}

func (s Scenario) String() string {
	switch s {
	case ScenarioNavigation:
		return "navigation"
	case ScenarioReplay:
		return "replay"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// CWConfig configures the optimizer.
type CWConfig struct {
	Scenario Scenario
	// Iterations is the optimization budget (the paper settles on 1,500).
	Iterations int
	// Lambda is the initial weight of the classification term; it is
	// auto-adjusted during the run as in the paper ("the parameters λ …
	// automatically adjusted").
	Lambda float64
	// AdjustEvery controls how often lambda adapts.
	AdjustEvery int
	// LearningRate is the Adam step size on positions, metres.
	LearningRate float64
	// MinDPerMeter is the replay threshold in DTW-per-metre (Sec. IV-A3);
	// required for ScenarioReplay.
	MinDPerMeter float64
	// Delta is the small safety margin above MinD (Eq. 2), expressed as a
	// fraction of the MinD threshold.
	Delta float64
	// InitNoiseSD perturbs the starting point of the search, metres.
	InitNoiseSD float64
	// ControlEvery parameterises the perturbation with one control offset
	// every k trajectory points, linearly interpolated in between
	// (endpoints fixed at zero). A smooth, low-dimensional perturbation
	// basis keeps the forged kinematics plausible, which is what lets the
	// adversarial trajectory transfer past motion-statistic detectors;
	// 0 disables the basis and optimises every point freely.
	ControlEvery int
	// UseSoftDTW replaces the hard-DTW subgradient in the distance term
	// with the exact soft-DTW gradient (squared-Euclidean local cost,
	// smoothing SoftGamma). An ablation of the optimizer's distance signal
	// (DESIGN.md §5); only supported in the navigation scenario.
	UseSoftDTW bool
	// SoftGamma is the soft-DTW smoothing (default 1.0).
	SoftGamma float64
	// Seed drives the initial perturbation.
	Seed int64
	// TargetConfidence is the classifier probability above which the fake
	// counts as adversarial (0.5 if unset).
	TargetConfidence float64
}

// DefaultCWConfig mirrors the paper's final settings at this repository's
// scale.
func DefaultCWConfig(scenario Scenario) CWConfig {
	return CWConfig{
		Scenario:         scenario,
		Iterations:       1500,
		Lambda:           5.0,
		AdjustEvery:      50,
		LearningRate:     0.35,
		Delta:            0.05,
		InitNoiseSD:      1.2,
		ControlEvery:     6,
		TargetConfidence: 0.5,
	}
}

// IterStat records one optimizer iteration for the Fig. 3 curves.
type IterStat struct {
	Iteration int
	Loss      float64
	ProbReal  float64
	DTW       float64
	// BestDTW is the smallest DTW among adversarial iterates so far
	// (+Inf until the first adversarial example is found).
	BestDTW float64
}

// Result is the outcome of one attack run.
type Result struct {
	// Success reports whether an adversarial trajectory was found.
	Success bool
	// Forged is the best adversarial trajectory (nil when Success is
	// false).
	Forged *trajectory.T
	// ProbReal is the target classifier's P(real) for Forged.
	ProbReal float64
	// DTW is the distance between Forged and the reference.
	DTW float64
	// FirstAdversarialIter is the iteration at which the first adversarial
	// example appeared (-1 when none).
	FirstAdversarialIter int
	// History holds one entry per iteration (only when
	// CWConfig.RecordHistory was requested via Forge's record flag).
	History []IterStat
}

// Forger runs C&W-style attacks against a fixed target classifier.
type Forger struct {
	target *nn.Classifier
	kind   trajectory.FeatureKind
}

// NewForger returns a forger attacking the given classifier, which consumes
// sequences of the given feature kind (model C uses FeatureDistAngle).
func NewForger(target *nn.Classifier, kind trajectory.FeatureKind) *Forger {
	return &Forger{target: target, kind: kind}
}

// Forge runs the attack starting from the reference trajectory. record
// enables per-iteration history (used by the Fig. 3 experiment).
func (f *Forger) Forge(ref *trajectory.T, cfg CWConfig, record bool) (*Result, error) {
	if ref.Len() < 3 {
		return nil, fmt.Errorf("attack: reference trajectory too short (%d points)", ref.Len())
	}
	if cfg.Scenario == 0 {
		return nil, fmt.Errorf("attack: scenario not set")
	}
	if cfg.Scenario == ScenarioReplay && cfg.MinDPerMeter <= 0 {
		return nil, fmt.Errorf("attack: replay scenario requires MinDPerMeter > 0")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1500
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 5
	}
	if cfg.AdjustEvery <= 0 {
		cfg.AdjustEvery = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.35
	}
	if cfg.TargetConfidence <= 0 {
		cfg.TargetConfidence = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	refPos := ref.Positions()
	n := len(refPos)
	// MinD threshold in absolute DTW units.
	minDAbs := cfg.MinDPerMeter * geo.PolylineLength(refPos)

	// The perturbation lives in a smooth basis: control offsets every
	// ControlEvery points, linearly interpolated, endpoints pinned at zero
	// (the attack goal fixes P1 = S and Pn = D). The initial offsets are
	// autocorrelated noise — white noise would leave a jitter signature
	// that motion-statistic detectors catch even after optimization.
	basis := newOffsetBasis(n, cfg.ControlEvery)
	ctrl := make([]geo.Point, basis.K)
	offX := smoothNoise(rng, basis.K, cfg.InitNoiseSD)
	offY := smoothNoise(rng, basis.K, cfg.InitNoiseSD)
	for j := 1; j < basis.K-1; j++ {
		ctrl[j] = geo.Point{X: offX[j], Y: offY[j]}
	}
	cur := make([]geo.Point, n)
	basis.apply(cur, refPos, ctrl)

	// Adam state over the control points.
	mX := make([]geo.Point, basis.K)
	vX := make([]geo.Point, basis.K)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	lambda := cfg.Lambda
	res := &Result{FirstAdversarialIter: -1}
	bestDTW := math.Inf(1)
	var bestPos []geo.Point
	var bestProb float64
	successesInWindow := 0

	for iter := 1; iter <= cfg.Iterations; iter++ {
		// Classification term and its gradient.
		seq := trajectory.SequenceFromPositions(cur, f.kind)
		seqGrad, entLoss, prob := f.target.InputGrad(seq, 1) // target label: real
		posGradEnt := trajectory.SequenceGradToPositions(cur, f.kind, seqGrad)

		// Distance term and its gradient.
		var d float64
		var dtwGrad []geo.Point
		var err error
		if cfg.UseSoftDTW && cfg.Scenario == ScenarioNavigation {
			gamma := cfg.SoftGamma
			if gamma <= 0 {
				gamma = 1
			}
			var soft float64
			soft, dtwGrad, err = dtw.SoftGradB(refPos, cur, gamma)
			if err != nil {
				return nil, fmt.Errorf("attack: soft-DTW gradient: %w", err)
			}
			// Report distances on the hard-DTW scale so feasibility and
			// history stay comparable across the ablation.
			d = dtw.Dist(refPos, cur)
			_ = soft
		} else {
			d, dtwGrad, err = dtw.GradB(refPos, cur, dtw.Options{})
			if err != nil {
				return nil, fmt.Errorf("attack: DTW gradient: %w", err)
			}
		}
		distLoss := d
		distScale := 1.0
		if cfg.Scenario == ScenarioReplay {
			// loss2 = max(DTW, 2(MinD+delta) - DTW)  (Eq. 2)
			mirror := 2*(minDAbs+cfg.Delta*minDAbs) - d
			if mirror > d {
				distLoss = mirror
				distScale = -1 // the active branch decreases in d
			}
		}

		loss := lambda*entLoss + distLoss
		adversarial := prob >= cfg.TargetConfidence
		feasible := adversarial
		if cfg.Scenario == ScenarioReplay {
			feasible = feasible && d >= minDAbs
		}
		if feasible {
			if res.FirstAdversarialIter < 0 {
				res.FirstAdversarialIter = iter
			}
			successesInWindow++
			if d < bestDTW {
				bestDTW = d
				bestPos = append([]geo.Point(nil), cur...)
				bestProb = prob
			}
		}
		if record {
			res.History = append(res.History, IterStat{
				Iteration: iter,
				Loss:      loss,
				ProbReal:  prob,
				DTW:       d,
				BestDTW:   bestDTW,
			})
		}

		// Combined per-point gradient, pulled back onto the control basis;
		// endpoint controls stay pinned.
		pointGrad := make([]geo.Point, n)
		for i := 0; i < n; i++ {
			pointGrad[i].X = lambda*posGradEnt[i].X + distScale*dtwGrad[i].X
			pointGrad[i].Y = lambda*posGradEnt[i].Y + distScale*dtwGrad[i].Y
		}
		ctrlGrad := basis.pullback(pointGrad)
		biasCorr1 := 1 - math.Pow(beta1, float64(iter))
		biasCorr2 := 1 - math.Pow(beta2, float64(iter))
		for j := 1; j < basis.K-1; j++ {
			gx := ctrlGrad[j].X
			gy := ctrlGrad[j].Y
			mX[j].X = beta1*mX[j].X + (1-beta1)*gx
			mX[j].Y = beta1*mX[j].Y + (1-beta1)*gy
			vX[j].X = beta2*vX[j].X + (1-beta2)*gx*gx
			vX[j].Y = beta2*vX[j].Y + (1-beta2)*gy*gy
			ctrl[j].X -= cfg.LearningRate * (mX[j].X / biasCorr1) / (math.Sqrt(vX[j].X/biasCorr2) + eps)
			ctrl[j].Y -= cfg.LearningRate * (mX[j].Y / biasCorr1) / (math.Sqrt(vX[j].Y/biasCorr2) + eps)
		}
		basis.apply(cur, refPos, ctrl)

		// Lambda auto-adjustment, C&W style: if the window produced
		// adversarial iterates, shift weight to the distance term;
		// otherwise strengthen the classification term.
		if iter%cfg.AdjustEvery == 0 {
			if successesInWindow > cfg.AdjustEvery/2 {
				lambda *= 0.8
			} else if successesInWindow == 0 {
				lambda *= 1.6
			}
			lambda = math.Min(1e4, math.Max(1e-3, lambda))
			successesInWindow = 0
		}
	}

	if bestPos == nil {
		return res, nil
	}
	forged, err := ref.WithPositions(bestPos)
	if err != nil {
		return nil, fmt.Errorf("attack: assemble forged trajectory: %w", err)
	}
	res.Success = true
	res.Forged = forged
	res.ProbReal = bestProb
	res.DTW = bestDTW
	return res, nil
}

// offsetBasis maps K control offsets onto n per-point offsets by linear
// (hat-function) interpolation. Control 0 sits on point 0 and control K-1
// on point n-1; both stay zero so the endpoints never move.
type offsetBasis struct {
	n, K    int
	segment float64 // points per control interval
}

func newOffsetBasis(n, controlEvery int) *offsetBasis {
	if controlEvery <= 0 || controlEvery >= n {
		// Degenerate: one control per point.
		return &offsetBasis{n: n, K: n, segment: 1}
	}
	k := (n-1+controlEvery-1)/controlEvery + 1
	if k < 3 {
		k = 3
	}
	return &offsetBasis{n: n, K: k, segment: float64(n-1) / float64(k-1)}
}

// weights returns the two control indices and interpolation weights of
// point i.
func (b *offsetBasis) weights(i int) (j0, j1 int, w0, w1 float64) {
	pos := float64(i) / b.segment
	j0 = int(pos)
	if j0 >= b.K-1 {
		return b.K - 1, b.K - 1, 1, 0
	}
	frac := pos - float64(j0)
	return j0, j0 + 1, 1 - frac, frac
}

// apply sets cur[i] = ref[i] + interpolated control offset.
func (b *offsetBasis) apply(cur, ref []geo.Point, ctrl []geo.Point) {
	for i := 0; i < b.n; i++ {
		j0, j1, w0, w1 := b.weights(i)
		cur[i].X = ref[i].X + w0*ctrl[j0].X + w1*ctrl[j1].X
		cur[i].Y = ref[i].Y + w0*ctrl[j0].Y + w1*ctrl[j1].Y
	}
}

// pullback maps a per-point gradient to the control points (the transpose
// of apply).
func (b *offsetBasis) pullback(pointGrad []geo.Point) []geo.Point {
	out := make([]geo.Point, b.K)
	for i := 0; i < b.n; i++ {
		j0, j1, w0, w1 := b.weights(i)
		out[j0].X += w0 * pointGrad[i].X
		out[j0].Y += w0 * pointGrad[i].Y
		out[j1].X += w1 * pointGrad[i].X
		out[j1].Y += w1 * pointGrad[i].Y
	}
	return out
}
