// Package attack implements the paper's trajectory forgery methods
// (Sec. II): the naive baseline attacks (noisy replay of a historical
// trajectory and resampled navigation routes) and the machine-learning
// forgery — a C&W-style optimization that produces adversarial trajectories
// which a target LSTM classifier accepts as real while staying close (in
// DTW) to a rational reference route, and, in the replay scenario, at least
// MinD away from the historical original (Eq. 1–3).
package attack

import (
	"fmt"
	"math/rand"

	"trajforge/internal/dtw"
	"trajforge/internal/geo"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
)

// NaiveNoiseSD is the per-axis standard deviation of the naive attack's
// white noise. The paper draws it from the measured GPS error distribution
// N(0, 0.25) (variance 0.25 m², i.e. σ = 0.5 m).
const NaiveNoiseSD = 0.5

// NaiveReplay returns a copy of the historical trajectory with i.i.d.
// Gaussian noise added to every coordinate — the naive replay attack of
// Sec. IV-A2.
func NaiveReplay(rng *rand.Rand, hist *trajectory.T) *trajectory.T {
	cp := hist.Clone()
	for i := range cp.Points {
		cp.Points[i].Pos.X += stats.Normal(rng, 0, NaiveNoiseSD)
		cp.Points[i].Pos.Y += stats.Normal(rng, 0, NaiveNoiseSD)
	}
	return cp
}

// NaiveNavigation perturbs a constant-speed navigation sample the same way
// ("to avoid being directly detected … the trajectories in AN also need to
// perform naive attacks").
func NaiveNavigation(rng *rand.Rand, sample *trajectory.T) *trajectory.T {
	return NaiveReplay(rng, sample)
}

// MinDEstimate computes the paper's MinD threshold from repeated traversals
// of the same route: the minimum pairwise DTW distance between any two of
// the trajectories, normalised per metre of route length. The fake
// trajectory must keep at least this distance from the historical one or be
// flagged as a byte-level replay.
func MinDEstimate(trajs []*trajectory.T) (perMeter float64, err error) {
	if len(trajs) < 2 {
		return 0, fmt.Errorf("attack: need >= 2 traversals to estimate MinD, got %d", len(trajs))
	}
	positions := make([][]geo.Point, len(trajs))
	for i, tr := range trajs {
		positions[i] = tr.Positions()
	}
	min := -1.0
	for i := 0; i < len(positions); i++ {
		for j := i + 1; j < len(positions); j++ {
			d := dtw.Dist(positions[i], positions[j])
			pm := dtw.PerMeter(d, positions[i])
			if min < 0 || pm < min {
				min = pm
			}
		}
	}
	return min, nil
}
