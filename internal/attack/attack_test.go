package attack

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/dtw"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/nav"
	"trajforge/internal/nn"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
)

var _t0 = time.Date(2022, 5, 2, 9, 0, 0, 0, time.UTC)

// testWorld builds a small attack scenario: a road network, a batch of real
// walking trajectories, naive navigation fakes, and a trained target
// classifier. Built once and reused across tests (read-only afterwards).
type testWorld struct {
	svc    *nav.Service
	target *nn.Classifier
	reals  []*trajectory.T
	navs   []*trajectory.T // clean navigation samples (pre-noise)
}

var _world *testWorld

func world(t *testing.T) *testWorld {
	t.Helper()
	if _world != nil {
		return _world
	}
	rng := rand.New(rand.NewSource(1))
	g, err := roadnet.Generate(rng, roadnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := nav.NewService(g)

	const nPer = 120
	const points = 40
	var samples []nn.Sample
	w := &testWorld{svc: svc}
	for i := 0; i < nPer; i++ {
		from, to, err := nav.RandomTripEndpoints(rng, g, 250)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := svc.Route(from, to, trajectory.ModeWalking)
		if err != nil {
			continue
		}
		// Real trajectory: mobility simulation along the planned route.
		tk, err := mobility.Simulate(rng, mobility.Options{
			Route: plan.Polyline, Mode: trajectory.ModeWalking,
			Start: _t0, Interval: time.Second, MaxPoints: points,
		})
		if err != nil {
			t.Fatal(err)
		}
		real := tk.Trajectory()
		if real.Len() < points {
			continue
		}
		w.reals = append(w.reals, real)
		samples = append(samples, nn.Sample{
			Seq:   trajectory.SequenceFeatures(real, trajectory.FeatureDistAngle),
			Label: 1,
		})
		// Naive navigation fake.
		clean := plan.Sample(_t0, time.Second, points)
		if clean.Len() < points {
			continue
		}
		w.navs = append(w.navs, clean)
		fake := NaiveNavigation(rng, clean)
		samples = append(samples, nn.Sample{
			Seq:   trajectory.SequenceFeatures(fake, trajectory.FeatureDistAngle),
			Label: 0,
		})
	}
	if len(w.reals) < 60 || len(w.navs) < 60 {
		t.Fatalf("too few usable trajectories: %d real, %d nav", len(w.reals), len(w.navs))
	}

	c, err := nn.NewClassifier(nn.Config{InputDim: 2, Hidden: []int{12}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(samples, nn.TrainConfig{Epochs: 10, BatchSize: 16, LearningRate: 0.005, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if acc := c.Evaluate(samples); acc < 0.9 {
		t.Fatalf("target classifier only reaches %.3f on its training data", acc)
	}
	w.target = c
	_world = w
	return w
}

func TestNaiveReplayPerturbsEveryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := trajectory.New([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}, _t0, time.Second)
	fake := NaiveReplay(rng, base)
	if fake.Len() != base.Len() {
		t.Fatal("length changed")
	}
	var moved int
	for i := range fake.Points {
		d := geo.Dist(fake.Points[i].Pos, base.Points[i].Pos)
		if d > 0 {
			moved++
		}
		if d > 5*NaiveNoiseSD {
			t.Fatalf("point %d moved %v m, implausible for sd %v", i, d, NaiveNoiseSD)
		}
	}
	if moved != base.Len() {
		t.Fatalf("only %d/%d points perturbed", moved, base.Len())
	}
	// The original must be untouched.
	if base.Points[0].Pos != (geo.Point{X: 0, Y: 0}) {
		t.Fatal("original mutated")
	}
}

func TestMinDEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	route := []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}}
	tracks, err := mobility.RepeatRoute(rng, mobility.Options{
		Route: route, Mode: trajectory.ModeWalking,
		Start: _t0, Interval: time.Second, MaxPoints: 50,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	trajs := make([]*trajectory.T, len(tracks))
	for i, tk := range tracks {
		trajs[i] = tk.Trajectory()
	}
	minD, err := MinDEstimate(trajs)
	if err != nil {
		t.Fatal(err)
	}
	// Walking repetitions should differ by roughly 0.3-3 DTW/m (the paper
	// measures 1.2).
	if minD < 0.1 || minD > 5 {
		t.Fatalf("MinD = %v, implausible", minD)
	}
	if _, err := MinDEstimate(trajs[:1]); err == nil {
		t.Fatal("single trajectory must error")
	}
}

func TestForgeErrors(t *testing.T) {
	w := world(t)
	f := NewForger(w.target, trajectory.FeatureDistAngle)
	short := trajectory.New([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, _t0, time.Second)
	if _, err := f.Forge(short, DefaultCWConfig(ScenarioNavigation), false); err == nil {
		t.Fatal("short reference must error")
	}
	cfg := DefaultCWConfig(ScenarioReplay)
	cfg.MinDPerMeter = 0
	if _, err := f.Forge(w.reals[0], cfg, false); err == nil {
		t.Fatal("replay without MinD must error")
	}
	if _, err := f.Forge(w.reals[0], CWConfig{}, false); err == nil {
		t.Fatal("unset scenario must error")
	}
}

func TestForgeNavigationScenario(t *testing.T) {
	w := world(t)
	f := NewForger(w.target, trajectory.FeatureDistAngle)

	ref := w.navs[0]
	// Sanity: the clean navigation sample must look fake to the target.
	seq := trajectory.SequenceFeatures(ref, trajectory.FeatureDistAngle)
	if p := w.target.Forward(seq); p >= 0.5 {
		t.Skipf("navigation sample already classified real (p=%v); classifier too weak", p)
	}

	cfg := DefaultCWConfig(ScenarioNavigation)
	cfg.Iterations = 600
	cfg.Seed = 11
	res, err := f.Forge(ref, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("navigation attack failed to find an adversarial trajectory")
	}
	if res.ProbReal < 0.5 {
		t.Fatalf("forged trajectory has P(real) = %v", res.ProbReal)
	}
	// Route rationality: forged stays close to the reference route.
	if perM := dtw.PerMeter(res.DTW, ref.Positions()); perM > 6 {
		t.Fatalf("forged trajectory strays %v DTW/m from the route", perM)
	}
	// Endpoints pinned.
	if res.Forged.Start().Pos != ref.Start().Pos || res.Forged.End().Pos != ref.End().Pos {
		t.Fatal("endpoints moved")
	}
	// History recorded and monotone best-DTW.
	if len(res.History) != cfg.Iterations {
		t.Fatalf("history has %d entries, want %d", len(res.History), cfg.Iterations)
	}
	prev := math.Inf(1)
	for _, h := range res.History {
		if h.BestDTW > prev+1e-9 {
			t.Fatal("BestDTW must be non-increasing")
		}
		prev = h.BestDTW
	}
	if res.FirstAdversarialIter <= 0 {
		t.Fatal("first adversarial iteration not recorded")
	}
}

func TestForgeReplayScenario(t *testing.T) {
	w := world(t)
	f := NewForger(w.target, trajectory.FeatureDistAngle)

	hist := w.reals[1]
	const minD = 1.0 // DTW/m, near the paper's measured walking value
	cfg := DefaultCWConfig(ScenarioReplay)
	cfg.Iterations = 600
	cfg.MinDPerMeter = minD
	cfg.Seed = 13
	res, err := f.Forge(hist, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("replay attack failed")
	}
	if res.ProbReal < 0.5 {
		t.Fatalf("P(real) = %v", res.ProbReal)
	}
	// The forged trajectory must be at least MinD away from the historical
	// one (no replay flag) but not absurdly far (route rationality).
	histPos := hist.Positions()
	minDAbs := minD * geo.PolylineLength(histPos)
	if res.DTW < minDAbs {
		t.Fatalf("DTW %v below the replay threshold %v", res.DTW, minDAbs)
	}
	if res.DTW > 8*minDAbs {
		t.Fatalf("DTW %v too far above threshold %v", res.DTW, minDAbs)
	}
}

func TestForgeDeterministicPerSeed(t *testing.T) {
	w := world(t)
	f := NewForger(w.target, trajectory.FeatureDistAngle)
	cfg := DefaultCWConfig(ScenarioNavigation)
	cfg.Iterations = 120
	cfg.Seed = 21
	r1, err := f.Forge(w.navs[1], cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Forge(w.navs[1], cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Success != r2.Success || math.Abs(r1.DTW-r2.DTW) > 1e-9 {
		t.Fatal("same seed produced different attacks")
	}
}

func TestScenarioString(t *testing.T) {
	if ScenarioNavigation.String() != "navigation" || ScenarioReplay.String() != "replay" {
		t.Fatal("scenario names wrong")
	}
	if Scenario(9).String() == "" {
		t.Fatal("unknown scenario must format")
	}
}

// TestOffsetBasisAdjoint checks that pullback is the exact transpose of
// apply: <apply(ctrl), g> == <ctrl, pullback(g)> for the offset part.
func TestOffsetBasisAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(60)
		every := 1 + rng.Intn(10)
		basis := newOffsetBasis(n, every)

		ctrl := make([]geo.Point, basis.K)
		for j := range ctrl {
			ctrl[j] = geo.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		}
		g := make([]geo.Point, n)
		for i := range g {
			g[i] = geo.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		}

		ref := make([]geo.Point, n) // zeros: apply output = offsets
		cur := make([]geo.Point, n)
		basis.apply(cur, ref, ctrl)

		var lhs float64
		for i := range cur {
			lhs += cur[i].X*g[i].X + cur[i].Y*g[i].Y
		}
		pb := basis.pullback(g)
		var rhs float64
		for j := range pb {
			rhs += ctrl[j].X*pb[j].X + ctrl[j].Y*pb[j].Y
		}
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("n=%d every=%d: <apply(c),g>=%v != <c,pullback(g)>=%v", n, every, lhs, rhs)
		}
	}
}

func TestOffsetBasisEndpointsPinned(t *testing.T) {
	basis := newOffsetBasis(30, 6)
	ctrl := make([]geo.Point, basis.K)
	for j := range ctrl {
		ctrl[j] = geo.Point{X: 5, Y: -3}
	}
	ctrl[0] = geo.Point{}
	ctrl[basis.K-1] = geo.Point{}
	ref := make([]geo.Point, 30)
	cur := make([]geo.Point, 30)
	basis.apply(cur, ref, ctrl)
	if cur[0] != (geo.Point{}) || cur[29] != (geo.Point{}) {
		t.Fatalf("endpoints moved: %v, %v", cur[0], cur[29])
	}
}

func TestOffsetBasisDegenerate(t *testing.T) {
	// controlEvery <= 0 or >= n falls back to per-point control.
	b := newOffsetBasis(10, 0)
	if b.K != 10 {
		t.Fatalf("degenerate basis K = %d, want 10", b.K)
	}
	b = newOffsetBasis(10, 100)
	if b.K != 10 {
		t.Fatalf("oversized spacing K = %d, want 10", b.K)
	}
}

func TestForgeSoftDTWVariant(t *testing.T) {
	w := world(t)
	f := NewForger(w.target, trajectory.FeatureDistAngle)
	cfg := DefaultCWConfig(ScenarioNavigation)
	cfg.Iterations = 250
	cfg.UseSoftDTW = true
	cfg.SoftGamma = 1.0
	cfg.Seed = 61
	res, err := f.Forge(w.navs[2], cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	// The soft variant must at minimum run to completion and report sane
	// numbers; convergence quality is measured by the ablation bench.
	if res.Success && (res.DTW < 0 || res.ProbReal < 0.5) {
		t.Fatalf("inconsistent soft-DTW result: %+v", res)
	}
}
