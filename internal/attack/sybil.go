package attack

// Sybil crowdsourcing-poisoning campaign. Unlike the trajectory-level
// attacks in this package (naive navigation, C&W perturbation), the Sybil
// campaign does not try to slip one forged upload past the detector — it
// attacks the crowdsourced reference store itself. A roster of colluding
// uploader identities submits otherwise-honest trips whose WiFi scans near
// a target location are shifted, a little more each round, toward a
// fabricated radio story. Every accepted poison upload moves the target
// tile's reference-point distribution; once the store believes the story,
// a forgery claiming the target position with the fabricated scans passes
// the RSSI countermeasure that would have caught it on day one.
//
// The campaign is fully deterministic in its inputs: the caller supplies
// the carrier-track source (seed-derived city trips), and the poisoning
// schedule is a pure function of the round index.

import (
	"fmt"

	"trajforge/internal/geo"
	"trajforge/internal/wifi"
)

// SybilOptions parameterises a poisoning campaign.
type SybilOptions struct {
	// Sybils is the number of colluding uploader identities. Default 6.
	Sybils int
	// MaxRounds caps the campaign length. Default 24.
	MaxRounds int
	// StepDB is the adaptive ramp increment: the campaign raises the
	// story shift by StepDB after a well-accepted round and retreats by
	// StepDB after a badly-rejected one, so the poison tracks the
	// provider's evolving acceptance boundary instead of running a blind
	// schedule. Default 2.
	StepDB int
	// Target is the attacked location; scans measured within Radius of it
	// are the ones the campaign shifts. Default radius 35 m.
	Target geo.Point
	Radius float64
	// DeltaDB is the full-strength story: the per-AP RSSI shift (dB) the
	// campaign drives the target's reference points toward. Default 14.
	DeltaDB int
}

func (o *SybilOptions) setDefaults() {
	if o.Sybils <= 0 {
		o.Sybils = 6
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 24
	}
	if o.StepDB <= 0 {
		o.StepDB = 2
	}
	if o.Radius <= 0 {
		o.Radius = 35
	}
	if o.DeltaDB == 0 {
		o.DeltaDB = 14
	}
}

// Defaulted returns a copy of the options with every unset field filled
// with its default, so callers that size carrier trips or report campaign
// parameters see the values the campaign will actually run with.
func (o SybilOptions) Defaulted() SybilOptions {
	o.setDefaults()
	return o
}

// SybilName returns the campaign's uploader identity for sybil index i.
func SybilName(i int) string { return fmt.Sprintf("sybil-%03d", i) }

// PoisonUpload turns one honest carrier trip into a poison upload: scans
// taken within Radius of the target are shifted by the given story shift
// (dB). The trajectory itself stays genuine — the poison must keep
// passing the motion, route, and replay stages; only the radio story near
// the target is bent.
func (o *SybilOptions) PoisonUpload(u *wifi.Upload, shiftDB int) *wifi.Upload {
	return o.shifted(u, shiftDB)
}

// ProbeUpload builds the breach probe from an honest carrier trip: the
// claimed trajectory is kept, but every scan near the target reports the
// full-strength fabricated story. Against a clean store this is exactly
// the forgery class the RSSI countermeasure catches (claimed position with
// a radio environment measured nowhere near it); it passes only once the
// store's reference points have been dragged onto the story.
func (o *SybilOptions) ProbeUpload(u *wifi.Upload) *wifi.Upload {
	return o.shifted(u, o.DeltaDB)
}

// shifted clones the upload, adding delta dB to every observation of every
// scan whose fix lies within Radius of the target.
func (o *SybilOptions) shifted(u *wifi.Upload, delta int) *wifi.Upload {
	out := &wifi.Upload{
		Traj:        u.Traj,
		Scans:       make([]wifi.Scan, len(u.Scans)),
		Contributor: u.Contributor,
	}
	pos := u.Traj.Positions()
	for i, scan := range u.Scans {
		if i < len(pos) && geo.Dist(pos[i], o.Target) <= o.Radius {
			cp := scan.Clone()
			for j := range cp {
				cp[j].RSSI += delta
			}
			out.Scans[i] = cp
		} else {
			out.Scans[i] = scan
		}
	}
	return out
}

// TouchesTarget reports whether the upload has at least minPoints fixes
// within the campaign radius — carrier trips that never pass the target
// carry no poison and waste a round.
func (o *SybilOptions) TouchesTarget(u *wifi.Upload, minPoints int) bool {
	n := 0
	for _, p := range u.Traj.Positions() {
		if geo.Dist(p, o.Target) <= o.Radius {
			n++
			if n >= minPoints {
				return true
			}
		}
	}
	return false
}

// SybilReport is the measured outcome of one campaign.
type SybilReport struct {
	// Breached is true when a probe finally passed verification;
	// BreachRound is the 1-based round it happened in (0 = never).
	Breached    bool `json:"breached"`
	BreachRound int  `json:"breach_round"`
	// PoisonSent / PoisonAccepted count the campaign's uploads — accepted
	// poison is the attacker's cost metric: every accepted upload is one
	// the defence let through, and a defence that forces more of them
	// before the breach has raised the attack's price.
	PoisonSent     int `json:"poison_sent"`
	PoisonAccepted int `json:"poison_accepted"`
	// ProbePFakeFirst / ProbePFakeLast are the detector's scores for the
	// first and last probe — the distance the store's belief moved.
	ProbePFakeFirst float64 `json:"probe_pfake_first"`
	ProbePFakeLast  float64 `json:"probe_pfake_last"`
	// FinalShiftDB is the story shift the adaptive ramp reached by the
	// end of the campaign — how far the provider let the story run.
	FinalShiftDB int `json:"final_shift_db"`
}

// SybilCampaign drives the poisoning loop against a provider the caller
// abstracts behind two callbacks:
//
//   - submit posts one poison upload under the given sybil identity and
//     reports whether the provider accepted (and therefore ingested) it;
//   - probe verifies the breach forgery WITHOUT ingesting it and returns
//     the detector's pFake plus the overall verdict.
//
// carrier(sybil, round) supplies the honest trip the round's poison rides
// on. The loop runs until a probe passes or MaxRounds is exhausted.
//
// The story shift ramps adaptively: it starts at StepDB and after each
// round moves by StepDB — up (capped at DeltaDB) when at least two thirds
// of the round's poison was accepted, down (floored at StepDB) when less
// than a third was. A patient attacker watching accept/reject feedback
// would do exactly this: push while the provider swallows the story, back
// off the moment it balks.
func (o SybilOptions) SybilCampaign(
	carrier func(sybil, round int) (*wifi.Upload, error),
	submit func(name string, u *wifi.Upload) (bool, error),
	probe func(round int) (pFake float64, passed bool, err error),
) (*SybilReport, error) {
	o.setDefaults()
	rep := &SybilReport{}
	shift := o.StepDB
	for round := 0; round < o.MaxRounds; round++ {
		accepted := 0
		for s := 0; s < o.Sybils; s++ {
			u, err := carrier(s, round)
			if err != nil {
				return nil, fmt.Errorf("attack: sybil carrier %d/%d: %w", s, round, err)
			}
			ok, err := submit(SybilName(s), o.PoisonUpload(u, shift))
			if err != nil {
				return nil, fmt.Errorf("attack: sybil submit %d/%d: %w", s, round, err)
			}
			rep.PoisonSent++
			if ok {
				accepted++
			}
		}
		rep.PoisonAccepted += accepted
		rep.FinalShiftDB = shift
		switch {
		case accepted*3 >= o.Sybils*2:
			shift += o.StepDB
			if shift > o.DeltaDB {
				shift = o.DeltaDB
			}
		case accepted*3 < o.Sybils:
			shift -= o.StepDB
			if shift < o.StepDB {
				shift = o.StepDB
			}
		}
		pFake, passed, err := probe(round)
		if err != nil {
			return nil, fmt.Errorf("attack: sybil probe %d: %w", round, err)
		}
		if round == 0 {
			rep.ProbePFakeFirst = pFake
		}
		rep.ProbePFakeLast = pFake
		if passed {
			rep.Breached = true
			rep.BreachRound = round + 1
			return rep, nil
		}
	}
	return rep, nil
}
