package nav

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
)

var _t0 = time.Date(2022, 4, 1, 10, 0, 0, 0, time.UTC)

func testService(t *testing.T) *Service {
	t.Helper()
	g, err := roadnet.Generate(rand.New(rand.NewSource(10)), roadnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewService(g)
}

func TestRouteBasics(t *testing.T) {
	s := testService(t)
	plan, err := s.Route(geo.Point{X: 20, Y: 20}, geo.Point{X: 750, Y: 550}, trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Polyline) < 2 {
		t.Fatalf("polyline too short: %d", len(plan.Polyline))
	}
	if plan.Length < 700 {
		t.Fatalf("route length %v implausibly short", plan.Length)
	}
	if plan.RecommendedSpeed <= 0 {
		t.Fatalf("recommended speed %v", plan.RecommendedSpeed)
	}
	if plan.Mode != trajectory.ModeWalking {
		t.Fatal("mode not set")
	}
	wantDur := plan.Length / plan.RecommendedSpeed
	if math.Abs(plan.Duration.Seconds()-wantDur) > 1 {
		t.Fatalf("duration %v inconsistent with length/speed %v", plan.Duration.Seconds(), wantDur)
	}
}

func TestRouteSameIntersectionError(t *testing.T) {
	s := testService(t)
	p := s.Graph().Node(0).Pos
	if _, err := s.Route(p, p, trajectory.ModeWalking); err == nil {
		t.Fatal("same endpoints must error")
	}
}

func TestRouteSpeedsByMode(t *testing.T) {
	s := testService(t)
	from := geo.Point{X: 10, Y: 10}
	to := geo.Point{X: 700, Y: 500}
	walk, err := s.Route(from, to, trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	drive, err := s.Route(from, to, trajectory.ModeDriving)
	if err != nil {
		t.Fatal(err)
	}
	if walk.RecommendedSpeed > 2 {
		t.Fatalf("walking speed %v too high", walk.RecommendedSpeed)
	}
	if drive.RecommendedSpeed < 2*walk.RecommendedSpeed {
		t.Fatalf("driving speed %v not much faster than walking %v",
			drive.RecommendedSpeed, walk.RecommendedSpeed)
	}
}

func TestSampleConstantKinematics(t *testing.T) {
	s := testService(t)
	plan, err := s.Route(geo.Point{X: 0, Y: 0}, geo.Point{X: 600, Y: 400}, trajectory.ModeCycling)
	if err != nil {
		t.Fatal(err)
	}
	tr := plan.Sample(_t0, time.Second, 40)
	if tr.Len() != 40 {
		t.Fatalf("len = %d, want 40", tr.Len())
	}
	if err := tr.Validate(0); err != nil {
		t.Fatal(err)
	}
	// The sampled trajectory moves at exactly the recommended speed
	// (this unnatural smoothness is what makes the AN corpus detectable).
	speeds := tr.Speeds()
	for i, v := range speeds {
		if math.Abs(v-plan.RecommendedSpeed) > 0.3 {
			t.Fatalf("speed[%d] = %v, want ~%v", i, v, plan.RecommendedSpeed)
		}
	}
}

func TestSampleRunsToRouteEnd(t *testing.T) {
	s := testService(t)
	plan, err := s.Route(geo.Point{X: 0, Y: 0}, geo.Point{X: 300, Y: 200}, trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	tr := plan.Sample(_t0, time.Second, 0)
	if tr.Len() < 2 {
		t.Fatalf("auto-length sample too short: %d", tr.Len())
	}
	last := tr.End().Pos
	routeEnd := plan.Polyline[len(plan.Polyline)-1]
	if geo.Dist(last, routeEnd) > plan.RecommendedSpeed+1 {
		t.Fatalf("sample ends %v m from route end", geo.Dist(last, routeEnd))
	}
}

func TestRandomTripEndpoints(t *testing.T) {
	s := testService(t)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20; i++ {
		from, to, err := RandomTripEndpoints(rng, s.Graph(), 300)
		if err != nil {
			t.Fatal(err)
		}
		if geo.Dist(from, to) < 300 {
			t.Fatalf("endpoints %v m apart, want >= 300", geo.Dist(from, to))
		}
	}
	if _, _, err := RandomTripEndpoints(rng, s.Graph(), 1e9); err == nil {
		t.Fatal("impossible min distance must error")
	}
}
