// Package nav is the navigation-service substrate standing in for the
// commercial navigation system (Amap / Google Maps) used by the paper's
// navigation attack. Given a start, a destination, and a transport mode it
// returns a planned route with a recommended speed, and can sample the route
// into a constant-interval trajectory — precisely the procedure the paper
// uses to build its AN dataset ("we set a reasonable speed … then sample at
// 1 s intervals on the route").
package nav

import (
	"fmt"
	"math/rand"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
	"trajforge/internal/routing"
	"trajforge/internal/trajectory"
)

// Service plans routes over a road network.
type Service struct {
	graph *roadnet.Graph
}

// NewService returns a navigation service over g.
func NewService(g *roadnet.Graph) *Service {
	return &Service{graph: g}
}

// Graph returns the underlying road network.
func (s *Service) Graph() *roadnet.Graph { return s.graph }

// Plan is a navigation result.
type Plan struct {
	// Polyline is the route geometry, start to end.
	Polyline []geo.Point
	// Length is the route length in metres.
	Length float64
	// RecommendedSpeed is the service's suggested cruise speed in m/s,
	// derived from the per-edge mode speeds (length-weighted harmonic mean,
	// i.e. total length over total travel time).
	RecommendedSpeed float64
	// Duration is the estimated travel time.
	Duration time.Duration
	Mode     trajectory.Mode
}

// Route plans a route between the road-network positions nearest to from
// and to.
func (s *Service) Route(from, to geo.Point, mode trajectory.Mode) (*Plan, error) {
	a := s.graph.NearestNode(from)
	b := s.graph.NearestNode(to)
	if a == b {
		return nil, fmt.Errorf("nav: start and destination map to the same intersection %d", a)
	}
	r, err := routing.Plan(s.graph, routing.Query{
		From: a, To: b,
		Mode:      mode,
		Objective: routing.FastestTime,
		UseAStar:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("nav: plan %v route: %w", mode, err)
	}
	var travelTime float64
	for _, eid := range r.Edges {
		e := s.graph.Edge(eid)
		travelTime += e.Length / routing.ModeSpeed(mode, e)
	}
	speed := r.Length / travelTime
	return &Plan{
		Polyline:         r.Polyline(s.graph),
		Length:           r.Length,
		RecommendedSpeed: speed,
		Duration:         time.Duration(travelTime * float64(time.Second)),
		Mode:             mode,
	}, nil
}

// Sample converts a plan into a trajectory by moving along the route at the
// recommended speed and recording a fix every interval — the naive,
// kinematically too-clean artifact the paper's AN dataset consists of.
// The trajectory ends when the route is exhausted or n points are recorded;
// n <= 0 means run to the end of the route.
func (p *Plan) Sample(start time.Time, interval time.Duration, n int) *trajectory.T {
	if n <= 0 {
		n = int(p.Length/(p.RecommendedSpeed*interval.Seconds())) + 1
	}
	pos := make([]geo.Point, 0, n)
	for i := 0; i < n; i++ {
		dist := p.RecommendedSpeed * interval.Seconds() * float64(i)
		if dist > p.Length && i > 1 {
			break
		}
		pos = append(pos, geo.PointAlong(p.Polyline, dist))
	}
	t := trajectory.New(pos, start, interval)
	t.Mode = p.Mode
	return t
}

// RandomTripEndpoints picks a random origin/destination pair of network
// nodes at least minDist metres apart, mirroring the paper's "randomly
// selected location pairs in Nanjing". It fails after a bounded number of
// attempts on degenerate networks.
func RandomTripEndpoints(rng *rand.Rand, g *roadnet.Graph, minDist float64) (from, to geo.Point, err error) {
	for i := 0; i < 256; i++ {
		a := g.Node(rng.Intn(g.NumNodes())).Pos
		b := g.Node(rng.Intn(g.NumNodes())).Pos
		if geo.Dist(a, b) >= minDist {
			return a, b, nil
		}
	}
	return geo.Point{}, geo.Point{}, fmt.Errorf("nav: no endpoints %g m apart after 256 draws", minDist)
}
