package nn

import (
	"math/rand"

	"trajforge/internal/mat"
)

// GRULayer is a gated recurrent unit layer — a second recurrent
// architecture used to extend the paper's transferability study beyond
// LSTM variants (Table II). Gates are packed row-wise in the order reset
// (r), update (z), candidate (n): row block k*H .. (k+1)*H of Wx/Wh/B
// belongs to gate k. The candidate uses the standard formulation
// n = tanh(Wx_n x + r ⊙ (Wh_n h) + b_n), h' = (1-z) ⊙ n + z ⊙ h.
type GRULayer struct {
	In, Hidden int
	Wx         *mat.Mat  // 3H x In
	Wh         *mat.Mat  // 3H x Hidden
	B          []float64 // 3H
}

// newGRULayer initialises a layer with fan-in-scaled uniform weights.
func newGRULayer(rng *rand.Rand, in, hidden int) *GRULayer {
	l := &GRULayer{
		In:     in,
		Hidden: hidden,
		Wx:     mat.New(3*hidden, in),
		Wh:     mat.New(3*hidden, hidden),
		B:      make([]float64, 3*hidden),
	}
	l.Wx.FillUniform(rng, 1.0/float64(in))
	l.Wh.FillUniform(rng, 1.0/float64(hidden))
	return l
}

// gruTape records a sequence pass for backprop.
type gruTape struct {
	T  int
	xs [][]float64
	// Per-step activations, length T*H each.
	r, z, n, h []float64
	// whn[t*H+j] caches (Wh_n h_{t-1})_j, needed by the reset-gate grad.
	whn []float64
}

func (tp *gruTape) resize(T, H int) {
	size := T * H
	if cap(tp.r) < size {
		tp.r = make([]float64, size)
		tp.z = make([]float64, size)
		tp.n = make([]float64, size)
		tp.h = make([]float64, size)
		tp.whn = make([]float64, size)
	}
	tp.r = tp.r[:size]
	tp.z = tp.z[:size]
	tp.n = tp.n[:size]
	tp.h = tp.h[:size]
	tp.whn = tp.whn[:size]
	tp.T = T
}

// forward runs the sequence through the layer, filling the tape and
// returning per-step hidden-state views.
func (l *GRULayer) forward(xs [][]float64, tp *gruTape, scratch *scratchpad) [][]float64 {
	T := len(xs)
	H := l.Hidden
	tp.resize(T, H)
	tp.xs = xs

	h := scratch.vec(H)
	zx := scratch.vec(3 * H) // Wx x + B
	zh := scratch.vec(3 * H) // Wh h
	for j := range h {
		h[j] = 0
	}
	hs := make([][]float64, T)
	for t, x := range xs {
		copy(zx, l.B)
		l.Wx.MulVecAdd(zx, x)
		for j := range zh {
			zh[j] = 0
		}
		l.Wh.MulVec(zh, h)

		base := t * H
		for j := 0; j < H; j++ {
			rv := mat.Sigmoid(zx[j] + zh[j])
			zv := mat.Sigmoid(zx[H+j] + zh[H+j])
			whn := zh[2*H+j]
			nv := mat.Tanh(zx[2*H+j] + rv*whn)
			hv := (1-zv)*nv + zv*h[j]

			tp.r[base+j] = rv
			tp.z[base+j] = zv
			tp.n[base+j] = nv
			tp.whn[base+j] = whn
			tp.h[base+j] = hv
			h[j] = hv
		}
		hs[t] = tp.h[base : base+H]
	}
	return hs
}

// gruGrads mirrors the layer's parameters.
type gruGrads struct {
	Wx *mat.Mat
	Wh *mat.Mat
	B  []float64
}

func newGRUGrads(l *GRULayer) *gruGrads {
	return &gruGrads{
		Wx: mat.New(3*l.Hidden, l.In),
		Wh: mat.New(3*l.Hidden, l.Hidden),
		B:  make([]float64, 3*l.Hidden),
	}
}

// backward runs truncated-free BPTT through the layer; dh[t] is the
// gradient arriving at h_t from above (nil = zero). Parameter gradients
// accumulate into grads when non-nil; per-step input gradients are
// returned (views into scratch storage).
func (l *GRULayer) backward(tp *gruTape, dh [][]float64, grads *gruGrads, scratch *scratchpad) [][]float64 {
	T := tp.T
	H := l.Hidden

	dxBack := scratch.vec(T * l.In)
	for i := range dxBack {
		dxBack[i] = 0
	}
	dxs := make([][]float64, T)

	dhNext := scratch.vec(H)
	dhTotal := scratch.vec(H)
	dzx := scratch.vec(3 * H) // grads w.r.t. the Wx x + B pre-activations
	dzh := scratch.vec(3 * H) // grads w.r.t. the Wh h pre-activations
	for j := 0; j < H; j++ {
		dhNext[j] = 0
	}

	for t := T - 1; t >= 0; t-- {
		base := t * H
		for j := 0; j < H; j++ {
			dhTotal[j] = dhNext[j]
		}
		if dh[t] != nil {
			for j := 0; j < H; j++ {
				dhTotal[j] += dh[t][j]
			}
		}

		for j := 0; j < H; j++ {
			rv := tp.r[base+j]
			zv := tp.z[base+j]
			nv := tp.n[base+j]
			whn := tp.whn[base+j]
			var hPrev float64
			if t > 0 {
				hPrev = tp.h[base-H+j]
			}

			g := dhTotal[j]
			dn := g * (1 - zv)
			dz := g * (hPrev - nv)
			dPreN := dn * (1 - nv*nv) // through tanh

			dr := dPreN * whn
			// Pre-activations of the sigmoid gates.
			dzx[j] = dr * rv * (1 - rv)
			dzx[H+j] = dz * zv * (1 - zv)
			dzx[2*H+j] = dPreN

			dzh[j] = dzx[j]
			dzh[H+j] = dzx[H+j]
			dzh[2*H+j] = dPreN * rv

			// Direct carry into h_{t-1}.
			dhNext[j] = g * zv
		}
		if grads != nil {
			grads.Wx.AddOuter(dzx, tp.xs[t])
			if t > 0 {
				grads.Wh.AddOuter(dzh, tp.h[base-H:base])
			}
			mat.Axpy(grads.B, 1, dzx)
		}
		dx := dxBack[t*l.In : (t+1)*l.In]
		l.Wx.MulVecT(dx, dzx)
		dxs[t] = dx
		if t > 0 {
			l.Wh.MulVecT(dhNext, dzh)
		}
	}
	return dxs
}
