package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"trajforge/internal/mat"
)

// snapshot is the gob wire form of a classifier.
type snapshot struct {
	Layers   []layerSnapshot
	HeadW    []float64
	HeadB    float64
	Mean     []float64
	Std      []float64
	MeanPool bool
}

type layerSnapshot struct {
	In, Hidden int
	Wx, Wh     []float64
	B          []float64
}

// Save writes the classifier to w in gob format.
func (c *Classifier) Save(w io.Writer) error {
	s := snapshot{HeadW: c.HeadW, HeadB: c.HeadB, Mean: c.Norm.Mean, Std: c.Norm.Std, MeanPool: c.MeanPool}
	for _, l := range c.Layers {
		s.Layers = append(s.Layers, layerSnapshot{
			In: l.In, Hidden: l.Hidden,
			Wx: l.Wx.Data, Wh: l.Wh.Data, B: l.B,
		})
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("nn: encode classifier: %w", err)
	}
	return nil
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decode classifier: %w", err)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: snapshot has no layers")
	}
	c := &Classifier{HeadW: s.HeadW, HeadB: s.HeadB, Norm: Normalizer{Mean: s.Mean, Std: s.Std}, MeanPool: s.MeanPool}
	for i, ls := range s.Layers {
		if ls.In <= 0 || ls.Hidden <= 0 {
			return nil, fmt.Errorf("nn: layer %d has invalid shape %dx%d", i, ls.In, ls.Hidden)
		}
		l := &LSTMLayer{
			In: ls.In, Hidden: ls.Hidden,
			Wx: &mat.Mat{Rows: 4 * ls.Hidden, Cols: ls.In, Data: ls.Wx},
			Wh: &mat.Mat{Rows: 4 * ls.Hidden, Cols: ls.Hidden, Data: ls.Wh},
			B:  ls.B,
		}
		if len(l.Wx.Data) != l.Wx.Rows*l.Wx.Cols || len(l.Wh.Data) != l.Wh.Rows*l.Wh.Cols {
			return nil, fmt.Errorf("nn: layer %d weight data truncated", i)
		}
		if err := l.validate(); err != nil {
			return nil, err
		}
		c.Layers = append(c.Layers, l)
	}
	if len(c.HeadW) != c.Layers[len(c.Layers)-1].Hidden {
		return nil, fmt.Errorf("nn: head width %d does not match final hidden %d",
			len(c.HeadW), c.Layers[len(c.Layers)-1].Hidden)
	}
	return c, nil
}
