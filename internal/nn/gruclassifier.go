package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"trajforge/internal/mat"
)

// GRUClassifier is a single-layer GRU binary sequence classifier with a
// (mean-pooled) sigmoid head. It extends the paper's transferability study
// (Table II) with a recurrent architecture genuinely different from the
// LSTM family: an attack tuned against model C can be scored against a
// detector whose gating structure it has never seen.
type GRUClassifier struct {
	Layer    *GRULayer
	HeadW    []float64
	HeadB    float64
	Norm     Normalizer
	MeanPool bool

	pool sync.Pool // of *gruRuntime
}

type gruRuntime struct {
	tape    gruTape
	scratch scratchpad
}

func (c *GRUClassifier) getRT() *gruRuntime {
	if v := c.pool.Get(); v != nil {
		rt := v.(*gruRuntime)
		rt.scratch.Reset()
		return rt
	}
	return &gruRuntime{}
}

// NewGRUClassifier builds a randomly initialised GRU classifier.
func NewGRUClassifier(cfg Config) (*GRUClassifier, error) {
	if cfg.InputDim <= 0 {
		return nil, fmt.Errorf("nn: input dim %d must be positive", cfg.InputDim)
	}
	if len(cfg.Hidden) != 1 {
		return nil, errors.New("nn: GRU classifier supports exactly one hidden layer")
	}
	if cfg.Hidden[0] <= 0 {
		return nil, fmt.Errorf("nn: hidden size %d must be positive", cfg.Hidden[0])
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &GRUClassifier{
		Layer:    newGRULayer(rng, cfg.InputDim, cfg.Hidden[0]),
		HeadW:    make([]float64, cfg.Hidden[0]),
		MeanPool: cfg.MeanPool,
	}
	scale := 1.0 / float64(cfg.Hidden[0])
	for i := range c.HeadW {
		c.HeadW[i] = (rng.Float64()*2 - 1) * scale
	}
	return c, nil
}

// InputDim returns the expected per-step feature dimensionality.
func (c *GRUClassifier) InputDim() int { return c.Layer.In }

// forwardAll returns the head input (scratch view) and probability.
func (c *GRUClassifier) forwardAll(rt *gruRuntime, seq [][]float64) ([]float64, float64) {
	xs := c.Norm.Apply(seq)
	hs := c.Layer.forward(xs, &rt.tape, &rt.scratch)
	head := hs[len(hs)-1]
	if c.MeanPool {
		pooled := rt.scratch.vec(len(head))
		for j := range pooled {
			pooled[j] = 0
		}
		inv := 1 / float64(len(hs))
		for _, h := range hs {
			for j, v := range h {
				pooled[j] += v * inv
			}
		}
		head = pooled
	}
	return head, mat.Sigmoid(mat.Dot(c.HeadW, head) + c.HeadB)
}

// Forward returns P(real | seq).
func (c *GRUClassifier) Forward(seq [][]float64) float64 {
	if len(seq) == 0 {
		return 0.5
	}
	rt := c.getRT()
	defer c.pool.Put(rt)
	_, p := c.forwardAll(rt, seq)
	return p
}

// Loss returns the BCE of the sequence against the label.
func (c *GRUClassifier) Loss(seq [][]float64, label float64) float64 {
	return bce(c.Forward(seq), label)
}

// GRUGrads mirrors the trainable parameters.
type GRUGrads struct {
	Layer *gruGrads
	HeadW []float64
	HeadB float64
}

// NewGrads allocates a zero gradient.
func (c *GRUClassifier) NewGrads() *GRUGrads {
	return &GRUGrads{Layer: newGRUGrads(c.Layer), HeadW: make([]float64, len(c.HeadW))}
}

// Zero resets the gradient.
func (g *GRUGrads) Zero() {
	g.Layer.Wx.Zero()
	g.Layer.Wh.Zero()
	for i := range g.Layer.B {
		g.Layer.B[i] = 0
	}
	for i := range g.HeadW {
		g.HeadW[i] = 0
	}
	g.HeadB = 0
}

// Backward accumulates parameter gradients (grads may be nil) and returns
// (loss, probability, input-sequence gradient).
func (c *GRUClassifier) Backward(seq [][]float64, label float64, grads *GRUGrads) (loss, p float64, inputGrad [][]float64) {
	rt := c.getRT()
	defer c.pool.Put(rt)

	head, prob := c.forwardAll(rt, seq)
	loss = bce(prob, label)
	dLogit := prob - label
	if grads != nil {
		mat.Axpy(grads.HeadW, dLogit, head)
		grads.HeadB += dLogit
	}

	T := len(seq)
	dh := make([][]float64, T)
	if c.MeanPool {
		dhAll := rt.scratch.vec(c.Layer.Hidden)
		inv := 1 / float64(T)
		for j := range dhAll {
			dhAll[j] = dLogit * c.HeadW[j] * inv
		}
		for t := 0; t < T; t++ {
			dh[t] = dhAll
		}
	} else {
		dhLast := rt.scratch.vec(c.Layer.Hidden)
		for j := range dhLast {
			dhLast[j] = dLogit * c.HeadW[j]
		}
		dh[T-1] = dhLast
	}
	var lg *gruGrads
	if grads != nil {
		lg = grads.Layer
	}
	dx := c.Layer.backward(&rt.tape, dh, lg, &rt.scratch)

	out := make([][]float64, T)
	backing := make([]float64, T*c.InputDim())
	for t, row := range dx {
		r := backing[t*c.InputDim() : (t+1)*c.InputDim()]
		copy(r, row)
		out[t] = r
	}
	return loss, prob, c.Norm.gradBack(out)
}

// Train fits the classifier with mini-batch Adam (sequential — the GRU is
// an extension model, not a hot path).
func (c *GRUClassifier) Train(samples []Sample, cfg TrainConfig) error {
	if len(samples) == 0 {
		return fmt.Errorf("nn: no training samples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-3
	}
	if cfg.LRDecay <= 0 || cfg.LRDecay > 1 {
		cfg.LRDecay = 1
	}
	if !c.Norm.Fitted() {
		seqs := make([][][]float64, len(samples))
		for i, s := range samples {
			seqs[i] = s.Seq
		}
		c.Norm = FitNormalizer(seqs, c.InputDim())
	}

	params := [][]float64{c.Layer.Wx.Data, c.Layer.Wh.Data, c.Layer.B, c.HeadW}
	m := make([][]float64, len(params))
	v := make([][]float64, len(params))
	for i, p := range params {
		m[i] = make([]float64, len(p))
		v[i] = make([]float64, len(p))
	}
	var mB, vB float64
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	grads := c.NewGrads()
	lr := cfg.LearningRate
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			grads.Zero()
			for _, idx := range order[start:end] {
				s := samples[idx]
				c.Backward(s.Seq, s.Label, grads)
			}
			invN := 1.0 / float64(end-start)
			gts := [][]float64{grads.Layer.Wx.Data, grads.Layer.Wh.Data, grads.Layer.B, grads.HeadW}
			step++
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for i, p := range params {
				for j := range p {
					g := gts[i][j] * invN
					m[i][j] = beta1*m[i][j] + (1-beta1)*g
					v[i][j] = beta2*v[i][j] + (1-beta2)*g*g
					p[j] -= lr * (m[i][j] / bc1) / (math.Sqrt(v[i][j]/bc2) + eps)
				}
			}
			gb := grads.HeadB * invN
			mB = beta1*mB + (1-beta1)*gb
			vB = beta2*vB + (1-beta2)*gb*gb
			c.HeadB -= lr * (mB / bc1) / (math.Sqrt(vB/bc2) + eps)
		}
		lr *= cfg.LRDecay
	}
	return nil
}

// Evaluate returns the accuracy at the 0.5 threshold.
func (c *GRUClassifier) Evaluate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var correct int
	for _, s := range samples {
		if (c.Forward(s.Seq) >= 0.5) == (s.Label >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
