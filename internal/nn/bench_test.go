package nn

import (
	"math/rand"
	"testing"
)

func benchClassifier(b *testing.B, hidden []int) (*Classifier, []Sample) {
	b.Helper()
	c, err := NewClassifier(Config{InputDim: 2, Hidden: hidden, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	samples := make([]Sample, 64)
	for i := range samples {
		samples[i] = Sample{Seq: randSeq(rng, 60, 2), Label: float64(i % 2)}
	}
	return c, samples
}

func BenchmarkForward(b *testing.B) {
	c, samples := benchClassifier(b, []int{24})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(samples[i%len(samples)].Seq)
	}
}

func BenchmarkBackward(b *testing.B) {
	c, samples := benchClassifier(b, []int{24})
	g := c.NewGrads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		c.Backward(s.Seq, s.Label, g)
	}
}
