package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewGRUClassifierErrors(t *testing.T) {
	if _, err := NewGRUClassifier(Config{InputDim: 0, Hidden: []int{4}}); err == nil {
		t.Fatal("zero input dim must error")
	}
	if _, err := NewGRUClassifier(Config{InputDim: 2, Hidden: []int{4, 4}}); err == nil {
		t.Fatal("two layers must error")
	}
	if _, err := NewGRUClassifier(Config{InputDim: 2, Hidden: []int{0}}); err == nil {
		t.Fatal("zero hidden must error")
	}
}

func TestGRUForwardIsProbability(t *testing.T) {
	c, err := NewGRUClassifier(Config{InputDim: 2, Hidden: []int{6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		p := c.Forward(randSeq(rng, 10, 2))
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Forward = %v", p)
		}
	}
	if c.Forward(nil) != 0.5 {
		t.Fatal("empty sequence must return 0.5")
	}
}

// TestGRUParamGradNumerical validates the GRU backward pass (parameters and
// inputs) against finite differences, for both head variants.
func TestGRUParamGradNumerical(t *testing.T) {
	for _, meanPool := range []bool{false, true} {
		c, err := NewGRUClassifier(Config{InputDim: 2, Hidden: []int{5}, Seed: 7, MeanPool: meanPool})
		if err != nil {
			t.Fatal(err)
		}
		c.Norm = Normalizer{Mean: []float64{0.2, -0.1}, Std: []float64{1.5, 0.8}}
		rng := rand.New(rand.NewSource(8))
		seq := randSeq(rng, 6, 2)
		const label = 1.0

		grads := c.NewGrads()
		_, _, inputGrad := c.Backward(seq, label, grads)

		const h = 1e-6
		check := func(name string, param, grad []float64, indices []int) {
			for _, idx := range indices {
				orig := param[idx]
				param[idx] = orig + h
				lp := c.Loss(seq, label)
				param[idx] = orig - h
				lm := c.Loss(seq, label)
				param[idx] = orig
				numeric := (lp - lm) / (2 * h)
				if math.Abs(numeric-grad[idx]) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("meanPool=%v %s[%d]: analytic %v vs numeric %v",
						meanPool, name, idx, grad[idx], numeric)
				}
			}
		}
		idx := []int{0, 3, 7, 11}
		check("Wx", c.Layer.Wx.Data, grads.Layer.Wx.Data, idx)
		check("Wh", c.Layer.Wh.Data, grads.Layer.Wh.Data, idx)
		check("B", c.Layer.B, grads.Layer.B, idx)
		check("HeadW", c.HeadW, grads.HeadW, []int{0, 2, 4})

		// Input gradients.
		for tt := range seq {
			for j := range seq[tt] {
				orig := seq[tt][j]
				seq[tt][j] = orig + h
				lp := c.Loss(seq, label)
				seq[tt][j] = orig - h
				lm := c.Loss(seq, label)
				seq[tt][j] = orig
				numeric := (lp - lm) / (2 * h)
				if math.Abs(numeric-inputGrad[tt][j]) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("meanPool=%v input[%d][%d]: analytic %v vs numeric %v",
						meanPool, tt, j, inputGrad[tt][j], numeric)
				}
			}
		}
	}
}

func TestGRUTrainSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	gen := func(label float64, n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			seq := make([][]float64, 12)
			drift := 0.5
			if label == 0 {
				drift = -0.5
			}
			for tt := range seq {
				seq[tt] = []float64{drift + 0.3*rng.NormFloat64(), 0.2 * rng.NormFloat64()}
			}
			out[i] = Sample{Seq: seq, Label: label}
		}
		return out
	}
	train := append(gen(1, 100), gen(0, 100)...)
	test := append(gen(1, 40), gen(0, 40)...)

	c, err := NewGRUClassifier(Config{InputDim: 2, Hidden: []int{8}, Seed: 21, MeanPool: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(train, TrainConfig{Epochs: 12, BatchSize: 16, LearningRate: 0.01, Seed: 22}); err != nil {
		t.Fatal(err)
	}
	if acc := c.Evaluate(test); acc < 0.95 {
		t.Fatalf("GRU accuracy %v < 0.95 on trivially separable task", acc)
	}
	if c.Evaluate(nil) != 0 {
		t.Fatal("empty Evaluate must be 0")
	}
}

func TestGRUTrainErrors(t *testing.T) {
	c, _ := NewGRUClassifier(Config{InputDim: 2, Hidden: []int{4}, Seed: 1})
	if err := c.Train(nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set must error")
	}
}
