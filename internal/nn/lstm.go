// Package nn implements the neural-network substrate from scratch: an LSTM
// sequence classifier with a sigmoid head (the paper's target model C and
// its transfer variants LSTM-1/LSTM-2), full backpropagation through time
// for training, the Adam optimizer, and — crucially for the C&W attack —
// gradients of the loss with respect to the *input sequence*.
//
// The implementation is pure Go over internal/mat kernels and is
// allocation-conscious: one forward/backward pass over a T-step sequence
// performs O(1) heap allocations (big backing arrays sliced per step).
package nn

import (
	"fmt"
	"math/rand"

	"trajforge/internal/mat"
)

// LSTMLayer is a single LSTM layer. The four gates are packed row-wise in
// the order input (i), forget (f), candidate (g), output (o): row block k*H
// .. (k+1)*H of Wx/Wh/B belongs to gate k.
type LSTMLayer struct {
	In, Hidden int
	Wx         *mat.Mat  // 4H x In
	Wh         *mat.Mat  // 4H x Hidden
	B          []float64 // 4H
}

// newLSTMLayer initialises a layer with uniform weights scaled by fan-in
// and a positive forget-gate bias (the standard trick that stabilises early
// training).
func newLSTMLayer(rng *rand.Rand, in, hidden int) *LSTMLayer {
	l := &LSTMLayer{
		In:     in,
		Hidden: hidden,
		Wx:     mat.New(4*hidden, in),
		Wh:     mat.New(4*hidden, hidden),
		B:      make([]float64, 4*hidden),
	}
	scaleX := 1.0 / float64(in)
	scaleH := 1.0 / float64(hidden)
	l.Wx.FillUniform(rng, scaleX)
	l.Wh.FillUniform(rng, scaleH)
	for j := hidden; j < 2*hidden; j++ {
		l.B[j] = 1 // forget gate bias
	}
	return l
}

// layerTape records one sequence pass through a layer for BPTT. All
// per-step vectors are views into shared backing arrays.
type layerTape struct {
	T  int
	xs [][]float64 // layer inputs per step (views owned by the caller)
	// Gate activations and cell states, length T*H each.
	i, f, g, o, c, tanhC, h []float64
}

func (tp *layerTape) resize(T, H int) {
	n := T * H
	if cap(tp.i) < n {
		tp.i = make([]float64, n)
		tp.f = make([]float64, n)
		tp.g = make([]float64, n)
		tp.o = make([]float64, n)
		tp.c = make([]float64, n)
		tp.tanhC = make([]float64, n)
		tp.h = make([]float64, n)
	}
	tp.i = tp.i[:n]
	tp.f = tp.f[:n]
	tp.g = tp.g[:n]
	tp.o = tp.o[:n]
	tp.c = tp.c[:n]
	tp.tanhC = tp.tanhC[:n]
	tp.h = tp.h[:n]
	tp.T = T
}

// hiddenAt returns the hidden-state view of step t.
func (tp *layerTape) hiddenAt(t, H int) []float64 { return tp.h[t*H : (t+1)*H] }

// forward runs the whole sequence through the layer, filling the tape. The
// returned slice holds per-step hidden-state views into the tape.
func (l *LSTMLayer) forward(xs [][]float64, tp *layerTape, scratch *scratchpad) [][]float64 {
	T := len(xs)
	H := l.Hidden
	tp.resize(T, H)
	tp.xs = xs

	h := scratch.vec(H)
	c := scratch.vec(H)
	z := scratch.vec(4 * H)
	for j := range h {
		h[j], c[j] = 0, 0
	}

	hs := make([][]float64, T)
	for t, x := range xs {
		copy(z, l.B)
		l.Wx.MulVecAdd(z, x)
		l.Wh.MulVecAdd(z, h)

		base := t * H
		for j := 0; j < H; j++ {
			iv := mat.Sigmoid(z[j])
			fv := mat.Sigmoid(z[H+j])
			gv := mat.Tanh(z[2*H+j])
			ov := mat.Sigmoid(z[3*H+j])
			cv := fv*c[j] + iv*gv
			tc := mat.Tanh(cv)
			hv := ov * tc

			tp.i[base+j] = iv
			tp.f[base+j] = fv
			tp.g[base+j] = gv
			tp.o[base+j] = ov
			tp.c[base+j] = cv
			tp.tanhC[base+j] = tc
			tp.h[base+j] = hv

			c[j] = cv
			h[j] = hv
		}
		hs[t] = tp.h[base : base+H]
	}
	return hs
}

// lstmGrads mirrors the layer's parameters.
type lstmGrads struct {
	Wx *mat.Mat
	Wh *mat.Mat
	B  []float64
}

func newLSTMGrads(l *LSTMLayer) *lstmGrads {
	return &lstmGrads{
		Wx: mat.New(4*l.Hidden, l.In),
		Wh: mat.New(4*l.Hidden, l.Hidden),
		B:  make([]float64, 4*l.Hidden),
	}
}

func (g *lstmGrads) zero() {
	g.Wx.Zero()
	g.Wh.Zero()
	for i := range g.B {
		g.B[i] = 0
	}
}

func (g *lstmGrads) addScaled(other *lstmGrads, s float64) {
	g.Wx.AddScaled(other.Wx, s)
	g.Wh.AddScaled(other.Wh, s)
	mat.Axpy(g.B, s, other.B)
}

// backward runs BPTT through the layer. dh[t] is the gradient arriving at
// the hidden output of step t from above (the head and/or the next layer);
// nil entries mean zero. It returns per-step input gradients (views into a
// scratch backing array that remains valid until the scratchpad is reused
// for another backward pass of the same layer). Parameter gradients
// accumulate into grads when non-nil.
func (l *LSTMLayer) backward(tp *layerTape, dh [][]float64, grads *lstmGrads, scratch *scratchpad) [][]float64 {
	T := tp.T
	H := l.Hidden

	dxBack := scratch.vec(T * l.In)
	for i := range dxBack {
		dxBack[i] = 0
	}
	dxs := make([][]float64, T)

	dhNext := scratch.vec(H)
	dcNext := scratch.vec(H)
	dhTotal := scratch.vec(H)
	dz := scratch.vec(4 * H)
	for j := 0; j < H; j++ {
		dhNext[j], dcNext[j] = 0, 0
	}

	for t := T - 1; t >= 0; t-- {
		base := t * H
		for j := 0; j < H; j++ {
			dhTotal[j] = dhNext[j]
		}
		if dh[t] != nil {
			for j := 0; j < H; j++ {
				dhTotal[j] += dh[t][j]
			}
		}

		for j := 0; j < H; j++ {
			iv := tp.i[base+j]
			fv := tp.f[base+j]
			gv := tp.g[base+j]
			ov := tp.o[base+j]
			tc := tp.tanhC[base+j]
			var cPrev float64
			if t > 0 {
				cPrev = tp.c[base-H+j]
			}

			dc := dcNext[j] + dhTotal[j]*ov*(1-tc*tc)
			do := dhTotal[j] * tc
			di := dc * gv
			df := dc * cPrev
			dg := dc * iv

			dz[j] = di * iv * (1 - iv)
			dz[H+j] = df * fv * (1 - fv)
			dz[2*H+j] = dg * (1 - gv*gv)
			dz[3*H+j] = do * ov * (1 - ov)

			dcNext[j] = dc * fv
		}
		if grads != nil {
			grads.Wx.AddOuter(dz, tp.xs[t])
			if t > 0 {
				grads.Wh.AddOuter(dz, tp.h[base-H:base])
			}
			mat.Axpy(grads.B, 1, dz)
		}
		dx := dxBack[t*l.In : (t+1)*l.In]
		l.Wx.MulVecT(dx, dz)
		dxs[t] = dx

		for j := 0; j < H; j++ {
			dhNext[j] = 0
		}
		if t > 0 {
			l.Wh.MulVecT(dhNext, dz)
		}
	}
	return dxs
}

// scratchpad hands out reusable float64 buffers. Each vec call returns a
// fresh region, so multiple live buffers are fine; Reset recycles the
// arena. Not safe for concurrent use — use one per worker.
type scratchpad struct {
	arenas [][]float64
	next   int
}

// vec returns a length-n buffer (contents undefined).
func (s *scratchpad) vec(n int) []float64 {
	for i := s.next; i < len(s.arenas); i++ {
		if cap(s.arenas[i]) >= n {
			s.arenas[i], s.arenas[s.next] = s.arenas[s.next], s.arenas[i]
			buf := s.arenas[s.next][:n]
			s.next++
			return buf
		}
	}
	buf := make([]float64, n)
	s.arenas = append(s.arenas, buf)
	// Move the new arena into the consumed region.
	last := len(s.arenas) - 1
	s.arenas[last], s.arenas[s.next] = s.arenas[s.next], s.arenas[last]
	s.next++
	return buf
}

// Reset makes all buffers reusable again. Previously returned views become
// invalid.
func (s *scratchpad) Reset() { s.next = 0 }

// check layer invariants at construction time in tests.
func (l *LSTMLayer) validate() error {
	if l.Wx.Rows != 4*l.Hidden || l.Wx.Cols != l.In {
		return fmt.Errorf("nn: Wx shape %dx%d, want %dx%d", l.Wx.Rows, l.Wx.Cols, 4*l.Hidden, l.In)
	}
	if l.Wh.Rows != 4*l.Hidden || l.Wh.Cols != l.Hidden {
		return fmt.Errorf("nn: Wh shape %dx%d, want %dx%d", l.Wh.Rows, l.Wh.Cols, 4*l.Hidden, l.Hidden)
	}
	if len(l.B) != 4*l.Hidden {
		return fmt.Errorf("nn: B length %d, want %d", len(l.B), 4*l.Hidden)
	}
	return nil
}
