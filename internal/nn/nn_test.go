package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func randSeq(rng *rand.Rand, T, dim int) [][]float64 {
	seq := make([][]float64, T)
	for t := range seq {
		seq[t] = make([]float64, dim)
		for j := range seq[t] {
			seq[t][j] = rng.NormFloat64()
		}
	}
	return seq
}

func TestNewClassifierErrors(t *testing.T) {
	if _, err := NewClassifier(Config{InputDim: 0, Hidden: []int{4}}); err == nil {
		t.Fatal("zero input dim must error")
	}
	if _, err := NewClassifier(Config{InputDim: 2}); err == nil {
		t.Fatal("no hidden layers must error")
	}
	if _, err := NewClassifier(Config{InputDim: 2, Hidden: []int{0}}); err == nil {
		t.Fatal("zero hidden size must error")
	}
}

func TestForwardIsProbability(t *testing.T) {
	c, err := NewClassifier(Config{InputDim: 2, Hidden: []int{8}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		p := c.Forward(randSeq(rng, 10, 2))
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Forward = %v", p)
		}
	}
	if c.Forward(nil) != 0.5 {
		t.Fatal("empty sequence must return 0.5")
	}
	if c.InputDim() != 2 {
		t.Fatal("InputDim wrong")
	}
}

func TestForwardDeterministic(t *testing.T) {
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{6}, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	seq := randSeq(rng, 12, 2)
	if c.Forward(seq) != c.Forward(seq) {
		t.Fatal("Forward not deterministic")
	}
}

// TestParameterGradNumerical verifies BPTT parameter gradients against
// central finite differences for a 2-layer stack.
func TestParameterGradNumerical(t *testing.T) {
	c, err := NewClassifier(Config{InputDim: 2, Hidden: []int{5, 4}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	seq := randSeq(rng, 6, 2)
	const label = 1.0

	grads := c.NewGrads()
	c.Backward(seq, label, grads)

	check := func(name string, param []float64, grad []float64, indices []int) {
		const h = 1e-6
		for _, idx := range indices {
			orig := param[idx]
			param[idx] = orig + h
			lp := c.Loss(seq, label)
			param[idx] = orig - h
			lm := c.Loss(seq, label)
			param[idx] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad[idx]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, grad[idx], numeric)
			}
		}
	}

	idx := []int{0, 3, 7, 11}
	for li, l := range c.Layers {
		lg := grads.Layers[li]
		check("Wx", l.Wx.Data, lg.Wx.Data, idx)
		check("Wh", l.Wh.Data, lg.Wh.Data, idx)
		check("B", l.B, lg.B, idx)
	}
	check("HeadW", c.HeadW, grads.HeadW, []int{0, 1, 2, 3})

	// HeadB scalar.
	const h = 1e-6
	orig := c.HeadB
	c.HeadB = orig + h
	lp := c.Loss(seq, label)
	c.HeadB = orig - h
	lm := c.Loss(seq, label)
	c.HeadB = orig
	numeric := (lp - lm) / (2 * h)
	if math.Abs(numeric-grads.HeadB) > 1e-5 {
		t.Fatalf("HeadB: analytic %v vs numeric %v", grads.HeadB, numeric)
	}
}

// TestInputGradNumerical verifies the input-sequence gradient (the quantity
// the C&W attack uses) against finite differences, including through the
// normaliser.
func TestInputGradNumerical(t *testing.T) {
	c, err := NewClassifier(Config{InputDim: 2, Hidden: []int{6}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c.Norm = Normalizer{Mean: []float64{0.5, -0.2}, Std: []float64{2.0, 0.7}}
	rng := rand.New(rand.NewSource(10))
	seq := randSeq(rng, 5, 2)
	const label = 0.0

	grad, loss, p := c.InputGrad(seq, label)
	if loss <= 0 || p < 0 || p > 1 {
		t.Fatalf("loss=%v p=%v", loss, p)
	}
	const h = 1e-6
	for tt := range seq {
		for j := range seq[tt] {
			orig := seq[tt][j]
			seq[tt][j] = orig + h
			lp := c.Loss(seq, label)
			seq[tt][j] = orig - h
			lm := c.Loss(seq, label)
			seq[tt][j] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad[tt][j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("input grad[%d][%d]: analytic %v vs numeric %v", tt, j, grad[tt][j], numeric)
			}
		}
	}
}

func TestNormalizer(t *testing.T) {
	seqs := [][][]float64{
		{{1, 10}, {3, 30}},
		{{5, 50}, {7, 70}},
	}
	n := FitNormalizer(seqs, 2)
	if math.Abs(n.Mean[0]-4) > 1e-9 || math.Abs(n.Mean[1]-40) > 1e-9 {
		t.Fatalf("mean = %v", n.Mean)
	}
	out := n.Apply(seqs[0])
	// Standardised values must have the right sign and magnitude.
	if out[0][0] >= 0 || out[1][0] >= 0 {
		t.Fatalf("standardised below-mean values must be negative: %v", out)
	}
	// Constant dimension must not divide by zero.
	constSeqs := [][][]float64{{{2, 5}, {2, 5}}}
	nc := FitNormalizer(constSeqs, 2)
	applied := nc.Apply(constSeqs[0])
	for _, row := range applied {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("constant feature produced NaN/Inf")
			}
		}
	}
	unfitted := FitNormalizer(nil, 2)
	if unfitted.Fitted() {
		t.Fatal("empty fit must be unfitted")
	}
}

// TestTrainSeparatesSyntheticClasses trains on an easy synthetic task:
// class 1 sequences drift upward, class 0 drift downward.
func TestTrainSeparatesSyntheticClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	gen := func(label float64, n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			T := 12
			seq := make([][]float64, T)
			drift := 0.5
			if label == 0 {
				drift = -0.5
			}
			for tt := 0; tt < T; tt++ {
				seq[tt] = []float64{
					drift + 0.3*rng.NormFloat64(),
					0.2 * rng.NormFloat64(),
				}
			}
			out[i] = Sample{Seq: seq, Label: label}
		}
		return out
	}
	train := append(gen(1, 120), gen(0, 120)...)
	test := append(gen(1, 40), gen(0, 40)...)

	c, err := NewClassifier(Config{InputDim: 2, Hidden: []int{8}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Train(train, TrainConfig{Epochs: 12, BatchSize: 16, LearningRate: 0.01, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Evaluate(test); acc < 0.95 {
		t.Fatalf("accuracy %v < 0.95 on trivially separable task", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{4}, Seed: 1})
	if err := c.Train(nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set must error")
	}
	bad := []Sample{{Seq: [][]float64{{1, 2, 3}}, Label: 1}}
	if err := c.Train(bad, TrainConfig{}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	empty := []Sample{{Seq: nil, Label: 1}}
	if err := c.Train(empty, TrainConfig{}); err == nil {
		t.Fatal("empty sequence must error")
	}
}

func TestTrainProgressCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	samples := []Sample{
		{Seq: randSeq(rng, 5, 2), Label: 1},
		{Seq: randSeq(rng, 5, 2), Label: 0},
	}
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{4}, Seed: 31})
	var epochs int
	err := c.Train(samples, TrainConfig{Epochs: 3, BatchSize: 2, Progress: func(e int, loss float64) {
		epochs++
		if math.IsNaN(loss) {
			t.Fatal("NaN loss")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 3 {
		t.Fatalf("progress called %d times, want 3", epochs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{5, 3}, Seed: 40})
	c.Norm = Normalizer{Mean: []float64{1, 2}, Std: []float64{3, 4}}
	rng := rand.New(rand.NewSource(41))
	seq := randSeq(rng, 8, 2)
	want := c.Forward(seq)

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Forward(seq); math.Abs(got-want) > 1e-15 {
		t.Fatalf("loaded model predicts %v, want %v", got, want)
	}
	if len(back.Layers) != 2 {
		t.Fatal("layer count lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage must error")
	}
	var buf bytes.Buffer
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{4}, Seed: 1})
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{4}, Seed: 1})
	if c.Evaluate(nil) != 0 {
		t.Fatal("empty Evaluate must be 0")
	}
}

func TestClipGrads(t *testing.T) {
	c, _ := NewClassifier(Config{InputDim: 2, Hidden: []int{3}, Seed: 2})
	g := c.NewGrads()
	for i := range g.HeadW {
		g.HeadW[i] = 100
	}
	g.HeadB = 100
	clipGrads(g, 1.0)
	var norm float64
	for _, t := range gradTensors(g) {
		for _, v := range t {
			norm += v * v
		}
	}
	norm += g.HeadB * g.HeadB
	if math.Sqrt(norm) > 1.0+1e-9 {
		t.Fatalf("clipped norm = %v", math.Sqrt(norm))
	}
	// A small gradient must be untouched.
	g.Zero()
	g.HeadB = 0.1
	clipGrads(g, 1.0)
	if g.HeadB != 0.1 {
		t.Fatal("small gradient modified")
	}
}

// TestInputGradNumericalMeanPool repeats the input-gradient check with the
// mean-pooled head, which spreads the head gradient over all timesteps.
func TestInputGradNumericalMeanPool(t *testing.T) {
	c, err := NewClassifier(Config{InputDim: 2, Hidden: []int{5}, Seed: 17, MeanPool: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	seq := randSeq(rng, 6, 2)
	const label = 1.0
	grad, _, _ := c.InputGrad(seq, label)
	const h = 1e-6
	for tt := range seq {
		for j := range seq[tt] {
			orig := seq[tt][j]
			seq[tt][j] = orig + h
			lp := c.Loss(seq, label)
			seq[tt][j] = orig - h
			lm := c.Loss(seq, label)
			seq[tt][j] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad[tt][j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("mean-pool grad[%d][%d]: analytic %v vs numeric %v", tt, j, grad[tt][j], numeric)
			}
		}
	}
}

// TestParameterGradNumericalMeanPool checks parameter gradients under the
// pooled head as well.
func TestParameterGradNumericalMeanPool(t *testing.T) {
	c, err := NewClassifier(Config{InputDim: 2, Hidden: []int{4}, Seed: 19, MeanPool: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	seq := randSeq(rng, 5, 2)
	grads := c.NewGrads()
	c.Backward(seq, 0, grads)
	const h = 1e-6
	for _, idx := range []int{0, 5, 9} {
		orig := c.Layers[0].Wx.Data[idx]
		c.Layers[0].Wx.Data[idx] = orig + h
		lp := c.Loss(seq, 0)
		c.Layers[0].Wx.Data[idx] = orig - h
		lm := c.Loss(seq, 0)
		c.Layers[0].Wx.Data[idx] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grads.Layers[0].Wx.Data[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("Wx[%d]: analytic %v vs numeric %v", idx, grads.Layers[0].Wx.Data[idx], numeric)
		}
	}
	// MeanPool must survive a save/load round trip.
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.MeanPool {
		t.Fatal("MeanPool flag lost in serialization")
	}
	if math.Abs(back.Forward(seq)-c.Forward(seq)) > 1e-15 {
		t.Fatal("loaded pooled model diverges")
	}
}
