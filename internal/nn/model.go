package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"trajforge/internal/mat"
)

// Config describes a classifier architecture.
type Config struct {
	// InputDim is the per-step feature dimensionality.
	InputDim int
	// Hidden lists the hidden sizes of the stacked LSTM layers. The paper's
	// model C uses one layer; LSTM-2 adds a second.
	Hidden []int
	// Seed initialises the weights.
	Seed int64
	// MeanPool feeds the head the time-average of the top layer's hidden
	// states instead of the final state. Global motion statistics (speed
	// variance, jitter) are spread evenly over the sequence, so pooling
	// speeds up learning dramatically at small training scales.
	MeanPool bool
}

// Classifier is a stacked-LSTM binary sequence classifier with a sigmoid
// head. Output is the probability that the sequence is a *real* trajectory
// (label 1); fakes carry label 0. Forward/Backward are safe for concurrent
// use: per-call state comes from an internal pool.
type Classifier struct {
	Layers []*LSTMLayer
	// Head maps the final hidden state to a logit.
	HeadW []float64
	HeadB float64
	// Norm is the per-dimension input normalisation fitted on the training
	// set and applied inside Forward.
	Norm Normalizer
	// MeanPool mirrors Config.MeanPool.
	MeanPool bool

	pool sync.Pool // of *runtimeState
}

// runtimeState is the reusable per-call working memory.
type runtimeState struct {
	tapes   []layerTape
	scratch scratchpad
}

func (c *Classifier) getRT() *runtimeState {
	if v := c.pool.Get(); v != nil {
		rt := v.(*runtimeState)
		if len(rt.tapes) == len(c.Layers) {
			rt.scratch.Reset()
			return rt
		}
	}
	return &runtimeState{tapes: make([]layerTape, len(c.Layers))}
}

func (c *Classifier) putRT(rt *runtimeState) { c.pool.Put(rt) }

// Normalizer standardises input features per dimension.
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// Fitted reports whether the normaliser has been fitted.
func (n *Normalizer) Fitted() bool { return len(n.Mean) > 0 }

// Apply returns the standardised copy of seq.
func (n *Normalizer) Apply(seq [][]float64) [][]float64 {
	if !n.Fitted() {
		return seq
	}
	out := make([][]float64, len(seq))
	backing := make([]float64, len(seq)*len(n.Mean))
	for t, row := range seq {
		r := backing[t*len(n.Mean) : (t+1)*len(n.Mean)]
		for j, v := range row {
			r[j] = (v - n.Mean[j]) / n.Std[j]
		}
		out[t] = r
	}
	return out
}

// gradBack maps a gradient on normalised features back to raw features.
func (n *Normalizer) gradBack(grad [][]float64) [][]float64 {
	if !n.Fitted() {
		return grad
	}
	out := make([][]float64, len(grad))
	for t, row := range grad {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v / n.Std[j]
		}
		out[t] = r
	}
	return out
}

// FitNormalizer estimates per-dimension mean/std over all steps of all
// sequences, flooring std to avoid division blow-ups.
func FitNormalizer(seqs [][][]float64, dim int) Normalizer {
	mean := make([]float64, dim)
	std := make([]float64, dim)
	var count float64
	for _, seq := range seqs {
		for _, row := range seq {
			for j := 0; j < dim; j++ {
				mean[j] += row[j]
			}
			count++
		}
	}
	if count == 0 {
		return Normalizer{}
	}
	for j := range mean {
		mean[j] /= count
	}
	for _, seq := range seqs {
		for _, row := range seq {
			for j := 0; j < dim; j++ {
				d := row[j] - mean[j]
				std[j] += d * d
			}
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / count)
		if std[j] < 1e-6 {
			std[j] = 1e-6
		}
	}
	return Normalizer{Mean: mean, Std: std}
}

// NewClassifier builds a randomly initialised classifier.
func NewClassifier(cfg Config) (*Classifier, error) {
	if cfg.InputDim <= 0 {
		return nil, fmt.Errorf("nn: input dim %d must be positive", cfg.InputDim)
	}
	if len(cfg.Hidden) == 0 {
		return nil, errors.New("nn: need at least one hidden layer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Classifier{}
	in := cfg.InputDim
	for _, h := range cfg.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("nn: hidden size %d must be positive", h)
		}
		c.Layers = append(c.Layers, newLSTMLayer(rng, in, h))
		in = h
	}
	c.HeadW = make([]float64, in)
	scale := 1.0 / float64(in)
	for i := range c.HeadW {
		c.HeadW[i] = (rng.Float64()*2 - 1) * scale
	}
	c.MeanPool = cfg.MeanPool
	return c, nil
}

// InputDim returns the expected per-step feature dimensionality.
func (c *Classifier) InputDim() int { return c.Layers[0].In }

// forwardAll runs the full network on rt, returning the head input (final
// or mean-pooled hidden state, a scratch view) and the probability. The
// tapes stay populated for a backward pass.
func (c *Classifier) forwardAll(rt *runtimeState, seq [][]float64) ([]float64, float64) {
	xs := c.Norm.Apply(seq)
	var hs [][]float64
	for li, l := range c.Layers {
		hs = l.forward(xs, &rt.tapes[li], &rt.scratch)
		xs = hs
	}
	head := hs[len(hs)-1]
	if c.MeanPool {
		pooled := rt.scratch.vec(len(head))
		for j := range pooled {
			pooled[j] = 0
		}
		inv := 1 / float64(len(hs))
		for _, h := range hs {
			for j, v := range h {
				pooled[j] += v * inv
			}
		}
		head = pooled
	}
	logit := mat.Dot(c.HeadW, head) + c.HeadB
	return head, mat.Sigmoid(logit)
}

// Forward returns P(real | seq).
func (c *Classifier) Forward(seq [][]float64) float64 {
	if len(seq) == 0 {
		return 0.5
	}
	rt := c.getRT()
	defer c.putRT(rt)
	_, p := c.forwardAll(rt, seq)
	return p
}

// PredictReal reports whether the classifier considers the sequence real at
// the 0.5 threshold.
func (c *Classifier) PredictReal(seq [][]float64) bool { return c.Forward(seq) >= 0.5 }

// Loss returns the binary cross-entropy of the sequence against the label
// (1 = real, 0 = fake).
func (c *Classifier) Loss(seq [][]float64, label float64) float64 {
	p := c.Forward(seq)
	return bce(p, label)
}

func bce(p, label float64) float64 {
	const eps = 1e-12
	p = math.Min(1-eps, math.Max(eps, p))
	return -(label*math.Log(p) + (1-label)*math.Log(1-p))
}

// Grads mirrors all trainable parameters.
type Grads struct {
	Layers []*lstmGrads
	HeadW  []float64
	HeadB  float64
}

// NewGrads allocates a zero gradient for c.
func (c *Classifier) NewGrads() *Grads {
	g := &Grads{HeadW: make([]float64, len(c.HeadW))}
	for _, l := range c.Layers {
		g.Layers = append(g.Layers, newLSTMGrads(l))
	}
	return g
}

// Zero resets the gradient.
func (g *Grads) Zero() {
	for _, l := range g.Layers {
		l.zero()
	}
	for i := range g.HeadW {
		g.HeadW[i] = 0
	}
	g.HeadB = 0
}

// AddScaled accumulates g += s * other.
func (g *Grads) AddScaled(other *Grads, s float64) {
	for i, l := range g.Layers {
		l.addScaled(other.Layers[i], s)
	}
	mat.Axpy(g.HeadW, s, other.HeadW)
	g.HeadB += s * other.HeadB
}

// Backward computes the BCE loss of (seq, label), accumulates parameter
// gradients into grads (when non-nil), and returns (loss, probability,
// gradient w.r.t. the raw input sequence). The returned gradient rows are
// freshly allocated and safe to retain.
func (c *Classifier) Backward(seq [][]float64, label float64, grads *Grads) (loss, p float64, inputGrad [][]float64) {
	rt := c.getRT()
	defer c.putRT(rt)

	final, prob := c.forwardAll(rt, seq)
	loss = bce(prob, label)
	dLogit := prob - label

	if grads != nil {
		mat.Axpy(grads.HeadW, dLogit, final)
		grads.HeadB += dLogit
	}

	// Seed dh for the top layer: the last timestep receives the full head
	// gradient, or every timestep receives 1/T of it under mean pooling.
	T := len(seq)
	top := len(c.Layers) - 1
	dh := make([][]float64, T)
	if c.MeanPool {
		dhAll := rt.scratch.vec(c.Layers[top].Hidden)
		inv := 1 / float64(T)
		for j := range dhAll {
			dhAll[j] = dLogit * c.HeadW[j] * inv
		}
		for t := 0; t < T; t++ {
			dh[t] = dhAll
		}
	} else {
		dhLast := rt.scratch.vec(c.Layers[top].Hidden)
		for j := range dhLast {
			dhLast[j] = dLogit * c.HeadW[j]
		}
		dh[T-1] = dhLast
	}

	var dx [][]float64
	for li := top; li >= 0; li-- {
		var lg *lstmGrads
		if grads != nil {
			lg = grads.Layers[li]
		}
		dx = c.Layers[li].backward(&rt.tapes[li], dh, lg, &rt.scratch)
		dh = dx
	}
	// Detach from scratch storage before returning.
	out := make([][]float64, T)
	backing := make([]float64, T*c.InputDim())
	for t, row := range dx {
		r := backing[t*c.InputDim() : (t+1)*c.InputDim()]
		copy(r, row)
		out[t] = r
	}
	return loss, prob, c.Norm.gradBack(out)
}

// InputGrad returns the gradient of the BCE loss w.r.t. the raw input
// sequence, plus the loss and probability — the signal the C&W attack
// optimises against.
func (c *Classifier) InputGrad(seq [][]float64, label float64) (grad [][]float64, loss, p float64) {
	loss, p, grad = c.Backward(seq, label, nil)
	return grad, loss, p
}
