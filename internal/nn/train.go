package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Sample is one labelled training sequence.
type Sample struct {
	Seq   [][]float64
	Label float64 // 1 = real, 0 = fake
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// LearningRate for Adam (the paper uses 1e-3).
	LearningRate float64
	// LRDecay multiplies the learning rate after every epoch (default 1).
	LRDecay float64
	// KeepBest restores the parameters of the epoch with the lowest mean
	// training loss at the end of training, guarding against late-epoch
	// divergence on small datasets.
	KeepBest bool
	// Workers bounds the gradient-worker goroutines; <= 0 means GOMAXPROCS.
	Workers int
	// Seed drives shuffling.
	Seed int64
	// Progress, when non-nil, receives the mean loss after each epoch.
	Progress func(epoch int, meanLoss float64)
}

// Adam holds optimizer state for one tensor.
type adamState struct {
	m, v []float64
}

// Adam is the Adam optimizer over a classifier's parameters.
type Adam struct {
	lr      float64
	beta1   float64
	beta2   float64
	eps     float64
	t       int
	states  []adamState
	tensors [][]float64 // views of the parameter slices, same order as states
}

// NewAdam builds an optimizer for c with the given learning rate.
func NewAdam(c *Classifier, lr float64) *Adam {
	a := &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	add := func(p []float64) {
		a.tensors = append(a.tensors, p)
		a.states = append(a.states, adamState{
			m: make([]float64, len(p)),
			v: make([]float64, len(p)),
		})
	}
	for _, l := range c.Layers {
		add(l.Wx.Data)
		add(l.Wh.Data)
		add(l.B)
	}
	add(c.HeadW)
	// HeadB handled as a one-element pseudo tensor via pointer capture in
	// Step; store a slot for it.
	a.states = append(a.states, adamState{m: make([]float64, 1), v: make([]float64, 1)})
	return a
}

// gradTensors lists g's tensors in the same order as the optimizer's.
func gradTensors(g *Grads) [][]float64 {
	var out [][]float64
	for _, l := range g.Layers {
		out = append(out, l.Wx.Data, l.Wh.Data, l.B)
	}
	out = append(out, g.HeadW)
	return out
}

// Step applies one Adam update of c's parameters from the gradient g.
func (a *Adam) Step(c *Classifier, g *Grads) {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	gts := gradTensors(g)
	for i, params := range a.tensors {
		st := a.states[i]
		grad := gts[i]
		for j := range params {
			st.m[j] = a.beta1*st.m[j] + (1-a.beta1)*grad[j]
			st.v[j] = a.beta2*st.v[j] + (1-a.beta2)*grad[j]*grad[j]
			mh := st.m[j] / bc1
			vh := st.v[j] / bc2
			params[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
	}
	// HeadB.
	st := a.states[len(a.states)-1]
	st.m[0] = a.beta1*st.m[0] + (1-a.beta1)*g.HeadB
	st.v[0] = a.beta2*st.v[0] + (1-a.beta2)*g.HeadB*g.HeadB
	c.HeadB -= a.lr * (st.m[0] / bc1) / (math.Sqrt(st.v[0]/bc2) + a.eps)
}

// Train fits the classifier on samples with mini-batch Adam. It fits the
// input normaliser first (if not already fitted), shuffles every epoch, and
// computes per-sample gradients in parallel worker goroutines that are
// joined before each optimizer step.
func (c *Classifier) Train(samples []Sample, cfg TrainConfig) error {
	if len(samples) == 0 {
		return fmt.Errorf("nn: no training samples")
	}
	for i, s := range samples {
		if len(s.Seq) == 0 {
			return fmt.Errorf("nn: sample %d has empty sequence", i)
		}
		if len(s.Seq[0]) != c.InputDim() {
			return fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(s.Seq[0]), c.InputDim())
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-3
	}
	if cfg.LRDecay <= 0 || cfg.LRDecay > 1 {
		cfg.LRDecay = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if !c.Norm.Fitted() {
		seqs := make([][][]float64, len(samples))
		for i, s := range samples {
			seqs[i] = s.Seq
		}
		c.Norm = FitNormalizer(seqs, c.InputDim())
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewAdam(c, cfg.LearningRate)
	bestLoss := math.Inf(1)
	var bestParams []float64
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}

	// Per-worker gradient buffers, reused across batches.
	workerGrads := make([]*Grads, workers)
	for i := range workerGrads {
		workerGrads[i] = c.NewGrads()
	}
	batchGrad := c.NewGrads()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]

			losses := make([]float64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					workerGrads[w].Zero()
					for k := w; k < len(batch); k += workers {
						s := samples[batch[k]]
						loss, _, _ := c.Backward(s.Seq, s.Label, workerGrads[w])
						losses[w] += loss
					}
				}(w)
			}
			wg.Wait()

			batchGrad.Zero()
			invN := 1.0 / float64(len(batch))
			for w := 0; w < workers; w++ {
				batchGrad.AddScaled(workerGrads[w], invN)
				epochLoss += losses[w]
			}
			clipGrads(batchGrad, 5.0)
			opt.Step(c, batchGrad)
		}
		meanLoss := epochLoss / float64(len(samples))
		if cfg.KeepBest && meanLoss < bestLoss {
			bestLoss = meanLoss
			bestParams = c.snapshotParams(bestParams)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, meanLoss)
		}
		opt.lr *= cfg.LRDecay
	}
	if cfg.KeepBest && bestParams != nil {
		c.restoreParams(bestParams)
	}
	return nil
}

// paramTensors lists the classifier's parameter slices in a stable order.
func (c *Classifier) paramTensors() [][]float64 {
	var out [][]float64
	for _, l := range c.Layers {
		out = append(out, l.Wx.Data, l.Wh.Data, l.B)
	}
	out = append(out, c.HeadW)
	return out
}

// snapshotParams flattens all parameters (including HeadB) into buf.
func (c *Classifier) snapshotParams(buf []float64) []float64 {
	buf = buf[:0]
	for _, t := range c.paramTensors() {
		buf = append(buf, t...)
	}
	return append(buf, c.HeadB)
}

// restoreParams writes a snapshot back into the model.
func (c *Classifier) restoreParams(buf []float64) {
	pos := 0
	for _, t := range c.paramTensors() {
		copy(t, buf[pos:pos+len(t)])
		pos += len(t)
	}
	c.HeadB = buf[pos]
}

// clipGrads rescales the gradient when its global norm exceeds maxNorm,
// preventing exploding BPTT gradients.
func clipGrads(g *Grads, maxNorm float64) {
	var sq float64
	for _, t := range gradTensors(g) {
		for _, v := range t {
			sq += v * v
		}
	}
	sq += g.HeadB * g.HeadB
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, t := range gradTensors(g) {
		for i := range t {
			t[i] *= scale
		}
	}
	g.HeadB *= scale
}

// Evaluate returns the fraction of samples classified correctly at the 0.5
// threshold, computed in parallel.
func (c *Classifier) Evaluate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	correct := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(samples); k += workers {
				s := samples[k]
				if (c.Forward(s.Seq) >= 0.5) == (s.Label >= 0.5) {
					correct[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int
	for _, n := range correct {
		total += n
	}
	return float64(total) / float64(len(samples))
}
