package rssimap

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

var _t0 = time.Date(2022, 6, 1, 12, 0, 0, 0, time.UTC)

// gridRecords builds a dense lattice of records where AP "a" has RSSI -50
// everywhere and AP "b" ramps east from -70.
func gridRecords(spacing float64, w, h int) []Record {
	var out []Record
	for i := 0; i < w; i++ {
		for j := 0; j < h; j++ {
			pos := geo.Point{X: float64(i) * spacing, Y: float64(j) * spacing}
			out = append(out, Record{Pos: pos, RSSI: map[string]int{
				"a": -50,
				"b": -70 + int(pos.X/10),
			}})
		}
	}
	return out
}

func mustStore(t *testing.T, cfg Config, recs []Record) *Store {
	t.Helper()
	s, err := NewStore(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreErrors(t *testing.T) {
	if _, err := NewStore(Config{R: 0, DensityBase: 0.9}, nil); err == nil {
		t.Fatal("R=0 must error")
	}
	if _, err := NewStore(Config{R: 3, DensityBase: 1.5}, nil); err == nil {
		t.Fatal("density base out of range must error")
	}
	s := mustStore(t, DefaultConfig(), nil)
	if s.Len() != 0 {
		t.Fatal("empty store must have Len 0")
	}
}

func TestReferencePoints(t *testing.T) {
	recs := gridRecords(1, 10, 10)
	s := mustStore(t, DefaultConfig(), recs)
	refs := s.ReferencePoints(geo.Point{X: 4.5, Y: 4.5}, 1.0)
	// Points within 1 m of (4.5, 4.5) on a 1 m lattice: the 4 corners at
	// distance ~0.707.
	if len(refs) != 4 {
		t.Fatalf("reference points = %d, want 4", len(refs))
	}
	for _, idx := range refs {
		if geo.Dist(s.Record(int(idx)).Pos, geo.Point{X: 4.5, Y: 4.5}) > 1 {
			t.Fatal("reference point outside radius")
		}
	}
	if got := s.ReferencePoints(geo.Point{X: 500, Y: 500}, 2); len(got) != 0 {
		t.Fatal("far query must find nothing")
	}
}

func TestRPDUniformValue(t *testing.T) {
	recs := gridRecords(1, 8, 8)
	s := mustStore(t, DefaultConfig(), recs)
	// AP "a" is -50 at every record, so RPD(-50) = 1 and RPD(-60) = 0.
	if got := s.RPD(0, "a", -50); got != 1 {
		t.Fatalf("RPD(a, -50) = %v, want 1", got)
	}
	if got := s.RPD(0, "a", -60); got != 0 {
		t.Fatalf("RPD(a, -60) = %v, want 0", got)
	}
	// Unheard MAC: probability 0 for any value.
	if got := s.RPD(0, "zz", -50); got != 0 {
		t.Fatalf("RPD(unknown) = %v", got)
	}
}

func TestRPDCountsMissingAsDenominator(t *testing.T) {
	// Two coincident records, only one hears "c" at -40: RPD must be 0.5.
	recs := []Record{
		{Pos: geo.Point{X: 0, Y: 0}, RSSI: map[string]int{"c": -40}},
		{Pos: geo.Point{X: 0.1, Y: 0}, RSSI: map[string]int{}},
	}
	s := mustStore(t, DefaultConfig(), recs)
	if got := s.RPD(0, "c", -40); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RPD = %v, want 0.5", got)
	}
}

func TestRPDTolWindow(t *testing.T) {
	recs := []Record{
		{Pos: geo.Point{X: 0, Y: 0}, RSSI: map[string]int{"a": -50}},
		{Pos: geo.Point{X: 0.5, Y: 0}, RSSI: map[string]int{"a": -52}},
	}
	s := mustStore(t, DefaultConfig(), recs)
	if got := s.RPDTol(0, "a", -51, 0); got != 0 {
		t.Fatalf("tol 0 must not match, got %v", got)
	}
	if got := s.RPDTol(0, "a", -51, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("tol 1 must match both, got %v", got)
	}
}

func TestDensityAndTheta2(t *testing.T) {
	recs := gridRecords(1, 20, 20)
	s := mustStore(t, DefaultConfig(), recs)
	// Interior record on a 1 m lattice with R = 3: |C_H(R)| ~ pi*9 ~ 28
	// records, density ~ 1/m^2.
	interior := int32(10*20 + 10)
	eps := s.Density(interior)
	if eps < 0.8 || eps > 1.2 {
		t.Fatalf("density = %v, want ~1", eps)
	}
	th2 := s.Theta2(interior)
	want := 1 - math.Pow(0.9, eps)
	if math.Abs(th2-want) > 1e-12 {
		t.Fatalf("theta2 = %v, want %v", th2, want)
	}
	if th2 <= 0 || th2 >= 1 {
		t.Fatalf("theta2 = %v outside (0,1)", th2)
	}
	// Denser areas must be more reliable.
	sparse := mustStore(t, DefaultConfig(), gridRecords(3, 10, 10))
	if sparse.Theta2(int32(5*10+5)) >= th2 {
		t.Fatal("sparser store must have lower theta2")
	}
}

func TestConfidenceConsistentReportScoresHigh(t *testing.T) {
	recs := gridRecords(1, 12, 12)
	s := mustStore(t, DefaultConfig(), recs)
	o := geo.Point{X: 5.3, Y: 5.7}
	good, numGood := s.Confidence(o, "a", -50, 2.5)
	bad, numBad := s.Confidence(o, "a", -58, 2.5)
	if numGood == 0 || numGood != numBad {
		t.Fatalf("reference counts: %d vs %d", numGood, numBad)
	}
	if good <= bad {
		t.Fatalf("consistent report (%v) must outscore wrong one (%v)", good, bad)
	}
	if bad != 0 {
		t.Fatalf("impossible value must have zero confidence, got %v", bad)
	}
	// No references: zero confidence.
	phi, num := s.Confidence(geo.Point{X: 900, Y: 900}, "a", -50, 2.5)
	if phi != 0 || num != 0 {
		t.Fatalf("far query = (%v, %d)", phi, num)
	}
}

func TestConfidenceTheta1DistanceWeighting(t *testing.T) {
	// One near record says -50, one far record says -60. A report of -50
	// must beat a report of -60 because the near record carries more θ1.
	recs := []Record{
		{Pos: geo.Point{X: 0.2, Y: 0}, RSSI: map[string]int{"a": -50}},
		{Pos: geo.Point{X: 2.0, Y: 0}, RSSI: map[string]int{"a": -60}},
	}
	// Use small R so each record's counting area contains only itself.
	s := mustStore(t, Config{R: 0.5, DensityBase: 0.9}, recs)
	nearVal, _ := s.Confidence(geo.Point{X: 0, Y: 0}, "a", -50, 2.5)
	farVal, _ := s.Confidence(geo.Point{X: 0, Y: 0}, "a", -60, 2.5)
	if nearVal <= farVal {
		t.Fatalf("near-supported value %v must outscore far-supported %v", nearVal, farVal)
	}
}

func TestConfidenceCoincidentRecordIsStable(t *testing.T) {
	recs := []Record{{Pos: geo.Point{X: 1, Y: 1}, RSSI: map[string]int{"a": -40}}}
	s := mustStore(t, DefaultConfig(), recs)
	phi, num := s.Confidence(geo.Point{X: 1, Y: 1}, "a", -40, 2.5)
	if num != 1 || math.IsNaN(phi) || math.IsInf(phi, 0) {
		t.Fatalf("coincident query = (%v, %d)", phi, num)
	}
}

func buildUpload(n int, scan wifi.Scan) *wifi.Upload {
	pos := make([]geo.Point, n)
	scans := make([]wifi.Scan, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i), Y: 0}
		scans[i] = scan.Clone()
	}
	return &wifi.Upload{
		Traj:  trajectory.New(pos, _t0, 2*time.Second),
		Scans: scans,
	}
}

func TestFeaturesShapeAndPadding(t *testing.T) {
	recs := gridRecords(1, 12, 4)
	s := mustStore(t, DefaultConfig(), recs)
	cfg := FeatureConfig{R: 2.5, TopK: 3, Tol: 1, IncludeNum: true}
	u := buildUpload(5, wifi.Scan{{MAC: "a", RSSI: -50}}) // only 1 of 3 slots filled
	feat, err := s.Features(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feat) != cfg.FeatureDim(5) {
		t.Fatalf("feature dim = %d, want %d", len(feat), cfg.FeatureDim(5))
	}
	// Slots beyond the first AP must be zero-padded.
	per := cfg.TopK * 2
	for p := 0; p < 5; p++ {
		base := p * per
		if feat[base] == 0 {
			t.Fatalf("point %d: Num of first AP must be nonzero", p)
		}
		for slot := 1; slot < cfg.TopK; slot++ {
			if feat[base+2*slot] != 0 || feat[base+2*slot+1] != 0 {
				t.Fatalf("point %d slot %d not padded", p, slot)
			}
		}
	}
}

func TestFeaturesWithoutNum(t *testing.T) {
	recs := gridRecords(1, 8, 4)
	s := mustStore(t, DefaultConfig(), recs)
	cfg := FeatureConfig{R: 2.5, TopK: 2, Tol: 1, IncludeNum: false}
	u := buildUpload(3, wifi.Scan{{MAC: "a", RSSI: -50}, {MAC: "b", RSSI: -70}})
	feat, err := s.Features(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feat) != 3*2 {
		t.Fatalf("dim = %d, want 6", len(feat))
	}
}

func TestFeaturesErrors(t *testing.T) {
	s := mustStore(t, DefaultConfig(), gridRecords(1, 4, 4))
	u := buildUpload(3, nil)
	bad := FeatureConfig{R: 0, TopK: 3}
	if _, err := s.Features(u, bad); err == nil {
		t.Fatal("R=0 must error")
	}
	bad = FeatureConfig{R: 2, TopK: 0}
	if _, err := s.Features(u, bad); err == nil {
		t.Fatal("TopK=0 must error")
	}
	mismatched := &wifi.Upload{Traj: u.Traj, Scans: u.Scans[:1]}
	if _, err := s.Features(mismatched, DefaultFeatureConfig()); err == nil {
		t.Fatal("invalid upload must error")
	}
}

func TestFeaturesDiscriminative(t *testing.T) {
	// Core defense property: features of a truthful upload must have higher
	// total confidence than features of an upload reporting replayed
	// (wrong-position) RSSIs.
	rng := rand.New(rand.NewSource(9))
	world, err := wifi.NewWorld(rng, wifi.DefaultConfig(120, 120, 250))
	if err != nil {
		t.Fatal(err)
	}
	// Historical records on a dense lattice with true scans.
	var recs []Record
	for x := 10.0; x < 110; x += 1.2 {
		for y := 38.0; y < 44; y += 1.2 {
			p := geo.Point{X: x, Y: y}
			recs = append(recs, RecordFromScan(p, world.Scan(rng, p)))
		}
	}
	s := mustStore(t, DefaultConfig(), recs)
	cfg := DefaultFeatureConfig()

	// Truthful upload: fresh scans along the corridor.
	n := 20
	pos := make([]geo.Point, n)
	scans := make([]wifi.Scan, n)
	for i := range pos {
		pos[i] = geo.Point{X: 15 + float64(i)*4, Y: 41}
		scans[i] = world.Scan(rng, pos[i])
	}
	honest := &wifi.Upload{Traj: trajectory.New(pos, _t0, 2*time.Second), Scans: scans}

	// Forged upload: claims the same positions but replays scans captured
	// 18 m away (as a replay attacker adding {-1,0,1} noise would).
	fScans := make([]wifi.Scan, n)
	for i := range pos {
		src := world.Scan(rng, geo.Point{X: pos[i].X, Y: pos[i].Y + 18})
		for j := range src {
			src[j].RSSI += rng.Intn(3) - 1
		}
		fScans[i] = src
	}
	forged := &wifi.Upload{Traj: trajectory.New(pos, _t0, 2*time.Second), Scans: fScans}

	hf, err := s.Features(honest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := s.Features(forged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Slots are (Num, Φ, Residual) triples before the summary block.
	concatLen := n * cfg.TopK * 3
	sumAt := func(feat []float64, offset int) float64 {
		var sum float64
		for i := offset; i < concatLen; i += 3 {
			sum += feat[i]
		}
		return sum
	}
	if hPhi, fPhi := sumAt(hf, 1), sumAt(ff, 1); hPhi <= 1.5*fPhi {
		t.Fatalf("honest Φ mass %v not clearly above forged %v", hPhi, fPhi)
	}
	// Forged uploads replay values from 18 m away: their residuals against
	// the local reference mean must dominate the honest ones.
	if hRes, fRes := sumAt(hf, 2), sumAt(ff, 2); fRes <= 1.5*hRes {
		t.Fatalf("forged residual mass %v not clearly above honest %v", fRes, hRes)
	}
}

func TestMACNameCacheStaysCurrentAcrossAdd(t *testing.T) {
	s := mustStore(t, DefaultConfig(), []Record{
		{Pos: geo.Point{X: 0, Y: 0}, RSSI: map[string]int{"a": -50, "b": -60}},
	})
	// Adds that intern brand-new MACs must extend the cached reverse table,
	// so Record reverses every interned ID correctly afterwards.
	s.Add([]Record{
		{Pos: geo.Point{X: 1, Y: 0}, RSSI: map[string]int{"b": -61, "c": -70}},
		{Pos: geo.Point{X: 2, Y: 0}, RSSI: map[string]int{"d": -80}},
	})
	want := []map[string]int{
		{"a": -50, "b": -60},
		{"b": -61, "c": -70},
		{"d": -80},
	}
	for i, m := range want {
		got := s.Record(i).RSSI
		if len(got) != len(m) {
			t.Fatalf("record %d = %v, want %v", i, got, m)
		}
		for mac, v := range m {
			if got[mac] != v {
				t.Fatalf("record %d mac %s = %d, want %d", i, mac, got[mac], v)
			}
		}
	}
	// The cache must cover exactly the interned set, in intern order.
	s.mu.RLock()
	names := s.macNamesLocked()
	if len(names) != len(s.macIDs) {
		t.Fatalf("cache has %d names for %d ids", len(names), len(s.macIDs))
	}
	for mac, id := range s.macIDs {
		if names[id] != mac {
			t.Fatalf("cache[%d] = %q, want %q", id, names[id], mac)
		}
	}
	s.mu.RUnlock()
}

func TestRecordsRoundtripInsertionOrder(t *testing.T) {
	recs := gridRecords(2, 5, 5)
	s := mustStore(t, DefaultConfig(), recs)
	s.Add([]Record{{Pos: geo.Point{X: 50, Y: 50}, RSSI: map[string]int{"z": -42}}})
	got := s.Records()
	if len(got) != len(recs)+1 {
		t.Fatalf("Records len = %d, want %d", len(got), len(recs)+1)
	}
	for i, rec := range recs {
		if got[i].Pos != rec.Pos {
			t.Fatalf("record %d pos = %v, want %v", i, got[i].Pos, rec.Pos)
		}
		for mac, v := range rec.RSSI {
			if got[i].RSSI[mac] != v {
				t.Fatalf("record %d mac %s = %d, want %d", i, mac, got[i].RSSI[mac], v)
			}
		}
	}
	if last := got[len(got)-1]; last.RSSI["z"] != -42 {
		t.Fatalf("appended record = %+v", last)
	}
	// A store rebuilt from Records answers Features bit-identically.
	rebuilt := mustStore(t, DefaultConfig(), got)
	u := buildUpload(5, wifi.Scan{{MAC: "a", RSSI: -50}, {MAC: "b", RSSI: -70}})
	cfg := DefaultFeatureConfig()
	f1, err := s.Features(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := rebuilt.Features(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if math.Float64bits(f1[i]) != math.Float64bits(f2[i]) {
			t.Fatalf("feature %d: %v != %v", i, f1[i], f2[i])
		}
	}
}
