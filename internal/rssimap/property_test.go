package rssimap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trajforge/internal/geo"
)

// randStore builds a random store of up to 60 records in a 30x30 m patch.
func randStore(t testing.TB, rng *rand.Rand) *Store {
	n := 5 + rng.Intn(55)
	recs := make([]Record, n)
	for i := range recs {
		m := map[string]int{}
		for a := 0; a < 1+rng.Intn(6); a++ {
			m[fmt.Sprintf("ap-%d", rng.Intn(8))] = -40 - rng.Intn(50)
		}
		recs[i] = Record{
			Pos:  geo.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30},
			RSSI: m,
		}
	}
	s, err := NewStore(DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Property: RPD and Φ always land in [0, 1], for any store and query.
func TestPropertyConfidenceBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randStore(t, rng)
		for trial := 0; trial < 20; trial++ {
			o := geo.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
			mac := fmt.Sprintf("ap-%d", rng.Intn(8))
			rssi := -40 - rng.Intn(50)
			phi, num := s.Confidence(o, mac, rssi, 2.5)
			if phi < 0 || phi > 1 || num < 0 {
				return false
			}
			phi, _ = s.ConfidenceTol(o, mac, rssi, 2.5, 2)
			if phi < 0 || phi > 1 {
				return false
			}
			if h := int32(rng.Intn(s.Len())); s.RPD(h, mac, rssi) < 0 || s.RPD(h, mac, rssi) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: widening the match tolerance never decreases Φ.
func TestPropertyToleranceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randStore(t, rng)
		for trial := 0; trial < 20; trial++ {
			o := geo.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
			mac := fmt.Sprintf("ap-%d", rng.Intn(8))
			rssi := -40 - rng.Intn(50)
			prev := -1.0
			for tol := Tolerance(0); tol <= 3; tol++ {
				phi, _ := s.ConfidenceTol(o, mac, rssi, 2.5, tol)
				if phi < prev-1e-12 {
					return false
				}
				prev = phi
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is equivalent to building the store from the union —
// neighbor caches, densities and confidences all agree.
func TestPropertyIncrementalAddEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nA := 5 + rng.Intn(25)
		nB := 1 + rng.Intn(15)
		all := make([]Record, 0, nA+nB)
		for i := 0; i < nA+nB; i++ {
			all = append(all, Record{
				Pos:  geo.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25},
				RSSI: map[string]int{fmt.Sprintf("ap-%d", rng.Intn(5)): -50 - rng.Intn(30)},
			})
		}
		incr, err := NewStore(DefaultConfig(), append([]Record(nil), all[:nA]...))
		if err != nil {
			return false
		}
		incr.Add(all[nA:])
		full, err := NewStore(DefaultConfig(), append([]Record(nil), all...))
		if err != nil {
			return false
		}
		if incr.Len() != full.Len() {
			return false
		}
		for trial := 0; trial < 15; trial++ {
			o := geo.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25}
			mac := fmt.Sprintf("ap-%d", rng.Intn(5))
			rssi := -50 - rng.Intn(30)
			p1, n1 := incr.Confidence(o, mac, rssi, 2.5)
			p2, n2 := full.Confidence(o, mac, rssi, 2.5)
			if n1 != n2 || absF(p1-p2) > 1e-12 {
				return false
			}
		}
		for h := 0; h < incr.Len(); h++ {
			if absF(incr.Density(int32(h))-full.Density(int32(h))) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: an exactly matching record placed at the query position can
// only raise the confidence.
func TestPropertyMatchingRecordRaisesConfidence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randStore(t, rng)
		o := geo.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
		const mac = "ap-1"
		rssi := -60
		before, _ := s.ConfidenceTol(o, mac, rssi, 2.5, 1)
		s.Add([]Record{{Pos: o, RSSI: map[string]int{mac: rssi}}})
		after, _ := s.ConfidenceTol(o, mac, rssi, 2.5, 1)
		// The new record dominates θ1 at distance ~0 and its own counting
		// area contains a perfect match, so confidence must not collapse.
		return after >= before*0.5 && after > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
