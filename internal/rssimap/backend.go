package rssimap

import (
	"context"

	"trajforge/internal/geo"
	"trajforge/internal/wifi"
)

// Backend is the verification surface of a crowdsourced RSSI history: the
// ingestion path (Add/AddUploads), the Eq. 7 confidence query, and the
// Eq. 8 feature extraction the WiFi detector consumes. Store implements it
// as one global grid-indexed database; shardstore.Store implements it as a
// geo-sharded federation of Stores. Detector training, the verification
// server, and snapshot persistence all program against this interface so a
// provider can swap backends without touching the pipeline.
type Backend interface {
	// Len returns the number of historical records.
	Len() int
	// Records returns every record in insertion order (fresh copies) — the
	// serialization surface snapshots use.
	Records() []Record
	// Add ingests crowdsourced records incrementally.
	Add(records []Record)
	// AddUploads ingests every point of the given uploads that carries a scan.
	AddUploads(uploads []*wifi.Upload)
	// ConfidenceTol evaluates Eq. 7 for one reported (mac, rssi) at o.
	ConfidenceTol(o geo.Point, mac string, rssi int, r float64, tol Tolerance) (phi float64, num int)
	// PointConfidences verifies the TopK strongest observations of one scan.
	PointConfidences(o geo.Point, scan wifi.Scan, cfg FeatureConfig) []PointConfidence
	// PointConfidencesInto is PointConfidences appending into dst[:0] — the
	// allocation-free form streaming verification runs per chunk.
	PointConfidencesInto(dst []PointConfidence, o geo.Point, scan wifi.Scan, cfg FeatureConfig) []PointConfidence
	// Features computes the Eq. 8 feature vector of an upload.
	Features(u *wifi.Upload, cfg FeatureConfig) ([]float64, error)
	// FeaturesBatch extracts the feature vectors of many uploads in parallel,
	// bit-identical to calling Features serially.
	FeaturesBatch(uploads []*wifi.Upload, cfg FeatureConfig) ([][]float64, error)
}

var _ Backend = (*Store)(nil)

// TrustWeighted is the optional trust-weighting surface of a Backend: a
// contributor → weight table that down-weights low-trust mass in the θ2
// density term. Store and shardstore.Store implement it; backends that
// cannot (remote cluster stores) simply don't, and callers type-assert.
type TrustWeighted interface {
	// SetTrustWeights installs (nil removes) the contributor trust table.
	// Weights apply to records already stored and records added later; an
	// all-1.0 table is bit-identical to no table.
	SetTrustWeights(weights map[string]float64)
}

var _ TrustWeighted = (*Store)(nil)

// ContextBackend is a Backend whose feature extraction can carry the
// originating request's context. Remote backends (internal/cluster) use the
// context deadline to bound forwarded RPCs, so admission control's
// deadline-aware shedding accounts remote time too; in-process backends
// don't need it and simply ignore the context. The verification server
// type-asserts for this interface and prefers FeaturesContext when present.
type ContextBackend interface {
	Backend
	// FeaturesContext computes the Eq. 8 feature vector of an upload,
	// propagating ctx's deadline into any forwarded work.
	FeaturesContext(ctx context.Context, u *wifi.Upload, cfg FeatureConfig) ([]float64, error)
}
