// Package rssimap implements the provider-side half of the paper's defense
// (Sec. III): a crowdsourced store of historical (position, WiFi scan)
// records with a grid spatial index, the RSSI probability distribution
// (RPD) around each historical point (Eq. 4), the distance weight θ1
// (Eq. 5), the density-reliability weight θ2 (Eq. 6), the per-RSSI
// confidence Φ (Eq. 7), and the fixed-length trajectory feature vector fed
// to the XGBoost detector (Eq. 8).
//
// The store is built for the scan-heavy access pattern of verification:
// MAC addresses are interned to integer IDs at build time, per-record
// readings are kept as ID-sorted arrays (binary search instead of string
// hashing in the RPD inner loop), reference-point queries use a uniform
// grid, and every record's RPD counting area is precomputed and maintained
// incrementally by Add.
package rssimap

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"trajforge/internal/geo"
	"trajforge/internal/wifi"
)

// Record is one crowdsourced historical point: where a user reported being
// and what their phone heard there. Contributor is the uploader the point
// came from (ingestion provenance); empty is the legacy anonymous
// contributor.
type Record struct {
	Pos         geo.Point
	RSSI        map[string]int // MAC -> dBm
	Contributor string
}

// RecordFromScan converts a scan into an (anonymous) record.
func RecordFromScan(pos geo.Point, s wifi.Scan) Record {
	m := make(map[string]int, len(s))
	for _, o := range s {
		m[o.MAC] = o.RSSI
	}
	return Record{Pos: pos, RSSI: m}
}

// Config holds the defense's spatial parameters.
type Config struct {
	// R is the RPD counting radius (the paper calibrates R = 6σ = 3 m).
	R float64
	// DensityBase is the paper's 1/t = 0.9 in θ2 = 1 - (1/t)^ε.
	DensityBase float64
}

// DefaultConfig returns the paper's calibrated parameters.
func DefaultConfig() Config {
	return Config{R: 3.0, DensityBase: 0.9}
}

// reading is one (interned MAC, RSSI) pair.
type reading struct {
	mac  int32
	rssi int16
}

// storedRecord is the internal, query-optimised form of a Record.
type storedRecord struct {
	pos      geo.Point
	contrib  int32     // interned contributor ID
	readings []reading // sorted by mac
}

// rssiOf returns the record's reading of mac via binary search.
func (r *storedRecord) rssiOf(mac int32) (int16, bool) {
	lo, hi := 0, len(r.readings)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.readings[mid].mac < mac {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.readings) && r.readings[lo].mac == mac {
		return r.readings[lo].rssi, true
	}
	return 0, false
}

// Store is the provider's historical RSSI database. It is safe for
// concurrent use: queries take a read lock, Add takes the write lock, so a
// live verification service can keep crowdsourcing while verifying.
type Store struct {
	cfg Config

	mu      sync.RWMutex
	records []storedRecord
	macIDs  map[string]int32
	// macNames is the cached reverse of macIDs (index = interned ID). It is
	// extended whenever appendRecordLocked interns a new MAC, so Record never
	// rebuilds the table from the map.
	macNames []string

	// contribIDs/contribNames intern contributor identities exactly like
	// MACs, so per-record provenance costs 4 bytes.
	contribIDs   map[string]int32
	contribNames []string

	// trust, when non-nil, down-weights low-trust contributors in the θ2
	// density term: the counting-area population ε of Eq. 6 becomes the sum
	// of contributor trust weights over the area instead of its cardinality.
	// wByID caches the weight per interned contributor (unknown contributors
	// default to 1.0 — fully trusted, matching the unweighted store), and
	// wsum[i] caches that trusted mass over neighbors[i], summed in
	// ascending record-index order so grown and rebuilt stores accumulate
	// bit-identically. With every weight exactly 1.0 the sum equals
	// float64(len(neighbors[i])) exactly (integer-valued float64 additions),
	// so an all-trusted store answers bit-identically to the unweighted one.
	trust map[string]float64
	wByID []float64
	wsum  []float64

	cell float64
	grid map[[2]int][]int32

	// neighbors[i] caches the indices of records within R of record i
	// (including i itself) — the RPD counting area C_H(R).
	neighbors [][]int32

	// th2[i] caches θ2 of record i (Eq. 6). It depends only on
	// len(neighbors[i]), so Add invalidates it incrementally for exactly the
	// records whose counting area a new record enters — the math.Pow leaves
	// the per-point confidence hot loop entirely.
	th2 []float64
}

// NewStore builds a store over the given records.
func NewStore(cfg Config, records []Record) (*Store, error) {
	if cfg.R <= 0 {
		return nil, fmt.Errorf("rssimap: counting radius R=%g must be positive", cfg.R)
	}
	if cfg.DensityBase <= 0 || cfg.DensityBase >= 1 {
		return nil, fmt.Errorf("rssimap: density base %g must be in (0, 1)", cfg.DensityBase)
	}
	s := &Store{
		cfg:        cfg,
		macIDs:     make(map[string]int32),
		contribIDs: make(map[string]int32),
		cell:       cfg.R,
		grid:       make(map[[2]int][]int32),
	}
	s.records = make([]storedRecord, 0, len(records))
	for _, rec := range records {
		s.appendRecordLocked(rec)
	}
	// Precompute RPD counting areas and the θ2 cache. Counting areas are
	// kept in ascending record-index order — Add appends only ever-larger
	// indices, so the invariant is cheap to maintain and makes the trusted
	// mass accumulation order canonical.
	s.neighbors = make([][]int32, len(s.records))
	s.th2 = make([]float64, len(s.records))
	for i := range s.records {
		area := s.withinRadius(s.records[i].pos, cfg.R)
		sortInt32(area)
		s.neighbors[i] = area
		s.th2[i] = s.theta2Fresh(int32(i))
	}
	return s, nil
}

// sortInt32 sorts ascending in place.
func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// appendRecordLocked interns MACs and appends the record plus its grid
// entry; the caller must hold the write lock (or be the constructor).
func (s *Store) appendRecordLocked(rec Record) int32 {
	cid, ok := s.contribIDs[rec.Contributor]
	if !ok {
		cid = int32(len(s.contribIDs))
		s.contribIDs[rec.Contributor] = cid
		s.contribNames = append(s.contribNames, rec.Contributor)
		if s.trust != nil {
			s.wByID = append(s.wByID, s.trustWeightOf(rec.Contributor))
		}
	}
	sr := storedRecord{pos: rec.Pos, contrib: cid, readings: make([]reading, 0, len(rec.RSSI))}
	for mac, v := range rec.RSSI {
		id, ok := s.macIDs[mac]
		if !ok {
			id = int32(len(s.macIDs))
			s.macIDs[mac] = id
			s.macNames = append(s.macNames, mac)
		}
		sr.readings = append(sr.readings, reading{mac: id, rssi: int16(v)})
	}
	sort.Slice(sr.readings, func(i, j int) bool { return sr.readings[i].mac < sr.readings[j].mac })
	idx := int32(len(s.records))
	s.records = append(s.records, sr)
	s.grid[s.cellOf(rec.Pos)] = append(s.grid[s.cellOf(rec.Pos)], idx)
	return idx
}

// Len returns the number of historical records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Record returns the i-th record in the public (map) form.
func (s *Store) Record(i int) Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.records[i]
	// Reverse the interning for the public view.
	names := s.macNamesLocked()
	m := make(map[string]int, len(sr.readings))
	for _, rd := range sr.readings {
		m[names[rd.mac]] = int(rd.rssi)
	}
	return Record{Pos: sr.pos, RSSI: m, Contributor: s.contribNames[sr.contrib]}
}

func (s *Store) macNamesLocked() []string { return s.macNames }

// Records returns every historical record in insertion order, in the public
// (map) form — the serialization surface snapshots use. The returned slice
// and maps are fresh copies.
func (s *Store) Records() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := s.macNamesLocked()
	out := make([]Record, len(s.records))
	for i, sr := range s.records {
		m := make(map[string]int, len(sr.readings))
		for _, rd := range sr.readings {
			m[names[rd.mac]] = int(rd.rssi)
		}
		out[i] = Record{Pos: sr.pos, RSSI: m, Contributor: s.contribNames[sr.contrib]}
	}
	return out
}

// Add ingests new crowdsourced records incrementally, updating the spatial
// index and the cached RPD counting areas of every affected neighbor — the
// online path a live provider uses as accepted uploads keep arriving.
func (s *Store) Add(records []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range records {
		idx := s.appendRecordLocked(rec)
		// The new record's counting area, and symmetric updates to its
		// neighbors' areas (withinRadius already sees the new record). The
		// θ2 cache entries of exactly those records change, so they are
		// recomputed here and nowhere else.
		area := s.withinRadius(rec.Pos, s.cfg.R)
		sortInt32(area)
		s.neighbors = append(s.neighbors, area)
		s.th2 = append(s.th2, 0)
		if s.trust != nil {
			// Maintain the trusted-mass cache: idx is the largest index, so
			// appending its weight to each neighbor's running sum preserves
			// the canonical ascending-index accumulation order, and the new
			// record's own sum walks the (sorted) area from scratch.
			w := s.wByID[s.records[idx].contrib]
			var sum float64
			for _, n := range area {
				if n != idx {
					s.wsum[n] += w
				}
				sum += s.wByID[s.records[n].contrib]
			}
			s.wsum = append(s.wsum, sum)
		}
		for _, n := range area {
			if n != idx {
				s.neighbors[n] = append(s.neighbors[n], idx)
				s.th2[n] = s.theta2Fresh(n)
			}
		}
		s.th2[idx] = s.theta2Fresh(idx)
	}
}

// AddUploads ingests every point of the given uploads that carries a scan.
func (s *Store) AddUploads(uploads []*wifi.Upload) {
	s.Add(UploadRecords(uploads))
}

// UploadRecords extracts the crowdsourced records of the given uploads:
// every point that carries a scan, in point order, skipping invalid
// uploads — the shared ingestion rule of every Backend. Each record is
// stamped with the upload's contributor identity.
func UploadRecords(uploads []*wifi.Upload) []Record {
	var recs []Record
	for _, u := range uploads {
		if u.Validate() != nil {
			continue
		}
		for i, pt := range u.Traj.Points {
			if len(u.Scans[i]) == 0 {
				continue
			}
			rec := RecordFromScan(pt.Pos, u.Scans[i])
			rec.Contributor = u.Contributor
			recs = append(recs, rec)
		}
	}
	return recs
}

func (s *Store) cellOf(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / s.cell)), int(math.Floor(p.Y / s.cell))}
}

// withinRadius returns the indices of records within radius of p. Callers
// must hold at least the read lock.
func (s *Store) withinRadius(p geo.Point, radius float64) []int32 {
	return s.withinRadiusInto(nil, p, radius)
}

// withinRadiusInto appends the indices of records within radius of p to
// out[:0] and returns it — the allocation-free form for callers that hold a
// reusable buffer. Callers must hold at least the read lock. Index order is
// deterministic (grid cells in row-major reach order, append order within a
// cell), so downstream float accumulation is reproducible.
func (s *Store) withinRadiusInto(out []int32, p geo.Point, radius float64) []int32 {
	out = out[:0]
	reach := int(math.Ceil(radius / s.cell))
	c := s.cellOf(p)
	r2 := radius * radius
	for dx := -reach; dx <= reach; dx++ {
		for dy := -reach; dy <= reach; dy++ {
			for _, idx := range s.grid[[2]int{c[0] + dx, c[1] + dy}] {
				if geo.Dist2(s.records[idx].pos, p) <= r2 {
					out = append(out, idx)
				}
			}
		}
	}
	return out
}

// ReferencePoints returns the indices of historical records within radius r
// of position O — the paper's reference points in C_O(r).
func (s *Store) ReferencePoints(o geo.Point, r float64) []int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.withinRadius(o, r)
}

// RPD evaluates Eq. 4: the fraction of records in the counting area of
// reference point h whose reported RSSI for mac equals x. Records that did
// not hear mac at all count toward the denominator — an AP that is usually
// silent here makes any reported value for it suspicious.
func (s *Store) RPD(h int32, mac string, x int) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.macIDs[mac]
	if !ok {
		return 0
	}
	return s.rpdLocked(h, id, int16(x), 0)
}

// rpdLocked evaluates the (tolerance-widened) RPD for an interned MAC.
// Callers must hold the read lock.
func (s *Store) rpdLocked(h int32, mac int32, x int16, tol int16) float64 {
	area := s.neighbors[h]
	if len(area) == 0 {
		return 0
	}
	var hits int
	for _, idx := range area {
		if v, ok := s.records[idx].rssiOf(mac); ok && absI16(v-x) <= tol {
			hits++
		}
	}
	return float64(hits) / float64(len(area))
}

// Density returns ε for reference point h: counting-area population per
// square metre (Eq. 6).
func (s *Store) Density(h int32) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.densityLocked(h)
}

func (s *Store) densityLocked(h int32) float64 {
	return s.trustMassLocked(h) / (math.Pi * s.cfg.R * s.cfg.R)
}

// trustMassLocked returns the counting-area population of record h — the
// plain cardinality for an unweighted store, or the cached sum of
// contributor trust weights when a trust table is installed.
func (s *Store) trustMassLocked(h int32) float64 {
	if s.wsum != nil {
		return s.wsum[h]
	}
	return float64(len(s.neighbors[h]))
}

// trustWeightOf returns the installed trust weight of a contributor;
// contributors absent from the table (bootstrap data, the legacy anonymous
// contributor) are fully trusted. Callers must hold the write lock.
func (s *Store) trustWeightOf(name string) float64 {
	if w, ok := s.trust[name]; ok {
		return w
	}
	return 1.0
}

// SetTrustWeights installs (or, with nil, removes) a contributor trust
// table. While installed, the θ2 density term of Eq. 6 counts each record
// in a counting area with its contributor's weight instead of 1, and the
// θ1 inverse-distance weights of Eq. 5 (and with them the residual
// reference mean) are scaled by the same per-record weight — mass uploaded
// by low-trust contributors neither inflates RPD reliability nor steers
// per-point verification at full strength. The call recomputes the
// trusted-mass and θ2 caches for every record; subsequent Adds maintain
// them incrementally. An all-1.0 (or empty) table leaves every answer
// bit-identical to the unweighted store.
func (s *Store) SetTrustWeights(weights map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if weights == nil {
		s.trust, s.wByID, s.wsum = nil, nil, nil
	} else {
		s.trust = make(map[string]float64, len(weights))
		for k, v := range weights {
			s.trust[k] = v
		}
		s.wByID = make([]float64, len(s.contribNames))
		for i, name := range s.contribNames {
			s.wByID[i] = s.trustWeightOf(name)
		}
		s.wsum = make([]float64, len(s.records))
		for i := range s.records {
			var sum float64
			for _, n := range s.neighbors[i] { // ascending index order
				sum += s.wByID[s.records[n].contrib]
			}
			s.wsum[i] = sum
		}
	}
	for i := range s.records {
		s.th2[i] = s.theta2Fresh(int32(i))
	}
}

// theta2Fresh evaluates Eq. 6 from scratch: reliability of the RPD of
// reference point h. Callers must hold the write lock (or be the
// constructor); queries read the th2 cache instead.
func (s *Store) theta2Fresh(h int32) float64 {
	return 1 - math.Pow(s.cfg.DensityBase, s.densityLocked(h))
}

// Theta2 returns the cached Eq. 6 reliability weight of record h.
func (s *Store) Theta2(h int32) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.th2[h]
}

// Confidence evaluates Eq. 7 for one reported (mac, rssi) at position o
// using the reference points within radius r. It returns Φ and the number
// of reference points used (the paper's Num_mac feature).
func (s *Store) Confidence(o geo.Point, mac string, rssi int, r float64) (phi float64, num int) {
	return s.ConfidenceTol(o, mac, rssi, r, 0)
}

// Tolerance widens the RPD match: a reported value x matches a historical
// value v when |x - v| <= tol. The paper's exact-match Eq. 4 is tol = 0;
// integer-dBm quantisation plus measurement noise makes tol = 1-2 the
// practical choice, and the experiments expose it as an ablation.
type Tolerance int

// RPDTol is RPD with a +/- tol dB matching window.
func (s *Store) RPDTol(h int32, mac string, x int, tol Tolerance) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.macIDs[mac]
	if !ok {
		return 0
	}
	return s.rpdLocked(h, id, int16(x), int16(tol))
}

// ConfidenceTol is Confidence with a matching tolerance. The steady-state
// path is allocation-free: reference indices and θ1 weights live in pooled
// per-goroutine scratch, and θ2 comes from the incrementally maintained
// cache.
func (s *Store) ConfidenceTol(o geo.Point, mac string, rssi int, r float64, tol Tolerance) (phi float64, num int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := getScratch()
	defer putScratch(sc)
	return s.confidenceTolLocked(sc, o, mac, rssi, r, tol)
}

// confidenceTolLocked is the Eq. 7 kernel. Callers must hold the read lock
// and supply a scratch.
func (s *Store) confidenceTolLocked(sc *scratch, o geo.Point, mac string, rssi int, r float64, tol Tolerance) (phi float64, num int) {
	sc.refs = s.withinRadiusInto(sc.refs, o, r)
	refs := sc.refs
	if len(refs) == 0 {
		return 0, 0
	}
	id, known := s.macIDs[mac]
	if !known {
		return 0, len(refs)
	}
	// θ1 normalisation: sum of inverse distances (Eq. 5), trust-scaled per
	// reference when a contributor weight table is installed. Floor the
	// distance at a few centimetres so a coincident record does not absorb
	// all weight.
	const minDist = 0.05
	invSum := 0.0
	sc.inv = resizeF64(sc.inv, len(refs))
	inv := sc.inv
	for i, idx := range refs {
		d := math.Max(minDist, geo.Dist(s.records[idx].pos, o))
		inv[i] = 1 / d
		if s.wByID != nil {
			inv[i] *= s.wByID[s.records[idx].contrib]
		}
		invSum += inv[i]
	}
	if invSum == 0 { // every reference weighted to zero
		return 0, len(refs)
	}
	for i, idx := range refs {
		theta1 := inv[i] / invSum
		phi += theta1 * s.th2[idx] * s.rpdLocked(idx, id, int16(rssi), int16(tol))
	}
	return phi, len(refs)
}

// scratch is the reusable working memory of one verification goroutine:
// reference-point indices, θ1 weights, per-AP confidences, and the
// feature-extraction aggregates. Pooled so the steady-state confidence and
// feature paths allocate nothing beyond their returned vectors.
type scratch struct {
	refs  []int32
	inv   []float64
	confs []PointConfidence

	pointPhi []float64
	pointNum []float64
	pointRes []float64
	sorted   []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch   { return scratchPool.Get().(*scratch) }
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// resizeF64 returns a slice of length n reusing buf's capacity.
func resizeF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func absI16(x int16) int16 {
	if x < 0 {
		return -x
	}
	return x
}
