package rssimap

import (
	"fmt"
	"math"
	"sort"

	"trajforge/internal/geo"
	"trajforge/internal/parallel"
	"trajforge/internal/wifi"
)

// FeatureConfig controls trajectory feature extraction (Eq. 8).
type FeatureConfig struct {
	// R is the reference radius r around each uploaded point (the paper
	// sweeps it in Fig. 4 and settles on 2.5 m).
	R float64
	// TopK is the number of strongest reported APs considered per point
	// ("we take the k strongest WiFi RSSIs into consideration").
	TopK int
	// Tol is the RPD matching tolerance in dB.
	Tol Tolerance
	// IncludeNum includes the Num_mac reference-point count features; the
	// paper includes them, and the ablation benches measure their value.
	IncludeNum bool
	// IncludeResiduals appends, per AP slot, the absolute difference
	// between the reported RSSI and the θ1-weighted mean of the reference
	// points that heard the same AP. The paper's Eq. 7 confidence counts
	// tolerance-window matches and throws away *how far off* a mismatching
	// value is — exactly the information that separates a 2–3 m replay
	// displacement from honest GPS error. An implementation extension in
	// the spirit of Eq. 8 (see DESIGN.md §4b); the ablation benches measure
	// its value.
	IncludeResiduals bool
	// DisableTheta2 drops the density-reliability weight from Eq. 7,
	// treating every reference point's RPD as equally reliable — the θ2
	// ablation of DESIGN.md §5.
	DisableTheta2 bool
	// IncludeSummary appends six trajectory-level aggregates of the
	// per-point confidences. The paper's concatenated vector (Eq. 8) is
	// sufficient at its 5,000-sample training scale; the aggregates make
	// the classifier sample-efficient at smaller scales without changing
	// what is measured (see DESIGN.md substitutions).
	IncludeSummary bool
}

// DefaultFeatureConfig mirrors the paper's final settings.
func DefaultFeatureConfig() FeatureConfig {
	return FeatureConfig{R: 2.5, TopK: 5, Tol: 1, IncludeNum: true, IncludeSummary: true, IncludeResiduals: true}
}

// summaryDim is the number of trajectory-level aggregate features.
const summaryDim = 6

// FeatureDim returns the length of the vector produced for an upload of n
// points.
func (c FeatureConfig) FeatureDim(n int) int {
	per := 1
	if c.IncludeNum {
		per++
	}
	if c.IncludeResiduals {
		per++
	}
	dim := n * c.TopK * per
	if c.IncludeSummary {
		dim += summaryDim
		if c.IncludeResiduals {
			dim += residualSummaryDim
		}
	}
	return dim
}

// residualSummaryDim is the number of trajectory-level residual aggregates.
const residualSummaryDim = 3

// PointConfidence is the verification result of one reported AP at one
// point.
type PointConfidence struct {
	MAC string
	// Phi is the Eq. 7 confidence of the reported RSSI.
	Phi float64
	// Num is the number of reference points used.
	Num int
	// TrustNum is the trusted reference mass: the sum of the contributors'
	// trust weights over the same reference points. Without a trust table
	// it equals float64(Num) exactly (integer-valued additions of 1.0), as
	// it does under an all-1.0 table — so trust-blind callers see identical
	// numbers. The feature vector reports coverage as TrustNum, which is
	// what stops a flood of low-trust uploads from inflating apparent
	// coverage even after individual θ1/θ2 down-weighting.
	TrustNum float64
	// Residual is |reported - θ1-weighted reference mean| in dB over the
	// references that heard the AP; NaN-free: it is 0 when no reference
	// heard the AP (Heard reports that case).
	Residual float64
	// Heard is the number of references that heard the AP at all.
	Heard int
}

// PointConfidences verifies the TopK strongest observations of one scan at
// position o, sharing a single reference-point query across APs.
func (s *Store) PointConfidences(o geo.Point, scan wifi.Scan, cfg FeatureConfig) []PointConfidence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := getScratch()
	defer putScratch(sc)
	// Copy out of the scratch-backed buffer: the caller owns the result.
	return append([]PointConfidence(nil), s.pointConfidencesLocked(sc, o, scan, cfg)...)
}

// PointConfidencesInto is PointConfidences appending into dst[:0] — the
// allocation-free form for callers that hold a reusable buffer.
func (s *Store) PointConfidencesInto(dst []PointConfidence, o geo.Point, scan wifi.Scan, cfg FeatureConfig) []PointConfidence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := getScratch()
	defer putScratch(sc)
	return append(dst[:0], s.pointConfidencesLocked(sc, o, scan, cfg)...)
}

// pointConfidencesLocked is the per-point verification kernel. The returned
// slice is backed by sc.confs and valid only until the scratch is reused.
// Callers must hold the read lock.
func (s *Store) pointConfidencesLocked(sc *scratch, o geo.Point, scan wifi.Scan, cfg FeatureConfig) []PointConfidence {
	top := scan.TopK(cfg.TopK)
	if cap(sc.confs) < len(top) {
		sc.confs = make([]PointConfidence, len(top))
	}
	out := sc.confs[:len(top)]
	sc.refs = s.withinRadiusInto(sc.refs, o, cfg.R)
	refs := sc.refs
	if len(refs) == 0 {
		for i, obs := range top {
			out[i] = PointConfidence{MAC: obs.MAC}
		}
		return out
	}
	// θ1 weights (Eq. 5), shared by every AP of the scan. The distance is
	// floored at a few centimetres so a coincident record cannot absorb all
	// weight. With a trust table installed, each reference's θ1 mass is
	// scaled by its contributor's weight, so low-trust records neither steer
	// Φ nor drag the residual reference mean at full strength (an all-1.0
	// table multiplies by exactly 1.0 and stays bit-identical).
	const minDist = 0.05
	invSum := 0.0
	mass := 0.0
	sc.inv = resizeF64(sc.inv, len(refs))
	inv := sc.inv
	for i, idx := range refs {
		d := math.Max(minDist, geo.Dist(s.records[idx].pos, o))
		inv[i] = 1 / d
		if s.wByID != nil {
			w := s.wByID[s.records[idx].contrib]
			inv[i] *= w
			mass += w
		} else {
			mass += 1.0
		}
		invSum += inv[i]
	}
	if invSum == 0 { // every reference weighted to zero: nothing to verify against
		for i, obs := range top {
			out[i] = PointConfidence{MAC: obs.MAC, Num: len(refs)}
		}
		return out
	}
	for i, obs := range top {
		var phi float64
		var wSum, wMean float64
		var heard int
		if id, known := s.macIDs[obs.MAC]; known {
			for j, idx := range refs {
				theta1 := inv[j] / invSum
				th2 := 1.0
				if !cfg.DisableTheta2 {
					th2 = s.th2[idx]
				}
				phi += theta1 * th2 * s.rpdLocked(idx, id, int16(obs.RSSI), int16(cfg.Tol))
				if v, ok := s.records[idx].rssiOf(id); ok {
					wSum += inv[j]
					wMean += inv[j] * float64(v)
					heard++
				}
			}
		}
		pc := PointConfidence{MAC: obs.MAC, Phi: phi, Num: len(refs), TrustNum: mass, Heard: heard}
		if wSum > 0 {
			diff := float64(obs.RSSI) - wMean/wSum
			if diff < 0 {
				diff = -diff
			}
			pc.Residual = diff
		}
		out[i] = pc
	}
	return out
}

// Features computes the paper's feature vector for an uploaded trajectory:
// for each point, the (Num_mac, Φ) pairs of the TopK strongest reported
// APs, concatenated in point order (Eq. 8), optionally followed by
// trajectory-level aggregates. Points that heard fewer than TopK APs are
// padded with zeros.
func (s *Store) Features(u *wifi.Upload, cfg FeatureConfig) ([]float64, error) {
	if err := validateFeatureArgs(u, cfg); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := getScratch()
	defer putScratch(sc)
	return s.featuresLocked(sc, u, cfg), nil
}

// FeaturesBatch extracts the feature vectors of many uploads, fanning the
// work across the worker pool. Each worker holds the read lock for a whole
// chunk of uploads (one acquisition amortised over the chunk, instead of
// one per trajectory point) and reuses one scratch. Results are ordered by
// upload index and bit-identical to calling Features serially.
func (s *Store) FeaturesBatch(uploads []*wifi.Upload, cfg FeatureConfig) ([][]float64, error) {
	for i, u := range uploads {
		if err := validateFeatureArgs(u, cfg); err != nil {
			return nil, fmt.Errorf("upload %d: %w", i, err)
		}
	}
	out := make([][]float64, len(uploads))
	parallel.ForEachChunk(len(uploads), func(lo, hi int) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		sc := getScratch()
		defer putScratch(sc)
		for i := lo; i < hi; i++ {
			out[i] = s.featuresLocked(sc, uploads[i], cfg)
		}
	})
	return out, nil
}

func validateFeatureArgs(u *wifi.Upload, cfg FeatureConfig) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("rssimap: %w", err)
	}
	if cfg.R <= 0 {
		return fmt.Errorf("rssimap: feature radius %g must be positive", cfg.R)
	}
	if cfg.TopK <= 0 {
		return fmt.Errorf("rssimap: top-k %d must be positive", cfg.TopK)
	}
	return nil
}

// featuresLocked is the Eq. 8 kernel: it allocates only the returned
// vector; every intermediate lives in the scratch. Callers must hold the
// read lock and have validated the arguments.
func (s *Store) featuresLocked(sc *scratch, u *wifi.Upload, cfg FeatureConfig) []float64 {
	return aggregateFeatures(sc, u, cfg, func(i int) []PointConfidence {
		return s.pointConfidencesLocked(sc, u.Traj.Points[i].Pos, u.Scans[i], cfg)
	})
}

// FeaturesFrom computes the Eq. 8 feature vector of an upload from an
// arbitrary per-point confidence source — the hook sharded (or remote)
// backends use to share Store.Features' exact aggregation, including its
// float accumulation order. confsAt returns the verified TopK confidences
// of point i; its result is only read before the next confsAt call, so a
// reused buffer is fine.
func FeaturesFrom(u *wifi.Upload, cfg FeatureConfig, confsAt func(i int, pos geo.Point, scan wifi.Scan) []PointConfidence) ([]float64, error) {
	if err := validateFeatureArgs(u, cfg); err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	return aggregateFeatures(sc, u, cfg, func(i int) []PointConfidence {
		return confsAt(i, u.Traj.Points[i].Pos, u.Scans[i])
	}), nil
}

// aggregateFeatures concatenates per-point confidences into the Eq. 8
// vector plus the optional summary block. It allocates only the returned
// vector; the aggregate buffers live in the scratch.
func aggregateFeatures(sc *scratch, u *wifi.Upload, cfg FeatureConfig, confsAt func(i int) []PointConfidence) []float64 {
	n := u.Traj.Len()
	out := make([]float64, 0, cfg.FeatureDim(n))

	// Per-point aggregates for the summary block.
	pointPhi := resizeF64(sc.pointPhi, n)[:0]
	pointNum := resizeF64(sc.pointNum, n)[:0]
	pointRes := resizeF64(sc.pointRes, n)[:0]
	var zeroRefPoints int

	for i := range u.Traj.Points {
		confs := confsAt(i)
		var phiSum, numSum, resSum float64
		var resN int
		for j := 0; j < cfg.TopK; j++ {
			if j >= len(confs) {
				if cfg.IncludeNum {
					out = append(out, 0)
				}
				out = append(out, 0)
				if cfg.IncludeResiduals {
					out = append(out, 0)
				}
				continue
			}
			if cfg.IncludeNum {
				// Coverage is reported as trusted mass, not raw cardinality
				// (identical without a trust table — see TrustNum).
				out = append(out, confs[j].TrustNum)
			}
			out = append(out, confs[j].Phi)
			if cfg.IncludeResiduals {
				out = append(out, confs[j].Residual)
				if confs[j].Heard > 0 {
					resSum += confs[j].Residual
					resN++
				}
			}
			phiSum += confs[j].Phi
			numSum += confs[j].TrustNum
		}
		slots := float64(cfg.TopK)
		pointPhi = append(pointPhi, phiSum/slots)
		pointNum = append(pointNum, numSum/slots)
		if resN > 0 {
			pointRes = append(pointRes, resSum/float64(resN))
		}
		if len(confs) == 0 || confs[0].Num == 0 {
			zeroRefPoints++
		}
	}

	if cfg.IncludeSummary {
		out = append(out,
			mean(pointPhi),
			quantileInto(sc, pointPhi, 0.25),
			minOf(pointPhi),
			mean(pointNum),
			minOf(pointNum),
			float64(zeroRefPoints)/float64(n),
		)
		if cfg.IncludeResiduals {
			out = append(out,
				mean(pointRes),
				quantileInto(sc, pointRes, 0.75),
				maxOf(pointRes),
			)
		}
	}
	// Hand the (possibly re-grown) aggregate buffers back to the scratch.
	sc.pointPhi, sc.pointNum, sc.pointRes = pointPhi, pointNum, pointRes
	return out
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// quantileInto is quantile with the sort buffer taken from the scratch.
func quantileInto(sc *scratch, xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sc.sorted = append(resizeF64(sc.sorted, len(xs))[:0], xs...)
	return quantileSorted(sc.sorted, q)
}

// quantileSorted sorts buf in place and interpolates the q-quantile.
func quantileSorted(sorted []float64, q float64) float64 {
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
