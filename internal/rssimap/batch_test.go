package rssimap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// randUpload builds an n-point upload wandering through the patch, with a
// distinct random scan at every point.
func randUpload(rng *rand.Rand, n int) *wifi.Upload {
	pos := make([]geo.Point, n)
	scans := make([]wifi.Scan, n)
	x, y := rng.Float64()*25, rng.Float64()*25
	for i := range pos {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pos[i] = geo.Point{X: x, Y: y}
		k := rng.Intn(7)
		for a := 0; a < k; a++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("ap-%d", rng.Intn(8)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: trajectory.New(pos, _t0, 2*time.Second), Scans: scans}
}

// The θ2 cache must be invalidated by Add for exactly the records whose
// counting area the new records enter: after any sequence of Adds, every
// cached weight must equal the one a from-scratch store computes.
func TestTheta2CacheInvalidatedByAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	all := make([]Record, 60)
	for i := range all {
		all[i] = Record{
			Pos:  geo.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25},
			RSSI: map[string]int{fmt.Sprintf("ap-%d", rng.Intn(5)): -50 - rng.Intn(30)},
		}
	}
	incr := mustStore(t, DefaultConfig(), all[:30])
	// Mutate in several waves, including one that lands directly on top of
	// existing records (maximum cache churn).
	incr.Add(all[30:45])
	incr.Add(all[45:])
	onTop := []Record{
		{Pos: all[0].Pos, RSSI: map[string]int{"ap-0": -55}},
		{Pos: all[10].Pos, RSSI: map[string]int{"ap-1": -60}},
	}
	incr.Add(onTop)

	fresh := mustStore(t, DefaultConfig(), append(append([]Record(nil), all...), onTop...))
	if incr.Len() != fresh.Len() {
		t.Fatalf("len %d != %d", incr.Len(), fresh.Len())
	}
	for h := 0; h < incr.Len(); h++ {
		if got, want := incr.Theta2(int32(h)), fresh.Theta2(int32(h)); got != want {
			t.Fatalf("theta2[%d] = %v (cached) != %v (from scratch)", h, got, want)
		}
	}
	// The cached weights feed Eq. 7: confidences must agree bit-for-bit too.
	for trial := 0; trial < 25; trial++ {
		o := geo.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25}
		mac := fmt.Sprintf("ap-%d", rng.Intn(5))
		rssi := -50 - rng.Intn(30)
		p1, n1 := incr.ConfidenceTol(o, mac, rssi, 2.5, 1)
		p2, n2 := fresh.ConfidenceTol(o, mac, rssi, 2.5, 1)
		if p1 != p2 || n1 != n2 {
			t.Fatalf("confidence (%v, %d) != (%v, %d) at %v", p1, n1, p2, n2, o)
		}
	}
}

// FeaturesBatch must produce bit-identical vectors to the serial Features
// path — the parallel fan-out may not change a single ULP.
func TestFeaturesBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randStore(t, rng)
	uploads := make([]*wifi.Upload, 12)
	for i := range uploads {
		uploads[i] = randUpload(rng, 5+rng.Intn(20))
	}
	for _, cfg := range []FeatureConfig{
		DefaultFeatureConfig(),
		{R: 2.5, TopK: 3},
		{R: 1.5, TopK: 5, Tol: 2, IncludeNum: true, IncludeSummary: true},
		{R: 2.5, TopK: 5, Tol: 1, IncludeResiduals: true, IncludeSummary: true, DisableTheta2: true},
	} {
		batch, err := s.FeaturesBatch(uploads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(uploads) {
			t.Fatalf("batch returned %d vectors for %d uploads", len(batch), len(uploads))
		}
		for i, u := range uploads {
			serial, err := s.Features(u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(batch[i]) {
				t.Fatalf("cfg %+v upload %d: len %d != %d", cfg, i, len(serial), len(batch[i]))
			}
			for j := range serial {
				if serial[j] != batch[i][j] {
					t.Fatalf("cfg %+v upload %d feature %d: %v (serial) != %v (batch)",
						cfg, i, j, serial[j], batch[i][j])
				}
			}
		}
	}
}

// FeaturesBatch surfaces the error of the lowest-index bad upload.
func TestFeaturesBatchValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := randStore(t, rng)
	good := randUpload(rng, 8)
	bad := &wifi.Upload{Traj: good.Traj, Scans: good.Scans[:2]}
	if _, err := s.FeaturesBatch([]*wifi.Upload{good, bad}, DefaultFeatureConfig()); err == nil {
		t.Fatal("mismatched upload must error")
	}
	if _, err := s.FeaturesBatch([]*wifi.Upload{good}, FeatureConfig{R: -1, TopK: 3}); err == nil {
		t.Fatal("bad radius must error")
	}
	if out, err := s.FeaturesBatch(nil, DefaultFeatureConfig()); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

// A live provider keeps crowdsourcing while verifying: one writer ingests
// uploads through Add while reader goroutines run the confidence and batch
// feature paths. Run under -race, this exercises the lock discipline of the
// scratch/cache hot path.
func TestConcurrentAddAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := randStore(t, rng)
	uploads := make([]*wifi.Upload, 6)
	for i := range uploads {
		uploads[i] = randUpload(rng, 10)
	}
	fresh := make([][]Record, 20)
	for w := range fresh {
		fresh[w] = []Record{{
			Pos:  geo.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30},
			RSSI: map[string]int{fmt.Sprintf("ap-%d", rng.Intn(8)): -40 - rng.Intn(50)},
		}}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: keeps ingesting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, recs := range fresh {
			s.Add(recs)
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	// Readers: per-point confidences and batch feature extraction.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lr := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := geo.Point{X: lr.Float64() * 30, Y: lr.Float64() * 30}
				phi, _ := s.ConfidenceTol(o, fmt.Sprintf("ap-%d", lr.Intn(8)), -60, 2.5, 1)
				if phi < 0 || phi > 1 {
					t.Errorf("phi = %v out of range", phi)
					return
				}
				if _, err := s.FeaturesBatch(uploads, DefaultFeatureConfig()); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
