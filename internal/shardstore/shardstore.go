// Package shardstore geo-shards the provider's crowdsourced RSSI history.
//
// The global rssimap.Store serializes every Add behind one write lock and
// every query behind one read lock — fine for a lab, a bottleneck for a
// provider ingesting uploads from a whole city. This package partitions the
// plane into square tiles and keeps one independent rssimap.Store per tile,
// so ingestion and verification in different districts never contend: each
// shard has its own RWMutex, grid, and θ2 cache.
//
// Correctness across tile boundaries is preserved by halo replication.
// Every record is owned by the tile containing it and replicated into any
// neighboring tile whose region lies within the halo margin
//
//	margin = MaxQueryRadius + Store.R
//
// of the record. With that margin, the single shard owning a query position
// contains every record any Eq. 5/7 reference query (radius ≤
// MaxQueryRadius) can reach, *and* the complete Eq. 4 counting area (radius
// Store.R) of every record those queries use as a reference — so a query
// against the owning shard returns results bit-identical to the global
// store, float accumulation order included (the per-shard grid uses the
// same absolute cells and preserves global insertion order). TileSize ≥
// 2·margin bounds replication: a record lands in at most the 4 tiles of one
// corner block, so Add touches at most 4 shards and queries exactly 1.
package shardstore

import (
	"fmt"
	"math"
	"sync"

	"trajforge/internal/geo"
	"trajforge/internal/parallel"
	"trajforge/internal/rssimap"
	"trajforge/internal/wifi"
)

// Config sizes the sharding.
type Config struct {
	// Store configures each per-tile rssimap.Store (counting radius R,
	// density base).
	Store rssimap.Config
	// TileSize is the shard tile side in metres. It must be at least
	// 2·(MaxQueryRadius + Store.R) so halo replication stays within one
	// corner block (≤ 4 shards per record).
	TileSize float64
	// MaxQueryRadius is the largest reference radius r the store guarantees
	// exact answers for. Queries beyond it silently degrade to the owning
	// shard's view (references in unreplicated tiles are missed).
	MaxQueryRadius float64
}

// DefaultConfig shards with the paper's calibrated store parameters, exact
// answers up to r = 5 m (double the paper's 2.5 m reference radius), and
// 25 m tiles.
func DefaultConfig() Config {
	return Config{Store: rssimap.DefaultConfig(), TileSize: 25, MaxQueryRadius: 5}
}

// Margin is the halo replication margin: a record is replicated into every
// neighboring tile whose region lies within this distance of it.
func (c Config) Margin() float64 { return c.MaxQueryRadius + c.Store.R }

// Validate checks the sharding geometry — the same checks New applies.
func (c Config) Validate() error {
	if c.TileSize <= 0 {
		return fmt.Errorf("shardstore: tile size %g must be positive", c.TileSize)
	}
	if c.MaxQueryRadius <= 0 {
		return fmt.Errorf("shardstore: max query radius %g must be positive", c.MaxQueryRadius)
	}
	if c.TileSize < 2*c.Margin() {
		return fmt.Errorf("shardstore: tile size %g must be >= 2*(MaxQueryRadius+R) = %g", c.TileSize, 2*c.Margin())
	}
	return nil
}

// TileOf returns the tile owning position p. The tiling is shared with
// internal/cluster, which distributes these same tiles across nodes — the
// geometry must agree bit-for-bit for cross-backend feature identity.
func (c Config) TileOf(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / c.TileSize)), int(math.Floor(p.Y / c.TileSize))}
}

// TileDist returns the distance from p to the (closed) region of tile t.
func (c Config) TileDist(p geo.Point, t [2]int) float64 {
	x0 := float64(t[0]) * c.TileSize
	y0 := float64(t[1]) * c.TileSize
	dx := math.Max(0, math.Max(x0-p.X, p.X-(x0+c.TileSize)))
	dy := math.Max(0, math.Max(y0-p.Y, p.Y-(y0+c.TileSize)))
	return math.Hypot(dx, dy)
}

// TilesFor appends the owner tile of p plus every neighboring tile within
// the halo margin — at most a 2×2 corner block given TileSize ≥ 2·Margin.
// The owner tile is always first.
func (c Config) TilesFor(p geo.Point, out [][2]int) [][2]int {
	out = out[:0]
	owner := c.TileOf(p)
	margin := c.Margin()
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			t := [2]int{owner[0] + dx, owner[1] + dy}
			if t == owner {
				continue
			}
			if c.TileDist(p, t) <= margin {
				out = append(out, t)
			}
		}
	}
	// Owner first: callers that only need the owning tile read out[0].
	out = append(out, [2]int{})
	copy(out[1:], out[:len(out)-1])
	out[0] = owner
	return out
}

// Store is a geo-sharded crowdsourced RSSI history. It implements
// rssimap.Backend, so detectors and the verification server use it
// interchangeably with the global store.
type Store struct {
	cfg    Config
	margin float64

	// mu guards the shard map and the canonical record log; the expensive
	// per-shard work (grid insertion, θ2 maintenance, queries) runs under
	// each shard's own lock, so ingestion in distant tiles proceeds in
	// parallel.
	mu     sync.RWMutex
	shards map[[2]int]*rssimap.Store
	log    []rssimap.Record
	// trust, when non-nil, is the contributor trust table installed on every
	// shard (existing and lazily created) — see rssimap.TrustWeighted.
	trust map[string]float64
}

var _ rssimap.Backend = (*Store)(nil)
var _ rssimap.TrustWeighted = (*Store)(nil)

// New builds a sharded store over the given records.
func New(cfg Config, records []rssimap.Record) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Validate the per-shard config eagerly, not on first Add.
	if _, err := rssimap.NewStore(cfg.Store, nil); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, margin: cfg.Margin(), shards: make(map[[2]int]*rssimap.Store)}
	s.Add(records)
	return s, nil
}

// Config returns the sharding configuration.
func (s *Store) Config() Config { return s.cfg }

func (s *Store) tileOf(p geo.Point) [2]int { return s.cfg.TileOf(p) }

// tilesFor appends the owner tile of p plus every neighboring tile within
// the halo margin — at most a 2×2 corner block given TileSize ≥ 2·margin.
func (s *Store) tilesFor(p geo.Point, out [][2]int) [][2]int {
	return s.cfg.TilesFor(p, out)
}

// Add ingests crowdsourced records: each is journaled, then appended to its
// owner shard and halo-replicated to boundary neighbors. Shards are created
// lazily; per-shard insertion preserves the global arrival order.
func (s *Store) Add(records []rssimap.Record) {
	if len(records) == 0 {
		return
	}
	// Group into per-shard batches first (order-preserving), so each shard
	// takes its write lock once per Add instead of once per record.
	batches := make(map[[2]int][]rssimap.Record)
	var tiles [][2]int
	for _, rec := range records {
		tiles = s.tilesFor(rec.Pos, tiles)
		for _, t := range tiles {
			batches[t] = append(batches[t], rec)
		}
	}

	s.mu.Lock()
	for _, rec := range records {
		s.log = append(s.log, cloneRecord(rec))
	}
	targets := make([]*rssimap.Store, 0, len(batches))
	order := make([][2]int, 0, len(batches))
	for t := range batches {
		sh, ok := s.shards[t]
		if !ok {
			// cfg.Store was validated in New; an empty store cannot fail.
			sh, _ = rssimap.NewStore(s.cfg.Store, nil)
			if s.trust != nil {
				sh.SetTrustWeights(s.trust)
			}
			s.shards[t] = sh
		}
		targets = append(targets, sh)
		order = append(order, t)
	}
	s.mu.Unlock()

	// The expensive part — grid insertion and incremental θ2 maintenance —
	// runs outside the top-level lock, under each shard's own write lock.
	for i, sh := range targets {
		sh.Add(batches[order[i]])
	}
}

// AddUploads ingests every point of the given uploads that carries a scan.
func (s *Store) AddUploads(uploads []*wifi.Upload) {
	s.Add(rssimap.UploadRecords(uploads))
}

// SetTrustWeights installs (nil removes) the contributor trust table on
// every shard. Because each shard preserves global insertion order and
// halo replication gives the owning shard the complete counting area of
// every reachable reference, the trusted-mass accumulation order per
// record matches the global store's — answers stay bit-identical across
// backends under any weight table.
func (s *Store) SetTrustWeights(weights map[string]float64) {
	s.mu.Lock()
	if weights == nil {
		s.trust = nil
	} else {
		s.trust = make(map[string]float64, len(weights))
		for k, v := range weights {
			s.trust[k] = v
		}
	}
	trust := s.trust
	targets := make([]*rssimap.Store, 0, len(s.shards))
	for _, sh := range s.shards {
		targets = append(targets, sh)
	}
	s.mu.Unlock()
	// Per-shard recomputation runs under each shard's own write lock.
	for _, sh := range targets {
		sh.SetTrustWeights(trust)
	}
}

func cloneRecord(rec rssimap.Record) rssimap.Record {
	m := make(map[string]int, len(rec.RSSI))
	for mac, v := range rec.RSSI {
		m[mac] = v
	}
	return rssimap.Record{Pos: rec.Pos, RSSI: m, Contributor: rec.Contributor}
}

// Len returns the number of canonical (un-replicated) records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// Records returns every canonical record in insertion order (fresh copies).
func (s *Store) Records() []rssimap.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rssimap.Record, len(s.log))
	for i, rec := range s.log {
		out[i] = cloneRecord(rec)
	}
	return out
}

// shardAt returns the shard owning position p, or nil when no record has
// ever landed within the halo margin of p's tile (in which case no query of
// radius ≤ MaxQueryRadius around p can have references either).
func (s *Store) shardAt(p geo.Point) *rssimap.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[s.tileOf(p)]
}

// ConfidenceTol evaluates Eq. 7 against the shard owning o. Exact for
// r ≤ MaxQueryRadius.
func (s *Store) ConfidenceTol(o geo.Point, mac string, rssi int, r float64, tol rssimap.Tolerance) (phi float64, num int) {
	sh := s.shardAt(o)
	if sh == nil {
		return 0, 0
	}
	return sh.ConfidenceTol(o, mac, rssi, r, tol)
}

// Confidence evaluates Eq. 7 with exact RPD matching.
func (s *Store) Confidence(o geo.Point, mac string, rssi int, r float64) (phi float64, num int) {
	return s.ConfidenceTol(o, mac, rssi, r, 0)
}

// PointConfidences verifies the TopK strongest observations of one scan
// against the shard owning o.
func (s *Store) PointConfidences(o geo.Point, scan wifi.Scan, cfg rssimap.FeatureConfig) []rssimap.PointConfidence {
	sh := s.shardAt(o)
	if sh == nil {
		return emptyConfidences(nil, scan, cfg)
	}
	return sh.PointConfidences(o, scan, cfg)
}

// PointConfidencesInto is PointConfidences appending into dst[:0] — the
// allocation-free form, routed to the shard owning o.
func (s *Store) PointConfidencesInto(dst []rssimap.PointConfidence, o geo.Point, scan wifi.Scan, cfg rssimap.FeatureConfig) []rssimap.PointConfidence {
	sh := s.shardAt(o)
	if sh == nil {
		return emptyConfidences(dst, scan, cfg)
	}
	return sh.PointConfidencesInto(dst, o, scan, cfg)
}

// EmptyConfidences mirrors the global store's zero-reference answer: one
// zero-valued entry per reported TopK AP — the reply a query against a tile
// that never received a record must produce. Exported because
// internal/cluster short-circuits queries against empty tiles with the
// identical answer instead of forwarding them.
func EmptyConfidences(dst []rssimap.PointConfidence, scan wifi.Scan, cfg rssimap.FeatureConfig) []rssimap.PointConfidence {
	top := scan.TopK(cfg.TopK)
	dst = dst[:0]
	for _, obs := range top {
		dst = append(dst, rssimap.PointConfidence{MAC: obs.MAC})
	}
	return dst
}

// emptyConfidences keeps the internal call sites short.
func emptyConfidences(dst []rssimap.PointConfidence, scan wifi.Scan, cfg rssimap.FeatureConfig) []rssimap.PointConfidence {
	return EmptyConfidences(dst, scan, cfg)
}

// checkFeatureRadius rejects feature configs the sharding cannot answer
// exactly.
func (s *Store) checkFeatureRadius(cfg rssimap.FeatureConfig) error {
	if cfg.R > s.cfg.MaxQueryRadius {
		return fmt.Errorf("shardstore: feature radius %g exceeds MaxQueryRadius %g", cfg.R, s.cfg.MaxQueryRadius)
	}
	return nil
}

// Features computes the Eq. 8 feature vector of an upload, routing each
// point to the shard owning it. Results are bit-identical to the global
// store's.
func (s *Store) Features(u *wifi.Upload, cfg rssimap.FeatureConfig) ([]float64, error) {
	if err := s.checkFeatureRadius(cfg); err != nil {
		return nil, err
	}
	var buf []rssimap.PointConfidence
	return rssimap.FeaturesFrom(u, cfg, func(_ int, pos geo.Point, scan wifi.Scan) []rssimap.PointConfidence {
		sh := s.shardAt(pos)
		if sh == nil {
			buf = emptyConfidences(buf, scan, cfg)
			return buf
		}
		buf = sh.PointConfidencesInto(buf, pos, scan, cfg)
		return buf
	})
}

// FeaturesBatch extracts the feature vectors of many uploads across the
// worker pool; chunks land on whichever shards their points touch, so
// concurrent verification only contends when trajectories share a tile.
// Results are ordered by upload index and bit-identical to Features run
// serially.
func (s *Store) FeaturesBatch(uploads []*wifi.Upload, cfg rssimap.FeatureConfig) ([][]float64, error) {
	for i, u := range uploads {
		if err := u.Validate(); err != nil {
			return nil, fmt.Errorf("upload %d: rssimap: %w", i, err)
		}
	}
	if err := s.checkFeatureRadius(cfg); err != nil {
		return nil, err
	}
	out := make([][]float64, len(uploads))
	var firstErr error
	var errOnce sync.Once
	parallel.ForEachChunk(len(uploads), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			feat, err := s.Features(uploads[i], cfg)
			if err != nil {
				errOnce.Do(func() { firstErr = fmt.Errorf("upload %d: %w", i, err) })
				return
			}
			out[i] = feat
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Stats summarises shard occupancy.
type Stats struct {
	// Shards is the number of materialised tiles.
	Shards int `json:"shards"`
	// Records is the canonical record count.
	Records int `json:"records"`
	// StoredRecords counts per-shard copies, halo replicas included.
	StoredRecords int `json:"stored_records"`
	// MaxShardRecords is the most loaded shard's record count.
	MaxShardRecords int `json:"max_shard_records"`
	// TileSize echoes the configured tile side, metres.
	TileSize float64 `json:"tile_size"`
}

// Stats returns a snapshot of shard occupancy.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Shards: len(s.shards), Records: len(s.log), TileSize: s.cfg.TileSize}
	for _, sh := range s.shards {
		n := sh.Len()
		st.StoredRecords += n
		if n > st.MaxShardRecords {
			st.MaxShardRecords = n
		}
	}
	return st
}
