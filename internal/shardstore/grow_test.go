package shardstore

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"trajforge/internal/rssimap"
	"trajforge/internal/wifi"
)

// TestGrownStoreBitIdenticalToRebuilt is the online-ingestion equivalence
// property: a store grown record-by-record through the incremental Add
// path (which patches the θ2 cache in place) must be bit-identical to a
// store handed every record up front, on both the global and the sharded
// backend. Readers run concurrently with the growth so the race detector
// sees the ingestion and query paths overlap, exactly as they do when
// accepted streaming sessions feed the live store.
func TestGrownStoreBitIdenticalToRebuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const width, height = 100, 80
	seed := randRecords(rng, 500, width, height)

	// The growth arrives the way streaming sessions deliver it: one
	// accepted upload at a time, interleaved with raw record batches.
	uploads := make([]*wifi.Upload, 10)
	for i := range uploads {
		uploads[i] = randUpload(rng, 8+rng.Intn(12), width, height)
	}
	batches := make([][]rssimap.Record, 4)
	for i := range batches {
		batches[i] = randRecords(rng, 60, width, height)
	}

	gGlobal, gSharded := newPair(t, seed)
	probe := randUpload(rng, 20, width, height)
	cfg := rssimap.DefaultFeatureConfig()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := gGlobal.Features(probe, cfg); err != nil {
					t.Error(err)
					return
				}
				if _, err := gSharded.Features(probe, cfg); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i, u := range uploads {
		gGlobal.AddUploads([]*wifi.Upload{u})
		gSharded.AddUploads([]*wifi.Upload{u})
		if i < len(batches) {
			gGlobal.Add(batches[i])
			gSharded.Add(batches[i])
		}
	}
	close(stop)
	wg.Wait()

	// The rebuilt pair sees the identical record sequence, all at once.
	all := append([]rssimap.Record{}, seed...)
	for i, u := range uploads {
		all = append(all, rssimap.UploadRecords([]*wifi.Upload{u})...)
		if i < len(batches) {
			all = append(all, batches[i]...)
		}
	}
	rGlobal, rSharded := newPair(t, all)

	if gGlobal.Len() != rGlobal.Len() {
		t.Fatalf("global len %d != rebuilt %d", gGlobal.Len(), rGlobal.Len())
	}
	if gSharded.Len() != rSharded.Len() {
		t.Fatalf("sharded len %d != rebuilt %d", gSharded.Len(), rSharded.Len())
	}

	// The θ2 cache is the state the incremental path maintains in place;
	// every cached entry must match a from-scratch computation bitwise.
	for i := 0; i < gGlobal.Len(); i++ {
		a, b := gGlobal.Theta2(int32(i)), rGlobal.Theta2(int32(i))
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("theta2[%d]: grown %v != rebuilt %v", i, a, b)
		}
	}

	// Feature vectors — the values the detector actually consumes — must
	// agree on both backends for arbitrary query trajectories.
	for trial := 0; trial < 8; trial++ {
		q := randUpload(rng, 5+rng.Intn(20), width, height)
		gg, err := gGlobal.Features(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := rGlobal.Features(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, fmt.Sprintf("global trial %d", trial), gg, rg)
		gs, err := gSharded.Features(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := rSharded.Features(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, fmt.Sprintf("sharded trial %d", trial), gs, rs)
		assertSameVector(t, fmt.Sprintf("cross-backend trial %d", trial), gg, gs)
	}
}
