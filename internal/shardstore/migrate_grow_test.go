// Grown-vs-migrated-vs-rebuilt: the distributed extension of
// TestGrownStoreBitIdenticalToRebuilt. A cluster grown online — while one
// of its tiles live-migrates between nodes mid-growth — must end bit-
// identical to a single-process sharded store handed every record up front.
// External test package: internal/cluster imports shardstore, so the
// distributed half of the equivalence property has to link from outside.
package shardstore_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

func clusterRandRecords(rng *rand.Rand, n int, width, height float64) []rssimap.Record {
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := make(map[string]int)
		for j := 0; j < 3+rng.Intn(5); j++ {
			m[fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40))] = -40 - rng.Intn(50)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height},
			RSSI: m,
		}
	}
	return recs
}

func clusterRandUpload(rng *rand.Rand, n int, width, height float64) *wifi.Upload {
	pos := make([]geo.Point, n)
	p := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
	for i := range pos {
		p.X = math.Abs(math.Mod(p.X+rng.NormFloat64()*4, width))
		p.Y = math.Abs(math.Mod(p.Y+rng.NormFloat64()*4, height))
		pos[i] = p
	}
	traj := trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second)
	scans := make([]wifi.Scan, n)
	for i := range scans {
		for j := 0; j < 4; j++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

func TestGrownMigratedClusterBitIdenticalToRebuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const width, height = 100, 80
	seed := clusterRandRecords(rng, 400, width, height)

	// Three shard nodes over loopback, one coordinator.
	cfg := shardstore.DefaultConfig()
	nodes := make(map[string]*cluster.Node, 3)
	addrs := make(map[string]string, 3)
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(id, cfg, cluster.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	grown, err := cluster.NewStore(cluster.Options{Shard: cfg, Nodes: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		grown.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	grown.Add(seed)

	uploads := make([]*wifi.Upload, 10)
	for i := range uploads {
		uploads[i] = clusterRandUpload(rng, 8+rng.Intn(12), width, height)
	}
	batches := make([][]rssimap.Record, 4)
	for i := range batches {
		batches[i] = clusterRandRecords(rng, 60, width, height)
	}

	probe := clusterRandUpload(rng, 20, width, height)
	fcfg := rssimap.DefaultFeatureConfig()

	// Concurrent readers keep forwarding queries while records arrive and
	// the tile moves between nodes, so the race detector sees ingest,
	// query, and migration paths overlap.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := grown.Features(probe, fcfg); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i, u := range uploads {
		grown.AddUploads([]*wifi.Upload{u})
		if i < len(batches) {
			grown.Add(batches[i])
		}
		if i == len(uploads)/2 {
			// Mid-growth, live-migrate the busiest tile to another node.
			tile, ok := grown.BusiestTile()
			if !ok {
				t.Fatal("no busiest tile")
			}
			from := grown.Assignment().Owner(tile)
			var to string
			for id := range nodes {
				if id != from {
					to = id
					break
				}
			}
			if err := grown.Migrate(tile, to); err != nil {
				t.Fatalf("live migration: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// The rebuilt store sees the identical record sequence, all at once,
	// in one process, with no migration ever having happened.
	all := append([]rssimap.Record{}, seed...)
	for i, u := range uploads {
		all = append(all, rssimap.UploadRecords([]*wifi.Upload{u})...)
		if i < len(batches) {
			all = append(all, batches[i]...)
		}
	}
	rebuilt, err := shardstore.New(cfg, all)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() != rebuilt.Len() {
		t.Fatalf("grown len %d != rebuilt %d", grown.Len(), rebuilt.Len())
	}

	for trial := 0; trial < 8; trial++ {
		q := clusterRandUpload(rng, 5+rng.Intn(20), width, height)
		g, err := grown.Features(q, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := rebuilt.Features(q, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(g) != len(r) {
			t.Fatalf("trial %d: %d vs %d features", trial, len(g), len(r))
		}
		for i := range g {
			if math.Float64bits(g[i]) != math.Float64bits(r[i]) {
				t.Fatalf("trial %d feature %d: grown+migrated %v != rebuilt %v", trial, i, g[i], r[i])
			}
		}
	}
}
