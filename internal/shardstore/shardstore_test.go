package shardstore

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// randRecords builds crowdsourced records spread over a width×height area,
// dense enough that reference queries and counting areas are non-trivial.
func randRecords(rng *rand.Rand, n int, width, height float64) []rssimap.Record {
	macs := make([]string, 40)
	for i := range macs {
		macs[i] = fmt.Sprintf("02:4e:00:00:00:%02x", i)
	}
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := make(map[string]int)
		for j := 0; j < 3+rng.Intn(5); j++ {
			m[macs[rng.Intn(len(macs))]] = -40 - rng.Intn(50)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height},
			RSSI: m,
		}
	}
	return recs
}

// randUpload builds an upload whose trajectory wanders across tile
// boundaries, every point carrying a scan.
func randUpload(rng *rand.Rand, n int, width, height float64) *wifi.Upload {
	pos := make([]geo.Point, n)
	p := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
	for i := range pos {
		p.X = math.Abs(math.Mod(p.X+rng.NormFloat64()*4, width))
		p.Y = math.Abs(math.Mod(p.Y+rng.NormFloat64()*4, height))
		pos[i] = p
	}
	traj := trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second)
	scans := make([]wifi.Scan, n)
	for i := range scans {
		for j := 0; j < 4; j++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

func newPair(t *testing.T, recs []rssimap.Record) (*rssimap.Store, *Store) {
	t.Helper()
	global, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return global, sharded
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 10 // < 2*(5+3)
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("undersized tile must be rejected")
	}
	cfg = DefaultConfig()
	cfg.MaxQueryRadius = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("zero query radius must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Store.R = -1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("invalid per-shard store config must be rejected")
	}
}

func TestConfidenceMatchesGlobalStore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width, height = 120, 90
	global, sharded := newPair(t, randRecords(rng, 1500, width, height))

	for trial := 0; trial < 500; trial++ {
		o := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
		mac := fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40))
		rssi := -40 - rng.Intn(50)
		r := 0.5 + rng.Float64()*4.5 // up to MaxQueryRadius
		tol := rssimap.Tolerance(rng.Intn(3))
		gPhi, gNum := global.ConfidenceTol(o, mac, rssi, r, tol)
		sPhi, sNum := sharded.ConfidenceTol(o, mac, rssi, r, tol)
		if gNum != sNum || math.Float64bits(gPhi) != math.Float64bits(sPhi) {
			t.Fatalf("trial %d at %v r=%g: global (%v, %d) != sharded (%v, %d)",
				trial, o, r, gPhi, gNum, sPhi, sNum)
		}
	}
}

func TestFeaturesBitIdenticalToGlobalStore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width, height = 120, 90
	global, sharded := newPair(t, randRecords(rng, 1500, width, height))

	cfg := rssimap.DefaultFeatureConfig()
	uploads := make([]*wifi.Upload, 12)
	for i := range uploads {
		uploads[i] = randUpload(rng, 25, width, height)
	}
	for i, u := range uploads {
		g, err := global.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sharded.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, fmt.Sprintf("upload %d", i), g, s)
	}
	// The batch path must agree with the serial path on both backends.
	gb, err := global.FeaturesBatch(uploads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sharded.FeaturesBatch(uploads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uploads {
		assertSameVector(t, fmt.Sprintf("batch upload %d", i), gb[i], sb[i])
	}
}

func assertSameVector(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: dim %d != %d", label, len(a), len(b))
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			t.Fatalf("%s feature %d: %v != %v", label, j, a[j], b[j])
		}
	}
}

func TestIncrementalAddMatchesGlobalStore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const width, height = 100, 80
	initial := randRecords(rng, 600, width, height)
	global, sharded := newPair(t, initial)

	cfg := rssimap.DefaultFeatureConfig()
	u := randUpload(rng, 20, width, height)
	for round := 0; round < 3; round++ {
		more := randRecords(rng, 200, width, height)
		global.Add(more)
		sharded.Add(more)
		g, err := global.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sharded.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, fmt.Sprintf("round %d", round), g, s)
	}
	if global.Len() != sharded.Len() {
		t.Fatalf("len %d != %d", global.Len(), sharded.Len())
	}
}

func TestRecordsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	recs := randRecords(rng, 300, 60, 60)
	sharded, err := New(DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	got := sharded.Records()
	if len(got) != len(recs) {
		t.Fatalf("records %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Pos != recs[i].Pos || len(got[i].RSSI) != len(recs[i].RSSI) {
			t.Fatalf("record %d mismatch", i)
		}
		for mac, v := range recs[i].RSSI {
			if got[i].RSSI[mac] != v {
				t.Fatalf("record %d mac %s = %d, want %d", i, mac, got[i].RSSI[mac], v)
			}
		}
	}
	// Rebuilding a fresh sharded store from Records must answer identically.
	rebuilt, err := New(DefaultConfig(), got)
	if err != nil {
		t.Fatal(err)
	}
	u := randUpload(rng, 15, 60, 60)
	a, err := sharded.Features(u, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := rebuilt.Features(u, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameVector(t, "rebuilt", a, b)
}

func TestFeatureRadiusBoundEnforced(t *testing.T) {
	sharded, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rssimap.DefaultFeatureConfig()
	cfg.R = 50 // way past MaxQueryRadius
	rng := rand.New(rand.NewSource(19))
	if _, err := sharded.Features(randUpload(rng, 5, 50, 50), cfg); err == nil {
		t.Fatal("feature radius beyond MaxQueryRadius must error")
	}
	if _, err := sharded.FeaturesBatch([]*wifi.Upload{randUpload(rng, 5, 50, 50)}, cfg); err == nil {
		t.Fatal("batch feature radius beyond MaxQueryRadius must error")
	}
}

func TestEmptyAreaMatchesGlobalStore(t *testing.T) {
	// A query far from every record must agree with the global store's
	// zero-reference answer on both the confidence and feature paths.
	rng := rand.New(rand.NewSource(23))
	recs := randRecords(rng, 100, 30, 30)
	global, sharded := newPair(t, recs)
	far := geo.Point{X: 5000, Y: 5000}
	gPhi, gNum := global.ConfidenceTol(far, "02:4e:00:00:00:01", -60, 2.5, 1)
	sPhi, sNum := sharded.ConfidenceTol(far, "02:4e:00:00:00:01", -60, 2.5, 1)
	if gPhi != sPhi || gNum != sNum {
		t.Fatalf("far query: global (%v, %d) != sharded (%v, %d)", gPhi, gNum, sPhi, sNum)
	}
	scan := wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -60}}
	g := global.PointConfidences(far, scan, rssimap.DefaultFeatureConfig())
	s := sharded.PointConfidences(far, scan, rssimap.DefaultFeatureConfig())
	if len(g) != len(s) || len(s) != 1 || s[0] != g[0] {
		t.Fatalf("far confidences: %+v != %+v", g, s)
	}
}

// TestConcurrentAddAndQuery exercises cross-shard ingestion racing against
// batch feature extraction; run under -race it is the subsystem's memory-
// safety proof.
func TestConcurrentAddAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const width, height = 150, 150
	sharded, err := New(DefaultConfig(), randRecords(rng, 400, width, height))
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]*wifi.Upload, 8)
	for i := range uploads {
		uploads[i] = randUpload(rng, 20, width, height)
	}
	batches := make([][]rssimap.Record, 8)
	for i := range batches {
		batches[i] = randRecords(rng, 100, width, height)
	}
	cfg := rssimap.DefaultFeatureConfig()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sharded.Add(batches[i])
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sharded.FeaturesBatch(uploads, cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got, want := sharded.Len(), 400+8*100; got != want {
		t.Fatalf("len after concurrent adds = %d, want %d", got, want)
	}
	st := sharded.Stats()
	if st.Shards == 0 || st.Records != sharded.Len() || st.StoredRecords < st.Records {
		t.Fatalf("stats = %+v", st)
	}
}
