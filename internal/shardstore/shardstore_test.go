package shardstore

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// randRecords builds crowdsourced records spread over a width×height area,
// dense enough that reference queries and counting areas are non-trivial.
func randRecords(rng *rand.Rand, n int, width, height float64) []rssimap.Record {
	macs := make([]string, 40)
	for i := range macs {
		macs[i] = fmt.Sprintf("02:4e:00:00:00:%02x", i)
	}
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := make(map[string]int)
		for j := 0; j < 3+rng.Intn(5); j++ {
			m[macs[rng.Intn(len(macs))]] = -40 - rng.Intn(50)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height},
			RSSI: m,
		}
	}
	return recs
}

// randUpload builds an upload whose trajectory wanders across tile
// boundaries, every point carrying a scan.
func randUpload(rng *rand.Rand, n int, width, height float64) *wifi.Upload {
	pos := make([]geo.Point, n)
	p := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
	for i := range pos {
		p.X = math.Abs(math.Mod(p.X+rng.NormFloat64()*4, width))
		p.Y = math.Abs(math.Mod(p.Y+rng.NormFloat64()*4, height))
		pos[i] = p
	}
	traj := trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second)
	scans := make([]wifi.Scan, n)
	for i := range scans {
		for j := 0; j < 4; j++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

func newPair(t *testing.T, recs []rssimap.Record) (*rssimap.Store, *Store) {
	t.Helper()
	global, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return global, sharded
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 10 // < 2*(5+3)
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("undersized tile must be rejected")
	}
	cfg = DefaultConfig()
	cfg.MaxQueryRadius = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("zero query radius must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Store.R = -1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("invalid per-shard store config must be rejected")
	}
}

func TestConfidenceMatchesGlobalStore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width, height = 120, 90
	global, sharded := newPair(t, randRecords(rng, 1500, width, height))

	for trial := 0; trial < 500; trial++ {
		o := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
		mac := fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40))
		rssi := -40 - rng.Intn(50)
		r := 0.5 + rng.Float64()*4.5 // up to MaxQueryRadius
		tol := rssimap.Tolerance(rng.Intn(3))
		gPhi, gNum := global.ConfidenceTol(o, mac, rssi, r, tol)
		sPhi, sNum := sharded.ConfidenceTol(o, mac, rssi, r, tol)
		if gNum != sNum || math.Float64bits(gPhi) != math.Float64bits(sPhi) {
			t.Fatalf("trial %d at %v r=%g: global (%v, %d) != sharded (%v, %d)",
				trial, o, r, gPhi, gNum, sPhi, sNum)
		}
	}
}

func TestFeaturesBitIdenticalToGlobalStore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width, height = 120, 90
	global, sharded := newPair(t, randRecords(rng, 1500, width, height))

	cfg := rssimap.DefaultFeatureConfig()
	uploads := make([]*wifi.Upload, 12)
	for i := range uploads {
		uploads[i] = randUpload(rng, 25, width, height)
	}
	for i, u := range uploads {
		g, err := global.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sharded.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, fmt.Sprintf("upload %d", i), g, s)
	}
	// The batch path must agree with the serial path on both backends.
	gb, err := global.FeaturesBatch(uploads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sharded.FeaturesBatch(uploads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uploads {
		assertSameVector(t, fmt.Sprintf("batch upload %d", i), gb[i], sb[i])
	}
}

func assertSameVector(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: dim %d != %d", label, len(a), len(b))
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			t.Fatalf("%s feature %d: %v != %v", label, j, a[j], b[j])
		}
	}
}

func TestIncrementalAddMatchesGlobalStore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const width, height = 100, 80
	initial := randRecords(rng, 600, width, height)
	global, sharded := newPair(t, initial)

	cfg := rssimap.DefaultFeatureConfig()
	u := randUpload(rng, 20, width, height)
	for round := 0; round < 3; round++ {
		more := randRecords(rng, 200, width, height)
		global.Add(more)
		sharded.Add(more)
		g, err := global.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sharded.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, fmt.Sprintf("round %d", round), g, s)
	}
	if global.Len() != sharded.Len() {
		t.Fatalf("len %d != %d", global.Len(), sharded.Len())
	}
}

func TestRecordsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	recs := randRecords(rng, 300, 60, 60)
	sharded, err := New(DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	got := sharded.Records()
	if len(got) != len(recs) {
		t.Fatalf("records %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Pos != recs[i].Pos || len(got[i].RSSI) != len(recs[i].RSSI) {
			t.Fatalf("record %d mismatch", i)
		}
		for mac, v := range recs[i].RSSI {
			if got[i].RSSI[mac] != v {
				t.Fatalf("record %d mac %s = %d, want %d", i, mac, got[i].RSSI[mac], v)
			}
		}
	}
	// Rebuilding a fresh sharded store from Records must answer identically.
	rebuilt, err := New(DefaultConfig(), got)
	if err != nil {
		t.Fatal(err)
	}
	u := randUpload(rng, 15, 60, 60)
	a, err := sharded.Features(u, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := rebuilt.Features(u, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameVector(t, "rebuilt", a, b)
}

func TestFeatureRadiusBoundEnforced(t *testing.T) {
	sharded, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rssimap.DefaultFeatureConfig()
	cfg.R = 50 // way past MaxQueryRadius
	rng := rand.New(rand.NewSource(19))
	if _, err := sharded.Features(randUpload(rng, 5, 50, 50), cfg); err == nil {
		t.Fatal("feature radius beyond MaxQueryRadius must error")
	}
	if _, err := sharded.FeaturesBatch([]*wifi.Upload{randUpload(rng, 5, 50, 50)}, cfg); err == nil {
		t.Fatal("batch feature radius beyond MaxQueryRadius must error")
	}
}

func TestEmptyAreaMatchesGlobalStore(t *testing.T) {
	// A query far from every record must agree with the global store's
	// zero-reference answer on both the confidence and feature paths.
	rng := rand.New(rand.NewSource(23))
	recs := randRecords(rng, 100, 30, 30)
	global, sharded := newPair(t, recs)
	far := geo.Point{X: 5000, Y: 5000}
	gPhi, gNum := global.ConfidenceTol(far, "02:4e:00:00:00:01", -60, 2.5, 1)
	sPhi, sNum := sharded.ConfidenceTol(far, "02:4e:00:00:00:01", -60, 2.5, 1)
	if gPhi != sPhi || gNum != sNum {
		t.Fatalf("far query: global (%v, %d) != sharded (%v, %d)", gPhi, gNum, sPhi, sNum)
	}
	scan := wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -60}}
	g := global.PointConfidences(far, scan, rssimap.DefaultFeatureConfig())
	s := sharded.PointConfidences(far, scan, rssimap.DefaultFeatureConfig())
	if len(g) != len(s) || len(s) != 1 || s[0] != g[0] {
		t.Fatalf("far confidences: %+v != %+v", g, s)
	}
}

// TestHaloReplicationExactBoundaries pins tilesFor's closed-boundary
// semantics. Each case ingests a single record at a geometric edge, so
// Stats().StoredRecords is exactly the number of shards holding a copy.
// The closed comparisons matter: a record exactly on a tile border or
// exactly margin metres from it must still be replicated, or references
// at distance exactly MaxQueryRadius (also a closed ball, see
// rssimap's Dist2 <= r2) would be missed.
func TestHaloReplicationExactBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	margin := cfg.MaxQueryRadius + cfg.Store.R
	cases := []struct {
		name   string
		pos    geo.Point
		copies int
	}{
		{"tile interior", geo.Point{X: 12.5, Y: 12.5}, 1},
		{"exactly on vertical border", geo.Point{X: 25, Y: 12.5}, 2},
		{"exactly margin from the border", geo.Point{X: 25 + margin, Y: 12.5}, 2},
		{"just past the margin", geo.Point{X: 25 + margin + 1e-9, Y: 12.5}, 1},
		{"exactly on four-tile corner", geo.Point{X: 25, Y: 25}, 4},
		{"margin from two edges, outside corner diagonal", geo.Point{X: 25 + margin, Y: 25 + margin}, 3},
		{"origin corner", geo.Point{X: 0, Y: 0}, 4},
		{"exactly on negative border", geo.Point{X: -25, Y: -12.5}, 2},
		{"exactly on negative corner", geo.Point{X: -25, Y: -25}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := rssimap.Record{Pos: tc.pos, RSSI: map[string]int{"02:4e:00:00:00:01": -60}}
			s, err := New(cfg, []rssimap.Record{rec})
			if err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Records != 1 {
				t.Fatalf("canonical records = %d, want 1", st.Records)
			}
			if st.StoredRecords != tc.copies {
				t.Fatalf("record at %v stored in %d shards, want %d", tc.pos, st.StoredRecords, tc.copies)
			}
		})
	}
}

// TestBorderQueriesBitIdenticalToGlobal places records straddling tile
// borders and queries at the exact geometric limits the sharding
// guarantees — positions on the border itself, references at distance
// exactly MaxQueryRadius, records exactly margin metres into a neighbor
// — and demands bit-identical answers from both backends. randomised
// coverage (TestConfidenceMatchesGlobalStore) almost never lands on
// these measure-zero configurations.
func TestBorderQueriesBitIdenticalToGlobal(t *testing.T) {
	const mac = "02:4e:00:00:00:01"
	const mac2 = "02:4e:00:00:00:02"
	mkRec := func(x, y float64, rssi int) rssimap.Record {
		return rssimap.Record{Pos: geo.Point{X: x, Y: y}, RSSI: map[string]int{mac: rssi, mac2: rssi - 7}}
	}
	cfg := DefaultConfig()
	margin := cfg.MaxQueryRadius + cfg.Store.R
	recs := []rssimap.Record{
		// Cluster straddling the x=25 border: references on both sides
		// whose Eq. 4 counting areas (radius R) cross it.
		mkRec(20, 10, -60), mkRec(24, 10, -58), mkRec(25, 10, -61),
		mkRec(26, 10, -59), mkRec(28, 10, -60), mkRec(30, 10, -62),
		// Exactly margin past the tile-0 edge: replicated by the closed
		// boundary, reachable only through a neighbor's counting area.
		mkRec(25+margin, 10, -60),
		// Four-tile corner cluster around (25,25).
		mkRec(24.5, 24.5, -55), mkRec(25, 25, -56), mkRec(25.5, 25.5, -57),
		mkRec(22, 22, -60), mkRec(28, 22, -60), mkRec(22, 28, -60), mkRec(28, 28, -60),
		// Negative-coordinate border x=-25 (tile -2 / tile -1 boundary).
		mkRec(-25, -10, -60), mkRec(-24, -10, -61), mkRec(-26, -10, -59),
		mkRec(-20, -10, -60), mkRec(-30, -10, -62),
	}
	global, sharded := newPair(t, recs)

	queries := []struct {
		name     string
		o        geo.Point
		wantRefs bool // the MaxQueryRadius ball provably contains records
	}{
		// (25,10) is owned by tile 1 and its r=5 ball reaches (20,10) at
		// distance exactly MaxQueryRadius — the closed-halo record.
		{"exactly on border", geo.Point{X: 25, Y: 10}, true},
		{"tile 0 side of border", geo.Point{X: 24, Y: 10}, true},
		{"tile 1 side of border", geo.Point{X: 26, Y: 10}, true},
		// From tile 0, record (26,10) across the border sits at distance
		// exactly MaxQueryRadius.
		{"cross-border record at exact query radius", geo.Point{X: 21, Y: 10}, true},
		{"exactly on four-tile corner", geo.Point{X: 25, Y: 25}, true},
		{"corner from tile (0,0)", geo.Point{X: 22, Y: 22}, true},
		{"corner from tile (1,0)", geo.Point{X: 28, Y: 22}, true},
		{"corner from tile (0,1)", geo.Point{X: 22, Y: 28}, true},
		{"corner from tile (1,1)", geo.Point{X: 28, Y: 28}, true},
		{"exactly on negative border", geo.Point{X: -25, Y: -10}, true},
		{"negative border from tile -2", geo.Point{X: -29, Y: -10}, true},
		{"negative border from tile -1", geo.Point{X: -21, Y: -10}, true},
		{"empty far tile", geo.Point{X: 500, Y: 500}, false},
	}
	radii := []float64{2.5, cfg.MaxQueryRadius} // interior and the exact guarantee limit
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			sawRef := false
			for _, r := range radii {
				for tol := rssimap.Tolerance(0); tol <= 2; tol++ {
					gPhi, gNum := global.ConfidenceTol(q.o, mac, -60, r, tol)
					sPhi, sNum := sharded.ConfidenceTol(q.o, mac, -60, r, tol)
					if gNum != sNum || math.Float64bits(gPhi) != math.Float64bits(sPhi) {
						t.Fatalf("r=%g tol=%d: global (%v, %d) != sharded (%v, %d)",
							r, tol, gPhi, gNum, sPhi, sNum)
					}
					if gNum > 0 {
						sawRef = true
					}
				}
			}
			if sawRef != q.wantRefs {
				t.Fatalf("query saw references = %v, want %v (placement is wrong)", sawRef, q.wantRefs)
			}
			scan := wifi.Scan{{MAC: mac, RSSI: -60}, {MAC: mac2, RSSI: -67}}
			fcfg := rssimap.DefaultFeatureConfig()
			g := global.PointConfidences(q.o, scan, fcfg)
			s := sharded.PointConfidences(q.o, scan, fcfg)
			if len(g) != len(s) {
				t.Fatalf("confidences dim %d != %d", len(s), len(g))
			}
			for i := range g {
				if g[i] != s[i] {
					t.Fatalf("confidence %d: %+v != %+v", i, s[i], g[i])
				}
			}
		})
	}
}

// TestBorderWalkFeaturesBitIdentical runs the full Eq. 8 feature path on
// trajectories whose every point sits exactly on tile borders — the
// positions where shardAt's floor() ownership flips — against a history
// that also straddles those borders.
func TestBorderWalkFeaturesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	recs := randRecords(rng, 800, 120, 120)
	// Salt the random history with records exactly on borders and corners.
	for i := 0; i < 40; i++ {
		recs = append(recs, rssimap.Record{
			Pos:  geo.Point{X: float64((i%4)+1) * 25, Y: float64(i) * 3},
			RSSI: map[string]int{fmt.Sprintf("02:4e:00:00:00:%02x", i%40): -40 - i},
		})
	}
	global, sharded := newPair(t, recs)

	walks := []struct {
		name string
		pos  func(i int) geo.Point
	}{
		{"along border x=25", func(i int) geo.Point { return geo.Point{X: 25, Y: float64(i) * 2} }},
		{"along border y=50", func(i int) geo.Point { return geo.Point{X: float64(i) * 2, Y: 50} }},
		{"corner hopping", func(i int) geo.Point { return geo.Point{X: float64((i%3)+1) * 25, Y: float64((i/3)+1) * 25} }},
	}
	fcfg := rssimap.DefaultFeatureConfig()
	for _, wk := range walks {
		t.Run(wk.name, func(t *testing.T) {
			const n = 24
			pos := make([]geo.Point, n)
			scans := make([]wifi.Scan, n)
			for i := range pos {
				pos[i] = wk.pos(i)
				for j := 0; j < 4; j++ {
					scans[i] = append(scans[i], wifi.Observation{
						MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40)),
						RSSI: -40 - rng.Intn(50),
					})
				}
			}
			u := &wifi.Upload{
				Traj:  trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second),
				Scans: scans,
			}
			g, err := global.Features(u, fcfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sharded.Features(u, fcfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameVector(t, wk.name, g, s)
		})
	}
}

// TestConcurrentAddAndQuery exercises cross-shard ingestion racing against
// batch feature extraction; run under -race it is the subsystem's memory-
// safety proof.
func TestConcurrentAddAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const width, height = 150, 150
	sharded, err := New(DefaultConfig(), randRecords(rng, 400, width, height))
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]*wifi.Upload, 8)
	for i := range uploads {
		uploads[i] = randUpload(rng, 20, width, height)
	}
	batches := make([][]rssimap.Record, 8)
	for i := range batches {
		batches[i] = randRecords(rng, 100, width, height)
	}
	cfg := rssimap.DefaultFeatureConfig()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sharded.Add(batches[i])
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sharded.FeaturesBatch(uploads, cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got, want := sharded.Len(), 400+8*100; got != want {
		t.Fatalf("len after concurrent adds = %d, want %d", got, want)
	}
	st := sharded.Stats()
	if st.Shards == 0 || st.Records != sharded.Len() || st.StoredRecords < st.Records {
		t.Fatalf("stats = %+v", st)
	}
}
