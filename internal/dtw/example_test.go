package dtw_test

import (
	"fmt"

	"trajforge/internal/dtw"
	"trajforge/internal/geo"
)

// ExampleDist shows that DTW absorbs time warps: a trajectory compared with
// a stuttered copy of itself has zero distance, while a laterally shifted
// copy pays for every point.
func ExampleDist() {
	a := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	stuttered := []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 0}}
	shifted := []geo.Point{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}}

	fmt.Printf("stuttered: %.0f\n", dtw.Dist(a, stuttered))
	fmt.Printf("shifted:   %.0f\n", dtw.Dist(a, shifted))
	// Output:
	// stuttered: 0
	// shifted:   3
}

// ExampleEnvelope_LBKeogh shows the lower bound used to prune replay
// checks: it never exceeds the true banded distance.
func ExampleEnvelope_LBKeogh() {
	a := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	q := []geo.Point{{X: 0, Y: 2}, {X: 1, Y: 2}, {X: 2, Y: 2}, {X: 3, Y: 2}}
	env := dtw.NewEnvelope(a, 1)
	lb := env.LBKeogh(q)
	full := dtw.DistBanded(a, q, 1)
	fmt.Println("bound holds:", lb <= full)
	// Output:
	// bound holds: true
}
