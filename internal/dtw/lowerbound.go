package dtw

import (
	"math"

	"trajforge/internal/geo"
)

// Envelope is the per-index upper/lower band of a sequence under a warping
// window, used by the LB_Keogh lower bound. For planar points the envelope
// is kept per axis.
type Envelope struct {
	MinX, MaxX []float64
	MinY, MaxY []float64
	Window     int
}

// NewEnvelope builds the warping envelope of seq with the given Sakoe-Chiba
// half-width (window < 0 is treated as 0).
func NewEnvelope(seq []geo.Point, window int) *Envelope {
	if window < 0 {
		window = 0
	}
	n := len(seq)
	e := &Envelope{
		MinX: make([]float64, n), MaxX: make([]float64, n),
		MinY: make([]float64, n), MaxY: make([]float64, n),
		Window: window,
	}
	for i := 0; i < n; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi >= n {
			hi = n - 1
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for j := lo; j <= hi; j++ {
			minX = math.Min(minX, seq[j].X)
			maxX = math.Max(maxX, seq[j].X)
			minY = math.Min(minY, seq[j].Y)
			maxY = math.Max(maxY, seq[j].Y)
		}
		e.MinX[i], e.MaxX[i] = minX, maxX
		e.MinY[i], e.MaxY[i] = minY, maxY
	}
	return e
}

// LBKeogh returns a lower bound of the banded DTW distance between the
// envelope's sequence and q, assuming equal lengths; unequal lengths
// compare the overlapping prefix (still a valid lower bound for the
// prefix-extended alignment and safe for pruning with a small margin).
//
// For each point of q outside the envelope box at its index, the Euclidean
// distance to the box is a per-step cost every banded alignment must pay,
// so the sum lower-bounds DTW under the same window.
func (e *Envelope) LBKeogh(q []geo.Point) float64 {
	n := len(e.MinX)
	if len(q) < n {
		n = len(q)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var dx, dy float64
		switch {
		case q[i].X < e.MinX[i]:
			dx = e.MinX[i] - q[i].X
		case q[i].X > e.MaxX[i]:
			dx = q[i].X - e.MaxX[i]
		}
		switch {
		case q[i].Y < e.MinY[i]:
			dy = e.MinY[i] - q[i].Y
		case q[i].Y > e.MaxY[i]:
			dy = q[i].Y - e.MaxY[i]
		}
		sum += math.Hypot(dx, dy)
	}
	return sum
}
