package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trajforge/internal/geo"
)

func pts(coords ...float64) []geo.Point {
	out := make([]geo.Point, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		out = append(out, geo.Point{X: coords[i], Y: coords[i+1]})
	}
	return out
}

func randSeq(rng *rand.Rand, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	return out
}

func TestDistIdentical(t *testing.T) {
	a := pts(0, 0, 1, 1, 2, 2, 3, 3)
	if d := Dist(a, a); d != 0 {
		t.Fatalf("DTW to self = %v, want 0", d)
	}
}

func TestDistKnownValue(t *testing.T) {
	// a = (0,0),(1,0); b = (0,1),(1,1): best alignment is pointwise,
	// each local cost 1, total 2.
	a := pts(0, 0, 1, 0)
	b := pts(0, 1, 1, 1)
	if d := Dist(a, b); math.Abs(d-2) > 1e-12 {
		t.Fatalf("DTW = %v, want 2", d)
	}
}

func TestDistHandlesTimeShift(t *testing.T) {
	// b is a doubled version of a (each point repeated): DTW must be 0
	// because warping absorbs the repetition.
	a := pts(0, 0, 1, 0, 2, 0)
	b := pts(0, 0, 0, 0, 1, 0, 1, 0, 2, 0, 2, 0)
	if d := Dist(a, b); d != 0 {
		t.Fatalf("DTW to repeated self = %v, want 0", d)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 3+rng.Intn(10))
		b := randSeq(rng, 3+rng.Intn(10))
		return math.Abs(Dist(a, b)-Dist(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistNonNegativeAndEmpty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return Dist(randSeq(rng, 2+rng.Intn(8)), randSeq(rng, 2+rng.Intn(8))) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(Dist(nil, pts(0, 0)), 1) {
		t.Fatal("empty sequence must give +Inf")
	}
}

func TestPathValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSeq(rng, 12)
	b := randSeq(rng, 17)
	d, path, err := Path(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != (PathStep{0, 0}) || path[len(path)-1] != (PathStep{11, 16}) {
		t.Fatalf("path endpoints wrong: %v .. %v", path[0], path[len(path)-1])
	}
	var sum float64
	for k, st := range path {
		sum += geo.Dist(a[st.I], b[st.J])
		if k > 0 {
			di := st.I - path[k-1].I
			dj := st.J - path[k-1].J
			if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
				t.Fatalf("illegal path move at %d: %v -> %v", k, path[k-1], st)
			}
		}
	}
	if math.Abs(sum-d) > 1e-9 {
		t.Fatalf("path cost %v != DTW %v", sum, d)
	}
}

func TestPathErrors(t *testing.T) {
	if _, _, err := Path(nil, pts(0, 0), Options{}); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestBandedMatchesFullForWideWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSeq(rng, 20)
	b := randSeq(rng, 20)
	full := Dist(a, b)
	banded := DistBanded(a, b, 25)
	if math.Abs(full-banded) > 1e-9 {
		t.Fatalf("wide band %v != full %v", banded, full)
	}
	// A narrow band is a restriction, so cost can only grow.
	if narrow := DistBanded(a, b, 2); narrow < full-1e-9 {
		t.Fatalf("narrow band %v < full %v", narrow, full)
	}
}

func TestBandedUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randSeq(rng, 10)
	b := randSeq(rng, 30)
	// The scaled band must still connect the corners.
	d := DistBanded(a, b, 3)
	if math.IsInf(d, 1) {
		t.Fatal("scaled band disconnected unequal-length sequences")
	}
}

func TestGradBNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randSeq(rng, 8)
	b := randSeq(rng, 8)
	_, grad, err := GradB(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Subgradient check: the optimal path may switch under perturbation, so
	// compare against central differences and allow a loose tolerance; the
	// direction must agree well for most coordinates.
	const h = 1e-5
	bad := 0
	for j := range b {
		for axis := 0; axis < 2; axis++ {
			bump := func(delta float64) float64 {
				bb := append([]geo.Point(nil), b...)
				if axis == 0 {
					bb[j].X += delta
				} else {
					bb[j].Y += delta
				}
				return Dist(a, bb)
			}
			numeric := (bump(h) - bump(-h)) / (2 * h)
			var got float64
			if axis == 0 {
				got = grad[j].X
			} else {
				got = grad[j].Y
			}
			if math.Abs(got-numeric) > 1e-3 {
				bad++
			}
		}
	}
	if bad > 2 { // allow a couple of path-switch points
		t.Fatalf("%d/%d subgradient coordinates disagree with finite differences", bad, 2*len(b))
	}
}

func TestSoftDistApproachesHardDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randSeq(rng, 10)
	b := randSeq(rng, 10)
	// Hard DTW with squared-Euclidean cost for comparison.
	sq := func(a, b []geo.Point) float64 {
		n, m := len(a), len(b)
		acc := make([]float64, n*m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				c := geo.Dist2(a[i], b[j])
				best := math.Inf(1)
				if i == 0 && j == 0 {
					best = 0
				}
				if i > 0 {
					best = math.Min(best, acc[(i-1)*m+j])
				}
				if j > 0 {
					best = math.Min(best, acc[i*m+j-1])
				}
				if i > 0 && j > 0 {
					best = math.Min(best, acc[(i-1)*m+j-1])
				}
				acc[i*m+j] = c + best
			}
		}
		return acc[n*m-1]
	}
	hard := sq(a, b)
	soft, err := SoftDist(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(soft-hard)/hard > 0.01 {
		t.Fatalf("soft-DTW(gamma->0) = %v, hard = %v", soft, hard)
	}
	// Soft-DTW is a lower bound of hard DTW (soft-min <= min).
	if soft > hard+1e-9 {
		t.Fatalf("soft %v > hard %v", soft, hard)
	}
}

func TestSoftGradBNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randSeq(rng, 6)
	b := randSeq(rng, 7)
	const gamma = 5.0
	_, grad, err := SoftGradB(a, b, gamma)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for j := range b {
		for axis := 0; axis < 2; axis++ {
			bump := func(delta float64) float64 {
				bb := append([]geo.Point(nil), b...)
				if axis == 0 {
					bb[j].X += delta
				} else {
					bb[j].Y += delta
				}
				v, err := SoftDist(a, bb, gamma)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			numeric := (bump(h) - bump(-h)) / (2 * h)
			var got float64
			if axis == 0 {
				got = grad[j].X
			} else {
				got = grad[j].Y
			}
			rel := math.Abs(got-numeric) / math.Max(1, math.Abs(numeric))
			if rel > 1e-4 {
				t.Fatalf("soft grad[%d] axis %d = %v, numeric %v", j, axis, got, numeric)
			}
		}
	}
}

func TestSoftDistErrors(t *testing.T) {
	if _, err := SoftDist(pts(0, 0), pts(1, 1), 0); err == nil {
		t.Fatal("gamma=0 must error")
	}
	if _, err := SoftDist(nil, pts(1, 1), 1); err == nil {
		t.Fatal("empty sequence must error")
	}
	if _, _, err := SoftGradB(nil, pts(1, 1), 1); err == nil {
		t.Fatal("empty sequence must error in grad")
	}
}

func TestPerMeter(t *testing.T) {
	ref := pts(0, 0, 100, 0, 200, 0)
	if got := PerMeter(50, ref); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("PerMeter = %v, want 0.25", got)
	}
	if PerMeter(50, pts(1, 1)) != 0 {
		t.Fatal("degenerate reference must yield 0")
	}
}

// Property: LB_Keogh never exceeds the banded DTW distance for equal-length
// sequences (it would otherwise prune true replays).
func TestLBKeoghIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := randSeq(rng, n)
		b := randSeq(rng, n)
		window := 1 + rng.Intn(8)
		env := NewEnvelope(a, window)
		lb := env.LBKeogh(b)
		full := DistBanded(a, b, window)
		return lb <= full+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLBKeoghSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := randSeq(rng, 30)
	env := NewEnvelope(a, 3)
	if lb := env.LBKeogh(a); lb != 0 {
		t.Fatalf("LB_Keogh of the sequence against itself = %v, want 0", lb)
	}
	// Negative window clamps to zero.
	env0 := NewEnvelope(a, -5)
	if env0.Window != 0 {
		t.Fatal("negative window not clamped")
	}
}

func TestLBKeoghDetectsFarSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	a := randSeq(rng, 20)
	far := make([]geo.Point, 20)
	for i := range far {
		far[i] = geo.Point{X: a[i].X + 500, Y: a[i].Y}
	}
	env := NewEnvelope(a, 2)
	if lb := env.LBKeogh(far); lb < 20*400 {
		t.Fatalf("far sequence bound %v too small", lb)
	}
}
