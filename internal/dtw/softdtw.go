package dtw

import (
	"fmt"
	"math"

	"trajforge/internal/geo"
)

// SoftDist returns the soft-DTW value between a and b with smoothing gamma
// (> 0), using squared Euclidean local cost. Soft-DTW replaces the min in
// the DTW recursion with a soft-min, making the objective differentiable
// everywhere; the repository uses it as an ablation against the hard-DTW
// subgradient in the attack loss (DESIGN.md §5).
func SoftDist(a, b []geo.Point, gamma float64) (float64, error) {
	v, _, err := softForward(a, b, gamma)
	return v, err
}

// SoftGradB returns the soft-DTW value and its exact gradient with respect
// to the points of b, computed with the soft-DTW backward pass
// (Cuturi & Blondel, 2017).
func SoftGradB(a, b []geo.Point, gamma float64) (float64, []geo.Point, error) {
	v, r, err := softForward(a, b, gamma)
	if err != nil {
		return 0, nil, err
	}
	n, m := len(a), len(b)
	rAt := func(i, j int) float64 { return r[(i-1)*m+(j-1)] } // 1-based view
	cost := func(i, j int) float64 { return geo.Dist2(a[i-1], b[j-1]) }

	// e[i][j] = d v / d r[i][j], 1-based over the same n x m table. The
	// terminal cell's sensitivity is 1; every other cell accumulates the
	// soft-min split weights from its (up to three) successors.
	e := make([]float64, n*m)
	eAt := func(i, j int) float64 { return e[(i-1)*m+(j-1)] }
	for i := n; i >= 1; i-- {
		for j := m; j >= 1; j-- {
			if i == n && j == m {
				e[(i-1)*m+(j-1)] = 1
				continue
			}
			var sum float64
			if i+1 <= n {
				w := math.Exp((rAt(i+1, j) - rAt(i, j) - cost(i+1, j)) / gamma)
				sum += w * eAt(i+1, j)
			}
			if j+1 <= m {
				w := math.Exp((rAt(i, j+1) - rAt(i, j) - cost(i, j+1)) / gamma)
				sum += w * eAt(i, j+1)
			}
			if i+1 <= n && j+1 <= m {
				w := math.Exp((rAt(i+1, j+1) - rAt(i, j) - cost(i+1, j+1)) / gamma)
				sum += w * eAt(i+1, j+1)
			}
			e[(i-1)*m+(j-1)] = sum
		}
	}

	// d cost(i, j) / d b[j-1] = 2 (b[j-1] - a[i-1]).
	grad := make([]geo.Point, m)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			w := eAt(i, j)
			if w == 0 {
				continue
			}
			grad[j-1] = grad[j-1].Add(b[j-1].Sub(a[i-1]).Scale(2 * w))
		}
	}
	return v, grad, nil
}

// softForward computes the soft-DTW DP table r (n x m, row-major) and the
// final value r[n-1][m-1].
func softForward(a, b []geo.Point, gamma float64) (float64, []float64, error) {
	if gamma <= 0 {
		return 0, nil, fmt.Errorf("dtw: soft-DTW gamma %g must be positive", gamma)
	}
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, nil, fmt.Errorf("dtw: empty sequence (len a=%d, len b=%d)", n, m)
	}
	r := make([]float64, n*m)
	softMin := func(x, y, z float64) float64 {
		mn := math.Min(x, math.Min(y, z))
		if math.IsInf(mn, 1) {
			return mn
		}
		s := math.Exp(-(x-mn)/gamma) + math.Exp(-(y-mn)/gamma) + math.Exp(-(z-mn)/gamma)
		return mn - gamma*math.Log(s)
	}
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			c := geo.Dist2(a[i], b[j])
			up, left, diag := inf, inf, inf
			if i > 0 {
				up = r[(i-1)*m+j]
			}
			if j > 0 {
				left = r[i*m+j-1]
			}
			if i > 0 && j > 0 {
				diag = r[(i-1)*m+j-1]
			}
			if i == 0 && j == 0 {
				r[0] = c
				continue
			}
			r[i*m+j] = c + softMin(up, left, diag)
		}
	}
	return r[n*m-1], r, nil
}
