// Package dtw implements Dynamic Time Warping between planar point
// sequences. The paper uses DTW both as the route-similarity term of the
// forgery loss (Eq. 1–3) and as the replay-detection distance, so this
// package provides the distance itself, the optimal alignment path, a
// Sakoe-Chiba banded variant for speed, and the subgradient of the distance
// with respect to one of the two sequences, which the C&W-style attack
// optimizer back-propagates into trajectory positions.
package dtw

import (
	"fmt"
	"math"

	"trajforge/internal/geo"
)

// PathStep is one cell of an alignment path: a[I] is matched to b[J].
type PathStep struct {
	I, J int
}

// Options configures a DTW computation.
type Options struct {
	// Window is the Sakoe-Chiba band half-width in steps; cells with
	// |i - j| > Window are excluded. Zero or negative means no band.
	Window int
}

// Dist returns the DTW distance between the two point sequences using
// Euclidean local cost and no band.
func Dist(a, b []geo.Point) float64 {
	d, _ := distance(a, b, Options{}, false)
	return d
}

// DistBanded returns the DTW distance constrained to a Sakoe-Chiba band.
// A band too narrow to connect the corners yields +Inf.
func DistBanded(a, b []geo.Point, window int) float64 {
	d, _ := distance(a, b, Options{Window: window}, false)
	return d
}

// Path returns the DTW distance together with one optimal alignment path
// from (0, 0) to (len(a)-1, len(b)-1).
func Path(a, b []geo.Point, opts Options) (float64, []PathStep, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, nil, fmt.Errorf("dtw: empty sequence (len a=%d, len b=%d)", len(a), len(b))
	}
	d, path := distance(a, b, opts, true)
	if math.IsInf(d, 1) {
		return d, nil, fmt.Errorf("dtw: band window %d disconnects sequences of length %d and %d",
			opts.Window, len(a), len(b))
	}
	return d, path, nil
}

// distance runs the DP. When wantPath is true it keeps the full cost matrix
// and backtracks; otherwise it uses two rolling rows.
func distance(a, b []geo.Point, opts Options, wantPath bool) (float64, []PathStep) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1), nil
	}
	inBand := func(i, j int) bool {
		if opts.Window <= 0 {
			return true
		}
		// Scale the band for unequal lengths so the diagonal stays inside.
		diag := float64(j) * float64(n-1) / math.Max(1, float64(m-1))
		return math.Abs(float64(i)-diag) <= float64(opts.Window)
	}

	if !wantPath {
		prev := make([]float64, m)
		cur := make([]float64, m)
		for j := 0; j < m; j++ {
			prev[j] = math.Inf(1)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				cur[j] = math.Inf(1)
			}
			for j := 0; j < m; j++ {
				if !inBand(i, j) {
					continue
				}
				cost := geo.Dist(a[i], b[j])
				switch {
				case i == 0 && j == 0:
					cur[j] = cost
				case i == 0:
					cur[j] = cost + cur[j-1]
				case j == 0:
					cur[j] = cost + prev[j]
				default:
					cur[j] = cost + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
				}
			}
			prev, cur = cur, prev
		}
		return prev[m-1], nil
	}

	// Full matrix for backtracking.
	acc := make([]float64, n*m)
	for i := range acc {
		acc[i] = math.Inf(1)
	}
	at := func(i, j int) float64 { return acc[i*m+j] }
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if !inBand(i, j) {
				continue
			}
			cost := geo.Dist(a[i], b[j])
			switch {
			case i == 0 && j == 0:
				acc[i*m+j] = cost
			case i == 0:
				acc[i*m+j] = cost + at(i, j-1)
			case j == 0:
				acc[i*m+j] = cost + at(i-1, j)
			default:
				acc[i*m+j] = cost + math.Min(at(i-1, j), math.Min(at(i, j-1), at(i-1, j-1)))
			}
		}
	}
	total := at(n-1, m-1)
	if math.IsInf(total, 1) {
		return total, nil
	}

	// Backtrack greedily along minimal predecessors.
	path := make([]PathStep, 0, n+m)
	i, j := n-1, m-1
	path = append(path, PathStep{i, j})
	for i > 0 || j > 0 {
		switch {
		case i == 0:
			j--
		case j == 0:
			i--
		default:
			d := at(i-1, j-1)
			u := at(i-1, j)
			l := at(i, j-1)
			if d <= u && d <= l {
				i--
				j--
			} else if u <= l {
				i--
			} else {
				j--
			}
		}
		path = append(path, PathStep{i, j})
	}
	// Reverse into forward order.
	for lo, hi := 0, len(path)-1; lo < hi; lo, hi = lo+1, hi-1 {
		path[lo], path[hi] = path[hi], path[lo]
	}
	return total, path
}

// GradB returns the DTW distance and its subgradient with respect to the
// points of b, holding a fixed and holding the optimal alignment path fixed
// (the standard subgradient of DTW through its argmin path). The gradient of
// the Euclidean local cost |a_i - b_j| w.r.t. b_j is (b_j - a_i)/|a_i - b_j|;
// zero-distance matches contribute nothing.
func GradB(a, b []geo.Point, opts Options) (float64, []geo.Point, error) {
	d, path, err := Path(a, b, opts)
	if err != nil {
		return 0, nil, err
	}
	grad := make([]geo.Point, len(b))
	for _, st := range path {
		diff := b[st.J].Sub(a[st.I])
		norm := diff.Norm()
		if norm > 1e-9 {
			grad[st.J].X += diff.X / norm
			grad[st.J].Y += diff.Y / norm
		}
	}
	return d, grad, nil
}

// PerMeter normalises a DTW distance by the reference path length,
// giving the "DTW per metre" unit the paper uses for MinD thresholds.
func PerMeter(d float64, ref []geo.Point) float64 {
	l := geo.PolylineLength(ref)
	if l <= 0 {
		return 0
	}
	return d / l
}
