package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Render formats Table I as aligned text.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — classification performance against naive attacks\n")
	fmt.Fprintf(&b, "%-10s %9s %10s %8s %9s\n", "Classifier", "Accuracy", "Precision", "Recall", "F1-score")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.4f %10.4f %8.4f %9.4f\n",
			row.Model, row.Accuracy, row.Precision, row.Recall, row.F1)
	}
	return b.String()
}

// Render formats the MinD calibration.
func (r *MinDResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MinD calibration — minimum pairwise DTW/m over repeated traversals\n")
	fmt.Fprintf(&b, "%-10s %10s %8s\n", "Mode", "MinD(/m)", "Repeats")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.3f %8d\n", row.Mode, row.PerMeter, row.Repeats)
	}
	return b.String()
}

// Render formats the R calibration.
func (r *RCalResult) Render() string {
	return fmt.Sprintf("R calibration — %d static fixes: sigma = %.3f m, R = 6*sigma = %.3f m\n",
		r.N, r.Sigma, r.R)
}

// Render formats the Fig. 3 curves.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — C&W iterations vs time and DTW (first adversarial at iter %d)\n",
		r.FirstAdversarial)
	fmt.Fprintf(&b, "%10s %10s %12s %7s\n", "Iterations", "Time (s)", "Best DTW", "Found")
	for _, p := range r.Points {
		dtwStr := "-"
		if !math.IsInf(p.BestDTW, 1) {
			dtwStr = fmt.Sprintf("%.1f", p.BestDTW)
		}
		fmt.Fprintf(&b, "%10d %10.2f %12s %7v\n", p.Iterations, p.Seconds, dtwStr, p.Found)
	}
	return b.String()
}

// Render formats Table II.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — successful detection rate against adversarial attacks\n")
	fmt.Fprintf(&b, "(attack success: replay %.0f%%, navigation %.0f%%)\n",
		100*r.ReplaySuccess, 100*r.NavSuccess)
	fmt.Fprintf(&b, "%-10s %15s %19s\n", "Model", "Replay attacks", "Navigation attacks")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %14.1f%% %18.1f%%\n", row.Model, 100*row.ReplayRate, 100*row.NavRate)
	}
	return b.String()
}

// Render formats Table III.
func (r *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — statistics of k (APs heard per point)\n")
	fmt.Fprintf(&b, "%-10s %9s %7s %12s\n", "Area", "Avg k", "Min k", "90% points")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.1f %7d %9s%.0f\n", row.Area, row.MeanK, row.MinK, "k >= ", row.P90K)
	}
	return b.String()
}

// Render formats a sweep (Fig. 4, 5 or 6) as one row per sample.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep — detection accuracy vs %s\n", r.Param)
	areas := make([]string, 0, len(r.Curves))
	for a := range r.Curves {
		areas = append(areas, a)
	}
	sort.Strings(areas)
	for _, area := range areas {
		fmt.Fprintf(&b, "%-10s", area)
		pts := append([]SweepPoint(nil), r.Curves[area]...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		for _, p := range pts {
			fmt.Fprintf(&b, "  (%.2f, %.3f)", p.X, p.Accuracy)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats Table IV.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — performance of the WiFi RSSI detection scheme (r = 2.5 m)\n")
	fmt.Fprintf(&b, "%-10s %9s %10s %8s %9s\n", "Area", "Accuracy", "Precision", "Recall", "F1-score")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.4f %10.4f %8.4f %9.4f\n",
			row.Area, row.Accuracy, row.Precision, row.Recall, row.F1)
	}
	return b.String()
}
