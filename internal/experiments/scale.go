// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. IV) from the simulation substrates: Table I (classifier
// performance against naive attacks), Fig. 3 (C&W iteration curves), the
// MinD and R calibrations, Table II (detection rates against adversarial
// attacks), Table III (AP-count statistics), Fig. 4–6 (detection accuracy
// versus reference radius, reference density, and AP density), and
// Table IV (final detector performance). Each experiment returns typed rows
// and renders an aligned text table; cmd/experiments is the CLI front end
// and bench_test.go wraps each entry point in a benchmark.
package experiments

import "time"

// Scale sizes every experiment. The paper's corpora (50,000 trajectories of
// 400 points, 5,000 scans per area, GPU training) are scaled down to CPU
// budgets; Scale makes the trade-off explicit and reproducible.
type Scale struct {
	// Motion corpus (Sec. IV-A).
	MotionTrips  int // trips per mode
	MotionPoints int // fixes per trajectory (paper: 400)

	// Target-model training.
	Hidden    int // LSTM hidden width (paper: 256)
	Epochs    int // training epochs (paper: 100)
	BatchSize int
	Restarts  int // independent training restarts per LSTM, best kept

	// Attack runs.
	AttackIterations int // C&W budget (paper: 1,500)
	AttackEvalCount  int // fakes per scenario for Table II (paper: 1,000)
	MinDRepeats      int // traversals per mode for MinD (paper: 50)

	// WiFi areas (Sec. IV-B).
	AreaScale     float64 // multiplies the canonical per-area trajectory counts
	HistFraction  float64 // share of uploads kept as provider history (paper: 4/5)
	TrainUploads  int     // real/fake training uploads per area
	TestUploads   int     // real/fake test uploads per area
	StaticFixes   int     // fixes for the R calibration (paper: 500)
	SweepDetRound int     // XGBoost rounds during the Fig. 4-6 sweeps

	Interval time.Duration
	Seed     int64
}

// TestScale finishes in a couple of minutes on a laptop; shapes are
// preserved, absolute numbers are noisier than PaperScale.
func TestScale() Scale {
	return Scale{
		MotionTrips:  80,
		MotionPoints: 60,
		Hidden:       16,
		Epochs:       40,
		BatchSize:    8,
		Restarts:     2,

		AttackIterations: 500,
		AttackEvalCount:  30,
		MinDRepeats:      12,

		AreaScale:     0.12,
		HistFraction:  0.8,
		TrainUploads:  50,
		TestUploads:   35,
		StaticFixes:   500,
		SweepDetRound: 40,

		Interval: time.Second,
		Seed:     1,
	}
}

// PaperScale is the full harness scale used by cmd/experiments and
// EXPERIMENTS.md; expect tens of minutes of CPU.
func PaperScale() Scale {
	return Scale{
		MotionTrips:  250,
		MotionPoints: 80,
		Hidden:       32,
		Epochs:       50,
		BatchSize:    16,
		Restarts:     2,

		AttackIterations: 1500,
		AttackEvalCount:  100,
		MinDRepeats:      50,

		AreaScale:     0.35,
		HistFraction:  0.8,
		TrainUploads:  150,
		TestUploads:   80,
		StaticFixes:   500,
		SweepDetRound: 60,

		Interval: time.Second,
		Seed:     1,
	}
}
