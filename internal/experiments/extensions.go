package experiments

import (
	"fmt"
	"strings"

	"trajforge/internal/attack"
	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/nn"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
)

// GRUTransfer extends Table II with a detector architecture outside the
// paper's LSTM family: a GRU classifier trained on the same naive-attack
// corpus, then scored against C&W forgeries tuned on model C. It measures
// whether the attack's transferability is an artifact of shared LSTM
// structure or a property of the forged trajectories themselves.
type GRUTransferResult struct {
	// NaiveAccuracy is the GRU's accuracy on the held-out naive-attack test
	// set (its Table I row).
	NaiveAccuracy float64
	// ReplayRate and NavRate are the fractions of adversarial forgeries the
	// GRU catches (its Table II row).
	ReplayRate float64
	NavRate    float64
}

// GRUTransfer trains the extension detector and evaluates it on freshly
// forged adversarial trajectories.
func GRUTransfer(lab *MotionLab, minD *MinDResult) (*GRUTransferResult, error) {
	// Training uses the same splits as the lab's Table I detectors.
	navTrain, _ := dataset.Split(lab.Corpus.NaiveNav, 0.7)
	replayTrain, _ := dataset.Split(lab.Corpus.NaiveReplay, 0.7)
	fakeTrain := truncate(interleave(navTrain, replayTrain), len(lab.TrainReal))
	det, err := detect.TrainGRU(lab.Scale.Hidden, lab.TrainReal, fakeTrain, nn.TrainConfig{
		Epochs: lab.Scale.Epochs, BatchSize: lab.Scale.BatchSize,
		LearningRate: 0.02, LRDecay: 0.97, Seed: lab.Scale.Seed + 71,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train GRU: %w", err)
	}
	conf := detect.EvaluateMotion(det, lab.TestReal, lab.TestFakes)

	// Forge a fresh batch against C and score the GRU on the successes.
	forger := attack.NewForger(lab.C.Model, lab.C.Kind)
	n := lab.Scale.AttackEvalCount
	if n > len(lab.TrainReal) {
		n = len(lab.TrainReal)
	}
	if n > len(lab.TrainNav) {
		n = len(lab.TrainNav)
	}
	run := func(scenario attack.Scenario, refs []*trajectory.T) (float64, error) {
		cfg := attack.DefaultCWConfig(scenario)
		cfg.Iterations = lab.Scale.AttackIterations
		if scenario == attack.ScenarioReplay {
			cfg.MinDPerMeter = minD.ByMode(trajectory.ModeWalking)
			if cfg.MinDPerMeter <= 0 {
				cfg.MinDPerMeter = 1.2
			}
		}
		var fakes []*trajectory.T
		for i := 0; i < n; i++ {
			cfg.Seed = lab.Scale.Seed + int64(5000*int(scenario)+i)
			res, err := forger.Forge(refs[i], cfg, false)
			if err != nil {
				return 0, err
			}
			if res.Success {
				fakes = append(fakes, res.Forged)
			}
		}
		return detect.DetectionRate(det, fakes), nil
	}
	replayRate, err := run(attack.ScenarioReplay, lab.TrainReal)
	if err != nil {
		return nil, fmt.Errorf("experiments: GRU replay transfer: %w", err)
	}
	navRate, err := run(attack.ScenarioNavigation, lab.TrainNav)
	if err != nil {
		return nil, fmt.Errorf("experiments: GRU navigation transfer: %w", err)
	}
	return &GRUTransferResult{
		NaiveAccuracy: conf.Accuracy(),
		ReplayRate:    replayRate,
		NavRate:       navRate,
	}, nil
}

// Render formats the GRU transfer extension.
func (r *GRUTransferResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — GRU transfer target (outside the paper's LSTM family)\n")
	fmt.Fprintf(&b, "naive-attack accuracy: %.4f\n", r.NaiveAccuracy)
	fmt.Fprintf(&b, "caught adversarial: replay %.1f%%, navigation %.1f%%\n",
		100*r.ReplayRate, 100*r.NavRate)
	return b.String()
}

// DeviceRobustness measures the defense under heterogeneous phone radios:
// the walking area is rebuilt with per-trajectory device offsets drawn from
// N(0, sd²) for increasing sd, and the detector is retrained and scored at
// each level. A constant per-device dB shift moves every reported RSSI away
// from the crowd consensus the same way for honest and forged uploads, so
// a robust detector should degrade gracefully.
type DeviceRobustnessResult struct {
	// Points are (device sd in dB, detector accuracy).
	Points []SweepPoint
}

// DeviceRobustness runs the sweep at the lab's scale.
func DeviceRobustness(scale Scale, minD *MinDResult, deviceSDs []float64) (*DeviceRobustnessResult, error) {
	if len(deviceSDs) == 0 {
		deviceSDs = []float64{0, 2, 4, 8}
	}
	res := &DeviceRobustnessResult{}
	for i, sd := range deviceSDs {
		spec := dataset.WalkingArea(scale.AreaScale)
		spec.DeviceSD = sd
		spec.Seed += int64(10000 * (i + 1)) // fresh radio draw per level
		al, err := buildAreaLab(scale, spec, minD.ByMode(trajectory.ModeWalking))
		if err != nil {
			return nil, fmt.Errorf("experiments: device sweep sd=%g: %w", sd, err)
		}
		store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
		if err != nil {
			return nil, err
		}
		dr, err := al.trainAndScore(store, rssimap.DefaultFeatureConfig(), scale.SweepDetRound, scale.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: device sweep sd=%g: %w", sd, err)
		}
		res.Points = append(res.Points, SweepPoint{X: sd, Accuracy: dr.Accuracy})
	}
	return res, nil
}

// Render formats the device-heterogeneity sweep.
func (r *DeviceRobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — detector accuracy vs device heterogeneity (per-device dB offset sd)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  sd=%.1f dB -> accuracy %.3f\n", p.X, p.Accuracy)
	}
	return b.String()
}
