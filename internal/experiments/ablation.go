package experiments

import (
	"fmt"
	"strings"

	"trajforge/internal/dataset"
	"trajforge/internal/rssimap"
)

// AblationRow is one defense-feature variant and its test accuracy.
type AblationRow struct {
	Variant  string
	Accuracy float64
	Recall   float64
}

// AblationResult is the DESIGN.md §5 defense ablation: which parts of the
// Eq. 5–8 feature pipeline carry the detection power.
type AblationResult struct {
	Area string
	Rows []AblationRow
}

// DefenseAblation retrains the walking-area WiFi detector under feature
// variants: the full pipeline, θ2 disabled, Num_mac dropped, the
// trajectory-level aggregates dropped, and exact-match RPD (tolerance 0).
func DefenseAblation(lab *WiFiLab) (*AblationResult, error) {
	if len(lab.Areas) == 0 {
		return nil, fmt.Errorf("experiments: lab has no areas")
	}
	al := lab.Areas[0]
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation store: %w", err)
	}
	variants := []struct {
		name  string
		tweak func(*rssimap.FeatureConfig)
	}{
		{"full (default config)", func(*rssimap.FeatureConfig) {}},
		{"no residual features", func(c *rssimap.FeatureConfig) { c.IncludeResiduals = false }},
		{"no theta2 weight", func(c *rssimap.FeatureConfig) { c.DisableTheta2 = true }},
		{"no Num_mac feature", func(c *rssimap.FeatureConfig) { c.IncludeNum = false }},
		{"no trajectory aggregates", func(c *rssimap.FeatureConfig) { c.IncludeSummary = false }},
		{"exact-match RPD (tol 0)", func(c *rssimap.FeatureConfig) { c.Tol = 0 }},
		{"wide-match RPD (tol 3)", func(c *rssimap.FeatureConfig) { c.Tol = 3 }},
	}
	res := &AblationResult{Area: al.Area.Spec.Name}
	for _, v := range variants {
		fcfg := rssimap.DefaultFeatureConfig()
		v.tweak(&fcfg)
		dr, err := al.trainAndScore(store, fcfg, lab.Scale.SweepDetRound, lab.Scale.Seed+997)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		res.Rows = append(res.Rows, AblationRow{Variant: v.name, Accuracy: dr.Accuracy, Recall: dr.Recall})
	}
	return res, nil
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Defense feature ablation (%s area)\n", r.Area)
	fmt.Fprintf(&b, "%-28s %9s %8s\n", "Variant", "Accuracy", "Recall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %9.4f %8.4f\n", row.Variant, row.Accuracy, row.Recall)
	}
	return b.String()
}
