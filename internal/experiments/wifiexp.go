package experiments

import (
	"fmt"
	"math/rand"

	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/parallel"
	"trajforge/internal/rssimap"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// AreaLab is one collection area with its historical store and labelled
// upload sets, ready for detector training.
type AreaLab struct {
	Area *dataset.Area
	// Hist is the provider's crowdsourced history; Fresh the held-out
	// genuine uploads.
	Hist, Fresh []*wifi.Upload

	// Labelled material. Training fakes and test fakes are forged from
	// disjoint historical uploads; training reals come from the provider's
	// own stock, test reals from Fresh — the paper's protocol, with one
	// adjustment: StoreUploads excludes the training reals, because a
	// trajectory whose own scans sit in the store at zero distance gets a
	// self-inflated Φ that no freshly verified upload can have (the bias is
	// negligible at the paper's density but dominates at sparse scales).
	TrainReal, TrainFake []*wifi.Upload
	TestReal, TestFake   []*wifi.Upload
	// StoreUploads feed the provider's crowdsourced store.
	StoreUploads []*wifi.Upload

	// MinD used to calibrate the forgeries.
	MinD float64
}

// WiFiLab holds all three areas.
type WiFiLab struct {
	Scale Scale
	Areas []*AreaLab
}

// NewWiFiLab builds the three canonical areas concurrently.
func NewWiFiLab(scale Scale, minD *MinDResult) (*WiFiLab, error) {
	specs := []dataset.AreaSpec{
		dataset.WalkingArea(scale.AreaScale),
		dataset.CyclingArea(scale.AreaScale),
		dataset.DrivingArea(scale.AreaScale),
	}
	areas, err := parallel.MapErr(len(specs), func(i int) (*AreaLab, error) {
		spec := specs[i]
		al, err := buildAreaLab(scale, spec, minD.ByMode(spec.Mode))
		if err != nil {
			return nil, fmt.Errorf("experiments: area %q: %w", spec.Name, err)
		}
		return al, nil
	})
	if err != nil {
		return nil, err
	}
	return &WiFiLab{Scale: scale, Areas: areas}, nil
}

func buildAreaLab(scale Scale, spec dataset.AreaSpec, minD float64) (*AreaLab, error) {
	if minD <= 0 {
		minD = 1.2
	}
	area, err := dataset.BuildArea(spec)
	if err != nil {
		return nil, err
	}
	nHist := int(scale.HistFraction * float64(len(area.Uploads)))
	hist, fresh, err := area.SplitHistorical(nHist)
	if err != nil {
		return nil, err
	}
	al := &AreaLab{Area: area, Hist: hist, Fresh: fresh, MinD: minD}

	nTrain := scale.TrainUploads
	nTest := scale.TestUploads
	if nTest > len(fresh) {
		nTest = len(fresh)
	}
	// Forgeries come from historical uploads: train fakes from the front,
	// test fakes from the middle, training reals from the back.
	if 2*nTrain+nTest > len(hist) {
		return nil, fmt.Errorf("history too small: need %d uploads, have %d", 2*nTrain+nTest, len(hist))
	}
	rng := rand.New(rand.NewSource(spec.Seed + 77))
	for i := 0; i < nTrain; i++ {
		f, err := dataset.ForgeUpload(rng, hist[i], minD)
		if err != nil {
			return nil, err
		}
		al.TrainFake = append(al.TrainFake, f)
	}
	for i := nTrain; i < nTrain+nTest; i++ {
		f, err := dataset.ForgeUpload(rng, hist[i], minD)
		if err != nil {
			return nil, err
		}
		al.TestFake = append(al.TestFake, f)
	}
	al.TrainReal = hist[len(hist)-nTrain:]
	al.TestReal = fresh[:nTest]
	al.StoreUploads = hist[:len(hist)-nTrain]
	return al, nil
}

// trainAndScore fits a WiFi detector on the lab's training sets against the
// given store and feature config, then scores the test sets.
func (al *AreaLab) trainAndScore(store *rssimap.Store, fcfg rssimap.FeatureConfig,
	rounds int, seed int64) (detResult, error) {
	det, err := detect.TrainWiFiDetector(store, al.TrainReal, al.TrainFake, fcfg, xgb.Config{
		Rounds: rounds, MaxDepth: 4, LearningRate: 0.2, Seed: seed,
	})
	if err != nil {
		return detResult{}, err
	}
	conf, err := det.EvaluateWiFi(al.TestReal, al.TestFake)
	if err != nil {
		return detResult{}, err
	}
	return detResult{
		Accuracy:  conf.Accuracy(),
		Precision: conf.Precision(),
		Recall:    conf.Recall(),
		F1:        conf.F1(),
	}, nil
}

type detResult struct {
	Accuracy, Precision, Recall, F1 float64
}

// Table3Row is one column of Table III.
type Table3Row struct {
	Area  string
	MeanK float64
	MinK  int
	// P90K: 90% of points hear at least this many APs.
	P90K float64
}

// Table3Result is the AP statistics table.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 reports per-area AP-count statistics.
func Table3(lab *WiFiLab) *Table3Result {
	res := &Table3Result{}
	for _, al := range lab.Areas {
		ks := dataset.KStats(al.Area.Uploads)
		res.Rows = append(res.Rows, Table3Row{
			Area:  al.Area.Spec.Name,
			MeanK: ks.Mean,
			MinK:  ks.Min,
			P90K:  ks.P10,
		})
	}
	return res
}

// SweepPoint is one sample of an accuracy-vs-parameter curve.
type SweepPoint struct {
	X        float64
	Accuracy float64
}

// SweepResult is one curve per area.
type SweepResult struct {
	// Param names the swept parameter ("r (m)", "density (/m^2)", "avg k").
	Param  string
	Curves map[string][]SweepPoint // area name -> curve
}

// sweepTask is one (area, sweep point) cell of a Fig. 4-6 grid. The
// expensive train-and-score work of every cell fans out across the worker
// pool at once — with three areas and several sweep points each, per-area
// goroutines alone leave most cores idle on the tail.
type sweepTask struct {
	ai  int
	run func() (SweepPoint, error)
}

// runSweep executes the tasks in parallel and assembles per-area curves in
// task order (deterministic regardless of scheduling).
func runSweep(lab *WiFiLab, param, name string, tasks []sweepTask) (*SweepResult, error) {
	points, err := parallel.MapErr(len(tasks), func(ti int) (SweepPoint, error) {
		return tasks[ti].run()
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	res := &SweepResult{Param: param, Curves: map[string][]SweepPoint{}}
	for ti, p := range points {
		area := lab.Areas[tasks[ti].ai].Area.Spec.Name
		res.Curves[area] = append(res.Curves[area], p)
	}
	return res, nil
}

// Fig4 sweeps the reference radius r (Fig. 4 of the paper: accuracy rises
// to a peak near r = 2.5 m, then flattens or dips).
func Fig4(lab *WiFiLab, radii []float64) (*SweepResult, error) {
	if len(radii) == 0 {
		radii = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	}
	// One store per area, shared read-only by that area's sweep cells.
	stores, err := parallel.MapErr(len(lab.Areas), func(ai int) (*rssimap.Store, error) {
		return rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(lab.Areas[ai].StoreUploads))
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig4: %w", err)
	}
	var tasks []sweepTask
	for ai := range lab.Areas {
		ai, al := ai, lab.Areas[ai]
		for _, r := range radii {
			r := r
			tasks = append(tasks, sweepTask{ai: ai, run: func() (SweepPoint, error) {
				fcfg := rssimap.DefaultFeatureConfig()
				fcfg.R = r
				dr, err := al.trainAndScore(stores[ai], fcfg, lab.Scale.SweepDetRound, lab.Scale.Seed+int64(ai))
				if err != nil {
					return SweepPoint{}, err
				}
				return SweepPoint{X: r, Accuracy: dr.Accuracy}, nil
			}})
		}
	}
	return runSweep(lab, "r (m)", "Fig4", tasks)
}

// Fig5 sweeps the reference-point density by randomly deleting historical
// records (Fig. 5: accuracy exceeds 90% once density >= ~0.2/m²).
func Fig5(lab *WiFiLab, keepFractions []float64) (*SweepResult, error) {
	if len(keepFractions) == 0 {
		keepFractions = []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	}
	// The random subsets are drawn serially — each area's rng is consumed
	// in keep-fraction order, exactly as the serial sweep did — so results
	// do not depend on scheduling; only the expensive store build and
	// train-and-score fan out.
	var tasks []sweepTask
	for ai := range lab.Areas {
		ai, al := ai, lab.Areas[ai]
		records := dataset.Records(al.StoreUploads)
		rng := rand.New(rand.NewSource(lab.Scale.Seed + int64(900+ai)))
		for _, keep := range keepFractions {
			subset := sampleRecords(rng, records, keep)
			tasks = append(tasks, sweepTask{ai: ai, run: func() (SweepPoint, error) {
				store, err := rssimap.NewStore(rssimap.DefaultConfig(), subset)
				if err != nil {
					return SweepPoint{}, err
				}
				density := meanReferenceDensity(store, al.TestReal, rssimap.DefaultFeatureConfig().R)
				dr, err := al.trainAndScore(store, rssimap.DefaultFeatureConfig(),
					lab.Scale.SweepDetRound, lab.Scale.Seed+int64(ai))
				if err != nil {
					return SweepPoint{}, err
				}
				return SweepPoint{X: density, Accuracy: dr.Accuracy}, nil
			}})
		}
	}
	return runSweep(lab, "density (/m^2)", "Fig5", tasks)
}

func sampleRecords(rng *rand.Rand, records []rssimap.Record, keep float64) []rssimap.Record {
	if keep >= 1 {
		return records
	}
	out := make([]rssimap.Record, 0, int(keep*float64(len(records)))+1)
	for _, r := range records {
		if rng.Float64() < keep {
			out = append(out, r)
		}
	}
	return out
}

// meanReferenceDensity measures the realised reference-point density around
// the test uploads' points (the paper's "average number of reference points
// per square metre in the reference area of each trajectory point").
func meanReferenceDensity(store *rssimap.Store, uploads []*wifi.Upload, r float64) float64 {
	var sum float64
	var n int
	area := 3.14159265 * r * r
	for _, u := range uploads {
		for _, pt := range u.Traj.Points {
			sum += float64(len(store.ReferencePoints(pt.Pos, r))) / area
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig6 sweeps the AP density by deleting APs globally (Fig. 6: accuracy
// stays above 70% even at k = 1 and exceeds 90% for average k >= ~7.5;
// driving saturates lowest).
func Fig6(lab *WiFiLab, keepFractions []float64) (*SweepResult, error) {
	if len(keepFractions) == 0 {
		keepFractions = []float64{0.04, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	}
	// MAC subsets are drawn serially (per-area rng in keep-fraction order,
	// as the serial sweep did); the deterministic filtering, store build,
	// and train-and-score fan out per cell.
	var tasks []sweepTask
	for ai := range lab.Areas {
		ai, al := ai, lab.Areas[ai]
		rng := rand.New(rand.NewSource(lab.Scale.Seed + int64(1700+ai)))
		for _, keep := range keepFractions {
			keepMAC := macSubset(rng, al.Hist, keep)
			tasks = append(tasks, sweepTask{ai: ai, run: func() (SweepPoint, error) {
				storeUploads := filterUploads(al.StoreUploads, keepMAC)
				store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(storeUploads))
				if err != nil {
					return SweepPoint{}, err
				}
				filtered := &AreaLab{
					Area:      al.Area,
					TrainReal: filterUploads(al.TrainReal, keepMAC),
					TrainFake: filterUploads(al.TrainFake, keepMAC),
					TestReal:  filterUploads(al.TestReal, keepMAC),
					TestFake:  filterUploads(al.TestFake, keepMAC),
				}
				avgK := averageK(filtered.TestReal)
				dr, err := filtered.trainAndScore(store, rssimap.DefaultFeatureConfig(),
					lab.Scale.SweepDetRound, lab.Scale.Seed+int64(ai))
				if err != nil {
					return SweepPoint{}, err
				}
				return SweepPoint{X: avgK, Accuracy: dr.Accuracy}, nil
			}})
		}
	}
	return runSweep(lab, "avg k", "Fig6", tasks)
}

// macSubset picks the MAC set to keep so that roughly the given fraction of
// observations survives.
func macSubset(rng *rand.Rand, uploads []*wifi.Upload, keep float64) map[string]bool {
	macs := map[string]bool{}
	for _, u := range uploads {
		for _, s := range u.Scans {
			for _, o := range s {
				macs[o.MAC] = true
			}
		}
	}
	kept := map[string]bool{}
	for mac := range macs {
		if keep >= 1 || rng.Float64() < keep {
			kept[mac] = true
		}
	}
	return kept
}

// filterUploads removes observations of deleted APs (deep copies; inputs
// untouched).
func filterUploads(uploads []*wifi.Upload, keepMAC map[string]bool) []*wifi.Upload {
	out := make([]*wifi.Upload, len(uploads))
	for i, u := range uploads {
		scans := make([]wifi.Scan, len(u.Scans))
		for j, s := range u.Scans {
			var ns wifi.Scan
			for _, o := range s {
				if keepMAC[o.MAC] {
					ns = append(ns, o)
				}
			}
			scans[j] = ns
		}
		out[i] = &wifi.Upload{Traj: u.Traj, Scans: scans}
	}
	return out
}

func averageK(uploads []*wifi.Upload) float64 {
	var sum, n int
	for _, u := range uploads {
		for _, s := range u.Scans {
			sum += len(s)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Table4Row is one line of Table IV.
type Table4Row struct {
	Area      string
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Table4Result is the final detector performance table.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 trains the full detector (r = 2.5 m) per area and reports the
// held-out metrics.
func Table4(lab *WiFiLab) (*Table4Result, error) {
	rows, err := parallel.MapErr(len(lab.Areas), func(ai int) (Table4Row, error) {
		al := lab.Areas[ai]
		store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(al.StoreUploads))
		if err != nil {
			return Table4Row{}, err
		}
		dr, err := al.trainAndScore(store, rssimap.DefaultFeatureConfig(), 60, lab.Scale.Seed+int64(ai))
		if err != nil {
			return Table4Row{}, err
		}
		return Table4Row{
			Area:      al.Area.Spec.Name,
			Accuracy:  dr.Accuracy,
			Precision: dr.Precision,
			Recall:    dr.Recall,
			F1:        dr.F1,
		}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: Table4: %w", err)
	}
	return &Table4Result{Rows: rows}, nil
}
