package experiments

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"trajforge/internal/trajectory"
)

// TestMain skips the package under -short: every test here replays a full
// figure/table pipeline (minutes under the race detector), which the quick
// CI race job doesn't need — the shapes are covered by the regular job.
func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		fmt.Println("skipping experiments pipelines in -short mode")
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// tinyScale keeps the whole experiment pipeline under a few seconds.
func tinyScale() Scale {
	s := TestScale()
	s.AttackIterations = 400
	s.AttackEvalCount = 6
	s.MinDRepeats = 8
	s.AreaScale = 0.2 // 300 uploads per area
	s.TrainUploads = 80
	s.TestUploads = 30
	s.SweepDetRound = 25
	return s
}

// Labs are expensive; build them once for the whole package test run.
var (
	_mlab *MotionLab
	_wlab *WiFiLab
	_mind *MinDResult
)

func motionLab(t *testing.T) *MotionLab {
	t.Helper()
	if _mlab == nil {
		lab, err := NewMotionLab(tinyScale())
		if err != nil {
			t.Fatal(err)
		}
		_mlab = lab
	}
	return _mlab
}

func minD(t *testing.T) *MinDResult {
	t.Helper()
	if _mind == nil {
		res, err := MinD(tinyScale())
		if err != nil {
			t.Fatal(err)
		}
		_mind = res
	}
	return _mind
}

func wifiLab(t *testing.T) *WiFiLab {
	t.Helper()
	if _wlab == nil {
		lab, err := NewWiFiLab(tinyScale(), minD(t))
		if err != nil {
			t.Fatal(err)
		}
		_wlab = lab
	}
	return _wlab
}

func TestTable1ShapesHold(t *testing.T) {
	lab := motionLab(t)
	res := Table1(lab)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	names := []string{"C", "XGBoost", "LSTM-1", "LSTM-2"}
	for i, row := range res.Rows {
		if row.Model != names[i] {
			t.Fatalf("row %d = %s, want %s", i, row.Model, names[i])
		}
		// Paper: all four are >= 0.95; at tiny scale demand >= 0.7.
		if row.Accuracy < 0.7 {
			t.Fatalf("%s accuracy %v too low", row.Model, row.Accuracy)
		}
	}
	if !strings.Contains(res.Render(), "Table I") {
		t.Fatal("render missing title")
	}
}

func TestMinDShapesHold(t *testing.T) {
	res := minD(t)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper: 1.2-1.5 DTW/m; allow 0.2-4 at simulation scale.
		if row.PerMeter < 0.2 || row.PerMeter > 4 {
			t.Fatalf("%v MinD = %v implausible", row.Mode, row.PerMeter)
		}
	}
	if res.ByMode(trajectory.ModeWalking) <= 0 {
		t.Fatal("ByMode lookup failed")
	}
	if res.ByMode(trajectory.Mode(99)) != 0 {
		t.Fatal("unknown mode must be 0")
	}
	if !strings.Contains(res.Render(), "MinD") {
		t.Fatal("render missing title")
	}
}

func TestRCalShapesHold(t *testing.T) {
	res, err := RCal(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: sigma ~0.5 m, R ~3 m.
	if res.Sigma < 0.2 || res.Sigma > 1.0 {
		t.Fatalf("sigma = %v", res.Sigma)
	}
	if math.Abs(res.R-6*res.Sigma) > 1e-9 {
		t.Fatal("R != 6 sigma")
	}
	if !strings.Contains(res.Render(), "R calibration") {
		t.Fatal("render missing title")
	}
}

func TestFig3ShapesHold(t *testing.T) {
	lab := motionLab(t)
	res, err := Fig3(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	// Time must grow monotonically with iterations.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Seconds < res.Points[i-1].Seconds {
			t.Fatal("time not monotone")
		}
		if res.Points[i].BestDTW > res.Points[i-1].BestDTW+1e-9 {
			t.Fatal("best DTW must not increase with budget")
		}
	}
	if !strings.Contains(res.Render(), "Fig. 3") {
		t.Fatal("render missing title")
	}
}

func TestTable2ShapesHold(t *testing.T) {
	lab := motionLab(t)
	res, err := Table2(lab, minD(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.NavSuccess < 0.5 || res.ReplaySuccess < 0.5 {
		t.Fatalf("attack success too low: replay %v, nav %v", res.ReplaySuccess, res.NavSuccess)
	}
	// The attack's defining property: the target model C catches (almost)
	// nothing.
	if res.Rows[0].Model != "C" {
		t.Fatal("first row must be C")
	}
	if res.Rows[0].ReplayRate > 0.2 || res.Rows[0].NavRate > 0.2 {
		t.Fatalf("target model catches too many adversarial fakes: %+v", res.Rows[0])
	}
	// Transfer models must catch far fewer adversarial fakes than the
	// naive fakes of Table I (paper: <8% vs >95%).
	for _, row := range res.Rows {
		if row.ReplayRate > 0.6 || row.NavRate > 0.6 {
			t.Fatalf("%s catches %v/%v of adversarial fakes; transferability shape broken",
				row.Model, row.ReplayRate, row.NavRate)
		}
	}
	if !strings.Contains(res.Render(), "Table II") {
		t.Fatal("render missing title")
	}
}

func TestTable3ShapesHold(t *testing.T) {
	lab := wifiLab(t)
	res := Table3(lab)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table3Row{}
	for _, row := range res.Rows {
		byName[row.Area] = row
		if row.MeanK <= 0 {
			t.Fatalf("%s mean k = %v", row.Area, row.MeanK)
		}
	}
	// Paper shape: driving hears far fewer APs than walking/cycling.
	if byName["driving"].MeanK >= byName["walking"].MeanK {
		t.Fatalf("driving k (%v) must be below walking k (%v)",
			byName["driving"].MeanK, byName["walking"].MeanK)
	}
	if !strings.Contains(res.Render(), "Table III") {
		t.Fatal("render missing title")
	}
}

func TestTable4ShapesHold(t *testing.T) {
	lab := wifiLab(t)
	res, err := Table4(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper: >= 0.94 at full density; the sparse test scale (~0.1-0.2
		// reference points per m^2) sits on the knee of Fig. 5, so demand a
		// clear-majority separation only.
		if row.Accuracy < 0.65 {
			t.Fatalf("%s accuracy %v too low", row.Area, row.Accuracy)
		}
	}
	if !strings.Contains(res.Render(), "Table IV") {
		t.Fatal("render missing title")
	}
}

func TestFig4ShapesHold(t *testing.T) {
	lab := wifiLab(t)
	res, err := Fig4(lab, []float64{1.0, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for area, pts := range res.Curves {
		if len(pts) != 2 {
			t.Fatalf("%s has %d points", area, len(pts))
		}
	}
	if !strings.Contains(res.Render(), "r (m)") {
		t.Fatal("render missing parameter")
	}
}

func TestFig5ShapesHold(t *testing.T) {
	lab := wifiLab(t)
	res, err := Fig5(lab, []float64{0.15, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for area, pts := range res.Curves {
		if len(pts) != 2 {
			t.Fatalf("%s has %d points", area, len(pts))
		}
		// Density must increase with the keep fraction.
		if pts[1].X <= pts[0].X {
			t.Fatalf("%s: densities not increasing: %v", area, pts)
		}
	}
}

func TestFig6ShapesHold(t *testing.T) {
	lab := wifiLab(t)
	res, err := Fig6(lab, []float64{0.2, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for area, pts := range res.Curves {
		if len(pts) != 2 {
			t.Fatalf("%s has %d points", area, len(pts))
		}
		if pts[1].X <= pts[0].X {
			t.Fatalf("%s: avg k not increasing: %v", area, pts)
		}
	}
}

func TestDefenseAblationShapesHold(t *testing.T) {
	lab := wifiLab(t)
	res, err := DefenseAblation(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Variant != "full (default config)" {
		t.Fatal("first row must be the full config")
	}
	for _, row := range res.Rows {
		if row.Accuracy < 0.4 || row.Accuracy > 1 {
			t.Fatalf("%s accuracy %v implausible", row.Variant, row.Accuracy)
		}
	}
	if !strings.Contains(res.Render(), "ablation") {
		t.Fatal("render missing title")
	}
}

// TestMotionLabDeterminism double-checks that rebuilding the lab from the
// same scale reproduces identical detectors (the whole harness is a pure
// function of its seed).
func TestMotionCorpusStratified(t *testing.T) {
	lab := motionLab(t)
	// The joint shuffle must leave every mode present in both the train and
	// the test halves of the corpus.
	counts := func(list []*trajectory.T) map[trajectory.Mode]int {
		m := map[trajectory.Mode]int{}
		for _, tr := range list {
			m[tr.Mode]++
		}
		return m
	}
	train := counts(lab.TrainReal)
	test := counts(lab.TestReal)
	for _, mode := range trajectory.Modes() {
		if train[mode] == 0 || test[mode] == 0 {
			t.Fatalf("mode %v missing from a split: train=%v test=%v", mode, train, test)
		}
	}
}

func TestGRUTransferExtension(t *testing.T) {
	lab := motionLab(t)
	res, err := GRUTransfer(lab, minD(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveAccuracy < 0.6 {
		t.Fatalf("GRU naive accuracy %v too low", res.NaiveAccuracy)
	}
	// The attack must transfer at least partially to the alien architecture:
	// the GRU must catch far fewer adversarial fakes than naive ones.
	if res.ReplayRate > 0.7 || res.NavRate > 0.9 {
		t.Fatalf("GRU catches too many adversarial fakes (replay %v, nav %v)", res.ReplayRate, res.NavRate)
	}
	if !strings.Contains(res.Render(), "GRU") {
		t.Fatal("render missing title")
	}
}

func TestDeviceRobustnessExtension(t *testing.T) {
	res, err := DeviceRobustness(tinyScale(), minD(t), []float64{0, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Accuracy < 0.5 {
			t.Fatalf("accuracy %v at sd=%v collapsed below chance", p.Accuracy, p.X)
		}
	}
	if !strings.Contains(res.Render(), "device heterogeneity") {
		t.Fatal("render missing title")
	}
}
