package experiments

// Poisoning experiment: the Sybil crowdsourcing attack of
// internal/attack/sybil.go against the provider, undefended (direct store
// ingestion) versus defended (the internal/trust pipeline: contributor
// ledger, trust-weighted θ2, quarantine staging, drift alarm). Both runs
// share the seed, the city, the target, and the campaign schedule, so the
// only variable is the defence. The headline number is the cost ratio:
// how many accepted poison uploads the attacker pays before a forged
// probe passes, defended over undefended.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/loadgen"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/trajectory"
	"trajforge/internal/trust"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// PoisonOptions configures the poisoning experiment.
type PoisonOptions struct {
	// Seed fixes the city, the campaign, and every upload byte. Default 1.
	Seed int64
	// Agents / Hist size the city and its training corpus. Defaults 40, 60.
	Agents, Hist int
	// Honest is how many honest contributors upload each round alongside
	// the sybils — the background traffic trust scores are earned against.
	// Default 4.
	Honest int
	// RoundGap is the simulated time between campaign rounds; the trust
	// ledger ages contributors on this clock. Default 30 min.
	RoundGap time.Duration
	// Campaign is the attack schedule; Target/Radius are filled from the
	// city if zero.
	Campaign attack.SybilOptions
	// Trust is the defended variant's pipeline config; zeroed fields take
	// trust.DefaultConfig values.
	Trust trust.Config
}

func (o *PoisonOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Agents <= 0 {
		o.Agents = 40
	}
	if o.Hist <= 0 {
		o.Hist = 60
	}
	if o.Honest <= 0 {
		o.Honest = 4
	}
	if o.RoundGap <= 0 {
		o.RoundGap = 30 * time.Minute
	}
	// Campaign pacing: a dozen colluders per round, and a round budget
	// deep enough that a defence which merely delays the breach still has
	// to hold out several times longer than the undefended provider.
	if o.Campaign.Sybils == 0 {
		o.Campaign.Sybils = 12
	}
	if o.Campaign.MaxRounds == 0 {
		o.Campaign.MaxRounds = 40
	}
}

// PoisonVariant is one run (undefended or defended) of the campaign.
type PoisonVariant struct {
	Name string `json:"name"`
	attack.SybilReport
	// HonestSent / HonestAccepted track the background traffic — the
	// defence must not price honest contributors out.
	HonestSent     int `json:"honest_sent"`
	HonestAccepted int `json:"honest_accepted"`
	// DriftAlarmed reports whether the tile drift alarm fired during the
	// campaign (always false undefended: there is no detector).
	DriftAlarmed bool `json:"drift_alarmed"`
	// QuarantinePending is the staging depth at campaign end.
	QuarantinePending int `json:"quarantine_pending"`
	// HealthReason is /v1/health's degraded reason at campaign end.
	HealthReason string `json:"health_reason,omitempty"`
}

// PoisonResult is the BENCH_poison.json schema.
type PoisonResult struct {
	Seed       int64         `json:"seed"`
	Sybils     int           `json:"sybils"`
	MaxRounds  int           `json:"max_rounds"`
	DeltaDB    int           `json:"delta_db"`
	Undefended PoisonVariant `json:"undefended"`
	Defended   PoisonVariant `json:"defended"`
	// CostRatio is defended accepted-poison spend over undefended — how
	// much the trust pipeline raised the attacker's price. When the
	// defended campaign never breaches, the spend is the full-campaign
	// cost and the ratio is a lower bound.
	CostRatio float64 `json:"cost_ratio"`
}

// Render formats the result as the aligned text table the experiments
// command prints.
func (r *PoisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sybil poisoning: %d sybils, +%d dB story, %d-round cap (seed %d)\n",
		r.Sybils, r.DeltaDB, r.MaxRounds, r.Seed)
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s %8s %7s %s\n",
		"variant", "breach", "poison", "accept", "p1", "pN", "drift", "honest")
	row := func(v *PoisonVariant) {
		breach := "never"
		if v.Breached {
			breach = fmt.Sprintf("r%d", v.BreachRound)
		}
		drift := "-"
		if v.DriftAlarmed {
			drift = "ALARM"
		}
		fmt.Fprintf(&b, "%-11s %8s %8d %8d %8.3f %8.3f %7s %d/%d\n",
			v.Name, breach, v.PoisonSent, v.PoisonAccepted,
			v.ProbePFakeFirst, v.ProbePFakeLast, drift, v.HonestAccepted, v.HonestSent)
	}
	row(&r.Undefended)
	row(&r.Defended)
	fmt.Fprintf(&b, "attack cost ratio (defended/undefended accepted poison): %.1fx\n", r.CostRatio)
	return b.String()
}

// WriteJSON writes the BENCH_poison.json artifact.
func (r *PoisonResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Poison runs the campaign against both variants.
func Poison(opts PoisonOptions) (*PoisonResult, error) {
	opts.setDefaults()
	und, err := runPoisonVariant(opts, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: undefended poison run: %w", err)
	}
	def, err := runPoisonVariant(opts, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: defended poison run: %w", err)
	}
	camp := opts.Campaign.Defaulted()
	res := &PoisonResult{
		Seed: opts.Seed, DeltaDB: camp.DeltaDB,
		Sybils: camp.Sybils, MaxRounds: camp.MaxRounds,
		Undefended: und.PoisonVariant, Defended: def.PoisonVariant,
	}
	if und.PoisonAccepted > 0 {
		res.CostRatio = float64(def.PoisonAccepted) / float64(und.PoisonAccepted)
	}
	return res, nil
}

// poisonRun is a variant's outcome plus loop bookkeeping.
type poisonRun struct {
	PoisonVariant
	roundsRun int
}

// retime shifts every fix of the upload by d, so successive campaign
// rounds advance the trust ledger's event clock the way real crowdsourced
// traffic would.
func retime(u *wifi.Upload, d time.Duration) *wifi.Upload {
	pts := make([]trajectory.Point, len(u.Traj.Points))
	for i, p := range u.Traj.Points {
		pts[i] = trajectory.Point{Pos: p.Pos, Time: p.Time.Add(d)}
	}
	return &wifi.Upload{
		Traj:        &trajectory.T{ID: u.Traj.ID, Mode: u.Traj.Mode, Points: pts},
		Scans:       u.Scans,
		Contributor: u.Contributor,
	}
}

func runPoisonVariant(opts PoisonOptions, defended bool) (*poisonRun, error) {
	city, err := loadgen.BuildCity(loadgen.CityOptions{
		Seed: opts.Seed, Agents: opts.Agents, Hist: opts.Hist,
	})
	if err != nil {
		return nil, err
	}

	// Train the detector from the city's historical corpus, exactly as the
	// serving providers do: first 3/4 seeds the reference store, the rest
	// plus forgeries of stored trips trains the model. Alongside the usual
	// displaced-route forgeries, the training mix includes radio-shift
	// forgeries — honest routes whose scans (all of them, or a contiguous
	// stretch) report a fabricated dB story — the exact class the Sybil
	// campaign's breach probe belongs to. A provider that never trained on
	// radio lies cannot price them, defended or not.
	nStore := len(city.Hist) * 3 / 4
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), recordsOf(city.Hist[:nStore]))
	if err != nil {
		return nil, err
	}
	frng := rand.New(rand.NewSource(opts.Seed + 13))
	var fakes []*wifi.Upload
	for _, u := range city.Hist[:nStore/2] {
		f, err := dataset.ForgeUpload(frng, u, 1.2)
		if err != nil {
			return nil, err
		}
		fakes = append(fakes, f)
	}
	for i, u := range city.Hist[:nStore/2] {
		delta := 4 + (i%4)*4 // 4..16 dB stories
		if i%2 == 1 {
			delta = -delta
		}
		fakes = append(fakes, shiftScans(u, delta, i%3 == 0))
	}
	// Genuine examples: the held-out trips, plus noisy re-walks of trips
	// the store already holds. Without the re-walks the model never sees a
	// genuine trip over a densely-mapped corridor (tiny residual, many
	// references) and misreads exactly that signature as forged; with them
	// the boundary is monotone in the residual, which is what Eq. 8 is
	// after.
	grng := rand.New(rand.NewSource(opts.Seed + 29))
	genuine := append([]*wifi.Upload{}, city.Hist[nStore:]...)
	for _, u := range city.Hist[:nStore/2] {
		genuine = append(genuine, jitterUpload(grng, u, 1.5, 1))
	}
	det, err := detect.TrainWiFiDetector(store, genuine, fakes,
		rssimap.DefaultFeatureConfig(), xgb.DefaultConfig())
	if err != nil {
		return nil, err
	}

	var trustCfg *trust.Config
	if defended {
		tc := opts.Trust
		if tc.TileSize == 0 && tc.WeightRefresh == 0 &&
			tc.Quarantine.K == 0 && tc.Drift.Window == 0 {
			// Campaign-scale calibration of the production defaults: the
			// experiment's whole campaign is a few dozen uploads per tile,
			// so the weight push cadence and the drift window shrink to
			// match (the city-scale defaults would only react after the
			// campaign ended).
			tc = trust.DefaultConfig()
			tc.WeightRefresh = 2
			tc.Drift.Window = 16
			tc.Drift.MinSamples = 8
			tc.Drift.BinDB = 2
		}
		trustCfg = &tc
	}
	svc, err := server.New(server.Config{
		Projection:     city.Projection,
		Rules:          detect.NewRuleChecker(),
		WiFi:           det,
		IngestAccepted: true,
		Trust:          trustCfg,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := server.NewClient(ts.URL, city.Projection)

	// Target: a mid-route fix of the oldest stored trip — a spot with real
	// honest reference coverage, where a fabricated radio story actually
	// has an incumbent distribution to displace.
	camp := opts.Campaign.Defaulted()
	if camp.Target == (geo.Point{}) {
		pts := city.Hist[0].Traj.Positions()
		camp.Target = pts[len(pts)/2]
	}

	// Candidate carrier trips are honest trips by the city's own first few
	// agents — the ones whose routes cover the target — retried until one
	// passes close enough to carry poison. The sybil identities ride real
	// mobility, so their uploads clear the motion and route stages on merit.
	rng := rand.New(rand.NewSource(opts.Seed + 101))
	targetTrip := func() (*wifi.Upload, error) {
		for tries := 0; tries < 64; tries++ {
			a := city.Agents[tries%4]
			u, err := city.HonestUpload(rng, a)
			if err != nil {
				return nil, err
			}
			if camp.TouchesTarget(u, 3) {
				return u, nil
			}
		}
		return nil, fmt.Errorf("no carrier trip touches the target")
	}

	run := &poisonRun{}
	run.Name = "undefended"
	if defended {
		run.Name = "defended"
	}

	submit := func(name string, u *wifi.Upload) (bool, error) {
		u.Contributor = name
		v, err := client.Upload(u)
		if err != nil {
			return false, err
		}
		return v.Accepted, nil
	}
	// The breach probe is one fixed forgery, vetted against the clean
	// store: its honest carrier passes verification and its forged form
	// fails. Re-scoring the same forgery every round isolates the one
	// moving part — the reference store — from carrier-trip luck.
	probeTrip, err := func() (*wifi.Upload, error) {
		for tries := 0; tries < 64; tries++ {
			u, err := targetTrip()
			if err != nil {
				return nil, err
			}
			ph, err := det.ProbFake(u)
			if err != nil {
				return nil, err
			}
			pf, err := det.ProbFake(camp.ProbeUpload(u))
			if err != nil {
				return nil, err
			}
			if ph < 0.5 && pf >= 0.5 {
				return u, nil
			}
		}
		return nil, fmt.Errorf("no vetted probe trip (honest passes, forged fails)")
	}()
	if err != nil {
		return nil, err
	}
	// Probes go through Verify directly: scoring without ingestion, so the
	// probe itself cannot poison (or be priced into) the store.
	probe := func(round int) (float64, bool, error) {
		forged := camp.ProbeUpload(retime(probeTrip, time.Duration(round)*opts.RoundGap))
		v, err := svc.Verify(context.Background(), forged)
		if err != nil {
			return 0, false, err
		}
		pFake := 1.0
		if v.WiFiProbFake != nil {
			pFake = *v.WiFiProbFake
		}
		return pFake, v.Accepted, nil
	}

	// Interleave honest background traffic with the campaign: stable user
	// identities upload real trips drawn from across the whole city (honest
	// traffic is city-wide; only the attack concentrates on one spot),
	// earning the trust the sybils have to compete with.
	honestRound := func(round int) error {
		for h := 0; h < opts.Honest; h++ {
			a := city.Agents[(5+h+round*opts.Honest)%len(city.Agents)]
			u, err := city.HonestUpload(rng, a)
			if err != nil {
				return err
			}
			u.Traj.ID = fmt.Sprintf("honest-%d-r%d", h, round)
			ok, err := submit(fmt.Sprintf("user-%03d", h), retime(u, time.Duration(round)*opts.RoundGap))
			if err != nil {
				return err
			}
			run.HonestSent++
			if ok {
				run.HonestAccepted++
			}
		}
		return nil
	}

	// The sybils all commute along the planned forgery's own corridor —
	// the attacker poisons exactly where the forgery will later claim to
	// be, so every accepted upload drops reference points onto the probe's
	// fixes. Each trip is re-timed (advancing the event clock), given a
	// fresh trajectory ID, and jittered the way a dozen real handsets on
	// the same street would be: a couple of metres of GPS scatter and
	// ±1 dB of radio noise per device.
	jrng := rand.New(rand.NewSource(opts.Seed + 707))
	rep, err := camp.SybilCampaign(
		func(sybil, round int) (*wifi.Upload, error) {
			if sybil == 0 {
				if err := honestRound(round); err != nil {
					return nil, err
				}
				run.roundsRun = round + 1
			}
			u := jitterUpload(jrng, retime(probeTrip, time.Duration(round)*opts.RoundGap), 1.5, 1)
			u.Traj.ID = fmt.Sprintf("syb%d-r%d", sybil, round)
			return u, nil
		},
		submit,
		probe,
	)
	if err != nil {
		return nil, err
	}
	run.SybilReport = *rep

	st := svc.Stats()
	if st.Trust != nil {
		run.DriftAlarmed = len(st.Trust.DriftAlarmed) > 0
		run.QuarantinePending = st.Trust.Pending
	}
	if h := svc.Health(); h.Degraded {
		run.HealthReason = h.Reason
	}
	return run, nil
}

// recordsOf flattens uploads into store records (positions + scans).
func recordsOf(uploads []*wifi.Upload) []rssimap.Record {
	return rssimap.UploadRecords(uploads)
}

// jitterUpload clones the upload with per-device measurement noise: each
// fix scattered by a zero-mean gaussian of the given sigma (metres) and
// each RSSI reading nudged by up to ±db. Two handsets riding the same
// street never report byte-identical tracks; neither do the sybils.
func jitterUpload(rng *rand.Rand, u *wifi.Upload, sigma float64, db int) *wifi.Upload {
	pts := make([]trajectory.Point, len(u.Traj.Points))
	for i, p := range u.Traj.Points {
		pts[i] = trajectory.Point{
			Pos: geo.Point{
				X: p.Pos.X + rng.NormFloat64()*sigma,
				Y: p.Pos.Y + rng.NormFloat64()*sigma,
			},
			Time: p.Time,
		}
	}
	scans := make([]wifi.Scan, len(u.Scans))
	for i, scan := range u.Scans {
		cp := scan.Clone()
		for j := range cp {
			cp[j].RSSI += rng.Intn(2*db+1) - db
		}
		scans[i] = cp
	}
	return &wifi.Upload{
		Traj:        &trajectory.T{ID: u.Traj.ID, Mode: u.Traj.Mode, Points: pts},
		Scans:       scans,
		Contributor: u.Contributor,
	}
}

// shiftScans builds a radio-shift forgery for detector training: the
// honest route with every observation (or, with partial set, only the
// second half of the trip) reporting delta dB off the truth.
func shiftScans(u *wifi.Upload, delta int, partial bool) *wifi.Upload {
	out := &wifi.Upload{Traj: u.Traj, Scans: make([]wifi.Scan, len(u.Scans))}
	from := 0
	if partial {
		from = len(u.Scans) / 2
	}
	for i, scan := range u.Scans {
		if i < from {
			out.Scans[i] = scan
			continue
		}
		cp := scan.Clone()
		for j := range cp {
			cp[j].RSSI += delta
		}
		out.Scans[i] = cp
	}
	return out
}
