package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/nn"
	"trajforge/internal/parallel"
	"trajforge/internal/trajectory"
	"trajforge/internal/xgb"
)

// MotionLab holds the trained state shared by the Sec. IV-A experiments:
// the corpus, the target model C, and the transfer models.
type MotionLab struct {
	Scale  Scale
	Corpus *dataset.MotionCorpus

	// Target C plus transfer models LSTM-1, LSTM-2, XGBoost.
	C         *detect.LSTMDetector
	Detectors []detect.MotionDetector // all four, C first

	// Held-out test material.
	TestReal  []*trajectory.T
	TestFakes []*trajectory.T // naive fakes matching TestReal

	// Train material kept for the attack experiments.
	TrainReal []*trajectory.T
	TrainNav  []*trajectory.T // clean navigation samples
}

// NewMotionLab builds the corpus and trains all four detectors of Table I.
func NewMotionLab(scale Scale) (*MotionLab, error) {
	mcfg := dataset.DefaultMotionConfig()
	mcfg.Trips = scale.MotionTrips
	mcfg.Points = scale.MotionPoints
	mcfg.Interval = scale.Interval
	mcfg.Seed = scale.Seed
	corpus, err := dataset.BuildMotionCorpus(mcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: motion corpus: %w", err)
	}

	lab := &MotionLab{Scale: scale, Corpus: corpus}

	// D_train / D_test: real vs a 50/50 mixture of the two naive attacks,
	// mirroring the paper's 20k real + 10k replay-fake + 10k nav-fake pool.
	realTrain, realTest := dataset.Split(corpus.Real, 0.7)
	navTrain, navTest := dataset.Split(corpus.NaiveNav, 0.7)
	replayTrain, replayTest := dataset.Split(corpus.NaiveReplay, 0.7)
	// Balance real:fake 1:1, keeping the nav/replay mix 50/50 (the paper
	// trains 20k real vs 10k fake; at small scales a balanced set avoids a
	// majority-class bias).
	fakeTrain := truncate(interleave(navTrain, replayTrain), len(realTrain))
	fakeTest := truncate(interleave(navTest, replayTest), len(realTest))

	lab.TrainReal = realTrain
	cleanNavTrain, _ := dataset.Split(corpus.CleanNav, 0.7)
	lab.TrainNav = cleanNavTrain
	lab.TestReal = realTest
	lab.TestFakes = fakeTest

	trainCfg := nn.TrainConfig{
		Epochs:       scale.Epochs,
		BatchSize:    scale.BatchSize,
		LearningRate: 0.02,
		LRDecay:      0.97,
		KeepBest:     true,
		Seed:         scale.Seed + 7,
	}
	for _, spec := range detect.PaperModels(scale.Hidden) {
		spec.Restarts = scale.Restarts
		det, err := detect.TrainLSTM(spec, realTrain, fakeTrain, trainCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: train %s: %w", spec.Name, err)
		}
		if spec.Name == "C" {
			lab.C = det
		}
		lab.Detectors = append(lab.Detectors, det)
	}
	xgbDet, err := detect.TrainXGBMotion(realTrain, fakeTrain, xgb.Config{
		Rounds: 60, MaxDepth: 4, LearningRate: 0.25, Seed: scale.Seed + 9,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train XGBoost: %w", err)
	}
	// Order as in Table I: C, XGBoost, LSTM-1, LSTM-2.
	lab.Detectors = []detect.MotionDetector{
		lab.Detectors[0], xgbDet, lab.Detectors[1], lab.Detectors[2],
	}
	return lab, nil
}

func truncate(list []*trajectory.T, n int) []*trajectory.T {
	if n > len(list) {
		return list
	}
	return list[:n]
}

func interleave(a, b []*trajectory.T) []*trajectory.T {
	out := make([]*trajectory.T, 0, len(a)+len(b))
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			out = append(out, a[i])
		}
		if i < len(b) {
			out = append(out, b[i])
		}
	}
	return out
}

// Table1Row is one line of Table I.
type Table1Row struct {
	Model     string
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Table1Result reproduces "classification performance against naive
// attacks".
type Table1Result struct {
	Rows []Table1Row
}

// Table1 evaluates every detector of the lab on the held-out naive-attack
// test set.
func Table1(lab *MotionLab) *Table1Result {
	res := &Table1Result{}
	for _, d := range lab.Detectors {
		conf := detect.EvaluateMotion(d, lab.TestReal, lab.TestFakes)
		res.Rows = append(res.Rows, Table1Row{
			Model:     d.Name(),
			Accuracy:  conf.Accuracy(),
			Precision: conf.Precision(),
			Recall:    conf.Recall(),
			F1:        conf.F1(),
		})
	}
	return res
}

// MinDRow is the calibrated replay threshold of one mode.
type MinDRow struct {
	Mode trajectory.Mode
	// PerMeter is MinD in DTW metres per route metre (paper: 1.2 walking,
	// 1.5 cycling, 1.4 driving).
	PerMeter float64
	Repeats  int
}

// MinDResult holds all three thresholds.
type MinDResult struct {
	Rows []MinDRow
}

// ByMode returns the calibrated threshold for a mode (0 when missing).
func (r *MinDResult) ByMode(m trajectory.Mode) float64 {
	for _, row := range r.Rows {
		if row.Mode == m {
			return row.PerMeter
		}
	}
	return 0
}

// MinD reproduces the paper's repeated-traversal calibration: the same
// ~200 m route is travelled Scale.MinDRepeats times per mode and the
// minimum pairwise DTW/m is the threshold.
func MinD(scale Scale) (*MinDResult, error) {
	rng := rand.New(rand.NewSource(scale.Seed + 31))
	route := []geo.Point{{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 120, Y: 80}} // 200 m, one corner
	res := &MinDResult{}
	for _, mode := range trajectory.Modes() {
		tracks, err := mobility.RepeatRoute(rng, mobility.Options{
			Route: route, Mode: mode,
			Start:    time.Date(2022, 6, 20, 9, 0, 0, 0, time.UTC),
			Interval: scale.Interval,
		}, scale.MinDRepeats)
		if err != nil {
			return nil, fmt.Errorf("experiments: MinD %v: %w", mode, err)
		}
		trajs := make([]*trajectory.T, len(tracks))
		for i, tk := range tracks {
			trajs[i] = tk.Trajectory()
		}
		perMeter, err := attack.MinDEstimate(trajs)
		if err != nil {
			return nil, fmt.Errorf("experiments: MinD %v: %w", mode, err)
		}
		res.Rows = append(res.Rows, MinDRow{Mode: mode, PerMeter: perMeter, Repeats: scale.MinDRepeats})
	}
	return res, nil
}

// RCalResult is the Sec. III-C R calibration.
type RCalResult struct {
	Sigma float64
	R     float64
	N     int
}

// RCal collects static GPS fixes and derives R = 6σ.
func RCal(scale Scale) (*RCalResult, error) {
	rng := rand.New(rand.NewSource(scale.Seed + 41))
	fixes, err := mobility.StaticFixes(rng, mobility.DefaultGPS(),
		geo.Point{X: 50, Y: 50}, scale.StaticFixes, scale.Interval)
	if err != nil {
		return nil, fmt.Errorf("experiments: R calibration: %w", err)
	}
	cal, err := mobility.CalibrateR(fixes)
	if err != nil {
		return nil, fmt.Errorf("experiments: R calibration: %w", err)
	}
	return &RCalResult{Sigma: cal.Sigma, R: cal.R, N: cal.N}, nil
}

// Fig3Point is one sample of the iteration-sweep curves of Fig. 3.
type Fig3Point struct {
	Iterations int
	// Seconds is the cumulative wall-clock attack time.
	Seconds float64
	// BestDTW is the best adversarial DTW found within the budget
	// (+Inf while no adversarial example exists).
	BestDTW float64
	// Found reports whether any adversarial example exists at this budget.
	Found bool
}

// Fig3Result is the full sweep.
type Fig3Result struct {
	Points []Fig3Point
	// FirstAdversarial is the iteration at which the first adversarial
	// example appeared on the longest run.
	FirstAdversarial int
}

// Fig3 runs one navigation-scenario attack with per-iteration recording and
// reports the DTW/time curves at increasing budgets.
func Fig3(lab *MotionLab) (*Fig3Result, error) {
	if len(lab.TrainNav) == 0 {
		return nil, fmt.Errorf("experiments: lab has no navigation samples")
	}
	forger := attack.NewForger(lab.C.Model, lab.C.Kind)
	cfg := attack.DefaultCWConfig(attack.ScenarioNavigation)
	// The knee of the paper's figure (a stretch of iterations before the
	// first adversarial example appears) needs the full iteration budget:
	// the sweep runs at least the paper's 1,500 iterations regardless of
	// the scale's per-attack budget.
	cfg.Iterations = lab.Scale.AttackIterations
	if cfg.Iterations < 1500 {
		cfg.Iterations = 1500
	}
	// Start essentially from the clean navigation sample so the optimizer
	// has real work to do, and pick a sample the classifier clearly rejects
	// (one it already accepts has no knee to show).
	cfg.InitNoiseSD = 0.05
	cfg.Seed = lab.Scale.Seed + 53
	ref := lab.TrainNav[0]
	best := 2.0
	for _, cand := range lab.TrainNav {
		seq := trajectory.SequenceFeatures(cand, lab.C.Kind)
		p := lab.C.Model.Forward(seq)
		// Prefer a clearly-rejected but not pathological sample: the knee
		// only shows when the optimizer has real work to do, yet the paper
		// also finds an adversarial example within the budget.
		if p >= 0.05 && p < 0.35 {
			ref = cand
			best = p
			break
		}
		if p < best {
			best = p
			ref = cand
		}
	}

	start := time.Now()
	res, err := forger.Forge(ref, cfg, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig3 attack: %w", err)
	}
	elapsed := time.Since(start).Seconds()
	perIter := elapsed / float64(cfg.Iterations)

	out := &Fig3Result{FirstAdversarial: res.FirstAdversarialIter}
	step := cfg.Iterations / 15
	if step < 1 {
		step = 1
	}
	for it := step; it <= cfg.Iterations; it += step {
		h := res.History[it-1]
		out.Points = append(out.Points, Fig3Point{
			Iterations: it,
			Seconds:    perIter * float64(it),
			BestDTW:    h.BestDTW,
			Found:      res.FirstAdversarialIter > 0 && it >= res.FirstAdversarialIter,
		})
	}
	return out, nil
}

// Table2Row is one line of Table II: how often a detector catches the C&W
// fakes.
type Table2Row struct {
	Model      string
	ReplayRate float64 // successfully detected replay-scenario fakes
	NavRate    float64 // successfully detected navigation-scenario fakes
}

// Table2Result also records the attack success rate (fraction of attack
// runs that produced an adversarial trajectory at all).
type Table2Result struct {
	Rows []Table2Row
	// AttackSuccess is the fraction of C&W runs that found an adversarial
	// trajectory, per scenario.
	ReplaySuccess float64
	NavSuccess    float64
}

// Table2 forges adversarial trajectories in both scenarios against the
// target C and measures every detector's catch rate on the successful ones.
func Table2(lab *MotionLab, minD *MinDResult) (*Table2Result, error) {
	forger := attack.NewForger(lab.C.Model, lab.C.Kind)
	n := lab.Scale.AttackEvalCount
	if n > len(lab.TrainReal) {
		n = len(lab.TrainReal)
	}
	if n > len(lab.TrainNav) {
		n = len(lab.TrainNav)
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: no attack material")
	}

	// Each forge run is independently seeded, so the runs fan out across
	// the worker pool; collecting in index order keeps the fake set (and
	// therefore every downstream detection rate) identical to the serial
	// loop. The target classifier's Backward keeps its per-call state in an
	// internal pool, so concurrent attacks against it are safe.
	runScenario := func(scenario attack.Scenario, refs []*trajectory.T) ([]*trajectory.T, float64, error) {
		base := attack.DefaultCWConfig(scenario)
		base.Iterations = lab.Scale.AttackIterations
		if scenario == attack.ScenarioReplay {
			base.MinDPerMeter = minD.ByMode(trajectory.ModeWalking)
			if base.MinDPerMeter <= 0 {
				base.MinDPerMeter = 1.2
			}
		}
		results, err := parallel.MapErr(n, func(i int) (*attack.Result, error) {
			cfg := base
			cfg.Seed = lab.Scale.Seed + int64(1000*int(scenario)+i)
			res, err := forger.Forge(refs[i], cfg, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: forge %v #%d: %w", scenario, i, err)
			}
			return res, nil
		})
		if err != nil {
			return nil, 0, err
		}
		var fakes []*trajectory.T
		var success int
		for _, res := range results {
			if res.Success {
				success++
				fakes = append(fakes, res.Forged)
			}
		}
		return fakes, float64(success) / float64(n), nil
	}

	replayFakes, replayOK, err := runScenario(attack.ScenarioReplay, lab.TrainReal)
	if err != nil {
		return nil, err
	}
	navFakes, navOK, err := runScenario(attack.ScenarioNavigation, lab.TrainNav)
	if err != nil {
		return nil, err
	}

	res := &Table2Result{ReplaySuccess: replayOK, NavSuccess: navOK}
	for _, d := range lab.Detectors {
		res.Rows = append(res.Rows, Table2Row{
			Model:      d.Name(),
			ReplayRate: detect.DetectionRate(d, replayFakes),
			NavRate:    detect.DetectionRate(d, navFakes),
		})
	}
	return res, nil
}
