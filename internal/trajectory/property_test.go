package trajectory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"trajforge/internal/geo"
)

func randWalk(rng *rand.Rand, n int) *T {
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: pos[i-1].X + 1 + rng.NormFloat64()*0.4,
			Y: pos[i-1].Y + rng.NormFloat64()*0.4,
		}
	}
	return New(pos, _t0, time.Second)
}

// Property: the dx-dy feature sequence integrates back to the positions
// (displacements are exact differences).
func TestPropertyDxDyIntegratesToPositions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randWalk(rng, 3+rng.Intn(30))
		seq := SequenceFeatures(tr, FeatureDxDy)
		p := tr.Points[0].Pos
		for i, step := range seq {
			p.X += step[0]
			p.Y += step[1]
			want := tr.Points[i+1].Pos
			if math.Abs(p.X-want.X) > 1e-9 || math.Abs(p.Y-want.Y) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the dist-angle encoding preserves step lengths, and the dist
// channel is exactly the norm of the dx-dy channel.
func TestPropertyEncodingsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randWalk(rng, 3+rng.Intn(30))
		da := SequenceFeatures(tr, FeatureDistAngle)
		xy := SequenceFeatures(tr, FeatureDxDy)
		for i := range da {
			if math.Abs(da[i][0]-math.Hypot(xy[i][0], xy[i][1])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the motion state features (speeds, accelerations, heading
// change, stop fraction) are invariant under translation of the whole
// trajectory; only the location features move.
func TestPropertySummaryTranslationInvariant(t *testing.T) {
	f := func(seed int64, dxRaw, dyRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		dx := math.Mod(dxRaw, 1e4)
		dy := math.Mod(dyRaw, 1e4)
		tr := randWalk(rng, 5+rng.Intn(25))
		moved := tr.Clone()
		for i := range moved.Points {
			moved.Points[i].Pos.X += dx
			moved.Points[i].Pos.Y += dy
		}
		a := Summarize(tr)
		b := Summarize(moved)
		close := func(x, y float64) bool { return math.Abs(x-y) < 1e-6 }
		return close(a.MeanSpeed, b.MeanSpeed) &&
			close(a.StdSpeed, b.StdSpeed) &&
			close(a.MeanAccel, b.MeanAccel) &&
			close(a.HeadingChange, b.HeadingChange) &&
			close(a.StopFraction, b.StopFraction) &&
			close(a.StartX+dx, b.StartX) &&
			close(a.EndY+dy, b.EndY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the dist-angle state features are invariant under rotation of
// the whole trajectory (speed magnitudes don't depend on orientation).
func TestPropertySpeedsRotationInvariant(t *testing.T) {
	f := func(seed int64, angleRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := math.Mod(angleRaw, 2*math.Pi)
		sin, cos := math.Sin(theta), math.Cos(theta)
		tr := randWalk(rng, 5+rng.Intn(25))
		rot := tr.Clone()
		for i := range rot.Points {
			p := rot.Points[i].Pos
			rot.Points[i].Pos = geo.Point{X: p.X*cos - p.Y*sin, Y: p.X*sin + p.Y*cos}
		}
		sa := tr.Speeds()
		sb := rot.Speeds()
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-6 {
				return false
			}
		}
		return math.Abs(tr.Length()-rot.Length()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
