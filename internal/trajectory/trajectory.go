// Package trajectory defines the trajectory data model used throughout the
// system — a time-ordered sequence of GPS positions, exactly the
// [lat, lon, time] triples the paper's location service provider ingests —
// together with motion-feature extraction, resampling, validation, and
// JSON/CSV codecs.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"time"

	"trajforge/internal/geo"
)

// Mode is the transportation mode of a trajectory.
type Mode int

// Transportation modes covered by the paper's evaluation.
const (
	ModeWalking Mode = iota + 1
	ModeCycling
	ModeDriving
)

var _modeNames = map[Mode]string{
	ModeWalking: "walking",
	ModeCycling: "cycling",
	ModeDriving: "driving",
}

func (m Mode) String() string {
	if s, ok := _modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode converts a mode name to a Mode.
func ParseMode(s string) (Mode, error) {
	for m, name := range _modeNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("trajectory: unknown mode %q", s)
}

// Modes lists all supported transportation modes in a stable order.
func Modes() []Mode { return []Mode{ModeWalking, ModeCycling, ModeDriving} }

// Point is a single GPS fix: a position on the local plane plus a timestamp.
type Point struct {
	Pos  geo.Point `json:"pos"`
	Time time.Time `json:"time"`
}

// T is a trajectory: a time-ordered sequence of GPS fixes sampled at a
// constant interval, the unit of upload, forgery, and verification in the
// paper.
type T struct {
	// Points are the fixes, oldest first.
	Points []Point `json:"points"`
	// Mode is the claimed transportation mode, when known.
	Mode Mode `json:"mode,omitempty"`
	// ID is an optional caller-assigned identifier.
	ID string `json:"id,omitempty"`
}

// Validation errors.
var (
	ErrTooShort     = errors.New("trajectory: fewer than 2 points")
	ErrNotMonotonic = errors.New("trajectory: timestamps not strictly increasing")
	ErrIrregular    = errors.New("trajectory: sampling interval not constant")
)

// Len returns the number of fixes.
func (t *T) Len() int { return len(t.Points) }

// Positions returns the position sequence (a fresh slice).
func (t *T) Positions() []geo.Point {
	out := make([]geo.Point, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Pos
	}
	return out
}

// Clone returns a deep copy of the trajectory.
func (t *T) Clone() *T {
	cp := &T{Mode: t.Mode, ID: t.ID}
	cp.Points = append([]Point(nil), t.Points...)
	return cp
}

// Start returns the first fix; it panics on an empty trajectory.
func (t *T) Start() Point { return t.Points[0] }

// End returns the last fix; it panics on an empty trajectory.
func (t *T) End() Point { return t.Points[len(t.Points)-1] }

// Duration returns the time spanned by the trajectory.
func (t *T) Duration() time.Duration {
	if len(t.Points) < 2 {
		return 0
	}
	return t.End().Time.Sub(t.Start().Time)
}

// Interval returns the sampling interval, assuming it is constant; it
// returns 0 for trajectories with fewer than two points.
func (t *T) Interval() time.Duration {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[1].Time.Sub(t.Points[0].Time)
}

// Length returns the path length in metres (sum of step displacements).
func (t *T) Length() float64 {
	return geo.PolylineLength(t.Positions())
}

// Validate checks that the trajectory has at least two points, strictly
// increasing timestamps, and a constant sampling interval (within tol).
func (t *T) Validate(tol time.Duration) error {
	if len(t.Points) < 2 {
		return ErrTooShort
	}
	want := t.Interval()
	if want <= 0 {
		return ErrNotMonotonic
	}
	for i := 1; i < len(t.Points); i++ {
		dt := t.Points[i].Time.Sub(t.Points[i-1].Time)
		if dt <= 0 {
			return fmt.Errorf("%w: step %d", ErrNotMonotonic, i)
		}
		diff := dt - want
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			return fmt.Errorf("%w: step %d is %v, want %v", ErrIrregular, i, dt, want)
		}
	}
	return nil
}

// New builds a trajectory from positions sampled at a constant interval
// starting at start time.
func New(positions []geo.Point, start time.Time, interval time.Duration) *T {
	pts := make([]Point, len(positions))
	for i, pos := range positions {
		pts[i] = Point{Pos: pos, Time: start.Add(time.Duration(i) * interval)}
	}
	return &T{Points: pts}
}

// WithPositions returns a copy of t whose positions are replaced by pos,
// keeping the timestamps, mode and ID. len(pos) must equal t.Len().
func (t *T) WithPositions(pos []geo.Point) (*T, error) {
	if len(pos) != len(t.Points) {
		return nil, fmt.Errorf("trajectory: got %d positions for %d points", len(pos), len(t.Points))
	}
	cp := t.Clone()
	for i := range cp.Points {
		cp.Points[i].Pos = pos[i]
	}
	return cp, nil
}

// Step describes the displacement between two consecutive fixes.
type Step struct {
	// Dist is the Euclidean displacement length in metres.
	Dist float64
	// Angle is the displacement direction in radians (see geo.Bearing).
	Angle float64
	// Dx, Dy are the displacement components in metres.
	Dx, Dy float64
	// Dt is the elapsed time in seconds.
	Dt float64
}

// Steps returns the n-1 displacement records of an n-point trajectory,
// matching the paper's Δ(P_i, P_{i+1}) = (Edu, Angle) description.
func (t *T) Steps() []Step {
	if len(t.Points) < 2 {
		return nil
	}
	out := make([]Step, len(t.Points)-1)
	for i := 1; i < len(t.Points); i++ {
		a := t.Points[i-1]
		b := t.Points[i]
		dx := b.Pos.X - a.Pos.X
		dy := b.Pos.Y - a.Pos.Y
		out[i-1] = Step{
			Dist:  math.Hypot(dx, dy),
			Angle: geo.Bearing(a.Pos, b.Pos),
			Dx:    dx,
			Dy:    dy,
			Dt:    b.Time.Sub(a.Time).Seconds(),
		}
	}
	return out
}

// Speeds returns the per-step speeds in m/s.
func (t *T) Speeds() []float64 {
	steps := t.Steps()
	out := make([]float64, len(steps))
	for i, s := range steps {
		if s.Dt > 0 {
			out[i] = s.Dist / s.Dt
		}
	}
	return out
}

// Accelerations returns the per-step accelerations in m/s^2 (one fewer than
// Speeds).
func (t *T) Accelerations() []float64 {
	speeds := t.Speeds()
	if len(speeds) < 2 {
		return nil
	}
	steps := t.Steps()
	out := make([]float64, len(speeds)-1)
	for i := 1; i < len(speeds); i++ {
		if steps[i].Dt > 0 {
			out[i-1] = (speeds[i] - speeds[i-1]) / steps[i].Dt
		}
	}
	return out
}

// Windows splits the trajectory into consecutive fixed-size windows with
// the given stride — how the paper carves its corpora out of long recorded
// traces ("select 400 consecutive position points"). Each window shares
// point storage with the parent. stride <= 0 means non-overlapping windows
// (stride = size).
func (t *T) Windows(size, stride int) []*T {
	if size < 2 || t.Len() < size {
		return nil
	}
	if stride <= 0 {
		stride = size
	}
	var out []*T
	for start := 0; start+size <= len(t.Points); start += stride {
		out = append(out, &T{
			Points: t.Points[start : start+size : start+size],
			Mode:   t.Mode,
			ID:     t.ID,
		})
	}
	return out
}
