package trajectory

import (
	"math"

	"trajforge/internal/geo"
)

// FeatureKind selects how a trajectory is encoded as a per-step feature
// sequence for the sequence classifiers. The paper's target model C uses
// (distance, angle); its transfer model LSTM-1 uses raw (dx, dy).
type FeatureKind int

// Supported sequence encodings.
const (
	// FeatureDistAngle encodes each step as (Euclidean distance, direction).
	FeatureDistAngle FeatureKind = iota + 1
	// FeatureDxDy encodes each step as the raw displacement components.
	FeatureDxDy
)

// Dim returns the per-step feature dimensionality.
func (k FeatureKind) Dim() int { return 2 }

func (k FeatureKind) String() string {
	switch k {
	case FeatureDistAngle:
		return "dist-angle"
	case FeatureDxDy:
		return "dx-dy"
	default:
		return "FeatureKind(?)"
	}
}

// SequenceFeatures encodes the trajectory as a [n-1][dim] feature sequence
// for the LSTM classifiers.
func SequenceFeatures(t *T, kind FeatureKind) [][]float64 {
	steps := t.Steps()
	out := make([][]float64, len(steps))
	for i, s := range steps {
		switch kind {
		case FeatureDxDy:
			out[i] = []float64{s.Dx, s.Dy}
		default:
			out[i] = []float64{s.Dist, s.Angle}
		}
	}
	return out
}

// SequenceFromPositions computes the same encoding directly from a position
// slice with a constant time step. The attack optimizer uses this to relate
// classifier inputs back to positions.
func SequenceFromPositions(pos []geo.Point, kind FeatureKind) [][]float64 {
	if len(pos) < 2 {
		return nil
	}
	out := make([][]float64, len(pos)-1)
	for i := 1; i < len(pos); i++ {
		dx := pos[i].X - pos[i-1].X
		dy := pos[i].Y - pos[i-1].Y
		switch kind {
		case FeatureDxDy:
			out[i-1] = []float64{dx, dy}
		default:
			out[i-1] = []float64{math.Hypot(dx, dy), math.Atan2(dy, dx)}
		}
	}
	return out
}

// SequenceGradToPositions back-propagates a gradient on the sequence
// features (as produced by SequenceFromPositions) to a gradient on the
// positions. gradSeq must have len(pos)-1 rows of 2 columns. The returned
// slice has one (dX, dY) gradient per position.
//
// For FeatureDistAngle the Jacobian of (dist, angle) w.r.t. (dx, dy) is
//
//	d dist/d dx = dx/dist        d dist/d dy = dy/dist
//	d angle/d dx = -dy/dist^2    d angle/d dy = dx/dist^2
//
// with the convention that a zero-length step contributes no gradient.
func SequenceGradToPositions(pos []geo.Point, kind FeatureKind, gradSeq [][]float64) []geo.Point {
	grad := make([]geo.Point, len(pos))
	for i := 1; i < len(pos); i++ {
		g := gradSeq[i-1]
		dx := pos[i].X - pos[i-1].X
		dy := pos[i].Y - pos[i-1].Y

		var gdx, gdy float64
		switch kind {
		case FeatureDxDy:
			gdx, gdy = g[0], g[1]
		default:
			dist := math.Hypot(dx, dy)
			if dist > 1e-9 {
				gdx = g[0]*dx/dist - g[1]*dy/(dist*dist)
				gdy = g[0]*dy/dist + g[1]*dx/(dist*dist)
			}
		}
		grad[i].X += gdx
		grad[i].Y += gdy
		grad[i-1].X -= gdx
		grad[i-1].Y -= gdy
	}
	return grad
}

// MotionSummary is the fixed-length feature vector used by the XGBoost
// motion classifier (Sec. IV-A4): location features (start/end position and
// time) plus state features (speed and acceleration overall and per axis).
type MotionSummary struct {
	StartX, StartY float64
	EndX, EndY     float64
	DurationSec    float64

	MeanSpeed, MaxSpeed, StdSpeed    float64
	MeanAccel, MaxAbsAccel, StdAccel float64

	MeanSpeedX, StdSpeedX float64 // longitude-direction speed
	MeanSpeedY, StdSpeedY float64 // latitude-direction speed
	MeanAccelX, StdAccelX float64
	MeanAccelY, StdAccelY float64

	// MeanSpeedDiffXY is the mean |speedX - speedY| ("velocity difference in
	// longitude and latitude" in the paper).
	MeanSpeedDiffXY float64

	// StopFraction is the fraction of steps slower than 0.2 m/s.
	StopFraction float64
	// HeadingChange is the mean absolute per-step heading change in radians.
	HeadingChange float64
}

// MotionVectorDim is the length of the vector returned by Vector.
const MotionVectorDim = 21

// Vector flattens the summary into a feature vector for tree models.
func (m MotionSummary) Vector() []float64 {
	return []float64{
		m.StartX, m.StartY, m.EndX, m.EndY, m.DurationSec,
		m.MeanSpeed, m.MaxSpeed, m.StdSpeed,
		m.MeanAccel, m.MaxAbsAccel, m.StdAccel,
		m.MeanSpeedX, m.StdSpeedX, m.MeanSpeedY, m.StdSpeedY,
		m.MeanAccelX, m.StdAccelX, m.MeanAccelY, m.StdAccelY,
		m.MeanSpeedDiffXY,
		m.StopFraction + m.HeadingChange, // combined smoothness channel
	}
}

// Summarize extracts the motion summary of a trajectory. Trajectories with
// fewer than three points yield a zero summary.
func Summarize(t *T) MotionSummary {
	var m MotionSummary
	if len(t.Points) < 3 {
		return m
	}
	steps := t.Steps()
	m.StartX = t.Points[0].Pos.X
	m.StartY = t.Points[0].Pos.Y
	m.EndX = t.End().Pos.X
	m.EndY = t.End().Pos.Y
	m.DurationSec = t.Duration().Seconds()

	n := len(steps)
	speeds := make([]float64, n)
	speedX := make([]float64, n)
	speedY := make([]float64, n)
	var stops int
	for i, s := range steps {
		if s.Dt > 0 {
			speeds[i] = s.Dist / s.Dt
			speedX[i] = s.Dx / s.Dt
			speedY[i] = s.Dy / s.Dt
		}
		if speeds[i] < 0.2 {
			stops++
		}
	}
	accels := diffOver(speeds, steps)
	accelX := diffOver(speedX, steps)
	accelY := diffOver(speedY, steps)

	m.MeanSpeed = mean(speeds)
	m.MaxSpeed = maxOf(speeds)
	m.StdSpeed = stddev(speeds)
	m.MeanAccel = mean(accels)
	m.MaxAbsAccel = maxAbs(accels)
	m.StdAccel = stddev(accels)
	m.MeanSpeedX = mean(speedX)
	m.StdSpeedX = stddev(speedX)
	m.MeanSpeedY = mean(speedY)
	m.StdSpeedY = stddev(speedY)
	m.MeanAccelX = mean(accelX)
	m.StdAccelX = stddev(accelX)
	m.MeanAccelY = mean(accelY)
	m.StdAccelY = stddev(accelY)

	var diffXY float64
	for i := range speeds {
		diffXY += math.Abs(speedX[i] - speedY[i])
	}
	m.MeanSpeedDiffXY = diffXY / float64(n)
	m.StopFraction = float64(stops) / float64(n)

	var headSum float64
	var headN int
	for i := 1; i < n; i++ {
		if steps[i].Dist < 0.05 || steps[i-1].Dist < 0.05 {
			continue // heading of a near-zero step is noise
		}
		headSum += math.Abs(geo.AngleDiff(steps[i].Angle, steps[i-1].Angle))
		headN++
	}
	if headN > 0 {
		m.HeadingChange = headSum / float64(headN)
	}
	return m
}

func diffOver(v []float64, steps []Step) []float64 {
	if len(v) < 2 {
		return nil
	}
	out := make([]float64, len(v)-1)
	for i := 1; i < len(v); i++ {
		if steps[i].Dt > 0 {
			out[i-1] = (v[i] - v[i-1]) / steps[i].Dt
		}
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
