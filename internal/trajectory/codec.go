package trajectory

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"trajforge/internal/geo"
)

// wireTrajectory is the upload format of the simulated location service
// provider: [lat, lon, time] triples, exactly as in the paper.
type wireTrajectory struct {
	ID     string      `json:"id,omitempty"`
	Mode   string      `json:"mode,omitempty"`
	Points []wirePoint `json:"points"`
}

type wirePoint struct {
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
	Time int64   `json:"time"` // Unix milliseconds
}

// MarshalJSONWire encodes t as the [lat, lon, time] wire format using the
// given projection to convert plane coordinates back to WGS-84.
func MarshalJSONWire(t *T, pr *geo.Projection) ([]byte, error) {
	w := wireTrajectory{ID: t.ID, Points: make([]wirePoint, len(t.Points))}
	if t.Mode != 0 {
		w.Mode = t.Mode.String()
	}
	for i, p := range t.Points {
		ll := pr.ToLatLon(p.Pos)
		w.Points[i] = wirePoint{Lat: ll.Lat, Lon: ll.Lon, Time: p.Time.UnixMilli()}
	}
	return json.Marshal(w)
}

// UnmarshalJSONWire decodes the [lat, lon, time] wire format, projecting
// coordinates onto the local plane.
func UnmarshalJSONWire(data []byte, pr *geo.Projection) (*T, error) {
	var w wireTrajectory
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("trajectory: decode wire JSON: %w", err)
	}
	t := &T{ID: w.ID, Points: make([]Point, len(w.Points))}
	if w.Mode != "" {
		m, err := ParseMode(w.Mode)
		if err != nil {
			return nil, err
		}
		t.Mode = m
	}
	for i, p := range w.Points {
		ll := geo.LatLon{Lat: p.Lat, Lon: p.Lon}
		if !ll.Valid() {
			return nil, fmt.Errorf("trajectory: point %d: invalid coordinate %v", i, ll)
		}
		t.Points[i] = Point{Pos: pr.ToPlane(ll), Time: time.UnixMilli(p.Time).UTC()}
	}
	return t, nil
}

// WriteCSV writes the trajectory as "x,y,unix_ms" rows with a header.
func WriteCSV(w io.Writer, t *T) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y", "unix_ms"}); err != nil {
		return fmt.Errorf("trajectory: write CSV header: %w", err)
	}
	for _, p := range t.Points {
		rec := []string{
			strconv.FormatFloat(p.Pos.X, 'f', -1, 64),
			strconv.FormatFloat(p.Pos.Y, 'f', -1, 64),
			strconv.FormatInt(p.Time.UnixMilli(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trajectory: write CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trajectory: flush CSV: %w", err)
	}
	return nil
}

// ReadCSV reads a trajectory written by WriteCSV.
func ReadCSV(r io.Reader) (*T, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trajectory: read CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trajectory: empty CSV")
	}
	t := &T{Points: make([]Point, 0, len(rows)-1)}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("trajectory: CSV row %d has %d fields, want 3", i+1, len(row))
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV row %d x: %w", i+1, err)
		}
		y, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV row %d y: %w", i+1, err)
		}
		ms, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: CSV row %d time: %w", i+1, err)
		}
		t.Points = append(t.Points, Point{
			Pos:  geo.Point{X: x, Y: y},
			Time: time.UnixMilli(ms).UTC(),
		})
	}
	return t, nil
}

// geoJSON types (the subset needed for LineString features).
type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string                 `json:"type"`
	Geometry   geoJSONGeometry        `json:"geometry"`
	Properties map[string]interface{} `json:"properties,omitempty"`
}

type geoJSONGeometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// MarshalGeoJSON encodes trajectories as a GeoJSON FeatureCollection of
// LineStrings (RFC 7946: [lon, lat] coordinate order) for inspection in
// standard GIS tooling. Each feature carries the trajectory's id, mode,
// and start/end timestamps as properties.
func MarshalGeoJSON(trajs []*T, pr *geo.Projection) ([]byte, error) {
	fc := geoJSONFeatureCollection{Type: "FeatureCollection"}
	for i, t := range trajs {
		if t.Len() < 2 {
			return nil, fmt.Errorf("trajectory: GeoJSON feature %d has %d points", i, t.Len())
		}
		coords := make([][2]float64, t.Len())
		for j, p := range t.Points {
			ll := pr.ToLatLon(p.Pos)
			coords[j] = [2]float64{ll.Lon, ll.Lat}
		}
		props := map[string]interface{}{
			"start": t.Start().Time.UTC().Format(time.RFC3339),
			"end":   t.End().Time.UTC().Format(time.RFC3339),
		}
		if t.ID != "" {
			props["id"] = t.ID
		}
		if t.Mode != 0 {
			props["mode"] = t.Mode.String()
		}
		fc.Features = append(fc.Features, geoJSONFeature{
			Type:       "Feature",
			Geometry:   geoJSONGeometry{Type: "LineString", Coordinates: coords},
			Properties: props,
		})
	}
	return json.MarshalIndent(fc, "", "  ")
}
