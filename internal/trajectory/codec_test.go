package trajectory

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"trajforge/internal/geo"
)

func TestJSONWireRoundTrip(t *testing.T) {
	pr := geo.NewProjection(geo.LatLon{Lat: 32.06, Lon: 118.79})
	tr := lineTraj(6, 3)
	tr.Mode = ModeDriving
	tr.ID = "trip-1"

	data, err := MarshalJSONWire(tr, pr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSONWire(data, pr)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "trip-1" || back.Mode != ModeDriving || back.Len() != 6 {
		t.Fatalf("metadata lost: %+v", back)
	}
	for i := range tr.Points {
		if geo.Dist(back.Points[i].Pos, tr.Points[i].Pos) > 1e-6 {
			t.Fatalf("point %d drifted: %v vs %v", i, back.Points[i].Pos, tr.Points[i].Pos)
		}
		if !back.Points[i].Time.Equal(tr.Points[i].Time) {
			t.Fatalf("point %d time drifted", i)
		}
	}
}

func TestJSONWireErrors(t *testing.T) {
	pr := geo.NewProjection(geo.LatLon{})
	if _, err := UnmarshalJSONWire([]byte("{nope"), pr); err == nil {
		t.Fatal("bad JSON must error")
	}
	if _, err := UnmarshalJSONWire([]byte(`{"points":[{"lat":999,"lon":0,"time":0}]}`), pr); err == nil {
		t.Fatal("invalid coordinate must error")
	}
	if _, err := UnmarshalJSONWire([]byte(`{"mode":"hover","points":[]}`), pr); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := lineTraj(4, 1.5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 4 {
		t.Fatalf("len = %d", back.Len())
	}
	for i := range tr.Points {
		if back.Points[i].Pos != tr.Points[i].Pos {
			t.Fatalf("point %d = %v, want %v", i, back.Points[i].Pos, tr.Points[i].Pos)
		}
		if !back.Points[i].Time.Equal(tr.Points[i].Time) {
			t.Fatalf("time %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad x", "x,y,unix_ms\noops,1,0\n"},
		{"bad y", "x,y,unix_ms\n1,oops,0\n"},
		{"bad time", "x,y,unix_ms\n1,2,oops\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("x,y,unix_ms\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d, want 0", tr.Len())
	}
}

func TestWireTimesAreUTC(t *testing.T) {
	pr := geo.NewProjection(geo.LatLon{Lat: 32, Lon: 118})
	tr := New([]geo.Point{{}, {X: 1}}, time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC), time.Second)
	data, err := MarshalJSONWire(tr, pr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSONWire(data, pr)
	if err != nil {
		t.Fatal(err)
	}
	if loc := back.Points[0].Time.Location(); loc != time.UTC {
		t.Fatalf("decoded location = %v, want UTC", loc)
	}
}

func TestMarshalGeoJSON(t *testing.T) {
	pr := geo.NewProjection(geo.LatLon{Lat: 32.06, Lon: 118.79})
	a := lineTraj(4, 2)
	a.ID = "t1"
	a.Mode = ModeWalking
	b := lineTraj(3, 5)

	data, err := MarshalGeoJSON([]*T{a, b}, pr)
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string       `json:"type"`
				Coordinates [][2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(data, &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) != 2 {
		t.Fatalf("collection = %+v", fc)
	}
	f := fc.Features[0]
	if f.Geometry.Type != "LineString" || len(f.Geometry.Coordinates) != 4 {
		t.Fatalf("geometry = %+v", f.Geometry)
	}
	// RFC 7946: [lon, lat] order — longitude ~118.79 first.
	if f.Geometry.Coordinates[0][0] < 100 {
		t.Fatalf("coordinate order wrong: %v", f.Geometry.Coordinates[0])
	}
	if f.Properties["id"] != "t1" || f.Properties["mode"] != "walking" {
		t.Fatalf("properties = %v", f.Properties)
	}
	// Short trajectory must error.
	short := &T{Points: a.Points[:1]}
	if _, err := MarshalGeoJSON([]*T{short}, pr); err == nil {
		t.Fatal("short trajectory must error")
	}
}
