package trajectory

import (
	"bytes"
	"math"
	"testing"

	"trajforge/internal/geo"
)

// FuzzTrajectoryCodec feeds arbitrary bytes to both upload decoders. The
// contract: never panic; when the wire JSON decodes, it must re-encode and
// decode again to the same trajectory (times exact, positions within the
// lat/lon quantisation tolerance), and the CSV roundtrip of the decoded
// trajectory must be bit-exact.
func FuzzTrajectoryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte(`{"points":[]}`))
	f.Add([]byte(`{"id":"u1","mode":"walking","points":[` +
		`{"lat":32.06,"lon":118.79,"time":1656666000000},` +
		`{"lat":32.0601,"lon":118.7901,"time":1656666001000}]}`))
	f.Add([]byte(`{"points":[{"lat":91,"lon":0,"time":0}]}`))      // out of range
	f.Add([]byte(`{"points":[{"lat":null,"lon":null,"time":0}]}`)) // nulls
	f.Add([]byte(`{"mode":"teleport","points":[]}`))               // unknown mode
	f.Add([]byte(`x,y,unix_ms` + "\n" + `1.5,-2.25,1656666000000`))

	pr := geo.NewProjection(geo.LatLon{Lat: 32.06, Lon: 118.79})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The CSV reader must never panic on raw input.
		if ct, err := ReadCSV(bytes.NewReader(data)); err == nil && ct == nil {
			t.Fatal("ReadCSV returned nil, nil")
		}

		tr, err := UnmarshalJSONWire(data, pr)
		if err != nil {
			return // malformed wire input is a valid refusal
		}
		out, err := MarshalJSONWire(tr, pr)
		if err != nil {
			t.Fatalf("re-encode of decoded trajectory: %v", err)
		}
		tr2, err := UnmarshalJSONWire(out, pr)
		if err != nil {
			t.Fatalf("decode of re-encoded trajectory: %v", err)
		}
		if tr2.ID != tr.ID || tr2.Mode != tr.Mode || len(tr2.Points) != len(tr.Points) {
			t.Fatalf("wire roundtrip header: %q/%v/%d != %q/%v/%d",
				tr2.ID, tr2.Mode, len(tr2.Points), tr.ID, tr.Mode, len(tr.Points))
		}
		for i := range tr.Points {
			a, b := tr.Points[i], tr2.Points[i]
			if !a.Time.Equal(b.Time) {
				t.Fatalf("point %d time %v != %v", i, b.Time, a.Time)
			}
			// Plane -> lat/lon -> plane costs a few ulps of a degree; a
			// micrometre bound is far above the drift and far below any
			// position the pipeline could care about.
			if math.Abs(a.Pos.X-b.Pos.X) > 1e-6 || math.Abs(a.Pos.Y-b.Pos.Y) > 1e-6 {
				t.Fatalf("point %d pos %v != %v", i, b.Pos, a.Pos)
			}
		}

		// CSV roundtrip is plane-native and must be exact to the bit.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		tr3, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("ReadCSV of WriteCSV output: %v", err)
		}
		if len(tr3.Points) != len(tr.Points) {
			t.Fatalf("CSV roundtrip %d points, want %d", len(tr3.Points), len(tr.Points))
		}
		for i := range tr.Points {
			a, b := tr.Points[i], tr3.Points[i]
			if math.Float64bits(a.Pos.X) != math.Float64bits(b.Pos.X) ||
				math.Float64bits(a.Pos.Y) != math.Float64bits(b.Pos.Y) {
				t.Fatalf("CSV point %d pos bits differ: %v != %v", i, b.Pos, a.Pos)
			}
			if a.Time.UnixMilli() != b.Time.UnixMilli() {
				t.Fatalf("CSV point %d time %v != %v", i, b.Time, a.Time)
			}
		}
	})
}
