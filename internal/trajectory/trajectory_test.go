package trajectory

import (
	"errors"
	"math"
	"testing"
	"time"

	"trajforge/internal/geo"
)

var _t0 = time.Date(2022, 3, 1, 9, 0, 0, 0, time.UTC)

func lineTraj(n int, step float64) *T {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i) * step}
	}
	return New(pos, _t0, time.Second)
}

func TestModeString(t *testing.T) {
	if ModeWalking.String() != "walking" || ModeCycling.String() != "cycling" || ModeDriving.String() != "driving" {
		t.Fatal("mode names wrong")
	}
	if Mode(99).String() != "Mode(99)" {
		t.Fatal("unknown mode formatting wrong")
	}
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMode("teleport"); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestNewAndAccessors(t *testing.T) {
	tr := lineTraj(5, 2)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Start().Pos != (geo.Point{}) || tr.End().Pos != (geo.Point{X: 8}) {
		t.Fatal("start/end wrong")
	}
	if tr.Duration() != 4*time.Second {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.Interval() != time.Second {
		t.Fatalf("Interval = %v", tr.Interval())
	}
	if got := tr.Length(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Length = %v", got)
	}
	pos := tr.Positions()
	pos[0].X = 999 // must not alias internal storage
	if tr.Points[0].Pos.X == 999 {
		t.Fatal("Positions aliases internal state")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := lineTraj(3, 1)
	tr.Mode = ModeCycling
	tr.ID = "abc"
	cp := tr.Clone()
	cp.Points[0].Pos.X = 42
	if tr.Points[0].Pos.X == 42 {
		t.Fatal("Clone shares point storage")
	}
	if cp.Mode != ModeCycling || cp.ID != "abc" {
		t.Fatal("Clone dropped metadata")
	}
}

func TestValidate(t *testing.T) {
	if err := lineTraj(5, 1).Validate(0); err != nil {
		t.Fatalf("valid trajectory rejected: %v", err)
	}
	short := &T{Points: []Point{{Time: _t0}}}
	if !errors.Is(short.Validate(0), ErrTooShort) {
		t.Fatal("want ErrTooShort")
	}
	bad := lineTraj(3, 1)
	bad.Points[2].Time = bad.Points[1].Time // duplicate timestamp
	if !errors.Is(bad.Validate(0), ErrNotMonotonic) {
		t.Fatal("want ErrNotMonotonic")
	}
	irr := lineTraj(3, 1)
	irr.Points[2].Time = irr.Points[2].Time.Add(500 * time.Millisecond)
	if !errors.Is(irr.Validate(time.Millisecond), ErrIrregular) {
		t.Fatal("want ErrIrregular")
	}
	if err := irr.Validate(time.Second); err != nil {
		t.Fatalf("tolerant Validate rejected: %v", err)
	}
}

func TestWithPositions(t *testing.T) {
	tr := lineTraj(4, 1)
	newPos := []geo.Point{{X: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	cp, err := tr.WithPositions(newPos)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Points[2].Pos != (geo.Point{X: 2, Y: 2}) {
		t.Fatal("positions not replaced")
	}
	if cp.Points[2].Time != tr.Points[2].Time {
		t.Fatal("timestamps lost")
	}
	if tr.Points[1].Pos.Y != 0 {
		t.Fatal("original mutated")
	}
	if _, err := tr.WithPositions(newPos[:2]); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestStepsSpeedsAccelerations(t *testing.T) {
	// Speeds 1, 3 m/s over 1 s steps -> acceleration 2 m/s^2.
	pos := []geo.Point{{X: 0}, {X: 1}, {X: 4}}
	tr := New(pos, _t0, time.Second)
	steps := tr.Steps()
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Dist != 1 || steps[1].Dist != 3 || steps[0].Angle != 0 {
		t.Fatalf("steps = %+v", steps)
	}
	sp := tr.Speeds()
	if sp[0] != 1 || sp[1] != 3 {
		t.Fatalf("speeds = %v", sp)
	}
	acc := tr.Accelerations()
	if len(acc) != 1 || acc[0] != 2 {
		t.Fatalf("accels = %v", acc)
	}
	if (&T{}).Steps() != nil {
		t.Fatal("empty Steps must be nil")
	}
}

func TestSequenceFeatures(t *testing.T) {
	pos := []geo.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}
	tr := New(pos, _t0, time.Second)
	da := SequenceFeatures(tr, FeatureDistAngle)
	if len(da) != 1 || math.Abs(da[0][0]-5) > 1e-12 {
		t.Fatalf("dist-angle = %v", da)
	}
	if math.Abs(da[0][1]-math.Atan2(4, 3)) > 1e-12 {
		t.Fatalf("angle = %v", da[0][1])
	}
	xy := SequenceFeatures(tr, FeatureDxDy)
	if xy[0][0] != 3 || xy[0][1] != 4 {
		t.Fatalf("dx-dy = %v", xy)
	}
	if SequenceFromPositions(pos[:1], FeatureDxDy) != nil {
		t.Fatal("single point must yield nil sequence")
	}
	if FeatureDistAngle.Dim() != 2 || FeatureDistAngle.String() == "" || FeatureDxDy.String() == "" {
		t.Fatal("feature kind metadata wrong")
	}
}

// TestSequenceGradNumerical checks the analytic feature->position gradient
// against central finite differences for both encodings.
func TestSequenceGradNumerical(t *testing.T) {
	pos := []geo.Point{{X: 0, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 3}, {X: 5, Y: 2}}
	for _, kind := range []FeatureKind{FeatureDistAngle, FeatureDxDy} {
		// Scalar objective: weighted sum of all features.
		weights := [][]float64{{0.3, -0.7}, {1.1, 0.4}, {-0.5, 0.9}}
		objective := func(p []geo.Point) float64 {
			seq := SequenceFromPositions(p, kind)
			var sum float64
			for i, row := range seq {
				sum += weights[i][0]*row[0] + weights[i][1]*row[1]
			}
			return sum
		}
		analytic := SequenceGradToPositions(pos, kind, weights)
		const h = 1e-6
		for i := range pos {
			for axis := 0; axis < 2; axis++ {
				bump := func(delta float64) float64 {
					pp := append([]geo.Point(nil), pos...)
					if axis == 0 {
						pp[i].X += delta
					} else {
						pp[i].Y += delta
					}
					return objective(pp)
				}
				numeric := (bump(h) - bump(-h)) / (2 * h)
				var got float64
				if axis == 0 {
					got = analytic[i].X
				} else {
					got = analytic[i].Y
				}
				if math.Abs(got-numeric) > 1e-5 {
					t.Fatalf("kind %v: grad[%d].axis%d = %v, numeric %v", kind, i, axis, got, numeric)
				}
			}
		}
	}
}

func TestSequenceGradZeroStep(t *testing.T) {
	// A zero-length step must not produce NaN gradients for dist-angle.
	pos := []geo.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	grad := SequenceGradToPositions(pos, FeatureDistAngle, [][]float64{{1, 1}, {1, 1}})
	for i, g := range grad {
		if math.IsNaN(g.X) || math.IsNaN(g.Y) {
			t.Fatalf("grad[%d] is NaN", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	// Constant 2 m/s eastward walk: zero acceleration, zero heading change.
	tr := lineTraj(10, 2)
	m := Summarize(tr)
	if math.Abs(m.MeanSpeed-2) > 1e-9 || m.StdSpeed > 1e-9 {
		t.Fatalf("speed stats: %+v", m)
	}
	if math.Abs(m.MeanAccel) > 1e-9 || m.MaxAbsAccel > 1e-9 {
		t.Fatalf("accel stats: %+v", m)
	}
	if m.HeadingChange != 0 {
		t.Fatalf("heading change = %v", m.HeadingChange)
	}
	if m.StopFraction != 0 {
		t.Fatalf("stop fraction = %v", m.StopFraction)
	}
	if m.EndX != 18 || m.DurationSec != 9 {
		t.Fatalf("location features: %+v", m)
	}
	v := m.Vector()
	if len(v) != MotionVectorDim {
		t.Fatalf("vector dim = %d, want %d", len(v), MotionVectorDim)
	}
	if z := Summarize(&T{}); z.MeanSpeed != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestSummarizeDetectsStops(t *testing.T) {
	// Half the steps stationary.
	pos := make([]geo.Point, 11)
	for i := 1; i < 11; i++ {
		if i%2 == 0 {
			pos[i] = pos[i-1]
		} else {
			pos[i] = geo.Point{X: pos[i-1].X + 1.5, Y: pos[i-1].Y}
		}
	}
	tr := New(pos, _t0, time.Second)
	m := Summarize(tr)
	if m.StopFraction < 0.4 || m.StopFraction > 0.6 {
		t.Fatalf("stop fraction = %v, want ~0.5", m.StopFraction)
	}
}

func TestWindows(t *testing.T) {
	tr := lineTraj(10, 1)
	ws := tr.Windows(4, 3)
	if len(ws) != 3 { // starts 0, 3, 6
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	for i, w := range ws {
		if w.Len() != 4 {
			t.Fatalf("window %d has %d points", i, w.Len())
		}
		if err := w.Validate(0); err != nil {
			t.Fatalf("window %d invalid: %v", i, err)
		}
	}
	if ws[1].Points[0].Pos.X != 3 {
		t.Fatalf("window 1 starts at %v", ws[1].Points[0].Pos)
	}
	// Default stride = size (non-overlapping).
	if got := len(tr.Windows(5, 0)); got != 2 {
		t.Fatalf("non-overlapping windows = %d, want 2", got)
	}
	// Degenerate cases.
	if tr.Windows(1, 1) != nil || tr.Windows(20, 1) != nil {
		t.Fatal("degenerate windows must be nil")
	}
}
