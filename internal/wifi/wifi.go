// Package wifi simulates the WiFi radio environment of a commercial area:
// access-point deployment and the received signal strength (RSSI) a phone
// observes at any position. It replaces the paper's real-world scans.
//
// The propagation model is log-distance path loss plus a *spatially
// correlated* shadowing field per AP (buildings, foliage) plus per-
// measurement white noise (device orientation, interference), quantised to
// integer dBm with a sensing floor. The correlated field is what makes the
// defense work and the attack fail: RSSI varies smoothly over space, so
// nearby historical points predict a fresh measurement well, while a value
// replayed from >= MinD away is statistically inconsistent.
package wifi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"trajforge/internal/geo"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
)

// AP is one deployed access point.
type AP struct {
	ID  int
	MAC string
	Pos geo.Point
	// TxRef is the RSSI at the 1 m reference distance, dBm.
	TxRef float64
	// PathLossExp is the log-distance path-loss exponent.
	PathLossExp float64

	shadow *stats.Field2D
}

// Observation is one AP heard in a scan.
type Observation struct {
	MAC  string `json:"mac"`
	RSSI int    `json:"rssi"` // dBm
}

// Scan is the list of APs heard at one position, strongest first.
type Scan []Observation

// RSSIOf returns the RSSI of mac in the scan and whether it was heard.
func (s Scan) RSSIOf(mac string) (int, bool) {
	for _, o := range s {
		if o.MAC == mac {
			return o.RSSI, true
		}
	}
	return 0, false
}

// TopK returns the k strongest observations (fewer when the scan is small).
func (s Scan) TopK(k int) Scan {
	if k >= len(s) {
		return s
	}
	return s[:k]
}

// Clone returns a deep copy of the scan.
func (s Scan) Clone() Scan { return append(Scan(nil), s...) }

// Config describes a simulated area.
type Config struct {
	// Width, Height of the area in metres.
	Width, Height float64
	// NumAPs deployed uniformly at random.
	NumAPs int
	// TxRefMin/Max bound the per-AP 1 m reference RSSI (dBm).
	TxRefMin, TxRefMax float64
	// PathLossMin/Max bound the per-AP path-loss exponent.
	PathLossMin, PathLossMax float64
	// ShadowSD is the standard deviation of the correlated shadowing field
	// (dB); ShadowCorrLen its correlation length (metres).
	ShadowSD, ShadowCorrLen float64
	// NoiseSD is the per-measurement white noise (dB).
	NoiseSD float64
	// Floor is the sensing floor: APs below it are not reported (dBm).
	Floor int
}

// DefaultConfig returns radio parameters that produce per-point AP counts
// (k) comparable to the paper's Table III in a dense commercial area.
func DefaultConfig(width, height float64, numAPs int) Config {
	return Config{
		Width: width, Height: height,
		NumAPs:   numAPs,
		TxRefMin: -50, TxRefMax: -38,
		PathLossMin: 2.8, PathLossMax: 3.6,
		ShadowSD: 9, ShadowCorrLen: 2.5,
		NoiseSD: 0.8,
		Floor:   -90,
	}
}

// World is a simulated radio environment.
type World struct {
	cfg Config
	aps []*AP
	// grid buckets APs for fast range scans.
	grid     map[[2]int][]*AP
	cellSize float64
	maxRange float64
}

// NewWorld deploys the APs and samples their shadowing fields.
func NewWorld(rng *rand.Rand, cfg Config) (*World, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("wifi: area %gx%g must be positive", cfg.Width, cfg.Height)
	}
	if cfg.NumAPs <= 0 {
		return nil, fmt.Errorf("wifi: need at least one AP, got %d", cfg.NumAPs)
	}
	if cfg.TxRefMax < cfg.TxRefMin || cfg.PathLossMax < cfg.PathLossMin {
		return nil, fmt.Errorf("wifi: inverted parameter ranges")
	}
	w := &World{cfg: cfg}

	// Maximum hearing range given the strongest possible AP with a modest
	// shadowing allowance, capped at the ~100 m an outdoor AP realistically
	// reaches; beyond that the mean signal sits far below the floor and the
	// shadowing fields would cover enormous areas for nothing.
	w.maxRange = math.Min(100, rangeFor(cfg.TxRefMax, cfg.PathLossMin, float64(cfg.Floor)-1.5*cfg.ShadowSD))
	w.cellSize = math.Max(10, w.maxRange/2)
	w.grid = make(map[[2]int][]*AP)

	for i := 0; i < cfg.NumAPs; i++ {
		pos := geo.Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		shadow, err := stats.NewField2D(rng, stats.FieldConfig{
			// The field only needs to cover the AP's hearing disc.
			Width:   2 * w.maxRange,
			Height:  2 * w.maxRange,
			OriginX: pos.X - w.maxRange,
			OriginY: pos.Y - w.maxRange,
			// Correlation and scale of shadowing.
			CorrLength: cfg.ShadowCorrLen,
			StdDev:     cfg.ShadowSD,
		})
		if err != nil {
			return nil, fmt.Errorf("wifi: shadowing field for AP %d: %w", i, err)
		}
		ap := &AP{
			ID:          i,
			MAC:         macFor(i),
			Pos:         pos,
			TxRef:       cfg.TxRefMin + rng.Float64()*(cfg.TxRefMax-cfg.TxRefMin),
			PathLossExp: cfg.PathLossMin + rng.Float64()*(cfg.PathLossMax-cfg.PathLossMin),
			shadow:      shadow,
		}
		w.aps = append(w.aps, ap)
		key := w.cellOf(pos)
		w.grid[key] = append(w.grid[key], ap)
	}
	return w, nil
}

// rangeFor solves tx - 10 n log10(d) = floor for d.
func rangeFor(tx, n, floor float64) float64 {
	return math.Pow(10, (tx-floor)/(10*n))
}

// macFor builds a deterministic locally administered MAC for AP id.
func macFor(id int) string {
	return fmt.Sprintf("02:4e:%02x:%02x:%02x:%02x",
		(id>>24)&0xff, (id>>16)&0xff, (id>>8)&0xff, id&0xff)
}

func (w *World) cellOf(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / w.cellSize)), int(math.Floor(p.Y / w.cellSize))}
}

// NumAPs returns the number of deployed APs.
func (w *World) NumAPs() int { return len(w.aps) }

// Size returns the area dimensions.
func (w *World) Size() (width, height float64) { return w.cfg.Width, w.cfg.Height }

// meanRSSI returns the noise-free expected RSSI of ap at pos.
func (w *World) meanRSSI(ap *AP, pos geo.Point) float64 {
	d := math.Max(1, geo.Dist(ap.Pos, pos))
	return ap.TxRef - 10*ap.PathLossExp*math.Log10(d) + ap.shadow.At(pos.X, pos.Y)
}

// Scan simulates one WiFi scan at pos: every AP whose noisy measurement
// clears the sensing floor is reported, strongest first. rng supplies the
// per-measurement noise, so repeated scans at the same position differ
// slightly — as on a real phone.
func (w *World) Scan(rng *rand.Rand, pos geo.Point) Scan {
	return w.ScanWithDevice(rng, pos, 0)
}

// ScanWithDevice simulates a scan on a device whose radio reads the given
// constant offset (dB) relative to the fleet average — the paper notes RSSI
// is "heavily affected by ... the receiving device itself". A positive
// offset hears more APs; the defense's robustness to heterogeneous fleets
// is exercised by the dataset's DeviceSD knob.
func (w *World) ScanWithDevice(rng *rand.Rand, pos geo.Point, deviceOffset float64) Scan {
	var out Scan
	c := w.cellOf(pos)
	reach := int(math.Ceil(w.maxRange/w.cellSize)) + 1
	for dx := -reach; dx <= reach; dx++ {
		for dy := -reach; dy <= reach; dy++ {
			for _, ap := range w.grid[[2]int{c[0] + dx, c[1] + dy}] {
				if geo.Dist(ap.Pos, pos) > w.maxRange {
					continue
				}
				v := w.meanRSSI(ap, pos) + deviceOffset + stats.Normal(rng, 0, w.cfg.NoiseSD)
				rssi := int(math.Round(v))
				if rssi < w.cfg.Floor {
					continue
				}
				out = append(out, Observation{MAC: ap.MAC, RSSI: rssi})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RSSI != out[j].RSSI {
			return out[i].RSSI > out[j].RSSI
		}
		return out[i].MAC < out[j].MAC
	})
	return out
}

// Upload pairs a trajectory with the WiFi scan collected at each point —
// the P_i = [loc_i, RSSI_i, MAC_i] triples the paper's defense ingests.
// Contributor is the optional uploader identity used for ingestion
// provenance; empty means the legacy anonymous contributor.
type Upload struct {
	Traj        *trajectory.T
	Scans       []Scan
	Contributor string
}

// Validate checks that scans and points line up.
func (u *Upload) Validate() error {
	if u.Traj == nil {
		return fmt.Errorf("wifi: upload has no trajectory")
	}
	if len(u.Scans) != u.Traj.Len() {
		return fmt.Errorf("wifi: %d scans for %d points", len(u.Scans), u.Traj.Len())
	}
	return nil
}

// AverageK returns the mean number of APs heard per point of the upload.
func (u *Upload) AverageK() float64 {
	if len(u.Scans) == 0 {
		return 0
	}
	var sum int
	for _, s := range u.Scans {
		sum += len(s)
	}
	return float64(sum) / float64(len(u.Scans))
}
