package wifi

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
)

// Worlds are expensive to build (one correlated shadowing field per AP),
// so tests share them per seed.
var _worlds = map[int64]*World{}

func testWorld(t *testing.T, seed int64) *World {
	t.Helper()
	if w, ok := _worlds[seed]; ok {
		return w
	}
	rng := rand.New(rand.NewSource(seed))
	w, err := NewWorld(rng, DefaultConfig(200, 170, 300))
	if err != nil {
		t.Fatal(err)
	}
	_worlds[seed] = w
	return w
}

func TestNewWorldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewWorld(rng, Config{Width: 0, Height: 10, NumAPs: 5}); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := NewWorld(rng, DefaultConfig(10, 10, 0)); err == nil {
		t.Fatal("zero APs must error")
	}
	bad := DefaultConfig(10, 10, 5)
	bad.TxRefMin, bad.TxRefMax = -30, -60
	if _, err := NewWorld(rng, bad); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestScanBasics(t *testing.T) {
	w := testWorld(t, 2)
	rng := rand.New(rand.NewSource(3))
	s := w.Scan(rng, geo.Point{X: 100, Y: 85})
	if len(s) == 0 {
		t.Fatal("no APs heard in the middle of a dense area")
	}
	// Sorted strongest-first, all above the floor.
	for i, o := range s {
		if o.RSSI < -90 {
			t.Fatalf("observation below floor: %v", o)
		}
		if i > 0 && s[i-1].RSSI < o.RSSI {
			t.Fatal("scan not sorted by strength")
		}
		if o.MAC == "" {
			t.Fatal("empty MAC")
		}
	}
	// No duplicate MACs.
	seen := map[string]bool{}
	for _, o := range s {
		if seen[o.MAC] {
			t.Fatalf("duplicate MAC %s", o.MAC)
		}
		seen[o.MAC] = true
	}
}

func TestScanKIsPlausible(t *testing.T) {
	// The paper's walking area hears ~29 APs on average; our default
	// parameters should land in the same regime (10-60).
	w := testWorld(t, 4)
	rng := rand.New(rand.NewSource(5))
	var total int
	const trials = 100
	for i := 0; i < trials; i++ {
		p := geo.Point{X: 20 + rng.Float64()*160, Y: 20 + rng.Float64()*130}
		total += len(w.Scan(rng, p))
	}
	avg := float64(total) / trials
	if avg < 8 || avg > 80 {
		t.Fatalf("average k = %v, outside the plausible regime", avg)
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	w := testWorld(t, 6)
	ap := w.aps[0]
	// Noise-free mean RSSI must decay monotonically with distance (up to
	// shadowing, so compare well-separated rings on the same bearing).
	near := w.meanRSSI(ap, geo.Point{X: ap.Pos.X + 2, Y: ap.Pos.Y})
	mid := w.meanRSSI(ap, geo.Point{X: ap.Pos.X + 12, Y: ap.Pos.Y})
	far := w.meanRSSI(ap, geo.Point{X: ap.Pos.X + 40, Y: ap.Pos.Y})
	if near <= mid || mid <= far {
		t.Fatalf("RSSI not decaying: %v, %v, %v", near, mid, far)
	}
}

func TestScanSpatialConsistency(t *testing.T) {
	// Scans 1 m apart must be far more similar than scans 40 m apart:
	// this is the property the paper's defense exploits.
	w := testWorld(t, 7)
	rng := rand.New(rand.NewSource(8))
	var nearDiff, farDiff float64
	var nearN, farN int
	for trial := 0; trial < 40; trial++ {
		p := geo.Point{X: 40 + rng.Float64()*120, Y: 40 + rng.Float64()*90}
		s0 := w.Scan(rng, p)
		s1 := w.Scan(rng, geo.Point{X: p.X + 1, Y: p.Y})
		s2 := w.Scan(rng, geo.Point{X: p.X + 40, Y: p.Y})
		for _, o := range s0 {
			if v, ok := s1.RSSIOf(o.MAC); ok {
				nearDiff += math.Abs(float64(v - o.RSSI))
				nearN++
			}
			if v, ok := s2.RSSIOf(o.MAC); ok {
				farDiff += math.Abs(float64(v - o.RSSI))
				farN++
			}
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("no overlapping APs found")
	}
	if nearDiff/float64(nearN) >= farDiff/float64(farN) {
		t.Fatalf("near diff %v not smaller than far diff %v",
			nearDiff/float64(nearN), farDiff/float64(farN))
	}
}

func TestRepeatedScansDiffer(t *testing.T) {
	w := testWorld(t, 9)
	rng := rand.New(rand.NewSource(10))
	p := geo.Point{X: 100, Y: 85}
	s1 := w.Scan(rng, p)
	s2 := w.Scan(rng, p)
	var diffs, common int
	for _, o := range s1 {
		if v, ok := s2.RSSIOf(o.MAC); ok {
			common++
			if v != o.RSSI {
				diffs++
			}
		}
	}
	if common == 0 {
		t.Fatal("no common APs between repeated scans")
	}
	if diffs == 0 {
		t.Fatal("repeated scans identical; measurement noise missing")
	}
}

func TestScanHelpers(t *testing.T) {
	s := Scan{{MAC: "a", RSSI: -40}, {MAC: "b", RSSI: -60}, {MAC: "c", RSSI: -80}}
	if v, ok := s.RSSIOf("b"); !ok || v != -60 {
		t.Fatal("RSSIOf broken")
	}
	if _, ok := s.RSSIOf("zz"); ok {
		t.Fatal("RSSIOf must miss unknown MAC")
	}
	top := s.TopK(2)
	if len(top) != 2 || top[0].MAC != "a" {
		t.Fatalf("TopK = %v", top)
	}
	if len(s.TopK(10)) != 3 {
		t.Fatal("TopK must clamp")
	}
	cl := s.Clone()
	cl[0].RSSI = 0
	if s[0].RSSI == 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestMACUniqueness(t *testing.T) {
	w := testWorld(t, 11)
	seen := map[string]bool{}
	for _, ap := range w.aps {
		if seen[ap.MAC] {
			t.Fatalf("duplicate MAC %s", ap.MAC)
		}
		seen[ap.MAC] = true
	}
	if w.NumAPs() != 300 {
		t.Fatalf("NumAPs = %d", w.NumAPs())
	}
	if width, height := w.Size(); width != 200 || height != 170 {
		t.Fatalf("Size = %v x %v", width, height)
	}
}

func TestUploadValidate(t *testing.T) {
	tr := trajectory.New([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}},
		time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), time.Second)
	u := &Upload{Traj: tr, Scans: []Scan{{}, {}}}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Upload{Traj: tr, Scans: []Scan{{}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched scans must error")
	}
	if err := (&Upload{}).Validate(); err == nil {
		t.Fatal("nil trajectory must error")
	}
	u2 := &Upload{Traj: tr, Scans: []Scan{{{MAC: "a", RSSI: -50}}, {{MAC: "a", RSSI: -50}, {MAC: "b", RSSI: -60}}}}
	if got := u2.AverageK(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("AverageK = %v", got)
	}
	if (&Upload{}).AverageK() != 0 {
		t.Fatal("empty AverageK must be 0")
	}
}

func TestDeterministicWorld(t *testing.T) {
	rng1 := rand.New(rand.NewSource(20))
	w1, err := NewWorld(rng1, DefaultConfig(120, 100, 80))
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(20))
	w2, err := NewWorld(rng2, DefaultConfig(120, 100, 80))
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 50, Y: 50}
	s1 := w1.Scan(rand.New(rand.NewSource(1)), p)
	s2 := w2.Scan(rand.New(rand.NewSource(1)), p)
	if len(s1) != len(s2) {
		t.Fatal("same seeds produced different worlds")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seeds produced different scans")
		}
	}
}

func TestShadowingMakesRSSIPositionDependent(t *testing.T) {
	// Two positions equidistant from an AP must often see different mean
	// RSSI because of the shadowing field.
	w := testWorld(t, 21)
	var differing int
	for _, ap := range w.aps[:50] {
		a := w.meanRSSI(ap, geo.Point{X: ap.Pos.X + 15, Y: ap.Pos.Y})
		b := w.meanRSSI(ap, geo.Point{X: ap.Pos.X - 15, Y: ap.Pos.Y})
		if math.Abs(a-b) > 2 {
			differing++
		}
	}
	if differing < 10 {
		t.Fatalf("only %d/50 APs show shadowing asymmetry", differing)
	}
}

func TestScanWithDeviceOffset(t *testing.T) {
	w := testWorld(t, 30)
	p := geo.Point{X: 100, Y: 85}
	base := w.ScanWithDevice(rand.New(rand.NewSource(1)), p, 0)
	hot := w.ScanWithDevice(rand.New(rand.NewSource(1)), p, 8)
	if len(hot) < len(base) {
		t.Fatalf("+8 dB device hears fewer APs (%d) than baseline (%d)", len(hot), len(base))
	}
	// Common APs must read ~8 dB hotter (same measurement noise by seed).
	var diffs, n int
	for _, o := range base {
		if v, ok := hot.RSSIOf(o.MAC); ok {
			diffs += v - o.RSSI
			n++
		}
	}
	if n == 0 {
		t.Fatal("no common APs")
	}
	if avg := float64(diffs) / float64(n); avg < 7 || avg > 9 {
		t.Fatalf("device offset shifted RSSIs by %v dB, want ~8", avg)
	}
}
