// Package geo provides planar and geodetic coordinate primitives used by the
// rest of the system: WGS-84 latitude/longitude points, a local East-North-Up
// (ENU) tangent-plane projection, distances, bearings, and polyline helpers.
//
// All simulation work in this repository happens on a local metric plane
// (Point, in metres) anchored at an Origin; LatLon is used only at the API
// boundary where trajectories enter or leave the system, mirroring how a
// location service provider ingests [lat, lon, time] triples.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the spherical
// approximations in this package.
const EarthRadiusMeters = 6371008.8

// LatLon is a WGS-84 geographic coordinate in decimal degrees.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Valid reports whether the coordinate lies in the legal WGS-84 range.
func (ll LatLon) Valid() bool {
	return ll.Lat >= -90 && ll.Lat <= 90 && ll.Lon >= -180 && ll.Lon <= 180 &&
		!math.IsNaN(ll.Lat) && !math.IsNaN(ll.Lon)
}

func (ll LatLon) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", ll.Lat, ll.Lon)
}

// HaversineMeters returns the great-circle distance between two coordinates.
func HaversineMeters(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Point is a position on the local tangent plane, in metres.
type Point struct {
	X float64 `json:"x"` // east, metres
	Y float64 `json:"y"` // north, metres
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in metres.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Bearing returns the direction of the displacement from p to q in radians,
// measured counterclockwise from the +X (east) axis, in (-pi, pi].
// A zero displacement yields 0.
func Bearing(p, q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// AngleDiff returns the signed smallest difference a-b between two angles in
// radians, normalised to (-pi, pi].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d <= -math.Pi {
		d += 2 * math.Pi
	} else if d > math.Pi {
		d -= 2 * math.Pi
	}
	return d
}

// Projection converts between WGS-84 coordinates and a local ENU plane using
// an equirectangular approximation around an anchor point. The approximation
// is accurate to well under GPS noise for the few-kilometre areas simulated
// here.
type Projection struct {
	origin   LatLon
	cosLat   float64
	mPerDeg  float64 // metres per degree of latitude
	mPerDegX float64 // metres per degree of longitude at the origin latitude
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin LatLon) *Projection {
	const degToRad = math.Pi / 180
	cos := math.Cos(origin.Lat * degToRad)
	mPerDeg := EarthRadiusMeters * degToRad
	return &Projection{
		origin:   origin,
		cosLat:   cos,
		mPerDeg:  mPerDeg,
		mPerDegX: mPerDeg * cos,
	}
}

// Origin returns the anchor coordinate of the projection.
func (pr *Projection) Origin() LatLon { return pr.origin }

// ToPlane projects a geographic coordinate onto the local plane.
func (pr *Projection) ToPlane(ll LatLon) Point {
	return Point{
		X: (ll.Lon - pr.origin.Lon) * pr.mPerDegX,
		Y: (ll.Lat - pr.origin.Lat) * pr.mPerDeg,
	}
}

// ToLatLon inverse-projects a plane point back to geographic coordinates.
func (pr *Projection) ToLatLon(p Point) LatLon {
	return LatLon{
		Lat: pr.origin.Lat + p.Y/pr.mPerDeg,
		Lon: pr.origin.Lon + p.X/pr.mPerDegX,
	}
}

// PolylineLength returns the total length of the polyline through pts.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Dist(pts[i-1], pts[i])
	}
	return total
}

// PointAlong walks dist metres along the polyline pts and returns the
// interpolated position. Distances beyond either end clamp to the endpoints.
func PointAlong(pts []Point, dist float64) Point {
	if len(pts) == 0 {
		return Point{}
	}
	if dist <= 0 {
		return pts[0]
	}
	for i := 1; i < len(pts); i++ {
		seg := Dist(pts[i-1], pts[i])
		if dist <= seg && seg > 0 {
			return Lerp(pts[i-1], pts[i], dist/seg)
		}
		dist -= seg
	}
	return pts[len(pts)-1]
}

// Resample returns n points spaced uniformly by arc length along pts,
// including both endpoints. n must be at least 2.
func Resample(pts []Point, n int) []Point {
	if n < 2 || len(pts) == 0 {
		return nil
	}
	total := PolylineLength(pts)
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		out = append(out, PointAlong(pts, frac*total))
	}
	return out
}

// BoundingBox returns the axis-aligned bounding box of pts as (min, max).
// It returns zero points when pts is empty.
func BoundingBox(pts []Point) (Point, Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max := pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}
