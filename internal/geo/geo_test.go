package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLatLonValid(t *testing.T) {
	cases := []struct {
		name string
		ll   LatLon
		want bool
	}{
		{"origin", LatLon{0, 0}, true},
		{"nanjing", LatLon{32.06, 118.79}, true},
		{"north pole", LatLon{90, 0}, true},
		{"lat too big", LatLon{90.01, 0}, false},
		{"lon too small", LatLon{0, -180.5}, false},
		{"nan lat", LatLon{math.NaN(), 0}, false},
		{"nan lon", LatLon{0, math.NaN()}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.ll.Valid(); got != tc.want {
				t.Fatalf("Valid(%v) = %v, want %v", tc.ll, got, tc.want)
			}
		})
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// One degree of latitude is ~111.2 km everywhere.
	a := LatLon{Lat: 32, Lon: 118}
	b := LatLon{Lat: 33, Lon: 118}
	d := HaversineMeters(a, b)
	if !almostEqual(d, 111195, 50) {
		t.Fatalf("1 degree latitude = %.0f m, want ~111195", d)
	}
	if HaversineMeters(a, a) != 0 {
		t.Fatalf("distance to self must be 0")
	}
	if d2 := HaversineMeters(b, a); !almostEqual(d, d2, 1e-9) {
		t.Fatalf("haversine not symmetric: %f vs %f", d, d2)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	origin := LatLon{Lat: 32.0603, Lon: 118.7969} // Nanjing
	pr := NewProjection(origin)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ll := LatLon{
			Lat: origin.Lat + (rng.Float64()-0.5)*0.05,
			Lon: origin.Lon + (rng.Float64()-0.5)*0.05,
		}
		back := pr.ToLatLon(pr.ToPlane(ll))
		if !almostEqual(back.Lat, ll.Lat, 1e-9) || !almostEqual(back.Lon, ll.Lon, 1e-9) {
			t.Fatalf("round trip drifted: %v -> %v", ll, back)
		}
	}
}

func TestProjectionMatchesHaversine(t *testing.T) {
	origin := LatLon{Lat: 32.06, Lon: 118.79}
	pr := NewProjection(origin)
	// Within a few km the planar distance must agree with haversine to <0.1%.
	other := LatLon{Lat: 32.07, Lon: 118.80}
	planar := Dist(pr.ToPlane(origin), pr.ToPlane(other))
	sphere := HaversineMeters(origin, other)
	if math.Abs(planar-sphere)/sphere > 1e-3 {
		t.Fatalf("planar %.2f vs haversine %.2f disagree by >0.1%%", planar, sphere)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Dist(p, q); !almostEqual(got, math.Hypot(2, 6), 1e-12) {
		t.Fatalf("Dist = %v", got)
	}
	if got := Dist2(p, q); !almostEqual(got, 40, 1e-12) {
		t.Fatalf("Dist2 = %v, want 40", got)
	}
}

func TestBearing(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{1, 0}, 0},
		{Point{0, 0}, Point{0, 1}, math.Pi / 2},
		{Point{0, 0}, Point{-1, 0}, math.Pi},
		{Point{0, 0}, Point{0, -1}, -math.Pi / 2},
	}
	for _, tc := range cases {
		if got := Bearing(tc.p, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("Bearing(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		d := AngleDiff(a, b)
		if d <= -math.Pi || d > math.Pi {
			return false
		}
		// a-b and d must differ by a multiple of 2pi.
		k := (a - b - d) / (2 * math.Pi)
		return almostEqual(k, math.Round(k), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := Lerp(p, q, 0); got != p {
		t.Fatalf("Lerp t=0 = %v", got)
	}
	if got := Lerp(p, q, 1); got != q {
		t.Fatalf("Lerp t=1 = %v", got)
	}
	if got := Lerp(p, q, 0.5); got != (Point{5, 10}) {
		t.Fatalf("Lerp t=0.5 = %v", got)
	}
}

func TestPolylineLengthAndPointAlong(t *testing.T) {
	pts := []Point{{0, 0}, {3, 0}, {3, 4}}
	if got := PolylineLength(pts); !almostEqual(got, 7, 1e-12) {
		t.Fatalf("length = %v, want 7", got)
	}
	if got := PointAlong(pts, 0); got != pts[0] {
		t.Fatalf("PointAlong(0) = %v", got)
	}
	if got := PointAlong(pts, 3); got != (Point{3, 0}) {
		t.Fatalf("PointAlong(3) = %v", got)
	}
	if got := PointAlong(pts, 5); got != (Point{3, 2}) {
		t.Fatalf("PointAlong(5) = %v", got)
	}
	if got := PointAlong(pts, 100); got != pts[2] {
		t.Fatalf("PointAlong(beyond) = %v, want clamp to end", got)
	}
	if got := PointAlong(pts, -5); got != pts[0] {
		t.Fatalf("PointAlong(negative) = %v, want clamp to start", got)
	}
	if got := PointAlong(nil, 1); got != (Point{}) {
		t.Fatalf("PointAlong(nil) = %v", got)
	}
}

func TestResample(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}}
	got := Resample(pts, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, p := range got {
		want := Point{X: 2.5 * float64(i)}
		if !almostEqual(p.X, want.X, 1e-9) || !almostEqual(p.Y, 0, 1e-9) {
			t.Fatalf("pt %d = %v, want %v", i, p, want)
		}
	}
	if Resample(pts, 1) != nil {
		t.Fatal("n<2 must return nil")
	}
	if Resample(nil, 5) != nil {
		t.Fatal("empty input must return nil")
	}
}

func TestResamplePreservesEndpointsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		out := Resample(pts, 7)
		return len(out) == 7 &&
			Dist(out[0], pts[0]) < 1e-9 &&
			Dist(out[6], pts[n-1]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox([]Point{{1, 5}, {-2, 3}, {4, -1}})
	if min != (Point{-2, -1}) || max != (Point{4, 5}) {
		t.Fatalf("bbox = %v, %v", min, max)
	}
	min, max = BoundingBox(nil)
	if min != (Point{}) || max != (Point{}) {
		t.Fatalf("empty bbox = %v, %v", min, max)
	}
}
