package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForEachChunkPartitions(t *testing.T) {
	const n = 537
	hits := make([]int32, n)
	ForEachChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
}

func TestMapOrdering(t *testing.T) {
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	_, err := MapErr(50, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("odd %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "odd 1" {
		t.Fatalf("err = %v, want error of index 1", err)
	}
}

func TestMapErrSuccess(t *testing.T) {
	got, err := MapErr(10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrNilOnEmpty(t *testing.T) {
	if _, err := MapErr(0, func(i int) (int, error) { return 0, errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(big) = %d", w)
	}
}
