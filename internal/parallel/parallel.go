// Package parallel is the repo-wide fan-out layer: a GOMAXPROCS-aware
// worker pool over index ranges with deterministic result ordering. The
// verification pipeline is embarrassingly parallel at several granularities
// — uploads within a batch, trajectories within an evaluation, sweep points
// within an experiment — and every call site wants the same three things:
// chunked work distribution (so neighbouring indices share cache lines and
// lock acquisitions), results written by index (so parallel output is
// bit-identical to the serial loop), and zero goroutine overhead when only
// one core is available. The helpers here provide exactly that and nothing
// more: no contexts, no cancellation, no channels in the API.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of goroutines used for n independent tasks:
// GOMAXPROCS, capped by n, never below 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkSize picks the unit of work-stealing: small enough to balance uneven
// tasks across workers, large enough to amortise the atomic fetch.
func chunkSize(n, workers int) int {
	c := n / (workers * 4)
	if c < 1 {
		c = 1
	}
	return c
}

// ForEachChunk partitions [0, n) into contiguous chunks and invokes
// fn(lo, hi) for each, across Workers(n) goroutines. Every index is covered
// exactly once. fn must be safe for concurrent invocation. Call sites that
// need a per-goroutine resource (a lock acquisition, a scratch buffer)
// amortise it over the chunk.
func ForEachChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := chunkSize(n, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0, n) across the worker pool.
func ForEach(n int, fn func(i int)) {
	ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map runs fn over [0, n) in parallel and returns the results in index
// order, identical to the serial loop.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// MapErr is Map for fallible tasks. All tasks run to completion; if any
// fail, the error of the lowest index is returned (deterministic regardless
// of scheduling) and the results are discarded.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errs[i] = fn(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
