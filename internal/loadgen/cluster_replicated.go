package loadgen

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/dataset"
	"trajforge/internal/shardstore"
)

// ClusterReplicatedResult is the measured outcome of the replicated cluster
// scenario; it lands in BENCH_loadgen.json under "cluster_replicated".
type ClusterReplicatedResult struct {
	Seed    int64 `json:"seed"`
	Nodes   int   `json:"nodes"`
	Uploads int   `json:"uploads"`
	Workers int   `json:"workers"`
	// Accepted/Rejected/Errors are verdict counters as in the flat run.
	// Errors must stay zero: the mid-run node kill is absorbed by follower
	// failover, not surfaced to clients.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Errors   int `json:"errors"`
	// End-to-end upload latency through the replicated cluster provider,
	// including the window where the killed node's tiles fail over.
	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`
	// Forwarded/ForwardRatio as in the primary-only scenario; ReplicaReads
	// counts queries answered by a follower, and ReplicaReadRatio is their
	// share of all forwarded answers.
	Forwarded        uint64  `json:"forwarded_requests"`
	ForwardRatio     float64 `json:"forward_ratio"`
	ReplicaReads     uint64  `json:"replica_reads"`
	ReplicaReadRatio float64 `json:"replica_read_ratio"`
	// KilledNode is the busiest tile's primary, closed at the workload
	// midpoint; Repairs counts the background re-replications that followed.
	KilledNode   string `json:"killed_node"`
	Repairs      uint64 `json:"repairs"`
	RetriedCalls uint64 `json:"retried_calls"`
	EpochBefore  uint64 `json:"epoch_before"`
	Epoch        uint64 `json:"epoch"`
	Digest       string `json:"workload_digest"`
}

// RunClusterReplicated mirrors RunCluster with tile replication on: every
// tile lives on a primary and a follower, and at the workload midpoint the
// busiest tile's primary node is killed outright and its tiles
// re-replicated — the run measures the price of surviving that, with
// clients never seeing an error.
func RunClusterReplicated(opts ClusterOptions) (*ClusterReplicatedResult, error) {
	opts.setDefaults()
	w, err := Build(Options{
		Seed: opts.Seed, N: opts.N, Workers: opts.Workers,
		ForgedFrac: opts.ForgedFrac, Points: opts.Points, Hist: opts.Hist,
	})
	if err != nil {
		return nil, err
	}

	nStore := len(w.Hist) * 3 / 4
	records := dataset.Records(w.Hist[:nStore])

	shardCfg := shardstore.DefaultConfig()
	nodes := make(map[string]*cluster.Node, opts.Nodes)
	addrs := make(map[string]string, opts.Nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 1; i <= opts.Nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(id, shardCfg, cluster.NodeOptions{})
		if err != nil {
			return nil, err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	cs, err := cluster.NewStore(cluster.Options{Shard: shardCfg, Nodes: addrs, Replicate: true})
	if err != nil {
		return nil, err
	}
	defer cs.Close()
	cs.Add(records)

	srv, err := w.SelfHostOpts(HostOptions{Seed: opts.Seed, WiFiStore: cs})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	res := &ClusterReplicatedResult{
		Seed: opts.Seed, Nodes: opts.Nodes,
		Uploads: len(w.Items), Workers: opts.Workers,
		EpochBefore: cs.Assignment().Epoch,
		Digest:      w.Digest,
	}

	// Pin the victim before any load runs: the primary of the busiest tile.
	tile, ok := cs.BusiestTile()
	if !ok {
		return nil, fmt.Errorf("loadgen: cluster has no busiest tile")
	}
	victim := cs.Assignment().Owner(tile)
	res.KilledNode = victim

	client := &http.Client{Timeout: 30 * time.Second}
	url := srv.URL + "/v1/trajectory"

	type workerStats struct {
		latencies                  []float64
		accepted, rejected, errors int
	}
	stats := make([]workerStats, opts.Workers)
	// Worker 0 kills the victim just before its item nearest the workload
	// midpoint; the failure window runs on follower reads until the same
	// worker re-replicates the dead node's tiles at the three-quarter mark
	// — all under concurrent load from every other worker.
	killAt := (len(w.Items) / 2 / opts.Workers) * opts.Workers
	repairAt := (len(w.Items) * 3 / 4 / opts.Workers) * opts.Workers
	if repairAt <= killAt {
		repairAt = killAt + opts.Workers
	}
	var killErr error
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := &stats[g]
			for i := g; i < len(w.Items); i += opts.Workers {
				if g == 0 && i == killAt {
					if err := nodes[victim].Close(); err != nil {
						killErr = err
					}
				}
				if g == 0 && i == repairAt {
					if err := cs.Rereplicate(victim); err != nil {
						killErr = fmt.Errorf("rereplicate %s: %w", victim, err)
					}
				}
				t0 := time.Now()
				v, err := postUpload(client, url, "application/json", w.Items[i].Body)
				st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
				switch {
				case err != nil:
					st.errors++
				case v.Accepted:
					st.accepted++
				default:
					st.rejected++
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if killErr != nil {
		return nil, fmt.Errorf("loadgen: mid-run node kill: %w", killErr)
	}

	var all []float64
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		res.Accepted += st.accepted
		res.Rejected += st.rejected
		res.Errors += st.errors
	}
	sort.Float64s(all)
	res.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(w.Items)) / elapsed.Seconds()
	}
	res.P50Millis = percentile(all, 0.50)
	res.P95Millis = percentile(all, 0.95)
	res.P99Millis = percentile(all, 0.99)

	st := srv.Svc.Stats()
	if st.Cluster == nil {
		return nil, fmt.Errorf("loadgen: /v1/stats has no cluster section")
	}
	cst := st.Cluster
	res.Forwarded = cst.Forwarded
	res.ReplicaReads = cst.ReplicaReads
	res.Repairs = cst.Repairs
	res.RetriedCalls = cst.RetriedCalls
	res.Epoch = cst.Epoch
	if total := cst.Forwarded + cst.LocalEmptyAnswers; total > 0 {
		res.ForwardRatio = float64(cst.Forwarded) / float64(total)
	}
	if cst.Forwarded > 0 {
		res.ReplicaReadRatio = float64(cst.ReplicaReads) / float64(cst.Forwarded)
	}
	return res, nil
}
