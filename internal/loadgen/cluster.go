package loadgen

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/dataset"
	"trajforge/internal/shardstore"
)

// ClusterOptions configures the cluster scenario: the same seeded upload
// mix as the flat scenario, but the provider's RSSI backend is a
// multi-node shard cluster over loopback — every feature extraction
// forwards through the coordinator's wire codec to the owning nodes — and
// the busiest tile live-migrates between nodes in the middle of the run.
type ClusterOptions struct {
	// Seed fixes the workload bytes (as in Options).
	Seed int64
	// N is the number of uploads to send. Default 200.
	N int
	// Workers is the sender-pool size. Default 8.
	Workers int
	// Nodes is the shard-node count. Default 3.
	Nodes int
	// ForgedFrac, Points and Hist mirror Options.
	ForgedFrac float64
	Points     int
	Hist       int
}

func (o *ClusterOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.N <= 0 {
		o.N = 200
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.ForgedFrac == 0 {
		o.ForgedFrac = 0.3
	}
	if o.Points <= 0 {
		o.Points = 20
	}
	if o.Hist <= 0 {
		o.Hist = 60
	}
}

// ClusterResult is the measured outcome; it lands in BENCH_loadgen.json
// under "cluster".
type ClusterResult struct {
	Seed    int64 `json:"seed"`
	Nodes   int   `json:"nodes"`
	Uploads int   `json:"uploads"`
	Workers int   `json:"workers"`
	// Accepted/Rejected/Errors are verdict counters as in the flat run.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Errors   int `json:"errors"`
	// End-to-end upload latency through the cluster-backed provider.
	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`
	// Forwarded counts shard RPCs the coordinator sent to nodes;
	// ForwardRatio is the fraction of WiFi-stage queries that needed at
	// least one remote hop (the rest answered locally against provably
	// empty tiles). HaloUpdates counts boundary-tile refreshes.
	Forwarded    uint64  `json:"forwarded_requests"`
	ForwardRatio float64 `json:"forward_ratio"`
	HaloUpdates  uint64  `json:"halo_updates"`
	// Epoch advances past EpochBefore because the run live-migrates the
	// busiest tile at the workload midpoint; Migrations must land at 1.
	EpochBefore uint64 `json:"epoch_before"`
	Epoch       uint64 `json:"epoch"`
	Migrations  uint64 `json:"migrations"`
	// PerNodeTiles is the post-migration tile spread, coordinator's view.
	PerNodeTiles map[string]int `json:"per_node_tiles"`
	Digest       string         `json:"workload_digest"`
}

// RunCluster builds a workload, spins opts.Nodes in-process shard nodes
// plus a coordinator over loopback, points a self-hosted provider's WiFi
// detector at the cluster store (same trained model as a flat run — only
// the backend differs), and drives the upload mix while live-migrating
// the busiest tile mid-run.
func RunCluster(opts ClusterOptions) (*ClusterResult, error) {
	opts.setDefaults()
	w, err := Build(Options{
		Seed: opts.Seed, N: opts.N, Workers: opts.Workers,
		ForgedFrac: opts.ForgedFrac, Points: opts.Points, Hist: opts.Hist,
	})
	if err != nil {
		return nil, err
	}

	// The cluster holds the same records SelfHostOpts trains against, so
	// the swapped backend answers the same queries with the same bits.
	nStore := len(w.Hist) * 3 / 4
	records := dataset.Records(w.Hist[:nStore])

	shardCfg := shardstore.DefaultConfig()
	nodes := make(map[string]*cluster.Node, opts.Nodes)
	addrs := make(map[string]string, opts.Nodes)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 1; i <= opts.Nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(id, shardCfg, cluster.NodeOptions{})
		if err != nil {
			return nil, err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	cs, err := cluster.NewStore(cluster.Options{Shard: shardCfg, Nodes: addrs})
	if err != nil {
		return nil, err
	}
	defer cs.Close()
	cs.Add(records)

	srv, err := w.SelfHostOpts(HostOptions{Seed: opts.Seed, WiFiStore: cs})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	res := &ClusterResult{
		Seed: opts.Seed, Nodes: opts.Nodes,
		Uploads: len(w.Items), Workers: opts.Workers,
		EpochBefore: cs.Assignment().Epoch,
		Digest:      w.Digest,
	}

	// Pin the migration the midpoint fires, before any load runs.
	migTile, ok := cs.BusiestTile()
	if !ok {
		return nil, fmt.Errorf("loadgen: cluster has no busiest tile")
	}
	migFrom := cs.Assignment().Owner(migTile)
	var migTo string
	for id := range nodes {
		if id != migFrom {
			migTo = id
			break
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	url := srv.URL + "/v1/trajectory"

	type workerStats struct {
		latencies                  []float64
		accepted, rejected, errors int
	}
	stats := make([]workerStats, opts.Workers)
	// Worker 0 performs the live migration just before its item nearest
	// the workload midpoint, so the handoff runs under concurrent load
	// from every other worker.
	migAt := (len(w.Items) / 2 / opts.Workers) * opts.Workers
	var migErr error
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := &stats[g]
			for i := g; i < len(w.Items); i += opts.Workers {
				if g == 0 && i == migAt {
					migErr = cs.Migrate(migTile, migTo)
				}
				t0 := time.Now()
				v, err := postUpload(client, url, "application/json", w.Items[i].Body)
				st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
				switch {
				case err != nil:
					st.errors++
				case v.Accepted:
					st.accepted++
				default:
					st.rejected++
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if migErr != nil {
		return nil, fmt.Errorf("loadgen: mid-run migration: %w", migErr)
	}

	var all []float64
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		res.Accepted += st.accepted
		res.Rejected += st.rejected
		res.Errors += st.errors
	}
	sort.Float64s(all)
	res.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(w.Items)) / elapsed.Seconds()
	}
	res.P50Millis = percentile(all, 0.50)
	res.P95Millis = percentile(all, 0.95)
	res.P99Millis = percentile(all, 0.99)

	// Cluster counters ride the same /v1/stats surface operators see.
	st := srv.Svc.Stats()
	if st.Cluster == nil {
		return nil, fmt.Errorf("loadgen: /v1/stats has no cluster section")
	}
	cst := st.Cluster
	res.Forwarded = cst.Forwarded
	res.HaloUpdates = cst.HaloUpdates
	res.Epoch = cst.Epoch
	res.Migrations = cst.Migrations
	if total := cst.Forwarded + cst.LocalEmptyAnswers; total > 0 {
		res.ForwardRatio = float64(cst.Forwarded) / float64(total)
	}
	res.PerNodeTiles = make(map[string]int, len(cst.Nodes))
	for _, ns := range cst.Nodes {
		res.PerNodeTiles[ns.ID] = ns.Tiles
	}
	return res, nil
}
