//go:build race

package loadgen

// raceEnabled reports whether the race detector is compiled in; the
// overload test keeps its latency bound honest only in non-race runs
// (instrumentation multiplies CPU cost ~10x and starves small hosts).
const raceEnabled = true
