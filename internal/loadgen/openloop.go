package loadgen

// This file is the open-loop arrival engine. Unlike the closed-loop
// scenarios — whose fixed worker pools implicitly back off when the server
// slows, hiding coordinated omission — the open-loop engine draws every
// request's send time from a schedule fixed before the run starts: Poisson
// arrivals with a diurnal (two-peak commuter) rate curve over the
// simulated city, dispatched independently of server response times.
// Latency is measured from the *intended* send time, so queueing delay the
// server induces is part of the number, not silently absorbed.
//
// The schedule is generated in *unit time* (mean interarrival = 1) and
// scaled by the offered rate only at dispatch, so the workload digest —
// SHA-256 over every arrival offset and every pre-encoded request body —
// is a pure function of the seed, independent of the capacity measured on
// the host running the sweep.
//
// One run mixes four tagged traffic classes over the city's agents:
//
//	honest        one-shot batch uploads of genuine mobility trips
//	honest_stream /v1/session streaming sessions with a fixed chunk cadence
//	nav_attack    replayed navigation forgeries (internal/attack) with
//	              historical scans replayed from elsewhere in the city
//	spoof_jump    GNSS-spoofing-style teleports: claimed positions jump
//	              mid-track, scans keep reporting the true path
//
// The sweep offers multiples of the measured closed-loop capacity
// (0.25x → 4x), records latency-vs-offered-load curves, shed (429) ratios
// and per-class verdict accuracy, and runs against both the single-process
// provider and a multi-node shard-cluster backend.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/shardstore"
	"trajforge/internal/stream"
	"trajforge/internal/wifi"
)

// Traffic class tags; every event carries exactly one.
const (
	ClassHonest       = "honest"
	ClassHonestStream = "honest_stream"
	ClassNavAttack    = "nav_attack"
	ClassSpoofJump    = "spoof_jump"
)

// OpenLoopOptions configures the open-loop sweep.
type OpenLoopOptions struct {
	// Seed fixes the city, the schedule, and every request byte. Default 1.
	Seed int64
	// Events is the number of arrival events one 1x load point dispatches;
	// points above 1x use a proportionally longer prefix of the same pool.
	// Default 250.
	Events int
	// Multipliers are the offered-load points as multiples of the measured
	// closed-loop capacity. Default {0.25, 0.5, 1, 2, 4}.
	Multipliers []float64
	// Agents, Hist, Points configure the city model (see CityOptions).
	Agents int
	Hist   int
	Points int
	// StreamFrac, NavFrac, SpoofFrac are the traffic class probabilities;
	// the remainder is honest batch uploads. Defaults 0.20, 0.15, 0.10.
	StreamFrac float64
	NavFrac    float64
	SpoofFrac  float64
	// Chunks is the append count per streaming session; ChunkGap is the
	// real-time cadence between a session's requests (clients stream at
	// their own pace regardless of offered load). Defaults 4, 300ms.
	Chunks   int
	ChunkGap time.Duration
	// CalWorkers is the closed-loop calibration pool; it defaults to
	// MaxInFlight so calibration saturates the pipeline without shedding.
	CalWorkers int
	// MaxInFlight/QueueDepth arm the provider's admission control so the
	// ≥1x points shed with 429 instead of queueing without bound.
	// Defaults 8, 16.
	MaxInFlight int
	QueueDepth  int
	// Nodes is the shard-node count of the cluster backend. Default 3.
	Nodes int
	// SkipCluster runs the single-process backend only.
	SkipCluster bool
	// HTTPClient overrides the default tuned client.
	HTTPClient *http.Client
}

func (o *OpenLoopOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Events <= 0 {
		o.Events = 250
	}
	if len(o.Multipliers) == 0 {
		o.Multipliers = []float64{0.25, 0.5, 1, 2, 4}
	}
	if o.Agents <= 0 {
		o.Agents = 120
	}
	if o.Hist <= 0 {
		o.Hist = 90
	}
	if o.Points <= 0 {
		o.Points = 20
	}
	if o.StreamFrac == 0 {
		o.StreamFrac = 0.20
	}
	if o.NavFrac == 0 {
		o.NavFrac = 0.15
	}
	if o.SpoofFrac == 0 {
		o.SpoofFrac = 0.10
	}
	if o.Chunks <= 0 {
		o.Chunks = 4
	}
	if o.Chunks > o.Points {
		o.Chunks = o.Points
	}
	if o.ChunkGap <= 0 {
		o.ChunkGap = 300 * time.Millisecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CalWorkers <= 0 {
		o.CalWorkers = o.MaxInFlight
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
}

// olEvent is one scheduled arrival: a batch upload or a whole streaming
// session, pre-encoded at build time.
type olEvent struct {
	// Unit is the arrival time in unit-rate time (mean interarrival 1);
	// dispatch scales it by the offered event rate.
	Unit  float64
	Class string
	// Expected is the ground-truth verdict (accept for honest classes).
	Expected bool
	// Body is the one-shot upload request (batch classes).
	Body []byte
	// Open/Appends/Close are the session requests (honest_stream only).
	Open    []byte
	Appends [][]byte
	Close   []byte
}

func (e *olEvent) requests() int {
	if e.Class == ClassHonestStream {
		return 2 + len(e.Appends)
	}
	return 1
}

// OpenLoopWorkload is the deterministic open-loop event pool plus the city
// it was generated over.
type OpenLoopWorkload struct {
	City   *City
	Events []olEvent
	// Digest is hex SHA-256 over every event's class, unit-time arrival
	// offset, and request bodies, in pool order — the seed-reproducibility
	// witness. It is independent of the measured capacity by construction.
	Digest string
	// Hist and Projection alias the city's (the self-hosted provider
	// trains from Hist).
	Hist       []*wifi.Upload
	Projection *geo.Projection
	// ClassMix counts pool events per class.
	ClassMix map[string]int
}

// BuildOpenLoop builds the city, draws the unit-time diurnal Poisson
// schedule, and pre-encodes every event's request bytes.
func BuildOpenLoop(opts OpenLoopOptions) (*OpenLoopWorkload, error) {
	opts.setDefaults()
	city, err := BuildCity(CityOptions{
		Seed: opts.Seed, Agents: opts.Agents, Hist: opts.Hist, Points: opts.Points,
	})
	if err != nil {
		return nil, err
	}

	maxMult := 1.0
	for _, m := range opts.Multipliers {
		if m > maxMult {
			maxMult = m
		}
	}
	pool := int(math.Ceil(float64(opts.Events) * maxMult))

	// Nonhomogeneous Poisson arrivals by thinning (Lewis-Shedler): candidate
	// gaps at the envelope rate, accepted with probability λ(hour)/λmax.
	// The normalised curve has unit mean, so the pool spans roughly pool
	// units — one simulated day compressed onto the pool.
	rng := rand.New(rand.NewSource(opts.Seed + 29))
	units := make([]float64, 0, pool)
	t := 0.0
	for len(units) < pool {
		t += rng.ExpFloat64() / diurnalMax
		h := math.Mod(t/float64(pool)*24, 24)
		if rng.Float64()*diurnalMax <= diurnalRate(h)/diurnalMean {
			units = append(units, t)
		}
	}

	w := &OpenLoopWorkload{
		City: city, Hist: city.Hist, Projection: city.Projection,
		ClassMix: make(map[string]int),
	}
	enc := server.NewClient("", city.Projection)
	hash := sha256.New()
	for i := 0; i < pool; i++ {
		a := city.Agents[rng.Intn(len(city.Agents))]
		r := rng.Float64()
		ev := olEvent{Unit: units[i]}
		var u *wifi.Upload
		switch {
		case r < opts.SpoofFrac:
			ev.Class = ClassSpoofJump
			if u, err = city.SpoofJumpUpload(rng, a); err != nil {
				return nil, fmt.Errorf("loadgen: openloop event %d: %w", i, err)
			}
			u.Traj.ID = fmt.Sprintf("ol-spoof-%d", i)
		case r < opts.SpoofFrac+opts.NavFrac:
			ev.Class = ClassNavAttack
			if u, err = city.NavAttackUpload(rng, a, city.Hist); err != nil {
				return nil, fmt.Errorf("loadgen: openloop event %d: %w", i, err)
			}
			u.Traj.ID = fmt.Sprintf("ol-nav-%d", i)
		case r < opts.SpoofFrac+opts.NavFrac+opts.StreamFrac:
			ev.Class = ClassHonestStream
			ev.Expected = true
			if u, err = city.HonestUpload(rng, a); err != nil {
				return nil, fmt.Errorf("loadgen: openloop event %d: %w", i, err)
			}
		default:
			ev.Class = ClassHonest
			ev.Expected = true
			if u, err = city.HonestUpload(rng, a); err != nil {
				return nil, fmt.Errorf("loadgen: openloop event %d: %w", i, err)
			}
			u.Traj.ID = fmt.Sprintf("ol-real-%d", i)
		}

		if ev.Class == ClassHonestStream {
			id := fmt.Sprintf("ol-sess-%04d", i)
			mode := ""
			if u.Traj.Mode != 0 {
				mode = u.Traj.Mode.String()
			}
			if ev.Open, err = json.Marshal(server.SessionOpenRequest{ID: id, Mode: mode}); err != nil {
				return nil, err
			}
			n := u.Traj.Len()
			for c := 0; c < opts.Chunks; c++ {
				lo, hi := c*n/opts.Chunks, (c+1)*n/opts.Chunks
				if lo == hi {
					continue
				}
				req, err := enc.BuildSessionAppend(id, len(ev.Appends), u, lo, hi)
				if err != nil {
					return nil, fmt.Errorf("loadgen: openloop session %d chunk %d: %w", i, c, err)
				}
				body, err := json.Marshal(req)
				if err != nil {
					return nil, err
				}
				ev.Appends = append(ev.Appends, body)
			}
			if ev.Close, err = json.Marshal(server.SessionCloseRequest{SessionID: id}); err != nil {
				return nil, err
			}
		} else {
			req, err := enc.BuildRequest(u)
			if err != nil {
				return nil, fmt.Errorf("loadgen: openloop encode %d: %w", i, err)
			}
			if ev.Body, err = json.Marshal(req); err != nil {
				return nil, err
			}
		}

		hash.Write([]byte(ev.Class))
		var ub [8]byte
		binary.LittleEndian.PutUint64(ub[:], math.Float64bits(ev.Unit))
		hash.Write(ub[:])
		hash.Write(ev.Body)
		hash.Write(ev.Open)
		for _, b := range ev.Appends {
			hash.Write(b)
		}
		hash.Write(ev.Close)

		w.ClassMix[ev.Class]++
		w.Events = append(w.Events, ev)
	}
	w.Digest = hex.EncodeToString(hash.Sum(nil))
	return w, nil
}

// OLClassStats is the per-class slice of one load point. Sent counts
// logical items (a whole session is one item); Shed counts items lost to a
// 429 on any of their requests; Accuracy is correct verdicts over items
// that received one.
type OLClassStats struct {
	Sent      int     `json:"sent"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	Accepted  int     `json:"accepted"`
	Correct   int     `json:"correct"`
	Accuracy  float64 `json:"accuracy"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// OpenLoopPoint is one offered-load point of the latency-vs-load curve.
// All latency percentiles are measured from the *intended* send time of
// each request; P99FromSendMillis is the conventional send-to-response
// figure for comparison — the difference is the coordinated omission a
// closed-loop harness would hide.
type OpenLoopPoint struct {
	Multiplier        float64 `json:"multiplier"`
	OfferedRPS        float64 `json:"offered_rps"`
	Events            int     `json:"events"`
	RequestsScheduled int     `json:"requests_scheduled"`
	RequestsSent      int     `json:"requests_sent"`
	// RequestsSkipped are scheduled requests never sent because their
	// session was abandoned after a shed or error (open-loop clients do
	// not retry; a dead session stays dead).
	RequestsSkipped int     `json:"requests_skipped"`
	Completed       int     `json:"completed"`
	Shed            int     `json:"shed"`
	ShedRatio       float64 `json:"shed_ratio"`
	Errors          int     `json:"errors"`
	DurationSec     float64 `json:"duration_sec"`
	CompletedRPS    float64 `json:"completed_rps"`
	P50Millis       float64 `json:"p50_ms"`
	P95Millis       float64 `json:"p95_ms"`
	P99Millis       float64 `json:"p99_ms"`
	// P99FromSendMillis measures from the actual send instant.
	P99FromSendMillis float64 `json:"p99_from_send_ms"`
	// BatchP99Millis is the p99 (from intended time) of one-shot uploads
	// only — the figure comparable to the closed-loop calibration.
	BatchP99Millis float64 `json:"batch_p99_ms"`
	// DispatchSlackP99Millis is how late the generator itself fired
	// batch/open requests vs their schedule — generator lag, not server
	// queueing. Large values mean the host could not offer the load.
	DispatchSlackP99Millis float64                  `json:"dispatch_slack_p99_ms"`
	Classes                map[string]*OLClassStats `json:"classes"`
}

// OLCalibration is the closed-loop capacity measurement an open-loop
// sweep's multipliers are anchored to.
type OLCalibration struct {
	Uploads             int     `json:"uploads"`
	Workers             int     `json:"workers"`
	CapacityRPS         float64 `json:"capacity_rps"`
	P50Millis           float64 `json:"p50_ms"`
	P99Millis           float64 `json:"p99_ms"`
	SchedSlackP99Millis float64 `json:"sched_slack_p99_ms"`
}

// OLOmissionGap compares open-loop and closed-loop p99 at the same
// throughput in the same run: the measured coordinated-omission gap.
type OLOmissionGap struct {
	Multiplier          float64 `json:"multiplier"`
	ClosedLoopP99Millis float64 `json:"closed_loop_p99_ms"`
	OpenLoopP99Millis   float64 `json:"open_loop_p99_ms"`
	Ratio               float64 `json:"ratio"`
}

// OLBackendResult is one backend's full curve.
type OLBackendResult struct {
	Backend     string           `json:"backend"`
	Nodes       int              `json:"nodes,omitempty"`
	ClosedLoop  *OLCalibration   `json:"closed_loop"`
	Points      []*OpenLoopPoint `json:"points"`
	OmissionGap *OLOmissionGap   `json:"omission_gap,omitempty"`
}

// OpenLoopResult is the "openloop" section of BENCH_openloop.json.
type OpenLoopResult struct {
	Seed           int64          `json:"seed"`
	Agents         int            `json:"agents"`
	Districts      []string       `json:"districts"`
	EventsAt1x     int            `json:"events_at_1x"`
	PoolEvents     int            `json:"pool_events"`
	Multipliers    []float64      `json:"multipliers"`
	ChunkGapMillis float64        `json:"chunk_gap_ms"`
	ClassMix       map[string]int `json:"class_mix"`
	WorkloadDigest string         `json:"workload_digest"`
	Single         *OLBackendResult `json:"single"`
	Cluster        *OLBackendResult `json:"cluster,omitempty"`
}

// RunOpenLoop builds the workload, trains the detector once, and sweeps
// offered load against the single-process backend and (unless skipped) a
// multi-node shard-cluster backend. Every load point gets a fresh provider
// rebuilt around the shared trained model — the replay checker and
// accepted-upload ingestion make providers stateful, so reusing one across
// points would contaminate the curve.
func RunOpenLoop(opts OpenLoopOptions) (*OpenLoopResult, error) {
	opts.setDefaults()
	w, err := BuildOpenLoop(opts)
	if err != nil {
		return nil, err
	}
	det, err := trainDetector(w.Hist, opts.Seed)
	if err != nil {
		return nil, err
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns: 512, MaxIdleConnsPerHost: 512,
			},
		}
	}

	res := &OpenLoopResult{
		Seed: opts.Seed, Agents: opts.Agents,
		EventsAt1x: opts.Events, PoolEvents: len(w.Events),
		Multipliers:    opts.Multipliers,
		ChunkGapMillis: float64(opts.ChunkGap.Milliseconds()),
		ClassMix:       w.ClassMix,
		WorkloadDigest: w.Digest,
	}
	for _, d := range w.City.Districts {
		res.Districts = append(res.Districts, d.Name)
	}

	noBackend := func() (rssimap.Backend, func(), error) { return nil, func() {}, nil }
	if res.Single, err = w.runBackend("single", 0, noBackend, det, opts, client); err != nil {
		return nil, err
	}
	if !opts.SkipCluster {
		nStore := len(w.Hist) * 3 / 4
		records := dataset.Records(w.Hist[:nStore])
		clusterBackend := func() (rssimap.Backend, func(), error) {
			return buildLoopbackCluster(opts.Nodes, records)
		}
		if res.Cluster, err = w.runBackend("cluster", opts.Nodes, clusterBackend, det, opts, client); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// buildLoopbackCluster spins n in-process shard nodes plus a coordinator
// store over loopback and seeds it with the provider's records.
func buildLoopbackCluster(n int, records []rssimap.Record) (rssimap.Backend, func(), error) {
	shardCfg := shardstore.DefaultConfig()
	nodes := make([]*cluster.Node, 0, n)
	addrs := make(map[string]string, n)
	cleanup := func() {
		for _, node := range nodes {
			node.Close()
		}
	}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(id, shardCfg, cluster.NodeOptions{})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			node.Close()
			cleanup()
			return nil, nil, err
		}
		nodes = append(nodes, node)
		addrs[id] = addr.String()
	}
	cs, err := cluster.NewStore(cluster.Options{Shard: shardCfg, Nodes: addrs})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	cs.Add(records)
	all := func() {
		cs.Close()
		cleanup()
	}
	return cs, all, nil
}

// host builds a fresh provider for one calibration run or load point:
// shared trained model, fresh store/replay state, streaming endpoints on,
// admission armed.
func (w *OpenLoopWorkload) host(det *detect.WiFiDetector, backend rssimap.Backend, opts OpenLoopOptions) (*Server, error) {
	return (&Workload{Hist: w.Hist, Projection: w.Projection}).SelfHostOpts(HostOptions{
		Seed:        opts.Seed,
		Detector:    det,
		WiFiStore:   backend,
		MaxInFlight: opts.MaxInFlight,
		QueueDepth:  opts.QueueDepth,
		Stream:      &stream.Config{},
	})
}

func (w *OpenLoopWorkload) runBackend(name string, nodes int,
	newBackend func() (rssimap.Backend, func(), error),
	det *detect.WiFiDetector, opts OpenLoopOptions, client *http.Client) (*OLBackendResult, error) {

	out := &OLBackendResult{Backend: name, Nodes: nodes}

	// Phase 0: closed-loop calibration on a fresh provider. CalWorkers ==
	// MaxInFlight saturates the pipeline without shedding, so the measured
	// rate is the sustainable verdict throughput the multipliers scale.
	calN := opts.Events
	if calN > len(w.Events) {
		calN = len(w.Events)
	}
	var calBodies [][]byte
	for i := 0; i < calN; i++ {
		if w.Events[i].Class != ClassHonestStream {
			calBodies = append(calBodies, w.Events[i].Body)
		}
	}
	backend, cleanup, err := newBackend()
	if err != nil {
		return nil, err
	}
	srv, err := w.host(det, backend, opts)
	if err != nil {
		cleanup()
		return nil, err
	}
	cal := driveClosed(client, srv.URL, calBodies, opts.CalWorkers)
	srv.Close()
	cleanup()
	if cal.CapacityRPS <= 0 {
		return nil, fmt.Errorf("loadgen: %s calibration measured no capacity", name)
	}
	out.ClosedLoop = cal

	for _, m := range opts.Multipliers {
		n := int(float64(opts.Events)*math.Max(1, m) + 0.5)
		if n > len(w.Events) {
			n = len(w.Events)
		}
		events := w.Events[:n]
		totalReqs := 0
		for i := range events {
			totalReqs += events[i].requests()
		}
		// The offered request rate is m x capacity; arrivals are events, so
		// the event rate divides out the session fan-out.
		eventRate := m * cal.CapacityRPS * float64(n) / float64(totalReqs)

		backend, cleanup, err := newBackend()
		if err != nil {
			return nil, err
		}
		srv, err := w.host(det, backend, opts)
		if err != nil {
			cleanup()
			return nil, err
		}
		point := w.runPoint(client, srv.URL, events, eventRate, opts.ChunkGap)
		srv.Close()
		cleanup()
		point.Multiplier = m
		point.OfferedRPS = m * cal.CapacityRPS
		out.Points = append(out.Points, point)
	}

	// The omission gap compares the batch-upload p99 of the highest point
	// offering at least full capacity against the closed-loop p99 measured
	// moments earlier. Under sustained overload the completed throughput
	// saturates at the same capacity the closed loop achieved, so the two
	// p99s describe the same throughput — but the open-loop one charges the
	// queueing a closed-loop driver silently omits.
	var gapPoint *OpenLoopPoint
	for _, p := range out.Points {
		if p.Multiplier >= 1 && (gapPoint == nil || p.Multiplier > gapPoint.Multiplier) {
			gapPoint = p
		}
	}
	if gapPoint != nil {
		g := &OLOmissionGap{
			Multiplier:          gapPoint.Multiplier,
			ClosedLoopP99Millis: cal.P99Millis,
			OpenLoopP99Millis:   gapPoint.BatchP99Millis,
		}
		if cal.P99Millis > 0 {
			g.Ratio = g.OpenLoopP99Millis / g.ClosedLoopP99Millis
		}
		out.OmissionGap = g
	}
	return out, nil
}

// driveClosed is the calibration loop: a fixed worker pool sending batch
// bodies back to back — deliberately closed-loop, so its throughput is the
// capacity anchor and its p99 the number the omission gap is measured
// against.
func driveClosed(client *http.Client, baseURL string, bodies [][]byte, workers int) *OLCalibration {
	url := baseURL + "/v1/trajectory"
	type ws struct {
		lats    []float64
		offsets []float64
	}
	stats := make([]ws, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := &stats[g]
			for i := g; i < len(bodies); i += workers {
				t0 := time.Now()
				st.offsets = append(st.offsets, t0.Sub(start).Seconds())
				var v server.Verdict
				postAny(client, url, bodies[i], &v)
				st.lats = append(st.lats, float64(time.Since(t0).Nanoseconds())/1e6)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats, slacks []float64
	for i := range stats {
		lats = append(lats, stats[i].lats...)
		slacks = append(slacks, schedSlacks(stats[i].offsets, elapsed.Seconds())...)
	}
	sort.Float64s(lats)
	sort.Float64s(slacks)
	cal := &OLCalibration{
		Uploads: len(bodies), Workers: workers,
		P50Millis:           percentile(lats, 0.50),
		P99Millis:           percentile(lats, 0.99),
		SchedSlackP99Millis: percentile(slacks, 0.99) * 1000,
	}
	if elapsed > 0 {
		cal.CapacityRPS = float64(len(bodies)) / elapsed.Seconds()
	}
	return cal
}

// olRec is one scheduled request's record.
type olRec struct {
	class   string
	kind    byte // 'u' upload, 'o' open, 'a' append, 'c' close
	sent    bool
	ok      bool
	shed    bool
	errored bool
	latMs   float64 // from intended send time
	sendMs  float64 // from actual send
	slackMs float64 // actual - intended send instant
}

// olOutcome is one logical item's (upload or whole session) summary.
type olOutcome struct {
	class     string
	expected  bool
	completed bool
	accepted  bool
	shed      bool
	errored   bool
}

// runPoint dispatches the event prefix at the given event rate and
// aggregates one load point. Every event runs in its own goroutine and
// fires at its scheduled instant regardless of how the server is doing —
// the defining property of an open-loop generator.
func (w *OpenLoopWorkload) runPoint(client *http.Client, baseURL string,
	events []olEvent, eventRate float64, gap time.Duration) *OpenLoopPoint {

	type plan struct {
		ev    *olEvent
		times []time.Duration // intended offsets, one per request
		recs  []olRec
	}
	plans := make([]plan, len(events))
	scheduled := 0
	for i := range events {
		ev := &events[i]
		p := plan{ev: ev}
		base := time.Duration(ev.Unit / eventRate * float64(time.Second))
		if ev.Class == ClassHonestStream {
			p.times = append(p.times, base)
			for k := 0; k <= len(ev.Appends); k++ {
				p.times = append(p.times, base+time.Duration(k+1)*gap)
			}
		} else {
			p.times = append(p.times, base)
		}
		p.recs = make([]olRec, len(p.times))
		scheduled += len(p.times)
		plans[i] = p
	}

	outcomes := make([]olOutcome, len(events))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range plans {
		wg.Add(1)
		go func(p *plan, out *olOutcome) {
			defer wg.Done()
			out.class = p.ev.Class
			out.expected = p.ev.Expected
			if p.ev.Class == ClassHonestStream {
				runSessionEvent(client, baseURL, p.ev, p.times, p.recs, start, out)
			} else {
				runBatchEvent(client, baseURL, p.ev, p.times[0], &p.recs[0], start, out)
			}
		}(&plans[i], &outcomes[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	point := &OpenLoopPoint{
		Events:            len(events),
		RequestsScheduled: scheduled,
		DurationSec:       elapsed.Seconds(),
		Classes:           make(map[string]*OLClassStats),
	}
	var lats, sendLats, slacks, batchLats []float64
	classLats := make(map[string][]float64)
	for i := range plans {
		for _, r := range plans[i].recs {
			if !r.sent {
				point.RequestsSkipped++
				continue
			}
			point.RequestsSent++
			switch {
			case r.shed:
				point.Shed++
			case r.errored:
				point.Errors++
			case r.ok:
				point.Completed++
				lats = append(lats, r.latMs)
				sendLats = append(sendLats, r.sendMs)
				classLats[r.class] = append(classLats[r.class], r.latMs)
				if r.kind == 'u' {
					batchLats = append(batchLats, r.latMs)
				}
			}
			if r.kind == 'u' || r.kind == 'o' {
				slacks = append(slacks, r.slackMs)
			}
		}
	}
	for _, o := range outcomes {
		cs := point.Classes[o.class]
		if cs == nil {
			cs = &OLClassStats{}
			point.Classes[o.class] = cs
		}
		cs.Sent++
		switch {
		case o.completed:
			cs.Completed++
			if o.accepted {
				cs.Accepted++
			}
			if o.accepted == o.expected {
				cs.Correct++
			}
		case o.shed:
			cs.Shed++
		case o.errored:
			cs.Errors++
		}
	}
	for cls, cs := range point.Classes {
		if cs.Completed > 0 {
			cs.Accuracy = float64(cs.Correct) / float64(cs.Completed)
		}
		cl := classLats[cls]
		sort.Float64s(cl)
		cs.P50Millis = percentile(cl, 0.50)
		cs.P99Millis = percentile(cl, 0.99)
	}
	if point.RequestsSent > 0 {
		point.ShedRatio = float64(point.Shed) / float64(point.RequestsSent)
	}
	if elapsed > 0 {
		point.CompletedRPS = float64(point.Completed) / elapsed.Seconds()
	}
	sort.Float64s(lats)
	sort.Float64s(sendLats)
	sort.Float64s(slacks)
	sort.Float64s(batchLats)
	point.P50Millis = percentile(lats, 0.50)
	point.P95Millis = percentile(lats, 0.95)
	point.P99Millis = percentile(lats, 0.99)
	point.P99FromSendMillis = percentile(sendLats, 0.99)
	point.BatchP99Millis = percentile(batchLats, 0.99)
	point.DispatchSlackP99Millis = percentile(slacks, 0.99)
	return point
}

func runBatchEvent(client *http.Client, baseURL string, ev *olEvent,
	sched time.Duration, rec *olRec, start time.Time, out *olOutcome) {

	rec.class = ev.Class
	rec.kind = 'u'
	target := start.Add(sched)
	sleepUntil(target)
	t0 := time.Now()
	rec.slackMs = float64(t0.Sub(target).Nanoseconds()) / 1e6
	var v server.Verdict
	status, err := postAny(client, baseURL+"/v1/trajectory", ev.Body, &v)
	now := time.Now()
	rec.sent = true
	rec.latMs = float64(now.Sub(target).Nanoseconds()) / 1e6
	rec.sendMs = float64(now.Sub(t0).Nanoseconds()) / 1e6
	switch {
	case err != nil:
		rec.errored = true
		out.errored = true
	case status == http.StatusTooManyRequests:
		rec.shed = true
		out.shed = true
	case status != http.StatusOK:
		rec.errored = true
		out.errored = true
	default:
		rec.ok = true
		out.completed = true
		out.accepted = v.Accepted
	}
}

// runSessionEvent streams one session at its fixed chunk cadence. Requests
// within a session are ordered, so a slow ack pushes the next chunk past
// its intended time — that lateness is measured (latency is still taken
// from the intended instant), not hidden. A shed or failed request
// abandons the session, as a real client without retry logic would.
func runSessionEvent(client *http.Client, baseURL string, ev *olEvent,
	times []time.Duration, recs []olRec, start time.Time, out *olOutcome) {

	post := func(idx int, kind byte, path string, body []byte, dst any) (int, bool) {
		rec := &recs[idx]
		rec.class = ev.Class
		rec.kind = kind
		target := start.Add(times[idx])
		sleepUntil(target)
		t0 := time.Now()
		rec.slackMs = float64(t0.Sub(target).Nanoseconds()) / 1e6
		status, err := postAny(client, baseURL+path, body, dst)
		now := time.Now()
		rec.sent = true
		rec.latMs = float64(now.Sub(target).Nanoseconds()) / 1e6
		rec.sendMs = float64(now.Sub(t0).Nanoseconds()) / 1e6
		switch {
		case err != nil:
			rec.errored = true
			out.errored = true
			return status, false
		case status == http.StatusTooManyRequests:
			rec.shed = true
			out.shed = true
			return status, false
		case status != http.StatusOK:
			rec.errored = true
			out.errored = true
			return status, false
		}
		rec.ok = true
		return status, true
	}

	var open server.SessionOpenResponse
	if _, ok := post(0, 'o', "/v1/session/open", ev.Open, &open); !ok {
		return
	}
	for k := range ev.Appends {
		var ack server.SessionAppendResponse
		if _, ok := post(1+k, 'a', "/v1/session/append", ev.Appends[k], &ack); !ok {
			return
		}
		if ack.Rejected {
			// Early exit: the provider rejected the prefix outright — that
			// is the session's final verdict.
			out.completed = true
			out.accepted = false
			return
		}
	}
	var v server.Verdict
	if _, ok := post(len(times)-1, 'c', "/v1/session/close", ev.Close, &v); !ok {
		return
	}
	out.completed = true
	out.accepted = v.Accepted
}

func sleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// postAny posts a pre-encoded JSON body and decodes the 200 response into
// out; non-200 statuses are returned without error (the caller classifies
// them), transport failures as err.
func postAny(client *http.Client, url string, body []byte, out any) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// schedSlacks returns each start offset's lateness (seconds, clamped at 0)
// against a uniform schedule at the achieved rate — the per-worker
// coordinated omission of a closed-loop run.
func schedSlacks(offsets []float64, span float64) []float64 {
	n := len(offsets)
	if n == 0 || span <= 0 {
		return nil
	}
	pace := span / float64(n)
	out := make([]float64, 0, n)
	for j, off := range offsets {
		slack := off - float64(j)*pace
		if slack < 0 {
			slack = 0
		}
		out = append(out, slack)
	}
	return out
}
