package loadgen

import (
	"encoding/json"
	"testing"
)

// soakOptions keeps the -race soak quick while still exercising real
// concurrency across the full pipeline.
func soakOptions(t *testing.T) Options {
	opts := Options{Seed: 11, N: 80, Workers: 6, Points: 16, Hist: 40}
	if !testing.Short() {
		opts.N = 160
	}
	_ = t
	return opts
}

// TestWorkloadDeterministic pins the reproducibility contract: the digest
// is a pure function of the options.
func TestWorkloadDeterministic(t *testing.T) {
	opts := Options{Seed: 5, N: 20, Points: 12, Hist: 20}
	a, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests: %s != %s", a.Digest, b.Digest)
	}
	if len(a.Items) != 20 {
		t.Fatalf("built %d items, want 20", len(a.Items))
	}
	var forged int
	for _, it := range a.Items {
		if it.Forged {
			forged++
		}
	}
	if forged == 0 || forged == len(a.Items) {
		t.Fatalf("degenerate mix: %d forged of %d", forged, len(a.Items))
	}

	opts.Seed = 6
	c, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestSoak is the end-to-end soak: a self-hosted provider with the WAL
// enabled, hammered by the concurrent worker pool. Under -race this is the
// concurrency check for the whole upload path (JSON decode, verification
// stages, store ingestion, WAL appender).
func TestSoak(t *testing.T) {
	opts := soakOptions(t)
	w, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := w.SelfHost(opts.Seed, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.BaseURL = srv.URL
	res, err := w.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors: %+v", res.Errors, res)
	}
	if res.Accepted+res.Rejected != res.Uploads {
		t.Fatalf("verdicts %d+%d != %d uploads", res.Accepted, res.Rejected, res.Uploads)
	}
	if res.RealAccepted == 0 {
		t.Fatalf("no real upload accepted: %+v", res)
	}
	if res.ForgedSent == 0 || res.ForgedRejected == 0 {
		t.Fatalf("forgery mix degenerate: %+v", res)
	}
	if res.ThroughputRPS <= 0 || res.P50Millis <= 0 ||
		res.P95Millis < res.P50Millis || res.P99Millis < res.P95Millis {
		t.Fatalf("implausible latency profile: %+v", res)
	}
	if res.WorkloadDigest != w.Digest {
		t.Fatal("result does not carry the workload digest")
	}
	// The result must marshal to the BENCH_loadgen.json schema.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"throughput_rps", "p50_ms", "p95_ms", "p99_ms", "workload_digest"} {
		var m map[string]any
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatal(err)
		}
		if _, ok := m[key]; !ok {
			t.Fatalf("result JSON missing %q: %s", key, blob)
		}
	}
	// Server-side counters must agree with the client's tally.
	st := srv.Svc.Stats()
	if st.Accepted != res.Accepted || st.Rejected != res.Rejected {
		t.Fatalf("server counted %d/%d, client %d/%d",
			st.Accepted, st.Rejected, res.Accepted, res.Rejected)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
