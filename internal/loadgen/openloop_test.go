package loadgen

import (
	"testing"
	"time"
)

func tinyOpenLoopOpts(seed int64) OpenLoopOptions {
	return OpenLoopOptions{
		Seed: seed, Events: 24, Multipliers: []float64{0.5, 2},
		Agents: 14, Hist: 12, Points: 12,
		Chunks: 3, ChunkGap: 60 * time.Millisecond,
	}
}

func TestOpenLoopWorkloadDeterministic(t *testing.T) {
	a, err := BuildOpenLoop(tinyOpenLoopOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildOpenLoop(tinyOpenLoopOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests:\n%s\n%s", a.Digest, b.Digest)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	c, err := BuildOpenLoop(tinyOpenLoopOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced the same digest")
	}
}

func TestOpenLoopScheduleAndMix(t *testing.T) {
	w, err := BuildOpenLoop(tinyOpenLoopOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	// Pool covers the largest multiplier.
	if want := 48; len(w.Events) != want {
		t.Fatalf("pool has %d events, want %d", len(w.Events), want)
	}
	// Arrivals strictly increase (a schedule, not a grab bag).
	for i := 1; i < len(w.Events); i++ {
		if w.Events[i].Unit <= w.Events[i-1].Unit {
			t.Fatalf("arrivals not increasing at %d: %f then %f", i, w.Events[i-1].Unit, w.Events[i].Unit)
		}
	}
	for i := range w.Events {
		ev := &w.Events[i]
		switch ev.Class {
		case ClassHonestStream:
			if ev.Open == nil || ev.Close == nil || len(ev.Appends) == 0 {
				t.Fatalf("event %d: stream event missing requests", i)
			}
			if !ev.Expected {
				t.Fatalf("event %d: honest stream expected-reject", i)
			}
		case ClassHonest:
			if ev.Body == nil || !ev.Expected {
				t.Fatalf("event %d: bad honest event", i)
			}
		case ClassNavAttack, ClassSpoofJump:
			if ev.Body == nil || ev.Expected {
				t.Fatalf("event %d: attack event marked expected-accept", i)
			}
		default:
			t.Fatalf("event %d: unknown class %q", i, ev.Class)
		}
	}
	total := 0
	for _, n := range w.ClassMix {
		total += n
	}
	if total != len(w.Events) {
		t.Fatalf("class mix sums to %d, want %d", total, len(w.Events))
	}
}

// TestOpenLoopSoak drives a miniature open-loop sweep end to end — both
// backends, mixed classes, real HTTP — small enough for -race CI.
func TestOpenLoopSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop soak is slow; run without -short")
	}
	opts := OpenLoopOptions{
		Seed: 2, Events: 20, Multipliers: []float64{0.5, 2},
		Agents: 14, Hist: 12, Points: 12,
		Chunks: 2, ChunkGap: 40 * time.Millisecond,
		Nodes: 2,
	}
	res, err := RunOpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*OLBackendResult{res.Single, res.Cluster} {
		if b == nil {
			t.Fatal("missing backend result")
		}
		if b.ClosedLoop == nil || b.ClosedLoop.CapacityRPS <= 0 {
			t.Fatalf("%s: no calibration capacity", b.Backend)
		}
		if len(b.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", b.Backend, len(b.Points))
		}
		for _, p := range b.Points {
			if p.RequestsSent == 0 {
				t.Fatalf("%s x%.2f: nothing sent", b.Backend, p.Multiplier)
			}
			if p.Completed+p.Shed+p.Errors != p.RequestsSent {
				t.Fatalf("%s x%.2f: accounting mismatch: %d completed + %d shed + %d errors != %d sent",
					b.Backend, p.Multiplier, p.Completed, p.Shed, p.Errors, p.RequestsSent)
			}
			if p.RequestsSent+p.RequestsSkipped != p.RequestsScheduled {
				t.Fatalf("%s x%.2f: %d sent + %d skipped != %d scheduled",
					b.Backend, p.Multiplier, p.RequestsSent, p.RequestsSkipped, p.RequestsScheduled)
			}
			if len(p.Classes) == 0 {
				t.Fatalf("%s x%.2f: no class stats", b.Backend, p.Multiplier)
			}
			for cls, cs := range p.Classes {
				if cs.Sent == 0 {
					t.Fatalf("%s x%.2f: class %s has zero sent", b.Backend, p.Multiplier, cls)
				}
			}
		}
		if b.OmissionGap == nil {
			t.Fatalf("%s: no omission gap recorded", b.Backend)
		}
	}
	if res.WorkloadDigest == "" {
		t.Fatal("no workload digest")
	}
}
