// Package loadgen is a seeded, concurrent load generator for the
// verification server. It simulates a collection area once (road network,
// AP world, crowdsourced history — the same simulators the paper harness
// uses), pre-builds a deterministic mix of real and forged upload request
// bodies, and drives the HTTP API from a worker pool while recording
// per-request latency.
//
// Everything observable about the workload derives from the seed: the
// area, the trajectories, the forgeries, and the exact request bytes —
// Workload.Digest is a SHA-256 over the bodies in index order, so two runs
// with the same options provably generate identical load. Wall-clock only
// enters the measurements, never the workload.
//
// The package doubles as the end-to-end soak: the short-mode test drives a
// self-hosted in-process server under -race, exercising the full pipeline
// (JSON decode, verification stages, ingestion, WAL) under concurrency.
package loadgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"trajforge/internal/dataset"
	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/stream"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

var origin = geo.LatLon{Lat: 32.06, Lon: 118.79}

// Options configures a load run.
type Options struct {
	// Seed fixes the workload bytes. Default 1.
	Seed int64
	// N is the number of uploads to send. Default 200.
	N int
	// Workers is the sender-pool size. Default 8.
	Workers int
	// ForgedFrac is the fraction of uploads that are forgeries (attack-
	// perturbed replays of the provider's own history). Default 0.3.
	ForgedFrac float64
	// Points per trajectory. Default 20.
	Points int
	// Hist is the number of historical uploads backing the provider (and
	// the source pool for forgeries). Default 60.
	Hist int
	// BaseURL is the server to drive. Empty means the caller self-hosts
	// (see Workload.SelfHost).
	BaseURL string
	// Binary posts the pre-encoded binary frames (Content-Type
	// application/x-trajforge-v1) instead of the JSON bodies. The workload
	// digest is unchanged — it is always over the canonical JSON bodies,
	// so a JSON run and a binary run are provably the same logical load.
	Binary bool
	// HTTPClient overrides the default client (e.g. a tuned transport).
	HTTPClient *http.Client
}

func (o *Options) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.N <= 0 {
		o.N = 200
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.ForgedFrac == 0 {
		o.ForgedFrac = 0.3
	}
	if o.Points <= 0 {
		o.Points = 20
	}
	if o.Hist <= 0 {
		o.Hist = 60
	}
}

// Item is one pre-built upload request.
type Item struct {
	// Body is the exact JSON posted to /v1/trajectory.
	Body []byte
	// BinaryBody is the same request as a binary wire frame, posted
	// instead of Body when Options.Binary is set.
	BinaryBody []byte
	// Forged marks attack uploads (ground truth for the detection report).
	Forged bool
}

// Workload is a deterministic request sequence plus the simulated world it
// came from.
type Workload struct {
	// Items in send-index order.
	Items []Item
	// Digest is hex SHA-256 over all bodies in order — the reproducibility
	// witness two equal-seed runs must agree on.
	Digest string
	// Hist is the provider's historical corpus (SelfHost trains from it).
	Hist []*wifi.Upload
	// Projection shared by workload encoding and the self-hosted server.
	Projection *geo.Projection
}

// Build simulates the area and pre-encodes every request body.
func Build(opts Options) (*Workload, error) {
	opts.setDefaults()
	nForged := int(math.Round(float64(opts.N) * opts.ForgedFrac))
	if nForged > opts.N {
		nForged = opts.N
	}
	nReal := opts.N - nForged

	// One simulated campaign covers the provider's history and the fresh
	// real uploads; forgeries are perturbed replays of history.
	area, err := dataset.BuildArea(dataset.AreaSpec{
		Name: "loadgen", Mode: trajectory.ModeWalking,
		Width: 195, Height: 175, NumAPs: 300, BlockSize: 45,
		Trajectories: opts.Hist + nReal,
		Points:       opts.Points, Interval: 2 * time.Second,
		Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: build area: %w", err)
	}
	w := &Workload{
		Hist:       area.Uploads[:opts.Hist],
		Projection: geo.NewProjection(origin),
	}

	// Interleave forged uploads deterministically through the sequence.
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	fresh := area.Uploads[opts.Hist:]
	forgedEvery := 0
	if nForged > 0 {
		forgedEvery = opts.N / nForged
	}
	enc := server.NewClient("", w.Projection)
	var freshIdx, forgedCount int
	for i := 0; i < opts.N; i++ {
		var u *wifi.Upload
		forged := forgedEvery > 0 && forgedCount < nForged && i%forgedEvery == forgedEvery-1
		if forged {
			src := w.Hist[rng.Intn(len(w.Hist))]
			if u, err = dataset.ForgeUpload(rng, src, 1.2); err != nil {
				return nil, fmt.Errorf("loadgen: forge %d: %w", i, err)
			}
			u.Traj.ID = fmt.Sprintf("forged-%d", forgedCount)
			forgedCount++
		} else {
			u = fresh[freshIdx%len(fresh)]
			u.Traj.ID = fmt.Sprintf("real-%d", freshIdx)
			freshIdx++
		}
		req, err := enc.BuildRequest(u)
		if err != nil {
			return nil, fmt.Errorf("loadgen: encode %d: %w", i, err)
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal %d: %w", i, err)
		}
		bin, err := server.EncodeUploadBinary(req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: binary encode %d: %w", i, err)
		}
		w.Items = append(w.Items, Item{Body: body, BinaryBody: bin, Forged: forged})
	}

	h := sha256.New()
	for _, it := range w.Items {
		h.Write(it.Body)
	}
	w.Digest = hex.EncodeToString(h.Sum(nil))
	return w, nil
}

// Server is a self-hosted in-process verification server bootstrapped from
// the workload's own simulated history, so forgeries are forgeries *of
// this provider's* corpus and the detection numbers mean something.
type Server struct {
	Svc *server.Service
	ts  *httptest.Server
	// URL is the base URL to pass to Run.
	URL string
}

// Close shuts the HTTP listener down and takes the final snapshot (when
// the server was opened with a data directory).
func (s *Server) Close() error {
	s.ts.Close()
	return s.Svc.Close()
}

// HostOptions tunes the self-hosted provider beyond the defaults.
type HostOptions struct {
	// Seed drives detector training (forgery generation for the training
	// set).
	Seed int64
	// DataDir, when non-empty, turns on the WAL persistence layer.
	DataDir string
	// MaxInFlight/QueueDepth arm the admission controller (0 = unbounded,
	// the legacy behaviour); UploadTimeout caps per-upload processing.
	MaxInFlight   int
	QueueDepth    int
	UploadTimeout time.Duration
	// ServiceDelay, when positive, injects a blocking delay into the
	// motion stage of every upload. The overload scenario needs admitted
	// uploads to *occupy* the pipeline for a fixed wall-clock time: on a
	// small host, the real sub-millisecond CPU-bound stages run to
	// completion between scheduler preemptions, so concurrent arrivals
	// serialize ahead of the admission gate and the queue never fills.
	// A blocking stage makes pipeline occupancy equal offered concurrency
	// regardless of host parallelism.
	ServiceDelay time.Duration
	// Stream, when set, enables the /v1/session streaming endpoints — the
	// configuration the streaming scenario drives.
	Stream *stream.Config
	// WiFiStore, when set, replaces the trained detector's RSSI backend —
	// model and feature config are unchanged, so verdicts depend only on
	// the backend answering with the same bits. The cluster scenario
	// points this at a multi-node store over the same records.
	WiFiStore rssimap.Backend
	// Detector, when set, skips training and reuses the given model +
	// feature config against a fresh store rebuilt from the workload
	// history (providers are stateful — replay history and accepted-upload
	// ingestion — so the open-loop sweep trains once and rebuilds a clean
	// provider around the shared model at every load point).
	Detector *detect.WiFiDetector
}

// slowMotion is a motion detector that models service time: it blocks
// for a fixed delay and never rejects (so verdicts are unchanged).
type slowMotion struct{ delay time.Duration }

func (m slowMotion) Name() string { return "loadgen-delay" }

func (m slowMotion) ProbReal(*trajectory.T) float64 {
	time.Sleep(m.delay)
	return 1
}

// SelfHost trains a provider over the workload's history and serves the
// verification API in-process. dataDir, when non-empty, turns on the WAL
// persistence layer — the configuration the race soak uses.
func (w *Workload) SelfHost(seed int64, dataDir string) (*Server, error) {
	return w.SelfHostOpts(HostOptions{Seed: seed, DataDir: dataDir})
}

// trainDetector splits hist into a reference store (first 3/4) and a
// training set (held-out real uploads + forgeries of stored ones), and
// trains the WiFi detector every self-hosted provider serves with. The
// returned detector's Store is the fresh reference store.
func trainDetector(hist []*wifi.Upload, seed int64) (*detect.WiFiDetector, error) {
	nStore := len(hist) * 3 / 4
	if nStore == 0 || nStore == len(hist) {
		return nil, fmt.Errorf("loadgen: history too small to split (%d)", len(hist))
	}
	records := dataset.Records(hist[:nStore])
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), records)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 13))
	var fakes []*wifi.Upload
	for _, u := range hist[:nStore/2] {
		f, err := dataset.ForgeUpload(rng, u, 1.2)
		if err != nil {
			return nil, err
		}
		fakes = append(fakes, f)
	}
	det, err := detect.TrainWiFiDetector(store, hist[nStore:], fakes,
		rssimap.DefaultFeatureConfig(), xgb.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("loadgen: train detector: %w", err)
	}
	return det, nil
}

// SelfHostOpts is SelfHost with the provider's resilience knobs exposed —
// the overload scenario runs against a deliberately tiny admitted
// capacity.
func (w *Workload) SelfHostOpts(h HostOptions) (*Server, error) {
	nStore := len(w.Hist) * 3 / 4
	if nStore == 0 || nStore == len(w.Hist) {
		return nil, fmt.Errorf("loadgen: history too small to split (%d)", len(w.Hist))
	}
	var det *detect.WiFiDetector
	var err error
	if h.Detector != nil {
		store, serr := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(w.Hist[:nStore]))
		if serr != nil {
			return nil, serr
		}
		det = &detect.WiFiDetector{Store: store, Model: h.Detector.Model, Features: h.Detector.Features}
	} else if det, err = trainDetector(w.Hist, h.Seed); err != nil {
		return nil, err
	}
	if h.WiFiStore != nil {
		det = &detect.WiFiDetector{Store: h.WiFiStore, Model: det.Model, Features: det.Features}
	}
	replay, err := detect.NewReplayChecker(1.2)
	if err != nil {
		return nil, err
	}
	for _, u := range w.Hist[:nStore] {
		replay.AddHistory(u.Traj)
	}
	var persist *server.Persistence
	if h.DataDir != "" {
		if persist, err = server.OpenPersistence(h.DataDir, server.PersistOptions{}); err != nil {
			return nil, err
		}
	}
	var motion detect.MotionDetector
	if h.ServiceDelay > 0 {
		motion = slowMotion{delay: h.ServiceDelay}
	}
	svc, err := server.New(server.Config{
		Projection:     w.Projection,
		Rules:          detect.NewRuleChecker(),
		Replay:         replay,
		Motion:         motion,
		WiFi:           det,
		IngestAccepted: true,
		Persist:        persist,
		MaxInFlight:    h.MaxInFlight,
		QueueDepth:     h.QueueDepth,
		UploadTimeout:  h.UploadTimeout,
		Stream:         h.Stream,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(svc.Handler())
	return &Server{Svc: svc, ts: ts, URL: ts.URL}, nil
}

// Result is the measured outcome of one run; it marshals to the
// BENCH_loadgen.json schema.
type Result struct {
	Seed           int64   `json:"seed"`
	Uploads        int     `json:"uploads"`
	Workers        int     `json:"workers"`
	ForgedSent     int     `json:"forged_sent"`
	Errors         int     `json:"errors"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	RealAccepted   int     `json:"real_accepted"`
	ForgedRejected int     `json:"forged_rejected"`
	DurationSec    float64 `json:"duration_sec"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Millis      float64 `json:"p50_ms"`
	P95Millis      float64 `json:"p95_ms"`
	P99Millis      float64 `json:"p99_ms"`
	// SchedSlackP99Millis is the p99 of intended-start vs actual-start
	// slack: how late each request began relative to a uniform schedule at
	// the worker's achieved rate. A closed-loop pool only starts a request
	// when the previous response returns, so server slowdowns silently
	// stretch the schedule instead of queueing — this field reports how
	// much coordinated omission the scenario hid (the open-loop harness
	// measures the same effect directly).
	SchedSlackP99Millis float64 `json:"sched_slack_p99_ms"`
	WorkloadDigest      string  `json:"workload_digest"`
	// Wire is the request encoding driven: "json" or "binary".
	Wire string `json:"wire"`
	// StageP99Micros is the server-side per-stage p99 latency (decode,
	// rules, ..., features, score, persist), fetched from /v1/stats after
	// the run. Empty when the stats endpoint was unreachable. Against a
	// shared long-running server the figures include prior traffic.
	StageP99Micros map[string]int64 `json:"stage_p99_micros,omitempty"`
}

// Run drives baseURL with the workload from a pool of opts.Workers senders.
// Worker g sends items g, g+W, g+2W, ... in order, so the byte stream each
// worker produces is deterministic even though the interleaving on the wire
// is not.
func (w *Workload) Run(opts Options) (*Result, error) {
	opts.setDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required (self-host via Workload.SelfHost)")
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := opts.BaseURL + "/v1/trajectory"
	contentType := "application/json"
	if opts.Binary {
		contentType = server.ContentTypeBinary
	}

	type workerStats struct {
		latencies                []float64 // milliseconds
		startOffsets             []float64 // seconds from run start
		errors                   int
		accepted, rejected       int
		realAccept, forgedReject int
	}
	stats := make([]workerStats, opts.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := &stats[g]
			for i := g; i < len(w.Items); i += opts.Workers {
				it := w.Items[i]
				body := it.Body
				if opts.Binary {
					body = it.BinaryBody
				}
				t0 := time.Now()
				st.startOffsets = append(st.startOffsets, t0.Sub(start).Seconds())
				v, err := postUpload(client, url, contentType, body)
				st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
				if err != nil {
					st.errors++
					continue
				}
				if v.Accepted {
					st.accepted++
					if !it.Forged {
						st.realAccept++
					}
				} else {
					st.rejected++
					if it.Forged {
						st.forgedReject++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Seed:           opts.Seed,
		Uploads:        len(w.Items),
		Workers:        opts.Workers,
		DurationSec:    elapsed.Seconds(),
		WorkloadDigest: w.Digest,
	}
	var all, slacks []float64
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		slacks = append(slacks, schedSlacks(st.startOffsets, elapsed.Seconds())...)
		res.Errors += st.errors
		res.Accepted += st.accepted
		res.Rejected += st.rejected
		res.RealAccepted += st.realAccept
		res.ForgedRejected += st.forgedReject
	}
	for _, it := range w.Items {
		if it.Forged {
			res.ForgedSent++
		}
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(w.Items)) / elapsed.Seconds()
	}
	sort.Float64s(all)
	sort.Float64s(slacks)
	res.P50Millis = percentile(all, 0.50)
	res.P95Millis = percentile(all, 0.95)
	res.P99Millis = percentile(all, 0.99)
	res.SchedSlackP99Millis = percentile(slacks, 0.99) * 1000
	res.Wire = "json"
	if opts.Binary {
		res.Wire = "binary"
	}
	res.StageP99Micros = fetchStageP99s(client, opts.BaseURL)
	return res, nil
}

// fetchStageP99s pulls the server-side per-stage tail latencies; a stats
// failure degrades to nil rather than failing the run.
func fetchStageP99s(client *http.Client, baseURL string) map[string]int64 {
	sc := server.NewClient(baseURL, nil)
	sc.HTTPClient = client
	st, err := sc.FetchStats()
	if err != nil {
		return nil
	}
	out := make(map[string]int64, len(st.Stages))
	for name, sg := range st.Stages {
		if sg.Count > 0 {
			out[name] = sg.P99Micros
		}
	}
	return out
}

// postUpload sends one pre-encoded body and decodes the verdict.
func postUpload(client *http.Client, url, contentType string, body []byte) (*server.Verdict, error) {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var v server.Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// percentile returns the q-quantile of sorted (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
