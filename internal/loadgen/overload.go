package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// OverloadOptions configures the overload scenario: a self-hosted
// provider with a deliberately tiny admitted capacity, hammered by a
// sender pool several times larger. Offered concurrency divided by
// MaxInFlight is the overload factor; the defaults give 16/2 = 8x, well
// past the 4x the scenario promises.
type OverloadOptions struct {
	// Seed fixes the workload bytes (as in Options).
	Seed int64
	// N is the number of uploads offered in the overload phase. Default 160.
	N int
	// Warmup is the number of serial uncontended uploads measured first to
	// fix the baseline p99. Default 24.
	Warmup int
	// Workers is the overload sender-pool size. Default 16.
	Workers int
	// MaxInFlight and QueueDepth bound the provider's admission. Defaults
	// 2 and 2: capacity 4 requests on the premises at once.
	MaxInFlight int
	QueueDepth  int
	// ServiceDelay is the blocking per-upload service time injected into
	// the pipeline (see HostOptions.ServiceDelay); it makes pipeline
	// occupancy track offered concurrency even on a single-CPU host.
	// Default 5ms.
	ServiceDelay time.Duration
	// Points and Hist mirror Options. Defaults 20 and 60.
	Points int
	Hist   int
}

func (o *OverloadOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.N <= 0 {
		o.N = 160
	}
	if o.Warmup <= 0 {
		o.Warmup = 24
	}
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2
	}
	if o.ServiceDelay <= 0 {
		o.ServiceDelay = 5 * time.Millisecond
	}
	if o.Points <= 0 {
		o.Points = 20
	}
	if o.Hist <= 0 {
		o.Hist = 60
	}
}

// OverloadResult is the measured outcome; it lands in BENCH_loadgen.json
// under "overload".
type OverloadResult struct {
	Seed        int64 `json:"seed"`
	Offered     int   `json:"offered"`
	Workers     int   `json:"workers"`
	MaxInFlight int   `json:"max_inflight"`
	QueueDepth  int   `json:"queue_depth"`
	// Admitted is the number of overload-phase uploads that got a verdict
	// (HTTP 200); Shed is 429s; Errors is everything else.
	Admitted int `json:"admitted"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
	// RetryAfterMissing counts 429s that arrived without a Retry-After
	// header (must be 0).
	RetryAfterMissing int `json:"retry_after_missing"`
	// UncontendedP99Millis is the warmup baseline; AdmittedP99Millis is
	// the p99 over admitted (200) overload-phase uploads only — the bound
	// the scenario asserts. Shed requests answer in microseconds and are
	// excluded.
	UncontendedP99Millis float64 `json:"uncontended_p99_ms"`
	AdmittedP99Millis    float64 `json:"admitted_p99_ms"`
	// Accounting cross-check from /v1/stats: every request offered in
	// either phase was admitted or shed, nothing vanished.
	StatsAdmitted int64  `json:"stats_admitted"`
	StatsShed     int64  `json:"stats_shed"`
	AccountingOK  bool   `json:"accounting_ok"`
	Digest        string `json:"workload_digest"`
}

// RunOverload builds a workload, self-hosts a capacity-starved provider,
// measures an uncontended baseline, then offers ≥4x the admitted
// capacity and verifies the provider sheds instead of queueing without
// bound: 429s carry Retry-After, admitted latency stays bounded, and the
// admission counters account for every request offered.
func RunOverload(opts OverloadOptions) (*OverloadResult, error) {
	opts.setDefaults()
	w, err := Build(Options{
		Seed: opts.Seed, N: opts.Warmup + opts.N,
		Points: opts.Points, Hist: opts.Hist,
	})
	if err != nil {
		return nil, err
	}
	srv, err := w.SelfHostOpts(HostOptions{
		Seed:         opts.Seed,
		MaxInFlight:  opts.MaxInFlight,
		QueueDepth:   opts.QueueDepth,
		ServiceDelay: opts.ServiceDelay,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	url := srv.URL + "/v1/trajectory"

	res := &OverloadResult{
		Seed: opts.Seed, Offered: opts.N, Workers: opts.Workers,
		MaxInFlight: opts.MaxInFlight, QueueDepth: opts.QueueDepth,
		Digest: w.Digest,
	}

	// Phase 1 — uncontended baseline: one request in flight at a time can
	// never queue, so its latency is pure pipeline time.
	var warm []float64
	for _, it := range w.Items[:opts.Warmup] {
		t0 := time.Now()
		code, _, err := post(client, url, it.Body)
		if err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("loadgen: warmup upload failed (code %d): %v", code, err)
		}
		warm = append(warm, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	sort.Float64s(warm)
	res.UncontendedP99Millis = percentile(warm, 0.99)

	// Phase 2 — overload: Workers closed-loop senders against a capacity
	// of MaxInFlight+QueueDepth premises. No client retries here: a shed
	// request must surface as exactly one 429.
	type outcome struct {
		admitted, shed, errors, noRetryAfter int
		latencies                            []float64 // admitted only
	}
	items := w.Items[opts.Warmup:]
	outs := make([]outcome, opts.Workers)
	var wg sync.WaitGroup
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o := &outs[g]
			for i := g; i < len(items); i += opts.Workers {
				t0 := time.Now()
				code, retryAfter, err := post(client, url, items[i].Body)
				ms := float64(time.Since(t0).Nanoseconds()) / 1e6
				switch {
				case err != nil:
					o.errors++
				case code == http.StatusOK:
					o.admitted++
					o.latencies = append(o.latencies, ms)
				case code == http.StatusTooManyRequests:
					o.shed++
					if retryAfter == "" {
						o.noRetryAfter++
					}
				default:
					o.errors++
				}
			}
		}(g)
	}
	wg.Wait()

	var admittedLat []float64
	for i := range outs {
		o := &outs[i]
		res.Admitted += o.admitted
		res.Shed += o.shed
		res.Errors += o.errors
		res.RetryAfterMissing += o.noRetryAfter
		admittedLat = append(admittedLat, o.latencies...)
	}
	sort.Float64s(admittedLat)
	res.AdmittedP99Millis = percentile(admittedLat, 0.99)

	// Accounting: the provider's own counters must cover every request
	// offered across both phases — admitted + shed = offered, no request
	// unaccounted for.
	st := srv.Svc.Stats()
	if st.Admission == nil {
		return nil, fmt.Errorf("loadgen: admission stats missing")
	}
	a := st.Admission
	res.StatsAdmitted = a.Admitted
	res.StatsShed = a.ShedQueueFull + a.ShedDeadline + a.DeadlineExceeded
	offeredTotal := int64(opts.Warmup + opts.N)
	res.AccountingOK = res.StatsAdmitted+res.StatsShed == offeredTotal &&
		res.StatsAdmitted == int64(opts.Warmup+res.Admitted) &&
		res.Admitted+res.Shed+res.Errors == opts.N
	return res, nil
}

// post sends one body and reports (status, Retry-After header, error);
// the body is drained so connections are reused.
func post(client *http.Client, url string, body []byte) (int, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&sink)
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}
