package loadgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"trajforge/internal/dataset"
	"trajforge/internal/geo"
	"trajforge/internal/server"
	"trajforge/internal/stream"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// This file is the streaming-session scenario: many concurrent sessions,
// their chunk appends interleaved, a deterministic mix of real and forged
// trajectories, per-chunk latency percentiles. Like the batch workload,
// every request body is pre-encoded and digested, so equal seeds provably
// offer identical load.

// StreamOptions configures the streaming scenario.
type StreamOptions struct {
	// Seed fixes the workload bytes. Default 1.
	Seed int64
	// Sessions is the number of streaming sessions. Default 24.
	Sessions int
	// Chunks is the number of appends each session's trajectory is split
	// into. Default 4.
	Chunks int
	// Workers is the sender-pool size; each worker drives its sessions'
	// chunks round-robin, so appends interleave within a worker and race
	// across workers. Default 6.
	Workers int
	// ForgedFrac is the fraction of forged sessions. Default 0.25.
	ForgedFrac float64
	// Points per trajectory. Default 20.
	Points int
	// Hist is the number of historical uploads backing the provider.
	// Default 60.
	Hist int
	// BaseURL is the server to drive. Empty means RunStream self-hosts.
	BaseURL string
	// DataDir, when self-hosting, turns on the WAL persistence layer —
	// session frames included.
	DataDir string
	// HTTPClient overrides the default client.
	HTTPClient *http.Client
}

func (o *StreamOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sessions <= 0 {
		o.Sessions = 24
	}
	if o.Chunks <= 0 {
		o.Chunks = 4
	}
	if o.Workers <= 0 {
		o.Workers = 6
	}
	if o.ForgedFrac == 0 {
		o.ForgedFrac = 0.25
	}
	if o.Points <= 0 {
		o.Points = 20
	}
	if o.Hist <= 0 {
		o.Hist = 60
	}
	if o.Chunks > o.Points {
		o.Chunks = o.Points
	}
}

// StreamSession is one pre-encoded session: the exact bytes of its open,
// append, and close requests.
type StreamSession struct {
	ID string
	// Open, Appends (in seq order), and Close are the request bodies.
	Open    []byte
	Appends [][]byte
	Close   []byte
	// Forged marks attack sessions (ground truth for the detection report).
	Forged bool
}

// StreamWorkload is a deterministic session sequence plus the simulated
// world it came from; the embedded Workload carries the history the
// self-hosted provider trains from.
type StreamWorkload struct {
	*Workload
	Sessions []StreamSession
	// StreamDigest is hex SHA-256 over every session's bodies in order.
	StreamDigest string
}

// BuildStream simulates the area and pre-encodes every session request.
func BuildStream(opts StreamOptions) (*StreamWorkload, error) {
	opts.setDefaults()
	nForged := int(math.Round(float64(opts.Sessions) * opts.ForgedFrac))
	if nForged > opts.Sessions {
		nForged = opts.Sessions
	}
	nReal := opts.Sessions - nForged

	area, err := dataset.BuildArea(dataset.AreaSpec{
		Name: "loadgen-stream", Mode: trajectory.ModeWalking,
		Width: 195, Height: 175, NumAPs: 300, BlockSize: 45,
		Trajectories: opts.Hist + nReal,
		Points:       opts.Points, Interval: 2 * time.Second,
		Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: build stream area: %w", err)
	}
	w := &StreamWorkload{Workload: &Workload{
		Hist:       area.Uploads[:opts.Hist],
		Projection: geo.NewProjection(origin),
	}}

	rng := rand.New(rand.NewSource(opts.Seed + 17))
	fresh := area.Uploads[opts.Hist:]
	forgedEvery := 0
	if nForged > 0 {
		forgedEvery = opts.Sessions / nForged
	}
	enc := server.NewClient("", w.Projection)
	h := sha256.New()
	var freshIdx, forgedCount int
	for i := 0; i < opts.Sessions; i++ {
		var u *wifi.Upload
		forged := forgedEvery > 0 && forgedCount < nForged && i%forgedEvery == forgedEvery-1
		if forged {
			src := w.Hist[rng.Intn(len(w.Hist))]
			if u, err = dataset.ForgeUpload(rng, src, 1.2); err != nil {
				return nil, fmt.Errorf("loadgen: forge session %d: %w", i, err)
			}
			forgedCount++
		} else {
			u = fresh[freshIdx%len(fresh)]
			freshIdx++
		}
		ss := StreamSession{ID: fmt.Sprintf("stream-%04d", i), Forged: forged}
		mode := ""
		if u.Traj.Mode != 0 {
			mode = u.Traj.Mode.String()
		}
		if ss.Open, err = json.Marshal(server.SessionOpenRequest{ID: ss.ID, Mode: mode}); err != nil {
			return nil, err
		}
		n := u.Traj.Len()
		for c := 0; c < opts.Chunks; c++ {
			lo, hi := c*n/opts.Chunks, (c+1)*n/opts.Chunks
			if lo == hi {
				continue
			}
			req, err := enc.BuildSessionAppend(ss.ID, len(ss.Appends), u, lo, hi)
			if err != nil {
				return nil, fmt.Errorf("loadgen: encode session %d chunk %d: %w", i, c, err)
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			ss.Appends = append(ss.Appends, body)
		}
		if ss.Close, err = json.Marshal(server.SessionCloseRequest{SessionID: ss.ID}); err != nil {
			return nil, err
		}
		h.Write(ss.Open)
		for _, b := range ss.Appends {
			h.Write(b)
		}
		h.Write(ss.Close)
		w.Sessions = append(w.Sessions, ss)
	}
	w.StreamDigest = hex.EncodeToString(h.Sum(nil))
	return w, nil
}

// StreamResult is the measured outcome; it nests under "stream" in the
// BENCH_loadgen.json schema.
type StreamResult struct {
	Seed             int64 `json:"seed"`
	Sessions         int   `json:"sessions"`
	ChunksPerSession int   `json:"chunks_per_session"`
	Workers          int   `json:"workers"`
	ForgedSent       int   `json:"forged_sent"`
	// ChunksSent counts append requests actually sent — early-exited
	// sessions stop streaming, so this can undershoot Sessions*Chunks.
	ChunksSent int `json:"chunks_sent"`
	Errors     int `json:"errors"`
	// EarlyExits counts sessions the provider rejected mid-stream.
	EarlyExits     int     `json:"early_exits"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	RealAccepted   int     `json:"real_accepted"`
	ForgedRejected int     `json:"forged_rejected"`
	DurationSec    float64 `json:"duration_sec"`
	// ChunkThroughputRPS is append requests per second across the run.
	ChunkThroughputRPS float64 `json:"chunk_throughput_rps"`
	// Chunk append latency percentiles, milliseconds.
	ChunkP50Millis float64 `json:"chunk_p50_ms"`
	ChunkP95Millis float64 `json:"chunk_p95_ms"`
	ChunkP99Millis float64 `json:"chunk_p99_ms"`
	WorkloadDigest string  `json:"workload_digest"`
}

// Run drives baseURL with the session workload. Worker g owns sessions
// g, g+W, g+2W, ...: it opens them all, then appends their chunks
// round-robin (chunk 0 of each, chunk 1 of each, ...), then closes them in
// order — so appends of different sessions interleave in every worker's
// request stream, and workers race each other on the wire.
func (w *StreamWorkload) Run(opts StreamOptions) (*StreamResult, error) {
	opts.setDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required (self-host via RunStream)")
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	type workerStats struct {
		latencies                []float64 // chunk append milliseconds
		chunksSent, errors       int
		earlyExits               int
		accepted, rejected       int
		realAccept, forgedReject int
	}
	stats := make([]workerStats, opts.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < opts.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := &stats[g]
			var mine []int
			for i := g; i < len(w.Sessions); i += opts.Workers {
				mine = append(mine, i)
			}
			rejected := make(map[int]bool)
			failed := make(map[int]bool)
			for _, i := range mine {
				var open server.SessionOpenResponse
				if err := postStream(client, opts.BaseURL+"/v1/session/open", w.Sessions[i].Open, &open); err != nil {
					st.errors++
					failed[i] = true
				}
			}
			maxChunks := 0
			for _, i := range mine {
				if n := len(w.Sessions[i].Appends); n > maxChunks {
					maxChunks = n
				}
			}
			for c := 0; c < maxChunks; c++ {
				for _, i := range mine {
					if failed[i] || rejected[i] || c >= len(w.Sessions[i].Appends) {
						continue
					}
					var ack server.SessionAppendResponse
					t0 := time.Now()
					err := postStream(client, opts.BaseURL+"/v1/session/append", w.Sessions[i].Appends[c], &ack)
					st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
					st.chunksSent++
					if err != nil {
						st.errors++
						failed[i] = true
						continue
					}
					if ack.Rejected {
						rejected[i] = true
						st.earlyExits++
					}
				}
			}
			for _, i := range mine {
				if failed[i] {
					continue
				}
				var v server.Verdict
				if err := postStream(client, opts.BaseURL+"/v1/session/close", w.Sessions[i].Close, &v); err != nil {
					st.errors++
					continue
				}
				if v.Accepted {
					st.accepted++
					if !w.Sessions[i].Forged {
						st.realAccept++
					}
				} else {
					st.rejected++
					if w.Sessions[i].Forged {
						st.forgedReject++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &StreamResult{
		Seed:             opts.Seed,
		Sessions:         len(w.Sessions),
		ChunksPerSession: opts.Chunks,
		Workers:          opts.Workers,
		DurationSec:      elapsed.Seconds(),
		WorkloadDigest:   w.StreamDigest,
	}
	var all []float64
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		res.ChunksSent += st.chunksSent
		res.Errors += st.errors
		res.EarlyExits += st.earlyExits
		res.Accepted += st.accepted
		res.Rejected += st.rejected
		res.RealAccepted += st.realAccept
		res.ForgedRejected += st.forgedReject
	}
	for _, ss := range w.Sessions {
		if ss.Forged {
			res.ForgedSent++
		}
	}
	if elapsed > 0 {
		res.ChunkThroughputRPS = float64(res.ChunksSent) / elapsed.Seconds()
	}
	sort.Float64s(all)
	res.ChunkP50Millis = percentile(all, 0.50)
	res.ChunkP95Millis = percentile(all, 0.95)
	res.ChunkP99Millis = percentile(all, 0.99)
	return res, nil
}

// RunStream builds the session workload, self-hosts a streaming-enabled
// provider (unless opts.BaseURL targets one), and drives it.
func RunStream(opts StreamOptions) (*StreamResult, error) {
	opts.setDefaults()
	w, err := BuildStream(opts)
	if err != nil {
		return nil, err
	}
	if opts.BaseURL == "" {
		srv, err := w.SelfHostOpts(HostOptions{
			Seed:    opts.Seed,
			DataDir: opts.DataDir,
			Stream:  &stream.Config{},
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		opts.BaseURL = srv.URL
	}
	return w.Run(opts)
}

// postStream sends one pre-encoded session request and decodes the 200
// response into out.
func postStream(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
