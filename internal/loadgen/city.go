package loadgen

// This file is the city model behind the open-loop scenario: one simulated
// city (radio world + road network) partitioned into districts, each with
// its own transportation mode mix, populated by a fixed roster of agents.
// Everything — district assignment, agent modes, home locations, every
// trip — derives from the seed, so the open-loop workload built on top is
// reproducible byte for byte.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/nav"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// District is one zone of the simulated city. Districts partition the road
// network into vertical bands (in city x-order) and give the agents homed
// there a distinct transport mode mix — the old town walks, the campus
// cycles, the arterial strip drives.
type District struct {
	Name string
	// Weight is the district's share of the agent population.
	Weight float64
	// Walk, Cycle, Drive are the (relative) probabilities that a trip by
	// one of the district's agents uses that mode.
	Walk, Cycle, Drive float64
}

// DefaultDistricts is the three-district city the BENCH harness uses.
func DefaultDistricts() []District {
	return []District{
		{Name: "oldtown", Weight: 0.40, Walk: 0.70, Cycle: 0.20, Drive: 0.10},
		{Name: "campus", Weight: 0.35, Walk: 0.25, Cycle: 0.55, Drive: 0.20},
		{Name: "arterial", Weight: 0.25, Walk: 0.10, Cycle: 0.20, Drive: 0.70},
	}
}

// CityOptions configures BuildCity.
type CityOptions struct {
	// Seed fixes everything observable about the city. Default 1.
	Seed int64
	// Agents is the roster size. Default 120.
	Agents int
	// Hist is the number of historical uploads collected from the agents
	// (the corpus the self-hosted provider trains from). Default 90.
	Hist int
	// Points per trajectory and the sampling interval. Defaults 20, 2s.
	Points   int
	Interval time.Duration
	// Width, Height, NumAPs, BlockSize describe the simulated area.
	// Defaults 320x260 m, 360 APs, 55 m blocks — larger than the paper's
	// single-mode collection areas so driving trips fit and trip routes
	// are diverse enough that honest traffic is not a replay of itself.
	Width, Height float64
	NumAPs        int
	BlockSize     float64
	// Districts defaults to DefaultDistricts.
	Districts []District
}

func (o *CityOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Agents <= 0 {
		o.Agents = 120
	}
	if o.Hist <= 0 {
		o.Hist = 90
	}
	if o.Points <= 0 {
		o.Points = 20
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Width <= 0 {
		o.Width = 320
	}
	if o.Height <= 0 {
		o.Height = 260
	}
	if o.NumAPs <= 0 {
		o.NumAPs = 360
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 55
	}
	if len(o.Districts) == 0 {
		o.Districts = DefaultDistricts()
	}
}

// Agent is one simulated inhabitant: homed in a district, with a fixed
// preferred transport mode drawn from the district's mix.
type Agent struct {
	ID       int
	District int
	Mode     trajectory.Mode
	// Home is a road-network node inside the district's band; trips start
	// near it.
	Home geo.Point
}

// City is the built model: the shared radio world and road network, the
// district partition, the agent roster, and the historical corpus the
// provider trains from.
type City struct {
	Opts      CityOptions
	World     *wifi.World
	Graph     *roadnet.Graph
	Nav       *nav.Service
	Districts []District
	Agents    []Agent
	// Hist holds honest historical trips by the city's own agents, mixed
	// modes, in collection order.
	Hist []*wifi.Upload
	// Projection shared by workload encoding and the self-hosted server.
	Projection *geo.Projection
	// bandNodes[d] lists the road-network node ids inside district d.
	bandNodes [][]int
}

var cityStart = time.Date(2022, 6, 15, 8, 0, 0, 0, time.UTC)

// BuildCity simulates the city and collects the historical corpus.
func BuildCity(opts CityOptions) (*City, error) {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	world, err := wifi.NewWorld(rng, wifi.DefaultConfig(opts.Width, opts.Height, opts.NumAPs))
	if err != nil {
		return nil, fmt.Errorf("loadgen: city world: %w", err)
	}
	roadCfg := roadnet.DefaultConfig()
	roadCfg.Width = opts.Width
	roadCfg.Height = opts.Height
	roadCfg.BlockSize = opts.BlockSize
	g, err := roadnet.Generate(rng, roadCfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: city roads: %w", err)
	}
	c := &City{
		Opts: opts, World: world, Graph: g, Nav: nav.NewService(g),
		Districts:  opts.Districts,
		Projection: geo.NewProjection(origin),
	}

	// Partition the network into district bands by cumulative weight over x.
	total := 0.0
	for _, d := range opts.Districts {
		total += d.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: district weights sum to %v", total)
	}
	cuts := make([]float64, len(opts.Districts))
	acc := 0.0
	for i, d := range opts.Districts {
		acc += d.Weight / total
		cuts[i] = acc * opts.Width
	}
	c.bandNodes = make([][]int, len(opts.Districts))
	for id, n := range g.Nodes() {
		band := len(cuts) - 1
		for i, cut := range cuts {
			if n.Pos.X <= cut {
				band = i
				break
			}
		}
		c.bandNodes[band] = append(c.bandNodes[band], id)
	}
	for i, nodes := range c.bandNodes {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("loadgen: district %q has no road nodes", opts.Districts[i].Name)
		}
	}

	// Populate the roster: district by weight, mode by district mix, home
	// node inside the band.
	for id := 0; id < opts.Agents; id++ {
		d := pickDistrict(rng, opts.Districts, total)
		mode := pickMode(rng, opts.Districts[d])
		home := g.Node(c.bandNodes[d][rng.Intn(len(c.bandNodes[d]))]).Pos
		c.Agents = append(c.Agents, Agent{ID: id, District: d, Mode: mode, Home: home})
	}

	// Collect the historical corpus: honest trips by rotating agents.
	for len(c.Hist) < opts.Hist {
		a := c.Agents[len(c.Hist)%len(c.Agents)]
		u, err := c.HonestUpload(rng, a)
		if err != nil {
			return nil, fmt.Errorf("loadgen: city history %d: %w", len(c.Hist), err)
		}
		u.Traj.ID = fmt.Sprintf("city-hist-%d", len(c.Hist))
		c.Hist = append(c.Hist, u)
	}
	return c, nil
}

func pickDistrict(rng *rand.Rand, ds []District, total float64) int {
	r := rng.Float64() * total
	for i, d := range ds {
		r -= d.Weight
		if r < 0 {
			return i
		}
	}
	return len(ds) - 1
}

func pickMode(rng *rand.Rand, d District) trajectory.Mode {
	total := d.Walk + d.Cycle + d.Drive
	r := rng.Float64() * total
	if r < d.Walk {
		return trajectory.ModeWalking
	}
	if r < d.Walk+d.Cycle {
		return trajectory.ModeCycling
	}
	return trajectory.ModeDriving
}

// trip plans one route for the agent: from a node in its home district to
// any node far enough away for the trajectory length, retrying on
// unroutable or too-short pairs.
func (c *City) trip(rng *rand.Rand, a Agent) (*nav.Plan, error) {
	prof := mobility.ProfileFor(a.Mode)
	minDist := prof.CruiseSpeed * c.Opts.Interval.Seconds() * float64(c.Opts.Points) * 1.3
	minDist = math.Min(minDist, c.Opts.Width*0.8)
	band := c.bandNodes[a.District]
	for tries := 0; tries < 256; tries++ {
		from := c.Graph.Node(band[rng.Intn(len(band))]).Pos
		to := c.Graph.Node(rng.Intn(c.Graph.NumNodes())).Pos
		if geo.Dist(from, to) < minDist {
			continue
		}
		plan, err := c.Nav.Route(from, to, a.Mode)
		if err != nil {
			continue
		}
		return plan, nil
	}
	return nil, fmt.Errorf("loadgen: no viable trip for agent %d (%s)", a.ID, a.Mode)
}

// HonestUpload simulates one genuine trip by the agent: real mobility
// along a planned route, scans measured at the ground-truth positions.
func (c *City) HonestUpload(rng *rand.Rand, a Agent) (*wifi.Upload, error) {
	u, _, err := c.honestTrack(rng, a)
	return u, err
}

func (c *City) honestTrack(rng *rand.Rand, a Agent) (*wifi.Upload, []geo.Point, error) {
	for tries := 0; tries < 64; tries++ {
		plan, err := c.trip(rng, a)
		if err != nil {
			return nil, nil, err
		}
		tk, err := mobility.Simulate(rng, mobility.Options{
			Route: plan.Polyline, Mode: a.Mode,
			Start: cityStart, Interval: c.Opts.Interval, MaxPoints: c.Opts.Points,
		})
		if err != nil || len(tk.Points) < c.Opts.Points {
			continue
		}
		traj := tk.Trajectory()
		truths := tk.TruePositions()
		scans := make([]wifi.Scan, len(truths))
		for i, p := range truths {
			scans[i] = c.World.Scan(rng, p)
		}
		return &wifi.Upload{Traj: traj, Scans: scans}, truths, nil
	}
	return nil, nil, fmt.Errorf("loadgen: agent %d (%s) produced no full-length track", a.ID, a.Mode)
}

// NavAttackUpload is the replayed navigation forgery: the claimed
// trajectory is a constant-speed navigation sample along a planned route
// with naive noise (internal/attack), while the scans are replayed from a
// historical upload measured elsewhere in the city, with the paper's
// per-value {-1,0,1} disturbance.
func (c *City) NavAttackUpload(rng *rand.Rand, a Agent, hist []*wifi.Upload) (*wifi.Upload, error) {
	if len(hist) == 0 {
		return nil, fmt.Errorf("loadgen: nav attack needs a history to replay scans from")
	}
	// Navigation samples run at the route's recommended speed, so a fast
	// mode can exhaust its route before Points fixes; real forgeries vary
	// in length too, so accept any sample at least half the nominal length
	// (min 8 points — comfortably past the decoder's floor).
	minLen := c.Opts.Points / 2
	if minLen < 8 {
		minLen = 8
	}
	if minLen > c.Opts.Points {
		minLen = c.Opts.Points
	}
	for tries := 0; tries < 64; tries++ {
		plan, err := c.trip(rng, a)
		if err != nil {
			return nil, err
		}
		sample := plan.Sample(cityStart, c.Opts.Interval, c.Opts.Points)
		n := sample.Len()
		if n < minLen {
			continue
		}
		fake := attack.NaiveNavigation(rng, sample)
		src := hist[rng.Intn(len(hist))]
		if src.Traj.Len() < n {
			continue
		}
		scans := make([]wifi.Scan, n)
		for i := 0; i < n; i++ {
			cp := src.Scans[i].Clone()
			for j := range cp {
				cp[j].RSSI += rng.Intn(3) - 1
			}
			scans[i] = cp
		}
		return &wifi.Upload{Traj: fake, Scans: scans}, nil
	}
	return nil, fmt.Errorf("loadgen: agent %d produced no viable nav sample", a.ID)
}

// SpoofJumpUpload is the GNSS-spoofing-style forgery: a genuine trip whose
// claimed positions are teleported sideways from a mid-track index onward,
// while the scans keep reporting the radio environment of the true path.
// Small jumps slip past the physical-sanity rules (inside the per-mode
// speed cap for driving) and must be caught by the RSSI countermeasure;
// large ones trip the rule stage outright.
func (c *City) SpoofJumpUpload(rng *rand.Rand, a Agent) (*wifi.Upload, error) {
	u, _, err := c.honestTrack(rng, a)
	if err != nil {
		return nil, err
	}
	n := u.Traj.Len()
	jumpAt := n/3 + rng.Intn(n/3)
	dist := 60 + rng.Float64()*90 // 60-150 m
	dir := rng.Float64() * 2 * math.Pi
	off := geo.Point{X: dist * math.Cos(dir), Y: dist * math.Sin(dir)}
	pos := u.Traj.Positions()
	for i := jumpAt; i < n; i++ {
		pos[i] = pos[i].Add(off)
	}
	traj, err := u.Traj.WithPositions(pos)
	if err != nil {
		return nil, err
	}
	return &wifi.Upload{Traj: traj, Scans: u.Scans}, nil
}

// diurnalRate is the city's relative arrival intensity at hour h in
// [0, 24): a commuter curve with morning and evening peaks, a smaller
// lunchtime bump, and a non-zero overnight floor.
func diurnalRate(h float64) float64 {
	sq := func(x float64) float64 { return x * x }
	am := math.Exp(-sq(h-8.5) / (2 * sq(1.8)))
	pm := 0.9 * math.Exp(-sq(h-17.5) / (2 * sq(2.4)))
	noon := 0.35 * math.Exp(-sq(h-13.0) / (2 * sq(3.0)))
	return 0.2 + am + pm + noon
}

// diurnalMean is the day-average of diurnalRate, precomputed so the
// schedule generator can normalise the curve to unit mean intensity.
var diurnalMean = func() float64 {
	const steps = 2400
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += diurnalRate(24 * (float64(i) + 0.5) / steps)
	}
	return sum / steps
}()

// diurnalMax is the peak of the normalised curve (the thinning envelope).
var diurnalMax = func() float64 {
	const steps = 2400
	max := 0.0
	for i := 0; i < steps; i++ {
		if r := diurnalRate(24 * float64(i) / steps); r > max {
			max = r
		}
	}
	return max / diurnalMean
}()
