// Verify-kernel microbenchmark: the single-process measurements behind the
// hot-path claims — flattened-forest scoring versus the pointer-tree
// baseline (points/sec), and binary frame parsing versus JSON decoding of
// the same upload body (ops/sec). It reuses the real components (a model
// trained by internal/xgb, request bodies built by the workload encoder),
// so the numbers describe the production code, not a synthetic proxy.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajforge/internal/server"
	"trajforge/internal/xgb"
)

// KernelResult is the "kernel" section of BENCH_loadgen.json.
type KernelResult struct {
	// Model shape: scoring rows of Features columns through Trees trees.
	Rows     int `json:"rows"`
	Features int `json:"features"`
	Trees    int `json:"trees"`

	// Scoring throughput, points (rows) per second.
	PointerPointsPerSec    float64 `json:"pointer_points_per_sec"`
	FlatSinglePointsPerSec float64 `json:"flattened_single_points_per_sec"`
	FlatBatchPointsPerSec  float64 `json:"flattened_batch_points_per_sec"`
	// SpeedupBatchVsPointer is FlatBatch / Pointer — the acceptance
	// criterion figure.
	SpeedupBatchVsPointer float64 `json:"speedup_batch_vs_pointer"`

	// Wire decode throughput over one representative upload body.
	JSONBodyBytes        int     `json:"json_body_bytes"`
	BinaryBodyBytes      int     `json:"binary_body_bytes"`
	JSONDecodeOpsPerSec  float64 `json:"json_decode_ops_per_sec"`
	BinaryParseOpsPerSec float64 `json:"binary_parse_ops_per_sec"`
	// DecodeSpeedup is BinaryParse / JSONDecode.
	DecodeSpeedup float64 `json:"decode_speedup"`
}

// kernelTrainingSet mirrors the xgb benchmark fixture: heavy tails and NaN
// (missing) cells, so the kernels run their real predicated paths.
func kernelTrainingSet(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		var s float64
		for j := range row {
			switch {
			case rng.Float64() < 0.08:
				row[j] = math.NaN()
			case rng.Float64() < 0.1:
				row[j] = rng.NormFloat64() * 1e6
			default:
				row[j] = rng.NormFloat64()
			}
			if !math.IsNaN(row[j]) {
				s += row[j]
			}
		}
		X[i] = row
		if s > 0 {
			y[i] = 1
		}
	}
	return X, y
}

// measure runs f repeatedly for at least minDur and returns iterations per
// second.
func measure(minDur time.Duration, f func()) float64 {
	// Warm caches and the branch predictor off the clock.
	f()
	var iters int
	start := time.Now()
	for time.Since(start) < minDur {
		f()
		iters++
	}
	return float64(iters) / time.Since(start).Seconds()
}

// RunKernel measures the verify kernel and the wire codecs. The seed fixes
// the model and the probe bodies; timings are wall-clock.
func RunKernel(seed int64) (*KernelResult, error) {
	const rows, feats = 512, 6
	rng := rand.New(rand.NewSource(seed))
	X, y := kernelTrainingSet(rng, rows, feats)
	m, err := xgb.Train(X, y, xgb.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("loadgen: train kernel model: %w", err)
	}
	res := &KernelResult{Rows: rows, Features: feats, Trees: len(m.Trees)}

	const minDur = 300 * time.Millisecond
	perCall := measure(minDur, func() {
		for i := range X {
			_ = m.PredictProbPointer(X[i])
		}
	})
	res.PointerPointsPerSec = perCall * rows
	perCall = measure(minDur, func() {
		for i := range X {
			_ = m.PredictProb(X[i])
		}
	})
	res.FlatSinglePointsPerSec = perCall * rows
	dst := make([]float64, rows)
	perCall = measure(minDur, func() { m.PredictBatchInto(dst, X) })
	res.FlatBatchPointsPerSec = perCall * rows
	if res.PointerPointsPerSec > 0 {
		res.SpeedupBatchVsPointer = res.FlatBatchPointsPerSec / res.PointerPointsPerSec
	}

	// One representative upload body, built by the real workload encoder.
	w, err := Build(Options{Seed: seed, N: 1, Points: 40, Hist: 4})
	if err != nil {
		return nil, fmt.Errorf("loadgen: build codec probe: %w", err)
	}
	jsonBody, binBody := w.Items[0].Body, w.Items[0].BinaryBody
	res.JSONBodyBytes, res.BinaryBodyBytes = len(jsonBody), len(binBody)
	res.JSONDecodeOpsPerSec = measure(minDur, func() {
		var req server.UploadRequest
		if err := json.Unmarshal(jsonBody, &req); err != nil {
			panic(err)
		}
	})
	res.BinaryParseOpsPerSec = measure(minDur, func() {
		if _, err := server.ParseUploadBinary(binBody); err != nil {
			panic(err)
		}
	})
	if res.JSONDecodeOpsPerSec > 0 {
		res.DecodeSpeedup = res.BinaryParseOpsPerSec / res.JSONDecodeOpsPerSec
	}
	return res, nil
}
