package loadgen

import (
	"encoding/json"
	"testing"
)

// TestOverloadSheds drives 16 closed-loop senders into a provider that
// admits 2 with a wait queue of 2 — an 8x concurrency overload. The
// provider must shed the excess with 429 + Retry-After rather than queue
// without bound, the latency of what it does admit must stay within 3x
// the uncontended baseline, and the admission counters must account for
// every request offered.
func TestOverloadSheds(t *testing.T) {
	opts := OverloadOptions{
		Seed: 11, N: 96, Warmup: 16, Workers: 16,
		MaxInFlight: 2, QueueDepth: 2, Points: 16, Hist: 40,
	}
	if !testing.Short() {
		opts.N = 160
	}
	res, err := RunOverload(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-429 errors under overload: %+v", res.Errors, res)
	}
	if res.Shed == 0 {
		t.Fatalf("8x overload produced no sheds: %+v", res)
	}
	if res.Admitted == 0 {
		t.Fatalf("overload starved every request: %+v", res)
	}
	if res.RetryAfterMissing != 0 {
		t.Fatalf("%d of %d 429s lacked Retry-After", res.RetryAfterMissing, res.Shed)
	}
	if !res.AccountingOK {
		t.Fatalf("admission accounting does not balance: %+v", res)
	}
	// Bounded p99: with at most QueueDepth requests ever waiting, an
	// admitted request waits at most QueueDepth service times on top of
	// its own. 3x baseline plus a small absolute fudge for scheduler
	// noise on starved CI machines. Race instrumentation multiplies the
	// CPU cost of every stage ~10x and starves single-CPU hosts, so the
	// bound is only meaningful without it (the shed and accounting
	// assertions above still run under -race).
	if limit := 3*res.UncontendedP99Millis + 25; !raceEnabled && res.AdmittedP99Millis > limit {
		t.Fatalf("admitted p99 %.1fms exceeds bound %.1fms (uncontended %.1fms)",
			res.AdmittedP99Millis, limit, res.UncontendedP99Millis)
	}
	// The result must marshal to the BENCH_loadgen.json overload schema.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"admitted", "shed", "uncontended_p99_ms", "admitted_p99_ms", "accounting_ok"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("overload JSON missing %q: %s", key, blob)
		}
	}
}
