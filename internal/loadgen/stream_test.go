package loadgen

import (
	"encoding/json"
	"testing"

	"trajforge/internal/stream"
)

// TestStreamWorkloadDeterministic pins the reproducibility contract for
// the session workload: the digest is a pure function of the options.
func TestStreamWorkloadDeterministic(t *testing.T) {
	opts := StreamOptions{Seed: 5, Sessions: 10, Chunks: 3, Points: 12, Hist: 20}
	a, err := BuildStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.StreamDigest != b.StreamDigest {
		t.Fatalf("same seed, different digests: %s != %s", a.StreamDigest, b.StreamDigest)
	}
	if len(a.Sessions) != 10 {
		t.Fatalf("built %d sessions, want 10", len(a.Sessions))
	}
	var forged int
	for _, ss := range a.Sessions {
		if ss.Forged {
			forged++
		}
		if len(ss.Appends) == 0 || len(ss.Open) == 0 || len(ss.Close) == 0 {
			t.Fatalf("session %s missing request bodies", ss.ID)
		}
	}
	if forged == 0 || forged == len(a.Sessions) {
		t.Fatalf("degenerate mix: %d forged of %d", forged, len(a.Sessions))
	}

	opts.Seed = 6
	c, err := BuildStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.StreamDigest == a.StreamDigest {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestStreamSoak is the streaming end-to-end soak: a self-hosted provider
// with the WAL and session endpoints enabled, driven by concurrent workers
// whose chunk appends interleave. Under -race this covers the whole
// streaming path — open admission, chunk buffering and WAL journaling,
// incremental scoring, close pipeline, accepted-session ingestion.
func TestStreamSoak(t *testing.T) {
	opts := StreamOptions{Seed: 11, Sessions: 18, Chunks: 3, Workers: 6, Points: 16, Hist: 40}
	if !testing.Short() {
		opts.Sessions = 36
	}
	opts.DataDir = t.TempDir()
	w, err := BuildStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := w.SelfHostOpts(HostOptions{
		Seed:    opts.Seed,
		DataDir: opts.DataDir,
		Stream:  &stream.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.BaseURL = srv.URL
	res, err := w.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors: %+v", res.Errors, res)
	}
	if res.Accepted+res.Rejected != res.Sessions {
		t.Fatalf("verdicts %d+%d != %d sessions", res.Accepted, res.Rejected, res.Sessions)
	}
	if res.RealAccepted == 0 {
		t.Fatalf("no real session accepted: %+v", res)
	}
	if res.ForgedSent == 0 || res.ForgedRejected == 0 {
		t.Fatalf("forgery mix degenerate: %+v", res)
	}
	if res.ChunksSent == 0 || res.ChunkThroughputRPS <= 0 || res.ChunkP50Millis <= 0 ||
		res.ChunkP95Millis < res.ChunkP50Millis || res.ChunkP99Millis < res.ChunkP95Millis {
		t.Fatalf("implausible chunk latency profile: %+v", res)
	}
	if res.WorkloadDigest != w.StreamDigest {
		t.Fatal("result does not carry the workload digest")
	}
	// The result must marshal to the BENCH_loadgen.json "stream" schema.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"chunk_throughput_rps", "chunk_p50_ms", "chunk_p95_ms", "chunk_p99_ms", "workload_digest"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("result JSON missing %q: %s", key, blob)
		}
	}
	// Server-side session counters must agree with the client's tally.
	st := srv.Svc.Stats()
	if st.Sessions == nil {
		t.Fatal("stats missing sessions block")
	}
	if st.Sessions.Opened != int64(res.Sessions) || st.Sessions.Closed != int64(res.Sessions) {
		t.Fatalf("server opened/closed %d/%d sessions, client drove %d",
			st.Sessions.Opened, st.Sessions.Closed, res.Sessions)
	}
	if st.Accepted != res.Accepted || st.Rejected != res.Rejected {
		t.Fatalf("server counted %d/%d, client %d/%d",
			st.Accepted, st.Rejected, res.Accepted, res.Rejected)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
