package loadgen

import (
	"math/rand"
	"testing"

	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
)

func smallCityOpts(seed int64) CityOptions {
	return CityOptions{
		Seed: seed, Agents: 16, Hist: 10, Points: 12,
		Width: 220, Height: 180, NumAPs: 160, BlockSize: 50,
	}
}

func TestBuildCityDeterministic(t *testing.T) {
	a, err := BuildCity(smallCityOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCity(smallCityOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Agents) != len(b.Agents) {
		t.Fatalf("agent count %d vs %d", len(a.Agents), len(b.Agents))
	}
	for i := range a.Agents {
		x, y := a.Agents[i], b.Agents[i]
		if x.District != y.District || x.Mode != y.Mode || x.Home != y.Home {
			t.Fatalf("agent %d differs: %+v vs %+v", i, x, y)
		}
	}
	if len(a.Hist) != len(b.Hist) {
		t.Fatalf("hist count %d vs %d", len(a.Hist), len(b.Hist))
	}
	for i := range a.Hist {
		pa, pb := a.Hist[i].Traj.Positions(), b.Hist[i].Traj.Positions()
		if len(pa) != len(pb) {
			t.Fatalf("hist %d point count %d vs %d", i, len(pa), len(pb))
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("hist %d point %d differs: %v vs %v", i, j, pa[j], pb[j])
			}
		}
	}
}

func TestCityDistrictsAndModes(t *testing.T) {
	c, err := BuildCity(smallCityOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Districts) == 0 {
		t.Fatal("no districts")
	}
	byDistrict := make(map[int]int)
	modes := make(map[trajectory.Mode]int)
	for _, a := range c.Agents {
		if a.District < 0 || a.District >= len(c.Districts) {
			t.Fatalf("agent %d homed in unknown district %d", a.ID, a.District)
		}
		byDistrict[a.District]++
		modes[a.Mode]++
		if a.Mode != trajectory.ModeWalking && a.Mode != trajectory.ModeCycling && a.Mode != trajectory.ModeDriving {
			t.Fatalf("agent %d has unknown mode %v", a.ID, a.Mode)
		}
	}
	if len(byDistrict) == 0 {
		t.Fatal("no agents assigned to districts")
	}
	if len(modes) < 2 {
		t.Fatalf("expected a mode mix across 16 agents, got %v", modes)
	}
	for _, d := range c.Districts {
		if d.Weight <= 0 {
			t.Fatalf("district %s has non-positive weight", d.Name)
		}
	}
}

func TestCityUploadGenerators(t *testing.T) {
	c, err := BuildCity(smallCityOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	a := c.Agents[0]

	u, err := c.HonestUpload(rng, a)
	if err != nil {
		t.Fatal(err)
	}
	if u.Traj.Len() != c.Opts.Points || len(u.Scans) != c.Opts.Points {
		t.Fatalf("honest upload %d points / %d scans, want %d", u.Traj.Len(), len(u.Scans), c.Opts.Points)
	}

	nav, err := c.NavAttackUpload(rng, a, c.Hist)
	if err != nil {
		t.Fatal(err)
	}
	if nav.Traj.Len() == 0 || len(nav.Scans) != nav.Traj.Len() {
		t.Fatalf("nav attack has %d points / %d scans", nav.Traj.Len(), len(nav.Scans))
	}

	sp, err := c.SpoofJumpUpload(rng, a)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Traj.Len() != c.Opts.Points {
		t.Fatalf("spoof upload has %d points, want %d", sp.Traj.Len(), c.Opts.Points)
	}
	// The claimed track must actually jump: some consecutive step well
	// beyond what the honest simulator produces at this interval.
	pos := sp.Traj.Positions()
	maxStep := 0.0
	for i := 1; i < len(pos); i++ {
		if d := geo.Dist(pos[i-1], pos[i]); d > maxStep {
			maxStep = d
		}
	}
	if maxStep < 50 {
		t.Fatalf("spoof track max step %.1fm, expected a teleport jump ≥50m", maxStep)
	}
}
