package loadgen

import (
	"encoding/json"
	"testing"
)

// TestClusterScenario drives the cluster scenario end to end: a provider
// whose WiFi backend is a three-node shard cluster over loopback, a live
// busiest-tile migration mid-run, and the counters that land in
// BENCH_loadgen.json under "cluster".
func TestClusterScenario(t *testing.T) {
	opts := ClusterOptions{Seed: 11, N: 60, Workers: 6, Points: 16, Hist: 40}
	if !testing.Short() {
		opts.N = 120
	}
	res, err := RunCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors: %+v", res.Errors, res)
	}
	if res.Accepted+res.Rejected != res.Uploads {
		t.Fatalf("verdicts %d+%d != %d uploads", res.Accepted, res.Rejected, res.Uploads)
	}
	if res.Accepted == 0 || res.Rejected == 0 {
		t.Fatalf("degenerate verdict mix: %+v", res)
	}
	if res.Forwarded == 0 {
		t.Fatal("no shard RPCs forwarded — backend was not the cluster")
	}
	if res.ForwardRatio <= 0 || res.ForwardRatio > 1 {
		t.Fatalf("implausible forward ratio %v", res.ForwardRatio)
	}
	if res.Migrations != 1 || res.Epoch <= res.EpochBefore {
		t.Fatalf("mid-run migration not reflected: %+v", res)
	}
	if len(res.PerNodeTiles) != opts.Nodes && len(res.PerNodeTiles) != 3 {
		t.Fatalf("per-node tiles for %d nodes: %+v", len(res.PerNodeTiles), res.PerNodeTiles)
	}
	var tiles int
	for _, n := range res.PerNodeTiles {
		tiles += n
	}
	if tiles == 0 {
		t.Fatal("no tiles assigned anywhere")
	}
	if res.ThroughputRPS <= 0 || res.P50Millis <= 0 ||
		res.P95Millis < res.P50Millis || res.P99Millis < res.P95Millis {
		t.Fatalf("implausible latency profile: %+v", res)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"throughput_rps", "forward_ratio", "forwarded_requests", "epoch", "p99_ms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("result JSON missing %q: %s", key, blob)
		}
	}
}
