package loadgen

import (
	"encoding/json"
	"testing"
)

// TestClusterReplicatedScenario drives the replicated cluster scenario end
// to end: follower replicas on every tile, the busiest tile's primary node
// killed (and its tiles re-replicated) at the workload midpoint, and the
// counters that land in BENCH_loadgen.json under "cluster_replicated".
func TestClusterReplicatedScenario(t *testing.T) {
	opts := ClusterOptions{Seed: 11, N: 60, Workers: 6, Points: 16, Hist: 40}
	if !testing.Short() {
		opts.N = 120
	}
	res, err := RunClusterReplicated(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The headline property: a node died mid-run and no client saw it.
	if res.Errors != 0 {
		t.Fatalf("%d request errors despite replication: %+v", res.Errors, res)
	}
	if res.Accepted+res.Rejected != res.Uploads {
		t.Fatalf("verdicts %d+%d != %d uploads", res.Accepted, res.Rejected, res.Uploads)
	}
	if res.Accepted == 0 || res.Rejected == 0 {
		t.Fatalf("degenerate verdict mix: %+v", res)
	}
	if res.KilledNode == "" {
		t.Fatal("no node was killed")
	}
	if res.Forwarded == 0 {
		t.Fatal("no shard RPCs forwarded — backend was not the cluster")
	}
	if res.ForwardRatio <= 0 || res.ForwardRatio > 1 {
		t.Fatalf("implausible forward ratio %v", res.ForwardRatio)
	}
	if res.ReplicaReads == 0 {
		t.Fatal("no reads were served by follower replicas after the kill")
	}
	if res.ReplicaReadRatio <= 0 || res.ReplicaReadRatio > 1 {
		t.Fatalf("implausible replica-read ratio %v", res.ReplicaReadRatio)
	}
	if res.Repairs == 0 {
		t.Fatal("the killed node's tiles were never re-replicated")
	}
	if res.Epoch <= res.EpochBefore {
		t.Fatalf("repair did not advance the epoch: %+v", res)
	}
	if res.ThroughputRPS <= 0 || res.P50Millis <= 0 ||
		res.P95Millis < res.P50Millis || res.P99Millis < res.P95Millis {
		t.Fatalf("implausible latency profile: %+v", res)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"throughput_rps", "forward_ratio", "replica_reads", "replica_read_ratio", "killed_node", "repairs", "p99_ms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("result JSON missing %q: %s", key, blob)
		}
	}
}
