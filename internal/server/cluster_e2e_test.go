package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"trajforge/internal/cluster"
	"trajforge/internal/detect"
	"trajforge/internal/resilience"
	"trajforge/internal/shardstore"
	"trajforge/internal/stream"
	"trajforge/internal/wifi"
)

// TestClusterBackendVerdictsBitIdentical is the distributed headline
// property over the wire: a verification service whose WiFi detector runs
// against a multi-node cluster store produces verdicts — batch uploads and
// chunked streaming sessions alike — bit-identical to a single-process
// service over the same records, including across a live tile migration.
func TestClusterBackendVerdictsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	recs := persistRecords(rng, 500)

	// Single-process reference backend.
	single, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}

	// Three shard nodes + coordinator over the same records.
	addrs := make(map[string]string, 3)
	nodes := make(map[string]*cluster.Node, 3)
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(id, shardstore.DefaultConfig(), cluster.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	clusterStore, err := cluster.NewStore(cluster.Options{Shard: shardstore.DefaultConfig(), Nodes: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		clusterStore.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	clusterStore.Add(recs)

	// One model, two backends: the verdict difference, if any, can only
	// come from the store.
	det := trainTestDetector(t, single)
	detLocal := &detect.WiFiDetector{Store: single, Model: det.Model, Features: det.Features}
	detCluster := &detect.WiFiDetector{Store: clusterStore, Model: det.Model, Features: det.Features}

	_, _, localClient := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9}, WiFi: detLocal,
		Stream: &stream.Config{DisableEarlyExit: true},
	})
	_, _, clusterClient := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9}, WiFi: detCluster,
		Stream: &stream.Config{DisableEarlyExit: true},
	})

	checkTrials := func(base int64) {
		t.Helper()
		for trial := 0; trial < 4; trial++ {
			u := uploadFor(t, base+int64(trial), 12+trial*5)
			u.Traj.ID = "cluster-prop"
			if trial%2 == 1 { // forged uploads must agree bit-for-bit too
				for j := range u.Scans {
					u.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
				}
			}
			want, err := localClient.Upload(u)
			if err != nil {
				t.Fatal(err)
			}
			got, err := clusterClient.Upload(u)
			if err != nil {
				t.Fatal(err)
			}
			sameVerdict(t, got, want)

			// Streamed through the cluster-backed service in random chunks,
			// the close verdict must still match the single-process batch.
			var sizes []int
			for n := u.Traj.Len(); n > 0; {
				c := 1 + rng.Intn(6)
				if c > n {
					c = n
				}
				sizes = append(sizes, c)
				n -= c
			}
			streamed := streamUpload(t, clusterClient, u, sizes)
			sameVerdict(t, streamed, want)
		}
	}

	checkTrials(3000)

	// Live-migrate the busiest tile and re-run: verdicts must not move.
	tile, ok := clusterStore.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	from := clusterStore.Assignment().Owner(tile)
	var to string
	for id := range nodes {
		if id != from {
			to = id
			break
		}
	}
	epochBefore := clusterStore.Assignment().Epoch
	if err := clusterStore.Migrate(tile, to); err != nil {
		t.Fatal(err)
	}
	checkTrials(4000)

	// The cluster section must ride /v1/stats end to end.
	st, err := clusterClient.FetchStats()
	if err != nil {
		t.Fatal(err)
	}
	cl := st.Cluster
	if cl == nil {
		t.Fatal("stats missing cluster section")
	}
	if cl.Epoch <= epochBefore {
		t.Fatalf("stats epoch %d did not advance past %d", cl.Epoch, epochBefore)
	}
	if cl.Migrations != 1 || cl.MigrationInFlight {
		t.Fatalf("cluster stats = %+v", cl)
	}
	if cl.Forwarded == 0 {
		t.Fatal("no forwarded requests counted")
	}
	if len(cl.Nodes) != 3 {
		t.Fatalf("cluster stats report %d nodes", len(cl.Nodes))
	}
	var tiles int
	for _, ns := range cl.Nodes {
		tiles += ns.Tiles
	}
	if tiles == 0 {
		t.Fatal("cluster stats report no per-node tiles")
	}
	if lst, err := localClient.FetchStats(); err != nil {
		t.Fatal(err)
	} else if lst.Cluster != nil {
		t.Fatal("single-process service grew a cluster section")
	}
}

// TestClusterHealthDegraded wires the distributed store's health into
// /v1/health: a replicated cluster backend reports ok while every tile has
// a live replica, and flips to 503 degraded — with a reason and a
// Retry-After — once a tile loses all of them.
func TestClusterHealthDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	recs := persistRecords(rng, 300)

	single, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[string]string, 2)
	nodes := make(map[string]*cluster.Node, 2)
	for i := 1; i <= 2; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(id, shardstore.DefaultConfig(), cluster.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	clusterStore, err := cluster.NewStore(cluster.Options{
		Shard: shardstore.DefaultConfig(), Nodes: addrs, Replicate: true,
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		clusterStore.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	clusterStore.Add(recs)

	det := trainTestDetector(t, single)
	detCluster := &detect.WiFiDetector{Store: clusterStore, Model: det.Model, Features: det.Features}
	_, ts, _ := newTestService(t, Config{Motion: &fixedMotion{prob: 0.9}, WiFi: detCluster})

	fetchHealth := func() (int, Health, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h, resp.Header.Get("Retry-After")
	}

	if code, h, _ := fetchHealth(); code != http.StatusOK || h.Degraded || !h.Ready {
		t.Fatalf("healthy replicated cluster: code %d, health %+v", code, h)
	}

	// Kill every node, then probe so the coordinator notices the deaths:
	// with both replicas of every tile dark, readiness must drop.
	for _, n := range nodes {
		n.Close()
	}
	clusterStore.ConfidenceTol(recs[0].Pos, "02:4e:00:00:00:01", -50, 5, 2)

	code, h, retryAfter := fetchHealth()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded cluster health = %d, want 503", code)
	}
	if !h.Degraded || h.Ready || h.Status != "degraded" {
		t.Fatalf("degraded cluster health body = %+v", h)
	}
	if h.Reason == "" {
		t.Fatal("degraded health carries no reason")
	}
	if retryAfter == "" {
		t.Fatal("degraded health carries no Retry-After")
	}
}
