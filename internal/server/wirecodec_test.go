package server

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/stream"
)

// wireRequestFor builds the wire form of a realistic upload through the
// client encoder.
func wireRequestFor(t *testing.T, seed int64, n int) *UploadRequest {
	t.Helper()
	c := NewClient("http://unused", geo.NewProjection(_origin))
	req, err := c.BuildRequest(uploadFor(t, seed, n))
	if err != nil {
		t.Fatal(err)
	}
	req.ID = "traj-42"
	return req
}

// TestBinaryUploadRoundTrip pins the codec's two identities: parse(encode)
// reproduces the request exactly (float bits included), and encode(parse)
// reproduces the frame byte for byte — the canonical-encoding property the
// fuzzer leans on.
func TestBinaryUploadRoundTrip(t *testing.T) {
	req := wireRequestFor(t, 21, 25)
	req.Mode = "walking"
	// Exercise awkward float bits: negative zero, subnormals, NaN payloads
	// survive the wire untouched (validity is the decoder's concern).
	req.Points[0].Lat = math.Copysign(0, -1)
	req.Points[1].Lon = math.SmallestNonzeroFloat64
	frame, err := EncodeUploadBinary(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseUploadBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || got.Mode != req.Mode || len(got.Points) != len(req.Points) {
		t.Fatalf("header roundtrip: got %q/%q/%d, want %q/%q/%d",
			got.ID, got.Mode, len(got.Points), req.ID, req.Mode, len(req.Points))
	}
	for i := range req.Points {
		w, g := req.Points[i], got.Points[i]
		if math.Float64bits(w.Lat) != math.Float64bits(g.Lat) ||
			math.Float64bits(w.Lon) != math.Float64bits(g.Lon) || w.Time != g.Time {
			t.Fatalf("point %d: %+v != %+v", i, g, w)
		}
		if !reflect.DeepEqual(w.Scan, g.Scan) {
			t.Fatalf("point %d scans: %+v != %+v", i, g.Scan, w.Scan)
		}
	}
	again, err := EncodeUploadBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("encode(parse(frame)) differs from frame")
	}
}

// TestBinarySessionAppendRoundTrip is the same contract for the append
// frame kind.
func TestBinarySessionAppendRoundTrip(t *testing.T) {
	c := NewClient("http://unused", geo.NewProjection(_origin))
	u := uploadFor(t, 33, 20)
	req, err := c.BuildSessionAppend("sess-1", 3, u, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeSessionAppendBinary(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSessionAppendBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != req.SessionID || got.Seq != req.Seq || len(got.Points) != len(req.Points) {
		t.Fatalf("append roundtrip: %+v vs %+v", got, req)
	}
	again, err := EncodeSessionAppendBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("encode(parse(frame)) differs from frame")
	}
}

// TestBinaryTypedErrors exercises every typed decode failure.
func TestBinaryTypedErrors(t *testing.T) {
	frame, err := EncodeUploadBinary(wireRequestFor(t, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail with a typed error, never panic.
	for n := range frame {
		_, err := ParseUploadBinary(frame[:n])
		if err == nil {
			t.Fatalf("prefix of %d bytes parsed cleanly", n)
		}
		if !errors.Is(err, ErrWireTruncated) && !errors.Is(err, ErrWireOversized) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}

	bad := append([]byte(nil), frame...)
	bad[0] = 9
	if _, err := ParseUploadBinary(bad); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("version 9: %v", err)
	}

	bad = append([]byte(nil), frame...)
	bad[1] = wireKindSessionAppend
	if _, err := ParseUploadBinary(bad); !errors.Is(err, ErrWireKind) {
		t.Fatalf("wrong kind: %v", err)
	}
	if _, err := ParseSessionAppendBinary(frame); !errors.Is(err, ErrWireKind) {
		t.Fatalf("upload frame on append endpoint: %v", err)
	}

	if _, err := ParseUploadBinary(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrWireOversized) {
		t.Fatalf("trailing byte: %v", err)
	}

	bad = append([]byte(nil), frame...)
	bad[6+2+len("traj-42")] = 7 // mode byte
	if _, err := ParseUploadBinary(bad); !errors.Is(err, ErrWireValue) {
		t.Fatalf("unknown mode byte: %v", err)
	}

	// A frame whose point count cannot fit its bytes is oversized, and the
	// claims check must refuse before allocating anything huge.
	huge := make([]byte, 6+2+1+4)
	huge[0], huge[1] = wireVersion, wireKindUpload
	huge[6], huge[7] = 0, 0 // id len 0
	huge[8] = 0             // mode
	huge[9], huge[10], huge[11], huge[12] = 0xff, 0xff, 0xff, 0xff
	finishWireFrame(huge)
	if _, err := ParseUploadBinary(huge); !errors.Is(err, ErrWireOversized) {
		t.Fatalf("4G points claim: %v", err)
	}
}

// TestBinaryUploadEndToEndBitIdentical is the negotiation contract: two
// identically-built providers, one fed JSON and one fed the binary frame
// of the same logical upload, must return byte-identical verdict JSON —
// probability bits included — and land identical stage counts.
func TestBinaryUploadEndToEndBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	records := persistRecords(rng, 400)
	build := func() (*Service, *Client) {
		store, err := rssimap.NewStore(rssimap.DefaultConfig(), records)
		if err != nil {
			t.Fatal(err)
		}
		det := trainTestDetector(t, store)
		rc, err := detect.NewReplayChecker(1.2)
		if err != nil {
			t.Fatal(err)
		}
		svc, ts, client := newTestService(t, Config{
			Rules:  detect.NewRuleChecker(),
			Replay: rc,
			Motion: &fixedMotion{prob: 0.9},
			WiFi:   det,
		})
		_ = ts
		return svc, client
	}
	jsonSvc, jsonClient := build()
	binSvc, binClient := build()
	binClient.Binary = true

	for seed := int64(900); seed < 905; seed++ {
		u := uploadFor(t, seed, 25)
		vj, err := jsonClient.Upload(u)
		if err != nil {
			t.Fatalf("seed %d json: %v", seed, err)
		}
		vb, err := binClient.Upload(u)
		if err != nil {
			t.Fatalf("seed %d binary: %v", seed, err)
		}
		if !reflect.DeepEqual(vj.Checks, vb.Checks) || vj.Accepted != vb.Accepted || vj.Reason != vb.Reason {
			t.Fatalf("seed %d verdicts diverge: %+v vs %+v", seed, vj, vb)
		}
		if (vj.WiFiProbFake == nil) != (vb.WiFiProbFake == nil) {
			t.Fatalf("seed %d: wifi prob presence diverges", seed)
		}
		if vj.WiFiProbFake != nil &&
			math.Float64bits(*vj.WiFiProbFake) != math.Float64bits(*vb.WiFiProbFake) {
			t.Fatalf("seed %d: wifi prob %x != %x", seed,
				math.Float64bits(*vj.WiFiProbFake), math.Float64bits(*vb.WiFiProbFake))
		}
	}

	js, bs := jsonSvc.Stats(), binSvc.Stats()
	if js.Accepted != bs.Accepted || js.Rejected != bs.Rejected {
		t.Fatalf("counters diverge: %d/%d vs %d/%d", js.Accepted, js.Rejected, bs.Accepted, bs.Rejected)
	}
	for _, stage := range stageNames {
		if js.Stages[stage].Count != bs.Stages[stage].Count {
			t.Fatalf("stage %s count %d != %d", stage, js.Stages[stage].Count, bs.Stages[stage].Count)
		}
	}
}

// TestBinarySessionAppendEndToEnd drives a streaming session over the
// binary wire and closes it; the verdict must match the batch JSON upload
// of the same trajectory on an identically-built service.
func TestBinarySessionAppendEndToEnd(t *testing.T) {
	newSvc := func() *Client {
		_, _, client := newTestService(t, Config{
			Rules:  detect.NewRuleChecker(),
			Stream: &stream.Config{},
		})
		return client
	}
	u := uploadFor(t, 1201, 24)

	jc := newSvc()
	vj, err := jc.Upload(u)
	if err != nil {
		t.Fatal(err)
	}

	bc := newSvc()
	bc.Binary = true
	id, err := bc.OpenSession("", "walking")
	if err != nil {
		t.Fatal(err)
	}
	for seq, lo := 0, 0; lo < u.Traj.Len(); seq, lo = seq+1, lo+8 {
		hi := lo + 8
		if hi > u.Traj.Len() {
			hi = u.Traj.Len()
		}
		if _, err := bc.AppendSession(id, seq, u, lo, hi); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	vb, err := bc.CloseSession(id)
	if err != nil {
		t.Fatal(err)
	}
	if vj.Accepted != vb.Accepted {
		t.Fatalf("batch JSON accepted=%v, binary stream accepted=%v", vj.Accepted, vb.Accepted)
	}
}

// FuzzBinaryCodec throws arbitrary bytes at both frame parsers: they must
// never panic, and any frame a parser accepts must re-encode to the exact
// input bytes (the canonical-encoding property).
func FuzzBinaryCodec(f *testing.F) {
	c := NewClient("http://unused", geo.NewProjection(_origin))
	u := uploadFor(f, 7, 12)
	req, err := c.BuildRequest(u)
	if err != nil {
		f.Fatal(err)
	}
	req.ID, req.Mode = "fuzz-seed", "cycling"
	seed, err := EncodeUploadBinary(req)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	req.Contributor = "device-fuzz"
	cseed, err := EncodeUploadBinary(req)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cseed)
	req.Contributor = ""
	areq, err := c.BuildSessionAppend("sess-fuzz", 1, u, 0, 6)
	if err != nil {
		f.Fatal(err)
	}
	aseed, err := EncodeSessionAppendBinary(areq)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(aseed)
	f.Add([]byte{})
	f.Add([]byte{wireVersion, wireKindUpload})
	f.Add(seed[:len(seed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		if up, err := ParseUploadBinary(data); err == nil {
			enc, err := EncodeUploadBinary(up)
			if err != nil {
				t.Fatalf("accepted frame refuses to re-encode: %v", err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("upload roundtrip: % x != % x", enc, data)
			}
		}
		if ap, err := ParseSessionAppendBinary(data); err == nil {
			enc, err := EncodeSessionAppendBinary(ap)
			if err != nil {
				t.Fatalf("accepted append refuses to re-encode: %v", err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("append roundtrip: % x != % x", enc, data)
			}
		}
	})
}

// TestRegenBinaryCodecCorpus rewrites the checked-in fuzz corpus from the
// current encoders. Skipped unless REGEN_CORPUS=1 — run it after a wire
// format change so the corpus keeps seeding real frames.
func TestRegenBinaryCodecCorpus(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") == "" {
		t.Skip("set REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzBinaryCodec")
	}
	c := NewClient("http://unused", geo.NewProjection(_origin))
	u := uploadFor(t, 7, 12)
	req, err := c.BuildRequest(u)
	if err != nil {
		t.Fatal(err)
	}
	req.ID, req.Mode = "corpus-upload", "driving"
	upFrame, err := EncodeUploadBinary(req)
	if err != nil {
		t.Fatal(err)
	}
	areq, err := c.BuildSessionAppend("corpus-session", 2, u, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	apFrame, err := EncodeSessionAppendBinary(areq)
	if err != nil {
		t.Fatal(err)
	}
	noScans := &UploadRequest{ID: "", Points: []uploadPoint{
		{Lat: 32.06, Lon: 118.79, Time: 1656666000000},
		{Lat: -0.0, Lon: math.Inf(1), Time: 1656666001000},
	}}
	nsFrame, err := EncodeUploadBinary(noScans)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), upFrame...)
	corrupt[0] = 99
	req.Contributor = "corpus-device-7"
	contribFrame, err := EncodeUploadBinary(req)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{
		"seed-upload":             upFrame,
		"seed-upload-contributor": contribFrame,
		"seed-session-append":     apFrame,
		"seed-upload-no-scans":    nsFrame,
		"seed-truncated":          upFrame[:len(upFrame)/3],
		"seed-bad-version":        corrupt,
		"seed-header-only":        {wireVersion, wireKindUpload, 0, 0, 0, 0},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
