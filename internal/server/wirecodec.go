package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// Binary request codec for the upload and session-append endpoints,
// negotiated by Content-Type. JSON remains the default wire form; clients
// that opt in send the same logical request as a versioned, length-checked
// binary frame and skip JSON tokenisation on both ends. The framing
// discipline is the WAL codec's: fixed little-endian fields, u16/u8 length
// prefixes for strings, and exact IEEE-754 bits for every float — the
// wire carries the lat/lon float64 bits that JSON also roundtrips
// losslessly, so a binary upload decodes to the byte-identical
// UploadRequest a JSON upload does and the verdict (probabilities
// included) is bit-identical across the two encodings.
//
// Frame layout (little endian):
//
//	u8 version (1) | u8 kind | u32 payloadLen | payload
//
// kind=1 (upload) payload:
//
//	u16 len(id) | id | u8 mode | u32 nPoints |
//	nPoints × { f64 lat | f64 lon | i64 unixMillis } |
//	nPoints × { u16 nObs | nObs × { u8 len(mac) | mac | i16 rssi } }
//	[ | u16 len(contributor) | contributor ]
//
// The contributor block is present iff the contributor is non-empty
// (the parser rejects a present-but-empty block), so pre-provenance
// frames — which end after the scans — parse unchanged as the legacy
// anonymous contributor and canonicity is preserved in both directions.
//
// kind=2 (session append) payload:
//
//	u16 len(sessionID) | sessionID | u32 seq | u32 nPoints |
//	points and scans as in kind=1 (no contributor block: identity is
//	bound at /v1/session/open)
//
// The encoding is canonical — fixed field order, the one optional field
// constrained so only one encoding exists per value, no redundancy beyond
// payloadLen (which must equal the remaining byte count exactly) — so
// encode(parse(frame)) reproduces the frame byte for byte;
// FuzzBinaryCodec pins that property.

// ContentTypeBinary is the negotiated media type of binary request bodies.
const ContentTypeBinary = "application/x-trajforge-v1"

const (
	wireVersion           = 1
	wireKindUpload        = 1
	wireKindSessionAppend = 2

	// wirePointSize is the fixed per-point cost (lat, lon, millis); scans
	// follow separately. Used for the claims check before allocating.
	wirePointSize = 24
)

// Typed decode failures, distinguishable with errors.Is.
var (
	// ErrWireTruncated: the frame ends before a declared field.
	ErrWireTruncated = errors.New("server: truncated binary frame")
	// ErrWireOversized: a declared count cannot fit the frame's bytes, or
	// the payload length disagrees with the body.
	ErrWireOversized = errors.New("server: oversized binary frame")
	// ErrWireVersion: the version byte is not a version this server speaks.
	ErrWireVersion = errors.New("server: unsupported binary frame version")
	// ErrWireKind: the kind byte does not match the endpoint.
	ErrWireKind = errors.New("server: wrong binary frame kind")
	// ErrWireValue: a field holds a value with no wire meaning (an unknown
	// travel mode, an RSSI outside int16).
	ErrWireValue = errors.New("server: invalid binary frame value")
)

// wireReader is a bounds-checked cursor over one binary request frame —
// the frameReader idiom with typed errors, since wire decode failures are
// client-visible (400) and tested for identity.
type wireReader struct {
	data []byte
	off  int
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) || r.off+n < 0 {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrWireTruncated, n, r.off, len(r.data))
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *wireReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *wireReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// wireHeader parses and checks the three-field frame header, returning the
// payload cursor.
func wireHeader(data []byte, wantKind byte) (*wireReader, error) {
	r := &wireReader{data: data}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("%w: got version %d, speak %d", ErrWireVersion, ver, wireVersion)
	}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if kind != wantKind {
		return nil, fmt.Errorf("%w: got kind %d, endpoint takes %d", ErrWireKind, kind, wantKind)
	}
	plen, err := r.u32()
	if err != nil {
		return nil, err
	}
	rest := len(data) - r.off
	if int64(plen) > int64(rest) {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, %d present", ErrWireTruncated, plen, rest)
	}
	if int(plen) < rest {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, %d present", ErrWireOversized, plen, rest)
	}
	return r, nil
}

// wireMode maps a mode byte to the wire (JSON) mode string; 0 is the
// unset mode and stays "".
func wireMode(b byte) (string, error) {
	if b == 0 {
		return "", nil
	}
	m := trajectory.Mode(b)
	for _, known := range trajectory.Modes() {
		if m == known {
			return m.String(), nil
		}
	}
	return "", fmt.Errorf("%w: unknown travel mode byte %d", ErrWireValue, b)
}

// wireModeByte is wireMode's inverse for the encoder.
func wireModeByte(mode string) (byte, error) {
	if mode == "" {
		return 0, nil
	}
	m, err := trajectory.ParseMode(mode)
	if err != nil {
		return 0, err
	}
	return byte(m), nil
}

// wirePoints parses n points and their scans off the cursor.
func wirePoints(r *wireReader, n uint32) ([]uploadPoint, error) {
	if int64(n)*wirePointSize > int64(len(r.data)-r.off) {
		return nil, fmt.Errorf("%w: claims %d points in %d payload bytes", ErrWireOversized, n, len(r.data)-r.off)
	}
	pts := make([]uploadPoint, n)
	for i := range pts {
		lat, err := r.u64()
		if err != nil {
			return nil, err
		}
		lon, err := r.u64()
		if err != nil {
			return nil, err
		}
		ms, err := r.u64()
		if err != nil {
			return nil, err
		}
		pts[i].Lat = math.Float64frombits(lat)
		pts[i].Lon = math.Float64frombits(lon)
		pts[i].Time = int64(ms)
	}
	for i := range pts {
		nObs, err := r.u16()
		if err != nil {
			return nil, err
		}
		if nObs == 0 {
			continue // nil scan, as JSON's absent "scan" field decodes
		}
		scan := make([]wifi.Observation, 0, nObs)
		for j := 0; j < int(nObs); j++ {
			macLen, err := r.u8()
			if err != nil {
				return nil, err
			}
			mac, err := r.take(int(macLen))
			if err != nil {
				return nil, err
			}
			rssi, err := r.u16()
			if err != nil {
				return nil, err
			}
			scan = append(scan, wifi.Observation{MAC: string(mac), RSSI: int(int16(rssi))})
		}
		pts[i].Scan = scan
	}
	return pts, nil
}

// appendWirePoints encodes points and scans onto buf — the encoder wirePoints
// inverts.
func appendWirePoints(buf []byte, pts []uploadPoint) ([]byte, error) {
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Lat))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Lon))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Time))
	}
	for i, p := range pts {
		if len(p.Scan) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: point %d scan has %d observations", ErrWireValue, i, len(p.Scan))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Scan)))
		for _, obs := range p.Scan {
			if len(obs.MAC) > math.MaxUint8 {
				return nil, fmt.Errorf("%w: MAC %q longer than 255 bytes", ErrWireValue, obs.MAC)
			}
			if obs.RSSI < math.MinInt16 || obs.RSSI > math.MaxInt16 {
				return nil, fmt.Errorf("%w: RSSI %d outside int16", ErrWireValue, obs.RSSI)
			}
			buf = append(buf, byte(len(obs.MAC)))
			buf = append(buf, obs.MAC...)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(obs.RSSI)))
		}
	}
	return buf, nil
}

// finishWireFrame stamps the payload length into the header slot reserved
// by the encoders.
func finishWireFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(buf)-6))
	return buf
}

// EncodeUploadBinary renders an upload request as a binary frame for
// Content-Type ContentTypeBinary. It is the exact inverse of
// ParseUploadBinary on every frame the parser accepts.
func EncodeUploadBinary(req *UploadRequest) ([]byte, error) {
	if len(req.ID) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: id of %d bytes", ErrWireValue, len(req.ID))
	}
	mode, err := wireModeByte(req.Mode)
	if err != nil {
		return nil, err
	}
	if len(req.Contributor) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: contributor of %d bytes", ErrWireValue, len(req.Contributor))
	}
	buf := make([]byte, 6, 6+2+len(req.ID)+1+4+len(req.Points)*wirePointSize)
	buf[0], buf[1] = wireVersion, wireKindUpload
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.ID)))
	buf = append(buf, req.ID...)
	buf = append(buf, mode)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Points)))
	buf, err = appendWirePoints(buf, req.Points)
	if err != nil {
		return nil, err
	}
	if req.Contributor != "" {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Contributor)))
		buf = append(buf, req.Contributor...)
	}
	return finishWireFrame(buf), nil
}

// ParseUploadBinary parses a binary upload frame into the same
// UploadRequest the JSON decoder produces; semantic validation (coordinate
// ranges, point-count limits) stays with Service.decode, shared by both
// wire forms.
func ParseUploadBinary(data []byte) (*UploadRequest, error) {
	r, err := wireHeader(data, wireKindUpload)
	if err != nil {
		return nil, err
	}
	idLen, err := r.u16()
	if err != nil {
		return nil, err
	}
	id, err := r.take(int(idLen))
	if err != nil {
		return nil, err
	}
	modeByte, err := r.u8()
	if err != nil {
		return nil, err
	}
	mode, err := wireMode(modeByte)
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	pts, err := wirePoints(r, n)
	if err != nil {
		return nil, err
	}
	var contributor string
	if r.off != len(data) {
		cLen, err := r.u16()
		if err != nil {
			return nil, err
		}
		c, err := r.take(int(cLen))
		if err != nil {
			return nil, err
		}
		if len(c) == 0 {
			// An empty contributor must be encoded by omission, else two
			// frames would decode to the same request and canonicity breaks.
			return nil, fmt.Errorf("%w: empty contributor block", ErrWireValue)
		}
		contributor = string(c)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWireOversized, len(data)-r.off)
	}
	return &UploadRequest{ID: string(id), Mode: mode, Points: pts, Contributor: contributor}, nil
}

// EncodeSessionAppendBinary renders a session append as a binary frame.
func EncodeSessionAppendBinary(req *SessionAppendRequest) ([]byte, error) {
	if len(req.SessionID) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: session id of %d bytes", ErrWireValue, len(req.SessionID))
	}
	if req.Seq < 0 || int64(req.Seq) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: seq %d outside uint32", ErrWireValue, req.Seq)
	}
	buf := make([]byte, 6, 6+2+len(req.SessionID)+8+len(req.Points)*wirePointSize)
	buf[0], buf[1] = wireVersion, wireKindSessionAppend
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.SessionID)))
	buf = append(buf, req.SessionID...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Seq))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Points)))
	buf, err := appendWirePoints(buf, req.Points)
	if err != nil {
		return nil, err
	}
	return finishWireFrame(buf), nil
}

// ParseSessionAppendBinary parses a binary session-append frame.
func ParseSessionAppendBinary(data []byte) (*SessionAppendRequest, error) {
	r, err := wireHeader(data, wireKindSessionAppend)
	if err != nil {
		return nil, err
	}
	idLen, err := r.u16()
	if err != nil {
		return nil, err
	}
	id, err := r.take(int(idLen))
	if err != nil {
		return nil, err
	}
	seq, err := r.u32()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	pts, err := wirePoints(r, n)
	if err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWireOversized, len(data)-r.off)
	}
	return &SessionAppendRequest{SessionID: string(id), Seq: int(seq), Points: pts}, nil
}
