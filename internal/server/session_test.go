package server

import (
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/rssimap"
	"trajforge/internal/stream"
	"trajforge/internal/wifi"
)

// sameVerdict asserts two verdicts are bit-identical, probabilities
// included.
func sameVerdict(t *testing.T, got, want *Verdict) {
	t.Helper()
	if got.Accepted != want.Accepted || got.Reason != want.Reason {
		t.Fatalf("verdict = %+v, want %+v", got, want)
	}
	if len(got.Checks) != len(want.Checks) {
		t.Fatalf("checks = %v, want %v", got.Checks, want.Checks)
	}
	for stage, status := range want.Checks {
		if got.Checks[stage] != status {
			t.Fatalf("stage %s = %s, want %s", stage, got.Checks[stage], status)
		}
	}
	for name, pair := range map[string][2]*float64{
		"motion": {got.MotionProbReal, want.MotionProbReal},
		"wifi":   {got.WiFiProbFake, want.WiFiProbFake},
	} {
		g, w := pair[0], pair[1]
		if (g == nil) != (w == nil) {
			t.Fatalf("%s prob presence: %v vs %v", name, g, w)
		}
		if g != nil && math.Float64bits(*g) != math.Float64bits(*w) {
			t.Fatalf("%s prob %v != %v (bits differ)", name, *g, *w)
		}
	}
}

// streamUpload drives the upload through /v1/session in the given
// chunking and returns the close verdict.
func streamUpload(t *testing.T, client *Client, u *wifi.Upload, sizes []int) *Verdict {
	t.Helper()
	id, err := client.OpenSession(u.Traj.ID, u.Traj.Mode.String())
	if err != nil {
		t.Fatal(err)
	}
	lo := 0
	for seq, n := range sizes {
		ack, err := client.AppendSession(id, seq, u, lo, lo+n)
		if err != nil {
			t.Fatalf("chunk %d: %v", seq, err)
		}
		if ack.Seq != seq+1 || ack.Points != lo+n {
			t.Fatalf("chunk %d ack = %+v", seq, ack)
		}
		lo += n
	}
	if lo != u.Traj.Len() {
		t.Fatalf("chunking covers %d of %d points", lo, u.Traj.Len())
	}
	v, err := client.CloseSession(id)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSessionVerdictBitIdenticalToBatch is the subsystem's headline
// property over the wire: for arbitrary chunkings, closing a streaming
// session yields the verdict POSTing the assembled trajectory to
// /v1/trajectory produces — JSON roundtrip, projection, and probability
// bits included.
func TestSessionVerdictBitIdenticalToBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), persistRecords(rng, 400))
	if err != nil {
		t.Fatal(err)
	}
	det := trainTestDetector(t, store)
	// No ingestion and no replay history: the store is identical for both
	// paths regardless of call order.
	_, _, client := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9}, WiFi: det,
		Stream: &stream.Config{DisableEarlyExit: true},
	})

	for trial := 0; trial < 6; trial++ {
		u := uploadFor(t, int64(2000+trial), 12+trial*4)
		u.Traj.ID = "prop"
		if trial%2 == 1 { // forged uploads must agree bit-for-bit too
			for j := range u.Scans {
				u.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
			}
		}
		want, err := client.Upload(u)
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for n := u.Traj.Len(); n > 0; {
			c := 1 + rng.Intn(6)
			if c > n {
				c = n
			}
			sizes = append(sizes, c)
			n -= c
		}
		got := streamUpload(t, client, u, sizes)
		sameVerdict(t, got, want)
	}
}

func TestSessionAppendReplayIdempotent(t *testing.T) {
	_, _, client := newTestService(t, Config{Stream: &stream.Config{}})
	u := realisticUpload(t, 95)
	id, err := client.OpenSession("", "")
	if err != nil {
		t.Fatal(err)
	}
	first, err := client.AppendSession(id, 0, u, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.AppendSession(id, 0, u, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Replayed || again.Ack != first.Ack {
		t.Fatalf("replayed ack = %+v, first = %+v", again, first)
	}
	// The replay applied nothing: the next chunk still continues at 5.
	if _, err := client.AppendSession(id, 1, u, 5, 10); err != nil {
		t.Fatal(err)
	}
}

// TestMethodNotAllowedAllowHeaders pins RFC 9110 §15.5.6: every 405 on the
// /v1 surface names the methods the endpoint does accept.
func TestMethodNotAllowedAllowHeaders(t *testing.T) {
	_, ts, _ := newTestService(t, Config{Stream: &stream.Config{}})
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/v1/trajectory", "POST"},
		{http.MethodDelete, "/v1/trajectory", "POST"},
		{http.MethodPost, "/v1/stats", "GET"},
		{http.MethodPost, "/v1/health", "GET"},
		{http.MethodGet, "/v1/session/open", "POST"},
		{http.MethodGet, "/v1/session/append", "POST"},
		{http.MethodPut, "/v1/session/close", "POST"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != tc.allow {
			t.Fatalf("%s %s Allow = %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
	}
}

func TestSessionDisabledAnswers404(t *testing.T) {
	_, _, client := newTestService(t, Config{})
	_, err := client.OpenSession("", "")
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusNotFound {
		t.Fatalf("open without streaming = %v", err)
	}
}

func TestSessionErrorMapping(t *testing.T) {
	var clkMu sync.Mutex
	now := _t0
	clock := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clkMu.Lock()
		now = now.Add(d)
		clkMu.Unlock()
	}
	svc, _, client := newTestService(t, Config{Stream: &stream.Config{
		MaxSessions: 2, IdleTimeout: time.Minute, Clock: clock,
	}})
	u := realisticUpload(t, 96)

	// Unknown session.
	if _, err := client.AppendSession("ghost", 0, u, 0, 2); statusOf(err) != http.StatusNotFound {
		t.Fatalf("unknown session = %v", err)
	}
	if _, err := client.CloseSession("ghost"); statusOf(err) != http.StatusNotFound {
		t.Fatalf("close unknown = %v", err)
	}

	id, err := client.OpenSession("dup", "")
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate id.
	if _, err := client.OpenSession("dup", ""); statusOf(err) != http.StatusConflict {
		t.Fatalf("duplicate open = %v", err)
	}
	// Out-of-order chunk.
	if _, err := client.AppendSession(id, 5, u, 0, 2); statusOf(err) != http.StatusConflict {
		t.Fatalf("out-of-order = %v", err)
	}
	// A negative seq is an ordering conflict, not a replay of chunk -1.
	if _, err := client.AppendSession(id, -1, u, 0, 2); statusOf(err) != http.StatusConflict {
		t.Fatalf("negative seq = %v", err)
	}
	// An oversized client-supplied id is refused up front — before the open
	// frame could reach the WAL appender and fail there, degrading the
	// whole service.
	if _, err := client.OpenSession(strings.Repeat("x", stream.MaxIDLen+1), ""); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("oversized id = %v", err)
	}
	// Bad mode.
	if _, err := client.OpenSession("", "hovercraft"); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("bad mode = %v", err)
	}

	// Admission gate: second live session fills the table, third refused
	// with a Retry-After hint.
	if _, err := client.OpenSession("filler", ""); err != nil {
		t.Fatal(err)
	}
	_, err = client.OpenSession("overflow", "")
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusTooManyRequests || se.RetryAfter <= 0 {
		t.Fatalf("over-limit open = %v", err)
	}

	// Expiry: past the idle deadline the session answers 410 and is
	// evicted, freeing its admission slot; a later append finds nothing.
	advance(2 * time.Minute)
	if _, err := client.AppendSession(id, 0, u, 0, 2); statusOf(err) != http.StatusGone {
		t.Fatalf("expired append = %v", err)
	}
	if _, err := client.AppendSession(id, 0, u, 0, 2); statusOf(err) != http.StatusNotFound {
		t.Fatalf("append after eviction = %v", err)
	}
	// The freed slots admit new sessions again (the open path sweeps).
	if _, err := client.OpenSession("overflow", ""); err != nil {
		t.Fatalf("open after sweep = %v", err)
	}
	st := svc.Stats()
	if st.Sessions == nil || st.Sessions.Expired < 1 {
		t.Fatalf("session stats = %+v", st.Sessions)
	}
}

func statusOf(err error) int {
	if se, ok := err.(*StatusError); ok {
		return se.Code
	}
	return 0
}

func TestSessionEarlyExitOverHTTP(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), persistRecords(rng, 400))
	if err != nil {
		t.Fatal(err)
	}
	det := trainTestDetector(t, store)
	svc, _, client := newTestService(t, Config{
		WiFi: det,
		Stream: &stream.Config{
			Window: 8, EarlyExit: 0.5, EarlyExitAfter: 8,
		},
	})
	u := uploadFor(t, 98, 16)
	for j := range u.Scans {
		u.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
	}
	id, err := client.OpenSession("", "walking")
	if err != nil {
		t.Fatal(err)
	}
	ack, err := client.AppendSession(id, 0, u, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Rejected {
		t.Fatalf("forged prefix not rejected: %+v", ack)
	}
	// Appends after the exit are refused with 409.
	if _, err := client.AppendSession(id, 1, u, 12, 16); statusOf(err) != http.StatusConflict {
		t.Fatalf("append after rejection = %v", err)
	}
	// Close records the rejection without running the pipeline.
	v, err := client.CloseSession(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["wifi"] != "fail" || v.Checks["rules"] != "skipped" {
		t.Fatalf("verdict = %+v", v)
	}
	if v.WiFiProbFake == nil || *v.WiFiProbFake < 0.5 {
		t.Fatalf("provisional prob = %v", v.WiFiProbFake)
	}
	st := svc.Stats()
	if st.Rejected != 1 || st.Sessions.EarlyExits != 1 || st.Sessions.Closed != 1 {
		t.Fatalf("stats = %+v / %+v", st, st.Sessions)
	}
}

// TestSessionReplayRecoversFailedScore pins the retry contract: when a
// chunk commits (and journals) but the scoring step fails before the
// client hears back, retrying the same seq must answer with a freshly
// scored ack — not echo the stale pre-score one, which would silently lose
// the chunk's provisional verdict.
func TestSessionReplayRecoversFailedScore(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), persistRecords(rng, 400))
	if err != nil {
		t.Fatal(err)
	}
	det := trainTestDetector(t, store)
	svc, _, client := newTestService(t, Config{
		WiFi: det, Stream: &stream.Config{DisableEarlyExit: true},
	})
	u := uploadFor(t, 110, 12)
	id, err := client.OpenSession("retry", "walking")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the failure: commit the chunk without scoring it. The
	// handler runs Buffer then Score; a Score failure leaves exactly this
	// state behind — chunk applied and journaled, no provisional verdict.
	if _, _, err := svc.bufferChunk(id, 0, u.Traj.Points[:8], u.Scans[:8]); err != nil {
		t.Fatal(err)
	}
	// The retry replays the committed chunk and must carry a fresh verdict.
	ack, err := client.AppendSession(id, 0, u, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Replayed {
		t.Fatalf("retry not recognised as replay: %+v", ack)
	}
	if ack.Scored != 8 || ack.WindowPoints == 0 {
		t.Fatalf("replayed ack not rescored: %+v", ack)
	}
}

func TestSessionCloseTooShortReopens(t *testing.T) {
	_, _, client := newTestService(t, Config{Stream: &stream.Config{}})
	u := realisticUpload(t, 99)
	id, err := client.OpenSession("", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.AppendSession(id, 0, u, 0, 1); err != nil {
		t.Fatal(err)
	}
	// One point cannot enter the pipeline; the session reopens so the
	// client can append the rest and close again.
	if _, err := client.CloseSession(id); statusOf(err) != http.StatusBadRequest {
		t.Fatalf("short close = %v", err)
	}
	if _, err := client.AppendSession(id, 1, u, 1, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CloseSession(id); err != nil {
		t.Fatalf("close after repair = %v", err)
	}
}

// TestSessionOnlineIngestion closes the paper's crowdsourcing loop over
// the streaming path: a session accepted as real must grow the RSSI store
// exactly as the batch path would — feature probes answer bit-identically.
func TestSessionOnlineIngestion(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	recs := persistRecords(rng, 400)
	storeA, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	det := trainTestDetector(t, storeA)
	detB := &detect.WiFiDetector{Store: storeB, Model: det.Model, Features: det.Features}

	_, _, sessClient := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9}, WiFi: det, IngestAccepted: true,
		Stream: &stream.Config{DisableEarlyExit: true},
	})
	_, _, batchClient := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9}, WiFi: detB, IngestAccepted: true,
	})

	u := uploadFor(t, 102, 20)
	v := streamUpload(t, sessClient, u, []int{7, 7, 6})
	if !v.Accepted {
		t.Fatalf("session verdict = %+v", v)
	}
	w, err := batchClient.Upload(u)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Accepted {
		t.Fatalf("batch verdict = %+v", w)
	}

	if storeA.Len() != storeB.Len() {
		t.Fatalf("store sizes %d != %d", storeA.Len(), storeB.Len())
	}
	probe := uploadFor(t, 103, 30)
	fa, err := storeA.Features(probe, det.Features)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := storeB.Features(probe, det.Features)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		if math.Float64bits(fa[i]) != math.Float64bits(fb[i]) {
			t.Fatalf("feature %d: %v != %v (bits differ)", i, fa[i], fb[i])
		}
	}
}

// TestSessionCrashRecoveryResume crashes mid-session and proves recovery
// resumes the session exactly where the last acknowledged chunk left off:
// the remaining chunks append with their original sequence numbers and the
// final verdict matches the never-crashed run bit-for-bit.
func TestSessionCrashRecoveryResume(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(105))
	recs := persistRecords(rng, 400)

	// Reference: the same upload closed against a never-crashed twin.
	refStore, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	det := trainTestDetector(t, refStore)
	_, _, refClient := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9},
		WiFi:   &detect.WiFiDetector{Store: refStore, Model: det.Model, Features: det.Features},
		Stream: &stream.Config{DisableEarlyExit: true},
	})
	u := uploadFor(t, 106, 18)
	want := streamUpload(t, refClient, u, []int{6, 6, 6})

	// Run 1: open, append two chunks, flush, crash without closing.
	p1, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store1, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	_, _, client1 := newTestService(t, Config{
		Motion:  &fixedMotion{prob: 0.9},
		WiFi:    &detect.WiFiDetector{Store: store1, Model: det.Model, Features: det.Features},
		Stream:  &stream.Config{DisableEarlyExit: true},
		Persist: p1, IngestAccepted: true,
	})
	if err := p1.Compact(); err != nil {
		t.Fatal(err)
	}
	id, err := client1.OpenSession("survivor", "walking")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.AppendSession(id, 0, u, 0, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := client1.AppendSession(id, 1, u, 6, 12); err != nil {
		t.Fatal(err)
	}
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon without Close.

	// Run 2: recovery resumes the session with both chunks intact.
	p2, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state := p2.Recovered()
	if len(state.Sessions) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(state.Sessions))
	}
	sess := state.Sessions[0]
	if sess.ID != "survivor" || sess.Chunks != 2 || len(sess.Points) != 12 {
		t.Fatalf("recovered session = id %q, %d chunks, %d points", sess.ID, sess.Chunks, len(sess.Points))
	}
	store2, err := rssimap.NewStore(rssimap.DefaultConfig(), state.Records)
	if err != nil {
		t.Fatal(err)
	}
	svc2, _, client2 := newTestService(t, Config{
		Motion:  &fixedMotion{prob: 0.9},
		WiFi:    &detect.WiFiDetector{Store: store2, Model: det.Model, Features: det.Features},
		Stream:  &stream.Config{DisableEarlyExit: true},
		Persist: p2, IngestAccepted: true,
	})
	svc2.Restore(state)
	if st := svc2.Stats(); st.Sessions.Resumed != 1 || st.Sessions.Open != 1 {
		t.Fatalf("restored session stats = %+v", st.Sessions)
	}
	// The client continues where its last acknowledged chunk left off.
	ack, err := client2.AppendSession(id, 2, u, 12, 18)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Points != 18 {
		t.Fatalf("resumed ack = %+v", ack)
	}
	got, err := client2.CloseSession(id)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdict(t, got, want)

	// The verdict frame is durable: a third incarnation sees the session
	// resolved (accepted with its full trajectory), not in flight.
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	p3, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state3 := p3.Recovered()
	if len(state3.Sessions) != 0 {
		t.Fatalf("run 3 recovered %d in-flight sessions, want 0", len(state3.Sessions))
	}
	if state3.Accepted != 1 {
		t.Fatalf("run 3 accepted = %d, want 1", state3.Accepted)
	}
}

// TestSessionEarlyExitSurvivesCrash proves the mid-stream rejection is as
// durable as any verdict: after a crash, the recovered session is still
// rejected — appends stay refused and close records the rejection without
// running the pipeline — instead of silently reverting to open.
func TestSessionEarlyExitSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(111))
	recs := persistRecords(rng, 400)
	store1, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	det := trainTestDetector(t, store1)
	streamCfg := func() *stream.Config {
		return &stream.Config{Window: 8, EarlyExit: 0.5, EarlyExitAfter: 8}
	}

	// Run 1: stream a forged prefix until the early exit fires, flush,
	// crash without closing.
	p1, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client1 := newTestService(t, Config{
		WiFi: det, Stream: streamCfg(), Persist: p1,
	})
	if err := p1.Compact(); err != nil {
		t.Fatal(err)
	}
	u := uploadFor(t, 112, 16)
	for j := range u.Scans {
		u.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
	}
	id, err := client1.OpenSession("fraudster", "walking")
	if err != nil {
		t.Fatal(err)
	}
	ack, err := client1.AppendSession(id, 0, u, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Rejected {
		t.Fatalf("forged prefix not rejected: %+v", ack)
	}
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Run 2: the rejection marker came back with the session.
	p2, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state := p2.Recovered()
	if len(state.Sessions) != 1 || !state.Sessions[0].Rejected {
		t.Fatalf("recovered sessions = %+v", state.Sessions)
	}
	store2, err := rssimap.NewStore(rssimap.DefaultConfig(), state.Records)
	if err != nil {
		t.Fatal(err)
	}
	svc2, _, client2 := newTestService(t, Config{
		WiFi:   &detect.WiFiDetector{Store: store2, Model: det.Model, Features: det.Features},
		Stream: streamCfg(), Persist: p2,
	})
	svc2.Restore(state)
	if _, err := client2.AppendSession(id, 1, u, 12, 16); statusOf(err) != http.StatusConflict {
		t.Fatalf("append after recovered rejection = %v", err)
	}
	v, err := client2.CloseSession(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["wifi"] != "fail" || v.Checks["rules"] != "skipped" {
		t.Fatalf("verdict after recovery = %+v", v)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 3: the verdict resolved the session for good.
	p3, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st3 := p3.Recovered()
	if len(st3.Sessions) != 0 || st3.Rejected != 1 || st3.Accepted != 0 {
		t.Fatalf("run 3 recovery = %d sessions, %d/%d verdicts",
			len(st3.Sessions), st3.Accepted, st3.Rejected)
	}
}

// TestSessionRecoveryAbortsWhenStreamingDisabled proves recovery fails
// safe: in-flight sessions recovered into a configuration that cannot hold
// them are aborted with a journaled verdict, so the next recovery does not
// see them again (and no chunk is silently ingested).
func TestSessionRecoveryAbortsWhenStreamingDisabled(t *testing.T) {
	dir := t.TempDir()
	p1, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client1 := newTestService(t, Config{
		Stream: &stream.Config{}, Persist: p1,
	})
	if err := p1.Compact(); err != nil {
		t.Fatal(err)
	}
	u := realisticUpload(t, 107)
	id, err := client1.OpenSession("doomed", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.AppendSession(id, 0, u, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash, then restart WITHOUT streaming.
	p2, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(p2.Recovered().Sessions); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	svc2, _, _ := newTestService(t, Config{Persist: p2})
	svc2.Restore(p2.Recovered())
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	// The abort verdict is in the log: a third run recovers nothing.
	p3, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := p3.Recovered()
	if len(st.Sessions) != 0 || st.Accepted != 0 || st.Rejected != 0 {
		t.Fatalf("post-abort recovery = %d sessions, %d/%d verdicts",
			len(st.Sessions), st.Accepted, st.Rejected)
	}
}

// TestSessionCodecRoundtrip pins the new WAL frame payload codecs.
func TestSessionCodecRoundtrip(t *testing.T) {
	buf, err := appendSessionOpen(nil, "sess-1", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	id, mode, contrib, err := decodeSessionOpen(buf)
	if err != nil || id != "sess-1" || mode != 2 || contrib != "" {
		t.Fatalf("decoded open = %q/%v/%q/%v", id, mode, contrib, err)
	}
	for n := range buf {
		if _, _, _, err := decodeSessionOpen(buf[:n]); err == nil {
			t.Fatalf("open prefix of %d bytes decoded cleanly", n)
		}
	}
	if _, _, _, err := decodeSessionOpen(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := appendSessionOpen(nil, "", 0, ""); err == nil {
		t.Fatal("empty id encoded")
	}

	// A contributor-carrying open frame roundtrips; the prefix that stops
	// at the mode byte is itself a valid anonymous legacy frame, so the
	// truncation sweep starts after it.
	buf, err = appendSessionOpen(nil, "sess-1", 2, "device-7")
	if err != nil {
		t.Fatal(err)
	}
	legacyLen := 2 + len("sess-1") + 1
	id, mode, contrib, err = decodeSessionOpen(buf)
	if err != nil || id != "sess-1" || mode != 2 || contrib != "device-7" {
		t.Fatalf("decoded open = %q/%v/%q/%v", id, mode, contrib, err)
	}
	for n := legacyLen + 1; n < len(buf); n++ {
		if _, _, _, err := decodeSessionOpen(buf[:n]); err == nil {
			t.Fatalf("open prefix of %d bytes decoded cleanly", n)
		}
	}
	// An explicitly-present empty contributor block is refused: the
	// canonical encoding of "no contributor" is no block at all.
	bad := append(append([]byte(nil), buf[:legacyLen]...), 0, 0)
	if _, _, _, err := decodeSessionOpen(bad); err == nil {
		t.Fatal("empty contributor block accepted")
	}

	buf, err = appendSessionVerdict(nil, "sess-2", sessionAccepted, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	id, outcome, pFake, err := decodeSessionVerdict(buf)
	if err != nil || id != "sess-2" || outcome != sessionAccepted || pFake != 0.25 {
		t.Fatalf("decoded verdict = %q/%d/%v/%v", id, outcome, pFake, err)
	}
	// The prefix that stops at the outcome byte is a valid legacy frame
	// (score recovers as 0); every other truncation must error.
	legacyLen = 2 + len("sess-2") + 1
	for n := range buf {
		_, _, gotScore, err := decodeSessionVerdict(buf[:n])
		if n == legacyLen {
			if err != nil || gotScore != 0 {
				t.Fatalf("legacy verdict frame = %v/%v", gotScore, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("verdict prefix of %d bytes decoded cleanly", n)
		}
	}

	// Rejected/aborted verdicts carry no score and roundtrip bare.
	buf, err = appendSessionVerdict(nil, "sess-2", sessionAborted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id, outcome, _, err := decodeSessionVerdict(buf); err != nil || outcome != sessionAborted || id != "sess-2" {
		t.Fatalf("decoded abort = %q/%d/%v", id, outcome, err)
	}

	buf, err = appendSessionReject(nil, "sess-3")
	if err != nil {
		t.Fatal(err)
	}
	id, err = decodeSessionReject(buf)
	if err != nil || id != "sess-3" {
		t.Fatalf("decoded reject = %q/%v", id, err)
	}
	for n := range buf {
		if _, err := decodeSessionReject(buf[:n]); err == nil {
			t.Fatalf("reject prefix of %d bytes decoded cleanly", n)
		}
	}
	if _, err := decodeSessionReject(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := appendSessionReject(nil, ""); err == nil {
		t.Fatal("empty id encoded")
	}
}

// TestSessionSlowChunksStraddleTTLSweep is the HTTP-level pin of the
// absolute-TTL rule: a session streaming chunks slowly enough to straddle
// the TTL — while every append keeps its idle deadline fresh — must get
// 410 Gone on the append that lands past the TTL and must never receive a
// partial verdict from close. A sweep between the expiry and the next
// request turns the 410 into a 404 (evicted), never into a verdict.
func TestSessionSlowChunksStraddleTTLSweep(t *testing.T) {
	var clkMu sync.Mutex
	now := _t0
	clock := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clkMu.Lock()
		now = now.Add(d)
		clkMu.Unlock()
	}
	svc, _, client := newTestService(t, Config{Stream: &stream.Config{
		TTL: 5 * time.Minute, IdleTimeout: time.Hour, Clock: clock,
	}})
	u := uploadFor(t, 118, 12)

	id, err := client.OpenSession("slow-ttl", "")
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 3; seq++ {
		ack, err := client.AppendSession(id, seq, u, seq*3, (seq+1)*3)
		if err != nil {
			t.Fatalf("chunk %d at %v: %v", seq, clock().Sub(_t0), err)
		}
		if ack.Rejected {
			t.Fatalf("chunk %d rejected mid-stream", seq)
		}
		advance(2 * time.Minute)
	}
	// t = 6m > TTL = 5m; the idle deadline is 2 minutes fresh. The append
	// straddling the TTL answers 410 — the client learns the session is
	// dead, not that its chunk was acked.
	if _, err := client.AppendSession(id, 3, u, 9, 12); statusOf(err) != http.StatusGone {
		t.Fatalf("append past TTL = %v, want 410", err)
	}
	// The 410 evicted the session; a retried close finds nothing — and in
	// particular no partial verdict over the 9 buffered points.
	if _, err := client.CloseSession(id); statusOf(err) != http.StatusNotFound {
		t.Fatalf("close after TTL eviction = %v, want 404", err)
	}

	// Second session: the ticker sweep (rather than a straddling request)
	// collects it once the TTL passes, with the same no-partial-verdict
	// outcome for the client.
	id2, err := client.OpenSession("slow-ttl-2", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.AppendSession(id2, 0, u, 0, 6); err != nil {
		t.Fatal(err)
	}
	advance(6 * time.Minute)
	if n := svc.SweepSessions(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if _, err := client.AppendSession(id2, 1, u, 6, 9); statusOf(err) != http.StatusNotFound {
		t.Fatalf("append after sweep = %v, want 404", err)
	}
	if _, err := client.CloseSession(id2); statusOf(err) != http.StatusNotFound {
		t.Fatalf("close after sweep = %v, want 404", err)
	}
	st := svc.Stats()
	if st.Sessions == nil || st.Sessions.Expired != 2 {
		t.Fatalf("expired sessions = %+v, want 2", st.Sessions)
	}
}
