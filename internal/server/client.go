package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"trajforge/internal/geo"
	"trajforge/internal/wifi"
)

// Client is a minimal client for the verification service, used by the
// example applications and the end-to-end tests.
type Client struct {
	BaseURL    string
	Projection *geo.Projection
	HTTPClient *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string, pr *geo.Projection) *Client {
	return &Client{BaseURL: baseURL, Projection: pr, HTTPClient: http.DefaultClient}
}

// BuildRequest converts an upload to the wire form.
func (c *Client) BuildRequest(u *wifi.Upload) (*UploadRequest, error) {
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("server: build request: %w", err)
	}
	req := &UploadRequest{ID: u.Traj.ID, Points: make([]uploadPoint, u.Traj.Len())}
	if u.Traj.Mode != 0 {
		req.Mode = u.Traj.Mode.String()
	}
	for i, p := range u.Traj.Points {
		ll := c.Projection.ToLatLon(p.Pos)
		req.Points[i] = uploadPoint{
			Lat:  ll.Lat,
			Lon:  ll.Lon,
			Time: p.Time.UnixMilli(),
			Scan: u.Scans[i],
		}
	}
	return req, nil
}

// Upload sends the trajectory and returns the provider's verdict.
func (c *Client) Upload(u *wifi.Upload) (*Verdict, error) {
	req, err := c.BuildRequest(u)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("server: marshal upload: %w", err)
	}
	resp, err := c.HTTPClient.Post(c.BaseURL+"/v1/trajectory", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: post upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("server: upload rejected with status %d: %s", resp.StatusCode, e.Error)
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("server: decode verdict: %w", err)
	}
	return &v, nil
}

// FetchStats retrieves the provider counters.
func (c *Client) FetchStats() (*Stats, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("server: get stats: %w", err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("server: decode stats: %w", err)
	}
	return &s, nil
}
