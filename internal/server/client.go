package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/resilience"
	"trajforge/internal/wifi"
)

// StatusError is a non-200 answer from the verification service, carrying
// enough structure for callers (and the retry loop) to branch on: the
// status code, the server's error message, and its Retry-After hint.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Body is the server's error message (the "error" field of the JSON
	// body, or the raw body when it was not JSON).
	Body string
	// RetryAfter is the server's Retry-After hint, 0 when absent.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: status %d: %s", e.Code, e.Body)
}

// Retryable reports whether the failure is worth retrying: overload
// shedding (429) and unavailability (502/503/504) pass transiently, while
// client errors (400/404/405/413) will fail identically forever.
func (e *StatusError) Retryable() bool {
	switch e.Code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client is the client for the verification service, used by the example
// applications, the load generator, and the end-to-end tests. With a
// non-zero Retry policy it retries shed (429), degraded (503), and
// transport-level failures with decorrelated-jitter backoff, stamping an
// Idempotency-Key header per logical upload so the server can collapse
// wire retries of the same operation into one recorded verdict.
type Client struct {
	BaseURL    string
	Projection *geo.Projection
	HTTPClient *http.Client
	// Retry governs upload retries; the zero value disables them.
	Retry resilience.RetryPolicy
	// Binary switches uploads and session appends to the binary wire form
	// (Content-Type ContentTypeBinary). Verdicts are bit-identical to the
	// JSON wire; only the request encoding changes.
	Binary bool
}

// NewClient returns a client with no retries (legacy behaviour).
func NewClient(baseURL string, pr *geo.Projection) *Client {
	return &Client{BaseURL: baseURL, Projection: pr, HTTPClient: http.DefaultClient}
}

// NewRetryingClient returns a client with the default retry policy and a
// bounded per-request transport timeout.
func NewRetryingClient(baseURL string, pr *geo.Projection) *Client {
	return &Client{
		BaseURL:    baseURL,
		Projection: pr,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		Retry:      resilience.DefaultRetryPolicy(),
	}
}

// BuildRequest converts an upload to the wire form.
func (c *Client) BuildRequest(u *wifi.Upload) (*UploadRequest, error) {
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("server: build request: %w", err)
	}
	req := &UploadRequest{
		ID:          u.Traj.ID,
		Contributor: u.Contributor,
		Points:      make([]uploadPoint, u.Traj.Len()),
	}
	if u.Traj.Mode != 0 {
		req.Mode = u.Traj.Mode.String()
	}
	for i, p := range u.Traj.Points {
		ll := c.Projection.ToLatLon(p.Pos)
		req.Points[i] = uploadPoint{
			Lat:  ll.Lat,
			Lon:  ll.Lon,
			Time: p.Time.UnixMilli(),
			Scan: u.Scans[i],
		}
	}
	return req, nil
}

// Upload sends the trajectory and returns the provider's verdict.
func (c *Client) Upload(u *wifi.Upload) (*Verdict, error) {
	return c.UploadContext(context.Background(), u)
}

// UploadContext sends the trajectory under the context's deadline,
// retrying per the client's Retry policy. All wire attempts of one call
// share an Idempotency-Key, so a retry after a lost response returns the
// verdict the server already recorded instead of double-ingesting.
func (c *Client) UploadContext(ctx context.Context, u *wifi.Upload) (*Verdict, error) {
	req, err := c.BuildRequest(u)
	if err != nil {
		return nil, err
	}
	body, err := c.EncodeUpload(req)
	if err != nil {
		return nil, err
	}
	key := NewIdempotencyKey()
	retrier := resilience.NewRetrier(c.Retry)
	for {
		v, err := c.postUpload(ctx, body, key)
		if err == nil {
			return v, nil
		}
		floor, retryable := retryDisposition(err)
		if !retryable || ctx.Err() != nil {
			return nil, err
		}
		d, ok := retrier.Next(floor)
		if !ok {
			return nil, fmt.Errorf("server: retries exhausted: %w", err)
		}
		if serr := resilience.Sleep(ctx, d); serr != nil {
			return nil, fmt.Errorf("server: %v while backing off from: %w", serr, err)
		}
	}
}

// retryDisposition classifies one attempt's failure: transport errors are
// retryable (the request may never have arrived — the idempotency key
// makes the retry safe even if it did), typed status errors decide for
// themselves and may carry a server-mandated delay floor.
func retryDisposition(err error) (floor time.Duration, retryable bool) {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter, se.Retryable()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	return 0, true
}

// EncodeUpload renders the request body in the client's wire form: the
// binary frame when Binary is set, canonical JSON otherwise.
func (c *Client) EncodeUpload(req *UploadRequest) ([]byte, error) {
	if c.Binary {
		return EncodeUploadBinary(req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("server: marshal upload: %w", err)
	}
	return body, nil
}

// EncodeSessionAppend renders an append body in the client's wire form.
func (c *Client) EncodeSessionAppend(req *SessionAppendRequest) ([]byte, error) {
	if c.Binary {
		return EncodeSessionAppendBinary(req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("server: marshal session append: %w", err)
	}
	return body, nil
}

// contentType is the Content-Type header of the client's wire form.
func (c *Client) contentType() string {
	if c.Binary {
		return ContentTypeBinary
	}
	return "application/json"
}

// postUpload performs one wire attempt.
func (c *Client) postUpload(ctx context.Context, body []byte, key string) (*Verdict, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/trajectory", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: build post: %w", err)
	}
	hreq.Header.Set("Content-Type", c.contentType())
	if key != "" {
		hreq.Header.Set("Idempotency-Key", key)
	}
	resp, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("server: post upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeStatusError(resp)
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("server: decode verdict: %w", err)
	}
	return &v, nil
}

// decodeStatusError builds the typed error for a non-200 response.
func decodeStatusError(resp *http.Response) *StatusError {
	se := &StatusError{Code: resp.StatusCode}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil {
		se.Body = e.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// OpenSession opens a streaming verification session and returns its id.
// id may be empty (the server generates one); mode is the claimed travel
// mode as in batch uploads ("" = unknown).
func (c *Client) OpenSession(id, mode string) (string, error) {
	return c.OpenSessionAs(id, mode, "")
}

// OpenSessionAs is OpenSession with an uploader identity for the
// provenance/trust pipeline; empty means the legacy anonymous
// contributor.
func (c *Client) OpenSessionAs(id, mode, contributor string) (string, error) {
	var resp SessionOpenResponse
	req := SessionOpenRequest{ID: id, Mode: mode, Contributor: contributor}
	if err := c.postJSON("/v1/session/open", req, &resp); err != nil {
		return "", err
	}
	return resp.SessionID, nil
}

// BuildSessionAppend encodes points [lo, hi) of the upload as chunk seq of
// the session — the wire form AppendSession posts, exposed so workload
// generators can pre-encode deterministic request bytes.
func (c *Client) BuildSessionAppend(sessionID string, seq int, u *wifi.Upload, lo, hi int) (*SessionAppendRequest, error) {
	if lo < 0 || hi > u.Traj.Len() || lo >= hi {
		return nil, fmt.Errorf("server: chunk [%d, %d) of %d points", lo, hi, u.Traj.Len())
	}
	req := &SessionAppendRequest{
		SessionID: sessionID, Seq: seq,
		Points: make([]uploadPoint, 0, hi-lo),
	}
	for i := lo; i < hi; i++ {
		p := u.Traj.Points[i]
		ll := c.Projection.ToLatLon(p.Pos)
		req.Points = append(req.Points, uploadPoint{
			Lat:  ll.Lat,
			Lon:  ll.Lon,
			Time: p.Time.UnixMilli(),
			Scan: u.Scans[i],
		})
	}
	return req, nil
}

// AppendSession sends points [lo, hi) of the upload as chunk seq in the
// client's wire form and returns the provisional acknowledgement.
func (c *Client) AppendSession(sessionID string, seq int, u *wifi.Upload, lo, hi int) (*SessionAppendResponse, error) {
	req, err := c.BuildSessionAppend(sessionID, seq, u, lo, hi)
	if err != nil {
		return nil, err
	}
	body, err := c.EncodeSessionAppend(req)
	if err != nil {
		return nil, err
	}
	var ack SessionAppendResponse
	if err := c.postBody("/v1/session/append", body, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// CloseSession finalises the session; the verdict is the batch pipeline's
// answer over the assembled trajectory.
func (c *Client) CloseSession(sessionID string) (*Verdict, error) {
	var v Verdict
	if err := c.postJSON("/v1/session/close", SessionCloseRequest{SessionID: sessionID}, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// postJSON posts one JSON request body and decodes a 200 response into
// out; non-200 answers become typed StatusErrors.
func (c *Client) postJSON(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("server: marshal %s: %w", path, err)
	}
	resp, err := c.HTTPClient.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("server: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeStatusError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decode %s response: %w", path, err)
	}
	return nil
}

// postBody posts pre-encoded bytes in the client's wire form; responses
// are always JSON.
func (c *Client) postBody(path string, body []byte, out interface{}) error {
	resp, err := c.HTTPClient.Post(c.BaseURL+path, c.contentType(), bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("server: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeStatusError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decode %s response: %w", path, err)
	}
	return nil
}

// FetchStats retrieves the provider counters.
func (c *Client) FetchStats() (*Stats, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("server: get stats: %w", err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("server: decode stats: %w", err)
	}
	return &s, nil
}

// FetchHealth retrieves the health state. A degraded service answers 503;
// that is still a successful fetch — the Health body says why.
func (c *Client) FetchHealth() (*Health, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/health")
	if err != nil {
		return nil, fmt.Errorf("server: get health: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, decodeStatusError(resp)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("server: decode health: %w", err)
	}
	return &h, nil
}
