package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// WAL frame payload codec for accepted uploads. The wire JSON form cannot
// be reused here: it roundtrips positions through lat/lon, which perturbs
// the plane coordinates by ulps and would break bit-identical recovery.
// This codec stores the already-projected plane floats verbatim
// (little-endian IEEE-754 bits), so a store rebuilt from the log answers
// feature queries bit-identically to the store that ingested the upload.
//
// Layout (version 2, little endian):
//
//	u8 version | u8 mode | u16 len(id) | id |
//	u32 nPoints | nPoints × { f64 X | f64 Y | i64 unixNanos } |
//	nPoints × { u16 nObs | nObs × { u8 len(mac) | mac | i16 rssi } } |
//	u16 len(contributor) | contributor | f64 pFake
//
// Version 1 frames (pre-provenance) end after the scans; decodeUpload
// accepts both, mapping v1 to the legacy anonymous contributor with a
// zero score, so WALs written before the trust subsystem still recover.
// pFake is the WiFi detector's verdict score (exact IEEE-754 bits): the
// trust ledger's agreement statistic feeds on it, so replay must see the
// same value the live accept saw. Session chunk frames reuse this codec
// with pFake 0 — their score rides the session verdict frame instead.

const uploadCodecVersion = 2

// appendUpload encodes u onto buf and returns the extended slice.
func appendUpload(buf []byte, u *wifi.Upload, pFake float64) ([]byte, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if len(u.Traj.ID) > math.MaxUint16 {
		return nil, fmt.Errorf("server: upload id of %d bytes too long to persist", len(u.Traj.ID))
	}
	if len(u.Contributor) > math.MaxUint16 {
		return nil, fmt.Errorf("server: contributor of %d bytes too long to persist", len(u.Contributor))
	}
	buf = append(buf, uploadCodecVersion, byte(u.Traj.Mode))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Traj.ID)))
	buf = append(buf, u.Traj.ID...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Traj.Len()))
	for _, pt := range u.Traj.Points {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Pos.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Pos.Y))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pt.Time.UnixNano()))
	}
	for _, scan := range u.Scans {
		if len(scan) > math.MaxUint16 {
			return nil, fmt.Errorf("server: scan of %d observations too large to persist", len(scan))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(scan)))
		for _, obs := range scan {
			if len(obs.MAC) > math.MaxUint8 {
				return nil, fmt.Errorf("server: MAC %q too long to persist", obs.MAC)
			}
			buf = append(buf, byte(len(obs.MAC)))
			buf = append(buf, obs.MAC...)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(obs.RSSI)))
		}
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Contributor)))
	buf = append(buf, u.Contributor...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pFake))
	return buf, nil
}

// appendSessionOpen encodes a frameSessionOpen payload:
//
//	u16 len(id) | id | u8 mode [ | u16 len(contributor) | contributor ]
//
// The contributor block is appended only when non-empty; old frames (and
// anonymous sessions) end after the mode byte, so pre-provenance WALs
// still decode.
func appendSessionOpen(buf []byte, id string, mode trajectory.Mode, contributor string) ([]byte, error) {
	if id == "" {
		return nil, fmt.Errorf("server: session open without an id")
	}
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("server: session id of %d bytes too long to persist", len(id))
	}
	if len(contributor) > math.MaxUint16 {
		return nil, fmt.Errorf("server: contributor of %d bytes too long to persist", len(contributor))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	buf = append(buf, byte(mode))
	if contributor != "" {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(contributor)))
		buf = append(buf, contributor...)
	}
	return buf, nil
}

// decodeSessionOpen parses a frameSessionOpen payload.
func decodeSessionOpen(data []byte) (string, trajectory.Mode, string, error) {
	r := &frameReader{data: data}
	idLen, err := r.u16()
	if err != nil {
		return "", 0, "", err
	}
	id, err := r.take(int(idLen))
	if err != nil {
		return "", 0, "", err
	}
	mode, err := r.u8()
	if err != nil {
		return "", 0, "", err
	}
	var contributor string
	if r.off != len(data) {
		cLen, err := r.u16()
		if err != nil {
			return "", 0, "", err
		}
		c, err := r.take(int(cLen))
		if err != nil {
			return "", 0, "", err
		}
		if len(c) == 0 {
			return "", 0, "", fmt.Errorf("server: empty contributor block in session open frame")
		}
		contributor = string(c)
	}
	if r.off != len(data) {
		return "", 0, "", fmt.Errorf("server: %d trailing bytes in session open frame", len(data)-r.off)
	}
	return string(id), trajectory.Mode(mode), contributor, nil
}

// appendSessionVerdict encodes a frameSessionVerdict payload:
//
//	u16 len(id) | id | u8 outcome [ | f64 pFake ]
//
// The detector score is appended only for accepted outcomes — it feeds
// the trust ledger's agreement statistic at replay, and only accepted
// sessions reach the trust pipeline. Old frames (and rejects/aborts) end
// after the outcome byte, so pre-provenance WALs still decode.
func appendSessionVerdict(buf []byte, id string, outcome byte, pFake float64) ([]byte, error) {
	if id == "" {
		return nil, fmt.Errorf("server: session verdict without an id")
	}
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("server: session id of %d bytes too long to persist", len(id))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	buf = append(buf, outcome)
	if outcome == sessionAccepted {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pFake))
	}
	return buf, nil
}

// decodeSessionVerdict parses a frameSessionVerdict payload.
func decodeSessionVerdict(data []byte) (string, byte, float64, error) {
	r := &frameReader{data: data}
	idLen, err := r.u16()
	if err != nil {
		return "", 0, 0, err
	}
	id, err := r.take(int(idLen))
	if err != nil {
		return "", 0, 0, err
	}
	outcome, err := r.u8()
	if err != nil {
		return "", 0, 0, err
	}
	var pFake float64
	if r.off != len(data) {
		bits, err := r.u64()
		if err != nil {
			return "", 0, 0, err
		}
		pFake = math.Float64frombits(bits)
	}
	if r.off != len(data) {
		return "", 0, 0, fmt.Errorf("server: %d trailing bytes in session verdict frame", len(data)-r.off)
	}
	return string(id), outcome, pFake, nil
}

// appendSessionReject encodes a frameSessionReject payload:
//
//	u16 len(id) | id
func appendSessionReject(buf []byte, id string) ([]byte, error) {
	if id == "" {
		return nil, fmt.Errorf("server: session reject without an id")
	}
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("server: session id of %d bytes too long to persist", len(id))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	return buf, nil
}

// decodeSessionReject parses a frameSessionReject payload.
func decodeSessionReject(data []byte) (string, error) {
	r := &frameReader{data: data}
	idLen, err := r.u16()
	if err != nil {
		return "", err
	}
	id, err := r.take(int(idLen))
	if err != nil {
		return "", err
	}
	if r.off != len(data) {
		return "", fmt.Errorf("server: %d trailing bytes in session reject frame", len(data)-r.off)
	}
	return string(id), nil
}

// frameReader is a bounds-checked cursor over one frame payload.
type frameReader struct {
	data []byte
	off  int
}

func (r *frameReader) take(n int) ([]byte, error) {
	if r.off+n > len(r.data) {
		return nil, fmt.Errorf("server: truncated upload frame at byte %d", r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *frameReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *frameReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *frameReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *frameReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeUpload parses one frame payload back into an upload.
func decodeUpload(data []byte) (*wifi.Upload, float64, error) {
	r := &frameReader{data: data}
	ver, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	if ver != 1 && ver != uploadCodecVersion {
		return nil, 0, fmt.Errorf("server: unknown upload frame version %d", ver)
	}
	mode, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	idLen, err := r.u16()
	if err != nil {
		return nil, 0, err
	}
	id, err := r.take(int(idLen))
	if err != nil {
		return nil, 0, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if int64(n)*24 > int64(len(data)) {
		return nil, 0, fmt.Errorf("server: upload frame claims %d points in %d bytes", n, len(data))
	}
	t := &trajectory.T{
		ID:     string(id),
		Mode:   trajectory.Mode(mode),
		Points: make([]trajectory.Point, n),
	}
	for i := range t.Points {
		xb, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		yb, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		ns, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		t.Points[i].Pos.X = math.Float64frombits(xb)
		t.Points[i].Pos.Y = math.Float64frombits(yb)
		t.Points[i].Time = time.Unix(0, int64(ns)).UTC()
	}
	scans := make([]wifi.Scan, n)
	for i := range scans {
		nObs, err := r.u16()
		if err != nil {
			return nil, 0, err
		}
		scan := make(wifi.Scan, 0, nObs)
		for j := 0; j < int(nObs); j++ {
			macLen, err := r.u8()
			if err != nil {
				return nil, 0, err
			}
			mac, err := r.take(int(macLen))
			if err != nil {
				return nil, 0, err
			}
			rssi, err := r.u16()
			if err != nil {
				return nil, 0, err
			}
			scan = append(scan, wifi.Observation{MAC: string(mac), RSSI: int(int16(rssi))})
		}
		scans[i] = scan
	}
	var contributor string
	var pFake float64
	if ver >= 2 {
		cLen, err := r.u16()
		if err != nil {
			return nil, 0, err
		}
		c, err := r.take(int(cLen))
		if err != nil {
			return nil, 0, err
		}
		contributor = string(c)
		bits, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		pFake = math.Float64frombits(bits)
	}
	if r.off != len(data) {
		return nil, 0, fmt.Errorf("server: %d trailing bytes in upload frame", len(data)-r.off)
	}
	return &wifi.Upload{Traj: t, Scans: scans, Contributor: contributor}, pFake, nil
}
