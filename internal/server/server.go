// Package server implements the location-service-provider substrate: the
// cloud-side HTTP service that ingests [lat, lon, time] trajectory uploads
// (with per-point WiFi scans) and runs the paper's verification pipeline —
// the DTW replay check, the motion-feature classifier, and the WiFi RSSI
// detector — before accepting a trajectory into the provider's history.
//
// It is a deliberately small, stdlib-only net/http service: JSON in, JSON
// out, safe for concurrent uploads, with the provider state guarded by a
// read-write mutex.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/stats"
	"trajforge/internal/stream"
	"trajforge/internal/trajectory"
	"trajforge/internal/trust"
	"trajforge/internal/wifi"
)

// Verdict is the provider's decision about one upload.
type Verdict struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	// Checks reports each verification stage that ran: "pass", "fail", or
	// "skipped".
	Checks map[string]string `json:"checks"`
	// MotionProbReal is the motion classifier's P(real), when it ran.
	MotionProbReal *float64 `json:"motion_prob_real,omitempty"`
	// WiFiProbFake is the RSSI detector's P(fake), when it ran.
	WiFiProbFake *float64 `json:"wifi_prob_fake,omitempty"`
}

// Config wires the verification stages. Any stage may be nil, in which
// case it is skipped.
type Config struct {
	// Projection maps wire lat/lon to the provider's local plane.
	Projection *geo.Projection
	// Rules is the cheap physical-sanity filter (speed/acceleration/
	// teleport caps); the paper's related work shows replay defeats it, so
	// it is only ever a first line.
	Rules *detect.RuleChecker
	// Route rejects trajectories that stray from the road network (the
	// paper's route-rationality requirement).
	Route *detect.RouteChecker
	// Replay rejects near-duplicates of historical trajectories.
	Replay *detect.ReplayChecker
	// Motion is the trajectory-only classifier (the paper shows it is
	// defeated by adversarial forgeries — the server keeps it as a cheap
	// first filter).
	Motion detect.MotionDetector
	// WiFi is the RSSI countermeasure; when set, uploads must carry scans.
	WiFi *detect.WiFiDetector
	// RequireScans rejects uploads without WiFi scans even if WiFi is nil.
	RequireScans bool
	// IngestAccepted adds the scans of accepted uploads to the WiFi
	// detector's crowdsourced store, so the provider's coverage keeps
	// growing (and a user's own accepted uploads become the reference that
	// catches their later replay forgeries).
	IngestAccepted bool
	// MaxPoints bounds upload size (default 10,000).
	MaxPoints int
	// Persist, when set, journals every verdict to the write-ahead log and
	// snapshots the provider state on compaction, so counters, history and
	// the crowdsourced store survive restarts. Seed the store from
	// Persist.Recovered().Records before building the WiFi detector, then
	// call Restore after New; Close takes the final snapshot.
	Persist *Persistence
	// MaxInFlight, when positive, bounds the number of uploads running the
	// verification pipeline concurrently; excess requests wait in a
	// bounded FIFO queue and are shed with 429 + Retry-After once the
	// queue is full or their deadline provably cannot be met. Zero keeps
	// the legacy unbounded behaviour.
	MaxInFlight int
	// QueueDepth is the admission wait-queue bound behind MaxInFlight;
	// defaults to 2*MaxInFlight when zero. Ignored unless MaxInFlight > 0.
	QueueDepth int
	// UploadTimeout, when positive, is the per-upload processing deadline:
	// the request context handed to the pipeline expires after this long,
	// so shed or slow uploads stop burning pipeline CPU.
	UploadTimeout time.Duration
	// DedupCapacity bounds the idempotency-key replay cache (default
	// 4096 keys, FIFO eviction).
	DedupCapacity int
	// Trust, when set (and WiFi ingestion is on), routes accepted uploads
	// through the poisoning-resistant pipeline: contributor trust ledger,
	// quarantine staging, drift alarm, and trust-weighted θ2 on the store
	// backend. Nil keeps the legacy direct-ingestion path bit-identically.
	Trust *trust.Config
	// Stream, when set, enables the /v1/session streaming verification
	// endpoints. New fills an unset Detector from WiFi and an unset
	// MaxPoints from the service's MaxPoints, so the streaming path scores
	// with the same detector and honours the same size cap as the batch
	// path.
	Stream *stream.Config
}

// stageNames lists the upload processing stages in pipeline order; it
// fixes the key set of Stats.Stages and the timing-counter slots. decode
// covers wire parsing (JSON or binary) plus semantic validation; features
// and score are the two halves of the WiFi countermeasure (feature
// extraction against the crowdsourced store, then the compiled forest
// kernel); persist is the in-request cost of committing the verdict.
var stageNames = []string{
	"decode", "rules", "route", "replay", "motion", "features", "score", "persist",
}

// Stage slot indices, in stageNames order.
const (
	stageDecode = iota
	stageRules
	stageRoute
	stageReplay
	stageMotion
	stageFeatures
	stageScore
	stagePersist
	numStages
)

// stageClock accumulates wall time spent in one processing stage across
// all uploads: totals for averages, a lock-free log-bucketed histogram
// for tail quantiles. Everything is atomic so the hot upload path never
// takes the service lock for telemetry.
type stageClock struct {
	count atomic.Int64
	nanos atomic.Int64
	hist  stats.LatencyHistogram
}

// Service is the verification server.
type Service struct {
	cfg Config

	mu       sync.RWMutex
	accepted int
	rejected int
	history  []*trajectory.T

	stages [numStages]stageClock // indexed in stageNames order

	admission *resilience.Admission // nil when MaxInFlight == 0
	dedup     *dedupCache
	stream    *stream.Manager // nil unless Config.Stream is set
	trust     *trust.Pipeline // nil unless Config.Trust is set

	internalErrors  atomic.Int64 // pipeline failures answered with 500
	deadlineRejects atomic.Int64 // uploads cut off by UploadTimeout/disconnect mid-pipeline
	degradedRejects atomic.Int64 // uploads refused with 503 while the breaker was open
}

// New returns a service; the projection is required.
func New(cfg Config) (*Service, error) {
	if cfg.Projection == nil {
		return nil, errors.New("server: projection is required")
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 10000
	}
	s := &Service{cfg: cfg, dedup: newDedupCache(cfg.DedupCapacity)}
	if cfg.MaxInFlight > 0 {
		depth := cfg.QueueDepth
		if depth <= 0 {
			depth = 2 * cfg.MaxInFlight
		}
		s.admission = resilience.NewAdmission(resilience.AdmissionConfig{
			MaxInFlight: cfg.MaxInFlight, QueueDepth: depth,
		})
	}
	if cfg.Stream != nil {
		scfg := *cfg.Stream
		if scfg.Detector == nil {
			scfg.Detector = cfg.WiFi
		}
		if scfg.MaxPoints <= 0 {
			scfg.MaxPoints = cfg.MaxPoints
		}
		mgr, err := stream.NewManager(scfg)
		if err != nil {
			return nil, err
		}
		s.stream = mgr
	}
	if cfg.Trust != nil && cfg.WiFi != nil {
		s.trust = trust.NewPipeline(*cfg.Trust, cfg.WiFi.Store)
	}
	if cfg.Persist != nil {
		if err := cfg.Persist.bind(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Restore applies recovered state: counters, snapshot history, and the
// uploads replayed from the WAL — the latter through the same ingestion
// path a live accept takes, so a restarted provider answers queries
// bit-identically to one that never went down. The caller must already
// have seeded the store backend from state.Records.
func (s *Service) Restore(state *RecoveredState) {
	if state == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accepted = state.Accepted
	s.rejected = state.Rejected
	if s.trust != nil && state.Trust != nil {
		// Trust state first: WAL replay below builds on the snapshot's
		// ledger/quarantine/drift exactly as live ingestion did.
		s.trust.RestoreState(*state.Trust)
	}
	for _, t := range state.History {
		s.history = append(s.history, t)
		if s.cfg.Replay != nil {
			s.cfg.Replay.AddHistory(t)
		}
	}
	for i, u := range state.Uploads {
		s.history = append(s.history, u.Traj)
		if s.cfg.Replay != nil {
			s.cfg.Replay.AddHistory(u.Traj)
		}
		var pFake float64
		if i < len(state.UploadScores) {
			pFake = state.UploadScores[i]
		}
		s.ingestLocked(u, pFake)
	}
	// Resume recovered in-flight sessions; one the streaming layer cannot
	// hold (disabled, over limit, or inconsistent) is aborted cleanly with
	// a journaled verdict so recovery never replays it again.
	for _, st := range state.Sessions {
		if s.stream != nil && s.stream.RestoreSession(st) == nil {
			continue
		}
		if s.cfg.Persist != nil {
			s.cfg.Persist.enqueueLocked(persistEntry{
				kind: entrySessionVerdict, sessID: st.ID, outcome: sessionAborted,
			})
		}
	}
}

// Close drains the persistence queue, takes a final snapshot, and closes
// the log. Shut the HTTP server down first so no uploads are in flight.
// Without persistence it is a no-op.
func (s *Service) Close() error {
	if s.cfg.Persist == nil {
		return nil
	}
	return s.cfg.Persist.close()
}

// snapshotLocked captures the state a snapshot persists. Called with s.mu
// held (by the compaction protocol in persist.go).
func (s *Service) snapshotLocked() snapshotData {
	st := snapshotData{Accepted: s.accepted, Rejected: s.rejected}
	st.History = append([]*trajectory.T(nil), s.history...)
	if s.cfg.WiFi != nil {
		st.Records = s.cfg.WiFi.Store.Records()
	}
	if s.stream != nil {
		st.Sessions = s.stream.SnapshotSessions()
	}
	if s.trust != nil {
		ts := s.trust.State()
		st.Trust = &ts
	}
	return st
}

// StageStats is the cumulative timing of one processing stage.
type StageStats struct {
	// Count is how many uploads ran the stage (skipped stages don't count).
	Count int64 `json:"count"`
	// TotalMicros is the cumulative wall time, microseconds.
	TotalMicros int64 `json:"total_micros"`
	// AvgMicros is TotalMicros / Count (0 when the stage never ran).
	AvgMicros float64 `json:"avg_micros"`
	// P99Micros is the 99th-percentile stage latency, from a log-bucketed
	// histogram (within ~6% of exact, never under-stated).
	P99Micros int64 `json:"p99_micros"`
}

// Stats is the provider's counters, including per-stage verification
// timings — the operational view of where upload latency goes.
type Stats struct {
	Accepted int                   `json:"accepted"`
	Rejected int                   `json:"rejected"`
	History  int                   `json:"history"`
	Stages   map[string]StageStats `json:"stages"`
	// InternalErrors counts uploads that failed inside the pipeline and
	// were answered with 500 — they are in neither Accepted nor Rejected,
	// so without this counter they would vanish from the accounting.
	InternalErrors int64 `json:"internal_errors"`
	// DeadlineRejects counts uploads cut off mid-pipeline by the upload
	// timeout or a client disconnect; DegradedRejects counts uploads
	// refused with 503 while the persistence breaker was open.
	DeadlineRejects int64 `json:"deadline_rejects"`
	DegradedRejects int64 `json:"degraded_rejects"`
	// Admission reports the overload-shedding state when MaxInFlight is
	// configured.
	Admission *resilience.AdmissionStats `json:"admission,omitempty"`
	// Dedup reports the idempotency-key replay cache.
	Dedup *DedupStats `json:"dedup,omitempty"`
	// Persistence reports the WAL/snapshot state when a data directory is
	// configured.
	Persistence *PersistStats `json:"persistence,omitempty"`
	// Shards reports store partitioning when the WiFi detector runs
	// against a geo-sharded backend.
	Shards *shardstore.Stats `json:"shards,omitempty"`
	// Cluster reports distributed-store state when the WiFi detector runs
	// against a multi-node cluster backend: assignment epoch, per-node
	// tile occupancy, forwarded-request and halo-update counters, and
	// whether a tile migration is in flight.
	Cluster *cluster.StoreStats `json:"cluster,omitempty"`
	// Sessions reports the streaming verification lifecycle when the
	// /v1/session endpoints are enabled.
	Sessions *stream.Stats `json:"sessions,omitempty"`
	// Trust reports the poisoning-resistance pipeline when one is
	// configured: contributor counts, trust histogram, quarantine depth,
	// and per-tile provenance with drift-alarm state.
	Trust *trust.Stats `json:"trust,omitempty"`
}

// statsMaxTiles caps the per-tile provenance list in /v1/stats so a
// city-scale store cannot blow up the stats payload.
const statsMaxTiles = 64

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	stages := make(map[string]StageStats, len(stageNames))
	for i, name := range stageNames {
		n := s.stages[i].count.Load()
		us := s.stages[i].nanos.Load() / 1e3
		st := StageStats{Count: n, TotalMicros: us}
		if n > 0 {
			st.AvgMicros = float64(us) / float64(n)
			st.P99Micros = s.stages[i].hist.Quantile(0.99).Microseconds()
		}
		stages[name] = st
	}
	var ps *PersistStats
	if s.cfg.Persist != nil {
		ps = s.cfg.Persist.stats()
	}
	var sh *shardstore.Stats
	var cl *cluster.StoreStats
	if s.cfg.WiFi != nil {
		if ss, ok := s.cfg.WiFi.Store.(*shardstore.Store); ok {
			v := ss.Stats()
			sh = &v
		}
		if cs, ok := s.cfg.WiFi.Store.(*cluster.Store); ok {
			v := cs.Stats()
			cl = &v
		}
	}
	var adm *resilience.AdmissionStats
	if s.admission != nil {
		v := s.admission.Stats()
		adm = &v
	}
	dd := s.dedup.stats()
	var sess *stream.Stats
	if s.stream != nil {
		v := s.stream.Stats()
		sess = &v
	}
	var tr *trust.Stats
	if s.trust != nil {
		v := s.trust.Stats(statsMaxTiles)
		tr = &v
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Accepted: s.accepted, Rejected: s.rejected, History: len(s.history),
		Stages:          stages,
		InternalErrors:  s.internalErrors.Load(),
		DeadlineRejects: s.deadlineRejects.Load(),
		DegradedRejects: s.degradedRejects.Load(),
		Admission:       adm,
		Dedup:           &dd,
		Persistence:     ps,
		Shards:          sh,
		Cluster:         cl,
		Sessions:        sess,
		Trust:           tr,
	}
}

// observeStage charges the elapsed time since start to stage i.
func (s *Service) observeStage(i int, start time.Time) {
	d := time.Since(start)
	s.stages[i].count.Add(1)
	s.stages[i].nanos.Add(d.Nanoseconds())
	s.stages[i].hist.Observe(d)
}

// uploadPoint is the wire form of one fix plus its scan.
type uploadPoint struct {
	Lat  float64            `json:"lat"`
	Lon  float64            `json:"lon"`
	Time int64              `json:"time"` // Unix milliseconds
	Scan []wifi.Observation `json:"scan,omitempty"`
}

// UploadRequest is the wire form of a trajectory upload.
type UploadRequest struct {
	ID   string `json:"id,omitempty"`
	Mode string `json:"mode,omitempty"`
	// Contributor identifies the uploader for the provenance/trust
	// pipeline; empty means the legacy anonymous contributor.
	Contributor string        `json:"contributor,omitempty"`
	Points      []uploadPoint `json:"points"`
}

// decode converts the wire request into internal types.
func (s *Service) decode(req *UploadRequest) (*wifi.Upload, error) {
	if len(req.Points) < 2 {
		return nil, fmt.Errorf("trajectory needs >= 2 points, got %d", len(req.Points))
	}
	if len(req.Points) > s.cfg.MaxPoints {
		return nil, fmt.Errorf("trajectory has %d points, limit %d", len(req.Points), s.cfg.MaxPoints)
	}
	t := &trajectory.T{ID: req.ID}
	if req.Mode != "" {
		m, err := trajectory.ParseMode(req.Mode)
		if err != nil {
			return nil, err
		}
		t.Mode = m
	}
	pts, scans, anyScan, err := s.decodePoints(req.Points)
	if err != nil {
		return nil, err
	}
	t.Points = pts
	if err := t.Validate(500 * time.Millisecond); err != nil {
		return nil, err
	}
	if !anyScan && (s.cfg.RequireScans || s.cfg.WiFi != nil) {
		return nil, errors.New("upload carries no WiFi scans")
	}
	return &wifi.Upload{Traj: t, Scans: scans, Contributor: req.Contributor}, nil
}

// decodePoints converts wire points into projected plane points and scans —
// the shared half of batch and streaming decoding. Trajectory-level rules
// (length, timing) stay with the callers: the batch decoder validates the
// whole trajectory at once, while the stream manager enforces them
// incrementally across chunk boundaries.
func (s *Service) decodePoints(points []uploadPoint) ([]trajectory.Point, []wifi.Scan, bool, error) {
	pts := make([]trajectory.Point, len(points))
	scans := make([]wifi.Scan, len(points))
	var anyScan bool
	for i, p := range points {
		ll := geo.LatLon{Lat: p.Lat, Lon: p.Lon}
		if !ll.Valid() {
			return nil, nil, false, fmt.Errorf("point %d: invalid coordinate %v", i, ll)
		}
		pts[i] = trajectory.Point{
			Pos:  s.cfg.Projection.ToPlane(ll),
			Time: time.UnixMilli(p.Time).UTC(),
		}
		if len(p.Scan) > 0 {
			scans[i] = wifi.Scan(p.Scan)
			anyScan = true
		} else {
			scans[i] = wifi.Scan{}
		}
	}
	return pts, scans, anyScan, nil
}

// backendFeatures extracts Eq. 8 features, threading the request context
// through backends that can carry it. A distributed backend forwards
// per-point confidence queries to remote shard nodes; propagating the
// upload deadline means a shed or disconnected request stops consuming
// remote node capacity too, and admission control's deadline accounting
// covers remote time the same as local time.
func backendFeatures(ctx context.Context, b rssimap.Backend, u *wifi.Upload, cfg rssimap.FeatureConfig) ([]float64, error) {
	if cb, ok := b.(rssimap.ContextBackend); ok {
		return cb.FeaturesContext(ctx, u, cfg)
	}
	return b.Features(u, cfg)
}

// Verify runs the full pipeline on an already-decoded upload. The context
// is consulted before every stage: a request that was shed, timed out, or
// whose client disconnected stops burning pipeline CPU at the next stage
// boundary instead of running the remaining detectors to completion.
func (s *Service) Verify(ctx context.Context, u *wifi.Upload) (Verdict, error) {
	v := Verdict{Checks: map[string]string{
		"rules":  "skipped",
		"route":  "skipped",
		"replay": "skipped",
		"motion": "skipped",
		"wifi":   "skipped",
	}}

	if err := ctx.Err(); err != nil {
		return v, err
	}
	if s.cfg.Rules != nil {
		start := time.Now()
		vs := s.cfg.Rules.Check(u.Traj)
		s.observeStage(stageRules, start)
		if len(vs) > 0 {
			v.Checks["rules"] = "fail"
			v.Reason = "physically implausible motion: " + vs[0].String()
			return v, nil
		}
		v.Checks["rules"] = "pass"
	}

	if err := ctx.Err(); err != nil {
		return v, err
	}
	if s.cfg.Route != nil {
		start := time.Now()
		irrational := s.cfg.Route.IsIrrational(u.Traj)
		s.observeStage(stageRoute, start)
		if irrational {
			v.Checks["route"] = "fail"
			v.Reason = "trajectory does not follow the road network"
			return v, nil
		}
		v.Checks["route"] = "pass"
	}

	if err := ctx.Err(); err != nil {
		return v, err
	}
	if s.cfg.Replay != nil {
		start := time.Now()
		s.mu.RLock()
		isReplay := s.cfg.Replay.IsReplay(u.Traj)
		s.mu.RUnlock()
		s.observeStage(stageReplay, start)
		if isReplay {
			v.Checks["replay"] = "fail"
			v.Reason = "trajectory replays a historical record"
			return v, nil
		}
		v.Checks["replay"] = "pass"
	}

	if err := ctx.Err(); err != nil {
		return v, err
	}
	if s.cfg.Motion != nil {
		start := time.Now()
		p := s.cfg.Motion.ProbReal(u.Traj)
		s.observeStage(stageMotion, start)
		v.MotionProbReal = &p
		if p < 0.5 {
			v.Checks["motion"] = "fail"
			v.Reason = "motion characteristics inconsistent with real movement"
			return v, nil
		}
		v.Checks["motion"] = "pass"
	}

	if err := ctx.Err(); err != nil {
		return v, err
	}
	if s.cfg.WiFi != nil {
		// The two halves of the WiFi countermeasure are timed separately:
		// feature extraction runs the scratch-buffered rssimap path (no
		// per-point allocation), scoring runs the compiled flat-forest
		// kernel. Together they are exactly detect.ProbFake, so the verdict
		// is bit-identical to the single-call path.
		start := time.Now()
		feat, err := backendFeatures(ctx, s.cfg.WiFi.Store, u, s.cfg.WiFi.Features)
		s.observeStage(stageFeatures, start)
		if err != nil {
			return v, fmt.Errorf("server: wifi check: %w", err)
		}
		start = time.Now()
		p := s.cfg.WiFi.Model.PredictProb(feat)
		s.observeStage(stageScore, start)
		v.WiFiProbFake = &p
		if p >= 0.5 {
			v.Checks["wifi"] = "fail"
			v.Reason = "reported RSSIs inconsistent with crowdsourced history"
			return v, nil
		}
		v.Checks["wifi"] = "pass"
	}

	v.Accepted = true
	return v, nil
}

// record updates counters and, on acceptance, the provider history. The
// WAL enqueue happens under the same lock as the state change, so frame
// order always matches ingestion order — the invariant that makes recovery
// bit-identical.
func (s *Service) record(u *wifi.Upload, v Verdict) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v.Accepted {
		s.accepted++
		s.history = append(s.history, u.Traj)
		if s.cfg.Replay != nil {
			s.cfg.Replay.AddHistory(u.Traj)
		}
		pFake := verdictScore(v)
		s.ingestLocked(u, pFake)
		if s.cfg.Persist != nil {
			s.cfg.Persist.enqueueLocked(persistEntry{accepted: true, upload: u, pFake: pFake})
		}
		return
	}
	s.rejected++
	if s.cfg.Persist != nil {
		s.cfg.Persist.enqueueLocked(persistEntry{accepted: false})
	}
}

// verdictScore extracts the WiFi detector's pFake from a verdict; 0 when
// the detector did not run.
func verdictScore(v Verdict) float64 {
	if v.WiFiProbFake != nil {
		return *v.WiFiProbFake
	}
	return 0
}

// ingestLocked feeds one accepted upload into the crowdsourced store —
// directly, or through the trust pipeline when one is configured. Called
// with s.mu held; the WAL replay in Restore takes the identical path, so
// a recovered store (and trust state) matches the live one bit-identically.
func (s *Service) ingestLocked(u *wifi.Upload, pFake float64) {
	if !s.cfg.IngestAccepted || s.cfg.WiFi == nil {
		return
	}
	if s.trust != nil {
		s.trust.IngestUpload(u, pFake, uploadEventTime(u))
		return
	}
	s.cfg.WiFi.Store.AddUploads([]*wifi.Upload{u})
}

// uploadEventTime is the event clock the trust pipeline runs on: the
// upload's latest point time. Wall clocks would make WAL replay diverge
// from live ingestion; point times are journaled bit-exact.
func uploadEventTime(u *wifi.Upload) time.Time {
	if n := len(u.Traj.Points); n > 0 {
		return u.Traj.Points[n-1].Time
	}
	return time.Time{}
}

// Health is the /v1/health body. Live is true whenever the process
// serves; Ready and Degraded track the persistence circuit breaker and
// the distributed store: an open (or probing) breaker means acks would
// not survive a crash, and a cluster tile with no live replica (or a
// migration/failover in flight) means answers could be partial — either
// way the service reports degraded with a non-200 status and a reason
// rather than lie about its guarantees.
type Health struct {
	Status   string `json:"status"` // "ok" or "degraded"
	Live     bool   `json:"live"`
	Ready    bool   `json:"ready"`
	Degraded bool   `json:"degraded"`
	// Breaker is the persistence breaker state when one is armed.
	Breaker string `json:"breaker,omitempty"`
	// Reason says what is degraded when Degraded is set.
	Reason string `json:"reason,omitempty"`
}

// TrustWeight returns the trust pipeline's current weight for a
// contributor, or 1.0 when no pipeline is configured (every contributor
// fully trusted — matching the unweighted store).
func (s *Service) TrustWeight(name string) float64 {
	if s.trust == nil {
		return 1.0
	}
	return s.trust.Weight(name)
}

// Health reports the service's liveness/readiness/degradation state.
func (s *Service) Health() Health {
	h := Health{Status: "ok", Live: true, Ready: true}
	if s.cfg.Persist != nil {
		if b := s.cfg.Persist.breakerStats(); b != nil {
			h.Breaker = b.State
		}
		if s.cfg.Persist.degraded() {
			h.Status = "degraded"
			h.Ready = false
			h.Degraded = true
			h.Reason = "persistence unavailable"
		}
	}
	if s.cfg.WiFi != nil {
		if cs, ok := s.cfg.WiFi.Store.(*cluster.Store); ok {
			if deg, reason := cs.HealthStatus(); deg {
				h.Status = "degraded"
				h.Ready = false
				h.Degraded = true
				if h.Reason == "" {
					h.Reason = reason
				}
			}
		}
	}
	if s.trust != nil {
		if reason := s.trust.DriftAlarmReason(); reason != "" {
			// A drift alarm is a data-quality signal, not a serving outage:
			// the node stays Ready (load balancers should not eject it) but
			// reports degraded so operators see the suspected poisoning.
			h.Status = "degraded"
			h.Degraded = true
			if h.Reason == "" {
				h.Reason = reason
			}
		}
	}
	return h
}

// Handler returns the HTTP mux of the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/trajectory", s.handleUpload)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/v1/session/open", s.handleSessionOpen)
	mux.HandleFunc("/v1/session/append", s.handleSessionAppend)
	mux.HandleFunc("/v1/session/close", s.handleSessionClose)
	return mux
}

// writeMethodNotAllowed answers 405 with the mandatory Allow header
// (RFC 9110 §15.5.6) listing the methods the endpoint does accept.
func writeMethodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": allow + " only"})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	h := s.Health()
	code := http.StatusOK
	if h.Degraded {
		// Cluster-only degradation has no breaker to consult; a flat 1s
		// backoff keeps probes cheap while replicas heal.
		retry := time.Second
		if s.cfg.Persist != nil && s.cfg.Persist.degraded() {
			retry = s.cfg.Persist.retryAfter()
		}
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, floored at 1 (a zero Retry-After invites an immediate retry
// storm).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return
	}

	// Fail closed while the persistence breaker is open: an ack now would
	// promise a durability the WAL cannot deliver, so shed with 503 until
	// the half-open probe heals the log.
	if s.cfg.Persist != nil && s.cfg.Persist.degraded() {
		s.degradedRejects.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Persist.retryAfter()))
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "service degraded: persistence unavailable"})
		return
	}

	// A retried Idempotency-Key replays the verdict already recorded for
	// it: the original's side effects (history, store ingestion, WAL
	// frame) happened exactly once even if the client never saw the ack.
	key := r.Header.Get("Idempotency-Key")
	if key != "" {
		if v, ok := s.dedup.get(key); ok {
			w.Header().Set("Idempotency-Replayed", "true")
			writeJSON(w, http.StatusOK, v)
			return
		}
	}

	ctx := r.Context()
	if s.cfg.UploadTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.UploadTimeout)
		defer cancel()
	}

	if s.admission != nil {
		if err := s.admission.Acquire(ctx); err != nil {
			w.Header().Set("Retry-After", retryAfterSeconds(s.admission.RetryAfter()))
			writeJSON(w, http.StatusTooManyRequests,
				map[string]string{"error": "overloaded: " + err.Error()})
			return
		}
		held := time.Now()
		defer func() { s.admission.Release(time.Since(held)) }()
	}

	decodeStart := time.Now()
	req, ok := readUploadRequest(w, r)
	if !ok {
		return
	}
	u, err := s.decode(req)
	s.observeStage(stageDecode, decodeStart)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	verdict, err := s.Verify(ctx, u)
	if err != nil {
		if ctx.Err() != nil {
			// The deadline or the client cut the pipeline short; nothing
			// was recorded, so a retry is safe and cheap to invite.
			s.deadlineRejects.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "upload deadline exceeded"})
			return
		}
		s.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	persistStart := time.Now()
	s.record(u, verdict)
	s.observeStage(stagePersist, persistStart)
	if key != "" {
		s.dedup.put(key, verdict)
	}
	writeJSON(w, http.StatusOK, verdict)
}

// readUploadRequest reads one upload request body in whichever wire form
// the Content-Type negotiates — ContentTypeBinary for the binary frame
// codec, JSON for everything else (the default wire form) — answering
// 400/413 itself. It reports whether a request was produced.
func readUploadRequest(w http.ResponseWriter, r *http.Request) (*UploadRequest, bool) {
	if !isBinaryRequest(r) {
		var req UploadRequest
		if !decodeBody(w, r, &req) {
			return nil, false
		}
		return &req, true
	}
	data, ok := readBinaryBody(w, r)
	if !ok {
		return nil, false
	}
	req, err := ParseUploadBinary(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return nil, false
	}
	return req, true
}

// isBinaryRequest reports whether the request negotiated the binary wire
// form. Parameters after the media type (charset and friends) are
// tolerated; any other Content-Type falls back to JSON, the default.
func isBinaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeBinary
}

// readBinaryBody slurps a binary request body under the same 16 MiB cap
// the JSON decoder enforces, answering 413/400 itself.
func readBinaryBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return nil, false
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "read body: " + err.Error()})
		return nil, false
	}
	return data, true
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding errors after the header is written can only be logged; for
	// this substrate they are ignored (the client sees a truncated body).
	_ = json.NewEncoder(w).Encode(v)
}
