package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
)

// dedupCache remembers the verdict served for each Idempotency-Key so a
// client retry after a lost response replays the recorded verdict instead
// of re-running the pipeline and double-ingesting the trajectory into the
// history and the crowdsourced store. Capacity-bounded with FIFO
// eviction: a key only needs to survive the client's retry window, which
// is seconds, so the oldest entries are always the safest to drop.
type dedupCache struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]Verdict
	order []string // insertion order; head is the eviction candidate

	hits      int64
	evictions int64
}

func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &dedupCache{cap: capacity, byKey: make(map[string]Verdict, capacity)}
}

// get returns the recorded verdict for key, if any.
func (d *dedupCache) get(key string) (Verdict, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.byKey[key]
	if ok {
		d.hits++
	}
	return v, ok
}

// put records the verdict served for key; a duplicate put keeps the first
// verdict (the one whose side effects were recorded).
func (d *dedupCache) put(key string, v Verdict) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.byKey[key]; ok {
		return
	}
	for len(d.byKey) >= d.cap {
		oldest := d.order[0]
		d.order = d.order[1:]
		delete(d.byKey, oldest)
		d.evictions++
	}
	d.byKey[key] = v
	d.order = append(d.order, key)
}

// DedupStats is the idempotency-dedup slice of /v1/stats.
type DedupStats struct {
	// Entries is the number of keys currently remembered.
	Entries int `json:"entries"`
	// Hits counts retried keys answered from the cache.
	Hits int64 `json:"hits"`
	// Evictions counts keys dropped to capacity pressure.
	Evictions int64 `json:"evictions"`
}

func (d *dedupCache) stats() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DedupStats{Entries: len(d.byKey), Hits: d.hits, Evictions: d.evictions}
}

// NewIdempotencyKey returns a fresh 128-bit random key for the
// Idempotency-Key header; the retrying client stamps one per logical
// upload so every wire retry is recognisably the same operation.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; an empty key just means the
		// upload is not replay-protected rather than broken.
		return ""
	}
	return hex.EncodeToString(b[:])
}
