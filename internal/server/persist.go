package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trajforge/internal/fsx"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/stream"
	"trajforge/internal/trajectory"
	"trajforge/internal/trust"
	"trajforge/internal/wal"
	"trajforge/internal/wifi"
)

// WAL frame types.
const (
	frameAccepted byte = 1 // payload: one accepted upload (see walcodec.go)
	frameRejected byte = 2 // empty payload; only bumps the rejected counter
	// Streaming-session lifecycle frames. A session's history in the log is
	// open → chunk* → verdict; recovery reassembles in-flight sessions from
	// the frames after the last snapshot (plus the snapshot's own session
	// list) and either resumes or aborts them.
	frameSessionOpen    byte = 3 // payload: session id + claimed mode
	frameSessionChunk   byte = 4 // payload: one chunk as an upload frame (id = session id)
	frameSessionVerdict byte = 5 // payload: session id + outcome (rejected/accepted/aborted)
	frameSessionReject  byte = 6 // payload: session id; early-exit fired, session still open
)

const (
	walFileName  = "records.wal"
	snapFileName = "snapshot.bin"
)

// PersistOptions tunes the durability layer.
type PersistOptions struct {
	// SyncInterval is the WAL group-commit interval; zero means the 2ms
	// default. Negative fsyncs every append inline — fully durable and,
	// because no background flusher runs, a deterministic filesystem-op
	// sequence, which is what the chaos crash-point explorer needs.
	SyncInterval time.Duration
	// QueueDepth bounds the async append queue. Uploads block once the
	// queue is full — the backpressure that keeps a slow disk from letting
	// unacknowledged frames pile up without bound. Default 256.
	QueueDepth int
	// CompactBytes auto-compacts (snapshot + log reset) once the WAL grows
	// past this size. Default 64 MiB; negative disables auto-compaction.
	CompactBytes int64
	// FS is the filesystem the WAL and snapshots live on; nil means the
	// real one. Fault-injection and chaos tests substitute fsx/faultfs.
	FS fsx.FS
	// Breaker, when non-nil, arms the fail-closed circuit breaker around
	// the persistence path: WAL append/sync/compact failures open it, the
	// service sheds uploads with 503 while it is open, and after the
	// cooldown a half-open probe attempts a full compaction — the one
	// operation that both proves the disk is healthy again and repairs
	// the frames dropped while the breaker was open (the snapshot
	// captures the complete in-memory state). Nil keeps the legacy
	// fail-open behaviour: verdicts keep flowing from memory and errors
	// are only surfaced in /v1/stats.
	Breaker *resilience.BreakerConfig
}

func (o *PersistOptions) setDefaults() {
	if o.SyncInterval == 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = fsx.OS
	}
}

// RecoveredState is what OpenPersistence reconstructed from disk: the last
// snapshot plus every WAL frame appended after it. The caller seeds its
// store backend from Records before building the detector; Service.Restore
// applies the rest (counters, history, replayed uploads).
type RecoveredState struct {
	// Accepted and Rejected are the provider counters, WAL frames included.
	Accepted, Rejected int
	// Records is the crowdsourced store content at snapshot time.
	Records []rssimap.Record
	// History is the accepted-trajectory history at snapshot time.
	History []*trajectory.T
	// Uploads are the accepted uploads replayed from the WAL, in ingestion
	// order. Their trajectories are NOT in History and their scans are NOT
	// in Records — Service.Restore applies them through the same code path
	// a live accept takes, so recovery is equivalent to re-receiving them.
	Uploads []*wifi.Upload
	// UploadScores holds the WiFi detector's pFake verdict score for each
	// entry of Uploads (same index). The trust ledger's agreement
	// statistic feeds on the score, so replay must hand Restore the exact
	// value the live accept saw; pre-provenance frames recover as 0.
	UploadScores []float64
	// Sessions are the streaming sessions still in flight at crash time:
	// their journaled chunks, with no verdict frame yet. Service.Restore
	// resumes each one (or aborts it with a journaled verdict when the
	// restarted configuration cannot hold it).
	Sessions []stream.SessionState
	// Trust is the trust-pipeline state (ledger, quarantine, drift) at
	// snapshot time; nil for pre-provenance snapshots or when the trust
	// pipeline is disabled. WAL replay through Service.Restore re-applies
	// post-snapshot uploads on top of it, event-time driven, so the
	// recovered pipeline matches the crashed one bit-identically.
	Trust *trust.PipelineState
}

// Empty reports whether nothing was recovered (fresh data directory).
func (st *RecoveredState) Empty() bool {
	return st.Accepted == 0 && st.Rejected == 0 &&
		len(st.Records) == 0 && len(st.History) == 0 &&
		len(st.Uploads) == 0 && len(st.Sessions) == 0
}

// snapshotData is the gob-encoded snapshot payload. gob stores float64 and
// time.Time losslessly, so a snapshot roundtrip keeps features bit-identical.
type snapshotData struct {
	Accepted, Rejected int
	Records            []rssimap.Record
	History            []*trajectory.T
	Sessions           []stream.SessionState
	// Trust is nil when the trust pipeline is disabled; gob decodes old
	// snapshots (no Trust field) to nil, keeping them recoverable.
	Trust *trust.PipelineState
}

// entryKind discriminates queued WAL appends. The zero value is a batch
// verdict, so the pre-streaming enqueue sites read unchanged.
type entryKind int

const (
	entryVerdict entryKind = iota
	entrySessionOpen
	entrySessionChunk
	entrySessionVerdict
	entrySessionReject
)

// persistEntry is one queued WAL append; a barrier entry (barrier != nil)
// carries no frame and is closed once everything before it is on disk.
type persistEntry struct {
	kind        entryKind
	accepted    bool            // entryVerdict: upload accepted?
	upload      *wifi.Upload    // accepted verdict payload, or one session chunk
	sessID      string          // session open/verdict frames
	mode        trajectory.Mode // session open frames
	contributor string          // session open frames: uploader identity
	outcome     byte            // session verdict frames
	pFake       float64         // detector score of accepted verdicts
	barrier     chan struct{}
}

// Persistence is the provider's durability layer: a write-ahead log of
// verdicts plus periodic snapshots. Accepted uploads are framed into the
// log asynchronously (bounded queue, group-committed fsync); compaction
// snapshots the full provider state and resets the log.
type Persistence struct {
	opts     PersistOptions
	dir      string
	log      *wal.Log
	snapPath string

	recovered *RecoveredState

	svc       *Service // bound by server.New
	queue     chan persistEntry
	compactCh chan chan error
	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
	buf       []byte // appender goroutine scratch

	lastSnapshot atomic.Int64 // UnixNano of the last committed snapshot

	errMu    sync.Mutex
	firstErr error
	errCount atomic.Int64 // background append/sync/compact failures

	// breaker guards the persistence path when PersistOptions.Breaker is
	// set; healedErrs is the errCount value covered by the last committed
	// snapshot — errors at or below it were repaired by a compaction, so
	// only errCount > healedErrs means acked-durable is compromised.
	breaker    *resilience.Breaker
	healedErrs atomic.Int64
}

// OpenPersistence opens (or initialises) the data directory and recovers
// the provider state from the snapshot and WAL. The generation protocol:
// a snapshot newer than the log supersedes it entirely (crash between
// snapshot rename and log reset); equal generations replay the log on top
// of the snapshot; a log newer than its snapshot means the snapshot file
// was lost and recovery refuses to guess.
func OpenPersistence(dir string, opts PersistOptions) (*Persistence, error) {
	opts.setDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	syncInterval := opts.SyncInterval
	if syncInterval < 0 {
		syncInterval = 0 // wal: zero = inline fsync per append
	}
	log, err := wal.Open(filepath.Join(dir, walFileName),
		wal.Options{SyncInterval: syncInterval, FS: opts.FS})
	if err != nil {
		return nil, err
	}
	p := &Persistence{
		opts:      opts,
		dir:       dir,
		log:       log,
		snapPath:  filepath.Join(dir, snapFileName),
		queue:     make(chan persistEntry, opts.QueueDepth),
		compactCh: make(chan chan error),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if opts.Breaker != nil {
		p.breaker = resilience.NewBreaker(*opts.Breaker)
	}
	if err := p.load(); err != nil {
		log.Close()
		return nil, err
	}
	return p, nil
}

// load reconciles snapshot and WAL generations and replays the log.
func (p *Persistence) load() error {
	st := &RecoveredState{}
	pending := newPendingSessions()
	snapGen, payload, err := wal.ReadSnapshotFS(p.opts.FS, p.snapPath)
	switch {
	case errors.Is(err, wal.ErrNoSnapshot):
		snapGen = 0
	case err != nil:
		return err
	default:
		var snap snapshotData
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
			return fmt.Errorf("%w: snapshot payload: %v", wal.ErrCorrupt, err)
		}
		st.Accepted, st.Rejected = snap.Accepted, snap.Rejected
		st.Records, st.History = snap.Records, snap.History
		st.Trust = snap.Trust
		for i := range snap.Sessions {
			if err := pending.open(snap.Sessions[i]); err != nil {
				return fmt.Errorf("%w: snapshot sessions: %v", wal.ErrCorrupt, err)
			}
		}
	}

	walGen := p.log.Generation()
	switch {
	case snapGen > walGen:
		// Crash between snapshot rename and log reset: the snapshot already
		// contains every frame in the stale log, so discard the frames and
		// re-point the log at the snapshot's generation.
		if err := p.log.Reset(snapGen); err != nil {
			return err
		}
	case snapGen < walGen && walGen > 1:
		// The log was compacted at least once, so a snapshot of its
		// generation must exist; a missing or older one means lost data.
		return fmt.Errorf("%w: snapshot generation %d behind log generation %d in %s",
			wal.ErrCorrupt, snapGen, walGen, p.dir)
	default:
		err := p.log.Replay(func(typ byte, payload []byte) error {
			switch typ {
			case frameAccepted:
				u, pFake, err := decodeUpload(payload)
				if err != nil {
					return err
				}
				st.Uploads = append(st.Uploads, u)
				st.UploadScores = append(st.UploadScores, pFake)
				st.Accepted++
			case frameRejected:
				st.Rejected++
			case frameSessionOpen:
				id, mode, contributor, err := decodeSessionOpen(payload)
				if err != nil {
					return err
				}
				if err := pending.open(stream.SessionState{ID: id, Mode: mode, Contributor: contributor}); err != nil {
					return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
				}
			case frameSessionChunk:
				chunk, _, err := decodeUpload(payload)
				if err != nil {
					return err
				}
				if err := pending.appendChunk(chunk); err != nil {
					return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
				}
			case frameSessionReject:
				id, err := decodeSessionReject(payload)
				if err != nil {
					return err
				}
				if err := pending.reject(id); err != nil {
					return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
				}
			case frameSessionVerdict:
				id, outcome, pFake, err := decodeSessionVerdict(payload)
				if err != nil {
					return err
				}
				sess, err := pending.resolve(id)
				if err != nil {
					return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
				}
				switch outcome {
				case sessionAccepted:
					// The verdict frame carries no trajectory: the chunks
					// already journaled every point bit-exact. Reassemble and
					// replay through the same path a batch accept takes, in
					// frame (= ingestion) order.
					st.Uploads = append(st.Uploads, &wifi.Upload{
						Traj: &trajectory.T{
							ID: sess.ID, Mode: sess.Mode, Points: sess.Points,
						},
						Scans:       sess.Scans,
						Contributor: sess.Contributor,
					})
					st.UploadScores = append(st.UploadScores, pFake)
					st.Accepted++
				case sessionRejected:
					st.Rejected++
				case sessionAborted:
					// Expired or refused on restart: drop without a verdict.
				default:
					return fmt.Errorf("%w: unknown session outcome %d", wal.ErrCorrupt, outcome)
				}
			default:
				return fmt.Errorf("%w: unknown frame type %d", wal.ErrCorrupt, typ)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	st.Sessions = pending.inFlight()
	p.recovered = st
	return nil
}

// pendingSessions tracks streaming sessions during replay: seeded from the
// snapshot, grown by open/chunk frames, retired by verdict frames.
// Whatever is left in flight at the end of the log is handed to
// Service.Restore to resume or abort.
type pendingSessions struct {
	byID  map[string]*stream.SessionState
	order []string
}

func newPendingSessions() *pendingSessions {
	return &pendingSessions{byID: make(map[string]*stream.SessionState)}
}

func (ps *pendingSessions) open(st stream.SessionState) error {
	if st.ID == "" {
		return errors.New("session frame without an id")
	}
	if _, dup := ps.byID[st.ID]; dup {
		return fmt.Errorf("session %q opened twice", st.ID)
	}
	if len(st.Scans) != len(st.Points) {
		return fmt.Errorf("session %q has %d scans for %d points", st.ID, len(st.Scans), len(st.Points))
	}
	ps.byID[st.ID] = &st
	ps.order = append(ps.order, st.ID)
	return nil
}

func (ps *pendingSessions) appendChunk(chunk *wifi.Upload) error {
	sess, ok := ps.byID[chunk.Traj.ID]
	if !ok {
		return fmt.Errorf("chunk for unopened session %q", chunk.Traj.ID)
	}
	sess.Points = append(sess.Points, chunk.Traj.Points...)
	sess.Scans = append(sess.Scans, chunk.Scans...)
	sess.Chunks++
	return nil
}

// reject marks a pending session as early-exit rejected. The marker frame
// is journaled while the session is still registered, so replay must find
// it in flight; a reject for a resolved or unknown session is corruption.
func (ps *pendingSessions) reject(id string) error {
	sess, ok := ps.byID[id]
	if !ok {
		return fmt.Errorf("reject marker for unopened session %q", id)
	}
	sess.Rejected = true
	return nil
}

func (ps *pendingSessions) resolve(id string) (*stream.SessionState, error) {
	sess, ok := ps.byID[id]
	if !ok {
		return nil, fmt.Errorf("verdict for unopened session %q", id)
	}
	delete(ps.byID, id)
	for i, oid := range ps.order {
		if oid == id {
			ps.order = append(ps.order[:i], ps.order[i+1:]...)
			break
		}
	}
	return sess, nil
}

func (ps *pendingSessions) inFlight() []stream.SessionState {
	if len(ps.order) == 0 {
		return nil
	}
	out := make([]stream.SessionState, 0, len(ps.order))
	for _, id := range ps.order {
		out = append(out, *ps.byID[id])
	}
	return out
}

// Recovered returns the state reconstructed at open time.
func (p *Persistence) Recovered() *RecoveredState { return p.recovered }

// bind attaches the persistence to its service and starts the appender.
func (p *Persistence) bind(s *Service) error {
	if p.svc != nil {
		return errors.New("server: persistence already bound to a service")
	}
	p.svc = s
	go p.run()
	return nil
}

// enqueueLocked queues one verdict for the appender. It is called with the
// service mutex held, which is what makes the WAL frame order match the
// store ingestion order (and recovery bit-identical): no other upload can
// commit state between this upload's ingestion and its enqueue. A full
// queue blocks the upload — that is the backpressure, and it cannot
// deadlock because the appender drains the queue without ever waiting on
// the service mutex.
func (p *Persistence) enqueueLocked(e persistEntry) {
	p.queue <- e
}

// run is the appender goroutine: it drains the queue into the WAL,
// triggers auto-compaction, and — when the breaker is armed — wakes at
// probe time to attempt the half-open heal.
func (p *Persistence) run() {
	defer close(p.done)
	for {
		if p.breaker != nil && p.breaker.ProbeDue() {
			p.probe()
		}
		var probeC <-chan time.Time
		var probeTimer *time.Timer
		if p.breaker != nil && p.breaker.State() == resilience.StateOpen {
			probeTimer = time.NewTimer(p.breaker.ProbeIn() + time.Millisecond)
			probeC = probeTimer.C
		}
		select {
		case e := <-p.queue:
			p.appendEntry(e)
			p.maybeAutoCompact()
		case ch := <-p.compactCh:
			ch <- p.compact()
		case <-probeC:
			// Loop back around; ProbeDue decides at the top.
		case <-p.stop:
			if probeTimer != nil {
				probeTimer.Stop()
			}
			p.drainQueue()
			return
		}
		if probeTimer != nil {
			probeTimer.Stop()
		}
	}
}

// probe is the half-open trial: a full compaction. Success both proves
// the filesystem accepts writes and syncs again AND repairs the durability
// hole — every frame dropped while the breaker was open is inside the
// snapshot, because the snapshot is cut from the in-memory state that
// never stopped being correct. Failure re-opens the breaker and re-arms
// the cooldown.
func (p *Persistence) probe() {
	if err := p.compact(); err != nil {
		p.noteErr(err) // noteErr reports the failure to the breaker too
		return
	}
	p.breaker.Success()
}

// appendEntry frames one entry into the log.
func (p *Persistence) appendEntry(e persistEntry) {
	if e.barrier != nil {
		p.noteErr(p.log.Sync())
		close(e.barrier)
		return
	}
	switch e.kind {
	case entryVerdict:
		if !e.accepted {
			p.noteOutcome(p.log.Append(frameRejected, nil))
			return
		}
		buf, err := appendUpload(p.buf[:0], e.upload, e.pFake)
		if err != nil {
			p.noteErr(err)
			return
		}
		p.buf = buf
		p.noteOutcome(p.log.Append(frameAccepted, buf))
	case entrySessionOpen:
		buf, err := appendSessionOpen(p.buf[:0], e.sessID, e.mode, e.contributor)
		if err != nil {
			p.noteErr(err)
			return
		}
		p.buf = buf
		p.noteOutcome(p.log.Append(frameSessionOpen, buf))
	case entrySessionChunk:
		buf, err := appendUpload(p.buf[:0], e.upload, 0)
		if err != nil {
			p.noteErr(err)
			return
		}
		p.buf = buf
		p.noteOutcome(p.log.Append(frameSessionChunk, buf))
	case entrySessionVerdict:
		buf, err := appendSessionVerdict(p.buf[:0], e.sessID, e.outcome, e.pFake)
		if err != nil {
			p.noteErr(err)
			return
		}
		p.buf = buf
		p.noteOutcome(p.log.Append(frameSessionVerdict, buf))
	case entrySessionReject:
		buf, err := appendSessionReject(p.buf[:0], e.sessID)
		if err != nil {
			p.noteErr(err)
			return
		}
		p.buf = buf
		p.noteOutcome(p.log.Append(frameSessionReject, buf))
	default:
		p.noteErr(fmt.Errorf("server: unknown persist entry kind %d", e.kind))
	}
}

// noteOutcome records a frame append result: failures feed noteErr (and
// the breaker), successes reset the breaker's failure streak.
func (p *Persistence) noteOutcome(err error) {
	if err == nil {
		if p.breaker != nil {
			p.breaker.Ok()
		}
		return
	}
	p.noteErr(err)
}

// drainQueue appends everything currently queued without blocking.
func (p *Persistence) drainQueue() {
	for {
		select {
		case e := <-p.queue:
			p.appendEntry(e)
		default:
			return
		}
	}
}

func (p *Persistence) maybeAutoCompact() {
	if p.opts.CompactBytes <= 0 {
		return
	}
	if _, bytes := p.log.Stats(); bytes >= p.opts.CompactBytes {
		p.noteErr(p.compact())
	}
}

// compact writes a snapshot of the full provider state and resets the log
// to the snapshot's generation. It runs on the appender goroutine (or on
// Close's, once the appender has exited), so it is the sole WAL writer.
func (p *Persistence) compact() error {
	if p.svc == nil {
		return errors.New("server: persistence not bound to a service")
	}
	// Phase 1: win the service write lock while keeping the queue drained —
	// an upload blocked on a full queue holds the lock, so draining is what
	// lets it finish and release.
	for !p.svc.mu.TryLock() {
		p.drainQueue()
		runtime.Gosched()
	}
	// Phase 2: the lock freezes enqueues, so after one more drain the WAL
	// holds exactly the frames the captured state accounts for.
	p.drainQueue()
	st := p.svc.snapshotLocked()
	gen := p.log.Generation() + 1
	p.svc.mu.Unlock()
	// Phase 3: persist outside the lock. Uploads accepted from here on sit
	// in the queue until compaction finishes, so their frames land after
	// the reset and replay cleanly on top of the snapshot.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	if err := wal.WriteSnapshotFS(p.opts.FS, p.snapPath, gen, buf.Bytes()); err != nil {
		return err
	}
	if err := p.log.Reset(gen); err != nil {
		return err
	}
	p.lastSnapshot.Store(time.Now().UnixNano())
	// The snapshot captured the complete in-memory state, so every
	// append failure before this point is repaired: frames that never
	// made the log are inside the snapshot. Durability is whole again.
	p.healedErrs.Store(p.errCount.Load())
	return nil
}

// Compact synchronously snapshots the provider state and resets the log.
func (p *Persistence) Compact() error {
	if p.svc == nil {
		return errors.New("server: persistence not bound to a service")
	}
	ch := make(chan error, 1)
	select {
	case p.compactCh <- ch:
		return <-ch
	case <-p.done:
		return errors.New("server: persistence closed")
	}
}

// Flush blocks until every entry queued before the call is appended and
// fsynced — the durability barrier crash tests cut at.
func (p *Persistence) Flush() error {
	if p.svc == nil {
		return errors.New("server: persistence not bound to a service")
	}
	barrier := make(chan struct{})
	select {
	case p.queue <- persistEntry{barrier: barrier}:
	case <-p.done:
		return errors.New("server: persistence closed")
	}
	select {
	case <-barrier:
	case <-p.done:
		// The appender exits by draining the queue, so a shutdown race
		// still lands the barrier's predecessors; the final Close sync
		// covers durability.
	}
	// Only unhealed errors break the durability promise: failures whose
	// frames a later snapshot captured (errCount <= healedErrs) are
	// repaired, so acks issued after the heal are trustworthy again.
	if p.errCount.Load() > p.healedErrs.Load() {
		if err := p.Err(); err != nil {
			return fmt.Errorf("server: durability compromised: %w", err)
		}
		return errors.New("server: durability compromised")
	}
	return nil
}

// close stops the appender, takes a final snapshot, and closes the log.
func (p *Persistence) close() error {
	var err error
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		if p.svc != nil {
			// The appender is gone; any upload that raced shutdown is
			// still queued and gets drained by the compaction itself.
			err = p.compact()
		}
		if cerr := p.log.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = p.Err()
		}
	})
	return err
}

// noteErr counts and records background append/sync/compact failures; the
// first one is kept verbatim for /v1/stats and Err. When the breaker is
// armed, every failure feeds it — in the closed state it advances the
// streak toward opening, in half-open it re-opens.
func (p *Persistence) noteErr(err error) {
	if err == nil {
		return
	}
	p.errCount.Add(1)
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
	if p.breaker != nil {
		p.breaker.Fail()
	}
}

// degraded reports whether the service must fail closed: the breaker is
// armed and not closed, so an upload ack could not be made durable.
func (p *Persistence) degraded() bool {
	return p.breaker != nil && p.breaker.State() != resilience.StateClosed
}

// retryAfter is the Retry-After hint for degraded 503s: the time until
// the next half-open probe could readmit traffic.
func (p *Persistence) retryAfter() time.Duration {
	if p.breaker == nil {
		return 0
	}
	return p.breaker.ProbeIn()
}

// breakerStats snapshots the breaker, nil when not armed.
func (p *Persistence) breakerStats() *resilience.BreakerStats {
	if p.breaker == nil {
		return nil
	}
	st := p.breaker.Stats()
	return &st
}

// Err returns the first background append/compact failure, if any.
func (p *Persistence) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

// PersistStats is the durability slice of /v1/stats.
type PersistStats struct {
	// WALBytes is the log size on disk, header included.
	WALBytes int64 `json:"wal_bytes"`
	// WALFrames is the number of frames appended since the last compaction.
	WALFrames uint64 `json:"wal_frames"`
	// Generation is the log generation (bumped by every compaction).
	Generation uint64 `json:"generation"`
	// LastSnapshot is the RFC 3339 time of the last committed snapshot,
	// empty if none this process lifetime.
	LastSnapshot string `json:"last_snapshot,omitempty"`
	// QueueDepth is the current number of verdicts awaiting append.
	QueueDepth int `json:"queue_depth"`
	// Errors counts background persistence failures (failed appends,
	// fsyncs, or compactions). UnhealedErrors is the subset not yet
	// repaired by a committed snapshot; nonzero means acknowledged-durable
	// cannot currently be promised.
	Errors         int64 `json:"errors"`
	UnhealedErrors int64 `json:"unhealed_errors"`
	// Error is the first background persistence failure, if any.
	Error string `json:"error,omitempty"`
	// Breaker reports the fail-closed circuit breaker when armed.
	Breaker *resilience.BreakerStats `json:"breaker,omitempty"`
	// Degraded mirrors the health endpoint: true while the breaker is
	// open or probing and uploads are being shed with 503.
	Degraded bool `json:"degraded"`
}

func (p *Persistence) stats() *PersistStats {
	frames, bytes := p.log.Stats()
	st := &PersistStats{
		WALBytes:   bytes,
		WALFrames:  frames,
		Generation: p.log.Generation(),
		QueueDepth: len(p.queue),
		Errors:     p.errCount.Load(),
		Breaker:    p.breakerStats(),
		Degraded:   p.degraded(),
	}
	if unhealed := st.Errors - p.healedErrs.Load(); unhealed > 0 {
		st.UnhealedErrors = unhealed
	}
	if ns := p.lastSnapshot.Load(); ns != 0 {
		st.LastSnapshot = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	}
	if err := p.Err(); err != nil {
		st.Error = err.Error()
	}
	return st
}
