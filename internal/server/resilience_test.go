package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/geo"
	"trajforge/internal/resilience"
	"trajforge/internal/trajectory"
)

func TestStatusErrorRetryable(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusTooManyRequests:       true,
		http.StatusBadGateway:            true,
		http.StatusServiceUnavailable:    true,
		http.StatusGatewayTimeout:        true,
		http.StatusBadRequest:            false,
		http.StatusNotFound:              false,
		http.StatusRequestEntityTooLarge: false,
		http.StatusInternalServerError:   false,
	} {
		se := &StatusError{Code: code, Body: "x"}
		if se.Retryable() != want {
			t.Errorf("StatusError(%d).Retryable() = %v, want %v", code, !want, want)
		}
	}
	se := &StatusError{Code: 503, Body: "degraded"}
	if se.Error() != "server: status 503: degraded" {
		t.Fatalf("Error() = %q", se.Error())
	}
}

// blockingMotion parks every upload inside the pipeline until released, so
// tests can hold admission slots occupied for as long as they need.
type blockingMotion struct {
	entered chan struct{}
	release chan struct{}
}

func (m *blockingMotion) Name() string { return "blocking-stub" }
func (m *blockingMotion) ProbReal(*trajectory.T) float64 {
	m.entered <- struct{}{}
	<-m.release
	return 1
}

// TestAdmissionShedsWith429 pins the overload contract end to end: with
// one slot and a one-deep queue, a third concurrent upload is shed with
// 429 and a Retry-After hint, and the admission counters record every
// outcome. (QueueDepth 1 is the smallest expressible queue — the server
// treats 0 as "use the 2*MaxInFlight default".)
func TestAdmissionShedsWith429(t *testing.T) {
	stub := &blockingMotion{entered: make(chan struct{}, 1), release: make(chan struct{})}
	svc, ts, client := newTestService(t, Config{
		Motion: stub, MaxInFlight: 1, QueueDepth: 1,
	})

	admitted := make(chan error, 2)
	go func() {
		_, err := client.Upload(realisticUpload(t, 61))
		admitted <- err
	}()
	<-stub.entered // the first upload now owns the only slot

	go func() {
		_, err := client.Upload(realisticUpload(t, 62))
		admitted <- err
	}()
	// Wait for the second upload to occupy the single queue slot.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if a := svc.Stats().Admission; a != nil && a.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second upload never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/trajectory", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third upload = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(stub.release)
	for i := 0; i < 2; i++ {
		if err := <-admitted; err != nil {
			t.Fatalf("admitted upload failed: %v", err)
		}
	}
	st, err := client.FetchStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil {
		t.Fatal("stats missing admission section")
	}
	if st.Admission.Admitted != 2 || st.Admission.ShedQueueFull != 1 {
		t.Fatalf("admission counters = %+v", st.Admission)
	}
}

// flakyFront simulates an unreliable path to the service: it fails the
// first `fail` attempts — either rejecting up front with the given status
// or processing the request and then dropping the response — and passes
// everything after through untouched.
type flakyFront struct {
	inner    http.Handler
	fail     int32 // remaining failures
	status   int   // reject with this status; 0 = process then drop response
	attempts atomic.Int32
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.attempts.Add(1)
	if atomic.AddInt32(&f.fail, -1) >= 0 {
		if f.status != 0 {
			w.WriteHeader(f.status)
			return
		}
		// Process for real, then lose the answer on the way back: the
		// server has recorded a verdict the client never saw.
		f.inner.ServeHTTP(httptest.NewRecorder(), r)
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// fastRetry is a test retry policy with millisecond backoff so injected
// failures don't slow the suite down.
func fastRetry() resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: 5,
		Base:        time.Millisecond,
		Max:         5 * time.Millisecond,
		Budget:      time.Second,
	}
}

// TestUploadRetriesInjectedRejections pins the retrying client against
// injected 429 and 503 rejections: the upload converges to a verdict and
// the server records it exactly once.
func TestUploadRetriesInjectedRejections(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		svc, err := New(Config{Projection: geo.NewProjection(_origin)})
		if err != nil {
			t.Fatal(err)
		}
		front := &flakyFront{inner: svc.Handler(), fail: 2, status: status}
		ts := httptest.NewServer(front)
		client := NewRetryingClient(ts.URL, geo.NewProjection(_origin))
		client.Retry = fastRetry()

		v, err := client.Upload(realisticUpload(t, 71))
		if err != nil {
			t.Fatalf("status %d: upload did not converge: %v", status, err)
		}
		if !v.Accepted {
			t.Fatalf("status %d: verdict = %+v", status, v)
		}
		if got := front.attempts.Load(); got != 3 {
			t.Fatalf("status %d: %d wire attempts, want 3", status, got)
		}
		if st := svc.Stats(); st.Accepted+st.Rejected != 1 {
			t.Fatalf("status %d: server recorded %d verdicts, want 1", status, st.Accepted+st.Rejected)
		}
		ts.Close()
	}
}

// TestRetryAfterDroppedResponseConvergesOnce is the idempotency e2e: the
// first attempt is processed but its response is lost, so the retry hits
// the dedup cache and replays the recorded verdict — one logical upload,
// two wire attempts, exactly one recorded verdict and one ingestion.
func TestRetryAfterDroppedResponseConvergesOnce(t *testing.T) {
	svc, err := New(Config{Projection: geo.NewProjection(_origin)})
	if err != nil {
		t.Fatal(err)
	}
	front := &flakyFront{inner: svc.Handler(), fail: 1, status: 0}
	ts := httptest.NewServer(front)
	defer ts.Close()
	client := NewRetryingClient(ts.URL, geo.NewProjection(_origin))
	client.Retry = fastRetry()

	v, err := client.Upload(realisticUpload(t, 72))
	if err != nil {
		t.Fatalf("upload did not converge: %v", err)
	}
	if !v.Accepted {
		t.Fatalf("verdict = %+v", v)
	}
	st := svc.Stats()
	if st.Accepted+st.Rejected != 1 || st.History != 1 {
		t.Fatalf("server recorded %d verdicts (%d history), want exactly 1",
			st.Accepted+st.Rejected, st.History)
	}
	if st.Dedup == nil || st.Dedup.Hits != 1 {
		t.Fatalf("dedup stats = %+v, want 1 replay hit", st.Dedup)
	}
	if got := front.attempts.Load(); got != 2 {
		t.Fatalf("%d wire attempts, want 2", got)
	}
}

// TestIdempotencyKeyReplay exercises the raw header contract: a second
// POST with the same Idempotency-Key answers 200 with the replay marker
// and records nothing new.
func TestIdempotencyKeyReplay(t *testing.T) {
	svc, ts, client := newTestService(t, Config{})
	req, err := client.BuildRequest(realisticUpload(t, 73))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	post := func() *http.Response {
		hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/trajectory", bytes.NewReader(body))
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Idempotency-Key", "fixed-key-1")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := post()
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK || r1.Header.Get("Idempotency-Replayed") != "" {
		t.Fatalf("first post: %d, replayed=%q", r1.StatusCode, r1.Header.Get("Idempotency-Replayed"))
	}
	r2 := post()
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || r2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("second post: %d, replayed=%q", r2.StatusCode, r2.Header.Get("Idempotency-Replayed"))
	}
	if st := svc.Stats(); st.Accepted+st.Rejected != 1 {
		t.Fatalf("recorded %d verdicts, want 1", st.Accepted+st.Rejected)
	}
}

// TestBreakerDegradesAndHeals drives the full fail-closed cycle at the
// server-package level: a wedged disk trips the persistence breaker,
// health flips to degraded and uploads shed with 503 + Retry-After, and
// after the disk heals a probe compaction closes the breaker and uploads
// are acknowledged durable again.
func TestBreakerDegradesAndHeals(t *testing.T) {
	const cooldown = 20 * time.Millisecond
	ffs := faultfs.New(fsx.OS, faultfs.Options{})
	p, err := OpenPersistence(t.TempDir(), PersistOptions{
		FS: ffs, SyncInterval: -1,
		Breaker: &resilience.BreakerConfig{Cooldown: cooldown},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, _, client := newTestService(t, Config{Persist: p, IngestAccepted: true})

	if _, err := client.Upload(realisticUpload(t, 81)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("healthy flush: %v", err)
	}

	ffs.Wedge()
	// The next upload may still be acked at the HTTP layer (the append
	// fails asynchronously); its durability barrier must refuse, and the
	// breaker must trip.
	if _, err := client.Upload(realisticUpload(t, 82)); err != nil {
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			t.Fatalf("wedged upload: %v", err)
		}
	} else if err := p.Flush(); err == nil {
		t.Fatal("flush on wedged disk returned nil")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := client.FetchHealth()
		if err != nil {
			t.Fatal(err)
		}
		if h.Degraded {
			if h.Ready || h.Status != "degraded" {
				t.Fatalf("degraded health = %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never reported degraded")
		}
		time.Sleep(cooldown / 4)
	}
	// Degraded uploads are refused outright: fail closed, typed, retryable.
	_, err = client.Upload(realisticUpload(t, 83))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded upload error = %v", err)
	}
	if !se.Retryable() || se.RetryAfter <= 0 {
		t.Fatalf("degraded shed not retryable with hint: %+v", se)
	}

	ffs.Heal()
	for {
		h, err := client.FetchHealth()
		if err != nil {
			t.Fatal(err)
		}
		if h.Ready && !h.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never recovered after heal")
		}
		time.Sleep(cooldown / 4)
	}
	if _, err := client.Upload(realisticUpload(t, 84)); err != nil {
		t.Fatalf("post-heal upload: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("post-heal flush: %v", err)
	}
	st := svc.Stats()
	if st.DegradedRejects < 1 {
		t.Fatalf("degraded_rejects = %d, want >= 1", st.DegradedRejects)
	}
	ps := st.Persistence
	if ps == nil || ps.Breaker == nil {
		t.Fatal("stats missing breaker section")
	}
	if ps.Breaker.Opens < 1 || ps.Breaker.Closes < 1 || ps.Breaker.State != "closed" {
		t.Fatalf("breaker never cycled: %+v", ps.Breaker)
	}
	if ps.Degraded || ps.UnhealedErrors != 0 {
		t.Fatalf("persistence still degraded after heal: %+v", ps)
	}
}
