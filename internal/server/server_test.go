package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/roadnet"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

var (
	_origin = geo.LatLon{Lat: 32.06, Lon: 118.79}
	_t0     = time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
)

// fixedMotion is a stub detector with a programmable answer.
type fixedMotion struct{ prob float64 }

func (f *fixedMotion) Name() string                         { return "stub" }
func (f *fixedMotion) ProbReal(t *trajectory.T) float64     { return f.prob }
func (f *fixedMotion) set(p float64)                        { f.prob = p }
func realisticUpload(t *testing.T, seed int64) *wifi.Upload { return uploadFor(t, seed, 30) }
func uploadFor(t testing.TB, seed int64, n int) *wifi.Upload {
	t.Helper()
	tk, err := mobility.Simulate(rand.New(rand.NewSource(seed)), mobility.Options{
		Route:     []geo.Point{{X: 0, Y: 0}, {X: 300, Y: 0}},
		Mode:      trajectory.ModeWalking,
		Start:     _t0,
		Interval:  time.Second,
		MaxPoints: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	traj := tk.Trajectory()
	scans := make([]wifi.Scan, traj.Len())
	for i := range scans {
		scans[i] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -60}}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server, *Client) {
	t.Helper()
	if cfg.Projection == nil {
		cfg.Projection = geo.NewProjection(_origin)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts, NewClient(ts.URL, cfg.Projection)
}

func TestNewRequiresProjection(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil projection must error")
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts, client := newTestService(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
	st, err := client.FetchStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 0 || st.Rejected != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
}

func TestUploadAcceptedWithoutCheckers(t *testing.T) {
	svc, _, client := newTestService(t, Config{})
	v, err := client.Upload(realisticUpload(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Fatalf("verdict = %+v", v)
	}
	for stage, status := range v.Checks {
		if status != "skipped" {
			t.Fatalf("stage %s = %s, want skipped", stage, status)
		}
	}
	if st := svc.Stats(); st.Accepted != 1 || st.History != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMotionCheckRejects(t *testing.T) {
	stub := &fixedMotion{prob: 0.2}
	svc, _, client := newTestService(t, Config{Motion: stub})
	v, err := client.Upload(realisticUpload(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["motion"] != "fail" {
		t.Fatalf("verdict = %+v", v)
	}
	if v.MotionProbReal == nil || *v.MotionProbReal != 0.2 {
		t.Fatalf("prob = %v", v.MotionProbReal)
	}
	stub.set(0.9)
	v, err = client.Upload(realisticUpload(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Checks["motion"] != "pass" {
		t.Fatalf("verdict = %+v", v)
	}
	if st := svc.Stats(); st.Accepted != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplayCheckRejectsSecondUpload(t *testing.T) {
	rc, err := detect.NewReplayChecker(1.2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestService(t, Config{Replay: rc})
	u := realisticUpload(t, 4)
	v, err := client.Upload(u)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Fatalf("first upload rejected: %+v", v)
	}
	// Uploading a barely-perturbed copy must now be flagged as a replay.
	replay := u.Traj.Clone()
	rng := rand.New(rand.NewSource(5))
	for i := range replay.Points {
		replay.Points[i].Pos.X += rng.NormFloat64() * 0.3
	}
	v, err = client.Upload(&wifi.Upload{Traj: replay, Scans: u.Scans})
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["replay"] != "fail" {
		t.Fatalf("replay accepted: %+v", v)
	}
}

func TestUploadValidation(t *testing.T) {
	_, ts, _ := newTestService(t, Config{MaxPoints: 10})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/trajectory", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{malformed"); code != http.StatusBadRequest {
		t.Fatalf("malformed = %d", code)
	}
	if code := post(`{"points":[{"lat":0,"lon":0,"time":0}]}`); code != http.StatusBadRequest {
		t.Fatalf("single point = %d", code)
	}
	if code := post(`{"points":[{"lat":999,"lon":0,"time":0},{"lat":0,"lon":0,"time":1000}]}`); code != http.StatusBadRequest {
		t.Fatalf("bad coordinate = %d", code)
	}
	if code := post(`{"mode":"hover","points":[{"lat":0,"lon":0,"time":0},{"lat":0,"lon":0,"time":1000}]}`); code != http.StatusBadRequest {
		t.Fatalf("bad mode = %d", code)
	}
	// Too many points.
	var b bytes.Buffer
	b.WriteString(`{"points":[`)
	for i := 0; i < 12; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"lat":32,"lon":118,"time":%d}`, i*1000)
	}
	b.WriteString(`]}`)
	if code := post(b.String()); code != http.StatusBadRequest {
		t.Fatalf("oversized = %d", code)
	}
	// Non-monotonic timestamps.
	if code := post(`{"points":[{"lat":32,"lon":118,"time":1000},{"lat":32,"lon":118,"time":0}]}`); code != http.StatusBadRequest {
		t.Fatalf("non-monotonic = %d", code)
	}
}

func TestScansRequiredWhenConfigured(t *testing.T) {
	_, _, client := newTestService(t, Config{RequireScans: true})
	u := realisticUpload(t, 6)
	for i := range u.Scans {
		u.Scans[i] = wifi.Scan{}
	}
	if _, err := client.Upload(u); err == nil {
		t.Fatal("scan-less upload must be rejected")
	}
}

func TestMethodRestrictions(t *testing.T) {
	_, ts, _ := newTestService(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trajectory")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/trajectory = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d", resp.StatusCode)
	}
}

func TestConcurrentUploads(t *testing.T) {
	rc, err := detect.NewReplayChecker(1.2)
	if err != nil {
		t.Fatal(err)
	}
	svc, _, client := newTestService(t, Config{Replay: rc})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Upload(realisticUpload(t, int64(100+i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.Accepted+st.Rejected != n {
		t.Fatalf("stats = %+v, want %d total", st, n)
	}
	// Every upload ran the replay stage exactly once, concurrently; the
	// atomic stage clocks must agree.
	if got := st.Stages["replay"].Count; got != n {
		t.Fatalf("replay stage count = %d, want %d", got, n)
	}
}

func TestStageTimingsAccumulate(t *testing.T) {
	stub := &fixedMotion{prob: 0.9}
	svc, _, client := newTestService(t, Config{Motion: stub, Rules: detect.NewRuleChecker()})
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := client.Upload(realisticUpload(t, int64(300+i))); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	for _, stage := range []string{"rules", "motion"} {
		sg := st.Stages[stage]
		if sg.Count != n {
			t.Fatalf("stage %s count = %d, want %d", stage, sg.Count, n)
		}
		if sg.TotalMicros < 0 {
			t.Fatalf("stage %s total = %d", stage, sg.TotalMicros)
		}
	}
	for _, stage := range []string{"route", "replay", "wifi"} {
		if sg := st.Stages[stage]; sg.Count != 0 {
			t.Fatalf("skipped stage %s count = %d, want 0", stage, sg.Count)
		}
	}
}

func TestVerdictJSONShape(t *testing.T) {
	v := Verdict{Accepted: true, Checks: map[string]string{"replay": "pass"}}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"accepted":true`)) {
		t.Fatalf("verdict JSON = %s", data)
	}
}

func TestRouteCheckRejectsOffRoad(t *testing.T) {
	g, err := roadnet.Generate(rand.New(rand.NewSource(9)), roadnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := detect.NewRouteChecker(g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestService(t, Config{Route: rc})

	// On-road upload: follows an actual route.
	onRoad := realisticUpload(t, 31)
	v, err := client.Upload(onRoad)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture route (0,0)->(300,0) may not align with this graph, so
	// only assert the check ran.
	if v.Checks["route"] == "skipped" {
		t.Fatal("route check did not run")
	}

	// Far off-road upload must fail the route check.
	off := realisticUpload(t, 32)
	for i := range off.Traj.Points {
		off.Traj.Points[i].Pos.X -= 2000
		off.Traj.Points[i].Pos.Y -= 2000
	}
	v, err = client.Upload(off)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["route"] != "fail" {
		t.Fatalf("off-road upload verdict = %+v", v)
	}
}

func TestWiFiCheckInternalErrorSurfacesAs500(t *testing.T) {
	// A detector with a broken feature config makes the WiFi stage error;
	// the server must answer 500, not crash or mislabel.
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	det := &detect.WiFiDetector{
		Store:    store,
		Model:    nil,                                   // never reached
		Features: rssimap.FeatureConfig{R: -1, TopK: 3}, // invalid radius
	}
	svc, ts, client := newTestService(t, Config{WiFi: det})
	_ = ts
	u := realisticUpload(t, 41)
	_, err = client.Upload(u)
	if err == nil {
		t.Fatal("broken WiFi stage must surface an error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("error = %v, want StatusError 500", err)
	}
	if se.Retryable() {
		t.Fatal("a deterministic pipeline failure must not be retryable")
	}
	// The failure must also land on the observable counter.
	if st := svc.Stats(); st.InternalErrors != 1 {
		t.Fatalf("internal_errors = %d, want 1", st.InternalErrors)
	}
}

func TestRulesCheckRejectsTeleport(t *testing.T) {
	_, _, client := newTestService(t, Config{Rules: detect.NewRuleChecker()})
	u := realisticUpload(t, 51)
	// Clean upload passes.
	v, err := client.Upload(u)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted || v.Checks["rules"] != "pass" {
		t.Fatalf("clean upload verdict = %+v", v)
	}
	// Inject a teleport.
	bad := uploadFor(t, 52, 30)
	bad.Traj.Points[10].Pos.X += 5000
	v, err = client.Upload(bad)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["rules"] != "fail" {
		t.Fatalf("teleport verdict = %+v", v)
	}
}

// postJSON posts a raw body to /v1/trajectory and returns code + body.
func postJSON(t *testing.T, ts *httptest.Server, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/trajectory", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestDecodeErrorBodies pins down both the status code and the error body
// of every decode-stage rejection, so clients can rely on the messages.
func TestDecodeErrorBodies(t *testing.T) {
	_, ts, _ := newTestService(t, Config{MaxPoints: 5, RequireScans: true})

	code, body := postJSON(t, ts, `{"points":[{"lat":32,"lon":118,"time":0,"scan":[{"mac":"a","rssi":-50}]}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "2 points, got 1") {
		t.Fatalf("too few points = %d %q", code, body)
	}

	var b bytes.Buffer
	b.WriteString(`{"points":[`)
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"lat":32,"lon":118,"time":%d,"scan":[{"mac":"a","rssi":-50}]}`, i*1000)
	}
	b.WriteString(`]}`)
	code, body = postJSON(t, ts, b.String())
	if code != http.StatusBadRequest || !strings.Contains(body, "limit 5") {
		t.Fatalf("over MaxPoints = %d %q", code, body)
	}

	code, body = postJSON(t, ts,
		`{"points":[{"lat":91,"lon":118,"time":0},{"lat":32,"lon":118,"time":1000}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "invalid coordinate") {
		t.Fatalf("invalid coordinate = %d %q", code, body)
	}

	code, body = postJSON(t, ts,
		`{"points":[{"lat":32,"lon":118,"time":0},{"lat":32,"lon":118,"time":1000}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "no WiFi scans") {
		t.Fatalf("missing scans = %d %q", code, body)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	_, ts, _ := newTestService(t, Config{})
	// A single >16 MiB JSON string forces the decoder through the
	// MaxBytesReader limit before it can finish the token.
	body := `{"id":"` + strings.Repeat("x", 17<<20) + `"}`
	code, resp := postJSON(t, ts, body)
	if code != http.StatusRequestEntityTooLarge || !strings.Contains(resp, "exceeds") {
		t.Fatalf("oversized body = %d %q", code, resp)
	}
}

func TestHealthRejectsNonGET(t *testing.T) {
	_, ts, _ := newTestService(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/health", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/health = %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/health", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/health = %d", resp.StatusCode)
	}
}
