package server

import (
	"bytes"
	"context"
	"encoding/gob"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wal"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

func TestUploadCodecRoundtrip(t *testing.T) {
	u := uploadFor(t, 61, 20)
	u.Traj.ID = "user-42"
	u.Traj.Mode = trajectory.ModeCycling
	// Vary the scans: a missing scan, a multi-AP scan, odd float positions.
	u.Scans[3] = wifi.Scan{}
	u.Scans[4] = wifi.Scan{
		{MAC: "02:4e:00:00:00:07", RSSI: -91},
		{MAC: "02:4e:00:00:00:08", RSSI: -44},
	}
	u.Traj.Points[5].Pos.X = math.Nextafter(12.5, 13)
	u.Traj.Points[5].Pos.Y = -0.0

	u.Contributor = "device-0042"

	const pFake = 0.1875 // exactly representable: bit-equality must hold
	buf, err := appendUpload(nil, u, pFake)
	if err != nil {
		t.Fatal(err)
	}
	got, gotScore, err := decodeUpload(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Contributor != u.Contributor {
		t.Fatalf("decoded contributor = %q, want %q", got.Contributor, u.Contributor)
	}
	if math.Float64bits(gotScore) != math.Float64bits(pFake) {
		t.Fatalf("decoded pFake = %v, want %v", gotScore, pFake)
	}
	if got.Traj.ID != u.Traj.ID || got.Traj.Mode != u.Traj.Mode || got.Traj.Len() != u.Traj.Len() {
		t.Fatalf("decoded header = %q/%v/%d", got.Traj.ID, got.Traj.Mode, got.Traj.Len())
	}
	for i, p := range u.Traj.Points {
		q := got.Traj.Points[i]
		if math.Float64bits(p.Pos.X) != math.Float64bits(q.Pos.X) ||
			math.Float64bits(p.Pos.Y) != math.Float64bits(q.Pos.Y) {
			t.Fatalf("point %d: %v != %v (bits differ)", i, p.Pos, q.Pos)
		}
		if !p.Time.Equal(q.Time) {
			t.Fatalf("point %d time %v != %v", i, p.Time, q.Time)
		}
	}
	for i, scan := range u.Scans {
		if len(got.Scans[i]) != len(scan) {
			t.Fatalf("scan %d len %d != %d", i, len(got.Scans[i]), len(scan))
		}
		for j, obs := range scan {
			if got.Scans[i][j] != obs {
				t.Fatalf("scan %d obs %d = %+v, want %+v", i, j, got.Scans[i][j], obs)
			}
		}
	}
	// Truncations at every prefix length must error, never panic.
	for n := range buf {
		if _, _, err := decodeUpload(buf[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded cleanly", n)
		}
	}
}

// persistRecords builds a crowdsourced history around the test fixture
// route (0,0)->(300,0), dense enough for non-trivial features.
func persistRecords(rng *rand.Rand, n int) []rssimap.Record {
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := map[string]int{"02:4e:00:00:00:01": -55 - rng.Intn(20)}
		if rng.Intn(2) == 0 {
			m["02:4e:00:00:00:02"] = -60 - rng.Intn(20)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * 300, Y: rng.NormFloat64() * 3},
			RSSI: m,
		}
	}
	return recs
}

// trainTestDetector fits a tiny but real WiFi detector against the store.
func trainTestDetector(t *testing.T, store rssimap.Backend) *detect.WiFiDetector {
	t.Helper()
	real := make([]*wifi.Upload, 4)
	fake := make([]*wifi.Upload, 4)
	for i := range real {
		real[i] = uploadFor(t, int64(700+i), 20)
		f := uploadFor(t, int64(710+i), 20)
		for j := range f.Scans {
			f.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
		}
		fake[i] = f
	}
	det, err := detect.TrainWiFiDetector(store, real, fake,
		rssimap.DefaultFeatureConfig(), xgb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestCrashRecoveryBitIdentical is the subsystem's headline test: accept a
// batch of uploads, crash without a final snapshot, and rebuild the
// provider from the initial snapshot plus the WAL. The rebuilt store must
// answer feature queries bit-identically, the counters and history must
// match, and verdicts must be unchanged.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(71))
	bootstrap := persistRecords(rng, 400)

	store1, err := rssimap.NewStore(rssimap.DefaultConfig(), bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	det1 := trainTestDetector(t, store1)
	stub1 := &fixedMotion{prob: 0.9}
	rc1, err := detect.NewReplayChecker(1.2)
	if err != nil {
		t.Fatal(err)
	}

	p1, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Recovered().Empty() {
		t.Fatalf("fresh dir recovered %+v", p1.Recovered())
	}
	svc1, _, client1 := newTestService(t, Config{
		Motion: stub1, Replay: rc1, WiFi: det1,
		IngestAccepted: true, Persist: p1,
	})
	// Fresh directory: the bootstrap store exists only in memory until the
	// initial snapshot commits.
	if err := p1.Compact(); err != nil {
		t.Fatal(err)
	}

	// Accept a batch and reject a couple (motion stub flips), so both frame
	// types land in the WAL after the snapshot.
	var accepted []*wifi.Upload
	for i := 0; i < 8; i++ {
		stub1.set(0.9)
		if i%4 == 3 {
			stub1.set(0.1)
		}
		u := realisticUpload(t, int64(800+i))
		v, err := client1.Upload(u)
		if err != nil {
			t.Fatal(err)
		}
		if v.Accepted {
			accepted = append(accepted, u)
		}
	}
	wantAcc, wantRej := len(accepted), 8-len(accepted)
	if wantAcc == 0 || wantRej < 2 {
		t.Fatalf("need both verdicts in the WAL, got %d/%d", wantAcc, wantRej)
	}
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}
	st1 := svc1.Stats()
	if st1.Accepted != wantAcc || st1.Rejected != wantRej {
		t.Fatalf("run 1 stats = %+v", st1)
	}
	if st1.Persistence == nil || st1.Persistence.WALFrames != 8 {
		t.Fatalf("run 1 persistence stats = %+v", st1.Persistence)
	}
	probe := uploadFor(t, 999, 30)
	want, err := store1.Features(probe, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantVerdict, err := svc1.Verify(context.Background(), uploadFor(t, 888, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Crash: abandon svc1/p1 without Close — no final snapshot is written.

	// Recovery: snapshot holds the bootstrap store, the WAL holds all 8
	// verdicts; the uploads must re-ingest through the live code path.
	p2, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state := p2.Recovered()
	if state.Accepted != wantAcc || state.Rejected != wantRej {
		t.Fatalf("recovered counters = %d/%d", state.Accepted, state.Rejected)
	}
	if len(state.Records) != len(bootstrap) || len(state.Uploads) != wantAcc {
		t.Fatalf("recovered %d records, %d uploads", len(state.Records), len(state.Uploads))
	}
	store2, err := rssimap.NewStore(rssimap.DefaultConfig(), state.Records)
	if err != nil {
		t.Fatal(err)
	}
	det2 := &detect.WiFiDetector{Store: store2, Model: det1.Model, Features: det1.Features}
	rc2, err := detect.NewReplayChecker(1.2)
	if err != nil {
		t.Fatal(err)
	}
	svc2, _, _ := newTestService(t, Config{
		Motion: &fixedMotion{prob: 0.9}, Replay: rc2, WiFi: det2,
		IngestAccepted: true, Persist: p2,
	})
	svc2.Restore(state)

	got, err := store2.Features(probe, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("feature dim %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("feature %d: %v != %v (bits differ)", i, want[i], got[i])
		}
	}
	st2 := svc2.Stats()
	if st2.Accepted != wantAcc || st2.Rejected != wantRej || st2.History != st1.History {
		t.Fatalf("restored stats = %+v, want %+v", st2, st1)
	}
	gotVerdict, err := svc2.Verify(context.Background(), uploadFor(t, 888, 30))
	if err != nil {
		t.Fatal(err)
	}
	if gotVerdict.Accepted != wantVerdict.Accepted || gotVerdict.Reason != wantVerdict.Reason {
		t.Fatalf("verdict after recovery = %+v, want %+v", gotVerdict, wantVerdict)
	}
	for stage, status := range wantVerdict.Checks {
		if gotVerdict.Checks[stage] != status {
			t.Fatalf("stage %s = %s after recovery, want %s", stage, gotVerdict.Checks[stage], status)
		}
	}
	if (gotVerdict.WiFiProbFake == nil) != (wantVerdict.WiFiProbFake == nil) {
		t.Fatalf("verdict after recovery = %+v, want %+v", gotVerdict, wantVerdict)
	}
	if gotVerdict.WiFiProbFake != nil && *gotVerdict.WiFiProbFake != *wantVerdict.WiFiProbFake {
		t.Fatalf("wifi prob %v != %v", *gotVerdict.WiFiProbFake, *wantVerdict.WiFiProbFake)
	}
	// The restored replay history must still catch a near-duplicate of an
	// upload accepted before the crash.
	replayed := accepted[0].Traj.Clone()
	prng := rand.New(rand.NewSource(73))
	for i := range replayed.Points {
		replayed.Points[i].Pos.X += prng.NormFloat64() * 0.3
	}
	v, err := svc2.Verify(context.Background(), &wifi.Upload{Traj: replayed, Scans: accepted[0].Scans})
	if err != nil {
		t.Fatal(err)
	}
	if v.Accepted || v.Checks["replay"] != "fail" {
		t.Fatalf("post-recovery replay verdict = %+v", v)
	}

	// Graceful shutdown writes the final snapshot and resets the log; a
	// third open must recover everything from the snapshot alone.
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	p3, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s3 := p3.Recovered()
	if s3.Accepted != wantAcc || s3.Rejected != wantRej || len(s3.Uploads) != 0 {
		t.Fatalf("post-shutdown recovery = %d/%d with %d uploads", s3.Accepted, s3.Rejected, len(s3.Uploads))
	}
	store3, err := rssimap.NewStore(rssimap.DefaultConfig(), s3.Records)
	if err != nil {
		t.Fatal(err)
	}
	final, err := store3.Features(probe, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// store2 ingested the WAL uploads after the feature probe above, so
	// compare against its current answer.
	want2, err := store2.Features(probe, rssimap.DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want2 {
		if math.Float64bits(want2[i]) != math.Float64bits(final[i]) {
			t.Fatalf("snapshot-only feature %d: %v != %v", i, want2[i], final[i])
		}
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistence(dir, PersistOptions{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc, _, client := newTestService(t, Config{Persist: p})
	if _, err := client.Upload(realisticUpload(t, 91)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.Persistence != nil && st.Persistence.Generation >= 2 && st.Persistence.WALFrames == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction did not run: %+v", st.Persistence)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted state must recover from the snapshot.
	p2, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p2.Recovered(); st.Accepted != 1 || len(st.Uploads) != 0 {
		t.Fatalf("recovered = %+v", st)
	}
}

func TestSnapshotSupersedesStaleLog(t *testing.T) {
	// Simulate a crash between snapshot rename and log reset: the snapshot
	// carries a newer generation than the log, whose frames it already
	// contains. Recovery must take the snapshot and discard the frames.
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, walFileName), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := appendUpload(nil, uploadFor(t, 95, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(frameAccepted, buf); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snapshotData{Accepted: 5}); err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteSnapshot(filepath.Join(dir, snapFileName), 2, payload.Bytes()); err != nil {
		t.Fatal(err)
	}

	p, err := OpenPersistence(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Recovered()
	if st.Accepted != 5 || len(st.Uploads) != 0 {
		t.Fatalf("recovered = %+v, want snapshot state only", st)
	}
	if gen := p.log.Generation(); gen != 2 {
		t.Fatalf("log generation = %d, want 2", gen)
	}
}

func TestMissingSnapshotForCompactedLogRefused(t *testing.T) {
	// A log past generation 1 with no (or an older) snapshot means the
	// snapshot file was lost; recovery must refuse rather than guess.
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, walFileName), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Reset(3); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPersistence(dir, PersistOptions{}); err == nil {
		t.Fatal("compacted log without snapshot must refuse to open")
	} else if !strings.Contains(err.Error(), "generation") {
		t.Fatalf("unexpected error: %v", err)
	}
}
