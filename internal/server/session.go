package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"trajforge/internal/stream"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// Streaming verification endpoints. A client opens a session, appends
// point chunks as the user moves (each chunk acknowledged with a
// provisional verdict over a sliding window), and closes the session to
// get the final verdict — computed by the exact batch pipeline, so it is
// bit-identical to POSTing the assembled trajectory to /v1/trajectory.
//
// Durability mirrors the batch path: the session open, every acknowledged
// chunk, and the final verdict are journaled as WAL frames under the same
// service mutex that orders batch uploads, so recovery either resumes an
// in-flight session where its last acknowledged chunk left off or aborts
// it cleanly with a journaled verdict.

// SessionOpenRequest opens a streaming verification session. ID is
// optional (the server generates one when empty); Mode is the claimed
// travel mode, as in batch uploads.
type SessionOpenRequest struct {
	ID   string `json:"id,omitempty"`
	Mode string `json:"mode,omitempty"`
	// Contributor identifies the uploader for the provenance/trust
	// pipeline; empty means the legacy anonymous contributor. Identity is
	// bound at open time and applies to the whole session.
	Contributor string `json:"contributor,omitempty"`
}

// SessionOpenResponse returns the session id to append against.
type SessionOpenResponse struct {
	SessionID string `json:"session_id"`
}

// SessionAppendRequest appends chunk Seq to a session. Seq starts at 0 and
// increments per chunk; re-sending the last acknowledged chunk is answered
// idempotently with Replayed set.
type SessionAppendRequest struct {
	SessionID string        `json:"session_id"`
	Seq       int           `json:"seq"`
	Points    []uploadPoint `json:"points"`
}

// SessionAppendResponse acknowledges one chunk with the session's
// provisional state.
type SessionAppendResponse struct {
	stream.Ack
	Replayed bool `json:"replayed,omitempty"`
}

// SessionCloseRequest finalises a session; the response is the Verdict of
// the batch pipeline over the assembled trajectory.
type SessionCloseRequest struct {
	SessionID string `json:"session_id"`
}

// sessionVerdict outcomes journaled in frameSessionVerdict payloads.
const (
	sessionRejected byte = 0
	sessionAccepted byte = 1
	sessionAborted  byte = 2
)

// handleSessionOpen registers a session and journals the open.
func (s *Service) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if !s.sessionPrecheck(w) {
		return
	}
	var req SessionOpenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var mode trajectory.Mode
	if req.Mode != "" {
		m, err := trajectory.ParseMode(req.Mode)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		mode = m
	}
	id, err := s.openSession(req.ID, mode, req.Contributor)
	if errors.Is(err, stream.ErrLimit) {
		// Expired sessions may be holding slots; sweep and retry once.
		s.SweepSessions()
		id, err = s.openSession(req.ID, mode, req.Contributor)
	}
	if err != nil {
		s.writeStreamError(w, req.ID, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionOpenResponse{SessionID: id})
}

// openSession registers the session and journals the open frame under the
// service mutex, so the frame lands before any of the session's chunks.
func (s *Service) openSession(id string, mode trajectory.Mode, contributor string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.stream.OpenAs(id, mode, contributor)
	if err != nil {
		return "", err
	}
	if s.cfg.Persist != nil {
		s.cfg.Persist.enqueueLocked(persistEntry{
			kind: entrySessionOpen, sessID: id, mode: mode, contributor: contributor,
		})
	}
	return id, nil
}

// handleSessionAppend buffers and journals one chunk, then scores it.
func (s *Service) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if !s.sessionPrecheck(w) {
		return
	}
	ctx := r.Context()
	if s.cfg.UploadTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.UploadTimeout)
		defer cancel()
	}
	if s.admission != nil {
		if err := s.admission.Acquire(ctx); err != nil {
			w.Header().Set("Retry-After", retryAfterSeconds(s.admission.RetryAfter()))
			writeJSON(w, http.StatusTooManyRequests,
				map[string]string{"error": "overloaded: " + err.Error()})
			return
		}
		held := time.Now()
		defer func() { s.admission.Release(time.Since(held)) }()
	}
	decodeStart := time.Now()
	req, ok := readSessionAppendRequest(w, r)
	if !ok {
		return
	}
	pts, scans, _, err := s.decodePoints(req.Points)
	s.observeStage(stageDecode, decodeStart)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	persistStart := time.Now()
	ack, replayed, err := s.bufferChunk(req.SessionID, req.Seq, pts, scans)
	s.observeStage(stagePersist, persistStart)
	if err != nil {
		s.writeStreamError(w, req.SessionID, err)
		return
	}
	// Scoring holds only the session lock, so concurrent sessions (and
	// batch uploads) verify in parallel with this chunk's kernel runs.
	// Replays score too: the chunk may have committed and journaled on an
	// earlier attempt whose Score then failed, and the retry must answer
	// with a fresh verdict rather than echo the stale pre-score ack —
	// Score is idempotent over already-scored points, so this is cheap.
	ack, err = s.stream.Score(req.SessionID)
	if err != nil {
		s.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if ack.Rejected {
		// The early exit fired on this append (a rejected session refuses
		// every later Buffer, so this Score call is the unique transition);
		// journal the marker so recovery cannot silently readmit a client
		// already told its prefix is confidently forged.
		s.journalSessionReject(req.SessionID)
	}
	writeJSON(w, http.StatusOK, SessionAppendResponse{Ack: ack, Replayed: replayed})
}

// readSessionAppendRequest reads one append body in whichever wire form
// the Content-Type negotiates, mirroring readUploadRequest.
func readSessionAppendRequest(w http.ResponseWriter, r *http.Request) (*SessionAppendRequest, bool) {
	if !isBinaryRequest(r) {
		var req SessionAppendRequest
		if !decodeBody(w, r, &req) {
			return nil, false
		}
		return &req, true
	}
	data, ok := readBinaryBody(w, r)
	if !ok {
		return nil, false
	}
	req, err := ParseSessionAppendBinary(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return nil, false
	}
	return req, true
}

// bufferChunk commits the chunk and journals its frame under the service
// mutex — the same ordering discipline record uses for batch verdicts, so
// a chunk is acknowledged only after its frame is queued behind every
// state change that precedes it.
func (s *Service) bufferChunk(id string, seq int, pts []trajectory.Point, scans []wifi.Scan) (stream.Ack, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ack, replayed, err := s.stream.Buffer(id, seq, pts, scans)
	if err != nil || replayed {
		return ack, replayed, err
	}
	if s.cfg.Persist != nil {
		chunk := &wifi.Upload{
			Traj:  &trajectory.T{ID: id, Points: pts},
			Scans: scans,
		}
		s.cfg.Persist.enqueueLocked(persistEntry{kind: entrySessionChunk, upload: chunk})
	}
	return ack, false, nil
}

// journalSessionReject journals the early-exit marker for id. Under the
// service mutex the session table and the WAL queue move together: while
// the session is still registered, its verdict frame (enqueued by
// recordSession under this same mutex, which also resolves the session)
// cannot yet be queued, so the marker always lands before the verdict.
// If a concurrent close already resolved the session, the rejection is
// recorded in the verdict itself and the marker is moot.
func (s *Service) journalSessionReject(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Persist == nil || !s.stream.Registered(id) {
		return
	}
	s.cfg.Persist.enqueueLocked(persistEntry{kind: entrySessionReject, sessID: id})
}

// handleSessionClose runs the batch pipeline over the assembled trajectory
// and journals the final verdict.
func (s *Service) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if !s.sessionPrecheck(w) {
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if key != "" {
		if v, ok := s.dedup.get(key); ok {
			w.Header().Set("Idempotency-Replayed", "true")
			writeJSON(w, http.StatusOK, v)
			return
		}
	}
	ctx := r.Context()
	if s.cfg.UploadTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.UploadTimeout)
		defer cancel()
	}
	if s.admission != nil {
		if err := s.admission.Acquire(ctx); err != nil {
			w.Header().Set("Retry-After", retryAfterSeconds(s.admission.RetryAfter()))
			writeJSON(w, http.StatusTooManyRequests,
				map[string]string{"error": "overloaded: " + err.Error()})
			return
		}
		held := time.Now()
		defer func() { s.admission.Release(time.Since(held)) }()
	}
	var req SessionCloseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	u, ack, err := s.stream.BeginClose(req.SessionID)
	if err != nil {
		s.writeStreamError(w, req.SessionID, err)
		return
	}
	if u == nil {
		// The early exit already rejected the prefix; record the rejection
		// without running the pipeline.
		prov := ack.ProvisionalProbFake
		verdict := Verdict{
			Checks: map[string]string{
				"rules": "skipped", "route": "skipped", "replay": "skipped",
				"motion": "skipped", "wifi": "fail",
			},
			Reason:       "reported RSSIs inconsistent with crowdsourced history (rejected mid-stream)",
			WiFiProbFake: &prov,
		}
		s.recordSession(req.SessionID, nil, verdict)
		if key != "" {
			s.dedup.put(key, verdict)
		}
		writeJSON(w, http.StatusOK, verdict)
		return
	}
	if err := s.validateAssembled(u); err != nil {
		// The assembled trajectory cannot enter the pipeline (too short,
		// missing scans). Reopen the session so the client can append the
		// missing points and close again.
		s.stream.AbortClose(req.SessionID)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	verdict, err := s.Verify(ctx, u)
	if err != nil {
		s.stream.AbortClose(req.SessionID)
		if ctx.Err() != nil {
			s.deadlineRejects.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "close deadline exceeded"})
			return
		}
		s.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.recordSession(req.SessionID, u, verdict)
	if key != "" {
		s.dedup.put(key, verdict)
	}
	writeJSON(w, http.StatusOK, verdict)
}

// validateAssembled applies the trajectory-level rules the batch decoder
// enforces per upload: minimum length, timing regularity, and the scan
// requirement. Per-chunk appends already validated coordinates and timing
// incrementally; this is the final gate before the pipeline.
func (s *Service) validateAssembled(u *wifi.Upload) error {
	if u.Traj.Len() < 2 {
		return fmt.Errorf("trajectory needs >= 2 points, got %d", u.Traj.Len())
	}
	if err := u.Traj.Validate(500 * time.Millisecond); err != nil {
		return err
	}
	var anyScan bool
	for _, sc := range u.Scans {
		if len(sc) > 0 {
			anyScan = true
			break
		}
	}
	if !anyScan && (s.cfg.RequireScans || s.cfg.WiFi != nil) {
		return errors.New("session carries no WiFi scans")
	}
	return nil
}

// recordSession is record for session verdicts: counters, history, online
// store ingestion, and the journaled verdict frame all commit under the
// service mutex, then the session is resolved — still under the mutex, so
// a concurrent snapshot either sees the open session without its verdict
// or the verdict without the session, never both.
func (s *Service) recordSession(id string, u *wifi.Upload, v Verdict) {
	s.mu.Lock()
	defer s.mu.Unlock()
	outcome := sessionRejected
	if v.Accepted {
		outcome = sessionAccepted
		s.accepted++
		s.history = append(s.history, u.Traj)
		if s.cfg.Replay != nil {
			s.cfg.Replay.AddHistory(u.Traj)
		}
		// The paper's crowdsourcing loop closes here: a session verified
		// as real feeds its scans back into the RSSI store (through the
		// trust pipeline when one is configured), on whichever backend —
		// global or sharded — the detector runs against.
		s.ingestLocked(u, verdictScore(v))
	} else {
		s.rejected++
	}
	if s.cfg.Persist != nil {
		s.cfg.Persist.enqueueLocked(persistEntry{
			kind: entrySessionVerdict, sessID: id, outcome: outcome, pFake: verdictScore(v),
		})
	}
	s.stream.Resolve(id)
}

// SweepSessions evicts sessions past their TTL or idle deadline, each with
// a journaled abort so recovery cannot resurrect them. It returns how many
// were evicted. lspserver calls it on a ticker; session opens call it when
// the admission gate refuses.
func (s *Service) SweepSessions() int {
	if s.stream == nil {
		return 0
	}
	ids := s.stream.ExpiredIDs()
	if len(ids) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range ids {
		// A session that closed between listing and locking is gone; Evict
		// reports that and no frame is journaled.
		if s.stream.Evict(id, true) {
			if s.cfg.Persist != nil {
				s.cfg.Persist.enqueueLocked(persistEntry{
					kind: entrySessionVerdict, sessID: id, outcome: sessionAborted,
				})
			}
			n++
		}
	}
	return n
}

// evictExpired removes one expired session with a journaled abort — the
// path taken when an append or close trips over the expiry.
func (s *Service) evictExpired(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stream.Evict(id, true) && s.cfg.Persist != nil {
		s.cfg.Persist.enqueueLocked(persistEntry{
			kind: entrySessionVerdict, sessID: id, outcome: sessionAborted,
		})
	}
}

// sessionPrecheck answers the common refusals: streaming disabled (404)
// and degraded persistence (503, fail closed — a chunk ack must be as
// durable as a batch ack).
func (s *Service) sessionPrecheck(w http.ResponseWriter) bool {
	if s.stream == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "streaming verification not enabled"})
		return false
	}
	if s.cfg.Persist != nil && s.cfg.Persist.degraded() {
		s.degradedRejects.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Persist.retryAfter()))
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "service degraded: persistence unavailable"})
		return false
	}
	return true
}

// decodeBody decodes a JSON request body with the service's size cap,
// answering 400/413 itself; it reports whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed JSON: " + err.Error()})
		return false
	}
	return true
}

// writeStreamError maps streaming lifecycle errors to HTTP statuses.
func (s *Service) writeStreamError(w http.ResponseWriter, id string, err error) {
	var seqErr *stream.SeqError
	switch {
	case errors.Is(err, stream.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, stream.ErrExpired):
		s.evictExpired(id)
		writeJSON(w, http.StatusGone, map[string]string{"error": err.Error()})
	case errors.Is(err, stream.ErrLimit):
		w.Header().Set("Retry-After", retryAfterSeconds(s.stream.RetryAfter()))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, stream.ErrTooManyPoints):
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": err.Error()})
	case errors.Is(err, stream.ErrDuplicate),
		errors.Is(err, stream.ErrClosing),
		errors.Is(err, stream.ErrRejected),
		errors.As(err, &seqErr):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}
