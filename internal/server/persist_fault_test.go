package server

import (
	"testing"

	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
)

// TestStatsSurfacePersistenceFaults pins the observability contract: a
// background fsync failure in the durability layer must show up on
// /v1/stats as a nonzero error counter with the first error verbatim —
// never be swallowed by the async appender.
func TestStatsSurfacePersistenceFaults(t *testing.T) {
	// Sync #1 is the WAL header sync at creation; #2 is the first
	// group-commit fsync after the upload's frame is appended.
	fs := faultfs.New(fsx.OS, faultfs.Options{FailAt: 2, FailKind: faultfs.OpSync})
	p, err := OpenPersistence(t.TempDir(), PersistOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestService(t, Config{Persist: p})

	if _, err := client.Upload(realisticUpload(t, 51)); err != nil {
		t.Fatal(err)
	}
	// The durability barrier must report the failed fsync to the caller.
	if err := p.Flush(); err == nil {
		t.Fatal("Flush after injected fsync failure returned nil")
	}

	st, err := client.FetchStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Persistence == nil {
		t.Fatal("stats missing persistence section")
	}
	if st.Persistence.Errors == 0 {
		t.Fatalf("persistence errors = 0 after injected fsync failure: %+v", st.Persistence)
	}
	if st.Persistence.Error == "" {
		t.Fatalf("persistence first error missing: %+v", st.Persistence)
	}
	if !fs.Faulted() {
		t.Fatal("fault never fired")
	}
}
