package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/nav"
	"trajforge/internal/roadnet"
	"trajforge/internal/rssimap"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// AreaSpec describes one of the paper's three collection areas (Sec. IV-B1).
type AreaSpec struct {
	Name string
	Mode trajectory.Mode
	// Width, Height in metres (paper: 3.4, 4.1 and 5.9 hm²).
	Width, Height float64
	// NumAPs deployed in the area.
	NumAPs int
	// Trajectories to collect (paper: 5,000; scaled default smaller).
	Trajectories int
	// Points per trajectory (paper: 30, at 2 s intervals).
	Points   int
	Interval time.Duration
	// BlockSize of the area's street grid.
	BlockSize float64
	// DeviceSD draws a constant per-trajectory device offset (dB) applied
	// to every scan of that trajectory, modelling heterogeneous phone
	// radios; 0 means identical devices.
	DeviceSD float64
	Seed     int64
}

// Scale multiplies the trajectory counts of the canonical specs; 1.0
// reproduces the repository's full harness scale.
func scaled(n int, scale float64) int {
	out := int(math.Round(float64(n) * scale))
	if out < 10 {
		out = 10
	}
	return out
}

// WalkingArea is the outdoor shopping-mall area A (3.4 hm², dense APs,
// paper average k = 29).
func WalkingArea(scale float64) AreaSpec {
	return AreaSpec{
		Name: "walking", Mode: trajectory.ModeWalking,
		Width: 195, Height: 175, // ~3.4 hm²
		NumAPs:       420,
		Trajectories: scaled(1500, scale),
		Points:       30, Interval: 2 * time.Second,
		BlockSize: 45,
		Seed:      101,
	}
}

// CyclingArea is the pedestrian-street area B (4.1 hm², paper average
// k = 26).
func CyclingArea(scale float64) AreaSpec {
	return AreaSpec{
		Name: "cycling", Mode: trajectory.ModeCycling,
		Width: 225, Height: 182, // ~4.1 hm²
		NumAPs:       380,
		Trajectories: scaled(1500, scale),
		Points:       30, Interval: 2 * time.Second,
		BlockSize: 60,
		Seed:      202,
	}
}

// DrivingArea is the main-road area C (5.9 hm², sparse roadside APs, paper
// average k = 9).
func DrivingArea(scale float64) AreaSpec {
	return AreaSpec{
		Name: "driving", Mode: trajectory.ModeDriving,
		Width: 270, Height: 219, // ~5.9 hm²
		NumAPs:       170,
		Trajectories: scaled(1500, scale),
		Points:       30, Interval: 2 * time.Second,
		BlockSize: 85,
		Seed:      303,
	}
}

// Area is a fully simulated collection area: radio world, road network and
// the collected uploads (trajectory + scan per point, with ground truth
// retained for scan replay).
type Area struct {
	Spec  AreaSpec
	World *wifi.World
	Svc   *nav.Service
	// Uploads are the collected trajectories with their scans, in
	// collection order.
	Uploads []*wifi.Upload
	// truths[i] are the ground-truth positions of upload i (scans were
	// measured there, not at the noisy GPS fixes).
	truths [][]geo.Point
}

// BuildArea simulates the data collection campaign of one area.
func BuildArea(spec AreaSpec) (*Area, error) {
	if spec.Trajectories <= 0 || spec.Points < 2 {
		return nil, fmt.Errorf("dataset: invalid area spec %q", spec.Name)
	}
	if spec.Interval <= 0 {
		spec.Interval = 2 * time.Second
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	world, err := wifi.NewWorld(rng, wifi.DefaultConfig(spec.Width, spec.Height, spec.NumAPs))
	if err != nil {
		return nil, fmt.Errorf("dataset: area %q world: %w", spec.Name, err)
	}
	roadCfg := roadnet.DefaultConfig()
	roadCfg.Width = spec.Width
	roadCfg.Height = spec.Height
	roadCfg.BlockSize = spec.BlockSize
	g, err := roadnet.Generate(rng, roadCfg)
	if err != nil {
		return nil, fmt.Errorf("dataset: area %q roads: %w", spec.Name, err)
	}
	a := &Area{Spec: spec, World: world, Svc: nav.NewService(g)}

	prof := mobility.ProfileFor(spec.Mode)
	minDist := prof.CruiseSpeed * spec.Interval.Seconds() * float64(spec.Points) * 1.3

	for len(a.Uploads) < spec.Trajectories {
		from, to, err := nav.RandomTripEndpoints(rng, g, math.Min(minDist, spec.Width*0.8))
		if err != nil {
			return nil, fmt.Errorf("dataset: area %q endpoints: %w", spec.Name, err)
		}
		plan, err := a.Svc.Route(from, to, spec.Mode)
		if err != nil {
			continue
		}
		tk, err := mobility.Simulate(rng, mobility.Options{
			Route: plan.Polyline, Mode: spec.Mode,
			Start: _startTime, Interval: spec.Interval, MaxPoints: spec.Points,
		})
		if err != nil || len(tk.Points) < spec.Points {
			continue
		}
		traj := tk.Trajectory()
		truths := tk.TruePositions()
		deviceOffset := 0.0
		if spec.DeviceSD > 0 {
			deviceOffset = stats.Normal(rng, 0, spec.DeviceSD)
		}
		scans := make([]wifi.Scan, len(truths))
		for i, p := range truths {
			scans[i] = world.ScanWithDevice(rng, p, deviceOffset)
		}
		a.Uploads = append(a.Uploads, &wifi.Upload{Traj: traj, Scans: scans})
		a.truths = append(a.truths, truths)
	}
	return a, nil
}

// SplitHistorical partitions the uploads into the provider's historical set
// (the first n) and the fresh remainder, mirroring the paper's
// 4,000/1,000 split.
func (a *Area) SplitHistorical(n int) (hist, fresh []*wifi.Upload, err error) {
	if n <= 0 || n >= len(a.Uploads) {
		return nil, nil, fmt.Errorf("dataset: historical split %d of %d", n, len(a.Uploads))
	}
	return a.Uploads[:n], a.Uploads[n:], nil
}

// Records flattens uploads into the provider's crowdsourced record set.
func Records(uploads []*wifi.Upload) []rssimap.Record {
	var out []rssimap.Record
	for _, u := range uploads {
		for i, pt := range u.Traj.Points {
			out = append(out, rssimap.RecordFromScan(pt.Pos, u.Scans[i]))
		}
	}
	return out
}

// KStatistics reports the paper's Table III numbers for a set of uploads:
// the mean, minimum, and 10th percentile of the per-point AP count.
type KStatistics struct {
	Mean float64
	Min  int
	P10  float64 // 90% of points have k >= P10
}

// KStats computes AP-count statistics over the uploads.
func KStats(uploads []*wifi.Upload) KStatistics {
	var ks []float64
	for _, u := range uploads {
		for _, s := range u.Scans {
			ks = append(ks, float64(len(s)))
		}
	}
	if len(ks) == 0 {
		return KStatistics{}
	}
	return KStatistics{
		Mean: stats.Mean(ks),
		Min:  int(stats.Min(ks)),
		P10:  stats.Quantile(ks, 0.10),
	}
}

// ForgeUpload builds a fake upload from a historical one, as the paper's
// Sec. IV-B attacker does: the claimed positions are an attack-perturbed
// version of the historical trajectory (at least MinD away, so the replay
// check passes), while the RSSI data is the historical scan replayed with a
// per-value disturbance drawn from {-1, 0, 1}.
//
// The position perturbation matches the geometry the C&W optimizer
// (internal/attack) produces: smooth control offsets every few points,
// linearly interpolated, endpoints pinned, calibrated to land the forged
// trajectory around 1.5x minDPerMeter DTW/m from the original. cmd/forge
// runs the real optimizer; bulk corpus generation uses this calibrated
// equivalent so detector training sees the attack's geometry (DESIGN.md).
func ForgeUpload(rng *rand.Rand, hist *wifi.Upload, minDPerMeter float64) (*wifi.Upload, error) {
	if err := hist.Validate(); err != nil {
		return nil, err
	}
	n := hist.Traj.Len()
	if n < 3 {
		return nil, fmt.Errorf("dataset: historical upload too short (%d points)", n)
	}
	// For a sampling step of s metres, DTW/m ~ offsetSD * sqrt(pi/2) / s;
	// solve for the offset scale that lands ~1.5x above the threshold. The
	// offset is floored at the ~2.5 m the paper's forgeries visibly sit off
	// their reference routes (Fig. 1): a forger cannot go below the
	// real-world traversal variability the provider has observed, even when
	// this simulator's own MinD happens to be smaller.
	stepLen := hist.Traj.Length() / float64(n-1)
	if stepLen <= 0 {
		return nil, fmt.Errorf("dataset: degenerate historical trajectory")
	}
	targetPerMeter := minDPerMeter * 1.5
	offSD := targetPerMeter * stepLen / math.Sqrt(math.Pi/2)
	if floor := 2.5 / math.Sqrt(math.Pi/2); offSD < floor {
		offSD = floor
	}

	// Control offsets every ~6 points (as the attack's perturbation basis),
	// Gauss-Markov across controls, hat-interpolated to the points.
	const ctrlEvery = 6
	k := (n-1+ctrlEvery-1)/ctrlEvery + 1
	if k < 3 {
		k = 3
	}
	cX := stats.GaussMarkov(rng, k, offSD, 0.9)
	cY := stats.GaussMarkov(rng, k, offSD, 0.9)
	cX[0], cY[0], cX[k-1], cY[k-1] = 0, 0, 0, 0 // endpoints pinned
	segment := float64(n-1) / float64(k-1)
	pos := hist.Traj.Positions()
	for i := 1; i < n-1; i++ {
		p := float64(i) / segment
		j0 := int(p)
		j1 := j0 + 1
		if j1 >= k {
			j1 = k - 1
		}
		frac := p - float64(j0)
		pos[i].X += (1-frac)*cX[j0] + frac*cX[j1]
		pos[i].Y += (1-frac)*cY[j0] + frac*cY[j1]
	}
	traj, err := hist.Traj.WithPositions(pos)
	if err != nil {
		return nil, err
	}
	scans := make([]wifi.Scan, n)
	for i, s := range hist.Scans {
		cp := s.Clone()
		for j := range cp {
			cp[j].RSSI += rng.Intn(3) - 1
		}
		scans[i] = cp
	}
	return &wifi.Upload{Traj: traj, Scans: scans}, nil
}
