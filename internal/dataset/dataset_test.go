package dataset

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/dtw"
	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

func smallMotionConfig() MotionConfig {
	cfg := DefaultMotionConfig()
	cfg.Trips = 12
	cfg.Points = 40
	cfg.Modes = []trajectory.Mode{trajectory.ModeWalking}
	return cfg
}

func TestBuildMotionCorpus(t *testing.T) {
	corpus, err := BuildMotionCorpus(smallMotionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Real) != 12 || len(corpus.CleanNav) != 12 ||
		len(corpus.NaiveNav) != 12 || len(corpus.NaiveReplay) != 12 {
		t.Fatalf("corpus sizes: %d %d %d %d",
			len(corpus.Real), len(corpus.CleanNav), len(corpus.NaiveNav), len(corpus.NaiveReplay))
	}
	for i, tr := range corpus.Real {
		if tr.Len() != 40 {
			t.Fatalf("real[%d] has %d points", i, tr.Len())
		}
		if err := tr.Validate(10 * time.Millisecond); err != nil {
			t.Fatalf("real[%d]: %v", i, err)
		}
	}
	// Naive replay must be close to its source but not identical.
	d := dtw.Dist(corpus.Real[0].Positions(), corpus.NaiveReplay[0].Positions())
	if d == 0 {
		t.Fatal("naive replay identical to source")
	}
	if dtw.PerMeter(d, corpus.Real[0].Positions()) > 2 {
		t.Fatal("naive replay strays too far")
	}
	if corpus.Svc == nil {
		t.Fatal("nav service missing")
	}
}

func TestBuildMotionCorpusDeterministic(t *testing.T) {
	a, err := BuildMotionCorpus(smallMotionConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMotionCorpus(smallMotionConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Real {
		if a.Real[i].Points[3].Pos != b.Real[i].Points[3].Pos {
			t.Fatal("same config produced different corpora")
		}
	}
}

func TestBuildMotionCorpusErrors(t *testing.T) {
	bad := smallMotionConfig()
	bad.Trips = 0
	if _, err := BuildMotionCorpus(bad); err == nil {
		t.Fatal("zero trips must error")
	}
	bad = smallMotionConfig()
	bad.Road = roadnet.Config{Width: 1, Height: 1, BlockSize: 100}
	if _, err := BuildMotionCorpus(bad); err == nil {
		t.Fatal("degenerate road config must error")
	}
}

func TestSplit(t *testing.T) {
	list := make([]*trajectory.T, 10)
	train, test := Split(list, 0.7)
	if len(train) != 7 || len(test) != 3 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	train, test = Split(list, -1)
	if len(train) != 0 || len(test) != 10 {
		t.Fatal("negative fraction must clamp")
	}
	train, test = Split(list, 2)
	if len(train) != 10 || len(test) != 0 {
		t.Fatal("fraction > 1 must clamp")
	}
}

func testAreaSpec() AreaSpec {
	return AreaSpec{
		Name: "test", Mode: trajectory.ModeWalking,
		Width: 130, Height: 110,
		NumAPs:       220,
		Trajectories: 60,
		Points:       30, Interval: 2 * time.Second,
		BlockSize: 40,
		Seed:      7,
	}
}

func TestBuildArea(t *testing.T) {
	a, err := BuildArea(testAreaSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Uploads) != 60 {
		t.Fatalf("uploads = %d", len(a.Uploads))
	}
	for i, u := range a.Uploads {
		if err := u.Validate(); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		if u.Traj.Len() != 30 {
			t.Fatalf("upload %d has %d points", i, u.Traj.Len())
		}
	}
	ks := KStats(a.Uploads)
	if ks.Mean < 5 || ks.Mean > 80 {
		t.Fatalf("mean k = %v implausible", ks.Mean)
	}
	if ks.Min < 0 || float64(ks.Min) > ks.Mean {
		t.Fatalf("min k = %d vs mean %v", ks.Min, ks.Mean)
	}
	if ks.P10 > ks.Mean {
		t.Fatalf("p10 %v above mean %v", ks.P10, ks.Mean)
	}
}

func TestBuildAreaErrors(t *testing.T) {
	bad := testAreaSpec()
	bad.Trajectories = 0
	if _, err := BuildArea(bad); err == nil {
		t.Fatal("zero trajectories must error")
	}
}

func TestSplitHistorical(t *testing.T) {
	a, err := BuildArea(testAreaSpec())
	if err != nil {
		t.Fatal(err)
	}
	hist, fresh, err := a.SplitHistorical(45)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 45 || len(fresh) != 15 {
		t.Fatalf("split = %d/%d", len(hist), len(fresh))
	}
	if _, _, err := a.SplitHistorical(0); err == nil {
		t.Fatal("zero split must error")
	}
	if _, _, err := a.SplitHistorical(60); err == nil {
		t.Fatal("full split must error")
	}
	recs := Records(hist)
	if len(recs) != 45*30 {
		t.Fatalf("records = %d", len(recs))
	}
	if len(recs[0].RSSI) == 0 {
		t.Fatal("record has no RSSI data")
	}
}

func TestKStatsEmpty(t *testing.T) {
	if got := KStats(nil); got.Mean != 0 {
		t.Fatalf("empty KStats = %+v", got)
	}
}

func TestForgeUpload(t *testing.T) {
	a, err := BuildArea(testAreaSpec())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	hist := a.Uploads[0]
	const minD = 1.2
	fake, err := ForgeUpload(rng, hist, minD)
	if err != nil {
		t.Fatal(err)
	}
	if err := fake.Validate(); err != nil {
		t.Fatal(err)
	}
	// Geometry: forged must clear the replay threshold but stay near the
	// route.
	histPos := hist.Traj.Positions()
	fakePos := fake.Traj.Positions()
	d := dtw.Dist(histPos, fakePos)
	perM := dtw.PerMeter(d, histPos)
	if perM < minD*0.6 {
		t.Fatalf("forged DTW %v per metre, below ~MinD %v", perM, minD)
	}
	if perM > minD*4 {
		t.Fatalf("forged DTW %v per metre, too far above MinD %v", perM, minD)
	}
	// Endpoints pinned.
	if fakePos[0] != histPos[0] || fakePos[len(fakePos)-1] != histPos[len(histPos)-1] {
		t.Fatal("endpoints moved")
	}
	// RSSI: same MAC sets, values within +/-1 of historical.
	for i := range fake.Scans {
		if len(fake.Scans[i]) != len(hist.Scans[i]) {
			t.Fatalf("scan %d length changed", i)
		}
		for j := range fake.Scans[i] {
			if fake.Scans[i][j].MAC != hist.Scans[i][j].MAC {
				t.Fatalf("scan %d MAC changed", i)
			}
			diff := fake.Scans[i][j].RSSI - hist.Scans[i][j].RSSI
			if diff < -1 || diff > 1 {
				t.Fatalf("scan %d RSSI disturbed by %d", i, diff)
			}
		}
	}
	// The original upload must be untouched.
	if !samePositions(histPos, a.Uploads[0].Traj.Positions()) {
		t.Fatal("historical upload mutated")
	}
}

func TestForgeUploadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	short := trajectory.New([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, _startTime, time.Second)
	u := &wifi.Upload{Traj: short, Scans: make([]wifi.Scan, short.Len())}
	if _, err := ForgeUpload(rng, u, 1.2); err == nil {
		t.Fatal("short upload must error")
	}
	mismatched := &wifi.Upload{Traj: short, Scans: make([]wifi.Scan, 1)}
	if _, err := ForgeUpload(rng, mismatched, 1.2); err == nil {
		t.Fatal("invalid upload must error")
	}
}

func samePositions(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].X-b[i].X) > 1e-12 || math.Abs(a[i].Y-b[i].Y) > 1e-12 {
			return false
		}
	}
	return true
}

func TestBuildAreaDeviceHeterogeneity(t *testing.T) {
	spec := testAreaSpec()
	spec.DeviceSD = 6
	spec.Trajectories = 20
	a, err := BuildArea(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Per-trajectory mean RSSI must vary more than within a homogeneous
	// fleet: compare the spread of per-upload mean RSSI.
	meanOf := func(u *wifi.Upload) float64 {
		var sum, n float64
		for _, s := range u.Scans {
			for _, o := range s {
				sum += float64(o.RSSI)
				n++
			}
		}
		return sum / n
	}
	means := make([]float64, len(a.Uploads))
	for i, u := range a.Uploads {
		means[i] = meanOf(u)
	}
	spec.DeviceSD = 0
	spec.Seed++
	b, err := BuildArea(spec)
	if err != nil {
		t.Fatal(err)
	}
	meansHomog := make([]float64, len(b.Uploads))
	for i, u := range b.Uploads {
		meansHomog[i] = meanOf(u)
	}
	if sdHet, sdHom := sd(means), sd(meansHomog); sdHet <= sdHom {
		t.Fatalf("heterogeneous fleet spread %v not above homogeneous %v", sdHet, sdHom)
	}
}

func sd(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}
