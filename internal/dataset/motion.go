// Package dataset assembles the evaluation corpora of the paper from the
// simulation substrates: the motion corpora of Sec. IV-A (an OSM-like set
// of real trajectories, the AN set of navigation-planned fakes, and naive
// attack sets) and the per-area WiFi corpora of Sec. IV-B (walking, cycling
// and driving areas with crowdsourced scans, historical/fresh splits, and
// forged uploads).
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/mobility"
	"trajforge/internal/nav"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
)

// MotionConfig sizes the Sec. IV-A corpora.
type MotionConfig struct {
	// Trips is the number of origin/destination pairs per mode.
	Trips int
	// Points per trajectory (the paper uses 400; scaled default 60).
	Points int
	// Interval between fixes (paper: 1 s).
	Interval time.Duration
	// MinTripDist filters trivial trips, metres.
	MinTripDist float64
	// Road is the road-network generator config.
	Road roadnet.Config
	// Seed drives everything.
	Seed int64
	// Modes to include; nil means walking, cycling and driving.
	Modes []trajectory.Mode
}

// DefaultMotionConfig returns a corpus size that builds in seconds.
func DefaultMotionConfig() MotionConfig {
	return MotionConfig{
		Trips:       150,
		Points:      60,
		Interval:    time.Second,
		MinTripDist: 250,
		Road:        roadnet.DefaultConfig(),
		Seed:        1,
	}
}

// MotionCorpus holds the Sec. IV-A datasets.
type MotionCorpus struct {
	// Real are simulated genuine trajectories (the OSM stand-in).
	Real []*trajectory.T
	// CleanNav are constant-speed navigation samples before noise (AN
	// before the naive attack).
	CleanNav []*trajectory.T
	// NaiveNav are CleanNav plus the naive noise (the AN fakes used to
	// train the target models).
	NaiveNav []*trajectory.T
	// NaiveReplay are Real trajectories replayed with naive noise.
	NaiveReplay []*trajectory.T
	// Svc is the navigation service over the generated road network.
	Svc *nav.Service
}

var _startTime = time.Date(2022, 6, 15, 8, 0, 0, 0, time.UTC)

// BuildMotionCorpus generates the corpora. Every produced trajectory has
// exactly cfg.Points fixes; short trips are retried with new endpoints.
func BuildMotionCorpus(cfg MotionConfig) (*MotionCorpus, error) {
	if cfg.Trips <= 0 || cfg.Points < 3 {
		return nil, fmt.Errorf("dataset: invalid motion config (trips=%d, points=%d)", cfg.Trips, cfg.Points)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = trajectory.Modes()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, err := roadnet.Generate(rng, cfg.Road)
	if err != nil {
		return nil, fmt.Errorf("dataset: road network: %w", err)
	}
	svc := nav.NewService(g)
	corpus := &MotionCorpus{Svc: svc}

	for _, mode := range modes {
		// Longer trips for faster modes so cfg.Points fixes fit the route.
		minDist := cfg.MinTripDist
		prof := mobility.ProfileFor(mode)
		need := prof.CruiseSpeed * cfg.Interval.Seconds() * float64(cfg.Points) * 1.3
		if need > minDist {
			minDist = need
		}

		// Endpoints need not be the full route length apart: planned routes
		// are longer than the straight line, and the area bounds what is
		// reachable at all.
		w, h := g.Size()
		maxSep := 0.85 * math.Hypot(w, h)
		sep := math.Min(0.55*minDist, maxSep)

		produced := 0
		for tries := 0; produced < cfg.Trips && tries < cfg.Trips*60; tries++ {
			from, to, err := nav.RandomTripEndpoints(rng, g, sep)
			if err != nil {
				return nil, fmt.Errorf("dataset: endpoints for %v: %w", mode, err)
			}
			plan, err := svc.Route(from, to, mode)
			if err != nil {
				continue
			}
			if plan.Length < minDist {
				continue
			}
			tk, err := mobility.Simulate(rng, mobility.Options{
				Route: plan.Polyline, Mode: mode,
				Start: _startTime, Interval: cfg.Interval, MaxPoints: cfg.Points,
			})
			if err != nil {
				continue
			}
			real := tk.Trajectory()
			clean := plan.Sample(_startTime, cfg.Interval, cfg.Points)
			if real.Len() != cfg.Points || clean.Len() != cfg.Points {
				continue
			}
			corpus.Real = append(corpus.Real, real)
			corpus.CleanNav = append(corpus.CleanNav, clean)
			corpus.NaiveNav = append(corpus.NaiveNav, attack.NaiveNavigation(rng, clean))
			corpus.NaiveReplay = append(corpus.NaiveReplay, attack.NaiveReplay(rng, real))
			produced++
		}
		if produced < cfg.Trips {
			return nil, fmt.Errorf("dataset: only %d/%d usable %v trips", produced, cfg.Trips, mode)
		}
	}
	// Shuffle all four parallel lists jointly so that any prefix split is
	// stratified across modes (the lists are built mode-by-mode above).
	rng.Shuffle(len(corpus.Real), func(i, j int) {
		corpus.Real[i], corpus.Real[j] = corpus.Real[j], corpus.Real[i]
		corpus.CleanNav[i], corpus.CleanNav[j] = corpus.CleanNav[j], corpus.CleanNav[i]
		corpus.NaiveNav[i], corpus.NaiveNav[j] = corpus.NaiveNav[j], corpus.NaiveNav[i]
		corpus.NaiveReplay[i], corpus.NaiveReplay[j] = corpus.NaiveReplay[j], corpus.NaiveReplay[i]
	})
	return corpus, nil
}

// Split partitions a trajectory list into train/test halves at the given
// fraction without copying the trajectories.
func Split(list []*trajectory.T, trainFrac float64) (train, test []*trajectory.T) {
	cut := int(trainFrac * float64(len(list)))
	if cut < 0 {
		cut = 0
	}
	if cut > len(list) {
		cut = len(list)
	}
	return list[:cut], list[cut:]
}
