// Package trust hardens the crowdsourcing loop of the paper's defense
// against poisoning. Accepted trajectories feed the RSSI reference store
// that judges future uploads, so colluding Sybil uploaders can slowly
// shift a tile's reference-point distribution until forgeries there pass
// (the attack class of internal/attack.SybilCampaign). This package is
// the defense side: a per-contributor trust ledger whose weights
// down-weight low-trust mass in the θ2 density term
// (rssimap.TrustWeighted), a quarantine-then-promote staging store that
// admits new reference points only after corroboration by distinct
// contributors or an earned trust threshold, and a per-tile drift alarm
// that compares the live RPD distribution against a trailing snapshot.
//
// Everything is event-time driven: callers pass the upload's event time
// explicitly, so replaying the same upload sequence (WAL recovery)
// reproduces ledger, quarantine, and drift state bit-identically.
package trust

import (
	"math"
	"sort"
	"time"
)

// LedgerConfig parameterises the contributor trust function.
type LedgerConfig struct {
	// AgeFull is the contributor age (event time since first accepted
	// upload) at which the age component saturates at 1.
	AgeFull time.Duration
	// TilesFull is the distinct-tile count at which the diversity
	// component saturates at 1.
	TilesFull int
	// AgreeFull is the mean detector agreement (1 - P_fake over accepted
	// uploads) at which the agreement component saturates at 1.
	AgreeFull float64
	// Floor is the minimum weight: even a brand-new contributor's mass
	// counts this much, so honest newcomers are dampened, not erased.
	Floor float64
	// GatedHalf is the drift-implication scale: a contributor whose
	// promoted points keep landing in drift-alarmed tiles has their weight
	// divided by (1 + gated/GatedHalf). The division is applied after the
	// floor, so drift-implicated mass forfeits the newcomer floor — the
	// floor protects honest newcomers, not contributors actively feeding a
	// distribution shift.
	GatedHalf float64
}

// DefaultLedgerConfig returns the calibrated trust function.
func DefaultLedgerConfig() LedgerConfig {
	return LedgerConfig{AgeFull: 24 * time.Hour, TilesFull: 4, AgreeFull: 0.6, Floor: 0.05, GatedHalf: 8}
}

func (c LedgerConfig) withDefaults() LedgerConfig {
	d := DefaultLedgerConfig()
	if c.AgeFull <= 0 {
		c.AgeFull = d.AgeFull
	}
	if c.TilesFull <= 0 {
		c.TilesFull = d.TilesFull
	}
	if c.AgreeFull <= 0 {
		c.AgreeFull = d.AgreeFull
	}
	if c.Floor <= 0 {
		c.Floor = d.Floor
	}
	if c.GatedHalf <= 0 {
		c.GatedHalf = d.GatedHalf
	}
	return c
}

// ContributorState is the gob-serialisable ledger entry of one
// contributor — part of the snapshot surface.
type ContributorState struct {
	Name      string
	FirstSeen time.Time
	Uploads   int
	Tiles     [][2]int // distinct tiles, sorted, for deterministic snapshots
	AgreeSum  float64
	AgreeN    int
	Gated     int // promoted points of theirs withheld by the drift alarm
}

// Ledger tracks per-contributor provenance statistics and derives trust
// weights from them. It is not internally locked; the owning Pipeline
// serialises access.
type Ledger struct {
	cfg LedgerConfig
	m   map[string]*contributor
}

type contributor struct {
	firstSeen time.Time
	uploads   int
	tiles     map[[2]int]struct{}
	agreeSum  float64
	agreeN    int
	gated     int
}

// NewLedger builds an empty ledger.
func NewLedger(cfg LedgerConfig) *Ledger {
	return &Ledger{cfg: cfg.withDefaults(), m: make(map[string]*contributor)}
}

// Observe records one accepted upload by the named contributor: the tiles
// it touched and the detector's agreement 1 - P_fake, at event time now.
func (l *Ledger) Observe(name string, tiles [][2]int, agree float64, now time.Time) {
	c, ok := l.m[name]
	if !ok {
		c = &contributor{firstSeen: now, tiles: make(map[[2]int]struct{})}
		l.m[name] = c
	}
	c.uploads++
	for _, t := range tiles {
		c.tiles[t] = struct{}{}
	}
	c.agreeSum += agree
	c.agreeN++
}

// Penalize charges the named contributor with n drift-implicated points:
// promoted points of theirs that a tile's drift alarm withheld from
// serving. Implication divides the contributor's weight below the floor
// (see LedgerConfig.GatedHalf) — because weights are applied at query
// time, this retroactively neutralises mass the contributor already got
// into the serving store before the alarm fired. Unknown contributors are
// ignored (their records can only have come through corroboration of an
// already-observed upload).
func (l *Ledger) Penalize(name string, n int) {
	if c, ok := l.m[name]; ok && n > 0 {
		c.gated += n
	}
}

// Weight returns the contributor's trust weight in [Floor, 1] at event
// time now: the product of three saturating components — service age,
// tile diversity, and detector agreement. A mature, diverse, agreeing
// contributor earns exactly 1.0, so an all-honest steady state is
// bit-identical to the unweighted store. Unknown contributors return the
// floor.
func (l *Ledger) Weight(name string, now time.Time) float64 {
	c, ok := l.m[name]
	if !ok {
		return l.cfg.Floor
	}
	age := satF(now.Sub(c.firstSeen).Seconds(), l.cfg.AgeFull.Seconds())
	div := satF(float64(len(c.tiles)), float64(l.cfg.TilesFull))
	agree := 1.0
	if c.agreeN > 0 {
		agree = satF(c.agreeSum/float64(c.agreeN), l.cfg.AgreeFull)
	}
	w := math.Max(l.cfg.Floor, age*div*agree)
	if c.gated > 0 {
		// Drift implication forfeits the floor: mass a contributor pushed
		// at a shifting tile stops counting, including what already serves.
		w /= 1 + float64(c.gated)/l.cfg.GatedHalf
	}
	return w
}

// satF is the saturating ramp min(1, x/full).
func satF(x, full float64) float64 {
	if x >= full {
		return 1
	}
	if x <= 0 {
		return 0
	}
	return x / full
}

// Weights returns the full contributor → weight table at event time now —
// the value pushed into rssimap.TrustWeighted backends.
func (l *Ledger) Weights(now time.Time) map[string]float64 {
	out := make(map[string]float64, len(l.m))
	for name := range l.m {
		out[name] = l.Weight(name, now)
	}
	return out
}

// Len returns the number of known contributors.
func (l *Ledger) Len() int { return len(l.m) }

// Histogram buckets every contributor's weight at event time now into
// bins equal subdivisions of [0, 1] (the last bin is closed at 1).
func (l *Ledger) Histogram(bins int, now time.Time) []int {
	h := make([]int, bins)
	for name := range l.m {
		w := l.Weight(name, now)
		i := int(w * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		h[i]++
	}
	return h
}

// State returns the gob-serialisable ledger state, deterministically
// ordered, for snapshots.
func (l *Ledger) State() []ContributorState {
	out := make([]ContributorState, 0, len(l.m))
	for name, c := range l.m {
		tiles := make([][2]int, 0, len(c.tiles))
		for t := range c.tiles {
			tiles = append(tiles, t)
		}
		sort.Slice(tiles, func(i, j int) bool {
			if tiles[i][0] != tiles[j][0] {
				return tiles[i][0] < tiles[j][0]
			}
			return tiles[i][1] < tiles[j][1]
		})
		out = append(out, ContributorState{
			Name: name, FirstSeen: c.firstSeen, Uploads: c.uploads,
			Tiles: tiles, AgreeSum: c.agreeSum, AgreeN: c.agreeN,
			Gated: c.gated,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreState replaces the ledger contents with a snapshot.
func (l *Ledger) RestoreState(states []ContributorState) {
	l.m = make(map[string]*contributor, len(states))
	for _, st := range states {
		c := &contributor{
			firstSeen: st.FirstSeen, uploads: st.Uploads,
			tiles:    make(map[[2]int]struct{}, len(st.Tiles)),
			agreeSum: st.AgreeSum, agreeN: st.AgreeN,
			gated: st.Gated,
		}
		for _, t := range st.Tiles {
			c.tiles[t] = struct{}{}
		}
		l.m[st.Name] = c
	}
}
