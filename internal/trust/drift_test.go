package trust

import (
	"math"
	"testing"
)

// feedDrift pushes n single-reading records of the given RSSI into the
// tile.
func feedDrift(d *DriftDetector, tile [2]int, rssi, n int) {
	for i := 0; i < n; i++ {
		d.Observe(tile, map[string]int{"ap-1": rssi})
	}
}

func TestDriftEmptyTileNeverAlarms(t *testing.T) {
	d := NewDriftDetector(DriftConfig{})
	if d.TileAlarmed([2]int{3, 4}) {
		t.Fatal("an unobserved tile reports alarmed")
	}
	if got := d.AlarmReason(); got != "" {
		t.Fatalf("empty detector alarm reason = %q, want empty", got)
	}
	if got := d.Alarmed(); len(got) != 0 {
		t.Fatalf("empty detector alarmed tiles = %v", got)
	}
}

func TestDriftShortTrailingSnapshotNeverAlarms(t *testing.T) {
	// The very first rotation has an empty trailing snapshot; a snapshot
	// below MinSamples must stay silent no matter how far the live window
	// sits from it.
	d := NewDriftDetector(DriftConfig{Window: 8, MinSamples: 8})
	tile := [2]int{0, 0}
	feedDrift(d, tile, -60, 8) // first rotation: no snapshot at all
	if d.TileAlarmed(tile) {
		t.Fatal("first rotation alarmed against an empty snapshot")
	}
	// A radically different window against a too-short snapshot: the
	// snapshot holds 8 records but each carries one reading; shrink
	// MinSamples semantics are record-based, so rebuild with a higher bar.
	d2 := NewDriftDetector(DriftConfig{Window: 4, MinSamples: 8})
	feedDrift(d2, tile, -60, 4) // rotation: snap = 4 records < MinSamples
	feedDrift(d2, tile, -20, 4) // huge shift, but snapshot is too short
	if d2.TileAlarmed(tile) {
		t.Fatal("alarm fired against a trailing snapshot below MinSamples")
	}
}

func TestDriftAlarmAndHysteresis(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Window: 8, MinSamples: 8, High: 0.6, Low: 0.2, BinDB: 4})
	tile := [2]int{1, 2}

	feedDrift(d, tile, -60, 8) // snapshot: all mass in one bin
	feedDrift(d, tile, -60, 8) // identical window: distance 0, no alarm
	if d.TileAlarmed(tile) {
		t.Fatal("identical distributions alarmed")
	}
	feedDrift(d, tile, -20, 8) // all mass moved bins: L1 distance 2
	if !d.TileAlarmed(tile) {
		t.Fatal("a full distribution shift did not alarm")
	}
	if got := d.AlarmReason(); got == "" {
		t.Fatal("alarmed detector returned empty reason")
	}

	// Hysteresis: the next window is 6×-20 + 2×-60, L1 distance 0.5 from
	// the trailing snapshot — inside the (Low, High) band. A fresh tile
	// would not trip on it, but a latched alarm must not clear on it.
	mixed := func() {
		feedDrift(d, tile, -20, 6)
		feedDrift(d, tile, -60, 2)
	}
	mixed()
	if !d.TileAlarmed(tile) {
		t.Fatal("alarm cleared inside the hysteresis band (distance above Low)")
	}
	// …and only a window matching the trailing snapshot (distance ≤ Low)
	// clears it.
	mixed()
	if d.TileAlarmed(tile) {
		t.Fatal("alarm stayed latched after the distribution settled")
	}
}

func TestDriftStateRoundTrip(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Window: 8, MinSamples: 8})
	feedDrift(d, [2]int{0, 0}, -60, 8)
	feedDrift(d, [2]int{0, 0}, -60, 8)
	feedDrift(d, [2]int{0, 0}, -20, 5) // alarm pending, live window partial
	feedDrift(d, [2]int{7, 7}, -50, 3)

	r := NewDriftDetector(DriftConfig{Window: 8, MinSamples: 8})
	r.RestoreState(d.State())

	// Finishing the live window on both must produce identical alarms and
	// distances — the restored detector is mid-window bit-identical.
	feedDrift(d, [2]int{0, 0}, -20, 3)
	feedDrift(r, [2]int{0, 0}, -20, 3)
	if d.TileAlarmed([2]int{0, 0}) != r.TileAlarmed([2]int{0, 0}) {
		t.Fatal("restored detector disagrees on alarm after finishing the window")
	}
	ds, rs := d.State(), r.State()
	if len(ds) != len(rs) {
		t.Fatalf("state sizes differ: %d vs %d", len(ds), len(rs))
	}
	for i := range ds {
		if ds[i].Tile != rs[i].Tile || ds[i].Alarmed != rs[i].Alarmed ||
			ds[i].Rotations != rs[i].Rotations ||
			math.Float64bits(ds[i].LastDist) != math.Float64bits(rs[i].LastDist) {
			t.Fatalf("tile %v state diverged after restore: %+v vs %+v", ds[i].Tile, ds[i], rs[i])
		}
	}
}
