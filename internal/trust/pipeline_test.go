package trust

import (
	"math"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// uploadAt builds a short upload whose fixes walk east from (x, y) with
// one constant-AP scan per fix.
func uploadAt(contrib string, x, y float64, rssi int, at time.Time) *wifi.Upload {
	const n = 4
	pts := make([]trajectory.Point, n)
	scans := make([]wifi.Scan, n)
	for i := 0; i < n; i++ {
		pts[i] = trajectory.Point{Pos: geo.Point{X: x + float64(i), Y: y}, Time: at.Add(time.Duration(i) * time.Second)}
		scans[i] = wifi.Scan{{MAC: "ap-1", RSSI: rssi}}
	}
	return &wifi.Upload{
		Traj:        &trajectory.T{Points: pts, Mode: trajectory.ModeWalking},
		Scans:       scans,
		Contributor: contrib,
	}
}

func newBackend(t *testing.T) *rssimap.Store {
	t.Helper()
	s, err := rssimap.NewStore(rssimap.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPipelineQuarantinesUntilCorroborated(t *testing.T) {
	backend := newBackend(t)
	cfg := DefaultConfig()
	cfg.Quarantine.K = 3
	p := NewPipeline(cfg, backend)

	// Two distinct low-trust contributors: everything stays staged, and
	// nothing is served.
	res := p.IngestUpload(uploadAt("a", 0, 0, -60, tRef), 0.1, tRef)
	if res.Promoted != 0 || res.Quarantined != 4 {
		t.Fatalf("first upload: %+v, want 4 quarantined, 0 promoted", res)
	}
	p.IngestUpload(uploadAt("b", 0, 0.5, -61, tRef), 0.1, tRef)
	if backend.Len() != 0 {
		t.Fatalf("serving store holds %d records before corroboration", backend.Len())
	}
	// The third contributor corroborates the eight waiting points; its own
	// four stage in turn (promoting is not a fast lane for the promoter).
	res = p.IngestUpload(uploadAt("c", 0, 1, -62, tRef), 0.1, tRef)
	if res.Promoted != 8 || res.Quarantined != 4 {
		t.Fatalf("third upload: %+v, want 8 promoted and its own 4 staged", res)
	}
	if backend.Len() != 8 {
		t.Fatalf("serving store holds %d records, want 8", backend.Len())
	}
}

func TestPipelineSingleContributorTileStaysDark(t *testing.T) {
	// A tile fed by one identity never promotes (K = 3) and therefore
	// never reaches the drift detector: no serving mass, no alarm — the
	// empty-tile edge case of the drift alarm under real pipeline flow.
	backend := newBackend(t)
	cfg := DefaultConfig()
	p := NewPipeline(cfg, backend)
	for i := 0; i < 20; i++ {
		p.IngestUpload(uploadAt("loner", 0, 0, -60, tRef.Add(time.Duration(i)*time.Minute)), 0.1, tRef.Add(time.Duration(i)*time.Minute))
	}
	if backend.Len() != 0 {
		t.Fatalf("single-contributor mass reached the serving store: %d records", backend.Len())
	}
	if reason := p.DriftAlarmReason(); reason != "" {
		t.Fatalf("unserved tile raised a drift alarm: %q", reason)
	}
	if st := p.Stats(0); st.Pending == 0 {
		t.Fatal("staged points missing from stats")
	}
}

func TestPipelineAllTrustedBitIdentical(t *testing.T) {
	// The acceptance bar for the whole subsystem: a store fed through the
	// pipeline by mature (weight exactly 1.0) contributors answers feature
	// queries bit-for-bit like a plain store that ingested the same
	// records directly — and TrustNum equals float64(Num) exactly.
	cfg := DefaultConfig()
	cfg.Quarantine.K = 1  // promote immediately: isolate the weighting
	cfg.WeightRefresh = 1 // push the table after every upload
	backend := newBackend(t)
	p := NewPipeline(cfg, backend)
	plain := newBackend(t)

	uploads := []*wifi.Upload{
		uploadAt("a", 0, 0, -60, tRef),
		uploadAt("b", 2, 1, -64, tRef.Add(time.Minute)),
		uploadAt("c", 1, -1, -58, tRef.Add(2*time.Minute)),
	}
	// Mature every contributor before the measured traffic so the pushed
	// table is exactly {a:1, b:1, c:1}: age and diversity saturated, the
	// uploads' agreement 1 - pFake far past AgreeFull.
	warm := tRef.Add(-48 * time.Hour)
	for _, name := range []string{"a", "b", "c"} {
		tiles := make([][2]int, 4)
		for i := range tiles {
			tiles[i] = [2]int{100 + i, 100}
		}
		p.ledger.Observe(name, tiles, 1.0, warm)
	}
	now := tRef.Add(3 * time.Minute)
	for _, u := range uploads {
		p.IngestUpload(u, 0.05, now)
		plain.Add(rssimap.UploadRecords([]*wifi.Upload{u}))
	}
	for _, name := range []string{"a", "b", "c"} {
		if w := p.Weight(name); w != 1.0 {
			t.Fatalf("contributor %s weight = %v, want exactly 1.0", name, w)
		}
	}

	probe := uploadAt("", 1, 0, -60, now)
	fcfg := rssimap.DefaultFeatureConfig()
	got, err := backend.Features(probe, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Features(probe, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("feature dims differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("feature %d: pipeline %v != plain %v (bits differ)", i, got[i], want[i])
		}
	}
	for _, pc := range backend.PointConfidences(geo.Point{X: 1, Y: 0}, wifi.Scan{{MAC: "ap-1", RSSI: -60}}, fcfg) {
		if pc.TrustNum != float64(pc.Num) {
			t.Fatalf("all-trusted TrustNum = %v, want exactly float64(Num) = %v", pc.TrustNum, float64(pc.Num))
		}
	}
}

func TestPipelineDriftGatePenalizesContributors(t *testing.T) {
	// Once a tile's alarm fires, further promotions into it are withheld
	// AND the contributors behind them forfeit the trust floor.
	backend := newBackend(t)
	cfg := DefaultConfig()
	cfg.Quarantine.K = 1 // promote directly so mass reaches the detector
	cfg.Drift.Window = 8
	cfg.Drift.MinSamples = 8
	cfg.TileSize = 1000 // one tile for the whole test geometry
	p := NewPipeline(cfg, backend)

	now := tRef
	step := func(contrib string, rssi int) IngestResult {
		now = now.Add(time.Minute)
		return p.IngestUpload(uploadAt(contrib, 0, 0, rssi, now), 0.1, now)
	}
	for i := 0; i < 4; i++ { // two full windows of stable mass
		step("honest", -60)
	}
	for i := 0; i < 2; i++ { // a full window of shifted mass: alarm trips
		step("shifter", -20)
	}
	if p.DriftAlarmReason() == "" {
		t.Fatal("distribution shift did not alarm")
	}
	floorW := p.Weight("never-seen")
	res := step("shifter", -20) // promotions now gated, contributor charged
	if res.DriftGated != 4 || res.Promoted != 0 {
		t.Fatalf("post-alarm ingestion: %+v, want all 4 gated", res)
	}
	if w := p.Weight("shifter"); w >= floorW {
		t.Fatalf("drift-implicated weight = %v, want below the %v floor", w, floorW)
	}
	st := p.Stats(0)
	if st.DriftGated != 4 || len(st.DriftAlarmed) != 1 {
		t.Fatalf("stats: %+v, want 4 gated and 1 alarmed tile", st)
	}
}

func TestPipelineStateRoundTrip(t *testing.T) {
	build := func(backend *rssimap.Store) *Pipeline {
		cfg := DefaultConfig()
		cfg.Quarantine.K = 2
		cfg.WeightRefresh = 2
		p := NewPipeline(cfg, backend)
		p.IngestUpload(uploadAt("a", 0, 0, -60, tRef), 0.1, tRef)
		p.IngestUpload(uploadAt("b", 0, 0.5, -61, tRef.Add(time.Minute)), 0.2, tRef.Add(time.Minute))
		p.IngestUpload(uploadAt("c", 50, 50, -70, tRef.Add(2*time.Minute)), 0.3, tRef.Add(2*time.Minute))
		return p
	}
	liveBackend := newBackend(t)
	live := build(liveBackend)

	restoredBackend := newBackend(t)
	restoredBackend.Add(liveBackend.Records()) // serving store recovers separately (snapshot)
	restored := NewPipeline(func() Config {
		cfg := DefaultConfig()
		cfg.Quarantine.K = 2
		cfg.WeightRefresh = 2
		return cfg
	}(), restoredBackend)
	restored.RestoreState(live.State())

	// Identical continuation: the same next upload promotes the same
	// records and produces the same stats on both sides.
	next := func(p *Pipeline) IngestResult {
		return p.IngestUpload(uploadAt("d", 0, 1, -60, tRef.Add(3*time.Minute)), 0.1, tRef.Add(3*time.Minute))
	}
	lr, rr := next(live), next(restored)
	if lr != rr {
		t.Fatalf("continuation diverged: live %+v, restored %+v", lr, rr)
	}
	if liveBackend.Len() != restoredBackend.Len() {
		t.Fatalf("serving stores diverged: %d vs %d records", liveBackend.Len(), restoredBackend.Len())
	}
	ls, rs := live.Stats(0), restored.Stats(0)
	if ls.Promoted != rs.Promoted || ls.Pending != rs.Pending ||
		ls.Contributors != rs.Contributors || ls.AcceptedUploads != rs.AcceptedUploads {
		t.Fatalf("stats diverged:\nlive     %+v\nrestored %+v", ls, rs)
	}
}
