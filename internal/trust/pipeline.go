package trust

import (
	"math"
	"sort"
	"sync"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/wifi"
)

// Config parameterises the trust-weighted ingestion pipeline.
type Config struct {
	Ledger     LedgerConfig
	Quarantine QuarantineConfig
	Drift      DriftConfig
	// TileSize is the tile side (metres) used for contributor diversity,
	// per-tile provenance stats, and the drift alarm. It should match the
	// serving store's tiling (shardstore.Config.TileSize).
	TileSize float64
	// WeightRefresh is how many accepted uploads pass between pushes of
	// the ledger's weight table into the serving store's θ2 term. The
	// cadence is counter-based so WAL replay reproduces pushes exactly.
	WeightRefresh int
}

// DefaultConfig returns the calibrated pipeline parameters.
func DefaultConfig() Config {
	return Config{
		Ledger:     DefaultLedgerConfig(),
		Quarantine: DefaultQuarantineConfig(),
		Drift:      DefaultDriftConfig(),
		TileSize:   25, WeightRefresh: 32,
	}
}

func (c Config) withDefaults() Config {
	if c.TileSize <= 0 {
		c.TileSize = 25
	}
	if c.WeightRefresh <= 0 {
		c.WeightRefresh = 32
	}
	return c
}

// TileOf returns the tile owning position p under the pipeline tiling.
func (c Config) TileOf(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / c.TileSize)), int(math.Floor(p.Y / c.TileSize))}
}

// Pipeline is the poisoning-resistant ingestion path: accepted uploads
// pass through the contributor ledger, the quarantine staging store, and
// the drift alarm before any of their points reach the serving backend,
// and the ledger's trust weights are periodically pushed into the
// backend's θ2 density term. All state transitions are driven by the
// caller-supplied event time, so WAL replay reproduces the pipeline
// bit-identically.
type Pipeline struct {
	mu       sync.Mutex
	cfg      Config
	backend  rssimap.Backend
	weighted rssimap.TrustWeighted // nil when the backend can't weight

	ledger     *Ledger
	quarantine *Quarantine
	drift      *DriftDetector

	accepted         int
	quarantinedTotal int
	driftGated       int
	lastNow          time.Time
	lastPush         []WeightEntry

	perTileContrib map[[2]int]map[string]struct{}
	perTilePromote map[[2]int]int
}

// NewPipeline builds a pipeline in front of the given serving backend.
// When the backend implements rssimap.TrustWeighted, ledger weights are
// pushed into its θ2 term; otherwise quarantine and drift still apply.
func NewPipeline(cfg Config, backend rssimap.Backend) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg: cfg, backend: backend,
		ledger:         NewLedger(cfg.Ledger),
		quarantine:     NewQuarantine(cfg.Quarantine),
		drift:          NewDriftDetector(cfg.Drift),
		perTileContrib: make(map[[2]int]map[string]struct{}),
		perTilePromote: make(map[[2]int]int),
	}
	if w, ok := backend.(rssimap.TrustWeighted); ok {
		p.weighted = w
	}
	return p
}

// IngestResult reports what one accepted upload's ingestion did.
type IngestResult struct {
	// Promoted is how many reference points this upload released into
	// the serving store (corroborated older points included).
	Promoted int
	// Quarantined is how many of the upload's own points were staged.
	Quarantined int
	// DriftGated is how many points cleared quarantine but were withheld
	// from the serving store because their tile is in drift alarm.
	DriftGated int
	// Weight is the contributor's trust weight at ingestion time.
	Weight float64
}

// IngestUpload runs one accepted upload through the pipeline at event
// time now (the upload's latest point time, so recovery replay is
// deterministic). pFake is the detector's verdict score; 1 - pFake feeds
// the contributor's agreement statistic.
func (p *Pipeline) IngestUpload(u *wifi.Upload, pFake float64, now time.Time) IngestResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastNow = now

	records := rssimap.UploadRecords([]*wifi.Upload{u})
	tiles := distinctTiles(p.cfg, records)
	p.ledger.Observe(u.Contributor, tiles, 1-pFake, now)
	w := p.ledger.Weight(u.Contributor, now)
	for _, t := range tiles {
		set, ok := p.perTileContrib[t]
		if !ok {
			set = make(map[string]struct{})
			p.perTileContrib[t] = set
		}
		set[u.Contributor] = struct{}{}
	}

	p.quarantine.Expire(now)

	var res IngestResult
	res.Weight = w
	var release []rssimap.Record
	for _, rec := range records {
		promoted, quarantined := p.quarantine.Ingest(rec, w, now)
		release = append(release, promoted...)
		if quarantined {
			res.Quarantined++
		}
	}
	p.quarantinedTotal += res.Quarantined
	// Drift gate: a tile in alarm has its reference distribution moving
	// too fast to trust — promotions into it are withheld from serving,
	// but still observed, so the alarm keeps tracking the live traffic
	// and can clear once the distribution settles back.
	serve := release[:0]
	var gatedBy map[string]int
	for _, rec := range release {
		t := p.cfg.TileOf(rec.Pos)
		alarmed := p.drift.TileAlarmed(t)
		p.drift.Observe(t, rec.RSSI)
		if alarmed {
			res.DriftGated++
			if gatedBy == nil {
				gatedBy = make(map[string]int)
			}
			gatedBy[rec.Contributor]++
			continue
		}
		p.perTilePromote[t]++
		serve = append(serve, rec)
	}
	// Contributors whose points were gated are drift-implicated: the
	// ledger divides their weight below the floor, and because θ2/θ1
	// weights apply at query time, the mass they promoted BEFORE the
	// alarm fired stops counting too.
	for name, n := range gatedBy {
		p.ledger.Penalize(name, n)
	}
	p.driftGated += res.DriftGated
	res.Promoted = len(serve)
	if len(serve) > 0 {
		p.backend.Add(serve)
	}

	p.accepted++
	if p.weighted != nil && p.accepted%p.cfg.WeightRefresh == 0 {
		p.pushWeightsLocked(now)
	}
	return res
}

// pushWeightsLocked installs the ledger's current weight table on the
// backend and remembers it for snapshot restore.
func (p *Pipeline) pushWeightsLocked(now time.Time) {
	table := p.ledger.Weights(now)
	p.lastPush = weightEntries(table)
	p.weighted.SetTrustWeights(table)
}

// WeightEntry is one (contributor, weight) pair of the last pushed
// table, kept sorted for deterministic snapshots.
type WeightEntry struct {
	Name   string
	Weight float64
}

func weightEntries(table map[string]float64) []WeightEntry {
	out := make([]WeightEntry, 0, len(table))
	for k, v := range table {
		out = append(out, WeightEntry{Name: k, Weight: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// distinctTiles returns the distinct tiles the records touch, sorted.
func distinctTiles(cfg Config, records []rssimap.Record) [][2]int {
	seen := make(map[[2]int]struct{})
	var out [][2]int
	for _, rec := range records {
		t := cfg.TileOf(rec.Pos)
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	sortTiles(out)
	return out
}

// Weight returns the contributor's current trust weight at the
// pipeline's latest event time.
func (p *Pipeline) Weight(name string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ledger.Weight(name, p.lastNow)
}

// DriftAlarmReason returns the health-reason string when any tile is in
// drift alarm, "" otherwise.
func (p *Pipeline) DriftAlarmReason() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drift.AlarmReason()
}

// TileStat is the per-tile provenance summary surfaced in /v1/stats.
type TileStat struct {
	Tile         [2]int  `json:"tile"`
	Contributors int     `json:"contributors"`
	Promoted     int     `json:"promoted"`
	DriftAlarmed bool    `json:"drift_alarmed,omitempty"`
	DriftDist    float64 `json:"drift_dist,omitempty"`
}

// Stats is the pipeline summary surfaced in /v1/stats.
type Stats struct {
	Contributors     int        `json:"contributors"`
	AcceptedUploads  int        `json:"accepted_uploads"`
	Promoted         int        `json:"promoted"`
	Pending          int        `json:"pending_quarantine"`
	QuarantinedTotal int        `json:"quarantined_total"`
	Expired          int        `json:"expired"`
	DriftGated       int        `json:"drift_gated"`
	TrustHistogram   []int      `json:"trust_histogram"`
	DriftAlarmed     [][2]int   `json:"drift_alarmed,omitempty"`
	Tiles            []TileStat `json:"tiles,omitempty"`
}

// Stats snapshots the pipeline summary. Tile stats are sorted and capped
// at maxTiles (0 = unlimited) so a city-scale store can't blow up the
// stats payload.
func (p *Pipeline) Stats(maxTiles int) Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Contributors:     p.ledger.Len(),
		AcceptedUploads:  p.accepted,
		Promoted:         p.quarantine.PromotedTotal(),
		Pending:          p.quarantine.Pending(),
		QuarantinedTotal: p.quarantinedTotal,
		Expired:          p.quarantine.ExpiredTotal(),
		DriftGated:       p.driftGated,
		TrustHistogram:   p.ledger.Histogram(10, p.lastNow),
		DriftAlarmed:     p.drift.Alarmed(),
	}
	drift := make(map[[2]int]TileDriftState)
	for _, td := range p.drift.State() {
		drift[td.Tile] = td
	}
	tiles := make([][2]int, 0, len(p.perTileContrib))
	for t := range p.perTileContrib {
		tiles = append(tiles, t)
	}
	sortTiles(tiles)
	if maxTiles > 0 && len(tiles) > maxTiles {
		tiles = tiles[:maxTiles]
	}
	for _, t := range tiles {
		ts := TileStat{Tile: t, Contributors: len(p.perTileContrib[t]), Promoted: p.perTilePromote[t]}
		if td, ok := drift[t]; ok {
			ts.DriftAlarmed = td.Alarmed
			ts.DriftDist = td.LastDist
		}
		st.Tiles = append(st.Tiles, ts)
	}
	return st
}

// PipelineState is the gob-serialisable pipeline state embedded in the
// server's snapshots, so quarantine/ledger/drift state survives
// compaction the same way the serving store does.
type PipelineState struct {
	Contributors []ContributorState
	Quarantine   QuarantineState
	Drift        []TileDriftState
	Accepted     int
	Quarantined  int
	DriftGated   int
	LastNow      time.Time
	LastPush     []WeightEntry
	PerTile      []TileContribState
}

// TileContribState is the serialisable per-tile provenance summary.
type TileContribState struct {
	Tile         [2]int
	Contributors []string // sorted
	Promoted     int
}

// State snapshots the whole pipeline deterministically.
func (p *Pipeline) State() PipelineState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PipelineState{
		Contributors: p.ledger.State(),
		Quarantine:   p.quarantine.State(),
		Drift:        p.drift.State(),
		Accepted:     p.accepted,
		Quarantined:  p.quarantinedTotal,
		DriftGated:   p.driftGated,
		LastNow:      p.lastNow,
		LastPush:     append([]WeightEntry(nil), p.lastPush...),
	}
	tiles := make([][2]int, 0, len(p.perTileContrib))
	for t := range p.perTileContrib {
		tiles = append(tiles, t)
	}
	sortTiles(tiles)
	for _, t := range tiles {
		names := make([]string, 0, len(p.perTileContrib[t]))
		for n := range p.perTileContrib[t] {
			names = append(names, n)
		}
		sort.Strings(names)
		st.PerTile = append(st.PerTile, TileContribState{Tile: t, Contributors: names, Promoted: p.perTilePromote[t]})
	}
	return st
}

// RestoreState replaces the pipeline contents with a snapshot and, when
// the backend is trust-weighted, re-installs the last pushed weight
// table so the recovered store's θ2 term matches the pre-crash store
// bit-identically.
func (p *Pipeline) RestoreState(st PipelineState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ledger.RestoreState(st.Contributors)
	p.quarantine.RestoreState(st.Quarantine)
	p.drift.RestoreState(st.Drift)
	p.accepted = st.Accepted
	p.quarantinedTotal = st.Quarantined
	p.driftGated = st.DriftGated
	p.lastNow = st.LastNow
	p.lastPush = append([]WeightEntry(nil), st.LastPush...)
	p.perTileContrib = make(map[[2]int]map[string]struct{}, len(st.PerTile))
	p.perTilePromote = make(map[[2]int]int, len(st.PerTile))
	for _, ts := range st.PerTile {
		set := make(map[string]struct{}, len(ts.Contributors))
		for _, n := range ts.Contributors {
			set[n] = struct{}{}
		}
		p.perTileContrib[ts.Tile] = set
		p.perTilePromote[ts.Tile] = ts.Promoted
	}
	if p.weighted != nil && len(p.lastPush) > 0 {
		table := make(map[string]float64, len(p.lastPush))
		for _, e := range p.lastPush {
			table[e.Name] = e.Weight
		}
		p.weighted.SetTrustWeights(table)
	}
}

// Pending returns how many points currently wait in quarantine.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantine.Pending()
}
