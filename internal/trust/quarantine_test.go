package trust

import (
	"fmt"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
)

func recAt(x, y float64, contrib string, rssi int) rssimap.Record {
	return rssimap.Record{
		Pos:         geo.Point{X: x, Y: y},
		RSSI:        map[string]int{"ap-1": rssi},
		Contributor: contrib,
	}
}

// lowTrust is well under the default PromoteTrust of 0.8, so every
// ingestion below goes through the corroboration path.
const lowTrust = 0.1

func TestQuarantineCorroborationPromotes(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{K: 3})
	now := tRef

	promoted, quarantined := q.Ingest(recAt(0, 0, "a", -60), lowTrust, now)
	if len(promoted) != 0 || !quarantined {
		t.Fatalf("first point: promoted=%d quarantined=%v, want staged", len(promoted), quarantined)
	}
	promoted, _ = q.Ingest(recAt(1, 0, "b", -61), lowTrust, now)
	if len(promoted) != 0 {
		t.Fatalf("two distinct contributors promoted %d points, K=3 needs a third", len(promoted))
	}
	// The third distinct contributor corroborates both waiting points —
	// they release in quarantine-arrival order. Its OWN point only counts
	// corroborators still waiting when it arrives (the two it just
	// promoted are spent), so it stages and waits for fresh support: every
	// point pays the K-contributor price, promoting is not a fast lane for
	// the promoter.
	promoted, quarantined = q.Ingest(recAt(0.5, 0.5, "c", -62), lowTrust, now)
	if len(promoted) != 2 || !quarantined {
		t.Fatalf("third contributor: promoted=%d quarantined=%v, want 2 released + itself staged", len(promoted), quarantined)
	}
	if promoted[0].Contributor != "a" || promoted[1].Contributor != "b" {
		t.Fatalf("promotion order = [%s %s], want quarantine-arrival order [a b]",
			promoted[0].Contributor, promoted[1].Contributor)
	}
	if q.Pending() != 1 {
		t.Fatalf("pending = %d after promotion, want just the promoter's own point", q.Pending())
	}
	if q.PromotedTotal() != 2 {
		t.Fatalf("promoted total = %d, want 2", q.PromotedTotal())
	}
}

func TestQuarantineSameContributorCannotSelfCorroborate(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{K: 2})
	for i := 0; i < 5; i++ {
		promoted, _ := q.Ingest(recAt(0, 0, "solo", -60), lowTrust, tRef)
		if len(promoted) != 0 {
			t.Fatalf("upload %d: a single contributor self-corroborated %d points", i, len(promoted))
		}
	}
	if q.Pending() != 5 {
		t.Fatalf("pending = %d, want all 5 staged", q.Pending())
	}
}

func TestQuarantineCorroborationNeedsProximityAndRSSI(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{K: 2, Radius: 3, RSSITol: 6})
	q.Ingest(recAt(0, 0, "a", -60), lowTrust, tRef)
	// Too far away: no corroboration despite matching RSSI.
	if promoted, _ := q.Ingest(recAt(10, 0, "b", -60), lowTrust, tRef); len(promoted) != 0 {
		t.Fatal("points 10 m apart corroborated each other (radius is 3 m)")
	}
	// Close but radio-inconsistent: no corroboration.
	if promoted, _ := q.Ingest(recAt(0.5, 0, "c", -80), lowTrust, tRef); len(promoted) != 0 {
		t.Fatal("a 20 dB disagreement corroborated (tolerance is 6 dB)")
	}
	// Close and consistent: promotes.
	if promoted, _ := q.Ingest(recAt(0.5, 0, "d", -63), lowTrust, tRef); len(promoted) == 0 {
		t.Fatal("a close, radio-consistent point from a distinct contributor failed to corroborate")
	}
}

func TestQuarantineTrustedContributorBypasses(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{K: 3, PromoteTrust: 0.8})
	promoted, quarantined := q.Ingest(recAt(0, 0, "vet", -60), 0.9, tRef)
	if len(promoted) != 1 || quarantined {
		t.Fatalf("trusted ingestion: promoted=%d quarantined=%v, want direct promotion", len(promoted), quarantined)
	}
	// The trusted point still corroborates waiting strangers' points.
	q.Ingest(recAt(5, 5, "x", -70), lowTrust, tRef)
	q.Ingest(recAt(5, 5, "y", -70), lowTrust, tRef)
	promoted, _ = q.Ingest(recAt(5, 5, "vet", -70), 0.9, tRef)
	if len(promoted) != 3 {
		t.Fatalf("trusted pass-through released %d points, want its own + 2 corroborated", len(promoted))
	}
}

func TestQuarantineExpireOnEventClock(t *testing.T) {
	// The clock is injectable: everything is driven by the caller's event
	// time, so the same sequence replays identically in recovery.
	q := NewQuarantine(QuarantineConfig{K: 3, TTL: time.Hour})
	q.Ingest(recAt(0, 0, "a", -60), lowTrust, tRef)
	q.Ingest(recAt(50, 50, "b", -70), lowTrust, tRef.Add(30*time.Minute))

	if n := q.Expire(tRef.Add(time.Hour)); n != 0 {
		t.Fatalf("expired %d points at exactly TTL, want 0 (TTL is exclusive)", n)
	}
	if n := q.Expire(tRef.Add(time.Hour + time.Second)); n != 1 {
		t.Fatalf("expired %d points past the first TTL, want 1", n)
	}
	if q.Pending() != 1 || q.ExpiredTotal() != 1 {
		t.Fatalf("pending=%d expiredTotal=%d, want 1/1", q.Pending(), q.ExpiredTotal())
	}
	// An expired point is gone: late corroborators cannot resurrect it.
	if promoted, _ := q.Ingest(recAt(0, 0, "c", -60), lowTrust, tRef.Add(2*time.Hour)); len(promoted) != 0 {
		t.Fatalf("corroborating an expired point released %d records", len(promoted))
	}
}

func TestQuarantineStateRoundTripPromotesIdentically(t *testing.T) {
	build := func() *Quarantine {
		q := NewQuarantine(QuarantineConfig{K: 3})
		q.Ingest(recAt(0, 0, "a", -60), lowTrust, tRef)
		q.Ingest(recAt(1, 0, "b", -61), lowTrust, tRef.Add(time.Minute))
		return q
	}
	live := build()
	restored := NewQuarantine(QuarantineConfig{K: 3})
	restored.RestoreState(build().State())

	for name, q := range map[string]*Quarantine{"live": live, "restored": restored} {
		promoted, _ := q.Ingest(recAt(0.5, 0, "c", -60), lowTrust, tRef.Add(2*time.Minute))
		if len(promoted) != 2 {
			t.Fatalf("%s: promoted %d, want 2", name, len(promoted))
		}
		got := fmt.Sprintf("%s/%s", promoted[0].Contributor, promoted[1].Contributor)
		if got != "a/b" {
			t.Fatalf("%s: promotion order %s, want a/b", name, got)
		}
		if q.Pending() != 1 {
			t.Fatalf("%s: pending = %d, want the promoter's own staged point", name, q.Pending())
		}
	}
}
