package trust

import (
	"fmt"
	"sort"
)

// DriftConfig parameterises the per-tile RPD drift alarm.
type DriftConfig struct {
	// Window is the number of served records per tile between snapshot
	// rotations: the live window is compared against the previous
	// (trailing) window each time it fills.
	Window int
	// MinSamples gates comparison: both the live window and the trailing
	// snapshot must hold at least this many records, else the rotation is
	// silent (a trailing snapshot shorter than the window never alarms).
	MinSamples int
	// High and Low are the L1-distance hysteresis thresholds: the alarm
	// trips at >= High and clears only at <= Low, so honest churn
	// hovering near the trigger cannot flap it.
	High, Low float64
	// BinDB is the dBm width of one histogram bin.
	BinDB int
}

// DefaultDriftConfig returns the calibrated alarm parameters.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Window: 64, MinSamples: 32, High: 0.5, Low: 0.25, BinDB: 4}
}

func (c DriftConfig) withDefaults() DriftConfig {
	d := DefaultDriftConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.High <= 0 {
		c.High = d.High
	}
	if c.Low <= 0 {
		c.Low = d.Low
	}
	if c.BinDB <= 0 {
		c.BinDB = d.BinDB
	}
	return c
}

// TileDriftState is the gob-serialisable drift state of one tile — part
// of the snapshot surface and the /v1/stats drift report.
type TileDriftState struct {
	Tile      [2]int
	Live      map[int]int // live-window histogram: bin -> reading count
	LiveRecs  int
	Snap      map[int]int // trailing-window histogram
	SnapRecs  int
	Alarmed   bool
	LastDist  float64 // L1 distance at the last rotation
	Rotations int
}

type tileDrift struct {
	live      map[int]int
	liveRecs  int
	snap      map[int]int
	snapRecs  int
	alarmed   bool
	lastDist  float64
	rotations int
}

// DriftDetector watches the distribution of RSSI mass entering each
// tile's serving store and alarms when one window's histogram moves too
// far from the trailing window's. It is not internally locked; the
// owning Pipeline serialises access.
type DriftDetector struct {
	cfg   DriftConfig
	tiles map[[2]int]*tileDrift
}

// NewDriftDetector builds an empty detector.
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	return &DriftDetector{cfg: cfg.withDefaults(), tiles: make(map[[2]int]*tileDrift)}
}

// Observe feeds one served record's readings into its tile's live
// window, rotating and comparing when the window fills.
func (d *DriftDetector) Observe(tile [2]int, rssi map[string]int) {
	td, ok := d.tiles[tile]
	if !ok {
		td = &tileDrift{live: make(map[int]int)}
		d.tiles[tile] = td
	}
	for _, v := range rssi {
		td.live[v/d.cfg.BinDB]++
	}
	td.liveRecs++
	if td.liveRecs >= d.cfg.Window {
		d.rotate(td)
	}
}

// rotate compares the filled live window against the trailing snapshot,
// applies hysteresis, and makes the live window the new snapshot.
func (d *DriftDetector) rotate(td *tileDrift) {
	if td.snapRecs >= d.cfg.MinSamples && td.liveRecs >= d.cfg.MinSamples {
		dist := l1Dist(td.live, td.snap)
		td.lastDist = dist
		if dist >= d.cfg.High {
			td.alarmed = true
		} else if dist <= d.cfg.Low {
			td.alarmed = false
		}
	}
	td.snap, td.snapRecs = td.live, td.liveRecs
	td.live, td.liveRecs = make(map[int]int), 0
	td.rotations++
}

// l1Dist is the L1 distance between the two normalised histograms.
func l1Dist(a, b map[int]int) float64 {
	var na, nb int
	for _, c := range a {
		na += c
	}
	for _, c := range b {
		nb += c
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dist float64
	for bin, c := range a {
		pa := float64(c) / float64(na)
		pb := float64(b[bin]) / float64(nb)
		dist += absF(pa - pb)
	}
	for bin, c := range b {
		if _, ok := a[bin]; !ok {
			dist += float64(c) / float64(nb)
		}
	}
	return dist
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TileAlarmed reports whether the given tile is currently in alarm.
func (d *DriftDetector) TileAlarmed(tile [2]int) bool {
	td, ok := d.tiles[tile]
	return ok && td.alarmed
}

// Alarmed returns the tiles currently in alarm, sorted for deterministic
// reporting.
func (d *DriftDetector) Alarmed() [][2]int {
	var out [][2]int
	for tile, td := range d.tiles {
		if td.alarmed {
			out = append(out, tile)
		}
	}
	sortTiles(out)
	return out
}

// AlarmReason renders the alarmed tiles as one health-reason string, or
// "" when no tile is in alarm.
func (d *DriftDetector) AlarmReason() string {
	alarmed := d.Alarmed()
	if len(alarmed) == 0 {
		return ""
	}
	s := fmt.Sprintf("rpd drift alarm on %d tile(s):", len(alarmed))
	for i, t := range alarmed {
		if i == 4 {
			s += " …"
			break
		}
		s += fmt.Sprintf(" (%d,%d)", t[0], t[1])
	}
	return s
}

// State returns the gob-serialisable drift state of every tracked tile,
// deterministically ordered.
func (d *DriftDetector) State() []TileDriftState {
	out := make([]TileDriftState, 0, len(d.tiles))
	for tile, td := range d.tiles {
		out = append(out, TileDriftState{
			Tile: tile, Live: cloneHist(td.live), LiveRecs: td.liveRecs,
			Snap: cloneHist(td.snap), SnapRecs: td.snapRecs,
			Alarmed: td.alarmed, LastDist: td.lastDist, Rotations: td.rotations,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tile[0] != out[j].Tile[0] {
			return out[i].Tile[0] < out[j].Tile[0]
		}
		return out[i].Tile[1] < out[j].Tile[1]
	})
	return out
}

// RestoreState replaces the detector contents with a snapshot.
func (d *DriftDetector) RestoreState(states []TileDriftState) {
	d.tiles = make(map[[2]int]*tileDrift, len(states))
	for _, st := range states {
		td := &tileDrift{
			live: cloneHist(st.Live), liveRecs: st.LiveRecs,
			snap: cloneHist(st.Snap), snapRecs: st.SnapRecs,
			alarmed: st.Alarmed, lastDist: st.LastDist, rotations: st.Rotations,
		}
		if td.live == nil {
			td.live = make(map[int]int)
		}
		d.tiles[st.Tile] = td
	}
}

func cloneHist(h map[int]int) map[int]int {
	if h == nil {
		return nil
	}
	out := make(map[int]int, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func sortTiles(tiles [][2]int) {
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i][0] != tiles[j][0] {
			return tiles[i][0] < tiles[j][0]
		}
		return tiles[i][1] < tiles[j][1]
	})
}
