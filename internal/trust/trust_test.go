package trust

import (
	"math"
	"testing"
	"time"
)

var tRef = time.Date(2022, 6, 1, 12, 0, 0, 0, time.UTC)

func tilesN(n int) [][2]int {
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{i, 0}
	}
	return out
}

func TestLedgerNewcomerGetsFloor(t *testing.T) {
	l := NewLedger(LedgerConfig{})
	if w := l.Weight("nobody", tRef); w != 0.05 {
		t.Fatalf("unknown contributor weight = %v, want the 0.05 floor", w)
	}
	l.Observe("fresh", tilesN(1), 1.0, tRef)
	if w := l.Weight("fresh", tRef); w != 0.05 {
		t.Fatalf("brand-new contributor weight = %v, want the 0.05 floor (age 0)", w)
	}
}

func TestLedgerMatureContributorEarnsExactlyOne(t *testing.T) {
	// A contributor past every saturation point must weigh exactly 1.0 —
	// the bit-identity discipline depends on mature honest contributors
	// multiplying reference mass by exactly 1.
	l := NewLedger(LedgerConfig{})
	l.Observe("vet", tilesN(4), 0.9, tRef)
	now := tRef.Add(24 * time.Hour)
	if w := l.Weight("vet", now); w != 1.0 {
		t.Fatalf("mature contributor weight = %v, want exactly 1.0", w)
	}
}

func TestLedgerComponentsScaleWeight(t *testing.T) {
	l := NewLedger(LedgerConfig{})
	l.Observe("half", tilesN(2), 0.9, tRef) // 2 of 4 tiles: diversity 0.5
	now := tRef.Add(24 * time.Hour)         // age saturated
	if w := l.Weight("half", now); w != 0.5 {
		t.Fatalf("half-diversity weight = %v, want 0.5", w)
	}
	// Poor agreement drags the product down.
	l.Observe("suspect", tilesN(4), 0.15, tRef) // agree 0.15/0.6 = 0.25
	if w := l.Weight("suspect", now); math.Abs(w-0.25) > 1e-12 {
		t.Fatalf("low-agreement weight = %v, want 0.25", w)
	}
}

func TestLedgerPenaltyForfeitsFloor(t *testing.T) {
	l := NewLedger(LedgerConfig{})
	l.Observe("sybil", tilesN(1), 1.0, tRef)
	if w := l.Weight("sybil", tRef); w != 0.05 {
		t.Fatalf("pre-penalty weight = %v, want floor", w)
	}
	// GatedHalf defaults to 8: 8 gated points halve the floored weight.
	l.Penalize("sybil", 8)
	if w := l.Weight("sybil", tRef); w != 0.025 {
		t.Fatalf("weight after 8 gated points = %v, want 0.025 (below the floor)", w)
	}
	l.Penalize("sybil", 72) // 80 total: /(1+10)
	if w := l.Weight("sybil", tRef); math.Abs(w-0.05/11) > 1e-15 {
		t.Fatalf("weight after 80 gated points = %v, want %v", w, 0.05/11)
	}
}

func TestLedgerPenalizeUnknownOrZeroIsNoop(t *testing.T) {
	l := NewLedger(LedgerConfig{})
	l.Penalize("ghost", 5)
	if l.Len() != 0 {
		t.Fatal("penalizing an unknown contributor must not create a ledger entry")
	}
	l.Observe("a", tilesN(1), 1.0, tRef)
	before := l.Weight("a", tRef)
	l.Penalize("a", 0)
	if got := l.Weight("a", tRef); got != before {
		t.Fatalf("zero-count penalty changed weight %v -> %v", before, got)
	}
}

func TestLedgerStateRoundTrip(t *testing.T) {
	l := NewLedger(LedgerConfig{})
	l.Observe("a", tilesN(3), 0.8, tRef)
	l.Observe("b", tilesN(1), 0.2, tRef.Add(time.Hour))
	l.Penalize("a", 5)

	r := NewLedger(LedgerConfig{})
	r.RestoreState(l.State())
	now := tRef.Add(30 * time.Hour)
	for _, name := range []string{"a", "b", "unknown"} {
		lw, rw := l.Weight(name, now), r.Weight(name, now)
		if math.Float64bits(lw) != math.Float64bits(rw) {
			t.Fatalf("restored weight(%q) = %v, want %v (bits differ)", name, rw, lw)
		}
	}
	if got, want := r.Histogram(10, now), l.Histogram(10, now); len(got) != len(want) {
		t.Fatalf("histogram size %d != %d", len(got), len(want))
	}
}

func TestLedgerHistogramBuckets(t *testing.T) {
	l := NewLedger(LedgerConfig{})
	now := tRef.Add(24 * time.Hour)
	l.Observe("fresh", tilesN(1), 1.0, now) // age 0 at eval: floor 0.05 -> bin 0
	l.Observe("vet", tilesN(4), 0.9, tRef)  // saturated at eval: 1.0 -> last bin
	h := l.Histogram(10, now)
	if h[0] != 1 || h[9] != 1 {
		t.Fatalf("histogram = %v, want one contributor in bin 0 and one in bin 9", h)
	}
}
