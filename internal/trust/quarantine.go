package trust

import (
	"math"
	"sort"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
)

// QuarantineConfig parameterises the staging store for new reference
// points.
type QuarantineConfig struct {
	// K is the number of distinct contributors (the point's own included)
	// that must corroborate a quarantined point before it promotes into
	// the serving store. K <= 1 promotes every point immediately.
	K int
	// PromoteTrust is the contributor trust weight at or above which a
	// point bypasses quarantine entirely — established contributors don't
	// pay the corroboration lag.
	PromoteTrust float64
	// TTL is how long an uncorroborated point may wait (event time)
	// before it expires without ever being served.
	TTL time.Duration
	// Radius is the corroboration radius: two points corroborate only if
	// they lie within it.
	Radius float64
	// RSSITol is the per-AP dBm tolerance for corroboration matching.
	RSSITol int
	// MinMatch is the minimum number of shared APs (within RSSITol) two
	// points must report to corroborate each other.
	MinMatch int
}

// DefaultQuarantineConfig returns the calibrated staging parameters.
func DefaultQuarantineConfig() QuarantineConfig {
	return QuarantineConfig{K: 3, PromoteTrust: 0.8, TTL: 6 * time.Hour, Radius: 3, RSSITol: 6, MinMatch: 1}
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	d := DefaultQuarantineConfig()
	if c.K == 0 {
		c.K = d.K
	}
	if c.PromoteTrust <= 0 {
		c.PromoteTrust = d.PromoteTrust
	}
	if c.TTL <= 0 {
		c.TTL = d.TTL
	}
	if c.Radius <= 0 {
		c.Radius = d.Radius
	}
	if c.RSSITol <= 0 {
		c.RSSITol = d.RSSITol
	}
	if c.MinMatch <= 0 {
		c.MinMatch = d.MinMatch
	}
	return c
}

// PendingState is the gob-serialisable form of one quarantined point —
// part of the snapshot surface.
type PendingState struct {
	Rec        rssimap.Record
	At         time.Time
	Seq        uint64
	Supporters []string // sorted
}

type pendingEntry struct {
	rec        rssimap.Record
	at         time.Time
	seq        uint64
	supporters map[string]struct{}
	promoted   bool // tombstone until swept from the grid
}

// Quarantine is the staging store: points wait here until corroborated
// by K distinct contributors, promoted on trust, or expired. It is not
// internally locked; the owning Pipeline serialises access. Promotion
// releases points in quarantine-arrival order, so replaying the same
// ingestion sequence reproduces the serving store bit-identically.
type Quarantine struct {
	cfg     QuarantineConfig
	pending []*pendingEntry
	grid    map[[2]int][]*pendingEntry
	nextSeq uint64

	promotedTotal  int
	expiredTotal   int
	admittedDirect int
}

// NewQuarantine builds an empty staging store.
func NewQuarantine(cfg QuarantineConfig) *Quarantine {
	return &Quarantine{cfg: cfg.withDefaults(), grid: make(map[[2]int][]*pendingEntry)}
}

func (q *Quarantine) cellOf(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / q.cfg.Radius)), int(math.Floor(p.Y / q.cfg.Radius))}
}

// corroborates reports whether two records confirm each other: close in
// space and agreeing on at least MinMatch shared APs within tolerance.
func (q *Quarantine) corroborates(a, b rssimap.Record) bool {
	if geo.Dist2(a.Pos, b.Pos) > q.cfg.Radius*q.cfg.Radius {
		return false
	}
	match := 0
	for mac, va := range a.RSSI {
		if vb, ok := b.RSSI[mac]; ok && absInt(va-vb) <= q.cfg.RSSITol {
			match++
			if match >= q.cfg.MinMatch {
				return true
			}
		}
	}
	return false
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Ingest stages one record from a contributor with the given trust
// weight at event time now. It returns the records this ingestion
// releases into the serving store, in quarantine-arrival order (the new
// record itself last when it promotes directly), and whether the new
// record was quarantined.
func (q *Quarantine) Ingest(rec rssimap.Record, weight float64, now time.Time) (promoted []rssimap.Record, quarantined bool) {
	direct := weight >= q.cfg.PromoteTrust || q.cfg.K <= 1
	var released []*pendingEntry

	// The new point corroborates waiting points near it — whether or not
	// it is itself trusted enough to skip quarantine.
	cells := q.cellsAround(rec.Pos)
	for _, cell := range cells {
		for _, e := range q.grid[cell] {
			if e.promoted || e.rec.Contributor == rec.Contributor {
				continue
			}
			if q.corroborates(e.rec, rec) {
				e.supporters[rec.Contributor] = struct{}{}
				if len(e.supporters) >= q.cfg.K {
					e.promoted = true
					released = append(released, e)
				}
			}
		}
	}

	var entry *pendingEntry
	if !direct {
		entry = &pendingEntry{
			rec: rec, at: now, seq: q.nextSeq,
			supporters: map[string]struct{}{rec.Contributor: {}},
		}
		q.nextSeq++
		// Count support the waiting points already give the new one.
		for _, cell := range cells {
			for _, e := range q.grid[cell] {
				if e.promoted || e.rec.Contributor == rec.Contributor {
					continue
				}
				if q.corroborates(e.rec, rec) {
					entry.supporters[e.rec.Contributor] = struct{}{}
				}
			}
		}
		if len(entry.supporters) >= q.cfg.K {
			entry.promoted = true
			released = append(released, entry)
		} else {
			q.pending = append(q.pending, entry)
			q.grid[q.cellOf(rec.Pos)] = append(q.grid[q.cellOf(rec.Pos)], entry)
			quarantined = true
		}
	}

	sort.Slice(released, func(i, j int) bool { return released[i].seq < released[j].seq })
	for _, e := range released {
		promoted = append(promoted, e.rec)
	}
	if direct {
		q.admittedDirect++
		promoted = append(promoted, rec)
	}
	q.promotedTotal += len(promoted)
	if len(released) > 0 {
		q.sweep()
	}
	return promoted, quarantined
}

// cellsAround returns the 3×3 grid block covering every entry within
// Radius of p.
func (q *Quarantine) cellsAround(p geo.Point) [][2]int {
	c := q.cellOf(p)
	out := make([][2]int, 0, 9)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			out = append(out, [2]int{c[0] + dx, c[1] + dy})
		}
	}
	return out
}

// Expire drops every quarantined point older than TTL at event time now
// and returns how many expired — points that never earned their way into
// the serving store.
func (q *Quarantine) Expire(now time.Time) int {
	expired := 0
	for _, e := range q.pending {
		if !e.promoted && now.Sub(e.at) > q.cfg.TTL {
			e.promoted = true // tombstone; never served
			expired++
		}
	}
	if expired > 0 {
		q.expiredTotal += expired
		q.sweep()
	}
	return expired
}

// sweep removes tombstoned entries from the pending list and the grid.
func (q *Quarantine) sweep() {
	live := q.pending[:0]
	for _, e := range q.pending {
		if !e.promoted {
			live = append(live, e)
		}
	}
	q.pending = live
	for cell, entries := range q.grid {
		keep := entries[:0]
		for _, e := range entries {
			if !e.promoted {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			delete(q.grid, cell)
		} else {
			q.grid[cell] = keep
		}
	}
}

// Pending returns the number of points currently in quarantine.
func (q *Quarantine) Pending() int { return len(q.pending) }

// PromotedTotal returns how many points have been released to the
// serving store since construction (direct promotions included).
func (q *Quarantine) PromotedTotal() int { return q.promotedTotal }

// ExpiredTotal returns how many points expired unserved.
func (q *Quarantine) ExpiredTotal() int { return q.expiredTotal }

// State returns the gob-serialisable quarantine state for snapshots.
type QuarantineState struct {
	Pending        []PendingState
	NextSeq        uint64
	PromotedTotal  int
	ExpiredTotal   int
	AdmittedDirect int
}

// State snapshots the staging store deterministically (pending points in
// arrival order, supporters sorted).
func (q *Quarantine) State() QuarantineState {
	st := QuarantineState{
		NextSeq: q.nextSeq, PromotedTotal: q.promotedTotal,
		ExpiredTotal: q.expiredTotal, AdmittedDirect: q.admittedDirect,
	}
	for _, e := range q.pending {
		sup := make([]string, 0, len(e.supporters))
		for s := range e.supporters {
			sup = append(sup, s)
		}
		sort.Strings(sup)
		st.Pending = append(st.Pending, PendingState{
			Rec: cloneRecord(e.rec), At: e.at, Seq: e.seq, Supporters: sup,
		})
	}
	return st
}

// RestoreState replaces the staging store contents with a snapshot.
func (q *Quarantine) RestoreState(st QuarantineState) {
	q.pending = nil
	q.grid = make(map[[2]int][]*pendingEntry)
	q.nextSeq = st.NextSeq
	q.promotedTotal = st.PromotedTotal
	q.expiredTotal = st.ExpiredTotal
	q.admittedDirect = st.AdmittedDirect
	for _, ps := range st.Pending {
		e := &pendingEntry{
			rec: cloneRecord(ps.Rec), at: ps.At, seq: ps.Seq,
			supporters: make(map[string]struct{}, len(ps.Supporters)),
		}
		for _, s := range ps.Supporters {
			e.supporters[s] = struct{}{}
		}
		q.pending = append(q.pending, e)
		q.grid[q.cellOf(e.rec.Pos)] = append(q.grid[q.cellOf(e.rec.Pos)], e)
	}
}

func cloneRecord(rec rssimap.Record) rssimap.Record {
	m := make(map[string]int, len(rec.RSSI))
	for mac, v := range rec.RSSI {
		m[mac] = v
	}
	return rssimap.Record{Pos: rec.Pos, RSSI: m, Contributor: rec.Contributor}
}
