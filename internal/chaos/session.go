package chaos

import (
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/stream"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// This file is the streaming-session counterpart of the batch explorer:
// the fixed workload opens concurrent verification sessions, appends their
// chunks interleaved (one batch upload mixed in mid-stream), and closes
// them in order, flushing the WAL after every operation so each open,
// chunk, and verdict has a definite acknowledged-durable point. Every
// filesystem mutation site of that workload is then explored as a torn
// crash, and recovery must show:
//
//  1. No acknowledged operation lost: the recovered verdict ledger is a
//     prefix of the reference journal-order verdict sequence covering at
//     least every flushed verdict, every flushed-but-unresolved session is
//     recovered in flight with at least its flushed chunks, and a session
//     whose close verdict was recovered is never also in flight.
//
//  2. Bit-identical state: every recovered in-flight session's buffered
//     points and scans equal the reference trajectory prefix bit-for-bit,
//     and after Service.Restore the store answers the feature probe
//     bit-identical to a crash-free run with the same accepted prefix.

// SessionReport summarises a streaming-session exploration.
type SessionReport struct {
	// Sites is the number of mutation sites the clean counting pass found;
	// every one was explored as a crash point.
	Sites int
	// EmptyRecoveries counts crash points that recovered to an empty state.
	EmptyRecoveries int
	// FullRecoveries counts crash points that recovered the entire verdict
	// ledger.
	FullRecoveries int
	// MaxAckedVerdicts is the largest acknowledged-verdict count observed.
	MaxAckedVerdicts int
	// InFlightRecoveries counts crash points that recovered at least one
	// session still in flight (chunks journaled, no verdict yet).
	InFlightRecoveries int
}

// sessionScript is one scripted session of the workload: its full upload,
// the chunk boundaries, and the reference outcome (how many chunks the
// crash-free run applied before an early exit, and the close verdict).
type sessionScript struct {
	id       string
	upload   *wifi.Upload
	chunks   [][2]int // [lo, hi) per chunk
	applied  int      // chunks applied in the reference run
	accepted bool     // close verdict of the reference run
}

// sessionFixture is everything shared across crash points.
type sessionFixture struct {
	opts      Options
	proj      *geo.Projection
	bootstrap []rssimap.Record
	model     *xgb.Model
	fcfg      rssimap.FeatureConfig

	scripts []*sessionScript
	batch   *wifi.Upload // one batch upload interleaved between chunk rounds
	probe   *wifi.Upload

	// verdicts is the journal-order verdict sequence: the batch upload's
	// verdict first (it lands in the WAL between chunk rounds), then the
	// session closes in close order.
	verdicts []bool
	// features[k] is the probe's feature vector once the store holds the
	// bootstrap plus the first k accepted uploads in ingestion order.
	features [][]float64
}

const (
	sessionCount  = 4
	chunksPerSess = 3
	forgedSession = 2 // this session streams the forged RSSI signature
)

// sessionAcks records which operations of one crash run were acknowledged
// durable (journaled and flushed) before the filesystem died.
type sessionAcks struct {
	opens    []bool // per session: open frame flushed
	chunks   []int  // per session: chunk frames flushed
	verdicts int    // journal-order verdicts flushed (batch + closes)
}

// streamConfig is the session config every pass uses. The thresholds are
// low enough that the forged session's early exit fires mid-stream, so the
// rejected-without-pipeline close path is part of the crash surface.
func streamConfig() *stream.Config {
	return &stream.Config{Window: 8, EarlyExit: 0.5, EarlyExitAfter: 8}
}

// newService wires a streaming-enabled verification service around the
// given store, optionally persistent. The caller must invoke cleanup.
func (f *sessionFixture) newService(p *server.Persistence, store *rssimap.Store) (*server.Service, *boundClient, func(), error) {
	stub := &motionStub{prob: 0.9}
	rc, err := detect.NewReplayChecker(1.2)
	if err != nil {
		return nil, nil, nil, err
	}
	svc, err := server.New(server.Config{
		Projection:     f.proj,
		Motion:         stub,
		Replay:         rc,
		WiFi:           &detect.WiFiDetector{Store: store, Model: f.model, Features: f.fcfg},
		IngestAccepted: true,
		Persist:        p,
		Stream:         streamConfig(),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ts := httptest.NewServer(svc.Handler())
	cleanup := func() {
		ts.Close()
		svc.Close() // on a crashed FS this fails; recovery is the real check
	}
	return svc, &boundClient{client: server.NewClient(ts.URL, f.proj), stub: stub}, cleanup, nil
}

// newSessionFixture trains the detector, scripts the workload, and runs
// the crash-free reference pass that fixes per-session outcomes, the
// verdict sequence, and the per-prefix feature vectors.
func newSessionFixture(opts Options) (*sessionFixture, error) {
	f := &sessionFixture{opts: opts, proj: geo.NewProjection(origin)}
	var err error
	if f.bootstrap, f.model, f.fcfg, err = trainFixture(opts.Seed, opts.Points); err != nil {
		return nil, err
	}

	f.scripts = make([]*sessionScript, sessionCount)
	for i := range f.scripts {
		u, err := walkUpload(opts.Seed+int64(850+i), opts.Points)
		if err != nil {
			return nil, err
		}
		if i == forgedSession {
			for j := range u.Scans {
				u.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
			}
		}
		n := u.Traj.Len()
		sc := &sessionScript{id: fmt.Sprintf("chaos-sess-%02d", i), upload: u}
		for c := 0; c < chunksPerSess; c++ {
			lo, hi := c*n/chunksPerSess, (c+1)*n/chunksPerSess
			sc.chunks = append(sc.chunks, [2]int{lo, hi})
		}
		f.scripts[i] = sc
	}
	if f.batch, err = walkUpload(opts.Seed+920, opts.Points); err != nil {
		return nil, err
	}
	if f.probe, err = walkUpload(opts.Seed+999, 30); err != nil {
		return nil, err
	}

	// Reference pass: same pipeline, no persistence, no faults.
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return nil, err
	}
	_, client, cleanup, err := f.newService(nil, store)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	want, err := store.Features(f.probe, f.fcfg)
	if err != nil {
		return nil, err
	}
	f.features = append(f.features, want)
	err = f.runOps(client, true, func(op string, sess int, accepted bool) error {
		switch op {
		case "chunk":
			f.scripts[sess].applied++
		case "batch", "close":
			if op == "close" {
				f.scripts[sess].accepted = accepted
			}
			f.verdicts = append(f.verdicts, accepted)
			if accepted {
				w, err := store.Features(f.probe, f.fcfg)
				if err != nil {
					return err
				}
				f.features = append(f.features, w)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: reference session pass: %w", err)
	}
	accepts := 0
	for _, v := range f.verdicts {
		if v {
			accepts++
		}
	}
	if accepts == 0 || accepts == len(f.verdicts) {
		return nil, fmt.Errorf("chaos: degenerate session workload: %d/%d accepted", accepts, len(f.verdicts))
	}
	if f.scripts[forgedSession].applied == chunksPerSess {
		return nil, fmt.Errorf("chaos: forged session never early-exited")
	}
	return f, nil
}

// runOps executes the fixed operation sequence against one service and
// invokes ack after every server-acknowledged operation. The reference
// pass (ref=true) records outcomes into the scripts; crash runs check the
// live answers against them — the in-memory pipeline never sees the disk
// fault, so any deviation is an invariant violation in itself.
func (f *sessionFixture) runOps(client *boundClient, ref bool, ack func(op string, sess int, accepted bool) error) error {
	client.stub.prob = 0.9
	for i, sc := range f.scripts {
		got, err := client.client.OpenSession(sc.id, "")
		if err != nil {
			return fmt.Errorf("open session %d: %w", i, err)
		}
		if got != sc.id {
			return fmt.Errorf("open session %d: id %q, want %q", i, got, sc.id)
		}
		if err := ack("open", i, false); err != nil {
			return err
		}
	}
	rejected := make([]bool, len(f.scripts))
	for round := 0; round < chunksPerSess; round++ {
		for i, sc := range f.scripts {
			if rejected[i] {
				continue
			}
			c := sc.chunks[round]
			a, err := client.client.AppendSession(sc.id, round, sc.upload, c[0], c[1])
			if err != nil {
				return fmt.Errorf("append session %d chunk %d: %w", i, round, err)
			}
			if err := ack("chunk", i, false); err != nil {
				return err
			}
			if a.Rejected {
				rejected[i] = true
			}
			// The reference pass fixed where the early exit fires; a crash
			// run deviating means the disk fault leaked into scoring.
			if !ref {
				wantRejected := round+1 == sc.applied && sc.applied < chunksPerSess
				if a.Rejected != wantRejected {
					return fmt.Errorf("session %d chunk %d: rejected=%v deviates from reference", i, round, a.Rejected)
				}
			}
		}
		if round == 0 {
			v, err := client.client.Upload(f.batch)
			if err != nil {
				return fmt.Errorf("interleaved batch upload: %w", err)
			}
			if !ref && v.Accepted != f.verdicts[0] {
				return fmt.Errorf("batch verdict %v, want %v", v.Accepted, f.verdicts[0])
			}
			if err := ack("batch", -1, v.Accepted); err != nil {
				return err
			}
		}
	}
	for i, sc := range f.scripts {
		v, err := client.client.CloseSession(sc.id)
		if err != nil {
			return fmt.Errorf("close session %d: %w", i, err)
		}
		if !ref && v.Accepted != f.verdicts[1+i] {
			return fmt.Errorf("session %d verdict %v, want %v", i, v.Accepted, f.verdicts[1+i])
		}
		if err := ack("close", i, v.Accepted); err != nil {
			return err
		}
	}
	return nil
}

// runWorkload executes the fixed session workload against dir on the given
// filesystem and reports which operations were acknowledged durable before
// the filesystem died. Faults never abort the workload.
func (f *sessionFixture) runWorkload(dir string, fs fsx.FS) (acks sessionAcks, err error) {
	acks = sessionAcks{opens: make([]bool, len(f.scripts)), chunks: make([]int, len(f.scripts))}
	p, perr := server.OpenPersistence(dir, server.PersistOptions{FS: fs, SyncInterval: -1})
	if perr != nil {
		return acks, nil // crash during open: nothing was ever acknowledged
	}
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return acks, err
	}
	_, client, cleanup, err := f.newService(p, store)
	if err != nil {
		return acks, err
	}
	defer cleanup()
	// The bootstrap store exists only in memory until this first snapshot.
	alive := p.Compact() == nil
	err = f.runOps(client, false, func(op string, sess int, _ bool) error {
		if !alive || p.Flush() != nil {
			alive = false
			return nil
		}
		switch op {
		case "open":
			acks.opens[sess] = true
		case "chunk":
			acks.chunks[sess]++
		case "batch", "close":
			acks.verdicts++
		}
		return nil
	})
	return acks, err
}

// checkRecovery reopens dir with a healthy filesystem and asserts both
// invariants for a crash point with the given acknowledged operations.
func (f *sessionFixture) checkRecovery(dir string, acks sessionAcks) (accepted, inflight int, empty bool, err error) {
	p, err := server.OpenPersistence(dir, server.PersistOptions{SyncInterval: -1})
	if err != nil {
		return 0, 0, false, fmt.Errorf("recovery open: %w", err)
	}
	state := p.Recovered()

	// Invariant 1a: the recovered ledger is a prefix of the journal-order
	// verdict sequence, covering at least every flushed verdict.
	total := state.Accepted + state.Rejected
	if total > len(f.verdicts) {
		return 0, 0, false, fmt.Errorf("recovered %d verdicts, workload has %d", total, len(f.verdicts))
	}
	wantAccepted := 0
	for _, v := range f.verdicts[:total] {
		if v {
			wantAccepted++
		}
	}
	if state.Accepted != wantAccepted {
		return 0, 0, false, fmt.Errorf("recovered %d accepted of %d verdicts, want %d (not a prefix)",
			state.Accepted, total, wantAccepted)
	}
	if total < acks.verdicts {
		return 0, 0, false, fmt.Errorf("recovered %d verdicts, %d were acknowledged durable", total, acks.verdicts)
	}

	// Invariant 1b: acknowledged chunks of unresolved sessions survived,
	// and resolved sessions are not also in flight. Session i's close is
	// journal verdict 1+i (the batch verdict is verdict 0).
	byID := make(map[string]stream.SessionState, len(state.Sessions))
	for _, ss := range state.Sessions {
		byID[ss.ID] = ss
	}
	for i, sc := range f.scripts {
		ss, live := byID[sc.id]
		if closed := total >= 2+i; closed {
			if live {
				return 0, 0, false, fmt.Errorf("session %d resolved by verdict %d yet recovered in flight", i, 1+i)
			}
			continue
		}
		if acks.opens[i] && !live {
			return 0, 0, false, fmt.Errorf("session %d acknowledged open lost", i)
		}
		if !live {
			continue
		}
		if ss.Chunks < acks.chunks[i] {
			return 0, 0, false, fmt.Errorf("session %d recovered %d chunks, %d were acknowledged durable",
				i, ss.Chunks, acks.chunks[i])
		}
		if ss.Chunks > sc.applied {
			return 0, 0, false, fmt.Errorf("session %d recovered %d chunks, workload applied %d",
				i, ss.Chunks, sc.applied)
		}
		// Invariant 2a: the recovered buffer is the reference trajectory
		// prefix, bit-for-bit.
		n := 0
		for _, c := range sc.chunks[:ss.Chunks] {
			n += c[1] - c[0]
		}
		if len(ss.Points) != n || len(ss.Scans) != n {
			return 0, 0, false, fmt.Errorf("session %d recovered %d points / %d scans, want %d",
				i, len(ss.Points), len(ss.Scans), n)
		}
		for j := 0; j < n; j++ {
			// The buffered point is what the wire delivered: the plane
			// coordinate after a lat/lon round trip, at millisecond time
			// resolution — deterministic, so still an exact-bits check.
			want := sc.upload.Traj.Points[j]
			wantPos := f.proj.ToPlane(f.proj.ToLatLon(want.Pos))
			wantTime := time.UnixMilli(want.Time.UnixMilli())
			if math.Float64bits(ss.Points[j].Pos.X) != math.Float64bits(wantPos.X) ||
				math.Float64bits(ss.Points[j].Pos.Y) != math.Float64bits(wantPos.Y) ||
				!ss.Points[j].Time.Equal(wantTime) {
				return 0, 0, false, fmt.Errorf("session %d point %d differs from reference", i, j)
			}
			if len(ss.Scans[j]) != len(sc.upload.Scans[j]) {
				return 0, 0, false, fmt.Errorf("session %d scan %d differs from reference", i, j)
			}
			for k, ob := range ss.Scans[j] {
				if ob != sc.upload.Scans[j][k] {
					return 0, 0, false, fmt.Errorf("session %d scan %d observation %d differs", i, j, k)
				}
			}
		}
	}

	// Invariant 2b: the store rebuilt through the live recovery path —
	// Restore resumes in-flight sessions and re-ingests accepted uploads —
	// answers the probe bit-identical to the reference accepted prefix.
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), state.Records)
	if err != nil {
		return 0, 0, false, fmt.Errorf("recovery store: %w", err)
	}
	svc, _, cleanup, err := f.newService(p, store)
	if err != nil {
		return 0, 0, false, err
	}
	defer cleanup()
	svc.Restore(state)
	if state.Empty() {
		return 0, 0, true, nil
	}
	got, err := store.Features(f.probe, f.fcfg)
	if err != nil {
		return 0, 0, false, fmt.Errorf("recovery features: %w", err)
	}
	want := f.features[state.Accepted]
	if len(got) != len(want) {
		return 0, 0, false, fmt.Errorf("recovered feature dim %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return 0, 0, false, fmt.Errorf("feature %d = %v, want %v (bits differ)", i, got[i], want[i])
		}
	}
	return state.Accepted, len(state.Sessions), false, nil
}

// RunSessions explores every crash point of the fixed streaming-session
// workload. It returns an error describing the first invariant violation,
// annotated with the fault site that provoked it.
func RunSessions(opts Options) (*SessionReport, error) {
	if opts.Points <= 0 {
		opts.Points = 18
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: Options.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	f, err := newSessionFixture(opts)
	if err != nil {
		return nil, err
	}

	// Counting pass: run the workload fault-free on a recording filesystem
	// to enumerate the mutation sites.
	counter := faultfs.New(fsx.OS, faultfs.Options{})
	acks, err := f.runWorkload(filepath.Join(opts.Dir, "count"), counter)
	if err != nil {
		return nil, fmt.Errorf("chaos: session counting pass: %w", err)
	}
	if acks.verdicts != len(f.verdicts) {
		return nil, fmt.Errorf("chaos: counting pass acknowledged %d/%d verdicts", acks.verdicts, len(f.verdicts))
	}
	plan := counter.Ops()
	rep := &SessionReport{Sites: len(plan)}
	logf("chaos: %d fault sites, %d sessions + 1 batch upload (%d verdicts, %d accepted in reference run)",
		rep.Sites, len(f.scripts), len(f.verdicts), len(f.features)-1)

	for site := 1; site <= len(plan); site++ {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("site-%03d", site))
		fs := faultfs.New(fsx.OS, faultfs.Options{
			Seed:   opts.Seed ^ int64(site),
			FailAt: site,
			Mode:   faultfs.FaultTorn,
			Crash:  true,
		})
		acks, err := f.runWorkload(dir, fs)
		if err != nil {
			return rep, fmt.Errorf("chaos: session site %d (%s %s): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), err)
		}
		if !fs.Faulted() {
			return rep, fmt.Errorf("chaos: session site %d (%s): fault never fired", site, plan[site-1].Kind)
		}
		accepted, inflight, empty, err := f.checkRecovery(dir, acks)
		if err != nil {
			return rep, fmt.Errorf("chaos: session site %d (%s %s, acked %d verdicts): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), acks.verdicts, err)
		}
		if empty {
			rep.EmptyRecoveries++
			if acks.verdicts > 0 {
				return rep, fmt.Errorf("chaos: session site %d: empty recovery after %d acknowledged verdicts",
					site, acks.verdicts)
			}
		}
		if accepted == len(f.features)-1 {
			rep.FullRecoveries++
		}
		if inflight > 0 {
			rep.InFlightRecoveries++
		}
		if acks.verdicts > rep.MaxAckedVerdicts {
			rep.MaxAckedVerdicts = acks.verdicts
		}
	}
	logf("chaos: explored %d session crash points: %d empty, %d full, %d with in-flight sessions, max acked verdicts %d",
		rep.Sites, rep.EmptyRecoveries, rep.FullRecoveries, rep.InFlightRecoveries, rep.MaxAckedVerdicts)
	return rep, nil
}
