package chaos

import "testing"

// TestSessionCrashPointExploration crashes the filesystem at every mutation
// site of a streaming-session workload — opens, interleaved chunk appends,
// an interleaved batch upload, and closes, each flushed durable — and
// asserts no acknowledged operation is lost and recovered state is
// bit-identical. The run itself checks the invariants; the test asserts the
// exploration covered a meaningful crash surface.
func TestSessionCrashPointExploration(t *testing.T) {
	rep, err := RunSessions(Options{Seed: 1, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 50 {
		t.Fatalf("explored %d crash points, want >= 50", rep.Sites)
	}
	if rep.EmptyRecoveries == 0 {
		t.Fatal("no crash point recovered to the empty state")
	}
	if rep.FullRecoveries == 0 {
		t.Fatal("no crash point recovered the full verdict ledger")
	}
	if rep.MaxAckedVerdicts == 0 {
		t.Fatal("no crash point acknowledged any verdict before dying")
	}
	// The point of the scenario: some crashes must land mid-session, with
	// journaled chunks but no verdict, and recovery must carry them.
	if rep.InFlightRecoveries == 0 {
		t.Fatal("no crash point recovered an in-flight session")
	}
}
