package chaos

import "testing"

// TestCrashPointExploration enumerates every filesystem mutation the
// durability layer performs for a fixed workload and crashes at each one.
// The run itself asserts the two recovery invariants; the test asserts the
// exploration covered a meaningful crash surface.
func TestCrashPointExploration(t *testing.T) {
	rep, err := Run(Options{Seed: 1, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 50 {
		t.Fatalf("explored %d crash points, want >= 50", rep.Sites)
	}
	// The crash surface must include both extremes: crashes early enough
	// that nothing survives, and crashes late enough that the full ledger
	// was already acknowledged and must survive whole.
	if rep.EmptyRecoveries == 0 {
		t.Fatal("no crash point recovered to the empty state")
	}
	if rep.FullRecoveries == 0 {
		t.Fatal("no crash point recovered the full accepted ledger")
	}
	if rep.MaxAcked == 0 {
		t.Fatal("no crash point acknowledged any upload before dying")
	}
}

// TestExplorationDeterministic pins the property the explorer depends on:
// same seed, same fault-site count.
func TestExplorationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full exploration pass")
	}
	a, err := Run(Options{Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sites != b.Sites || a.MaxAcked != b.MaxAcked ||
		a.EmptyRecoveries != b.EmptyRecoveries || a.FullRecoveries != b.FullRecoveries {
		t.Fatalf("exploration not deterministic: %+v != %+v", a, b)
	}
}
