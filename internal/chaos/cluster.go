// Cluster crash-point explorer: the distributed sibling of Run. One fixed,
// seeded ingest workload runs against a two-node shard cluster while a
// tile migrates between the nodes, and the explorer kills one node — via a
// crashing faultfs under its WAL/snapshot lineage — at every mutation site
// that node's storage performs, old owner and new owner alike. After each
// crash the cluster recovers the way a real deployment does: the dead node
// restarts from its surviving files, a new coordinator incarnation fences
// a higher epoch and replays the canonical record log, and resync heals
// whatever tail the node lost.
//
// Three invariants hold at every crash point:
//
//  1. Acked data survives: every record acknowledged into the canonical
//     log is served after recovery — the feature probes answer with
//     float64 bits identical to a single-process store that ingested the
//     same records and never crashed (recovered tiles are bit-identical,
//     so verdicts computed from them are too).
//
//  2. No split-brain: any confidence query that *succeeds* during the
//     crashed run is also bit-identical to the reference — epoch fencing
//     means a node either answers correctly for a tile it owns or
//     refuses; it never serves a stale copy.
//
//  3. Epochs are monotonic: the journaled epoch of a recovered node never
//     exceeds what the coordinator issued, and the next coordinator
//     incarnation fences strictly above every surviving node epoch.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/geo"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// ClusterOptions configures one cluster exploration run.
type ClusterOptions struct {
	// Seed drives the record workload and torn-write prefixes.
	Seed int64
	// Records is the workload length. Default 240.
	Records int
	// Dir is the scratch directory; each crash point gets a subdirectory.
	Dir string
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

// ClusterReport summarises a cluster exploration.
type ClusterReport struct {
	// Sites is the total number of crash points explored across both
	// victim roles (migration source and migration target).
	Sites int
	// Committed and Aborted count how the mid-workload migration ended
	// across crash points; both outcomes must appear, or the crash surface
	// missed one side of the protocol.
	Committed int
	Aborted   int
	// LiveProbeMatches counts crash points where the post-crash, pre-
	// recovery probe still succeeded (served entirely by surviving nodes)
	// and matched the reference bits.
	LiveProbeMatches int
}

// clusterFixture is the deterministic workload shared by every crash point.
type clusterFixture struct {
	opts    ClusterOptions
	cfg     shardstore.Config
	fcfg    rssimap.FeatureConfig
	batches [][]rssimap.Record
	probes  []*wifi.Upload
	refFeat [][]float64 // probe features over the full record set, never crashed
	migTile [2]int
	fromID  string
	toID    string
}

// migrateAt is the batch index after which the tile migration fires.
const migrateAt = 3

func clusterRecords(rng *rand.Rand, n int) []rssimap.Record {
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := make(map[string]int)
		for j := 0; j < 3+rng.Intn(4); j++ {
			m[fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(24))] = -40 - rng.Intn(50)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
			RSSI: m,
		}
	}
	return recs
}

func clusterProbe(rng *rand.Rand, n int) *wifi.Upload {
	pos := make([]geo.Point, n)
	p := geo.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
	for i := range pos {
		p.X = math.Abs(math.Mod(p.X+rng.NormFloat64()*4, 60))
		p.Y = math.Abs(math.Mod(p.Y+rng.NormFloat64()*4, 60))
		pos[i] = p
	}
	traj := trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second)
	scans := make([]wifi.Scan, n)
	for i := range scans {
		for j := 0; j < 3; j++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(24)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

func newClusterFixture(opts ClusterOptions) (*clusterFixture, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	all := clusterRecords(rng, opts.Records)
	f := &clusterFixture{
		opts: opts,
		cfg:  shardstore.DefaultConfig(),
		fcfg: rssimap.DefaultFeatureConfig(),
	}
	const batch = 40
	for off := 0; off < len(all); off += batch {
		end := off + batch
		if end > len(all) {
			end = len(all)
		}
		f.batches = append(f.batches, all[off:end])
	}
	if len(f.batches) <= migrateAt+1 {
		return nil, fmt.Errorf("chaos: workload of %d records too short for a mid-run migration", len(all))
	}
	for i := 0; i < 2; i++ {
		f.probes = append(f.probes, clusterProbe(rng, 12))
	}

	// Reference features from a single-process store that never crashed:
	// the bits every recovery must reproduce.
	ref, err := shardstore.New(f.cfg, all)
	if err != nil {
		return nil, err
	}
	for _, u := range f.probes {
		feat, err := ref.Features(u, f.fcfg)
		if err != nil {
			return nil, err
		}
		f.refFeat = append(f.refFeat, feat)
	}

	// Dry run on memory-only nodes to fix the migration (tile, from, to)
	// every crash point replays.
	res, err := f.run("", "", nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: dry run: %w", err)
	}
	if res.migErr != nil {
		return nil, fmt.Errorf("chaos: dry-run migration: %w", res.migErr)
	}
	if res.probeErr != nil {
		return nil, fmt.Errorf("chaos: dry-run probe: %w", res.probeErr)
	}
	f.migTile, f.fromID, f.toID = res.migTile, res.fromID, res.toID
	return f, nil
}

// clusterRunResult is what one workload execution observed.
type clusterRunResult struct {
	migTile    [2]int
	fromID     string
	toID       string
	migErr     error
	probeErr   error
	probeMatch bool
	epoch      uint64 // coordinator epoch when the run finished
}

// run executes the fixed workload. With dir == "" the nodes are memory-only
// (the dry run); otherwise each node journals under dir/<id>, and the
// victim node's filesystem is vfs (nil = healthy).
func (f *clusterFixture) run(dir, victim string, vfs fsx.FS) (*clusterRunResult, error) {
	ids := []string{"a", "b"}
	nodes := make(map[string]*cluster.Node, 2)
	addrs := make(map[string]string, 2)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, id := range ids {
		var nopts cluster.NodeOptions
		if dir != "" {
			nopts.Dir = filepath.Join(dir, id)
			if id == victim {
				nopts.FS = vfs
			}
		}
		node, err := cluster.NewNode(id, f.cfg, nopts)
		if err != nil {
			// The victim crashed before its storage even opened. Reserve a
			// dead address so the coordinator sees connection-refused and
			// the workload proceeds degraded.
			if id == victim {
				ln, lerr := net.Listen("tcp", "127.0.0.1:0")
				if lerr != nil {
					return nil, lerr
				}
				addrs[id] = ln.Addr().String()
				ln.Close()
				continue
			}
			return nil, err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}

	store, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		// Retries would only re-dial the deliberately-dead victim; one
		// attempt keeps every crash point fast and deterministic.
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		return nil, err
	}
	defer store.Close()

	res := &clusterRunResult{}
	for i, b := range f.batches {
		store.Add(b)
		if i == migrateAt {
			if f.fromID == "" {
				// Dry run: discover the migration the crash points replay.
				tile, ok := store.BusiestTile()
				if !ok {
					return nil, errors.New("no busiest tile")
				}
				res.migTile = tile
				res.fromID = store.Assignment().Owner(tile)
				for _, id := range ids {
					if id != res.fromID {
						res.toID = id
					}
				}
				res.migErr = store.Migrate(tile, res.toID)
			} else {
				res.migTile, res.fromID, res.toID = f.migTile, f.fromID, f.toID
				res.migErr = store.Migrate(f.migTile, f.toID)
			}
		}
	}

	// Post-workload probe: allowed to fail (a dead node can make tiles
	// unreachable) but never allowed to answer with different bits.
	res.probeMatch = true
	for i, u := range f.probes {
		feat, err := store.Features(u, f.fcfg)
		if err != nil {
			res.probeErr = err
			res.probeMatch = false
			break
		}
		if !sameBits(feat, f.refFeat[i]) {
			return nil, fmt.Errorf("live probe %d diverged from reference bits", i)
		}
	}
	res.epoch = store.Assignment().Epoch
	return res, nil
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// recover restarts both nodes from their surviving files on a healthy
// filesystem, fences a fresh coordinator above every journaled epoch,
// replays the canonical log, and asserts the recovery invariants.
func (f *clusterFixture) recoverAndCheck(dir string, crashed *clusterRunResult) error {
	ids := []string{"a", "b"}
	nodes := make(map[string]*cluster.Node, 2)
	addrs := make(map[string]string, 2)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	var maxNodeEpoch uint64
	for _, id := range ids {
		node, err := cluster.NewNode(id, f.cfg, cluster.NodeOptions{Dir: filepath.Join(dir, id)})
		if err != nil {
			return fmt.Errorf("restart node %s: %w", id, err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		nodes[id] = node
		addrs[id] = addr.String()
		// Invariant 3a: a node can only know epochs the coordinator issued.
		if e := node.Epoch(); e > crashed.epoch {
			return fmt.Errorf("node %s recovered epoch %d above the coordinator's last issued %d", id, e, crashed.epoch)
		} else if e > maxNodeEpoch {
			maxNodeEpoch = e
		}
	}

	store, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		return err
	}
	defer store.Close()

	// Invariant 3b: the next incarnation fences strictly above everything
	// that survived.
	if e := store.Assignment().Epoch; e <= maxNodeEpoch {
		return fmt.Errorf("new coordinator epoch %d does not fence above surviving node epoch %d", e, maxNodeEpoch)
	}

	// Canonical-log replay (what the server's WAL recovery drives); the
	// per-tile seq gate deduplicates against whatever the nodes kept.
	for _, b := range f.batches {
		store.Add(b)
	}

	// Invariants 1 + 2: every probe answers, with reference bits.
	for i, u := range f.probes {
		feat, err := store.Features(u, f.fcfg)
		if err != nil {
			return fmt.Errorf("recovered probe %d: %w", i, err)
		}
		if !sameBits(feat, f.refFeat[i]) {
			return fmt.Errorf("recovered probe %d diverged from reference bits", i)
		}
	}
	return nil
}

// RunCluster explores kill-node-mid-migration crash points: for each victim
// role (migration source, then target), it records every storage mutation
// the victim performs during the fixed workload, then re-runs the workload
// once per site with a crashing torn-write fault at that site and drives
// recovery through the invariants above.
func RunCluster(opts ClusterOptions) (*ClusterReport, error) {
	if opts.Records == 0 {
		opts.Records = 240
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: ClusterOptions.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := newClusterFixture(opts)
	if err != nil {
		return nil, err
	}
	logf("chaos: cluster workload: %d records in %d batches, migrating tile %v from %s to %s",
		opts.Records, len(f.batches), f.migTile, f.fromID, f.toID)

	rep := &ClusterReport{}
	for _, victim := range []string{f.fromID, f.toID} {
		role := "source"
		if victim == f.toID {
			role = "target"
		}
		// Counting pass: the victim runs on a recording, fault-free
		// filesystem to enumerate its mutation sites.
		counter := faultfs.New(fsx.OS, faultfs.Options{})
		countDir := filepath.Join(opts.Dir, "count-"+victim)
		res, err := f.run(countDir, victim, counter)
		if err != nil {
			return nil, fmt.Errorf("chaos: counting pass (victim %s): %w", victim, err)
		}
		if res.migErr != nil {
			return nil, fmt.Errorf("chaos: counting-pass migration (victim %s): %w", victim, res.migErr)
		}
		if res.probeErr != nil {
			return nil, fmt.Errorf("chaos: counting-pass probe (victim %s): %w", victim, res.probeErr)
		}
		plan := counter.Ops()
		logf("chaos: victim %s (%s): %d mutation sites", victim, role, len(plan))

		for site := 1; site <= len(plan); site++ {
			dir := filepath.Join(opts.Dir, fmt.Sprintf("%s-site-%03d", victim, site))
			vfs := faultfs.New(fsx.OS, faultfs.Options{
				Seed:   opts.Seed ^ int64(site),
				FailAt: site,
				Mode:   faultfs.FaultTorn,
				Crash:  true,
			})
			res, err := f.run(dir, victim, vfs)
			if err != nil {
				return rep, fmt.Errorf("chaos: victim %s site %d (%s %s): %w",
					victim, site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), err)
			}
			if !vfs.Faulted() {
				return rep, fmt.Errorf("chaos: victim %s site %d: fault never fired", victim, site)
			}
			rep.Sites++
			if res.migErr != nil {
				rep.Aborted++
			} else {
				rep.Committed++
			}
			if res.probeErr == nil && res.probeMatch {
				rep.LiveProbeMatches++
			}
			if err := f.recoverAndCheck(dir, res); err != nil {
				return rep, fmt.Errorf("chaos: victim %s site %d (%s %s, migration err %v): %w",
					victim, site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), res.migErr, err)
			}
		}
	}
	logf("chaos: explored %d cluster crash points: %d migrations committed, %d aborted, %d live probes matched",
		rep.Sites, rep.Committed, rep.Aborted, rep.LiveProbeMatches)
	return rep, nil
}
