// Package chaos is a crash-point explorer for the verification server's
// durability layer. It replays one fixed, seeded upload workload over and
// over, each time crashing the filesystem (via fsx/faultfs) at a different
// recorded mutation site — every write, fsync, truncate, rename, and
// directory sync the workload performs — and then recovers from the
// surviving files with a healthy filesystem.
//
// Two invariants are asserted at every crash point:
//
//  1. Acknowledged durability: every upload whose durability barrier
//     (Persistence.Flush) returned success before the crash is present in
//     the recovered state, and the recovered verdict ledger is a clean
//     prefix of the workload's deterministic verdict sequence — recovery
//     never invents, reorders, or partially applies verdicts.
//
//  2. Bit-identical features: the RSSI store rebuilt from the recovered
//     snapshot and WAL answers the feature probe with float64 values
//     bit-for-bit equal (math.Float64bits) to a reference store that
//     ingested the same accepted-upload prefix and never crashed.
//
// Write faults use torn mode, so a crash mid-frame leaves the seeded
// partial write a real power cut would — the torn-tail recovery path is
// exercised, not just clean truncation.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// Options configures one exploration run.
type Options struct {
	// Seed drives every random choice: the bootstrap store, the workload
	// trajectories, and torn-write prefix lengths. Same seed, same sites,
	// same outcome.
	Seed int64
	// Uploads is the workload length. Default 12.
	Uploads int
	// Points is the trajectory length per upload. Default 20.
	Points int
	// Dir is the scratch directory; each crash point gets a subdirectory.
	Dir string
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

// Report summarises an exploration.
type Report struct {
	// Sites is the number of mutation sites the clean counting pass found;
	// every one was explored as a crash point.
	Sites int
	// EmptyRecoveries counts crash points that recovered to an empty state
	// (crash before the bootstrap snapshot committed).
	EmptyRecoveries int
	// FullRecoveries counts crash points that recovered the entire verdict
	// ledger (crash after the last upload was acknowledged).
	FullRecoveries int
	// MaxAcked is the largest acknowledged-upload count observed across
	// crash points.
	MaxAcked int
}

var (
	origin = geo.LatLon{Lat: 32.06, Lon: 118.79}
	t0     = time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
)

// motionStub is a programmable motion detector; the workload scripts its
// answer per upload so the verdict sequence mixes accepts and rejects
// deterministically.
type motionStub struct{ prob float64 }

func (m *motionStub) Name() string                     { return "chaos-stub" }
func (m *motionStub) ProbReal(t *trajectory.T) float64 { return m.prob }

// fixture is everything shared across crash points: the trained detector
// (training is the expensive part and is seed-deterministic), the workload
// uploads, and the reference outcome of a crash-free run.
type fixture struct {
	opts      Options
	proj      *geo.Projection
	bootstrap []rssimap.Record
	model     *xgb.Model
	fcfg      rssimap.FeatureConfig
	uploads   []*wifi.Upload
	probs     []float64 // scripted motion answer per upload
	probe     *wifi.Upload
	verdicts  []bool      // reference verdict sequence
	features  [][]float64 // probe features indexed by accepted-upload count
}

// walkUpload builds one seeded walking upload along the fixture route with
// a constant in-coverage scan per point.
func walkUpload(seed int64, points int) (*wifi.Upload, error) {
	tk, err := mobility.Simulate(rand.New(rand.NewSource(seed)), mobility.Options{
		Route:     []geo.Point{{X: 0, Y: 0}, {X: 300, Y: 0}},
		Mode:      trajectory.ModeWalking,
		Start:     t0,
		Interval:  time.Second,
		MaxPoints: points,
	})
	if err != nil {
		return nil, err
	}
	traj := tk.Trajectory()
	scans := make([]wifi.Scan, traj.Len())
	for i := range scans {
		scans[i] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -60}}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}, nil
}

// trainFixture builds the seeded bootstrap history and trains the WiFi
// detector shared by the batch and streaming explorers. Only the records,
// the model, and the feature config are returned — every pass builds its
// own store.
func trainFixture(seed int64, points int) ([]rssimap.Record, *xgb.Model, rssimap.FeatureConfig, error) {
	fcfg := rssimap.DefaultFeatureConfig()

	// Bootstrap store: a dense crowdsourced history along the route.
	rng := rand.New(rand.NewSource(seed))
	bootstrap := make([]rssimap.Record, 400)
	for i := range bootstrap {
		m := map[string]int{"02:4e:00:00:00:01": -55 - rng.Intn(20)}
		if rng.Intn(2) == 0 {
			m["02:4e:00:00:00:02"] = -60 - rng.Intn(20)
		}
		bootstrap[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * 300, Y: rng.NormFloat64() * 3},
			RSSI: m,
		}
	}

	trainStore, err := rssimap.NewStore(rssimap.DefaultConfig(), bootstrap)
	if err != nil {
		return nil, nil, fcfg, err
	}
	real := make([]*wifi.Upload, 4)
	fake := make([]*wifi.Upload, 4)
	for i := range real {
		if real[i], err = walkUpload(seed+int64(700+i), points); err != nil {
			return nil, nil, fcfg, err
		}
		fk, err := walkUpload(seed+int64(710+i), points)
		if err != nil {
			return nil, nil, fcfg, err
		}
		for j := range fk.Scans {
			fk.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
		}
		fake[i] = fk
	}
	det, err := detect.TrainWiFiDetector(trainStore, real, fake, fcfg, xgb.DefaultConfig())
	if err != nil {
		return nil, nil, fcfg, fmt.Errorf("chaos: train detector: %w", err)
	}
	return bootstrap, det.Model, fcfg, nil
}

// newFixture trains the detector and runs the crash-free reference pass
// that fixes the verdict sequence and the per-prefix feature vectors.
func newFixture(opts Options) (*fixture, error) {
	f := &fixture{
		opts: opts,
		proj: geo.NewProjection(origin),
	}
	var err error
	if f.bootstrap, f.model, f.fcfg, err = trainFixture(opts.Seed, opts.Points); err != nil {
		return nil, err
	}

	// Workload: mostly-real uploads with a scripted rejection every 4th.
	f.uploads = make([]*wifi.Upload, opts.Uploads)
	f.probs = make([]float64, opts.Uploads)
	for i := range f.uploads {
		if f.uploads[i], err = walkUpload(opts.Seed+int64(800+i), opts.Points); err != nil {
			return nil, err
		}
		f.probs[i] = 0.9
		if i%4 == 3 {
			f.probs[i] = 0.1
		}
	}
	if f.probe, err = walkUpload(opts.Seed+999, 30); err != nil {
		return nil, err
	}

	// Reference pass: same pipeline, no persistence, no faults. It fixes
	// verdicts[i] and features[k] — the probe's feature vector once the
	// store holds the bootstrap plus the first k accepted uploads.
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return nil, err
	}
	_, client, cleanup, err := f.newService(nil, store)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	want, err := store.Features(f.probe, f.fcfg)
	if err != nil {
		return nil, err
	}
	f.features = append(f.features, want)
	f.verdicts = make([]bool, opts.Uploads)
	for i, u := range f.uploads {
		v, err := f.uploadAs(client, u, f.probs[i])
		if err != nil {
			return nil, fmt.Errorf("chaos: reference upload %d: %w", i, err)
		}
		f.verdicts[i] = v.Accepted
		if v.Accepted {
			if want, err = store.Features(f.probe, f.fcfg); err != nil {
				return nil, err
			}
			f.features = append(f.features, want)
		}
	}
	if n := len(f.features) - 1; n == 0 || n == opts.Uploads {
		return nil, fmt.Errorf("chaos: degenerate workload: %d/%d accepted", n, opts.Uploads)
	}
	return f, nil
}

// stub shared per service instance; uploadAs scripts it before each upload.
type boundClient struct {
	client *server.Client
	stub   *motionStub
}

// newService wires a fresh verification service around the given store,
// optionally persistent. The caller must invoke cleanup.
func (f *fixture) newService(p *server.Persistence, store *rssimap.Store) (*server.Service, *boundClient, func(), error) {
	stub := &motionStub{prob: 0.9}
	rc, err := detect.NewReplayChecker(1.2)
	if err != nil {
		return nil, nil, nil, err
	}
	svc, err := server.New(server.Config{
		Projection:     f.proj,
		Motion:         stub,
		Replay:         rc,
		WiFi:           &detect.WiFiDetector{Store: store, Model: f.model, Features: f.fcfg},
		IngestAccepted: true,
		Persist:        p,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ts := httptest.NewServer(svc.Handler())
	cleanup := func() {
		ts.Close()
		svc.Close() // on a crashed FS this fails; recovery is the real check
	}
	return svc, &boundClient{client: server.NewClient(ts.URL, f.proj), stub: stub}, cleanup, nil
}

func (f *fixture) uploadAs(c *boundClient, u *wifi.Upload, prob float64) (*server.Verdict, error) {
	c.stub.prob = prob
	return c.client.Upload(u)
}

// runWorkload executes the fixed workload against dir on the given
// filesystem and reports how many uploads were acknowledged durable before
// the filesystem died. Faults never abort the workload — a real server
// keeps serving verdicts from memory while its disk is gone.
func (f *fixture) runWorkload(dir string, fs fsx.FS) (acked int, err error) {
	p, perr := server.OpenPersistence(dir, server.PersistOptions{FS: fs, SyncInterval: -1})
	if perr != nil {
		return 0, nil // crash during open: nothing was ever acknowledged
	}
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return 0, err
	}
	_, client, cleanup, err := f.newService(p, store)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	// The bootstrap store exists only in memory until this first snapshot.
	compacted := p.Compact() == nil
	alive := compacted
	for i, u := range f.uploads {
		v, uerr := f.uploadAs(client, u, f.probs[i])
		if uerr != nil {
			return acked, fmt.Errorf("chaos: workload upload %d: %w", i, uerr)
		}
		// The in-memory pipeline never sees the disk fault: verdicts must
		// match the reference sequence on every crash run.
		if v.Accepted != f.verdicts[i] {
			return acked, fmt.Errorf("chaos: verdict %d = %v, want %v", i, v.Accepted, f.verdicts[i])
		}
		if alive && p.Flush() == nil {
			acked = i + 1
		} else {
			alive = false
		}
	}
	return acked, nil
}

// checkRecovery reopens dir with a healthy filesystem and asserts both
// invariants for a crash point that acknowledged `acked` uploads.
func (f *fixture) checkRecovery(dir string, acked int) (accepted int, empty bool, err error) {
	p, err := server.OpenPersistence(dir, server.PersistOptions{SyncInterval: -1})
	if err != nil {
		return 0, false, fmt.Errorf("recovery open: %w", err)
	}
	state := p.Recovered()

	// Invariant 1a: the recovered ledger is a prefix of the reference
	// verdict sequence.
	total := state.Accepted + state.Rejected
	if total > len(f.verdicts) {
		return 0, false, fmt.Errorf("recovered %d verdicts, workload has %d", total, len(f.verdicts))
	}
	wantAccepted := 0
	for _, v := range f.verdicts[:total] {
		if v {
			wantAccepted++
		}
	}
	if state.Accepted != wantAccepted {
		return 0, false, fmt.Errorf("recovered %d accepted of %d verdicts, want %d (not a prefix)",
			state.Accepted, total, wantAccepted)
	}
	// Invariant 1b: every acknowledged verdict survived.
	if total < acked {
		return 0, false, fmt.Errorf("recovered %d verdicts, %d were acknowledged durable", total, acked)
	}

	// Invariant 2: rebuild the store through the live recovery path —
	// Restore pushes the WAL uploads through the same ingestion code a
	// live accept takes — and compare the probe's features bit-for-bit
	// with the reference prefix.
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), state.Records)
	if err != nil {
		return 0, false, fmt.Errorf("recovery store: %w", err)
	}
	svc, _, cleanup, err := f.newService(p, store)
	if err != nil {
		return 0, false, err
	}
	defer cleanup()
	svc.Restore(state)
	if state.Empty() {
		return 0, true, nil
	}
	got, err := store.Features(f.probe, f.fcfg)
	if err != nil {
		return 0, false, fmt.Errorf("recovery features: %w", err)
	}
	want := f.features[state.Accepted]
	if len(got) != len(want) {
		return 0, false, fmt.Errorf("recovered feature dim %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return 0, false, fmt.Errorf("feature %d = %v, want %v (bits differ)", i, got[i], want[i])
		}
	}
	return state.Accepted, false, nil
}

// Run explores every crash point of the fixed workload. It returns an
// error describing the first invariant violation, annotated with the fault
// site that provoked it.
func Run(opts Options) (*Report, error) {
	if opts.Uploads <= 0 {
		opts.Uploads = 12
	}
	if opts.Points <= 0 {
		opts.Points = 20
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: Options.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	f, err := newFixture(opts)
	if err != nil {
		return nil, err
	}

	// Counting pass: run the workload fault-free on a recording filesystem
	// to enumerate the mutation sites.
	counter := faultfs.New(fsx.OS, faultfs.Options{})
	acked, err := f.runWorkload(filepath.Join(opts.Dir, "count"), counter)
	if err != nil {
		return nil, fmt.Errorf("chaos: counting pass: %w", err)
	}
	if acked != opts.Uploads {
		return nil, fmt.Errorf("chaos: counting pass acknowledged %d/%d uploads", acked, opts.Uploads)
	}
	plan := counter.Ops()
	rep := &Report{Sites: len(plan)}
	logf("chaos: %d fault sites, %d uploads (%d accepted in reference run)",
		rep.Sites, opts.Uploads, len(f.features)-1)

	for site := 1; site <= len(plan); site++ {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("site-%03d", site))
		fs := faultfs.New(fsx.OS, faultfs.Options{
			Seed:   opts.Seed ^ int64(site),
			FailAt: site,
			Mode:   faultfs.FaultTorn, // writes tear; other kinds plain-fail
			Crash:  true,
		})
		acked, err := f.runWorkload(dir, fs)
		if err != nil {
			return rep, fmt.Errorf("chaos: site %d (%s %s): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), err)
		}
		if !fs.Faulted() {
			return rep, fmt.Errorf("chaos: site %d (%s): fault never fired", site, plan[site-1].Kind)
		}
		accepted, empty, err := f.checkRecovery(dir, acked)
		if err != nil {
			return rep, fmt.Errorf("chaos: site %d (%s %s, acked %d): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), acked, err)
		}
		if empty {
			rep.EmptyRecoveries++
			if acked > 0 {
				return rep, fmt.Errorf("chaos: site %d: empty recovery after %d acknowledged uploads", site, acked)
			}
		}
		if accepted == len(f.features)-1 {
			rep.FullRecoveries++
		}
		if acked > rep.MaxAcked {
			rep.MaxAcked = acked
		}
	}
	logf("chaos: explored %d crash points: %d empty recoveries, %d full, max acked %d",
		rep.Sites, rep.EmptyRecoveries, rep.FullRecoveries, rep.MaxAcked)
	return rep, nil
}
