package chaos

// Trust-pipeline crash explorer. The batch explorer (chaos.go) proves the
// durability layer replays accepted uploads into the serving store
// bit-identically; this one turns the poisoning-resistant ingestion path
// (internal/trust) on, so every quarantine-store mutation — staging,
// corroboration, promotion, weight push — sits between the WAL frame and
// the serving store at every crash point. Three invariants extend the
// batch ones:
//
//  1. Promoted points survive: the recovered serving store answers the
//     feature probe bit-for-bit like a reference pipeline that ingested
//     the same accepted prefix and never crashed.
//  2. Quarantined points are never served pre-promotion: the recovered
//     serving store holds exactly the reference prefix's record count —
//     recovery re-stages pending points, it does not leak them.
//  3. The whole pipeline state (ledger, quarantine, drift, per-tile
//     provenance) recovers to the reference prefix exactly, compared via
//     the /v1/stats trust summary.
//
// The workload interleaves three contributor identities so corroboration
// (Quarantine.K = 2) promotes some points mid-workload while others are
// still pending at every crash point.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/trajectory"
	"trajforge/internal/trust"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// trustChaosConfig is the pipeline configuration the explorer runs:
// two-contributor corroboration with no trust bypass, and a weight push
// every other accepted upload so the θ2 table is hot at most crash points.
func trustChaosConfig() trust.Config {
	cfg := trust.DefaultConfig()
	cfg.Quarantine.K = 2
	cfg.Quarantine.PromoteTrust = 0.99
	cfg.WeightRefresh = 2
	return cfg
}

// trustFixture mirrors fixture with the trust pipeline enabled and the
// per-prefix reference extended to the serving-store size and the trust
// stats summary.
type trustFixture struct {
	opts      Options
	proj      *geo.Projection
	bootstrap []rssimap.Record
	model     *xgb.Model
	fcfg      rssimap.FeatureConfig
	uploads   []*wifi.Upload
	probs     []float64
	probe     *wifi.Upload
	verdicts  []bool
	features  [][]float64 // probe features indexed by accepted-upload count
	storeLens []int       // serving-store record count, same index
	trustSt   [][]byte    // /v1/stats trust summary (JSON), same index
}

// contributorOf names the workload's three colluding-free devices.
func contributorOf(i int) string { return fmt.Sprintf("dev-%c", 'a'+rune(i%3)) }

// retimeUpload shifts every fix by d so successive uploads advance the
// pipeline's event clock — recovery must reproduce ledger aging and
// quarantine timestamps from the replayed uploads alone.
func retimeUpload(u *wifi.Upload, d time.Duration) {
	pts := make([]trajectory.Point, len(u.Traj.Points))
	for i, p := range u.Traj.Points {
		pts[i] = trajectory.Point{Pos: p.Pos, Time: p.Time.Add(d)}
	}
	u.Traj = &trajectory.T{ID: u.Traj.ID, Mode: u.Traj.Mode, Points: pts}
}

func (f *trustFixture) newService(p *server.Persistence, store *rssimap.Store) (*server.Service, *boundClient, func(), error) {
	stub := &motionStub{prob: 0.9}
	rc, err := detect.NewReplayChecker(1.2)
	if err != nil {
		return nil, nil, nil, err
	}
	tcfg := trustChaosConfig()
	svc, err := server.New(server.Config{
		Projection:     f.proj,
		Motion:         stub,
		Replay:         rc,
		WiFi:           &detect.WiFiDetector{Store: store, Model: f.model, Features: f.fcfg},
		IngestAccepted: true,
		Trust:          &tcfg,
		Persist:        p,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ts := httptest.NewServer(svc.Handler())
	cleanup := func() {
		ts.Close()
		svc.Close()
	}
	return svc, &boundClient{client: server.NewClient(ts.URL, f.proj), stub: stub}, cleanup, nil
}

// trustSummary marshals the service's trust stats for exact comparison.
func trustSummary(svc *server.Service) ([]byte, error) {
	st := svc.Stats()
	if st.Trust == nil {
		return nil, fmt.Errorf("chaos: trust pipeline not active")
	}
	return json.Marshal(st.Trust)
}

// newTrustFixture trains the shared detector, builds the contributor
// workload, and runs the crash-free reference pass.
func newTrustFixture(opts Options) (*trustFixture, error) {
	f := &trustFixture{
		opts: opts,
		proj: geo.NewProjection(origin),
	}
	var err error
	if f.bootstrap, f.model, f.fcfg, err = trainFixture(opts.Seed, opts.Points); err != nil {
		return nil, err
	}

	f.uploads = make([]*wifi.Upload, opts.Uploads)
	f.probs = make([]float64, opts.Uploads)
	for i := range f.uploads {
		if f.uploads[i], err = walkUpload(opts.Seed+int64(800+i), opts.Points); err != nil {
			return nil, err
		}
		f.uploads[i].Contributor = contributorOf(i)
		retimeUpload(f.uploads[i], time.Duration(i)*10*time.Minute)
		f.probs[i] = 0.9
		if i%4 == 3 {
			f.probs[i] = 0.1
		}
	}
	if f.probe, err = walkUpload(opts.Seed+999, 30); err != nil {
		return nil, err
	}

	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return nil, err
	}
	svc, client, cleanup, err := f.newService(nil, store)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	record := func() error {
		want, err := store.Features(f.probe, f.fcfg)
		if err != nil {
			return err
		}
		ts, err := trustSummary(svc)
		if err != nil {
			return err
		}
		f.features = append(f.features, want)
		f.storeLens = append(f.storeLens, store.Len())
		f.trustSt = append(f.trustSt, ts)
		return nil
	}
	if err := record(); err != nil {
		return nil, err
	}
	f.verdicts = make([]bool, opts.Uploads)
	for i, u := range f.uploads {
		client.stub.prob = f.probs[i]
		v, err := client.client.Upload(u)
		if err != nil {
			return nil, fmt.Errorf("chaos: trust reference upload %d: %w", i, err)
		}
		f.verdicts[i] = v.Accepted
		if v.Accepted {
			if err := record(); err != nil {
				return nil, err
			}
		}
	}
	if n := len(f.features) - 1; n == 0 || n == opts.Uploads {
		return nil, fmt.Errorf("chaos: degenerate trust workload: %d/%d accepted", n, opts.Uploads)
	}
	// The workload must actually exercise the staging store: some points
	// promoted into serving, some still pending at the end — otherwise the
	// quarantine invariants are vacuous.
	var final trust.Stats
	if err := json.Unmarshal(f.trustSt[len(f.trustSt)-1], &final); err != nil {
		return nil, err
	}
	if final.Promoted == 0 || final.Pending == 0 {
		return nil, fmt.Errorf("chaos: trust workload promoted %d / pending %d, need both > 0",
			final.Promoted, final.Pending)
	}
	return f, nil
}

func (f *trustFixture) runWorkload(dir string, fs fsx.FS) (acked int, err error) {
	p, perr := server.OpenPersistence(dir, server.PersistOptions{FS: fs, SyncInterval: -1})
	if perr != nil {
		return 0, nil
	}
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return 0, err
	}
	_, client, cleanup, err := f.newService(p, store)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	compacted := p.Compact() == nil
	alive := compacted
	for i, u := range f.uploads {
		client.stub.prob = f.probs[i]
		v, uerr := client.client.Upload(u)
		if uerr != nil {
			return acked, fmt.Errorf("chaos: trust workload upload %d: %w", i, uerr)
		}
		if v.Accepted != f.verdicts[i] {
			return acked, fmt.Errorf("chaos: trust verdict %d = %v, want %v", i, v.Accepted, f.verdicts[i])
		}
		if alive && p.Flush() == nil {
			acked = i + 1
		} else {
			alive = false
		}
	}
	return acked, nil
}

func (f *trustFixture) checkRecovery(dir string, acked int) (accepted int, empty bool, err error) {
	p, err := server.OpenPersistence(dir, server.PersistOptions{SyncInterval: -1})
	if err != nil {
		return 0, false, fmt.Errorf("recovery open: %w", err)
	}
	state := p.Recovered()

	total := state.Accepted + state.Rejected
	if total > len(f.verdicts) {
		return 0, false, fmt.Errorf("recovered %d verdicts, workload has %d", total, len(f.verdicts))
	}
	wantAccepted := 0
	for _, v := range f.verdicts[:total] {
		if v {
			wantAccepted++
		}
	}
	if state.Accepted != wantAccepted {
		return 0, false, fmt.Errorf("recovered %d accepted of %d verdicts, want %d (not a prefix)",
			state.Accepted, total, wantAccepted)
	}
	if total < acked {
		return 0, false, fmt.Errorf("recovered %d verdicts, %d were acknowledged durable", total, acked)
	}

	store, err := rssimap.NewStore(rssimap.DefaultConfig(), state.Records)
	if err != nil {
		return 0, false, fmt.Errorf("recovery store: %w", err)
	}
	svc, _, cleanup, err := f.newService(p, store)
	if err != nil {
		return 0, false, err
	}
	defer cleanup()
	svc.Restore(state)
	if state.Empty() {
		return 0, true, nil
	}

	// Invariant 1: promoted points survive bit-identically — the probe's
	// feature vector over the recovered serving store matches the
	// reference prefix exactly, trust-weighted θ2 table included.
	got, err := store.Features(f.probe, f.fcfg)
	if err != nil {
		return 0, false, fmt.Errorf("recovery features: %w", err)
	}
	want := f.features[state.Accepted]
	if len(got) != len(want) {
		return 0, false, fmt.Errorf("recovered feature dim %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return 0, false, fmt.Errorf("feature %d = %v, want %v (bits differ)", i, got[i], want[i])
		}
	}

	// Invariant 2: quarantined points are never served pre-promotion —
	// the recovered serving store is exactly the reference prefix's size,
	// so recovery re-staged the pending points instead of leaking them.
	if store.Len() != f.storeLens[state.Accepted] {
		return 0, false, fmt.Errorf("recovered serving store holds %d records, reference prefix holds %d",
			store.Len(), f.storeLens[state.Accepted])
	}

	// Invariant 3: ledger, quarantine, drift, and per-tile provenance all
	// recover to the reference prefix exactly.
	ts, err := trustSummary(svc)
	if err != nil {
		return 0, false, err
	}
	if !bytes.Equal(ts, f.trustSt[state.Accepted]) {
		return 0, false, fmt.Errorf("recovered trust stats %s, want %s", ts, f.trustSt[state.Accepted])
	}
	return state.Accepted, false, nil
}

// RunTrust explores every crash point of the trust-pipeline workload.
func RunTrust(opts Options) (*Report, error) {
	if opts.Uploads <= 0 {
		opts.Uploads = 12
	}
	if opts.Points <= 0 {
		opts.Points = 20
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: Options.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	f, err := newTrustFixture(opts)
	if err != nil {
		return nil, err
	}

	counter := faultfs.New(fsx.OS, faultfs.Options{})
	acked, err := f.runWorkload(filepath.Join(opts.Dir, "count"), counter)
	if err != nil {
		return nil, fmt.Errorf("chaos: trust counting pass: %w", err)
	}
	if acked != opts.Uploads {
		return nil, fmt.Errorf("chaos: trust counting pass acknowledged %d/%d uploads", acked, opts.Uploads)
	}
	plan := counter.Ops()
	rep := &Report{Sites: len(plan)}
	logf("chaos: trust pipeline: %d fault sites, %d uploads (%d accepted in reference run)",
		rep.Sites, opts.Uploads, len(f.features)-1)

	for site := 1; site <= len(plan); site++ {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("site-%03d", site))
		fs := faultfs.New(fsx.OS, faultfs.Options{
			Seed:   opts.Seed ^ int64(site),
			FailAt: site,
			Mode:   faultfs.FaultTorn,
			Crash:  true,
		})
		acked, err := f.runWorkload(dir, fs)
		if err != nil {
			return rep, fmt.Errorf("chaos: trust site %d (%s %s): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), err)
		}
		if !fs.Faulted() {
			return rep, fmt.Errorf("chaos: trust site %d (%s): fault never fired", site, plan[site-1].Kind)
		}
		accepted, empty, err := f.checkRecovery(dir, acked)
		if err != nil {
			return rep, fmt.Errorf("chaos: trust site %d (%s %s, acked %d): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), acked, err)
		}
		if empty {
			rep.EmptyRecoveries++
			if acked > 0 {
				return rep, fmt.Errorf("chaos: trust site %d: empty recovery after %d acknowledged uploads", site, acked)
			}
		}
		if accepted == len(f.features)-1 {
			rep.FullRecoveries++
		}
		if acked > rep.MaxAcked {
			rep.MaxAcked = acked
		}
	}
	logf("chaos: trust exploration: %d crash points: %d empty recoveries, %d full, max acked %d",
		rep.Sites, rep.EmptyRecoveries, rep.FullRecoveries, rep.MaxAcked)
	return rep, nil
}
