// Coordinator crash-point explorer. The coordinator is the cluster's
// remaining single point of durability: it owns the canonical record log.
// This explorer puts THAT log on a crashing faultfs and kills the
// coordinator at every mutation site its own WAL performs — mid-batch,
// mid-checkpoint, mid-assignment-journal — while the shard nodes stay
// alive, then drives a standby takeover:
//
//  1. Fail closed: once the coordinator's journal dies, Add acks nothing
//     more. The acked record count is always a whole-batch prefix of the
//     workload, and queries against the degraded coordinator either match
//     the reference bits for exactly that prefix or refuse — never a
//     partial batch, never wrong bits.
//
//  2. Zero seed-corpus replay: a fresh coordinator over the same directory
//     (the standby) recovers the canonical log and assignment from the
//     coordinator WAL alone, fences a higher epoch past the live nodes,
//     and resyncs their tails from the recovered log. Only batches the
//     journal never captured are re-fed.
//
//  3. Epochs are monotonic across the takeover: the standby's epoch is
//     strictly above every epoch the crashed incarnation journaled or any
//     node accepted.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/wifi"
)

// CoordinatorOptions configures one coordinator exploration run.
type CoordinatorOptions struct {
	// Seed drives the record workload and torn-write prefixes.
	Seed int64
	// Records is the workload length. Default 200.
	Records int
	// Dir is the scratch directory; each crash point gets a subdirectory.
	Dir string
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

// CoordinatorReport summarises a coordinator exploration.
type CoordinatorReport struct {
	// Sites is the number of coordinator-WAL crash points explored.
	Sites int
	// FailedClosed counts sites where the dying journal caused at least one
	// batch to be refused (acked < workload) — proof Add fails closed.
	FailedClosed int
	// BootstrapDeaths counts sites where the coordinator crashed before it
	// even came up (NewStore failed); the standby must still take over.
	BootstrapDeaths int
	// DegradedProbeMatches counts sites where probes against the degraded
	// coordinator succeeded and matched the acked-prefix reference bits.
	DegradedProbeMatches int
	// TailBatches totals the batches re-fed after takeover across sites —
	// everything else came back from the coordinator WAL.
	TailBatches int
}

// coordinatorFixture is the deterministic workload shared by every crash
// point, with a bit-exact reference for every whole-batch prefix (the
// degraded coordinator serves a prefix, and its answers must match the
// reference for exactly that prefix).
type coordinatorFixture struct {
	opts      CoordinatorOptions
	cfg       shardstore.Config
	fcfg      rssimap.FeatureConfig
	batches   [][]rssimap.Record
	prefixLen []int // prefixLen[k] = records in the first k batches
	probes    []*wifi.Upload
	refAt     [][][]float64 // refAt[k][i] = probe i's features over the first k batches
	migTile   [2]int
	migTo     string
}

func newCoordinatorFixture(opts CoordinatorOptions) (*coordinatorFixture, error) {
	f := &coordinatorFixture{
		opts: opts,
		cfg:  shardstore.DefaultConfig(),
		fcfg: rssimap.DefaultFeatureConfig(),
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	all := clusterRecords(rng, opts.Records)
	const batch = 40
	f.prefixLen = []int{0}
	for off := 0; off < len(all); off += batch {
		end := off + batch
		if end > len(all) {
			end = len(all)
		}
		f.batches = append(f.batches, all[off:end])
		f.prefixLen = append(f.prefixLen, end)
	}
	if len(f.batches) <= migrateAt+1 {
		return nil, fmt.Errorf("chaos: workload of %d records too short for a mid-run migration", len(all))
	}
	for i := 0; i < 2; i++ {
		f.probes = append(f.probes, clusterProbe(rng, 12))
	}
	for k := 0; k <= len(f.batches); k++ {
		ref, err := shardstore.New(f.cfg, all[:f.prefixLen[k]])
		if err != nil {
			return nil, err
		}
		var feats [][]float64
		for _, u := range f.probes {
			feat, err := ref.Features(u, f.fcfg)
			if err != nil {
				return nil, err
			}
			feats = append(feats, feat)
		}
		f.refAt = append(f.refAt, feats)
	}
	return f, nil
}

// ackedBatches maps an acked record count back to a whole-batch prefix
// index, or errors: a partial batch in the canonical log would mean the
// coordinator acked half an ingest.
func (f *coordinatorFixture) ackedBatches(n int) (int, error) {
	for k, plen := range f.prefixLen {
		if plen == n {
			return k, nil
		}
	}
	return 0, fmt.Errorf("acked record count %d is not a whole-batch prefix", n)
}

// coordinatorSite runs one crash point: live nodes, a durable coordinator
// on the faulting filesystem, the workload, degraded-window probes, then a
// standby takeover over the same directory on a healthy filesystem.
func (f *coordinatorFixture) coordinatorSite(dir string, vfs fsx.FS, rep *CoordinatorReport) error {
	nodes := make(map[string]*cluster.Node, 2)
	addrs := make(map[string]string, 2)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, id := range []string{"a", "b"} {
		node, err := cluster.NewNode(id, f.cfg, cluster.NodeOptions{})
		if err != nil {
			return err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	coordDir := filepath.Join(dir, "coord")
	retry := &resilience.RetryPolicy{MaxAttempts: 1}

	acked := 0
	var crashedEpoch uint64
	store, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		Dir: coordDir, FS: vfs, Retry: retry,
	})
	if err != nil {
		// The coordinator died at bootstrap — before serving anything. The
		// standby takeover below must still come up over whatever survived.
		rep.BootstrapDeaths++
	} else {
		for i, b := range f.batches {
			store.Add(b)
			if i == migrateAt && f.migTo != "" {
				// Outcome intentionally unchecked: a dying journal degrades
				// the coordinator but must never corrupt the handoff.
				_ = store.Migrate(f.migTile, f.migTo)
			}
		}
		acked = store.Len()
		k, err := f.ackedBatches(acked)
		if err != nil {
			store.Close()
			return err
		}
		if acked < f.prefixLen[len(f.batches)] {
			rep.FailedClosed++
			if deg, reason := store.HealthStatus(); !deg || !strings.Contains(reason, "wal") {
				store.Close()
				return fmt.Errorf("coordinator refused batches but health is not wal-degraded (degraded=%v reason=%q)", deg, reason)
			}
		}
		// Degraded-window probes: answers must match the ACKED prefix
		// reference exactly, or refuse. Never partial, never the full-set
		// bits for records that were refused.
		match := true
		for i, u := range f.probes {
			feat, err := store.Features(u, f.fcfg)
			if err != nil {
				match = false
				break
			}
			if !sameBits(feat, f.refAt[k][i]) {
				store.Close()
				return fmt.Errorf("degraded probe %d diverged from acked-prefix reference bits (acked %d)", i, acked)
			}
		}
		if match {
			rep.DegradedProbeMatches++
		}
		crashedEpoch = store.Assignment().Epoch
		store.Close()
	}

	// Epochs the live nodes accepted from the crashed incarnation — the
	// floor the standby must fence above. Read before the standby pushes
	// its own assignment.
	var maxNodeEpoch uint64
	for _, n := range nodes {
		if e := n.Epoch(); e > maxNodeEpoch {
			maxNodeEpoch = e
		}
	}

	// Standby takeover: same directory, healthy filesystem, nodes still
	// live. Recovery must come from the coordinator WAL, not the seed
	// corpus — only batches the journal never captured are re-fed.
	standby, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		Dir: coordDir, Retry: retry,
	})
	if err != nil {
		return fmt.Errorf("standby takeover: %w", err)
	}
	defer standby.Close()

	recovered := standby.Len()
	if recovered < acked {
		return fmt.Errorf("standby recovered %d records from the coordinator WAL, below the %d acked", recovered, acked)
	}
	k, err := f.ackedBatches(recovered)
	if err != nil {
		return fmt.Errorf("standby recovery: %w", err)
	}
	if e := standby.Assignment().Epoch; e <= maxNodeEpoch || (crashedEpoch > 0 && e <= crashedEpoch) {
		return fmt.Errorf("standby epoch %d does not fence above node epoch %d and crashed epoch %d", e, maxNodeEpoch, crashedEpoch)
	}

	// Re-feed ONLY the un-journaled tail.
	for _, b := range f.batches[k:] {
		standby.Add(b)
		rep.TailBatches++
	}
	if standby.Len() != f.prefixLen[len(f.batches)] {
		return fmt.Errorf("standby serves %d records after tail feed, want %d", standby.Len(), f.prefixLen[len(f.batches)])
	}
	for i, u := range f.probes {
		feat, err := standby.Features(u, f.fcfg)
		if err != nil {
			return fmt.Errorf("standby probe %d: %w", i, err)
		}
		if !sameBits(feat, f.refAt[len(f.batches)][i]) {
			return fmt.Errorf("standby probe %d diverged from reference bits", i)
		}
	}
	return nil
}

// RunCoordinator explores coordinator-WAL crash points: a counting pass on
// a recording filesystem enumerates every mutation the coordinator's own
// durability performs, then each site is replayed with a crashing
// torn-write fault and driven through fail-closed, degraded-window, and
// standby-takeover invariants.
func RunCoordinator(opts CoordinatorOptions) (*CoordinatorReport, error) {
	if opts.Records == 0 {
		opts.Records = 200
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: CoordinatorOptions.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := newCoordinatorFixture(opts)
	if err != nil {
		return nil, err
	}

	// Dry pass on a recording, fault-free filesystem: fixes the mid-run
	// migration every site replays and enumerates the mutation plan.
	counter := faultfs.New(fsx.OS, faultfs.Options{})
	if err := f.dryRun(filepath.Join(opts.Dir, "count"), counter); err != nil {
		return nil, fmt.Errorf("chaos: coordinator counting pass: %w", err)
	}
	plan := counter.Ops()
	logf("chaos: coordinator workload: %d records in %d batches, %d coordinator mutation sites, migrating tile %v to %s",
		opts.Records, len(f.batches), len(plan), f.migTile, f.migTo)

	rep := &CoordinatorReport{}
	for site := 1; site <= len(plan); site++ {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("site-%03d", site))
		vfs := faultfs.New(fsx.OS, faultfs.Options{
			Seed:   opts.Seed ^ int64(site),
			FailAt: site,
			Mode:   faultfs.FaultTorn,
			Crash:  true,
		})
		if err := f.coordinatorSite(dir, vfs, rep); err != nil {
			return rep, fmt.Errorf("chaos: coordinator site %d (%s %s): %w",
				site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), err)
		}
		if !vfs.Faulted() {
			return rep, fmt.Errorf("chaos: coordinator site %d: fault never fired", site)
		}
		rep.Sites++
	}
	logf("chaos: explored %d coordinator crash points: %d failed closed, %d bootstrap deaths, %d degraded probes matched, %d tail batches re-fed",
		rep.Sites, rep.FailedClosed, rep.BootstrapDeaths, rep.DegradedProbeMatches, rep.TailBatches)
	return rep, nil
}

// dryRun executes the workload once against a healthy durable coordinator
// to fix the migration target and record the coordinator's mutation plan.
func (f *coordinatorFixture) dryRun(dir string, vfs fsx.FS) error {
	nodes := make(map[string]*cluster.Node, 2)
	addrs := make(map[string]string, 2)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, id := range []string{"a", "b"} {
		node, err := cluster.NewNode(id, f.cfg, cluster.NodeOptions{})
		if err != nil {
			return err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}
	store, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		Dir: filepath.Join(dir, "coord"), FS: vfs,
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		return err
	}
	defer store.Close()
	for i, b := range f.batches {
		store.Add(b)
		if i == migrateAt {
			tile, ok := store.BusiestTile()
			if !ok {
				return errors.New("no busiest tile")
			}
			f.migTile = tile
			owner := store.Assignment().Owner(tile)
			for _, id := range []string{"a", "b"} {
				if id != owner {
					f.migTo = id
				}
			}
			if err := store.Migrate(tile, f.migTo); err != nil {
				return fmt.Errorf("dry-run migration: %w", err)
			}
		}
	}
	if store.Len() != f.prefixLen[len(f.batches)] {
		return fmt.Errorf("dry run acked %d records, want %d", store.Len(), f.prefixLen[len(f.batches)])
	}
	for i, u := range f.probes {
		feat, err := store.Features(u, f.fcfg)
		if err != nil {
			return err
		}
		if !sameBits(feat, f.refAt[len(f.batches)][i]) {
			return fmt.Errorf("dry-run probe %d diverged from reference bits", i)
		}
	}
	return nil
}
