// Replicated-cluster crash-point explorer: the kill-a-replica sibling of
// RunCluster. The same seeded workload runs against a THREE-node cluster
// with tile replication on — every tile has a primary and a follower, and
// ingest dual-writes both — while a mid-run migration moves the busiest
// tile onto the node that is neither its primary nor its follower. The
// explorer kills, in turn, the busiest tile's primary and its follower, at
// every storage mutation site the victim performs, then drives the repair
// path (Rereplicate) and recovery through the invariants:
//
//  1. Queries during the failure window return the correct answer or a
//     typed refusal, never wrong or partial bits: a probe that succeeds —
//     served by the primary, or failed over to the follower — must match
//     the single-process reference bit-for-bit.
//
//  2. Re-replication restores redundancy without an operator: after
//     Rereplicate(victim), probes are served entirely by survivors and
//     still match the reference bits.
//
//  3. Acked data recovers bit-identically: restart every node from its
//     surviving files, fence a fresh coordinator, replay the canonical
//     log — all probes match, and epochs stay monotonic.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"time"

	"trajforge/internal/cluster"
	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/wifi"
)

// ReplicatedOptions configures one replicated-cluster exploration run.
type ReplicatedOptions struct {
	// Seed drives the record workload and torn-write prefixes.
	Seed int64
	// Records is the workload length. Default 200.
	Records int
	// Dir is the scratch directory; each crash point gets a subdirectory.
	Dir string
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

// ReplicatedReport summarises a replicated-cluster exploration.
type ReplicatedReport struct {
	// Sites is the total number of crash points explored across both
	// victim roles (tile primary, tile follower).
	Sites int
	// Committed and Aborted count how the mid-workload migration ended.
	Committed int
	Aborted   int
	// FailoverMatches counts crash points where the pre-repair probes all
	// succeeded (failing over to surviving replicas as needed) and matched
	// the reference bits.
	FailoverMatches int
	// RepairMatches counts crash points where the post-Rereplicate probes
	// all succeeded and matched the reference bits.
	RepairMatches int
	// Repairs counts completed Rereplicate calls across crash points.
	Repairs uint64
	// ReplicaReads totals follower-served queries across crash points —
	// proof the failover path actually ran.
	ReplicaReads uint64
}

// replicatedFixture is the deterministic workload shared by every crash
// point.
type replicatedFixture struct {
	opts    ReplicatedOptions
	cfg     shardstore.Config
	fcfg    rssimap.FeatureConfig
	batches [][]rssimap.Record
	probes  []*wifi.Upload
	refFeat [][]float64
	migTile [2]int
	primary string // migTile's pre-migration owner
	follow  string // migTile's pre-migration follower
	migTo   string // migration target: neither primary nor follower
}

var replicatedIDs = []string{"a", "b", "c"}

func newReplicatedFixture(opts ReplicatedOptions) (*replicatedFixture, error) {
	f := &replicatedFixture{
		opts: opts,
		cfg:  shardstore.DefaultConfig(),
		fcfg: rssimap.DefaultFeatureConfig(),
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	all := clusterRecords(rng, opts.Records)
	const batch = 40
	for off := 0; off < len(all); off += batch {
		end := off + batch
		if end > len(all) {
			end = len(all)
		}
		f.batches = append(f.batches, all[off:end])
	}
	if len(f.batches) <= migrateAt+1 {
		return nil, fmt.Errorf("chaos: workload of %d records too short for a mid-run migration", len(all))
	}
	for i := 0; i < 2; i++ {
		f.probes = append(f.probes, clusterProbe(rng, 12))
	}

	ref, err := shardstore.New(f.cfg, all)
	if err != nil {
		return nil, err
	}
	for _, u := range f.probes {
		feat, err := ref.Features(u, f.fcfg)
		if err != nil {
			return nil, err
		}
		f.refFeat = append(f.refFeat, feat)
	}

	// Dry run on memory-only nodes to fix (tile, primary, follower, target).
	res, err := f.run("", "", nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: replicated dry run: %w", err)
	}
	if res.migErr != nil {
		return nil, fmt.Errorf("chaos: replicated dry-run migration: %w", res.migErr)
	}
	if res.preErr != nil || res.postErr != nil {
		return nil, fmt.Errorf("chaos: replicated dry-run probe: pre %v post %v", res.preErr, res.postErr)
	}
	f.migTile, f.primary, f.follow, f.migTo = res.migTile, res.primary, res.follow, res.migTo
	if f.follow == "" {
		return nil, errors.New("chaos: replicated dry run produced no follower")
	}
	return f, nil
}

// replicatedRunResult is what one workload execution observed.
type replicatedRunResult struct {
	migTile          [2]int
	primary, follow  string
	migTo            string
	migErr           error
	preErr, postErr  error
	preOK, postOK    bool
	repairErr        error
	repairs          uint64
	replicaReads     uint64
	epoch            uint64
}

// run executes the fixed workload: ingest with dual-writes, a mid-run
// migration, probes against the degraded cluster (failover window), a
// Rereplicate of the victim, and probes again against the repaired world.
// With dir == "" the nodes are memory-only (the dry run); otherwise each
// node journals under dir/<id>, and the victim's filesystem is vfs.
func (f *replicatedFixture) run(dir, victim string, vfs fsx.FS) (*replicatedRunResult, error) {
	nodes := make(map[string]*cluster.Node, len(replicatedIDs))
	addrs := make(map[string]string, len(replicatedIDs))
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, id := range replicatedIDs {
		var nopts cluster.NodeOptions
		if dir != "" {
			nopts.Dir = filepath.Join(dir, id)
			if id == victim {
				nopts.FS = vfs
			}
		}
		node, err := cluster.NewNode(id, f.cfg, nopts)
		if err != nil {
			if id == victim {
				// Crashed before its storage opened: reserve a dead address so
				// the coordinator sees connection-refused.
				ln, lerr := net.Listen("tcp", "127.0.0.1:0")
				if lerr != nil {
					return nil, lerr
				}
				addrs[id] = ln.Addr().String()
				ln.Close()
				continue
			}
			return nil, err
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		addrs[id] = addr.String()
	}

	store, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		Replicate: true,
		Retry:     &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		return nil, err
	}
	defer store.Close()

	res := &replicatedRunResult{}
	for i, b := range f.batches {
		store.Add(b)
		if i == migrateAt {
			if f.primary == "" {
				// Dry run: discover the (tile, primary, follower, target) every
				// crash point replays.
				tile, ok := store.BusiestTile()
				if !ok {
					return nil, errors.New("no busiest tile")
				}
				assign := store.Assignment()
				res.migTile = tile
				res.primary = assign.Owner(tile)
				res.follow = assign.Follower(tile)
				for _, id := range replicatedIDs {
					if id != res.primary && id != res.follow {
						res.migTo = id
					}
				}
				res.migErr = store.Migrate(tile, res.migTo)
			} else {
				res.migTile, res.primary, res.follow, res.migTo = f.migTile, f.primary, f.follow, f.migTo
				res.migErr = store.Migrate(f.migTile, f.migTo)
			}
		}
	}

	// Failure-window probes: a query that succeeds — served by the primary
	// or failed over to the follower — must match the reference bits.
	// Errors are tolerated (a typed refusal is a correct answer); wrong
	// bits are not.
	res.preOK = true
	for i, u := range f.probes {
		feat, err := store.Features(u, f.fcfg)
		if err != nil {
			res.preErr = err
			res.preOK = false
			break
		}
		if !sameBits(feat, f.refFeat[i]) {
			return nil, fmt.Errorf("failover probe %d diverged from reference bits", i)
		}
	}

	// Background repair: re-replicate the victim's tiles onto survivors.
	if victim != "" {
		res.repairErr = store.Rereplicate(victim)
	}

	// Post-repair probes: survivors alone must serve reference bits.
	res.postOK = true
	for i, u := range f.probes {
		feat, err := store.Features(u, f.fcfg)
		if err != nil {
			res.postErr = err
			res.postOK = false
			break
		}
		if !sameBits(feat, f.refFeat[i]) {
			return nil, fmt.Errorf("post-repair probe %d diverged from reference bits", i)
		}
	}

	st := store.Stats()
	res.repairs = st.Repairs
	res.replicaReads = st.ReplicaReads
	res.epoch = st.Epoch
	return res, nil
}

// recoverAndCheck restarts all three nodes from their surviving files,
// fences a fresh replicated coordinator, replays the canonical log, and
// asserts bit-identity plus epoch monotonicity.
func (f *replicatedFixture) recoverAndCheck(dir string, crashed *replicatedRunResult) error {
	nodes := make(map[string]*cluster.Node, len(replicatedIDs))
	addrs := make(map[string]string, len(replicatedIDs))
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	var maxNodeEpoch uint64
	for _, id := range replicatedIDs {
		node, err := cluster.NewNode(id, f.cfg, cluster.NodeOptions{Dir: filepath.Join(dir, id)})
		if err != nil {
			return fmt.Errorf("restart node %s: %w", id, err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		nodes[id] = node
		addrs[id] = addr.String()
		if e := node.Epoch(); e > crashed.epoch {
			return fmt.Errorf("node %s recovered epoch %d above the coordinator's last issued %d", id, e, crashed.epoch)
		} else if e > maxNodeEpoch {
			maxNodeEpoch = e
		}
	}

	store, err := cluster.NewStore(cluster.Options{
		Shard: f.cfg, Nodes: addrs, CallTimeout: 5 * time.Second,
		Replicate: true,
		Retry:     &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		return err
	}
	defer store.Close()

	if e := store.Assignment().Epoch; e <= maxNodeEpoch {
		return fmt.Errorf("new coordinator epoch %d does not fence above surviving node epoch %d", e, maxNodeEpoch)
	}

	for _, b := range f.batches {
		store.Add(b)
	}
	for i, u := range f.probes {
		feat, err := store.Features(u, f.fcfg)
		if err != nil {
			return fmt.Errorf("recovered probe %d: %w", i, err)
		}
		if !sameBits(feat, f.refFeat[i]) {
			return fmt.Errorf("recovered probe %d diverged from reference bits", i)
		}
	}
	return nil
}

// RunClusterReplicated explores kill-a-replica crash points: for the
// busiest tile's primary and then its follower, it records every storage
// mutation the victim performs during the fixed workload, then re-runs the
// workload once per site with a crashing torn-write fault at that site and
// drives failover, repair, and recovery through the invariants above.
func RunClusterReplicated(opts ReplicatedOptions) (*ReplicatedReport, error) {
	if opts.Records == 0 {
		opts.Records = 200
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: ReplicatedOptions.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := newReplicatedFixture(opts)
	if err != nil {
		return nil, err
	}
	logf("chaos: replicated workload: %d records in %d batches, tile %v primary %s follower %s migrating to %s",
		opts.Records, len(f.batches), f.migTile, f.primary, f.follow, f.migTo)

	rep := &ReplicatedReport{}
	for _, victim := range []string{f.primary, f.follow} {
		role := "primary"
		if victim == f.follow {
			role = "follower"
		}
		counter := faultfs.New(fsx.OS, faultfs.Options{})
		countDir := filepath.Join(opts.Dir, "count-"+victim)
		res, err := f.run(countDir, victim, counter)
		if err != nil {
			return nil, fmt.Errorf("chaos: replicated counting pass (victim %s): %w", victim, err)
		}
		if res.migErr != nil {
			return nil, fmt.Errorf("chaos: replicated counting-pass migration (victim %s): %w", victim, res.migErr)
		}
		plan := counter.Ops()
		logf("chaos: victim %s (%s): %d mutation sites", victim, role, len(plan))

		for site := 1; site <= len(plan); site++ {
			dir := filepath.Join(opts.Dir, fmt.Sprintf("%s-site-%03d", victim, site))
			vfs := faultfs.New(fsx.OS, faultfs.Options{
				Seed:   opts.Seed ^ int64(site),
				FailAt: site,
				Mode:   faultfs.FaultTorn,
				Crash:  true,
			})
			res, err := f.run(dir, victim, vfs)
			if err != nil {
				return rep, fmt.Errorf("chaos: replicated victim %s site %d (%s %s): %w",
					victim, site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), err)
			}
			if !vfs.Faulted() {
				return rep, fmt.Errorf("chaos: replicated victim %s site %d: fault never fired", victim, site)
			}
			rep.Sites++
			if res.migErr != nil {
				rep.Aborted++
			} else {
				rep.Committed++
			}
			if res.preOK {
				rep.FailoverMatches++
			}
			if res.postOK {
				rep.RepairMatches++
			}
			rep.Repairs += res.repairs
			rep.ReplicaReads += res.replicaReads
			if err := f.recoverAndCheck(dir, res); err != nil {
				return rep, fmt.Errorf("chaos: replicated victim %s site %d (%s %s, migration err %v): %w",
					victim, site, plan[site-1].Kind, filepath.Base(plan[site-1].Path), res.migErr, err)
			}
		}
	}
	logf("chaos: explored %d replicated crash points: %d committed, %d aborted, %d failover matches, %d repair matches, %d replica reads",
		rep.Sites, rep.Committed, rep.Aborted, rep.FailoverMatches, rep.RepairMatches, rep.ReplicaReads)
	return rep, nil
}
