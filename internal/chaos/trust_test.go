package chaos

import "testing"

// TestTrustCrashPointExploration crashes the trust-pipeline workload at
// every filesystem mutation site. Every quarantine-store mutation —
// staging, corroboration, promotion, weight push — happens between the
// WAL frame and the serving store, so each crash point checks that
// promoted points survive bit-identically, quarantined points are never
// served pre-promotion, and the full pipeline state (ledger, quarantine,
// drift, per-tile provenance) recovers to the reference prefix.
func TestTrustCrashPointExploration(t *testing.T) {
	rep, err := RunTrust(Options{Seed: 1, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 50 {
		t.Fatalf("explored %d crash points, want >= 50", rep.Sites)
	}
	if rep.EmptyRecoveries == 0 {
		t.Fatal("no crash point recovered to the empty state")
	}
	if rep.FullRecoveries == 0 {
		t.Fatal("no crash point recovered the full accepted ledger")
	}
	if rep.MaxAcked == 0 {
		t.Fatal("no crash point acknowledged any upload before dying")
	}
}
