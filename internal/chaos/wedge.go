package chaos

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
)

// WedgeReport summarises one wedge-mid-workload run.
type WedgeReport struct {
	// Acked is the number of uploads whose durability barrier succeeded;
	// at the end of a run it must equal the workload length.
	Acked int
	// WedgedAccepted counts uploads that were still acknowledged with 200
	// between the wedge and the breaker trip — recorded in memory, their
	// WAL frames lost, repaired by the heal compaction.
	WedgedAccepted int
	// Shed counts upload attempts refused with 503 while degraded.
	Shed int
	// Opens/Closes are the breaker's counters at the end of the run;
	// Opens > Closes means the breaker re-opened on failed probes while
	// the disk was still wedged.
	Opens  int64
	Closes int64
}

// RunWedge drives the fixed workload into a provider whose filesystem is
// wedged (reversibly — writes fail, reads work) partway through, and
// asserts the full degrade/heal cycle:
//
//  1. The persistence breaker opens on the first failed append and the
//     service goes degraded: /v1/health answers 503 and uploads are shed
//     with 503 + Retry-After instead of being acked non-durably.
//  2. While the disk stays wedged, half-open probes fail and the breaker
//     re-opens — the service never flaps back to ready on hope alone.
//  3. After the disk heals, a probe compaction commits a snapshot of the
//     complete in-memory state (repairing any frames lost around the
//     wedge), the breaker closes, and the workload finishes with every
//     upload acknowledged durable.
//  4. A recovery pass with a clean filesystem finds every acknowledged
//     verdict and bit-identical features — zero acked-verdict loss.
func RunWedge(opts Options) (*WedgeReport, error) {
	if opts.Uploads <= 0 {
		opts.Uploads = 12
	}
	if opts.Points <= 0 {
		opts.Points = 20
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: Options.Dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := newFixture(opts)
	if err != nil {
		return nil, err
	}

	const cooldown = 40 * time.Millisecond
	ffs := faultfs.New(fsx.OS, faultfs.Options{})
	p, err := server.OpenPersistence(opts.Dir, server.PersistOptions{
		FS: ffs, SyncInterval: -1,
		Breaker: &resilience.BreakerConfig{Cooldown: cooldown},
	})
	if err != nil {
		return nil, err
	}
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), f.bootstrap)
	if err != nil {
		return nil, err
	}
	svc, client, cleanup, err := f.newService(p, store)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if err := p.Compact(); err != nil {
		return nil, fmt.Errorf("chaos: bootstrap snapshot: %w", err)
	}

	rep := &WedgeReport{}
	wedgeAt := opts.Uploads / 3
	healAt := 2 * opts.Uploads / 3

	// attempt sends upload i and accounts for the outcome. A 503 shed is
	// legal only while the wedge is up (allowShed): it must be retryable
	// with a Retry-After hint, and the caller replays it after the heal so
	// the verdict ledger stays exactly the reference sequence.
	attempt := func(i int, allowShed bool) (shed bool, err error) {
		v, uerr := f.uploadAs(client, f.uploads[i], f.probs[i])
		if uerr != nil {
			var se *server.StatusError
			if !errors.As(uerr, &se) || se.Code != http.StatusServiceUnavailable || !allowShed {
				return false, fmt.Errorf("chaos: upload %d: %w", i, uerr)
			}
			if !se.Retryable() || se.RetryAfter <= 0 {
				return false, fmt.Errorf("chaos: upload %d shed without retry hint: %v", i, se)
			}
			rep.Shed++
			return true, nil
		}
		if v.Accepted != f.verdicts[i] {
			return false, fmt.Errorf("chaos: verdict %d = %v, want %v", i, v.Accepted, f.verdicts[i])
		}
		if p.Flush() == nil {
			rep.Acked++
		} else {
			// Acked at the HTTP layer before the breaker tripped, but the
			// durability barrier refused: recorded in memory, repaired by
			// the heal compaction.
			rep.WedgedAccepted++
		}
		return false, nil
	}

	// Sheds are contiguous (from breaker trip to heal) and nothing else is
	// recorded while degraded, so replaying them in order before resuming
	// reproduces the reference sequence exactly.
	var pending []int
	for i := 0; i < len(f.uploads); i++ {
		if i == wedgeAt {
			logf("chaos: wedging filesystem before upload %d", i)
			ffs.Wedge()
		}
		if i == healAt {
			// Keep the wedge up across at least one cooldown so a half-open
			// probe fails against the dead disk and re-opens the breaker,
			// then heal and wait for the probe compaction to close it.
			if err := awaitDegraded(client.client, cooldown); err != nil {
				return rep, err
			}
			time.Sleep(2 * cooldown)
			logf("chaos: healing filesystem before upload %d", i)
			ffs.Heal()
			if err := awaitReady(client.client, cooldown); err != nil {
				return rep, err
			}
			for _, j := range pending {
				if shed, err := attempt(j, false); err != nil || shed {
					return rep, fmt.Errorf("chaos: replay of shed upload %d failed: %w", j, err)
				}
			}
			pending = nil
		}
		shed, err := attempt(i, i >= wedgeAt && i < healAt)
		if err != nil {
			return rep, err
		}
		if shed {
			pending = append(pending, i)
		}
	}

	// Every shed upload was replayed to a verdict above, so the ledger
	// holds the full reference sequence and one final barrier acks it all.
	if err := p.Flush(); err != nil {
		return rep, fmt.Errorf("chaos: final barrier failed after heal: %w", err)
	}
	rep.Acked = opts.Uploads

	st := svc.Stats()
	ps := st.Persistence
	if ps == nil || ps.Breaker == nil {
		return rep, fmt.Errorf("chaos: breaker stats missing")
	}
	rep.Opens, rep.Closes = ps.Breaker.Opens, ps.Breaker.Closes
	if rep.Opens < 1 || rep.Closes < 1 || ps.Breaker.State != "closed" {
		return rep, fmt.Errorf("chaos: breaker never cycled: %+v", ps.Breaker)
	}
	if ps.Degraded || ps.UnhealedErrors != 0 {
		return rep, fmt.Errorf("chaos: persistence still degraded after heal: %+v", ps)
	}
	if rep.Shed == 0 {
		return rep, fmt.Errorf("chaos: wedge produced no degraded sheds")
	}
	cleanup() // final snapshot on the healed FS before the recovery pass

	// Recovery with a clean filesystem: all acknowledged verdicts present,
	// features bit-identical to the reference run.
	accepted, empty, err := f.checkRecovery(opts.Dir, rep.Acked)
	if err != nil {
		return rep, fmt.Errorf("chaos: wedge recovery: %w", err)
	}
	if empty || accepted != len(f.features)-1 {
		return rep, fmt.Errorf("chaos: wedge recovery incomplete: accepted %d, want %d",
			accepted, len(f.features)-1)
	}
	logf("chaos: wedge cycle complete: %d acked, %d accepted-unflushed, %d shed, breaker %d opens / %d closes",
		rep.Acked, rep.WedgedAccepted, rep.Shed, rep.Opens, rep.Closes)
	return rep, nil
}

// awaitDegraded polls /v1/health until it reports degraded (the breaker
// tripped on the wedged disk).
func awaitDegraded(c *server.Client, cooldown time.Duration) error {
	deadline := time.Now().Add(100 * cooldown)
	for time.Now().Before(deadline) {
		h, err := c.FetchHealth()
		if err != nil {
			return fmt.Errorf("chaos: health poll: %w", err)
		}
		if h.Degraded {
			return nil
		}
		time.Sleep(cooldown / 8)
	}
	return fmt.Errorf("chaos: health never reported degraded")
}

// awaitReady polls /v1/health until the breaker has closed again.
func awaitReady(c *server.Client, cooldown time.Duration) error {
	deadline := time.Now().Add(100 * cooldown)
	for time.Now().Before(deadline) {
		h, err := c.FetchHealth()
		if err != nil {
			return fmt.Errorf("chaos: health poll: %w", err)
		}
		if h.Ready && !h.Degraded {
			return nil
		}
		time.Sleep(cooldown / 8)
	}
	return fmt.Errorf("chaos: health never recovered after heal")
}
