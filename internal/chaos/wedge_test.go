package chaos

import "testing"

// TestWedgeMidWorkload wedges the filesystem partway through the fixed
// workload and asserts the full degrade/heal cycle: the breaker opens
// within one durability barrier, the service sheds with 503 + Retry-After
// instead of acking non-durably, failed probes keep it open while the
// disk stays dead, the heal compaction closes it, and recovery finds
// every acknowledged verdict — zero acked-verdict loss.
func TestWedgeMidWorkload(t *testing.T) {
	rep, err := RunWedge(Options{Seed: 1, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("wedge produced no degraded sheds")
	}
	if rep.Acked != 12 {
		t.Fatalf("acked %d of 12 uploads after heal", rep.Acked)
	}
	if rep.Opens < 1 || rep.Closes < 1 {
		t.Fatalf("breaker never cycled: %+v", rep)
	}
	// The wedge stays up across at least one cooldown, so at least one
	// half-open probe must have failed and re-opened the breaker.
	if rep.Opens < 2 {
		t.Fatalf("no probe failed against the wedged disk: %+v", rep)
	}
}
