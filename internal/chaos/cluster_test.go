package chaos

import "testing"

// TestClusterCrashPointExploration kills a shard node — migration source,
// then migration target — at every storage mutation it performs during a
// workload with a live tile migration in the middle. RunCluster itself
// asserts the recovery invariants (acked records survive bit-identical, no
// split-brain answers, monotonic epochs); the test asserts the exploration
// covered both sides of the migration protocol.
func TestClusterCrashPointExploration(t *testing.T) {
	rep, err := RunCluster(ClusterOptions{Seed: 7, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 30 {
		t.Fatalf("explored %d cluster crash points, want >= 30", rep.Sites)
	}
	// The crash surface must exercise both migration outcomes: sites where
	// the handoff still committed despite the dead node, and sites where
	// the coordinator aborted and kept ownership where it was.
	if rep.Committed == 0 {
		t.Fatal("no crash point left the migration committed")
	}
	if rep.Aborted == 0 {
		t.Fatal("no crash point aborted the migration")
	}
	// With two nodes and one victim, late crashes leave the survivor able
	// to answer at least some probes — and those answers matched reference
	// bits (RunCluster fails otherwise).
	if rep.LiveProbeMatches == 0 {
		t.Fatal("no crash point served a matching probe before recovery")
	}
}
