package chaos

import "testing"

// TestReplicatedCrashPointExploration kills the busiest tile's primary,
// then its follower, at every storage mutation the victim performs during
// a replicated three-node workload with a mid-run migration, a failover
// window, and a Rereplicate repair. RunClusterReplicated itself asserts
// the invariants (failover and repaired answers bit-identical to the
// single-process reference, recovery bit-identical, monotonic epochs); the
// test asserts the exploration actually drove the replication machinery.
func TestReplicatedCrashPointExploration(t *testing.T) {
	rep, err := RunClusterReplicated(ReplicatedOptions{Seed: 11, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 30 {
		t.Fatalf("explored %d replicated crash points, want >= 30", rep.Sites)
	}
	if rep.Committed == 0 {
		t.Fatal("no crash point left the migration committed")
	}
	if rep.Aborted == 0 {
		t.Fatal("no crash point aborted the migration")
	}
	// A dead primary must not take the failure window down with it: the
	// follower replica serves, and serves the right bits.
	if rep.FailoverMatches == 0 {
		t.Fatal("no crash point served matching probes during the failover window")
	}
	if rep.ReplicaReads == 0 {
		t.Fatal("no query was ever served by a follower replica")
	}
	// The repair path must both run and leave a cluster that answers.
	if rep.Repairs == 0 {
		t.Fatal("no crash point completed a re-replication")
	}
	if rep.RepairMatches == 0 {
		t.Fatal("no crash point served matching probes after repair")
	}
}

// TestCoordinatorCrashPointExploration kills the coordinator's own WAL at
// every mutation site it performs and drives a standby takeover over the
// same directory. RunCoordinator itself asserts fail-closed ingestion,
// acked-prefix bit-identity during the degraded window, WAL-only recovery
// (only un-journaled tail batches are re-fed), and epoch fencing across
// the takeover; the test asserts the exploration covered the interesting
// regimes.
func TestCoordinatorCrashPointExploration(t *testing.T) {
	rep, err := RunCoordinator(CoordinatorOptions{Seed: 13, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 10 {
		t.Fatalf("explored %d coordinator crash points, want >= 10", rep.Sites)
	}
	// Mid-ingest journal deaths must refuse batches (fail closed) at some
	// sites, and bootstrap deaths must appear at the early sites.
	if rep.FailedClosed == 0 {
		t.Fatal("no crash point caused ingestion to fail closed")
	}
	if rep.BootstrapDeaths == 0 {
		t.Fatal("no crash point killed the coordinator at bootstrap")
	}
	if rep.DegradedProbeMatches == 0 {
		t.Fatal("no crash point served matching probes from the degraded coordinator")
	}
}
