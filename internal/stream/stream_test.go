package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

var t0 = time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)

// walkUpload builds one seeded walking upload along the fixture route with
// a constant in-coverage scan per point.
func walkUpload(t *testing.T, seed int64, points int) *wifi.Upload {
	t.Helper()
	tk, err := mobility.Simulate(rand.New(rand.NewSource(seed)), mobility.Options{
		Route:     []geo.Point{{X: 0, Y: 0}, {X: 300, Y: 0}},
		Mode:      trajectory.ModeWalking,
		Start:     t0,
		Interval:  time.Second,
		MaxPoints: points,
	})
	if err != nil {
		t.Fatal(err)
	}
	traj := tk.Trajectory()
	scans := make([]wifi.Scan, traj.Len())
	for i := range scans {
		scans[i] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -60}}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

// newDetector trains a tiny but real WiFi detector over a dense
// crowdsourced history along the fixture route. Forged training scans are
// implausibly strong (-30 dBm), the signature the early-exit tests forge.
func newDetector(t *testing.T) *detect.WiFiDetector {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	recs := make([]rssimap.Record, 400)
	for i := range recs {
		m := map[string]int{"02:4e:00:00:00:01": -55 - rng.Intn(20)}
		if rng.Intn(2) == 0 {
			m["02:4e:00:00:00:02"] = -60 - rng.Intn(20)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * 300, Y: rng.NormFloat64() * 3},
			RSSI: m,
		}
	}
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	real := make([]*wifi.Upload, 4)
	fake := make([]*wifi.Upload, 4)
	for i := range real {
		real[i] = walkUpload(t, int64(700+i), 20)
		f := walkUpload(t, int64(710+i), 20)
		for j := range f.Scans {
			f.Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
		}
		fake[i] = f
	}
	det, err := detect.TrainWiFiDetector(store, real, fake,
		rssimap.DefaultFeatureConfig(), xgb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// fakeClock is a mutable deterministic Config.Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// appendAll streams the upload into the session in chunks of the given
// sizes (which must sum to the upload's length), starting at chunk
// startSeq, and returns the last ack.
func appendAll(t *testing.T, m *Manager, id string, startSeq int, u *wifi.Upload, sizes []int) Ack {
	t.Helper()
	var ack Ack
	lo := 0
	for i, n := range sizes {
		var err error
		ack, _, err = m.AppendChunk(id, startSeq+i, u.Traj.Points[lo:lo+n], u.Scans[lo:lo+n])
		if err != nil {
			t.Fatalf("chunk %d (%d points): %v", startSeq+i, n, err)
		}
		lo += n
	}
	if lo != u.Traj.Len() {
		t.Fatalf("chunking covers %d of %d points", lo, u.Traj.Len())
	}
	return ack
}

// randomChunking splits n points into random chunk sizes in [1, 6].
func randomChunking(rng *rand.Rand, n int) []int {
	var sizes []int
	for n > 0 {
		c := 1 + rng.Intn(6)
		if c > n {
			c = n
		}
		sizes = append(sizes, c)
		n -= c
	}
	return sizes
}

func sameUpload(t *testing.T, got, want *wifi.Upload) {
	t.Helper()
	if got.Traj.Len() != want.Traj.Len() {
		t.Fatalf("assembled %d points, want %d", got.Traj.Len(), want.Traj.Len())
	}
	for i := range want.Traj.Points {
		p, q := want.Traj.Points[i], got.Traj.Points[i]
		if math.Float64bits(p.Pos.X) != math.Float64bits(q.Pos.X) ||
			math.Float64bits(p.Pos.Y) != math.Float64bits(q.Pos.Y) {
			t.Fatalf("point %d pos %v != %v (bits differ)", i, q.Pos, p.Pos)
		}
		if !p.Time.Equal(q.Time) {
			t.Fatalf("point %d time %v != %v", i, q.Time, p.Time)
		}
		if len(got.Scans[i]) != len(want.Scans[i]) {
			t.Fatalf("scan %d len %d != %d", i, len(got.Scans[i]), len(want.Scans[i]))
		}
		for j := range want.Scans[i] {
			if got.Scans[i][j] != want.Scans[i][j] {
				t.Fatalf("scan %d obs %d = %+v, want %+v", i, j, got.Scans[i][j], want.Scans[i][j])
			}
		}
	}
}

func TestLifecycle(t *testing.T) {
	m := newManager(t, Config{})
	u := walkUpload(t, 1, 12)

	id, err := m.Open("", trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no generated id")
	}
	if _, err := m.Open(id, trajectory.ModeWalking); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate open = %v", err)
	}

	// Out-of-order chunk refused with the expected cursor.
	var seqErr *SeqError
	if _, _, err := m.AppendChunk(id, 3, u.Traj.Points[:4], u.Scans[:4]); !errors.As(err, &seqErr) || seqErr.Want != 0 {
		t.Fatalf("out-of-order append = %v", err)
	}
	// A negative seq on a fresh session is an ordering error too, not a
	// "replay" of a chunk that never existed.
	if _, _, err := m.AppendChunk(id, -1, u.Traj.Points[:4], u.Scans[:4]); !errors.As(err, &seqErr) || seqErr.Want != 0 {
		t.Fatalf("negative seq append = %v", err)
	}
	ack, replayed, err := m.AppendChunk(id, 0, u.Traj.Points[:4], u.Scans[:4])
	if err != nil || replayed {
		t.Fatalf("chunk 0: ack=%+v replayed=%v err=%v", ack, replayed, err)
	}
	if ack.Seq != 1 || ack.Points != 4 || ack.Scored != 4 {
		t.Fatalf("ack = %+v", ack)
	}
	// Replaying the applied chunk is acknowledged idempotently.
	re, replayed, err := m.AppendChunk(id, 0, u.Traj.Points[:4], u.Scans[:4])
	if err != nil || !replayed || re != ack {
		t.Fatalf("replay: ack=%+v replayed=%v err=%v (want %+v)", re, replayed, err, ack)
	}

	// Malformed chunks.
	if _, _, err := m.AppendChunk(id, 1, nil, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if _, _, err := m.AppendChunk(id, 1, u.Traj.Points[4:8], u.Scans[4:6]); err == nil {
		t.Fatal("scan/point mismatch accepted")
	}
	// Non-monotonic time at the chunk boundary.
	if _, _, err := m.AppendChunk(id, 1, u.Traj.Points[:2], u.Scans[:2]); !errors.Is(err, trajectory.ErrNotMonotonic) {
		t.Fatalf("rewound chunk = %v", err)
	}
	// Irregular cadence inside a chunk.
	warped := append([]trajectory.Point(nil), u.Traj.Points[4:8]...)
	warped[2].Time = warped[2].Time.Add(5 * time.Second)
	if _, _, err := m.AppendChunk(id, 1, warped, u.Scans[4:8]); !errors.Is(err, trajectory.ErrIrregular) {
		t.Fatalf("warped chunk = %v", err)
	}

	ack = appendAll(t, m, id, 1, &wifi.Upload{
		Traj:  &trajectory.T{Points: u.Traj.Points[4:]},
		Scans: u.Scans[4:],
	}, []int{4, 4})
	_ = ack

	got, _, err := m.BeginClose(id)
	if err != nil {
		t.Fatal(err)
	}
	sameUpload(t, got, u)
	if got.Traj.ID != id || got.Traj.Mode != trajectory.ModeWalking {
		t.Fatalf("assembled header = %q/%v", got.Traj.ID, got.Traj.Mode)
	}
	// While closing, appends and second closes are refused; AbortClose
	// reopens.
	if _, _, err := m.AppendChunk(id, 3, u.Traj.Points[:1], u.Scans[:1]); !errors.Is(err, ErrClosing) {
		t.Fatalf("append while closing = %v", err)
	}
	if _, _, err := m.BeginClose(id); !errors.Is(err, ErrClosing) {
		t.Fatalf("double close = %v", err)
	}
	m.AbortClose(id)
	if _, _, err := m.BeginClose(id); err != nil {
		t.Fatalf("close after abort = %v", err)
	}
	m.Resolve(id)
	if _, _, err := m.AppendChunk(id, 3, u.Traj.Points[:1], u.Scans[:1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append after resolve = %v", err)
	}

	st := m.Stats()
	if st.Open != 0 || st.Opened != 1 || st.Closed != 1 || st.Chunks != 3 || st.OpenPoints != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPointBudget(t *testing.T) {
	m := newManager(t, Config{MaxPoints: 6})
	u := walkUpload(t, 2, 12)
	id, err := m.Open("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendChunk(id, 0, u.Traj.Points[:4], u.Scans[:4]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendChunk(id, 1, u.Traj.Points[4:8], u.Scans[4:8]); !errors.Is(err, ErrTooManyPoints) {
		t.Fatalf("over-budget chunk = %v", err)
	}
	// The refused chunk was not applied; the budget-respecting one lands.
	if _, _, err := m.AppendChunk(id, 1, u.Traj.Points[4:6], u.Scans[4:6]); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionAndExpiry(t *testing.T) {
	clk := &fakeClock{now: t0}
	m := newManager(t, Config{
		MaxSessions: 2, TTL: time.Hour, IdleTimeout: time.Minute,
		Clock: clk.Now,
	})
	u := walkUpload(t, 3, 4)
	if _, err := m.Open("a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("b", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("c", 0); !errors.Is(err, ErrLimit) {
		t.Fatalf("third open = %v", err)
	}
	if got := m.RetryAfter(); got != time.Minute {
		t.Fatalf("RetryAfter = %v", got)
	}

	// Past the idle deadline both sessions stop counting against the gate
	// and refuse work, but stay registered until swept.
	clk.Advance(2 * time.Minute)
	if _, err := m.Open("c", 0); err != nil {
		t.Fatalf("open after idle expiry = %v", err)
	}
	if _, _, err := m.AppendChunk("a", 0, u.Traj.Points[:2], u.Scans[:2]); !errors.Is(err, ErrExpired) {
		t.Fatalf("append to expired = %v", err)
	}
	if _, _, err := m.BeginClose("a"); !errors.Is(err, ErrExpired) {
		t.Fatalf("close of expired = %v", err)
	}
	ids := m.ExpiredIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("expired ids = %v", ids)
	}
	for _, id := range ids {
		if !m.Evict(id, true) {
			t.Fatalf("evict %s failed", id)
		}
	}
	if m.Evict("a", true) {
		t.Fatal("double evict succeeded")
	}

	// Activity refreshes the idle deadline; the absolute TTL still fires.
	if _, _, err := m.AppendChunk("c", 0, u.Traj.Points[:2], u.Scans[:2]); err != nil {
		t.Fatal(err)
	}
	clk.Advance(59 * time.Minute)
	if ids := m.ExpiredIDs(); len(ids) != 1 || ids[0] != "c" {
		t.Fatalf("TTL expiry ids = %v", ids)
	}

	st := m.Stats()
	if st.Opened != 3 || st.Expired != 2 || st.Open != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenIDLengthCap(t *testing.T) {
	m := newManager(t, Config{})
	if _, err := m.Open(strings.Repeat("x", MaxIDLen+1), 0); !errors.Is(err, ErrIDTooLong) {
		t.Fatalf("oversized id open = %v", err)
	}
	if _, err := m.Open(strings.Repeat("x", MaxIDLen), 0); err != nil {
		t.Fatalf("max-length id refused: %v", err)
	}
}

// TestConcurrentOpenAndAppend hammers Open's live-session count and the
// expiry sweep (both of which read every session's activity clock) against
// concurrent appends that refresh those clocks — -race must prove the
// interleaving safe.
func TestConcurrentOpenAndAppend(t *testing.T) {
	m := newManager(t, Config{MaxSessions: 256})
	u := walkUpload(t, 5, 40)
	const workers = 8
	ids := make([]string, workers)
	for i := range ids {
		id, err := m.Open(fmt.Sprintf("w-%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			lo := 0
			for seq := 0; seq < 10; seq++ {
				if _, _, err := m.AppendChunk(ids[i], seq, u.Traj.Points[lo:lo+4], u.Scans[lo:lo+4]); err != nil {
					t.Error(err)
					return
				}
				lo += 4
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				id, err := m.Open("", 0)
				if err != nil {
					t.Error(err)
					return
				}
				m.ExpiredIDs()
				m.Evict(id, false)
			}
		}()
	}
	wg.Wait()
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewManager(Config{EarlyExit: 1.5}); err == nil {
		t.Fatal("out-of-range early-exit threshold accepted")
	}
	if _, err := NewManager(Config{EarlyExit: 1.5, DisableEarlyExit: true}); err != nil {
		t.Fatalf("disabled early exit still validates the threshold: %v", err)
	}
}

func TestProvisionalScoringAndEarlyExit(t *testing.T) {
	det := newDetector(t)
	m := newManager(t, Config{
		Detector: det, Window: 8, EarlyExit: 0.5, EarlyExitAfter: 8,
	})

	// An honest stream scores low and never trips the exit.
	honest := walkUpload(t, 11, 16)
	id, err := m.Open("honest", trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	ack := appendAll(t, m, id, 0, honest, []int{5, 5, 6})
	if ack.Rejected {
		t.Fatalf("honest stream rejected: %+v", ack)
	}
	if ack.Scored != 16 || ack.WindowPoints != 8 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.ProvisionalProbFake < 0 || ack.ProvisionalProbFake >= 0.5 {
		t.Fatalf("honest provisional P(fake) = %v", ack.ProvisionalProbFake)
	}

	// A forged stream (implausibly strong RSSIs, the training-fake
	// signature) trips the exit once the prefix is long enough.
	forged := walkUpload(t, 12, 16)
	for i := range forged.Scans {
		forged.Scans[i] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
	}
	fid, err := m.Open("forged", trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	ack, _, err = m.AppendChunk(fid, 0, forged.Traj.Points[:4], forged.Scans[:4])
	if err != nil {
		t.Fatal(err)
	}
	if ack.Rejected {
		t.Fatalf("exit fired before EarlyExitAfter: %+v", ack)
	}
	ack, _, err = m.AppendChunk(fid, 1, forged.Traj.Points[4:12], forged.Scans[4:12])
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Rejected {
		t.Fatalf("forged prefix not rejected: %+v", ack)
	}
	if _, _, err := m.AppendChunk(fid, 2, forged.Traj.Points[12:], forged.Scans[12:]); !errors.Is(err, ErrRejected) {
		t.Fatalf("append after rejection = %v", err)
	}
	// Close confirms the rejection without handing back an upload.
	u, ack, err := m.BeginClose(fid)
	if err != nil {
		t.Fatal(err)
	}
	if u != nil || !ack.Rejected {
		t.Fatalf("close of rejected session: upload=%v ack=%+v", u, ack)
	}
	m.Resolve(fid)

	if st := m.Stats(); st.EarlyExits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestChunkingBitIdentical is the subsystem's property test: streaming a
// trajectory in arbitrary chunkings and closing must assemble an upload
// bit-identical to the batch original — positions, timestamps, scans, and
// therefore the detector's verdict. Sessions run concurrently against one
// shared manager and store, so -race covers the locking discipline.
func TestChunkingBitIdentical(t *testing.T) {
	det := newDetector(t)
	m := newManager(t, Config{Detector: det, DisableEarlyExit: true})

	const sessions = 8
	uploads := make([]*wifi.Upload, sessions)
	wantProb := make([]float64, sessions)
	for i := range uploads {
		uploads[i] = walkUpload(t, int64(100+i), 10+i*3)
		if i%3 == 2 { // forged streams must stay bit-identical too
			for j := range uploads[i].Scans {
				uploads[i].Scans[j] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
			}
		}
		p, err := det.ProbFake(uploads[i])
		if err != nil {
			t.Fatal(err)
		}
		wantProb[i] = p
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	assembled := make([]*wifi.Upload, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + i)))
			u := uploads[i]
			id, err := m.Open("", trajectory.ModeWalking)
			if err != nil {
				errs <- err
				return
			}
			lo := 0
			for seq, n := range randomChunking(rng, u.Traj.Len()) {
				if _, _, err := m.AppendChunk(id, seq, u.Traj.Points[lo:lo+n], u.Scans[lo:lo+n]); err != nil {
					errs <- err
					return
				}
				lo += n
			}
			got, _, err := m.BeginClose(id)
			if err != nil {
				errs <- err
				return
			}
			assembled[i] = got
			m.Resolve(id)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, got := range assembled {
		sameUpload(t, got, uploads[i])
		// The assembled upload is scored by the exact batch path; equal
		// bits in, equal bits out.
		prob, err := det.ProbFake(got)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(prob) != math.Float64bits(wantProb[i]) {
			t.Fatalf("session %d P(fake) = %v, batch %v (bits differ)", i, prob, wantProb[i])
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	det := newDetector(t)
	m := newManager(t, Config{Detector: det, DisableEarlyExit: true})
	u := walkUpload(t, 21, 12)

	id, err := m.Open("resume-me", trajectory.ModeCycling)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendChunk(id, 0, u.Traj.Points[:5], u.Scans[:5]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendChunk(id, 1, u.Traj.Points[5:8], u.Scans[5:8]); err != nil {
		t.Fatal(err)
	}

	states := m.SnapshotSessions()
	if len(states) != 1 || states[0].ID != id || states[0].Chunks != 2 || len(states[0].Points) != 8 {
		t.Fatalf("snapshot = %+v", states)
	}

	// A restarted manager resumes the session; the chunk cursor and the
	// buffered prefix carry over, scoring restarts lazily.
	m2 := newManager(t, Config{Detector: det, DisableEarlyExit: true})
	if err := m2.RestoreSession(states[0]); err != nil {
		t.Fatal(err)
	}
	if err := m2.RestoreSession(states[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("double restore = %v", err)
	}
	ack, _, err := m2.AppendChunk(id, 2, u.Traj.Points[8:], u.Scans[8:])
	if err != nil {
		t.Fatal(err)
	}
	if ack.Points != 12 || ack.Scored != 12 {
		t.Fatalf("resumed ack = %+v", ack)
	}
	got, _, err := m2.BeginClose(id)
	if err != nil {
		t.Fatal(err)
	}
	sameUpload(t, got, u)
	if got.Traj.Mode != trajectory.ModeCycling {
		t.Fatalf("restored mode = %v", got.Traj.Mode)
	}
	if st := m2.Stats(); st.Resumed != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A session the restarted configuration cannot hold is refused.
	tiny := newManager(t, Config{MaxPoints: 4})
	if err := tiny.RestoreSession(states[0]); !errors.Is(err, ErrTooManyPoints) {
		t.Fatalf("over-budget restore = %v", err)
	}
}

// TestSnapshotRestoreRejected pins that the early-exit marker is sticky
// across snapshot and restore: a client already told its prefix is forged
// stays refused after recovery instead of being silently readmitted.
func TestSnapshotRestoreRejected(t *testing.T) {
	det := newDetector(t)
	cfg := Config{Detector: det, Window: 8, EarlyExit: 0.5, EarlyExitAfter: 8}
	m := newManager(t, cfg)
	forged := walkUpload(t, 31, 16)
	for i := range forged.Scans {
		forged.Scans[i] = wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -30}}
	}
	id, err := m.Open("fraud", trajectory.ModeWalking)
	if err != nil {
		t.Fatal(err)
	}
	ack, _, err := m.AppendChunk(id, 0, forged.Traj.Points[:12], forged.Scans[:12])
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Rejected {
		t.Fatalf("forged prefix not rejected: %+v", ack)
	}

	states := m.SnapshotSessions()
	if len(states) != 1 || !states[0].Rejected {
		t.Fatalf("snapshot = %+v", states)
	}

	m2 := newManager(t, cfg)
	if err := m2.RestoreSession(states[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m2.AppendChunk(id, 1, forged.Traj.Points[12:], forged.Scans[12:]); !errors.Is(err, ErrRejected) {
		t.Fatalf("append after restored rejection = %v", err)
	}
	u, ack, err := m2.BeginClose(id)
	if err != nil || u != nil || !ack.Rejected {
		t.Fatalf("close of restored rejection: upload=%v ack=%+v err=%v", u, ack, err)
	}
	// Aborting the close must not readmit a rejected session either.
	m2.AbortClose(id)
	if _, _, err := m2.AppendChunk(id, 1, forged.Traj.Points[12:], forged.Scans[12:]); !errors.Is(err, ErrRejected) {
		t.Fatalf("append after aborted close of rejection = %v", err)
	}
}
